package blockfanout

// Cross-package integration tests: the full pipeline from matrix generation
// through ordering, symbolic analysis, block partitioning, mapping, real
// parallel factorization, and solves, validated against dense reference
// computations and residual norms.

import (
	"math"
	"testing"
	"testing/quick"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/refchol"
)

// planFor builds a plan for a generated problem with sensible options.
func planFor(t *testing.T, p gen.Problem, blockSize int) *core.Plan {
	t.Helper()
	m := p.Build()
	opts := core.Options{BlockSize: blockSize, GridDim: p.GridDim}
	switch p.Hint {
	case gen.HintNone:
		opts.Ordering = order.Natural
	case gen.HintNDGrid2D:
		opts.Ordering = order.NDGrid2D
	case gen.HintNDCube3D:
		opts.Ordering = order.NDCube3D
	default:
		opts.Ordering = order.MinDegree
	}
	plan, err := core.NewPlan(m, opts)
	if err != nil {
		t.Fatalf("NewPlan(%s): %v", p.Name, err)
	}
	return plan
}

func rhsFor(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	return b
}

func TestSequentialFactorSolveGrid(t *testing.T) {
	m := gen.Grid2D(17)
	plan, err := core.NewPlan(m, core.Options{Ordering: order.NDGrid2D, GridDim: 17, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	b := rhsFor(m.N)
	x, err := f.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if r := f.Residual(x, b); r > 1e-8 {
		t.Fatalf("residual %g too large", r)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	suite := gen.Table1Suite(gen.ScaleCI)
	for _, prob := range []string{"GRID150", "CUBE30", "BCSSTK15", "DENSE1024"} {
		p, ok := gen.ByName(suite, prob)
		if !ok {
			t.Fatalf("problem %s missing", prob)
		}
		t.Run(prob, func(t *testing.T) {
			plan := planFor(t, p, 16)
			b := rhsFor(plan.A.N)

			seq, err := plan.FactorSequential()
			if err != nil {
				t.Fatal(err)
			}
			xs, err := seq.Solve(b)
			if err != nil {
				t.Fatal(err)
			}
			if r := seq.Residual(xs, b); r > 1e-7 {
				t.Fatalf("sequential residual %g", r)
			}

			for _, withDomains := range []bool{false, true} {
				g := mapping.Grid{Pr: 3, Pc: 3}
				mp := plan.Map(g, mapping.ID, mapping.CY)
				beta := 0.0
				if withDomains {
					beta = 2.0
				}
				par, err := plan.Factor(plan.Assign(mp, beta))
				if err != nil {
					t.Fatalf("parallel (domains=%v): %v", withDomains, err)
				}
				xp, err := par.Solve(b)
				if err != nil {
					t.Fatal(err)
				}
				if r := par.Residual(xp, b); r > 1e-7 {
					t.Fatalf("parallel residual %g (domains=%v)", r, withDomains)
				}
				for i := range xs {
					if math.Abs(xs[i]-xp[i]) > 1e-6*(1+math.Abs(xs[i])) {
						t.Fatalf("solution mismatch at %d: seq=%g par=%g", i, xs[i], xp[i])
					}
				}
			}
		})
	}
}

func TestTinyDenseAgainstReference(t *testing.T) {
	// Factor a small dense SPD matrix and compare L·Lᵀ against A entrywise.
	n := 37
	m := gen.Dense(n)
	plan, err := core.NewPlan(m, core.Options{Ordering: order.Natural, BlockSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct A column by column via solves of unit vectors: instead,
	// verify with many random rhs.
	for trial := 0; trial < 4; trial++ {
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i*13+trial*7)%11) - 5
		}
		x, err := f.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r := f.Residual(x, b); r > 1e-9 {
			t.Fatalf("trial %d residual %g", trial, r)
		}
	}
}

func TestSimulatedEfficiencyBounds(t *testing.T) {
	suite := gen.Table1Suite(gen.ScaleCI)
	p, _ := gen.ByName(suite, "GRID300")
	plan := planFor(t, p, 16)
	g := mapping.Grid{Pr: 4, Pc: 4}
	cfg := machine.Paragon()

	cy := plan.Assign(plan.Map(g, mapping.CY, mapping.CY), 2)
	res := plan.Simulate(cy, cfg)
	if res.Time <= 0 {
		t.Fatal("simulation produced no time")
	}
	eff := res.Efficiency()
	if eff <= 0 || eff > 1.0001 {
		t.Fatalf("efficiency %g out of range", eff)
	}
	// Efficiency can never exceed the overall balance bound by more than
	// the domain-induced slack; sanity: critical path bound positive.
	if cp := plan.CriticalPath(cfg); cp <= 0 || cp > res.Time+1e-12 {
		t.Fatalf("critical path %g vs parallel time %g", cp, res.Time)
	}
}

func TestStatsReasonable(t *testing.T) {
	// DENSE n: nnz(L) = n(n-1)/2 exactly, flops ≈ n³/3.
	n := 96
	plan, err := core.NewPlan(gen.Dense(n), core.Options{Ordering: order.Natural, BlockSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	wantNZ := int64(n) * int64(n-1) / 2
	if plan.Exact.NZinL != wantNZ {
		t.Fatalf("dense nnz(L)=%d, want %d", plan.Exact.NZinL, wantNZ)
	}
	nn := int64(n)
	wantFlops := nn * (nn + 1) * (2*nn + 1) / 6
	if plan.Exact.Flops != wantFlops {
		t.Fatalf("dense flops=%d, want %d", plan.Exact.Flops, wantFlops)
	}
}

// TestBlockedAgainstReference cross-validates the blocked supernodal
// factorization against the independent up-looking implementation
// (internal/refchol) entry by entry on the same permuted matrix.
func TestBlockedAgainstReference(t *testing.T) {
	suite := gen.Table1Suite(gen.ScaleCI)
	p, _ := gen.ByName(suite, "BCSSTK15")
	plan := planFor(t, p, 12)
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refchol.Compute(plan.PA)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NNZ() != plan.Exact.NZinL {
		t.Fatalf("reference nnz %d != symbolic %d", ref.NNZ(), plan.Exact.NZinL)
	}
	bs := plan.BS
	part := bs.Part
	nf := f.Numeric()
	checked := 0
	for j := range bs.Cols {
		w := part.Width(j)
		for bi, blk := range bs.Cols[j].Blocks {
			data := nf.Data[j][bi]
			for s, grow := range blk.Rows {
				for c := 0; c < w; c++ {
					gcol := part.Start[j] + c
					if grow < gcol {
						continue
					}
					got := data[s*w+c]
					want := ref.At(grow, gcol)
					if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
						t.Fatalf("L(%d,%d): blocked %g vs reference %g", grow, gcol, got, want)
					}
					checked++
				}
			}
		}
	}
	if checked < int(plan.Exact.NZinL) {
		t.Fatalf("checked only %d entries", checked)
	}
}

// TestQuickFullPipeline drives the entire pipeline — generator, ordering,
// analysis, mapping heuristic, real parallel factorization, parallel solve
// — over randomized configurations and checks the residual every time.
func TestQuickFullPipeline(t *testing.T) {
	f := func(seed uint16) bool {
		n := 120 + int(seed%120)
		kNN := 4 + int(seed%4)
		blockSize := 4 + int(seed%12)
		heurs := mapping.AllHeuristics()
		rowH := heurs[int(seed)%len(heurs)]
		colH := heurs[int(seed/5)%len(heurs)]
		grids := []mapping.Grid{{Pr: 1, Pc: 2}, {Pr: 2, Pc: 2}, {Pr: 3, Pc: 2}, {Pr: 3, Pc: 3}}
		g := grids[int(seed/7)%len(grids)]
		beta := float64(seed % 3) // 0 disables domains

		m := gen.IrregularMesh(n, kNN, 3, uint64(seed)+101)
		plan, err := core.NewPlan(m, core.Options{Ordering: order.MinDegree, BlockSize: blockSize})
		if err != nil {
			t.Logf("seed %d: plan: %v", seed, err)
			return false
		}
		fac, err := plan.Factor(plan.Assign(plan.Map(g, rowH, colH), beta))
		if err != nil {
			t.Logf("seed %d: factor: %v", seed, err)
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = float64((i*int(seed+1))%13) - 6
		}
		x, err := fac.SolveParallel(b)
		if err != nil {
			t.Logf("seed %d: solve: %v", seed, err)
			return false
		}
		if r := m.ResidualNorm(x, b); r > 1e-7 {
			t.Logf("seed %d: residual %g", seed, r)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
