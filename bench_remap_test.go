package blockfanout

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"blockfanout/internal/experiments"
	"blockfanout/internal/gen"
)

// TestRemapRegressionGate is the CI gate for feedback-driven remapping:
// it runs the remap experiment's measured factorizations on the irregular
// generators at P=8 and 16, writes every row to bench-remap.json (uploaded
// as a CI artifact, and the same rows BENCH_kernels.json carries), and
// fails if the tuned mapping's balance over the measured cost profile
// regresses below the best static heuristic's. The balance comparison is
// over one shared profile, so it is deterministic given the measurement
// and does not gate on wall time (meaningless on loaded CI machines); the
// gate is still opt-in because the rows are real timed factorizations:
//
//	REMAP_CHECK=1 go test -run RemapRegressionGate -count=1 .
func TestRemapRegressionGate(t *testing.T) {
	if os.Getenv("REMAP_CHECK") == "" {
		t.Skip("set REMAP_CHECK=1 to run the remap regression gate")
	}
	rows, err := experiments.RemapRows(experiments.Default(gen.ScaleCI), experiments.RemapProcs)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench-remap.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	type cell struct{ bestStatic, remap float64 }
	cells := map[string]*cell{}
	for _, r := range rows {
		key := fmt.Sprintf("%s/P=%d", r.Problem, r.Procs)
		c := cells[key]
		if c == nil {
			c = &cell{}
			cells[key] = c
		}
		if r.Remap {
			c.remap = r.Predicted
		} else if r.Predicted > c.bestStatic {
			c.bestStatic = r.Predicted
		}
		t.Logf("%s P=%d %-8s balance %.3f predicted %.3f %.2fms",
			r.Problem, r.Procs, r.Map, r.Balance, r.Predicted, r.Seconds*1e3)
	}
	for key, c := range cells {
		if c.remap == 0 {
			t.Fatalf("%s: no remap row produced", key)
		}
		if c.remap < c.bestStatic {
			t.Fatalf("%s: remap balance %.3f regresses below best static heuristic %.3f",
				key, c.remap, c.bestStatic)
		}
	}
}
