module blockfanout

go 1.22
