package blockfanout

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"blockfanout/internal/blocks"
	"blockfanout/internal/experiments"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/sched"
)

// blockingDelta is one row of bench-blocking.json, the CI artifact
// comparing the irregular blocking against uniform at equal processor
// count.
type blockingDelta struct {
	Problem      string  `json:"problem"`
	Procs        int     `json:"procs"`
	UniformSec   float64 `json:"uniform_seconds"`
	IrregularSec float64 `json:"irregular_seconds"`
	// Ratio is irregular/uniform wall time: <1 means the irregular
	// blocking is faster end-to-end.
	Ratio float64 `json:"ratio"`
}

// TestBlockingRegressionGate is the CI gate for the structure-aware
// irregular blocking: on the BCSSTK31-class generator it measures
// end-to-end factorization wall time under the work-stealing executor with
// uniform and irregular partitions at 8 and 16 processors, writes the
// deltas to bench-blocking.json (uploaded as a CI artifact), and fails if
// irregular regresses by more than 5%. Timing runs are meaningless on a
// loaded machine, so the gate is opt-in:
//
//	BENCH_BLOCKING_CHECK=1 go test -run BlockingRegressionGate -count=1 .
//
// Measurement is interleaved best-of: alternating short measurements of the
// two variants with per-variant minima cancels slow clock/load drift that
// back-to-back blocks cannot.
func TestBlockingRegressionGate(t *testing.T) {
	if os.Getenv("BENCH_BLOCKING_CHECK") == "" {
		t.Skip("set BENCH_BLOCKING_CHECK=1 to run the blocking regression gate")
	}
	const problem = "BCSSTK31"
	p, ok := gen.ByName(gen.Table1Suite(gen.ScaleCI), problem)
	if !ok {
		t.Fatal("suite problem missing: " + problem)
	}
	uni, err := experiments.PlanForBlocking(p, gen.ScaleCI, 16, blocks.StrategyUniform, 0)
	if err != nil {
		t.Fatal(err)
	}
	irr, err := experiments.PlanForBlocking(p, gen.ScaleCI, 16, blocks.StrategyIrregular, 0.125)
	if err != nil {
		t.Fatal(err)
	}

	makeCycle := func(pr *sched.Program, f *numeric.Factor, vals []float64) func() float64 {
		ex := fanout.NewExecutor(f, pr)
		return func() float64 {
			if err := f.Reload(vals); err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			if _, err := ex.Run(); err != nil {
				t.Fatal(err)
			}
			return time.Since(start).Seconds()
		}
	}

	var deltas []blockingDelta
	for _, g := range []mapping.Grid{{Pr: 2, Pc: 4}, {Pr: 4, Pc: 4}} {
		uniF, err := numeric.New(uni.BS, uni.PA)
		if err != nil {
			t.Fatal(err)
		}
		irrF, err := numeric.New(irr.BS, irr.PA)
		if err != nil {
			t.Fatal(err)
		}
		runners := []func() float64{
			makeCycle(sched.Build(uni.BS, uni.Assign(uni.Map(g, mapping.ID, mapping.CY), 2)), uniF, uni.PA.Val),
			makeCycle(sched.Build(irr.BS, irr.Assign(irr.Map(g, mapping.ID, mapping.CY), 2)), irrF, irr.PA.Val),
		}

		best := []float64{0, 0}
		const rounds = 12
		for round := 0; round < rounds; round++ {
			for i, run := range runners {
				sec := run()
				if best[i] == 0 || sec < best[i] {
					best[i] = sec
				}
			}
		}
		deltas = append(deltas, blockingDelta{
			Problem:      problem,
			Procs:        g.P(),
			UniformSec:   best[0],
			IrregularSec: best[1],
			Ratio:        best[1] / best[0],
		})
	}

	data, err := json.MarshalIndent(deltas, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench-blocking.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, d := range deltas {
		t.Logf("P=%d: uniform %.4fs, irregular %.4fs, ratio %.3f", d.Procs, d.UniformSec, d.IrregularSec, d.Ratio)
		if d.Ratio > 1.05 {
			t.Fatalf("irregular blocking regresses %.1f%% vs uniform at P=%d (budget 5%%)", (d.Ratio-1)*100, d.Procs)
		}
	}
}
