// factorcache demonstrates factor reuse across processes: factor a system
// once in parallel, save the factor bundle to disk, then reload it and
// solve against many right-hand sides without re-factoring — the standard
// workflow when one stiffness matrix serves many load cases.
//
//	go run ./examples/factorcache
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"time"

	"blockfanout/internal/bundle"
	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
)

func main() {
	a := gen.Cube3D(12) // n = 1728
	plan, err := core.NewPlan(a, core.Options{Ordering: order.NDCube3D, GridDim: 12, BlockSize: 24})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	g := mapping.Grid{Pr: 2, Pc: 2}
	f, err := plan.Factor(plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
	if err != nil {
		log.Fatal(err)
	}
	factorTime := time.Since(start)

	path := filepath.Join(os.TempDir(), "cube12.bfb")
	if err := bundle.SaveFile(path, bundle.FromFactor(f)); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("factored n=%d in %v; bundle %s (%d KiB)\n",
		a.N, factorTime.Round(time.Millisecond), path, info.Size()/1024)

	// ... later, possibly in another process:
	loaded, err := bundle.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	nLoads := 50
	worst := 0.0
	for k := 0; k < nLoads; k++ {
		b := make([]float64, a.N)
		for i := range b {
			b[i] = math.Sin(float64(i*(k+1)) * 0.01)
		}
		x, err := loaded.Solve(b)
		if err != nil {
			log.Fatal(err)
		}
		if r := a.ResidualNorm(x, b); r > worst {
			worst = r
		}
	}
	fmt.Printf("solved %d load cases from the cached factor in %v (worst residual %.2g)\n",
		nLoads, time.Since(start).Round(time.Millisecond), worst)
}
