// fem2d solves a 2-D Poisson-style problem on a k×k grid — the workload the
// paper's GRID matrices model — using the full parallel pipeline: nested
// dissection ordering, block partition, heuristic block mapping with
// domains, and the real goroutine-based block fan-out factorization.
//
//	go run ./examples/fem2d [-k 96] [-pr 3] [-pc 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
)

func main() {
	k := flag.Int("k", 96, "grid side length")
	pr := flag.Int("pr", 3, "processor grid rows")
	pc := flag.Int("pc", 3, "processor grid cols")
	flag.Parse()

	a := gen.Grid2D(*k)
	fmt.Printf("5-point Laplacian on a %d×%d grid: n=%d\n", *k, *k, a.N)

	plan, err := core.NewPlan(a, core.Options{
		Ordering: order.NDGrid2D, GridDim: *k, BlockSize: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nested dissection: nnz(L)=%d, %.1f Mflop\n",
		plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6)

	g := mapping.Grid{Pr: *pr, Pc: *pc}
	cyc := mapping.Cyclic(g, plan.BS.N())
	heu := plan.Map(g, mapping.ID, mapping.CY)
	fmt.Printf("overall balance on %d procs: cyclic %.2f, ID/CY heuristic %.2f\n",
		g.P(), plan.Balances(cyc).Overall, plan.Balances(heu).Overall)

	// Right-hand side: unit load at the grid center.
	b := make([]float64, a.N)
	b[(*k/2)*(*k)+*k/2] = 1

	start := time.Now()
	f, err := plan.Factor(plan.Assign(heu, 2))
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	x, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel factorization on %d goroutine-processors: %v\n", g.P(), elapsed)
	fmt.Printf("residual ‖A·x−b‖∞ = %.3g\n", f.Residual(x, b))
	fmt.Printf("potential at center: %.6f, at corner: %.6g\n",
		x[(*k/2)*(*k)+*k/2], x[0])
}
