// paragonsim sweeps machine sizes on the simulated Intel Paragon for a 3-D
// cube problem (the paper's CUBE workloads), comparing the cyclic mapping
// against the paper's heuristic (Increasing Depth rows, cyclic columns) and
// reporting efficiency, achieved Mflops, and communication share — the §4.3
// and §5 measurements.
//
//	go run ./examples/paragonsim [-k 16]
package main

import (
	"flag"
	"fmt"
	"log"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
)

func main() {
	k := flag.Int("k", 16, "cube side length")
	flag.Parse()

	a := gen.Cube3D(*k)
	plan, err := core.NewPlan(a, core.Options{Ordering: order.NDCube3D, GridDim: *k, BlockSize: 24})
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.Paragon()
	fmt.Printf("CUBE%d: n=%d, %.1f Mflop to factor\n", *k, a.N, float64(plan.Exact.Flops)/1e6)
	fmt.Printf("critical-path bound: %.0f Mflops\n\n",
		float64(plan.Exact.Flops)/plan.CriticalPath(cfg)/1e6)

	fmt.Printf("%6s %6s | %9s %6s | %9s %6s %9s | %6s\n",
		"P", "grid", "cyc Mf", "eff", "heur Mf", "eff", "comm", "gain")
	for _, p := range []int{16, 64, 100, 144, 196} {
		g, err := mapping.SquareGrid(p)
		if err != nil {
			log.Fatal(err)
		}
		cyc := plan.Simulate(plan.Assign(mapping.Cyclic(g, plan.BS.N()), 2), cfg)
		heu := plan.Simulate(plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2), cfg)
		fmt.Printf("%6d %3dx%-3d | %9.0f %5.0f%% | %9.0f %5.0f%% %8.1f%% | %5.0f%%\n",
			p, g.Pr, g.Pc,
			cyc.Mflops(plan.Exact.Flops), cyc.Efficiency()*100,
			heu.Mflops(plan.Exact.Flops), heu.Efficiency()*100,
			heu.CommFraction()*100,
			(heu.Mflops(plan.Exact.Flops)/cyc.Mflops(plan.Exact.Flops)-1)*100)
	}
}
