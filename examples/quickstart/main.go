// Quickstart: factor a sparse SPD matrix and solve a linear system.
//
//	go run ./examples/quickstart
//
// This walks the library's happy path: generate a problem, build a Plan
// (ordering → symbolic analysis → block partition), factor it sequentially,
// and solve A·x = b, checking the residual against the original matrix.
package main

import (
	"fmt"
	"log"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/order"
)

func main() {
	// A random 3-D finite-element-style mesh with 2,000 vertices.
	a := gen.IrregularMesh(2000, 8, 3, 1)
	fmt.Printf("matrix: n=%d, nnz(lower)=%d\n", a.N, a.NNZ())

	// Analyze: minimum-degree ordering, supernode amalgamation, B=48
	// block partition (the paper's configuration).
	plan, err := core.NewPlan(a, core.Options{Ordering: order.MinDegree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factor:  nnz(L)=%d, %.1f Mflop to factor, %d supernodes, %d panels\n",
		plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6,
		len(plan.Sym.Snodes), plan.BS.N())

	// Factor and solve.
	f, err := plan.FactorSequential()
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, err := f.Solve(b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solve:   ‖A·x−b‖∞ = %.3g\n", f.Residual(x, b))
	fmt.Printf("sample:  x[0]=%.6f x[%d]=%.6f\n", x[0], a.N/2, x[a.N/2])
}
