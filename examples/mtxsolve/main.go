// mtxsolve is the bring-your-own-matrix workflow: read a symmetric
// positive definite matrix from a Matrix Market (.mtx) or Harwell-Boeing
// (.rsa/.psa) file, factor it in parallel, and solve with iterative
// refinement. With no -in flag it writes a demo matrix to a temporary file
// first, so the example is runnable out of the box:
//
//	go run ./examples/mtxsolve [-in matrix.mtx] [-procs 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/hb"
	"blockfanout/internal/mapping"
	"blockfanout/internal/mmio"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

func main() {
	in := flag.String("in", "", "input matrix (.mtx Matrix Market, .rsa/.psa Harwell-Boeing)")
	procs := flag.Int("procs", 8, "goroutine-processors for the parallel factorization")
	flag.Parse()

	path := *in
	if path == "" {
		// No input given: write a demo mesh to a temp .mtx and use it.
		demo := gen.IrregularMesh(1200, 7, 3, 5)
		path = filepath.Join(os.TempDir(), "blockfanout-demo.mtx")
		if err := mmio.WriteFile(path, demo); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("no -in given; wrote demo matrix to %s\n", path)
	}

	var (
		a   *sparse.Matrix
		err error
	)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".mtx":
		a, err = mmio.ReadFile(path)
	case ".rsa", ".psa", ".rua", ".hb":
		a, err = hb.ReadFile(path)
	default:
		err = fmt.Errorf("unrecognized extension on %s (want .mtx or .rsa)", path)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %s: n=%d, nnz(lower)=%d\n", path, a.N, a.NNZ())

	plan, err := core.NewPlan(a, core.Options{Ordering: order.MinDegree})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed: nnz(L)=%d, %.1f Mflop\n",
		plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6)

	g := mapping.BestGrid(*procs)
	f, err := plan.Factor(plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, a.N)
	for i := range b {
		b[i] = 1
	}
	x, iters, resid, err := f.SolveRefined(b, 3, 1e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("factored on %d×%d processors; solved with %d refinement steps\n",
		g.Pr, g.Pc, iters)
	fmt.Printf("‖A·x−b‖∞ = %.3g;  x[0] = %.6f\n", resid, x[0])
}
