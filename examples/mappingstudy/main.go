// mappingstudy reproduces the paper's core investigation on a single
// irregular problem: it evaluates the 2-D cyclic mapping and the four
// remapping heuristics on the row/column/diagonal/overall balance measures,
// measures each mapping's communication volume, and simulates the Paragon
// runtime — showing why the paper concludes that "some remapping must be
// done; the particular remapping used is of secondary importance".
//
//	go run ./examples/mappingstudy [-n 3000] [-p 64]
package main

import (
	"flag"
	"fmt"
	"log"

	"blockfanout/internal/commvol"
	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
)

func main() {
	n := flag.Int("n", 3000, "mesh vertices")
	p := flag.Int("p", 64, "processors (perfect square)")
	flag.Parse()

	a := gen.IrregularMesh(*n, 9, 3, 31)
	plan, err := core.NewPlan(a, core.Options{Ordering: order.MinDegree, BlockSize: 16})
	if err != nil {
		log.Fatal(err)
	}
	g, err := mapping.SquareGrid(*p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := machine.Paragon()

	fmt.Printf("irregular mesh n=%d: nnz(L)=%d, %.1f Mflop, %d panels, P=%d\n\n",
		a.N, plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6, plan.BS.N(), g.P())
	fmt.Printf("%-8s %6s %6s %6s %8s %12s %10s %10s\n",
		"mapping", "row", "col", "diag", "overall", "comm bytes", "sim time", "Mflops")

	var baseTime float64
	for _, h := range mapping.AllHeuristics() {
		m := plan.Map(g, h, h)
		bal := plan.Balances(m)
		vol := commvol.Of(plan.BS, sched.Assignment{Map: m})
		res := plan.Simulate(plan.Assign(m, 2), cfg)
		name := h.String() + "/" + h.String()
		if h == mapping.CY {
			name = "cyclic"
			baseTime = res.Time
		}
		fmt.Printf("%-8s %6.2f %6.2f %6.2f %8.2f %12d %9.3fs %10.0f\n",
			name, bal.Row, bal.Col, bal.Diag, bal.Overall,
			vol.Bytes, res.Time, res.Mflops(plan.Exact.Flops))
	}

	best := plan.Map(g, mapping.ID, mapping.CY)
	res := plan.Simulate(plan.Assign(best, 2), cfg)
	fmt.Printf("\npaper's pick (ID rows, cyclic cols): %.3fs — %.0f%% over cyclic\n",
		res.Time, (baseTime/res.Time-1)*100)
}
