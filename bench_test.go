package blockfanout

// The benchmark harness regenerates every table and figure of the paper:
// one testing.B benchmark per experiment. Each benchmark prints the
// reproduced rows once (so `go test -bench . | tee bench_output.txt`
// records them) and then times repeated runs of the experiment.
//
// Set REPRO_SCALE=paper to run the paper's matrix sizes (minutes); the
// default CI scale uses structurally identical reduced matrices.

import (
	"fmt"
	"io"
	"os"
	"sync"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/experiments"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
)

func benchConfig() experiments.Config {
	scale := gen.ScaleCI
	if os.Getenv("REPRO_SCALE") == "paper" {
		scale = gen.ScalePaper
	}
	return experiments.Default(scale)
}

var printOnce sync.Map

// runExperiment prints the experiment's rows once per process, then times
// repeated executions.
func runExperiment(b *testing.B, name string) {
	b.Helper()
	r, ok := experiments.ByName(name)
	if !ok {
		b.Fatalf("unknown experiment %q", name)
	}
	cfg := benchConfig()
	if _, done := printOnce.LoadOrStore(name, true); !done {
		fmt.Printf("\n===== %s — %s =====\n", r.Name, r.Desc)
		if err := r.Run(os.Stdout, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Run(io.Discard, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (see DESIGN.md experiment index).

func BenchmarkTable1(b *testing.B)        { runExperiment(b, "table1") }
func BenchmarkFigure1(b *testing.B)       { runExperiment(b, "figure1") }
func BenchmarkTable2(b *testing.B)        { runExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)        { runExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)        { runExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)        { runExperiment(b, "table6") }
func BenchmarkTable7(b *testing.B)        { runExperiment(b, "table7") }
func BenchmarkAltHeuristic(b *testing.B)  { runExperiment(b, "alt-heuristic") }
func BenchmarkRelPrime(b *testing.B)      { runExperiment(b, "relprime") }
func BenchmarkCommFraction(b *testing.B)  { runExperiment(b, "commfrac") }
func BenchmarkCritPath(b *testing.B)      { runExperiment(b, "critpath") }
func BenchmarkSubcube(b *testing.B)       { runExperiment(b, "subcube") }
func BenchmarkBlockSize(b *testing.B)     { runExperiment(b, "blocksize") }
func BenchmarkCommScaling(b *testing.B)   { runExperiment(b, "commscaling") }
func BenchmarkPrioSched(b *testing.B)     { runExperiment(b, "priosched") }
func BenchmarkConcurrency(b *testing.B)   { runExperiment(b, "concurrency") }
func BenchmarkOneDim(b *testing.B)        { runExperiment(b, "onedim") }
func BenchmarkArbitrary(b *testing.B)     { runExperiment(b, "arbitrary") }
func BenchmarkOrganizations(b *testing.B) { runExperiment(b, "organizations") }
func BenchmarkColfan(b *testing.B)        { runExperiment(b, "colfan") }
func BenchmarkAmalgamation(b *testing.B)  { runExperiment(b, "amalgamation") }
func BenchmarkDomains(b *testing.B)       { runExperiment(b, "domains") }

// Pipeline micro-benchmarks: the individual phases on a representative
// problem, for profiling the library itself.

func pipelinePlan(b *testing.B) *core.Plan {
	b.Helper()
	p, ok := gen.ByName(gen.Table1Suite(gen.ScaleCI), "BCSSTK31")
	if !ok {
		b.Fatal("suite problem missing")
	}
	plan, err := experiments.PlanFor(p, gen.ScaleCI, 16)
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

func BenchmarkAnalyzePlan(b *testing.B) {
	m := gen.IrregularMesh(2200, 9, 3, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewPlan(m, core.Options{Ordering: order.MinDegree, BlockSize: 16}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequentialFactor(b *testing.B) {
	plan := pipelinePlan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.FactorSequential(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelFanout16(b *testing.B) {
	plan := pipelinePlan(b)
	g := mapping.Grid{Pr: 4, Pc: 4}
	a := plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2)
	pr := sched.Build(plan.BS, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := numeric.New(plan.BS, plan.PA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := fanout.Run(f, pr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulate64(b *testing.B) {
	plan := pipelinePlan(b)
	g := mapping.Grid{Pr: 8, Pc: 8}
	pr := sched.Build(plan.BS, plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
	cfg := machine.Paragon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		machine.MustSimulate(pr, cfg)
	}
}

func BenchmarkHeuristicMapping(b *testing.B) {
	plan := pipelinePlan(b)
	g := mapping.Grid{Pr: 8, Pc: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan.Map(g, mapping.ID, mapping.CY)
	}
}

func BenchmarkSolve(b *testing.B) {
	plan := pipelinePlan(b)
	f, err := plan.FactorSequential()
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, plan.A.N)
	for i := range rhs {
		rhs[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}
