package order

import "blockfanout/internal/sparse"

// MinDeg computes a minimum-degree ordering of the symmetric pattern using
// a quotient graph with external degrees, element absorption, and mass
// elimination of indistinguishable variables (supervariables). This is the
// algorithm family — multiple minimum degree — the paper uses for its
// irregular benchmark matrices. Indistinguishable columns are eliminated
// together, which is also what makes large supernodes appear in the factor.
func MinDeg(p *sparse.Pattern) Permutation {
	return minDeg(p, false)
}

// MinDegApprox is the same quotient-graph elimination with an AMD-style
// upper-bound degree (per-element weights summed without deduplicating
// shared variables) instead of the exact external degree. The cheaper
// update makes it markedly faster on large problems at a small cost in
// ordering quality — the trade modern approximate-minimum-degree codes
// make.
func MinDegApprox(p *sparse.Pattern) Permutation {
	return minDeg(p, true)
}

func minDeg(p *sparse.Pattern, approx bool) Permutation {
	n := p.N
	if n == 0 {
		return Permutation{}
	}
	md := newMinDegState(p)
	md.approx = approx
	for md.eliminated < n {
		md.eliminateOne()
	}
	perm := make(Permutation, 0, n)
	for _, piv := range md.elimSeq {
		perm = append(perm, piv)
		perm = append(perm, md.members[piv]...)
	}
	return perm
}

const (
	mdVar      byte = iota // alive variable (supervariable representative)
	mdDeadVar              // variable merged into another supervariable
	mdElem                 // alive element (eliminated pivot)
	mdDeadElem             // element absorbed into another element
)

type minDegState struct {
	n     int
	state []byte
	w     []int   // supervariable weights
	adjV  [][]int // var → adjacent vars (lazily cleaned)
	adjE  [][]int // var → adjacent elements (lazily cleaned)
	evars [][]int // element → member variables (may contain dead vars)
	deg   []int
	mbrs  int
	// members[rep] lists original vertices merged into rep, flattened.
	members [][]int
	elimSeq []int
	// degree buckets: doubly-linked lists threaded through dnext/dprev.
	dhead  []int
	dnext  []int
	dprev  []int
	minDeg int
	// mark generations
	markLp []int // membership in the current pivot's Lp
	genLp  int
	mark2  []int // scratch for degree computation / set comparison
	gen2   int

	eliminated int
	lpBuf      []int
	hashBuf    []uint64

	// approx switches the degree update to the AMD-style upper bound;
	// eweight[e] caches |Le| (by weight) at element creation.
	approx  bool
	eweight []int64
}

func newMinDegState(p *sparse.Pattern) *minDegState {
	n := p.N
	md := &minDegState{
		n:       n,
		state:   make([]byte, n),
		w:       make([]int, n),
		adjV:    make([][]int, n),
		adjE:    make([][]int, n),
		evars:   make([][]int, n),
		deg:     make([]int, n),
		members: make([][]int, n),
		dhead:   make([]int, n+1),
		dnext:   make([]int, n),
		dprev:   make([]int, n),
		markLp:  make([]int, n),
		mark2:   make([]int, n),
		hashBuf: make([]uint64, n),
		eweight: make([]int64, n),
	}
	for d := range md.dhead {
		md.dhead[d] = -1
	}
	for i := 0; i < n; i++ {
		md.w[i] = 1
		md.adjV[i] = append([]int(nil), p.Adj(i)...)
		md.deg[i] = len(md.adjV[i])
		md.bucketInsert(i)
	}
	md.minDeg = 0
	return md
}

func (md *minDegState) bucketInsert(i int) {
	d := md.deg[i]
	md.dnext[i] = md.dhead[d]
	md.dprev[i] = -1
	if md.dhead[d] >= 0 {
		md.dprev[md.dhead[d]] = i
	}
	md.dhead[d] = i
	if d < md.minDeg {
		md.minDeg = d
	}
}

func (md *minDegState) bucketRemove(i int) {
	d := md.deg[i]
	if md.dprev[i] >= 0 {
		md.dnext[md.dprev[i]] = md.dnext[i]
	} else {
		md.dhead[d] = md.dnext[i]
	}
	if md.dnext[i] >= 0 {
		md.dprev[md.dnext[i]] = md.dprev[i]
	}
}

// pickMin returns the alive variable of minimum external degree.
func (md *minDegState) pickMin() int {
	for {
		if md.minDeg > md.n {
			panic("order: mindeg bucket scan overflow")
		}
		if h := md.dhead[md.minDeg]; h >= 0 {
			return h
		}
		md.minDeg++
	}
}

func (md *minDegState) eliminateOne() {
	p := md.pickMin()
	md.bucketRemove(p)

	// Build Lp, the variables adjacent to p in the quotient graph, and
	// absorb all elements adjacent to p.
	md.genLp++
	g := md.genLp
	md.markLp[p] = g
	lp := md.lpBuf[:0]
	for _, v := range md.adjV[p] {
		if md.state[v] == mdVar && md.markLp[v] != g {
			md.markLp[v] = g
			lp = append(lp, v)
		}
	}
	for _, e := range md.adjE[p] {
		if md.state[e] != mdElem {
			continue
		}
		for _, v := range md.evars[e] {
			if md.state[v] == mdVar && md.markLp[v] != g {
				md.markLp[v] = g
				lp = append(lp, v)
			}
		}
		md.state[e] = mdDeadElem
		md.evars[e] = nil
	}
	md.lpBuf = lp

	md.state[p] = mdElem
	md.evars[p] = append([]int(nil), lp...)
	md.adjV[p] = nil
	md.adjE[p] = nil
	md.elimSeq = append(md.elimSeq, p)
	md.eliminated += md.w[p]
	var lpWeight int64
	for _, v := range lp {
		lpWeight += int64(md.w[v])
	}
	md.eweight[p] = lpWeight

	// Clean adjacency lists of every Lp member: drop dead elements and
	// append the new element p; drop dead variables and variables covered
	// by p (i.e. other Lp members).
	for _, i := range lp {
		md.bucketRemove(i)
		ne := md.adjE[i][:0]
		for _, e := range md.adjE[i] {
			if md.state[e] == mdElem {
				ne = append(ne, e)
			}
		}
		md.adjE[i] = append(ne, p)
		nv := md.adjV[i][:0]
		for _, v := range md.adjV[i] {
			if md.state[v] == mdVar && md.markLp[v] != g {
				nv = append(nv, v)
			}
		}
		md.adjV[i] = nv
	}

	// Recompute external degrees (exact, or the AMD-style upper bound)
	// and set-hashes for Lp members.
	for _, i := range lp {
		md.gen2++
		md.mark2[i] = md.gen2
		d := int64(0)
		var h uint64
		for _, v := range md.adjV[i] {
			if md.mark2[v] != md.gen2 {
				md.mark2[v] = md.gen2
				d += int64(md.w[v])
			}
			h += uint64(v)*0x9e3779b97f4a7c15 + 1
		}
		for _, e := range md.adjE[i] {
			h += uint64(e)*0xc2b2ae3d27d4eb4f + 3
			if md.approx {
				// Upper bound: element weights summed without
				// deduplicating shared variables; each element's list
				// contains i itself, which external degree excludes.
				d += md.eweight[e] - int64(md.w[i])
				continue
			}
			for _, v := range md.evars[e] {
				if md.state[v] == mdVar && md.mark2[v] != md.gen2 {
					md.mark2[v] = md.gen2
					d += int64(md.w[v])
				}
			}
		}
		if max := int64(md.n - md.eliminated - md.w[i]); d > max {
			d = max
		}
		if d < 0 {
			d = 0
		}
		md.deg[i] = int(d)
		md.hashBuf[i] = h ^ uint64(len(md.adjV[i]))<<32 ^ uint64(len(md.adjE[i]))
	}

	// Mass elimination: merge indistinguishable Lp members. Group by
	// hash, verify exactly, merge j into i.
	for a := 0; a < len(lp); a++ {
		i := lp[a]
		if md.state[i] != mdVar {
			continue
		}
		for b := a + 1; b < len(lp); b++ {
			j := lp[b]
			if md.state[j] != mdVar || md.hashBuf[i] != md.hashBuf[j] {
				continue
			}
			if md.indistinguishable(i, j) {
				md.w[i] += md.w[j]
				md.deg[i] -= md.w[j]
				md.state[j] = mdDeadVar
				md.members[i] = append(md.members[i], j)
				md.members[i] = append(md.members[i], md.members[j]...)
				md.members[j] = nil
				md.adjV[j] = nil
				md.adjE[j] = nil
			}
		}
	}

	// Reinsert surviving Lp members with their new degrees.
	for _, i := range lp {
		if md.state[i] == mdVar {
			md.bucketInsert(i)
		}
	}
}

// indistinguishable reports whether variables i and j have identical
// quotient-graph adjacency (both lists are clean at call time, and both
// exclude all current-Lp variables, in particular each other).
func (md *minDegState) indistinguishable(i, j int) bool {
	if len(md.adjV[i]) != len(md.adjV[j]) || len(md.adjE[i]) != len(md.adjE[j]) {
		return false
	}
	md.gen2++
	for _, v := range md.adjV[i] {
		md.mark2[v] = md.gen2
	}
	for _, v := range md.adjV[j] {
		if md.mark2[v] != md.gen2 {
			return false
		}
	}
	md.gen2++
	for _, e := range md.adjE[i] {
		md.mark2[e] = md.gen2
	}
	for _, e := range md.adjE[j] {
		if md.mark2[e] != md.gen2 {
			return false
		}
	}
	return true
}
