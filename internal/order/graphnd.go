package order

import "blockfanout/internal/sparse"

// GraphND computes a nested-dissection ordering of an arbitrary symmetric
// pattern using breadth-first level-structure separators grown from a
// pseudo-peripheral vertex. It is provided as a geometry-free alternative
// to the grid-specific orderings (the paper uses minimum degree for its
// irregular problems, but general ND is useful for the subtree-to-subcube
// experiments, which want deep, balanced elimination trees).
func GraphND(p *sparse.Pattern) Permutation {
	return graphND(p, ndLeaf, nil)
}

// HybridND is graph nested dissection with minimum-degree ordering of the
// leaf components — the incomplete-nested-dissection hybrid that became
// standard practice after the paper's era: ND gives the top of the tree
// balance and concurrency, minimum degree keeps leaf fill low.
func HybridND(p *sparse.Pattern) Permutation {
	return graphND(p, hybridLeaf, func(pat *sparse.Pattern, comp []int) []int {
		// Build the component's induced subgraph with local labels.
		localOf := make(map[int]int, len(comp))
		for i, v := range comp {
			localOf[v] = i
		}
		var ptr []int
		var ind []int
		ptr = append(ptr, 0)
		for _, v := range comp {
			for _, w := range pat.Adj(v) {
				if lw, ok := localOf[w]; ok {
					ind = append(ind, lw)
				}
			}
			ptr = append(ptr, len(ind))
		}
		sub := &sparse.Pattern{N: len(comp), ColPtr: ptr, RowInd: ind}
		out := make([]int, len(comp))
		for i, l := range MinDeg(sub) {
			out[i] = comp[l]
		}
		return out
	})
}

// graphND is the shared recursion; leafOrder, when non-nil, orders leaf
// components (natural order otherwise).
func graphND(p *sparse.Pattern, leafSize int, leafOrder func(*sparse.Pattern, []int) []int) Permutation {
	n := p.N
	perm := make(Permutation, 0, n)
	// comp holds the vertices of the current subgraph; active marks
	// membership so neighbour scans can be restricted to the subgraph.
	active := make([]int, n) // generation tags; vertex v active iff active[v] == gen
	gen := 0
	level := make([]int, n)
	queue := make([]int, 0, n)

	leaf := func(comp []int) {
		if leafOrder != nil {
			perm = append(perm, leafOrder(p, comp)...)
		} else {
			perm = append(perm, comp...)
		}
	}

	var rec func(comp []int)
	rec = func(comp []int) {
		if len(comp) <= leafSize {
			leaf(comp)
			return
		}
		gen++
		g := gen
		for _, v := range comp {
			active[v] = g
		}
		// BFS from comp[0] to find a far vertex, then BFS again from it
		// (pseudo-peripheral heuristic), building a level structure.
		bfs := func(root int) (order []int, maxLevel int) {
			for _, v := range comp {
				level[v] = -1
			}
			queue = queue[:0]
			queue = append(queue, root)
			level[root] = 0
			for qi := 0; qi < len(queue); qi++ {
				u := queue[qi]
				for _, w := range p.Adj(u) {
					if active[w] == g && level[w] < 0 {
						level[w] = level[u] + 1
						queue = append(queue, w)
					}
				}
			}
			last := queue[len(queue)-1]
			return append([]int(nil), queue...), level[last]
		}
		order1, _ := bfs(comp[0])
		if len(order1) < len(comp) {
			// Disconnected subgraph: order the found component and the
			// rest independently.
			found := order1
			gen++
			g2 := gen
			for _, v := range found {
				active[v] = g2
			}
			rest := make([]int, 0, len(comp)-len(found))
			for _, v := range comp {
				if active[v] != g2 {
					rest = append(rest, v)
				}
			}
			rec(found)
			rec(rest)
			return
		}
		far := order1[len(order1)-1]
		order2, maxL := bfs(far)
		if maxL < 2 {
			// Diameter too small to split usefully.
			leaf(comp)
			return
		}
		// Separator = middle BFS level; halves = levels below / above.
		mid := maxL / 2
		var lo, hi, sep []int
		for _, v := range order2 {
			switch {
			case level[v] < mid:
				lo = append(lo, v)
			case level[v] > mid:
				hi = append(hi, v)
			default:
				sep = append(sep, v)
			}
		}
		lo, hi, sep = thinSeparator(p, lo, hi, sep, level, mid, active, g)
		rec(lo)
		rec(hi)
		perm = append(perm, sep...)
	}

	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	rec(all)
	return perm
}

// ndLeaf is the plain graph-ND leaf size; hybridLeaf is larger so the
// minimum-degree leaf ordering has room to reduce fill.
const (
	ndLeaf     = 32
	hybridLeaf = 200
)

// thinSeparator shrinks a BFS level separator: a separator vertex with no
// neighbours in one half can safely join the other half (smaller halves
// when it touches neither). The level array identifies which side a
// neighbour is on (level < mid: lo side; > mid: hi side). Separator
// vertices that move join the half's vertex list; the result is still a
// valid vertex separator because only vertices without cross-edges leave.
func thinSeparator(p *sparse.Pattern, lo, hi, sep []int, level []int, mid int,
	active []int, gen int) (nlo, nhi, nsep []int) {
	nlo, nhi = lo, hi
	// inSep lets neighbour scans distinguish separator membership from
	// the halves (all three sets share the same BFS generation).
	inSep := make(map[int]bool, len(sep))
	for _, v := range sep {
		inSep[v] = true
	}
	for _, v := range sep {
		touchLo, touchHi := false, false
		for _, w := range p.Adj(v) {
			if active[w] != gen || inSep[w] {
				continue // outside this subgraph, or still in the separator
			}
			if level[w] < mid {
				touchLo = true
			} else if level[w] > mid {
				touchHi = true
			}
		}
		switch {
		case touchLo && touchHi:
			nsep = append(nsep, v) // genuinely separates
		case touchLo:
			nlo = append(nlo, v)
			level[v] = mid - 1
			delete(inSep, v)
		case touchHi:
			nhi = append(nhi, v)
			level[v] = mid + 1
			delete(inSep, v)
		default:
			// Isolated from both halves: join the smaller one.
			if len(nlo) <= len(nhi) {
				nlo = append(nlo, v)
				level[v] = mid - 1
			} else {
				nhi = append(nhi, v)
				level[v] = mid + 1
			}
			delete(inSep, v)
		}
	}
	return nlo, nhi, nsep
}
