package order

// Geometric nested dissection for regular grids. The paper pre-orders its
// 2-D and 3-D grid problems with nested dissection, which is asymptotically
// optimal for these problems; for a k×k grid the separator is a grid line,
// for a k×k×k cube a grid plane. Halves are ordered recursively and the
// separator is numbered last, so elimination proceeds leaves-first.

// leafSize is the subgrid size below which vertices are ordered naturally.
// Small leaves keep the elimination tree bushy without measurable fill
// penalty.
const leafSize = 3

// NestedDissection2D returns a nested-dissection permutation for the
// 5-point k×k grid with vertex (x,y) at index x*k+y (matching gen.Grid2D).
func NestedDissection2D(k int) Permutation {
	perm := make(Permutation, 0, k*k)
	var rec func(x0, y0, w, h int)
	rec = func(x0, y0, w, h int) {
		if w <= 0 || h <= 0 {
			return
		}
		if w <= leafSize && h <= leafSize {
			for x := x0; x < x0+w; x++ {
				for y := y0; y < y0+h; y++ {
					perm = append(perm, x*k+y)
				}
			}
			return
		}
		if w >= h {
			// Vertical separator at column x0+w/2.
			sx := x0 + w/2
			rec(x0, y0, sx-x0, h)
			rec(sx+1, y0, x0+w-sx-1, h)
			for y := y0; y < y0+h; y++ {
				perm = append(perm, sx*k+y)
			}
		} else {
			// Horizontal separator at row y0+h/2.
			sy := y0 + h/2
			rec(x0, y0, w, sy-y0)
			rec(x0, sy+1, w, y0+h-sy-1)
			for x := x0; x < x0+w; x++ {
				perm = append(perm, x*k+sy)
			}
		}
	}
	rec(0, 0, k, k)
	return perm
}

// NestedDissection3D returns a nested-dissection permutation for the
// 7-point k×k×k grid with vertex (x,y,z) at index (x*k+y)*k+z (matching
// gen.Cube3D). Separators are grid planes orthogonal to the longest axis.
func NestedDissection3D(k int) Permutation {
	perm := make(Permutation, 0, k*k*k)
	var rec func(x0, y0, z0, dx, dy, dz int)
	rec = func(x0, y0, z0, dx, dy, dz int) {
		if dx <= 0 || dy <= 0 || dz <= 0 {
			return
		}
		if dx <= leafSize && dy <= leafSize && dz <= leafSize {
			for x := x0; x < x0+dx; x++ {
				for y := y0; y < y0+dy; y++ {
					for z := z0; z < z0+dz; z++ {
						perm = append(perm, (x*k+y)*k+z)
					}
				}
			}
			return
		}
		switch {
		case dx >= dy && dx >= dz:
			sx := x0 + dx/2
			rec(x0, y0, z0, sx-x0, dy, dz)
			rec(sx+1, y0, z0, x0+dx-sx-1, dy, dz)
			for y := y0; y < y0+dy; y++ {
				for z := z0; z < z0+dz; z++ {
					perm = append(perm, (sx*k+y)*k+z)
				}
			}
		case dy >= dz:
			sy := y0 + dy/2
			rec(x0, y0, z0, dx, sy-y0, dz)
			rec(x0, sy+1, z0, dx, y0+dy-sy-1, dz)
			for x := x0; x < x0+dx; x++ {
				for z := z0; z < z0+dz; z++ {
					perm = append(perm, (x*k+sy)*k+z)
				}
			}
		default:
			sz := z0 + dz/2
			rec(x0, y0, z0, dx, dy, sz-z0)
			rec(x0, y0, sz+1, dx, dy, z0+dz-sz-1)
			for x := x0; x < x0+dx; x++ {
				for y := y0; y < y0+dy; y++ {
					perm = append(perm, (x*k+y)*k+sz)
				}
			}
		}
	}
	rec(0, 0, 0, k, k, k)
	return perm
}
