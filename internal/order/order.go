// Package order provides fill-reducing orderings for symmetric sparse
// matrices: natural (identity), geometric nested dissection for 2-D grids
// and 3-D cubes (the paper's ordering for the regular model problems),
// general-graph nested dissection, and a quotient-graph minimum-degree
// ordering with mass elimination (the paper's ordering family — multiple
// minimum degree — for the irregular problems).
package order

import (
	"fmt"

	"blockfanout/internal/sparse"
)

// Permutation maps new indices to old: perm[new] = old. Applying it to a
// matrix A yields B with B(i,j) = A(perm[i], perm[j]).
type Permutation []int

// Identity returns the natural ordering of size n.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate reports whether p is a permutation of 0..n-1.
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for pos, v := range p {
		if v < 0 || v >= len(p) {
			return fmt.Errorf("order: value %d out of range at position %d", v, pos)
		}
		if seen[v] {
			return fmt.Errorf("order: duplicate value %d at position %d", v, pos)
		}
		seen[v] = true
	}
	return nil
}

// Inverse returns q with q[old] = new.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for newIdx, old := range p {
		q[old] = newIdx
	}
	return q
}

// Compose returns the permutation equivalent to applying p first and then
// q to the result: r[new] = p[q[new]].
func (p Permutation) Compose(q Permutation) Permutation {
	r := make(Permutation, len(p))
	for i := range r {
		r[i] = p[q[i]]
	}
	return r
}

// Apply permutes x (indexed by old labels) into a new slice indexed by new
// labels: out[new] = x[perm[new]].
func (p Permutation) Apply(x []float64) []float64 {
	out := make([]float64, len(p))
	for i, old := range p {
		out[i] = x[old]
	}
	return out
}

// ApplyInverse scatters x (indexed by new labels) back to old labels:
// out[perm[new]] = x[new].
func (p Permutation) ApplyInverse(x []float64) []float64 {
	out := make([]float64, len(p))
	for i, old := range p {
		out[old] = x[i]
	}
	return out
}

// Method identifies an ordering algorithm.
type Method int

const (
	Natural Method = iota
	NDGrid2D
	NDCube3D
	NDGraph
	MinDegree
	CuthillMcKee    // reverse Cuthill–McKee (bandwidth/profile baseline)
	NDHybrid        // graph nested dissection with minimum-degree leaves
	MinDegreeApprox // minimum degree with AMD-style approximate degrees
)

func (m Method) String() string {
	switch m {
	case Natural:
		return "natural"
	case NDGrid2D:
		return "nd-grid2d"
	case NDCube3D:
		return "nd-cube3d"
	case NDGraph:
		return "nd-graph"
	case MinDegree:
		return "mindeg"
	case CuthillMcKee:
		return "rcm"
	case NDHybrid:
		return "nd-hybrid"
	case MinDegreeApprox:
		return "amd"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// Compute runs the requested ordering. gridDim is required for the
// geometric methods (the grid side length k) and ignored otherwise.
func Compute(m Method, a *sparse.Matrix, gridDim int) (Permutation, error) {
	switch m {
	case Natural:
		return Identity(a.N), nil
	case NDGrid2D:
		if gridDim*gridDim != a.N {
			return nil, fmt.Errorf("order: NDGrid2D dim %d² != n=%d", gridDim, a.N)
		}
		return NestedDissection2D(gridDim), nil
	case NDCube3D:
		if gridDim*gridDim*gridDim != a.N {
			return nil, fmt.Errorf("order: NDCube3D dim %d³ != n=%d", gridDim, a.N)
		}
		return NestedDissection3D(gridDim), nil
	case NDGraph:
		return GraphND(sparse.PatternOf(a)), nil
	case MinDegree:
		return MinDeg(sparse.PatternOf(a)), nil
	case CuthillMcKee:
		return RCM(sparse.PatternOf(a)), nil
	case NDHybrid:
		return HybridND(sparse.PatternOf(a)), nil
	case MinDegreeApprox:
		return MinDegApprox(sparse.PatternOf(a)), nil
	}
	return nil, fmt.Errorf("order: unknown method %v", m)
}
