package order

import (
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// bandwidth returns max |i−j| over edges of the permuted pattern.
func bandwidth(p *sparse.Pattern, perm Permutation) int {
	pos := make([]int, len(perm))
	for newIdx, old := range perm {
		pos[old] = newIdx
	}
	bw := 0
	for v := 0; v < p.N; v++ {
		for _, w := range p.Adj(v) {
			d := pos[v] - pos[w]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}

func TestRCMValid(t *testing.T) {
	for _, m := range []*sparse.Matrix{
		gen.Grid2D(10),
		gen.IrregularMesh(200, 5, 3, 6),
		gen.Dense(15),
	} {
		perm := RCM(sparse.PatternOf(m))
		if len(perm) != m.N {
			t.Fatalf("len %d", len(perm))
		}
		if err := perm.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A grid numbered row-major already has bandwidth k; scramble it and
	// verify RCM restores a bandwidth close to k.
	k := 14
	m := gen.Grid2D(k)
	// Scramble: bit-reversal-ish permutation.
	scram := make(Permutation, m.N)
	for i := range scram {
		scram[i] = (i*2654435761 + 17) % m.N
	}
	used := make([]bool, m.N)
	idx := 0
	for i := range scram {
		v := scram[i]
		for used[v] {
			v = (v + 1) % m.N
		}
		used[v] = true
		scram[i] = v
		idx++
	}
	sm, err := m.Permute(scram)
	if err != nil {
		t.Fatal(err)
	}
	spat := sparse.PatternOf(sm)
	before := bandwidth(spat, Identity(m.N))
	after := bandwidth(spat, RCM(spat))
	if after >= before {
		t.Fatalf("RCM bandwidth %d not below scrambled %d", after, before)
	}
	if after > 3*k {
		t.Fatalf("RCM bandwidth %d far from grid bandwidth %d", after, k)
	}
}

func TestRCMDisconnected(t *testing.T) {
	ts := []sparse.Triplet{}
	n := 10
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 2})
	}
	ts = append(ts, sparse.Triplet{Row: 1, Col: 0, Val: -1})
	ts = append(ts, sparse.Triplet{Row: 5, Col: 4, Val: -1})
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	perm := RCM(sparse.PatternOf(m))
	if err := perm.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRCMViaCompute(t *testing.T) {
	m := gen.Grid2D(8)
	p, err := Compute(CuthillMcKee, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if CuthillMcKee.String() != "rcm" {
		t.Fatal("method name")
	}
}
