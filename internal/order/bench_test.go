package order

import (
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// Ordering benchmarks on a mid-size irregular mesh: the analysis phase the
// paper runs sequentially before every parallel factorization.

func benchPattern(n int) *sparse.Pattern {
	return sparse.PatternOf(gen.IrregularMesh(n, 8, 3, 99))
}

func BenchmarkMinDegExact2k(b *testing.B) {
	p := benchPattern(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinDeg(p)
	}
}

func BenchmarkMinDegApprox2k(b *testing.B) {
	p := benchPattern(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MinDegApprox(p)
	}
}

func BenchmarkGraphND2k(b *testing.B) {
	p := benchPattern(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GraphND(p)
	}
}

func BenchmarkHybridND2k(b *testing.B) {
	p := benchPattern(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HybridND(p)
	}
}

func BenchmarkRCM2k(b *testing.B) {
	p := benchPattern(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RCM(p)
	}
}

func BenchmarkNestedDissection2D150(b *testing.B) {
	for i := 0; i < b.N; i++ {
		NestedDissection2D(150)
	}
}
