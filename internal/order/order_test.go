package order

import (
	"testing"
	"testing/quick"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

func TestIdentity(t *testing.T) {
	p := Identity(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if v != i {
			t.Fatalf("Identity[%d]=%d", i, v)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	if err := Permutation([]int{0, 0, 1}).Validate(); err == nil {
		t.Fatal("duplicate accepted")
	}
	if err := Permutation([]int{0, 3, 1}).Validate(); err == nil {
		t.Fatal("out-of-range accepted")
	}
}

func TestInverseCompose(t *testing.T) {
	p := Permutation([]int{2, 0, 3, 1})
	inv := p.Inverse()
	id := p.Compose(inv)
	// p[inv[new]] should be... verify p∘p⁻¹ on values: applying inv then p
	// must be identity in the appropriate sense: p[inv[old]] = old.
	for old := 0; old < 4; old++ {
		if p[inv[old]] != old {
			t.Fatalf("p[inv[%d]]=%d", old, p[inv[old]])
		}
	}
	_ = id
}

func TestApplyInverseRoundTrip(t *testing.T) {
	p := Permutation([]int{2, 0, 3, 1})
	x := []float64{10, 11, 12, 13}
	y := p.Apply(x)
	for newIdx := range y {
		if y[newIdx] != x[p[newIdx]] {
			t.Fatalf("Apply wrong at %d", newIdx)
		}
	}
	z := p.ApplyInverse(y)
	for i := range z {
		if z[i] != x[i] {
			t.Fatalf("round trip broken at %d", i)
		}
	}
}

func TestQuickComposeAssociativeWithApply(t *testing.T) {
	// Property: Apply(Compose(p,q), x) == Apply(p, Apply(q,... careful:
	// r = p.Compose(q) means r[new] = p[q[new]], so applying r to x
	// equals applying q to (p applied to x).
	f := func(seed uint8) bool {
		n := 4 + int(seed%5)
		mk := func(s int) Permutation {
			p := Identity(n)
			for i := n - 1; i > 0; i-- {
				j := (i*s + 1) % (i + 1)
				p[i], p[j] = p[j], p[i]
			}
			return p
		}
		p, q := mk(int(seed)+2), mk(int(seed)*3+5)
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i * i)
		}
		r := p.Compose(q)
		if r.Validate() != nil {
			return false
		}
		lhs := r.Apply(x)
		rhs := q.Apply(p.Apply(x))
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// fillOf returns nnz(L) for matrix m under permutation p.
func fillOf(t *testing.T, m *sparse.Matrix, p Permutation) int64 {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("invalid permutation: %v", err)
	}
	pm, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	tr := etree.Build(pm)
	return etree.FactorStats(tr.ColCounts()).NZinL
}

func TestNestedDissection2D(t *testing.T) {
	for _, k := range []int{1, 2, 3, 7, 12, 20} {
		p := NestedDissection2D(k)
		if len(p) != k*k {
			t.Fatalf("k=%d: len=%d", k, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	// Fill must be much lower than the natural ordering on a real grid.
	k := 20
	m := gen.Grid2D(k)
	nat := fillOf(t, m, Identity(k*k))
	nd := fillOf(t, m, NestedDissection2D(k))
	if nd >= nat {
		t.Fatalf("ND fill %d not better than natural %d", nd, nat)
	}
}

func TestNestedDissection3D(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		p := NestedDissection3D(k)
		if len(p) != k*k*k {
			t.Fatalf("k=%d: len=%d", k, len(p))
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	k := 7
	m := gen.Cube3D(k)
	nat := fillOf(t, m, Identity(k*k*k))
	nd := fillOf(t, m, NestedDissection3D(k))
	if nd >= nat {
		t.Fatalf("ND fill %d not better than natural %d", nd, nat)
	}
}

func TestMinDegValidAndReducesFill(t *testing.T) {
	m := gen.IrregularMesh(400, 6, 3, 11)
	p := MinDeg(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	nat := fillOf(t, m, Identity(m.N))
	md := fillOf(t, m, p)
	if float64(md) > 0.8*float64(nat) {
		t.Fatalf("mindeg fill %d vs natural %d: insufficient reduction", md, nat)
	}
}

func TestMinDegOnGrid(t *testing.T) {
	k := 15
	m := gen.Grid2D(k)
	p := MinDeg(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	nat := fillOf(t, m, Identity(m.N))
	md := fillOf(t, m, p)
	if md >= nat {
		t.Fatalf("mindeg fill %d not better than natural %d on grid", md, nat)
	}
}

func TestMinDegDense(t *testing.T) {
	// Fully dense pattern: any elimination order gives the same fill;
	// MinDeg must terminate and produce a valid permutation.
	m := gen.Dense(24)
	p := MinDeg(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinDegDisconnected(t *testing.T) {
	// Two disconnected paths plus isolated vertices.
	ts := []sparse.Triplet{}
	n := 12
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4})
	}
	for i := 1; i < 5; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
	}
	for i := 7; i < 10; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	p := MinDeg(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMinDegEmpty(t *testing.T) {
	p := MinDeg(&sparse.Pattern{N: 0, ColPtr: []int{0}})
	if len(p) != 0 {
		t.Fatal("nonempty permutation for empty pattern")
	}
}

func TestGraphNDValid(t *testing.T) {
	for _, m := range []*sparse.Matrix{
		gen.Grid2D(12),
		gen.IrregularMesh(300, 5, 3, 3),
	} {
		p := GraphND(sparse.PatternOf(m))
		if len(p) != m.N {
			t.Fatalf("len=%d, want %d", len(p), m.N)
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGraphNDReducesFillOnGrid(t *testing.T) {
	k := 20
	m := gen.Grid2D(k)
	nat := fillOf(t, m, Identity(k*k))
	nd := fillOf(t, m, GraphND(sparse.PatternOf(m)))
	if nd >= nat {
		t.Fatalf("graph ND fill %d not better than natural %d", nd, nat)
	}
}

func TestGraphNDDisconnected(t *testing.T) {
	// Three isolated vertices only.
	m, err := sparse.FromTriplets(3, []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 1, Val: 1}, {Row: 2, Col: 2, Val: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	p := GraphND(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestComputeDispatch(t *testing.T) {
	m := gen.Grid2D(6)
	for _, method := range []Method{Natural, NDGrid2D, NDGraph, MinDegree} {
		p, err := Compute(method, m, 6)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%v: %v", method, err)
		}
	}
	if _, err := Compute(NDGrid2D, m, 5); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Compute(NDCube3D, m, 6); err == nil {
		t.Fatal("cube dimension mismatch accepted")
	}
	if _, err := Compute(Method(99), m, 0); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestMethodString(t *testing.T) {
	for m, want := range map[Method]string{
		Natural: "natural", NDGrid2D: "nd-grid2d", NDCube3D: "nd-cube3d",
		NDGraph: "nd-graph", MinDegree: "mindeg",
	} {
		if m.String() != want {
			t.Fatalf("%v", m)
		}
	}
}

// Property: MinDeg output is always a valid permutation for random meshes.
func TestQuickMinDegValid(t *testing.T) {
	f := func(seed uint16) bool {
		n := 50 + int(seed%100)
		m := gen.IrregularMesh(n, 3+int(seed%4), 3, uint64(seed)+1)
		p := MinDeg(sparse.PatternOf(m))
		return p.Validate() == nil && len(p) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHybridNDValidAndBetterThanPlainND(t *testing.T) {
	m := gen.IrregularMesh(800, 6, 3, 21)
	pat := sparse.PatternOf(m)
	ph := HybridND(pat)
	if err := ph.Validate(); err != nil {
		t.Fatal(err)
	}
	fillH := fillOf(t, m, ph)
	fillN := fillOf(t, m, GraphND(pat))
	if fillH >= fillN {
		t.Fatalf("hybrid fill %d not below plain graph ND %d", fillH, fillN)
	}
}

func TestHybridNDDisconnected(t *testing.T) {
	ts := []sparse.Triplet{}
	n := 500
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4})
	}
	// Two disjoint chains longer than the leaf size.
	for i := 1; i < 240; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
	}
	for i := 251; i < 500; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	p := HybridND(sparse.PatternOf(m))
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestThinSeparatorValidAndSmaller(t *testing.T) {
	// Directly exercise the separator-thinning pass: build a BFS level
	// split on a grid with a deliberately fat separator (two levels worth
	// of vertices in sep) and check validity of the thinned result.
	k := 12
	m := gen.Grid2D(k)
	pat := sparse.PatternOf(m)
	n := m.N
	active := make([]int, n)
	level := make([]int, n)
	gen1 := 1
	for v := 0; v < n; v++ {
		active[v] = gen1
		level[v] = v / k // row index as BFS level proxy
	}
	mid := k / 2
	var lo, hi, sep []int
	for v := 0; v < n; v++ {
		switch {
		case level[v] < mid:
			lo = append(lo, v)
		case level[v] > mid:
			hi = append(hi, v)
		default:
			sep = append(sep, v)
		}
	}
	nlo, nhi, nsep := thinSeparator(pat, lo, hi, sep, level, mid, active, gen1)
	if len(nlo)+len(nhi)+len(nsep) != n {
		t.Fatalf("vertices lost: %d+%d+%d != %d", len(nlo), len(nhi), len(nsep), n)
	}
	// Validity: no edge between nlo and nhi.
	side := make(map[int]int, n)
	for _, v := range nlo {
		side[v] = 1
	}
	for _, v := range nhi {
		side[v] = 2
	}
	for _, v := range nlo {
		for _, w := range pat.Adj(v) {
			if side[w] == 2 {
				t.Fatalf("edge (%d,%d) crosses thinned separator", v, w)
			}
		}
	}
	if len(nsep) > len(sep) {
		t.Fatalf("separator grew: %d > %d", len(nsep), len(sep))
	}
}

func TestMinDegApproxQuality(t *testing.T) {
	for _, seed := range []uint64{7, 19} {
		m := gen.IrregularMesh(500, 6, 3, seed)
		pat := sparse.PatternOf(m)
		exact := MinDeg(pat)
		approx := MinDegApprox(pat)
		if err := approx.Validate(); err != nil {
			t.Fatal(err)
		}
		fe := fillOf(t, m, exact)
		fa := fillOf(t, m, approx)
		// The approximate degree may lose some quality but must stay in
		// the same regime (AMD's classic behaviour).
		if float64(fa) > 1.6*float64(fe) {
			t.Fatalf("seed %d: approx fill %d vs exact %d", seed, fa, fe)
		}
		nat := fillOf(t, m, Identity(m.N))
		if fa >= nat {
			t.Fatalf("seed %d: approx fill %d not below natural %d", seed, fa, nat)
		}
	}
}

func TestMinDegApproxDenseAndEmpty(t *testing.T) {
	if p := MinDegApprox(sparse.PatternOf(gen.Dense(20))); p.Validate() != nil {
		t.Fatal("dense")
	}
	if p := MinDegApprox(&sparse.Pattern{N: 0, ColPtr: []int{0}}); len(p) != 0 {
		t.Fatal("empty")
	}
}
