package order

import "blockfanout/internal/sparse"

// RCM computes the reverse Cuthill–McKee ordering: a breadth-first
// traversal from a pseudo-peripheral vertex with neighbours visited in
// increasing-degree order, reversed. RCM minimizes bandwidth rather than
// fill, so it is a profile/envelope baseline against which the paper-era
// fill-reducing orderings (nested dissection, minimum degree) can be
// compared; it is included for completeness of the ordering toolkit.
func RCM(p *sparse.Pattern) Permutation {
	n := p.N
	perm := make(Permutation, 0, n)
	visited := make([]bool, n)
	level := make([]int, n)
	queue := make([]int, 0, n)

	// bfs fills queue with the component of root in BFS order and
	// returns the vertex in the last level with smallest degree.
	bfs := func(root int) (last int, comp []int) {
		queue = queue[:0]
		queue = append(queue, root)
		seen := map[int]bool{root: true}
		level[root] = 0
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, w := range p.Adj(u) {
				if !visited[w] && !seen[w] {
					seen[w] = true
					level[w] = level[u] + 1
					queue = append(queue, w)
				}
			}
		}
		last = queue[len(queue)-1]
		maxLevel := level[last]
		for _, v := range queue {
			if level[v] == maxLevel && p.Degree(v) < p.Degree(last) {
				last = v
			}
		}
		return last, queue
	}

	// insertion-sort neighbours by degree (lists are short).
	byDegree := func(vs []int) {
		for i := 1; i < len(vs); i++ {
			v := vs[i]
			j := i - 1
			for j >= 0 && p.Degree(vs[j]) > p.Degree(v) {
				vs[j+1] = vs[j]
				j--
			}
			vs[j+1] = v
		}
	}

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		// Pseudo-peripheral start: two BFS sweeps.
		far, _ := bfs(start)
		root, _ := bfs(far)

		// Cuthill–McKee over the component.
		order := make([]int, 0, 16)
		order = append(order, root)
		visited[root] = true
		nbrs := make([]int, 0, 16)
		for qi := 0; qi < len(order); qi++ {
			u := order[qi]
			nbrs = nbrs[:0]
			for _, w := range p.Adj(u) {
				if !visited[w] {
					visited[w] = true
					nbrs = append(nbrs, w)
				}
			}
			byDegree(nbrs)
			order = append(order, nbrs...)
		}
		// Reverse the component's ordering.
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
		perm = append(perm, order...)
	}
	return perm
}
