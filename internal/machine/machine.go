// Package machine is a discrete-event simulator of a distributed-memory
// multicomputer running the block fan-out method. It executes exactly the
// same data-driven protocol as the real parallel executor (package fanout)
// — same ownership, same dependencies, same fan-out messages — but in
// virtual time under a configurable machine model, standing in for the
// 196-node Intel Paragon of the paper (see DESIGN.md, substitutions).
//
// The machine model charges each block operation its flop time plus a fixed
// per-operation overhead (the paper's one-thousand-op fixed cost), each
// message a sender/receiver CPU overhead, and delivers messages after a
// latency plus size/bandwidth delay. Processors act on received blocks in
// arrival order, as the paper's code does.
package machine

import (
	"container/heap"

	"blockfanout/internal/sched"
)

// Config is the machine model. The Paragon defaults follow §3.1: 50 µs
// message latency, ~40 MB/s effective bandwidth for the message sizes the
// code uses, and 20–40 Mflop/s per-node BLAS performance.
type Config struct {
	FlopRate     float64 // flop/s per processor
	OpOverhead   float64 // seconds of fixed cost per block operation
	Latency      float64 // seconds of network latency per message
	Bandwidth    float64 // bytes/s per link
	SendOverhead float64 // sender CPU seconds per message
	RecvOverhead float64 // receiver CPU seconds per message
	// Policy orders each processor's receive queue: FIFO is the paper's
	// data-driven code; CritPath is the §5 priority-scheduling conjecture.
	Policy Policy
	// CollectTrace records a Span per busy interval into Result.Spans for
	// timeline rendering (O(#operations) memory; meant for small runs).
	CollectTrace bool
	// MeshDims, when non-zero, models the Paragon's physical 2-D mesh
	// interconnect: processor id p sits at (p/MeshDims[1], p%MeshDims[1])
	// and each message pays HopLatency per Manhattan-distance hop on top
	// of the base latency. Zero dims model a distance-oblivious network.
	MeshDims   [2]int
	HopLatency float64
}

// hopDelay returns the topology-dependent extra latency between two
// processors.
func (c *Config) hopDelay(from, to int32) float64 {
	if c.MeshDims[0] == 0 || c.MeshDims[1] == 0 || c.HopLatency == 0 {
		return 0
	}
	cols := c.MeshDims[1]
	fr, fc := int(from)/cols, int(from)%cols
	tr, tc := int(to)/cols, int(to)%cols
	dr, dc := fr-tr, fc-tc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return float64(dr+dc) * c.HopLatency
}

// Span is one busy interval of a processor in the simulated timeline.
type Span struct {
	Proc       int32
	Start, End float64
	Comm       bool // communication overhead rather than computation
}

// Paragon returns the Intel Paragon model of §3.1. The per-operation fixed
// overhead equals the paper's one-thousand-flop fixed cost at this flop
// rate, keeping the simulator consistent with the balance work measure.
func Paragon() Config {
	const rate = 30e6
	return Config{
		FlopRate:     rate,
		OpOverhead:   1000 / rate,
		Latency:      50e-6,
		Bandwidth:    40e6,
		SendOverhead: 25e-6,
		RecvOverhead: 25e-6,
	}
}

// Result reports the outcome of a simulated factorization.
type Result struct {
	Time     float64 // parallel makespan (seconds)
	SeqTime  float64 // analytic single-processor time under the same model
	Messages int64
	Bytes    int64

	CompTime []float64 // per-processor computation CPU time
	CommTime []float64 // per-processor communication CPU time
	Flops    []int64   // per-processor executed flops
	Spans    []Span    // busy intervals, when Config.CollectTrace is set
}

// Efficiency returns t_seq/(P·t_parallel), the paper's efficiency measure.
func (r *Result) Efficiency() float64 {
	p := float64(len(r.CompTime))
	if r.Time <= 0 || p == 0 {
		return 1
	}
	return r.SeqTime / (p * r.Time)
}

// Mflops returns achieved performance in Mflop/s given the operation count
// of the best sequential algorithm (the paper's convention).
func (r *Result) Mflops(seqOps int64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(seqOps) / r.Time / 1e6
}

// CommFraction returns the largest per-processor share of runtime spent on
// communication CPU costs (the §5 "<20% of total runtime" measurement).
func (r *Result) CommFraction() float64 {
	worst := 0.0
	for _, c := range r.CommTime {
		if f := c / r.Time; f > worst {
			worst = f
		}
	}
	return worst
}

// Breakdown returns the machine-wide mean shares of the parallel runtime
// spent computing, communicating, and idle. The paper's §5 instrumentation
// found that "most of the processor time not spent performing useful
// factorization work is spent idle, waiting for the arrival of data".
func (r *Result) Breakdown() (comp, comm, idle float64) {
	if r.Time <= 0 || len(r.CompTime) == 0 {
		return 0, 0, 0
	}
	for p := range r.CompTime {
		comp += r.CompTime[p]
		comm += r.CommTime[p]
	}
	total := r.Time * float64(len(r.CompTime))
	comp /= total
	comm /= total
	idle = 1 - comp - comm
	return comp, comm, idle
}

type event struct {
	t      float64
	seq    int64
	proc   int32
	id     int32
	remote bool
	seed   bool // initial BFAC of a leaf diagonal block
	ready  bool // processor-became-free event (id unused)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Simulate runs the block fan-out schedule under the machine model.
func Simulate(pr *sched.Program, cfg Config) Result {
	np := pr.NProc
	res := Result{
		CompTime: make([]float64, np),
		CommTime: make([]float64, np),
		Flops:    make([]int64, np),
	}
	res.SeqTime = float64(pr.BS.TotalFlops)/cfg.FlopRate + float64(pr.BS.TotalOps)*cfg.OpOverhead

	modsLeft := append([]int32(nil), pr.NMods...)
	diagReady := make([]bool, pr.NBlocks)
	done := make([]bool, pr.NBlocks)
	arrivedAt := make([]map[int32]bool, np)
	for p := range arrivedAt {
		arrivedAt[p] = make(map[int32]bool)
	}

	var h eventHeap
	var seq int64
	push := func(t float64, p, id int32, remote, seed bool) {
		seq++
		heap.Push(&h, event{t: t, seq: seq, proc: p, id: id, remote: remote, seed: seed})
	}
	pushReady := func(t float64, p int32) {
		seq++
		heap.Push(&h, event{t: t, seq: seq, proc: p, ready: true})
	}

	// Per-processor receive queues and the scheduling policy over them.
	type pend struct {
		id     int32
		seq    int64
		remote bool
		seed   bool
	}
	pending := make([][]pend, np)
	idle := make([]bool, np)
	for p := range idle {
		idle[p] = true
	}
	var prio []float64
	if cfg.Policy == CritPath {
		prio = Priorities(pr, cfg)
	}
	pickNext := func(p int32) pend {
		q := pending[p]
		best := 0
		if prio != nil {
			for i := 1; i < len(q); i++ {
				if prio[q[i].id] > prio[q[best].id] {
					best = i
				}
			}
		}
		it := q[best]
		pending[p] = append(q[:best], q[best+1:]...)
		return it
	}

	// now/me are the simulation cursor while a processor handles a batch.
	var now float64
	var me int32

	span := func(start float64, comm bool) {
		if cfg.CollectTrace && now > start {
			res.Spans = append(res.Spans, Span{Proc: me, Start: start, End: now, Comm: comm})
		}
	}

	charge := func(flops int64) {
		dt := float64(flops)/cfg.FlopRate + cfg.OpOverhead
		start := now
		now += dt
		res.CompTime[me] += dt
		res.Flops[me] += flops
		span(start, false)
	}

	complete := func(id int32) {
		done[id] = true
		for _, c := range pr.Consumers[id] {
			if c == me {
				push(now, me, id, false, false)
				continue
			}
			start := now
			res.CommTime[me] += cfg.SendOverhead
			now += cfg.SendOverhead
			res.Messages++
			res.Bytes += pr.Bytes[id]
			span(start, true)
			push(now+cfg.Latency+cfg.hopDelay(me, c)+float64(pr.Bytes[id])/cfg.Bandwidth, c, id, true, false)
		}
	}

	finish := func(id int32) {
		charge(pr.OwnOpFlops[id])
		complete(id)
	}

	var handle func(id int32)
	handle = func(id int32) {
		if arrivedAt[me][id] {
			return
		}
		arrivedAt[me][id] = true
		k := int(pr.ColOf[id])
		idx := int(pr.IdxOf[id])
		colK := &pr.BS.Cols[k]
		if idx == 0 {
			for j := 1; j < len(colK.Blocks); j++ {
				bid := pr.BlockID(k, j)
				if pr.Owner[bid] != me {
					continue
				}
				diagReady[bid] = true
				if modsLeft[bid] == 0 && !done[bid] {
					finish(bid)
				}
			}
			return
		}
		for j := 1; j < len(colK.Blocks); j++ {
			other := pr.BlockID(k, j)
			dest := pr.ModDestID(k, idx, j)
			if pr.Owner[dest] != me {
				continue
			}
			if other == id || arrivedAt[me][other] {
				charge(pr.ModFlops(k, idx, j))
				modsLeft[dest]--
				if modsLeft[dest] == 0 && !done[dest] {
					if pr.IdxOf[dest] == 0 || diagReady[dest] {
						finish(dest)
					}
				}
			}
		}
	}

	// Seed events: leaf diagonal blocks are factorable at t=0.
	for j := range pr.BS.Cols {
		id := pr.BlockID(j, 0)
		if pr.NMods[id] == 0 {
			push(0, pr.Owner[id], id, false, true)
		}
	}

	var makespan float64
	// runOne lets processor p (free at time t) pick and process one
	// pending block, then schedules its next wake-up.
	runOne := func(p int32, t float64) {
		it := pickNext(p)
		me = p
		now = t
		if it.remote {
			start := now
			res.CommTime[me] += cfg.RecvOverhead
			now += cfg.RecvOverhead
			span(start, true)
		}
		if it.seed {
			finish(it.id)
		} else {
			handle(it.id)
		}
		idle[p] = false
		if now > makespan {
			makespan = now
		}
		pushReady(now, p)
	}
	for h.Len() > 0 {
		ev := heap.Pop(&h).(event)
		if ev.ready {
			if len(pending[ev.proc]) > 0 {
				runOne(ev.proc, ev.t)
			} else {
				idle[ev.proc] = true
			}
			continue
		}
		pending[ev.proc] = append(pending[ev.proc], pend{
			id: ev.id, seq: ev.seq, remote: ev.remote, seed: ev.seed,
		})
		if idle[ev.proc] {
			idle[ev.proc] = false
			runOne(ev.proc, ev.t)
		}
	}
	res.Time = makespan
	return res
}
