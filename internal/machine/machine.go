// Package machine is a discrete-event simulator of a distributed-memory
// multicomputer running the block fan-out method. It executes exactly the
// same data-driven protocol as the real parallel executor (package fanout)
// — same ownership, same dependencies, same fan-out messages — but in
// virtual time under a configurable machine model, standing in for the
// 196-node Intel Paragon of the paper (see DESIGN.md, substitutions).
//
// The machine model charges each block operation its flop time plus a fixed
// per-operation overhead (the paper's one-thousand-op fixed cost), each
// message a sender/receiver CPU overhead, and delivers messages after a
// latency plus size/bandwidth delay. Processors act on received blocks in
// arrival order, as the paper's code does.
package machine

import (
	"container/heap"
	"fmt"

	"blockfanout/internal/sched"
)

// Config is the machine model. The Paragon defaults follow §3.1: 50 µs
// message latency, ~40 MB/s effective bandwidth for the message sizes the
// code uses, and 20–40 Mflop/s per-node BLAS performance.
type Config struct {
	FlopRate     float64 // flop/s per processor
	OpOverhead   float64 // seconds of fixed cost per block operation
	Latency      float64 // seconds of network latency per message
	Bandwidth    float64 // bytes/s per link
	SendOverhead float64 // sender CPU seconds per message
	RecvOverhead float64 // receiver CPU seconds per message
	// Policy orders each processor's receive queue: FIFO is the paper's
	// data-driven code; CritPath is the §5 priority-scheduling conjecture.
	Policy Policy
	// CollectTrace records a Span per busy interval into Result.Spans for
	// timeline rendering (O(#operations) memory; meant for small runs).
	CollectTrace bool
	// MeshDims, when non-zero, models the Paragon's physical 2-D mesh
	// interconnect: processor id p sits at (p/MeshDims[1], p%MeshDims[1])
	// and each message pays HopLatency per Manhattan-distance hop on top
	// of the base latency. Zero dims model a distance-oblivious network.
	MeshDims   [2]int
	HopLatency float64
	// Faults, when non-nil, injects deterministic failures into the run:
	// fail-stop nodes, message drops/duplicates, per-node slowdowns. See
	// FaultPlan.
	Faults *FaultPlan
}

// NodeFailure schedules a fail-stop: processor Proc halts at simulated time
// Time, taking effect at its next operation boundary.
type NodeFailure struct {
	Proc int32
	Time float64 // simulated seconds
}

// FaultPlan describes deterministic, seedable faults for a simulation. The
// recovery model is checkpoint/buddy takeover: a completed block's fan-out
// messages are its checkpoint, so when a node fails the next surviving
// processor (its buddy) inherits the failed node's unfinished blocks,
// restarts every one of its own unfinished blocks from the last checkpoint,
// and re-derives the lost work by replaying the union of both nodes'
// delivery logs after RecoveryDelay. Simulated degradation therefore
// includes both the re-executed block operations and the recovery pause.
type FaultPlan struct {
	// Seed drives the drop/duplication coin flips. The same (Seed, plan,
	// schedule, config) is bit-for-bit reproducible.
	Seed uint64
	// Failures are fail-stop events, applied in time order.
	Failures []NodeFailure
	// DropProb is the per-remote-message probability that the first
	// transmission is lost; the sender's retransmit timer redelivers it
	// RetryDelay later.
	DropProb float64
	// DupProb is the per-remote-message probability of a duplicated
	// delivery; the receiver pays RecvOverhead to discard the copy.
	DupProb float64
	// RetryDelay is the retransmit timeout charged to a dropped message.
	RetryDelay float64
	// RecoveryDelay is the failure-detection plus takeover time before the
	// buddy starts replaying a failed node's work.
	RecoveryDelay float64
	// Slowdown, when non-nil, must have one entry per processor: a compute
	// time multiplier (1 = nominal, 2 = half speed) modeling heterogeneous
	// or degraded nodes.
	Slowdown []float64
}

// Validate rejects machine models that would produce nonsensical (negative
// or NaN) simulated times, and malformed fault plans, before any event is
// scheduled. np is the processor count of the schedule under simulation.
func (c *Config) Validate(np int) error {
	if np <= 0 {
		return fmt.Errorf("machine: config invalid: %d processors", np)
	}
	pos := func(name string, v float64) error {
		if !(v > 0) { // catches NaN too
			return fmt.Errorf("machine: config invalid: %s = %g, must be positive", name, v)
		}
		return nil
	}
	nonNeg := func(name string, v float64) error {
		if !(v >= 0) {
			return fmt.Errorf("machine: config invalid: %s = %g, must be non-negative", name, v)
		}
		return nil
	}
	if err := pos("FlopRate", c.FlopRate); err != nil {
		return err
	}
	if err := pos("Bandwidth", c.Bandwidth); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"OpOverhead", c.OpOverhead}, {"Latency", c.Latency},
		{"SendOverhead", c.SendOverhead}, {"RecvOverhead", c.RecvOverhead},
		{"HopLatency", c.HopLatency},
	} {
		if err := nonNeg(f.name, f.v); err != nil {
			return err
		}
	}
	if c.MeshDims[0] < 0 || c.MeshDims[1] < 0 {
		return fmt.Errorf("machine: config invalid: MeshDims %v", c.MeshDims)
	}
	if c.Faults != nil {
		return c.Faults.validate(np)
	}
	return nil
}

func (f *FaultPlan) validate(np int) error {
	prob := func(name string, v float64) error {
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("machine: fault plan invalid: %s = %g, must be in [0,1]", name, v)
		}
		return nil
	}
	if err := prob("DropProb", f.DropProb); err != nil {
		return err
	}
	if err := prob("DupProb", f.DupProb); err != nil {
		return err
	}
	if !(f.RetryDelay >= 0) || !(f.RecoveryDelay >= 0) {
		return fmt.Errorf("machine: fault plan invalid: RetryDelay %g / RecoveryDelay %g must be non-negative",
			f.RetryDelay, f.RecoveryDelay)
	}
	for i, nf := range f.Failures {
		if nf.Proc < 0 || int(nf.Proc) >= np {
			return fmt.Errorf("machine: fault plan invalid: failure %d targets processor %d of %d", i, nf.Proc, np)
		}
		if !(nf.Time >= 0) {
			return fmt.Errorf("machine: fault plan invalid: failure %d at time %g", i, nf.Time)
		}
	}
	if f.Slowdown != nil {
		if len(f.Slowdown) != np {
			return fmt.Errorf("machine: fault plan invalid: %d slowdown factors for %d processors", len(f.Slowdown), np)
		}
		for p, s := range f.Slowdown {
			if !(s > 0) {
				return fmt.Errorf("machine: fault plan invalid: slowdown[%d] = %g, must be positive", p, s)
			}
		}
	}
	return nil
}

// hopDelay returns the topology-dependent extra latency between two
// processors.
func (c *Config) hopDelay(from, to int32) float64 {
	if c.MeshDims[0] == 0 || c.MeshDims[1] == 0 || c.HopLatency == 0 {
		return 0
	}
	cols := c.MeshDims[1]
	fr, fc := int(from)/cols, int(from)%cols
	tr, tc := int(to)/cols, int(to)%cols
	dr, dc := fr-tr, fc-tc
	if dr < 0 {
		dr = -dr
	}
	if dc < 0 {
		dc = -dc
	}
	return float64(dr+dc) * c.HopLatency
}

// Span is one busy interval of a processor in the simulated timeline.
type Span struct {
	Proc       int32
	Start, End float64
	Comm       bool // communication overhead rather than computation
	// Block is the block id the interval worked on — the block being
	// factored/divided/modified for compute spans, the block being sent or
	// received for comm spans — or -1 when unattributed. Trace-event export
	// (internal/obs) surfaces it as an event arg.
	Block int32
}

// Paragon returns the Intel Paragon model of §3.1. The per-operation fixed
// overhead equals the paper's one-thousand-flop fixed cost at this flop
// rate, keeping the simulator consistent with the balance work measure.
func Paragon() Config {
	const rate = 30e6
	return Config{
		FlopRate:     rate,
		OpOverhead:   1000 / rate,
		Latency:      50e-6,
		Bandwidth:    40e6,
		SendOverhead: 25e-6,
		RecvOverhead: 25e-6,
	}
}

// Result reports the outcome of a simulated factorization.
type Result struct {
	Time     float64 // parallel makespan (seconds)
	SeqTime  float64 // analytic single-processor time under the same model
	Messages int64
	Bytes    int64

	CompTime []float64 // per-processor computation CPU time
	CommTime []float64 // per-processor communication CPU time
	Flops    []int64   // per-processor executed flops
	Spans    []Span    // busy intervals, when Config.CollectTrace is set

	// Fault-injection outcomes (zero without a FaultPlan).
	Dropped     int64   // remote messages lost and retransmitted
	Duplicated  int64   // duplicate deliveries discarded by receivers
	FailedProcs []int32 // processors that fail-stopped, in failure order
}

// Efficiency returns t_seq/(P·t_parallel), the paper's efficiency measure.
func (r *Result) Efficiency() float64 {
	p := float64(len(r.CompTime))
	if r.Time <= 0 || p == 0 {
		return 1
	}
	return r.SeqTime / (p * r.Time)
}

// Mflops returns achieved performance in Mflop/s given the operation count
// of the best sequential algorithm (the paper's convention).
func (r *Result) Mflops(seqOps int64) float64 {
	if r.Time <= 0 {
		return 0
	}
	return float64(seqOps) / r.Time / 1e6
}

// CommFraction returns the largest per-processor share of runtime spent on
// communication CPU costs (the §5 "<20% of total runtime" measurement).
func (r *Result) CommFraction() float64 {
	worst := 0.0
	for _, c := range r.CommTime {
		if f := c / r.Time; f > worst {
			worst = f
		}
	}
	return worst
}

// Breakdown returns the machine-wide mean shares of the parallel runtime
// spent computing, communicating, and idle. The paper's §5 instrumentation
// found that "most of the processor time not spent performing useful
// factorization work is spent idle, waiting for the arrival of data".
func (r *Result) Breakdown() (comp, comm, idle float64) {
	if r.Time <= 0 || len(r.CompTime) == 0 {
		return 0, 0, 0
	}
	for p := range r.CompTime {
		comp += r.CompTime[p]
		comm += r.CommTime[p]
	}
	total := r.Time * float64(len(r.CompTime))
	comp /= total
	comm /= total
	idle = 1 - comp - comm
	return comp, comm, idle
}

type event struct {
	t      float64
	seq    int64
	proc   int32
	id     int32
	remote bool
	seed   bool // initial BFAC of a leaf diagonal block
	ready  bool // processor-became-free event (id unused)
	fail   bool // fail-stop of proc (id unused)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// splitmix64 is the drop/duplication coin-flip PRNG: tiny, seedable, and
// consumed in deterministic event order, which makes every fault decision
// reproducible for a fixed FaultPlan.Seed.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func (r *splitmix64) float() float64 { return float64(r.next()>>11) / (1 << 53) }

// pend is one entry of a processor's receive queue.
type pend struct {
	id     int32
	seq    int64
	remote bool
	seed   bool
}

// simulator holds one run's mutable state. The block ownership map is
// mutable (powner) because buddy recovery reassigns a failed node's blocks;
// without faults it never diverges from the schedule's Owner.
type simulator struct {
	pr  *sched.Program
	cfg Config
	res Result

	modsLeft  []int32
	diagReady []bool
	done      []bool
	arrivedAt []map[int32]bool
	powner    []int32   // mutable block → processor, seeded from pr.Owner
	alive     []bool
	log       [][]int32 // per-processor processed deliveries, in order

	h       eventHeap
	seq     int64
	pending [][]pend
	idle    []bool
	prio    []float64
	rng     splitmix64

	now      float64
	me       int32
	makespan float64
}

// Simulate runs the block fan-out schedule under the machine model,
// including the optional fault plan. It returns an error for an invalid
// configuration, or when every processor has fail-stopped before the
// factorization completes.
func Simulate(pr *sched.Program, cfg Config) (Result, error) {
	if err := cfg.Validate(pr.NProc); err != nil {
		return Result{}, err
	}
	np := pr.NProc
	s := &simulator{
		pr:  pr,
		cfg: cfg,
		res: Result{
			CompTime: make([]float64, np),
			CommTime: make([]float64, np),
			Flops:    make([]int64, np),
		},
		modsLeft:  append([]int32(nil), pr.NMods...),
		diagReady: make([]bool, pr.NBlocks),
		done:      make([]bool, pr.NBlocks),
		arrivedAt: make([]map[int32]bool, np),
		powner:    append([]int32(nil), pr.Owner...),
		alive:     make([]bool, np),
		log:       make([][]int32, np),
		pending:   make([][]pend, np),
		idle:      make([]bool, np),
	}
	s.res.SeqTime = float64(pr.BS.TotalFlops)/cfg.FlopRate + float64(pr.BS.TotalOps)*cfg.OpOverhead
	for p := 0; p < np; p++ {
		s.arrivedAt[p] = make(map[int32]bool)
		s.alive[p] = true
		s.idle[p] = true
	}
	if cfg.Policy == CritPath {
		s.prio = Priorities(pr, cfg)
	}
	if f := cfg.Faults; f != nil {
		s.rng.s = f.Seed
		for _, nf := range f.Failures {
			s.seq++
			heap.Push(&s.h, event{t: nf.Time, seq: s.seq, proc: nf.Proc, fail: true})
		}
	}

	// Seed events: leaf diagonal blocks are factorable at t=0.
	for j := range pr.BS.Cols {
		id := pr.BlockID(j, 0)
		if pr.NMods[id] == 0 {
			s.push(0, pr.Owner[id], id, false, true)
		}
	}

	if err := s.run(); err != nil {
		return Result{}, err
	}
	s.res.Time = s.makespan
	return s.res, nil
}

// MustSimulate is Simulate for trusted, pre-validated configurations; it
// panics on error. Experiments and tests over fixed machine models use it
// to avoid plumbing impossible errors.
func MustSimulate(pr *sched.Program, cfg Config) Result {
	res, err := Simulate(pr, cfg)
	if err != nil {
		panic(err)
	}
	return res
}

func (s *simulator) push(t float64, p, id int32, remote, seed bool) {
	s.seq++
	heap.Push(&s.h, event{t: t, seq: s.seq, proc: p, id: id, remote: remote, seed: seed})
}

func (s *simulator) pushReady(t float64, p int32) {
	s.seq++
	heap.Push(&s.h, event{t: t, seq: s.seq, proc: p, ready: true})
}

func (s *simulator) pickNext(p int32) pend {
	q := s.pending[p]
	best := 0
	if s.prio != nil {
		for i := 1; i < len(q); i++ {
			if s.prio[q[i].id] > s.prio[q[best].id] {
				best = i
			}
		}
	}
	it := q[best]
	s.pending[p] = append(q[:best], q[best+1:]...)
	return it
}

func (s *simulator) span(start float64, comm bool, block int32) {
	if s.cfg.CollectTrace && s.now > start {
		s.res.Spans = append(s.res.Spans, Span{Proc: s.me, Start: start, End: s.now, Comm: comm, Block: block})
	}
}

func (s *simulator) charge(flops int64, block int32) {
	dt := float64(flops)/s.cfg.FlopRate + s.cfg.OpOverhead
	if f := s.cfg.Faults; f != nil && f.Slowdown != nil {
		dt *= f.Slowdown[s.me]
	}
	start := s.now
	s.now += dt
	s.res.CompTime[s.me] += dt
	s.res.Flops[s.me] += flops
	s.span(start, false, block)
}

func (s *simulator) complete(id int32) {
	s.done[id] = true
	for _, c := range s.pr.Consumers[id] {
		if c == s.me {
			s.push(s.now, s.me, id, false, false)
			continue
		}
		start := s.now
		s.res.CommTime[s.me] += s.cfg.SendOverhead
		s.now += s.cfg.SendOverhead
		s.res.Messages++
		s.res.Bytes += s.pr.Bytes[id]
		s.span(start, true, id)
		delay := s.cfg.Latency + s.cfg.hopDelay(s.me, c) + float64(s.pr.Bytes[id])/s.cfg.Bandwidth
		if f := s.cfg.Faults; f != nil {
			// Both coins are always flipped so the decision stream depends
			// only on (Seed, send order), not on which probabilities are
			// non-zero.
			if s.rng.float() < f.DropProb {
				delay += f.RetryDelay
				s.res.Dropped++
			}
			if s.rng.float() < f.DupProb {
				s.res.Duplicated++
				s.push(s.now+delay, c, id, true, false)
			}
		}
		s.push(s.now+delay, c, id, true, false)
	}
}

func (s *simulator) finish(id int32) {
	s.charge(s.pr.OwnOpFlops[id], id)
	s.complete(id)
}

func (s *simulator) handle(id int32) {
	if s.arrivedAt[s.me][id] {
		return
	}
	s.arrivedAt[s.me][id] = true
	s.log[s.me] = append(s.log[s.me], id)
	pr := s.pr
	k := int(pr.ColOf[id])
	idx := int(pr.IdxOf[id])
	colK := &pr.BS.Cols[k]
	if idx == 0 {
		for j := 1; j < len(colK.Blocks); j++ {
			bid := pr.BlockID(k, j)
			if s.powner[bid] != s.me {
				continue
			}
			s.diagReady[bid] = true
			if s.modsLeft[bid] == 0 && !s.done[bid] {
				s.finish(bid)
			}
		}
		return
	}
	for j := 1; j < len(colK.Blocks); j++ {
		other := pr.BlockID(k, j)
		dest := pr.ModDestID(k, idx, j)
		if s.powner[dest] != s.me || s.done[dest] {
			continue
		}
		if other == id || s.arrivedAt[s.me][other] {
			s.charge(pr.ModFlops(k, idx, j), dest)
			s.modsLeft[dest]--
			if s.modsLeft[dest] == 0 {
				if pr.IdxOf[dest] == 0 || s.diagReady[dest] {
					s.finish(dest)
				}
			}
		}
	}
}

// runOne lets processor p (free at time t) pick and process one pending
// block, then schedules its next wake-up.
func (s *simulator) runOne(p int32, t float64) {
	it := s.pickNext(p)
	s.me = p
	s.now = t
	if it.remote {
		start := s.now
		s.res.CommTime[s.me] += s.cfg.RecvOverhead
		s.now += s.cfg.RecvOverhead
		s.span(start, true, it.id)
	}
	if it.seed {
		if !s.done[it.id] {
			s.finish(it.id)
		}
	} else {
		s.handle(it.id)
	}
	s.idle[p] = false
	if s.now > s.makespan {
		s.makespan = s.now
	}
	s.pushReady(s.now, p)
}

// Buddy returns the processor that takes over for failed processor l: the
// next surviving index in cyclic order, or -1 when none survive. It is the
// single definition of the buddy relation — the simulator's takeover and
// rerouting use it, and the real cluster failover (internal/cluster) reuses
// it over participant indices so simulated and executed recovery share
// verified semantics. The relation composes under cascading failures:
// with l's buddy also dead, Buddy(l, alive) lands on the buddy's buddy.
func Buddy(l int32, alive []bool) int32 {
	np := int32(len(alive))
	for d := int32(1); d < np; d++ {
		if c := (l + d) % np; alive[c] {
			return c
		}
	}
	return -1
}

// failNode applies a fail-stop of processor l at time t: the next surviving
// processor (the buddy) inherits l's unfinished blocks, restarts its own
// unfinished blocks from the last checkpoint (a completed block's fan-out
// messages), and replays the union of both delivery logs after the
// recovery delay. Lost in-flight and future messages addressed to l are
// rerouted to the buddy at delivery time via powner; already-completed
// blocks stay completed.
func (s *simulator) failNode(l int32, t float64) error {
	if !s.alive[l] {
		return nil
	}
	s.alive[l] = false
	s.res.FailedProcs = append(s.res.FailedProcs, l)
	buddy := Buddy(l, s.alive)
	if buddy < 0 {
		return fmt.Errorf("machine: all %d processors failed before completion (last at t=%g)", len(s.alive), t)
	}
	tr := t + s.cfg.Faults.RecoveryDelay

	// Reassign ownership and reset progress of every unfinished block the
	// buddy is now responsible for — inherited and its own alike. The
	// replay below re-derives all of it; mods already globally visible via
	// completed (done) blocks are not redone.
	for id := int32(0); id < int32(s.pr.NBlocks); id++ {
		if s.powner[id] == l {
			s.powner[id] = buddy
		}
		if s.powner[id] == buddy && !s.done[id] {
			s.modsLeft[id] = s.pr.NMods[id]
			s.diagReady[id] = false
		}
	}

	// Replay: the buddy's own processed deliveries in original order, then
	// the failed node's deliveries it has not seen, then the failed node's
	// unprocessed queue. arrivedAt[buddy] restarts empty so the standard
	// exactly-once arrival logic drives the re-execution.
	seenAtBuddy := s.arrivedAt[buddy]
	s.arrivedAt[buddy] = make(map[int32]bool, len(seenAtBuddy)+len(s.log[l]))
	replay := append([]int32(nil), s.log[buddy]...)
	for _, id := range s.log[l] {
		if !seenAtBuddy[id] {
			replay = append(replay, id)
		}
	}
	s.log[buddy] = s.log[buddy][:0]
	s.log[l] = nil
	for _, id := range replay {
		s.push(tr, buddy, id, false, false)
	}
	for _, it := range s.pending[l] {
		s.push(tr, buddy, it.id, false, it.seed)
	}
	s.pending[l] = nil
	return nil
}

// run drains the event heap.
func (s *simulator) run() error {
	for s.h.Len() > 0 {
		ev := heap.Pop(&s.h).(event)
		if ev.fail {
			if err := s.failNode(ev.proc, ev.t); err != nil {
				return err
			}
			continue
		}
		p := ev.proc
		if !s.alive[p] {
			if ev.ready {
				continue
			}
			// A message in flight to a dead node is rerouted at delivery
			// time to the live processor standing in for it — the same
			// buddy that inherited its blocks.
			p = s.reroute(p)
			if p < 0 {
				continue
			}
		}
		if ev.ready {
			if len(s.pending[p]) > 0 {
				s.runOne(p, ev.t)
			} else {
				s.idle[p] = true
			}
			continue
		}
		s.pending[p] = append(s.pending[p], pend{
			id: ev.id, seq: ev.seq, remote: ev.remote, seed: ev.seed,
		})
		if s.idle[p] {
			s.idle[p] = false
			s.runOne(p, ev.t)
		}
	}
	return nil
}

// reroute finds the live processor standing in for dead processor p: the
// next surviving id, matching failNode's buddy selection. Returns -1 when
// none survive (run ends with an error from the final failNode instead).
func (s *simulator) reroute(p int32) int32 { return Buddy(p, s.alive) }
