package machine

import "blockfanout/internal/sched"

// Policy selects how a processor orders the blocks waiting in its receive
// queue. The paper's block fan-out code is purely data-driven (FIFO, §2.3);
// its §5 discussion conjectures that dynamic scheduling "more sensitive to
// some measures of priority of tasks" could reclaim idle time — CritPath
// implements that conjecture using static critical-path priorities.
type Policy int

const (
	// FIFO processes received blocks in arrival order (the paper's code).
	FIFO Policy = iota
	// CritPath processes the pending block whose downstream dependency
	// chain is longest first.
	CritPath
)

func (p Policy) String() string {
	if p == CritPath {
		return "critpath"
	}
	return "fifo"
}

// Priorities computes, for every block, the length (in seconds under the
// cost model) of the longest chain of operations that depends on the block
// being available. Blocks of column K feed destinations in strictly later
// columns, so a single reverse sweep suffices.
func Priorities(pr *sched.Program, cfg Config) []float64 {
	bs := pr.BS
	cost := func(flops int64) float64 {
		return float64(flops)/cfg.FlopRate + cfg.OpOverhead
	}
	level := make([]float64, pr.NBlocks)

	for k := bs.N() - 1; k >= 0; k-- {
		col := &bs.Cols[k]
		// Off-diagonal blocks: their completion feeds BMODs into later
		// columns; a mod finishing feeds the destination's own op and
		// everything after it.
		for idx := 1; idx < len(col.Blocks); idx++ {
			id := pr.BlockID(k, idx)
			best := 0.0
			for j := 1; j < len(col.Blocks); j++ {
				dest := pr.ModDestID(k, idx, j)
				v := cost(pr.ModFlops(k, idx, j)) + cost(pr.OwnOpFlops[dest]) + level[dest]
				if v > best {
					best = v
				}
			}
			level[id] = best
		}
		// Diagonal block: enables the BDIVs of its column.
		diag := pr.BlockID(k, 0)
		best := 0.0
		for idx := 1; idx < len(col.Blocks); idx++ {
			id := pr.BlockID(k, idx)
			v := cost(pr.OwnOpFlops[id]) + level[id]
			if v > best {
				best = v
			}
		}
		level[diag] = best
	}
	return level
}
