package machine

import (
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || CritPath.String() != "critpath" {
		t.Fatal("policy names")
	}
}

func TestPrioritiesShape(t *testing.T) {
	_, bs := setup(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	prio := Priorities(pr, Paragon())
	if len(prio) != pr.NBlocks {
		t.Fatal("length")
	}
	// The final column's blocks have nothing downstream.
	lastDiag := pr.BlockID(bs.N()-1, 0)
	if prio[lastDiag] != 0 {
		t.Fatalf("last diagonal priority %g, want 0", prio[lastDiag])
	}
	// A column's diagonal dominates its own off-diagonal blocks' BDIV
	// chains; all priorities are non-negative and bounded by the
	// sequential time.
	seq := float64(bs.TotalFlops)/Paragon().FlopRate + float64(bs.TotalOps)*Paragon().OpOverhead
	for id, v := range prio {
		if v < 0 || v > seq {
			t.Fatalf("priority[%d]=%g outside [0,%g]", id, v, seq)
		}
	}
	// First column's diagonal must have a strictly positive downstream
	// chain on any connected problem.
	if prio[pr.BlockID(0, 0)] <= 0 {
		t.Fatal("first diagonal has empty downstream chain")
	}
}

func TestCritPathPolicyRunsAndConserves(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 3, Pc: 3}, true)
	cfg := Paragon()
	cfg.Policy = CritPath
	res := MustSimulate(pr, cfg)
	var total int64
	for _, f := range res.Flops {
		total += f
	}
	if total != bs.TotalFlops {
		t.Fatalf("critpath policy executed %d flops, want %d", total, bs.TotalFlops)
	}
	if res.Time <= 0 {
		t.Fatal("no makespan")
	}
	// Deterministic.
	if res2 := MustSimulate(pr, cfg); res2.Time != res.Time {
		t.Fatal("critpath policy not deterministic")
	}
}

func TestCritPathPolicyNotCatastrophic(t *testing.T) {
	// Priority scheduling reorders receive queues; it must stay within a
	// sane factor of FIFO (it usually helps — see the priosched
	// experiment — but is not guaranteed to on every instance).
	pr, _ := program(t, mapping.Grid{Pr: 4, Pc: 4}, false)
	fifo := Paragon()
	prio := Paragon()
	prio.Policy = CritPath
	rf := MustSimulate(pr, fifo)
	rp := MustSimulate(pr, prio)
	if rp.Time > 1.5*rf.Time {
		t.Fatalf("critpath policy %g much worse than FIFO %g", rp.Time, rf.Time)
	}
}
