package machine

import (
	"reflect"
	"strings"
	"testing"

	"blockfanout/internal/mapping"
)

func TestConfigValidation(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 2, Pc: 2}, false)
	cases := []struct {
		name string
		mod  func(*Config)
		want string
	}{
		{"zero flop rate", func(c *Config) { c.FlopRate = 0 }, "FlopRate"},
		{"negative flop rate", func(c *Config) { c.FlopRate = -1 }, "FlopRate"},
		{"zero bandwidth", func(c *Config) { c.Bandwidth = 0 }, "Bandwidth"},
		{"negative latency", func(c *Config) { c.Latency = -1e-6 }, "Latency"},
		{"negative op overhead", func(c *Config) { c.OpOverhead = -1 }, "OpOverhead"},
		{"negative send overhead", func(c *Config) { c.SendOverhead = -1 }, "SendOverhead"},
		{"negative recv overhead", func(c *Config) { c.RecvOverhead = -1 }, "RecvOverhead"},
		{"negative hop latency", func(c *Config) { c.HopLatency = -1 }, "HopLatency"},
		{"drop prob over one", func(c *Config) { c.Faults = &FaultPlan{DropProb: 1.5} }, "DropProb"},
		{"negative dup prob", func(c *Config) { c.Faults = &FaultPlan{DupProb: -0.1} }, "DupProb"},
		{"negative retry delay", func(c *Config) { c.Faults = &FaultPlan{RetryDelay: -1} }, "RetryDelay"},
		{"failure out of range", func(c *Config) {
			c.Faults = &FaultPlan{Failures: []NodeFailure{{Proc: 99, Time: 0}}}
		}, "processor 99"},
		{"negative failure time", func(c *Config) {
			c.Faults = &FaultPlan{Failures: []NodeFailure{{Proc: 0, Time: -1}}}
		}, "time -1"},
		{"slowdown length", func(c *Config) { c.Faults = &FaultPlan{Slowdown: []float64{1}} }, "slowdown"},
		{"slowdown zero", func(c *Config) {
			c.Faults = &FaultPlan{Slowdown: []float64{1, 1, 0, 1}}
		}, "slowdown[2]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Paragon()
			tc.mod(&cfg)
			_, err := Simulate(pr, cfg)
			if err == nil {
				t.Fatal("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	if err := (&Config{}).Validate(0); err == nil {
		t.Fatal("zero processors accepted")
	}
}

// TestFaultPlanDeterministic is the bit-for-bit reproducibility contract:
// two simulations with the same schedule, config, and seed must agree on
// every field of the Result, including float timings.
func TestFaultPlanDeterministic(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	cfg := Paragon()
	base := MustSimulate(pr, Paragon())
	cfg.Faults = &FaultPlan{
		Seed:          42,
		Failures:      []NodeFailure{{Proc: 4, Time: base.Time * 0.3}},
		DropProb:      0.05,
		DupProb:       0.05,
		RetryDelay:    500e-6,
		RecoveryDelay: 1e-3,
	}
	a := MustSimulate(pr, cfg)
	b := MustSimulate(pr, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault simulation not reproducible:\n%+v\nvs\n%+v", a, b)
	}
	if len(a.FailedProcs) != 1 || a.FailedProcs[0] != 4 {
		t.Fatalf("FailedProcs = %v", a.FailedProcs)
	}
	// A different seed must (for these probabilities and message counts)
	// change the drop/dup realization.
	cfg2 := cfg
	f2 := *cfg.Faults
	f2.Seed = 43
	cfg2.Faults = &f2
	c := MustSimulate(pr, cfg2)
	if c.Dropped == a.Dropped && c.Duplicated == a.Duplicated && c.Time == a.Time {
		t.Fatal("changing the seed changed nothing")
	}
}

// TestNodeFailureCompletesAndDegrades: the recovery model must still finish
// every block operation (flop conservation over surviving processors) and
// the makespan must not improve under a mid-run failure.
func TestNodeFailureCompletesAndDegrades(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	for _, frac := range []float64{0, 0.3, 0.7} {
		cfg.Faults = &FaultPlan{
			Failures:      []NodeFailure{{Proc: 2, Time: base.Time * frac}},
			RecoveryDelay: 1e-3,
		}
		res := MustSimulate(pr, cfg)
		if res.Time < base.Time {
			t.Fatalf("failure at %.0f%%: makespan %g better than fault-free %g", frac*100, res.Time, base.Time)
		}
		// All of the schedule's flops execute at least once (re-executed
		// work makes the total larger, never smaller).
		var total int64
		for _, f := range res.Flops {
			total += f
		}
		if total < bs.TotalFlops {
			t.Fatalf("failure at %.0f%%: executed %d flops, schedule needs %d", frac*100, total, bs.TotalFlops)
		}
		if res.Flops[2] > base.Flops[2] {
			t.Fatalf("failed processor kept computing: %d flops after failure plan", res.Flops[2])
		}
	}
}

func TestCascadingFailures(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 2, Pc: 2}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	cfg.Faults = &FaultPlan{
		Failures: []NodeFailure{
			{Proc: 0, Time: base.Time * 0.2},
			{Proc: 1, Time: base.Time * 0.4},
			{Proc: 3, Time: base.Time * 0.6},
		},
		RecoveryDelay: 1e-3,
	}
	res := MustSimulate(pr, cfg)
	var total int64
	for _, f := range res.Flops {
		total += f
	}
	if total < bs.TotalFlops {
		t.Fatalf("cascading failures: executed %d flops, schedule needs %d", total, bs.TotalFlops)
	}
	if len(res.FailedProcs) != 3 {
		t.Fatalf("FailedProcs = %v", res.FailedProcs)
	}
}

func TestAllProcessorsFailErrors(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 2, Pc: 1}, false)
	cfg := Paragon()
	cfg.Faults = &FaultPlan{Failures: []NodeFailure{{Proc: 0, Time: 0}, {Proc: 1, Time: 0}}}
	if _, err := Simulate(pr, cfg); err == nil || !strings.Contains(err.Error(), "all 2 processors failed") {
		t.Fatalf("got %v, want all-processors-failed error", err)
	}
}

func TestDropAndDupAccounting(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 2, Pc: 2}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	if base.Messages == 0 {
		t.Fatal("test schedule sends no messages")
	}

	cfg.Faults = &FaultPlan{Seed: 7, DropProb: 1, RetryDelay: 1e-3}
	dropped := MustSimulate(pr, cfg)
	if dropped.Dropped != dropped.Messages {
		t.Fatalf("DropProb=1: dropped %d of %d messages", dropped.Dropped, dropped.Messages)
	}
	if dropped.Time <= base.Time {
		t.Fatalf("universal drops with %gs retransmit did not slow the run: %g vs %g",
			1e-3, dropped.Time, base.Time)
	}

	cfg.Faults = &FaultPlan{Seed: 7, DupProb: 1}
	duped := MustSimulate(pr, cfg)
	if duped.Duplicated != duped.Messages {
		t.Fatalf("DupProb=1: duplicated %d of %d messages", duped.Duplicated, duped.Messages)
	}
	// Duplicates cost receiver CPU but must not change the factorization.
	var a, b int64
	for p := range duped.Flops {
		a += duped.Flops[p]
		b += base.Flops[p]
	}
	if a != b {
		t.Fatalf("duplicate deliveries changed executed flops: %d vs %d", a, b)
	}
}

func TestSlowdownStretchesCompute(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 2, Pc: 2}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	slow := make([]float64, 4)
	for i := range slow {
		slow[i] = 2
	}
	cfg.Faults = &FaultPlan{Slowdown: slow}
	res := MustSimulate(pr, cfg)
	if res.Time <= base.Time {
		t.Fatalf("uniform 2x slowdown did not stretch makespan: %g vs %g", res.Time, base.Time)
	}
	for p := range res.CompTime {
		ratio := res.CompTime[p] / base.CompTime[p]
		if ratio < 1.99 || ratio > 2.01 {
			t.Fatalf("proc %d compute time ratio %g, want 2", p, ratio)
		}
	}
}

// TestBuddyRelation pins the buddy function the simulator and the real
// cluster failover (internal/cluster) both build on: next survivor in
// cyclic order, wrap-around, composition under cascades, -1 when alone.
func TestBuddyRelation(t *testing.T) {
	alive := []bool{true, true, true, true}
	if b := Buddy(1, alive); b != 2 {
		t.Fatalf("Buddy(1) = %d, want 2", b)
	}
	if b := Buddy(3, alive); b != 0 {
		t.Fatalf("Buddy(3) = %d, want wrap to 0", b)
	}
	// With 1's buddy (2) dead, Buddy(1) must land on the buddy's buddy.
	alive[2] = false
	if b := Buddy(1, alive); b != 3 {
		t.Fatalf("Buddy(1) with 2 dead = %d, want 3", b)
	}
	if b := Buddy(2, alive); b != 3 {
		t.Fatalf("Buddy of dead 2 = %d, want 3", b)
	}
	if b := Buddy(0, []bool{false, false, false}); b != -1 {
		t.Fatalf("Buddy with no survivors = %d, want -1", b)
	}
}

// TestBuddyOfBuddyDies kills a processor and then, mid-recovery, kills the
// buddy that inherited its blocks. The buddy-of-the-buddy must complete
// the chained inheritance: every scheduled flop still executes and both
// dead processors stop computing.
func TestBuddyOfBuddyDies(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	cfg.Faults = &FaultPlan{
		Failures: []NodeFailure{
			{Proc: 2, Time: base.Time * 0.3},
			// Proc 3 is Buddy(2) among 0..8 with everyone else alive; kill
			// it while it is replaying 2's inherited work.
			{Proc: 3, Time: base.Time * 0.45},
		},
		RecoveryDelay: base.Time * 0.05,
	}
	res := MustSimulate(pr, cfg)
	var total int64
	for _, f := range res.Flops {
		total += f
	}
	if total < bs.TotalFlops {
		t.Fatalf("buddy-of-buddy death lost work: executed %d flops, schedule needs %d", total, bs.TotalFlops)
	}
	if len(res.FailedProcs) != 2 || res.FailedProcs[0] != 2 || res.FailedProcs[1] != 3 {
		t.Fatalf("FailedProcs = %v, want [2 3]", res.FailedProcs)
	}
	if res.Time < base.Time {
		t.Fatalf("cascaded recovery makespan %g beats fault-free %g", res.Time, base.Time)
	}
	alive := make([]bool, 9)
	for i := range alive {
		alive[i] = i != 2 && i != 3
	}
	if b := Buddy(2, alive); b != 4 {
		t.Fatalf("chained inheritance target = %d, want 4", b)
	}
}

// TestFailureDuringFinalSupernode kills the processor that owns the last
// block column's diagonal just before the end of the fault-free makespan:
// the recovery happens inside the final supernode, the tail of the
// schedule with no parallel slack left.
func TestFailureDuringFinalSupernode(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 2, Pc: 2}, false)
	cfg := Paragon()
	base := MustSimulate(pr, cfg)
	// Find the owner of the final diagonal block — the processor whose
	// death hurts most at the end of the schedule.
	lastDiag := int32(-1)
	for id := int32(0); id < int32(pr.NBlocks); id++ {
		if pr.IdxOf[id] == 0 && (lastDiag < 0 || pr.ColOf[id] > pr.ColOf[lastDiag]) {
			lastDiag = id
		}
	}
	victim := pr.Owner[lastDiag]
	for _, frac := range []float64{0.95, 0.995} {
		cfg.Faults = &FaultPlan{
			Failures:      []NodeFailure{{Proc: victim, Time: base.Time * frac}},
			RecoveryDelay: 1e-3,
		}
		res := MustSimulate(pr, cfg)
		var total int64
		for _, f := range res.Flops {
			total += f
		}
		if total < bs.TotalFlops {
			t.Fatalf("failure at %.1f%%: executed %d flops, schedule needs %d", frac*100, total, bs.TotalFlops)
		}
		if res.Time < base.Time*frac {
			t.Fatalf("failure at %.1f%%: makespan %g ends before the failure at %g", frac*100, res.Time, base.Time*frac)
		}
	}
}
