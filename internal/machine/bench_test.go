package machine

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/symbolic"
)

// Simulator throughput benchmarks: events processed per second determine
// how large a machine/problem the discrete-event model can handle.

func benchProgram(b *testing.B, g mapping.Grid) *sched.Program {
	b.Helper()
	m := gen.IrregularMesh(1500, 6, 3, 77)
	p, err := ord.Compute(ord.MinDegree, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		b.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		b.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		b.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, 16))
	if err != nil {
		b.Fatal(err)
	}
	return sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
}

func BenchmarkSimulateFIFO64(b *testing.B) {
	pr := benchProgram(b, mapping.Grid{Pr: 8, Pc: 8})
	cfg := Paragon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustSimulate(pr, cfg)
	}
}

func BenchmarkSimulateCritPath64(b *testing.B) {
	pr := benchProgram(b, mapping.Grid{Pr: 8, Pc: 8})
	cfg := Paragon()
	cfg.Policy = CritPath
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MustSimulate(pr, cfg)
	}
}

func BenchmarkPriorities(b *testing.B) {
	pr := benchProgram(b, mapping.Grid{Pr: 8, Pc: 8})
	cfg := Paragon()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Priorities(pr, cfg)
	}
}
