package machine

import (
	"math"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/domains"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func setup(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*symbolic.Structure, *blocks.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return st, bs
}

func program(t *testing.T, g mapping.Grid, useDomains bool) (*sched.Program, *blocks.Structure) {
	t.Helper()
	st, bs := setup(t, gen.IrregularMesh(300, 5, 3, 21), ord.MinDegree, 0, 8)
	a := sched.Assignment{Map: mapping.Cyclic(g, bs.N())}
	if useDomains {
		a.Dom = domains.Select(st, bs, g.P(), 2)
	}
	return sched.Build(bs, a), bs
}

func TestSingleProcessorMatchesSeqTime(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 1, Pc: 1}, false)
	res := MustSimulate(pr, Paragon())
	// With one processor there is no communication; the makespan must be
	// exactly the analytic sequential time.
	if res.Messages != 0 {
		t.Fatalf("P=1 sent %d messages", res.Messages)
	}
	if math.Abs(res.Time-res.SeqTime) > 1e-9*res.SeqTime {
		t.Fatalf("P=1 time %g != seq %g", res.Time, res.SeqTime)
	}
	if e := res.Efficiency(); math.Abs(e-1) > 1e-9 {
		t.Fatalf("P=1 efficiency %g", e)
	}
}

func TestFlopConservation(t *testing.T) {
	for _, p := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 3}, {Pr: 4, Pc: 4}} {
		pr, bs := program(t, p, false)
		res := MustSimulate(pr, Paragon())
		var total int64
		for _, f := range res.Flops {
			total += f
		}
		if total != bs.TotalFlops {
			t.Fatalf("grid %v: executed %d flops, want %d", p, total, bs.TotalFlops)
		}
	}
}

func TestParallelFasterButBounded(t *testing.T) {
	pr1, _ := program(t, mapping.Grid{Pr: 1, Pc: 1}, false)
	seq := MustSimulate(pr1, Paragon()).Time
	pr, _ := program(t, mapping.Grid{Pr: 4, Pc: 4}, false)
	res := MustSimulate(pr, Paragon())
	if res.Time >= seq {
		t.Fatalf("16 processors not faster than 1: %g vs %g", res.Time, seq)
	}
	// Speedup cannot exceed P.
	if seq/res.Time > 16.0001 {
		t.Fatalf("speedup %g exceeds processor count", seq/res.Time)
	}
	if e := res.Efficiency(); e <= 0 || e > 1.0001 {
		t.Fatalf("efficiency %g out of range", e)
	}
}

func TestDeterministic(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 3, Pc: 3}, true)
	a := MustSimulate(pr, Paragon())
	b := MustSimulate(pr, Paragon())
	if a.Time != b.Time || a.Messages != b.Messages || a.Bytes != b.Bytes {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestMessagesMatchProgram(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	res := MustSimulate(pr, Paragon())
	if res.Messages != pr.TotalMessages || res.Bytes != pr.TotalBytes {
		t.Fatalf("sim traffic %d/%d, program %d/%d",
			res.Messages, res.Bytes, pr.TotalMessages, pr.TotalBytes)
	}
}

func TestDomainsImproveRuntimeOnGrid(t *testing.T) {
	st, bs := setup(t, gen.Grid2D(24), ord.NDGrid2D, 24, 4)
	g := mapping.Grid{Pr: 4, Pc: 4}
	m := mapping.Cyclic(g, bs.N())
	plain := MustSimulate(sched.Build(bs, sched.Assignment{Map: m}), Paragon())
	dom := MustSimulate(sched.Build(bs, sched.Assignment{
		Map: m, Dom: domains.Select(st, bs, g.P(), 2),
	}), Paragon())
	if dom.Time >= plain.Time*1.05 {
		t.Fatalf("domains slowed the run: %g vs %g", dom.Time, plain.Time)
	}
}

func TestFasterMachineRunsFaster(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	slow := Paragon()
	fast := Paragon()
	fast.FlopRate *= 4
	fast.OpOverhead /= 4
	rs := MustSimulate(pr, slow)
	rf := MustSimulate(pr, fast)
	if rf.Time >= rs.Time {
		t.Fatalf("4x machine not faster: %g vs %g", rf.Time, rs.Time)
	}
}

func TestZeroCommConfigBeatsExpensiveComm(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 4, Pc: 4}, false)
	free := Paragon()
	free.Latency, free.Bandwidth = 0, math.Inf(1)
	free.SendOverhead, free.RecvOverhead = 0, 0
	costly := Paragon()
	costly.Latency *= 100
	costly.SendOverhead *= 100
	costly.RecvOverhead *= 100
	rf := MustSimulate(pr, free)
	rc := MustSimulate(pr, costly)
	if rf.Time >= rc.Time {
		t.Fatalf("free communication not faster: %g vs %g", rf.Time, rc.Time)
	}
	for p, c := range rf.CommTime {
		if c != 0 {
			t.Fatalf("proc %d charged %g comm time under free model", p, c)
		}
	}
}

func TestMflopsAndCommFraction(t *testing.T) {
	pr, bs := program(t, mapping.Grid{Pr: 3, Pc: 3}, false)
	res := MustSimulate(pr, Paragon())
	mf := res.Mflops(bs.TotalFlops)
	if mf <= 0 {
		t.Fatal("Mflops not positive")
	}
	// Mflops against the blocked count is bounded by P·rate.
	if mf > 9*Paragon().FlopRate/1e6+1e-9 {
		t.Fatalf("Mflops %g exceeds machine capability", mf)
	}
	cf := res.CommFraction()
	if cf < 0 || cf > 1 {
		t.Fatalf("comm fraction %g", cf)
	}
}

func TestParagonDefaults(t *testing.T) {
	cfg := Paragon()
	if cfg.Latency != 50e-6 {
		t.Fatalf("latency %g, want the paper's 50µs", cfg.Latency)
	}
	if cfg.Bandwidth != 40e6 {
		t.Fatalf("bandwidth %g, want the paper's effective 40MB/s", cfg.Bandwidth)
	}
	// Fixed op cost equals 1000 flops at the machine's rate, matching the
	// balance work measure.
	if math.Abs(cfg.OpOverhead*cfg.FlopRate-1000) > 1e-9 {
		t.Fatalf("op overhead %g inconsistent with work measure", cfg.OpOverhead)
	}
}

func TestMeshTopologySlowsDistantTraffic(t *testing.T) {
	pr, _ := program(t, mapping.Grid{Pr: 4, Pc: 4}, false)
	flat := Paragon()
	mesh := Paragon()
	mesh.MeshDims = [2]int{4, 4}
	mesh.HopLatency = 20e-6 // exaggerated per-hop cost to make it visible
	rf := MustSimulate(pr, flat)
	rm := MustSimulate(pr, mesh)
	if rm.Time <= rf.Time {
		t.Fatalf("mesh with hop latency not slower: %g vs %g", rm.Time, rf.Time)
	}
	// Zero hop latency must be byte-identical to the flat network.
	mesh.HopLatency = 0
	rz := MustSimulate(pr, mesh)
	if rz.Time != rf.Time {
		t.Fatalf("zero hop latency changed result: %g vs %g", rz.Time, rf.Time)
	}
}
