package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"blockfanout/internal/gen"
)

func testSnapshot(t *testing.T) *FactorSnapshot {
	t.Helper()
	m := gen.IrregularMesh(120, 5, 2, 7)
	return &FactorSnapshot{
		PatternHash: m.PatternHash(),
		ConfigKey:   0xdeadbeefcafef00d,
		N:           m.N,
		ColPtr:      m.ColPtr,
		RowInd:      m.RowInd,
		Val:         m.Val,
		Blocks:      [][]float64{{1, 2, 3}, {4.5}, nil, {6, 7, 8, 9}},
	}
}

func TestFactorRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := testSnapshot(t)
	if err := st.PutFactor(fs); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetFactor(fs.PatternHash, fs.ConfigKey)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != fs.N || got.PatternHash != fs.PatternHash || got.ConfigKey != fs.ConfigKey {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Blocks) != len(fs.Blocks) {
		t.Fatalf("got %d blocks, want %d", len(got.Blocks), len(fs.Blocks))
	}
	for i := range fs.Blocks {
		if len(got.Blocks[i]) != len(fs.Blocks[i]) {
			t.Fatalf("block %d has %d entries, want %d", i, len(got.Blocks[i]), len(fs.Blocks[i]))
		}
		for k := range fs.Blocks[i] {
			if got.Blocks[i][k] != fs.Blocks[i][k] {
				t.Fatalf("block %d entry %d: %g != %g", i, k, got.Blocks[i][k], fs.Blocks[i][k])
			}
		}
	}
	if m, err := got.Matrix(); err != nil || m.N != fs.N {
		t.Fatalf("matrix rebuild: %v", err)
	}
	keys, err := st.ScanFactors()
	if err != nil || len(keys) != 1 || keys[0].PatternHash != fs.PatternHash || keys[0].ConfigKey != fs.ConfigKey {
		t.Fatalf("scan: %v %v", keys, err)
	}
}

func TestBlocksRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bs := &BlockSnapshot{
		JobID: "00ab34cd56ef7890", RunID: 7, Epoch: 2, ValSum: ValChecksum([]float64{1, 2, 3}),
		IDs:    []uint32{3, 11, 42},
		Blocks: [][]float64{{1, 2}, {3}, {4, 5, 6}},
	}
	if err := st.PutBlocks(bs); err != nil {
		t.Fatal(err)
	}
	got, err := st.GetBlocks(bs.JobID)
	if err != nil {
		t.Fatal(err)
	}
	if got.RunID != 7 || got.Epoch != 2 || got.ValSum != bs.ValSum || len(got.IDs) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i, id := range bs.IDs {
		if got.IDs[i] != id || len(got.Blocks[i]) != len(bs.Blocks[i]) {
			t.Fatalf("block %d mismatch", i)
		}
	}
	st.DeleteBlocks(bs.JobID)
	if _, err := st.GetBlocks(bs.JobID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after delete: %v", err)
	}
}

func TestGetMissing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetFactor(1, 2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if st.Stats().Misses != 1 {
		t.Fatalf("stats: %+v", st.Stats())
	}
}

// snapPath returns the on-disk path of the only *.snap file in dir.
func snapPath(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			return filepath.Join(dir, e.Name())
		}
	}
	t.Fatal("no snapshot file found")
	return ""
}

// corruptThenGet writes a snapshot, applies corrupt to its file, and
// asserts GetFactor quarantines it: ErrCorrupt, a *.quarantine file on
// disk, and a subsequent Get reporting a plain miss (cold-build fallback).
func corruptThenGet(t *testing.T, corrupt func(t *testing.T, path string)) {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := testSnapshot(t)
	if err := st.PutFactor(fs); err != nil {
		t.Fatal(err)
	}
	corrupt(t, snapPath(t, dir))
	if _, err := st.GetFactor(fs.PatternHash, fs.ConfigKey); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted snapshot served: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	quarantined := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".quarantine") {
			quarantined = true
		}
		if strings.HasSuffix(e.Name(), ".snap") {
			t.Fatalf("corrupt snapshot %s still live", e.Name())
		}
	}
	if !quarantined {
		t.Fatal("no quarantine file left behind")
	}
	// The key now behaves as absent: callers rebuild cold.
	if _, err := st.GetFactor(fs.PatternHash, fs.ConfigKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine want ErrNotFound, got %v", err)
	}
	if s := st.Stats(); s.Corrupt != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCorruptTruncated(t *testing.T) {
	corruptThenGet(t, func(t *testing.T, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBitFlip(t *testing.T) {
	corruptThenGet(t, func(t *testing.T, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)/2] ^= 0x40 // flip one bit deep inside a record payload
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBadVersion(t *testing.T) {
	corruptThenGet(t, func(t *testing.T, path string) {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		b[4] = Version + 1
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMidWriteCrash simulates a crash between temp-file write and rename:
// the live name must be unaffected (previous snapshot or absent) and Open
// must sweep the leftover temp file.
func TestMidWriteCrash(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fs := testSnapshot(t)
	// A partial temp file as CreateTemp would leave it mid-write.
	tmp := filepath.Join(dir, factorName(fs.PatternHash, fs.ConfigKey)+".tmp-123456")
	if err := os.WriteFile(tmp, []byte("SPCS\x01partial-record-garbag"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The live key reads as absent — the partial write is invisible.
	if _, err := st.GetFactor(fs.PatternHash, fs.ConfigKey); !errors.Is(err, ErrNotFound) {
		t.Fatalf("partial temp file visible to Get: %v", err)
	}
	if keys, _ := st.ScanFactors(); len(keys) != 0 {
		t.Fatalf("partial temp file visible to Scan: %v", keys)
	}
	// Re-open sweeps it.
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("stale temp file survived Open")
	}
	// And a subsequent full write works.
	if err := st.PutFactor(fs); err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetFactor(fs.PatternHash, fs.ConfigKey); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPutGet exercises the store under the race detector:
// concurrent writers and readers of overlapping keys must never observe a
// torn snapshot (rename is the commit point).
func TestConcurrentPutGet(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fs := testSnapshot(t)
	if err := st.PutFactor(fs); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if err := st.PutFactor(fs); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := st.GetFactor(fs.PatternHash, fs.ConfigKey)
				if err != nil {
					t.Error(err)
					return
				}
				if len(got.Blocks) != len(fs.Blocks) {
					t.Errorf("torn read: %d blocks", len(got.Blocks))
					return
				}
			}
		}()
	}
	wg.Wait()
}
