// Package store is the durable snapshot store behind warm-start recovery:
// a content-addressed, file-backed archive of factored problems keyed by
// (sparse pattern hash, plan-configuration key) plus per-job held-block
// snapshots for cluster workers. A restarted spchol-serve replays its
// factor snapshots to answer previously-factored solves without redoing
// any numeric work, and a restarted spchol-node rejoins an epoch with the
// blocks it had already completed instead of forcing a full buddy remap.
//
// On-disk format (little-endian, mirroring the cluster wire codec style):
//
//	file   := magic "SPCS" | version (1 byte) | record*
//	record := type (1) | payload length (4) | payload | crc32-IEEE(payload) (4)
//
// Every payload is CRC-checked on read. Durability rules:
//
//   - writes are atomic: a snapshot is assembled in a ".tmp-*" sibling,
//     fsynced, and renamed over the final name, so a crash mid-write
//     leaves either the previous snapshot or a temp file — never a
//     half-written snapshot under the live name;
//   - loads are corruption-tolerant: any decode or checksum failure
//     quarantines the file (renamed to "<name>.quarantine") and reports
//     ErrCorrupt, so a bad snapshot is rebuilt from scratch, never served;
//   - stale temp files are swept on Open.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"blockfanout/internal/sparse"
)

// magic identifies a snapshot file; version gates format evolution.
var magic = [4]byte{'S', 'P', 'C', 'S'}

// Version is the snapshot format version. Loading rejects (and
// quarantines) any other version rather than guessing at its layout.
const Version byte = 1

// MaxPayload bounds a record's announced payload; larger lengths are
// rejected before allocation (a corrupted length field must not force a
// multi-gigabyte allocation).
const MaxPayload = 1 << 31

// Record types.
const (
	recFactorMeta byte = 1 // pattern hash, config key, n
	recMatrix     byte = 2 // colptr, rowind, val
	recBlocks     byte = 3 // per-block dense payloads
	recBlocksMeta byte = 4 // job id, run id, epoch, value checksum
	recHeldBlocks byte = 5 // held block ids + dense payloads
)

var (
	// ErrNotFound reports a missing snapshot (a cache miss, not a failure).
	ErrNotFound = errors.New("store: snapshot not found")
	// ErrCorrupt reports a snapshot that failed validation and was
	// quarantined; callers fall back to a cold build.
	ErrCorrupt = errors.New("store: snapshot corrupt (quarantined)")
)

// FactorSnapshot is one factored problem: enough to rebuild the plan
// (matrix pattern + values + the configuration key it was analyzed under)
// and to restore the numeric factor without refactorizing (every block's
// final dense payload, in (column, block-index) order).
type FactorSnapshot struct {
	PatternHash uint64
	ConfigKey   uint64
	N           int
	ColPtr      []int
	RowInd      []int
	Val         []float64
	Blocks      [][]float64
}

// Matrix reassembles the snapshot's matrix and validates it.
func (fs *FactorSnapshot) Matrix() (*sparse.Matrix, error) {
	m := &sparse.Matrix{N: fs.N, ColPtr: fs.ColPtr, RowInd: fs.RowInd, Val: fs.Val}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("store: snapshot matrix invalid: %w", err)
	}
	if m.PatternHash() != fs.PatternHash {
		return nil, fmt.Errorf("store: snapshot matrix hashes to %016x, key says %016x", m.PatternHash(), fs.PatternHash)
	}
	return m, nil
}

// BlockSnapshot is one cluster worker's held blocks for a job: the blocks
// whose final data the node held when the snapshot was cut, tagged with
// the run/epoch they belong to and a checksum of the run's permuted values
// so a snapshot can never seed a run factoring different numerics.
type BlockSnapshot struct {
	JobID  string
	RunID  uint64
	Epoch  uint32
	ValSum uint64
	IDs    []uint32
	Blocks [][]float64
}

// ValChecksum is the value fingerprint BlockSnapshots carry: FNV-1a over
// the IEEE-754 bits of the (permuted) value slice.
func ValChecksum(vals []float64) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, v := range vals {
		b := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			h ^= b & 0xff
			h *= prime64
			b >>= 8
		}
	}
	return h
}

// FactorKey names one factor snapshot.
type FactorKey struct {
	PatternHash uint64
	ConfigKey   uint64
}

// Store is a directory of snapshots. Safe for concurrent use; writes to
// the same key serialize on the filesystem rename.
type Store struct {
	dir string

	mu sync.Mutex // serializes quarantine renames

	// Counters for /metrics (read with Stats).
	puts, loads, corrupt, misses int64
	bytesWritten                 int64
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	Puts         int64 `json:"puts"`
	Loads        int64 `json:"loads"`
	Misses       int64 `json:"misses"`
	Corrupt      int64 `json:"corrupt"`
	BytesWritten int64 `json:"bytes_written"`
}

// Open creates (if needed) and opens the store rooted at dir, sweeping
// any temp files a previous crash left behind.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Puts: s.puts, Loads: s.loads, Misses: s.misses, Corrupt: s.corrupt, BytesWritten: s.bytesWritten}
}

func factorName(pattern, cfg uint64) string {
	return fmt.Sprintf("factor-%016x-%016x.snap", pattern, cfg)
}

func blocksName(jobID string) string {
	// Job ids are pattern-hash hex in practice, but sanitize anyway so a
	// hostile id cannot escape the store directory.
	clean := make([]byte, 0, len(jobID))
	for i := 0; i < len(jobID); i++ {
		c := jobID[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_' {
			clean = append(clean, c)
		} else {
			clean = append(clean, '_')
		}
	}
	return fmt.Sprintf("blocks-%s.snap", clean)
}

// PutFactor atomically writes (or replaces) the snapshot for its key.
func (s *Store) PutFactor(fs *FactorSnapshot) error {
	var e enc
	e.u64(fs.PatternHash)
	e.u64(fs.ConfigKey)
	e.u32(uint32(fs.N))
	meta := e.take()
	e.ints(fs.ColPtr)
	e.ints(fs.RowInd)
	e.f64s(fs.Val)
	matrix := e.take()
	e.u32(uint32(len(fs.Blocks)))
	for _, b := range fs.Blocks {
		e.f64s(b)
	}
	blocks := e.take()
	return s.writeFile(factorName(fs.PatternHash, fs.ConfigKey), []record{
		{recFactorMeta, meta}, {recMatrix, matrix}, {recBlocks, blocks},
	})
}

// GetFactor loads the snapshot for the key. A missing snapshot returns
// ErrNotFound; a corrupt one is quarantined and returns ErrCorrupt.
func (s *Store) GetFactor(pattern, cfg uint64) (*FactorSnapshot, error) {
	name := factorName(pattern, cfg)
	recs, err := s.readFile(name)
	if err != nil {
		return nil, err
	}
	fs := &FactorSnapshot{}
	derr := func() error {
		if len(recs) != 3 || recs[0].typ != recFactorMeta || recs[1].typ != recMatrix || recs[2].typ != recBlocks {
			return fmt.Errorf("store: factor snapshot has wrong record sequence")
		}
		d := dec{b: recs[0].payload}
		fs.PatternHash = d.u64()
		fs.ConfigKey = d.u64()
		fs.N = int(d.u32())
		if err := d.done(); err != nil {
			return err
		}
		if fs.PatternHash != pattern || fs.ConfigKey != cfg {
			return fmt.Errorf("store: snapshot keyed %016x/%016x holds %016x/%016x", pattern, cfg, fs.PatternHash, fs.ConfigKey)
		}
		d = dec{b: recs[1].payload}
		fs.ColPtr = d.ints()
		fs.RowInd = d.ints()
		fs.Val = d.f64s()
		if err := d.done(); err != nil {
			return err
		}
		d = dec{b: recs[2].payload}
		nb := d.count(4)
		fs.Blocks = make([][]float64, 0, nb)
		for i := 0; i < nb && d.err == nil; i++ {
			fs.Blocks = append(fs.Blocks, d.f64s())
		}
		return d.done()
	}()
	if derr != nil {
		return nil, s.quarantine(name, derr)
	}
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	return fs, nil
}

// ScanFactors lists the keys of every factor snapshot on disk. Unparseable
// names are skipped; payload validation happens at GetFactor time.
func (s *Store) ScanFactors() ([]FactorKey, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []FactorKey
	for _, e := range entries {
		var k FactorKey
		if n, err := fmt.Sscanf(e.Name(), "factor-%016x-%016x.snap", &k.PatternHash, &k.ConfigKey); n == 2 && err == nil &&
			e.Name() == factorName(k.PatternHash, k.ConfigKey) {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// DeleteFactor removes a snapshot (a no-op if absent).
func (s *Store) DeleteFactor(pattern, cfg uint64) {
	os.Remove(filepath.Join(s.dir, factorName(pattern, cfg)))
}

// PutBlocks atomically writes (or replaces) a worker's held-block snapshot
// for a job.
func (s *Store) PutBlocks(bs *BlockSnapshot) error {
	var e enc
	e.str(bs.JobID)
	e.u64(bs.RunID)
	e.u32(bs.Epoch)
	e.u64(bs.ValSum)
	meta := e.take()
	if len(bs.IDs) != len(bs.Blocks) {
		return fmt.Errorf("store: %d block ids for %d payloads", len(bs.IDs), len(bs.Blocks))
	}
	e.u32(uint32(len(bs.IDs)))
	for i, id := range bs.IDs {
		e.u32(id)
		e.f64s(bs.Blocks[i])
	}
	held := e.take()
	return s.writeFile(blocksName(bs.JobID), []record{
		{recBlocksMeta, meta}, {recHeldBlocks, held},
	})
}

// GetBlocks loads a worker's held-block snapshot for a job.
func (s *Store) GetBlocks(jobID string) (*BlockSnapshot, error) {
	name := blocksName(jobID)
	recs, err := s.readFile(name)
	if err != nil {
		return nil, err
	}
	bs := &BlockSnapshot{}
	derr := func() error {
		if len(recs) != 2 || recs[0].typ != recBlocksMeta || recs[1].typ != recHeldBlocks {
			return fmt.Errorf("store: block snapshot has wrong record sequence")
		}
		d := dec{b: recs[0].payload}
		bs.JobID = d.str()
		bs.RunID = d.u64()
		bs.Epoch = d.u32()
		bs.ValSum = d.u64()
		if err := d.done(); err != nil {
			return err
		}
		if bs.JobID != jobID {
			return fmt.Errorf("store: block snapshot for job %q found under %q", bs.JobID, jobID)
		}
		d = dec{b: recs[1].payload}
		nb := d.count(4)
		for i := 0; i < nb && d.err == nil; i++ {
			bs.IDs = append(bs.IDs, d.u32())
			bs.Blocks = append(bs.Blocks, d.f64s())
		}
		return d.done()
	}()
	if derr != nil {
		return nil, s.quarantine(name, derr)
	}
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	return bs, nil
}

// DeleteBlocks removes a job's held-block snapshot (a no-op if absent).
func (s *Store) DeleteBlocks(jobID string) {
	os.Remove(filepath.Join(s.dir, blocksName(jobID)))
}

// ---- file layer ----

type record struct {
	typ     byte
	payload []byte
}

// writeFile assembles the records into a temp sibling, fsyncs, and renames
// it over name — the atomic-commit point.
func (s *Store) writeFile(name string, recs []record) error {
	final := filepath.Join(s.dir, name)
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	var hdr [5]byte
	copy(hdr[:4], magic[:])
	hdr[4] = Version
	n := int64(len(hdr))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	var rh [5]byte
	var crc [4]byte
	for _, r := range recs {
		rh[0] = r.typ
		binary.LittleEndian.PutUint32(rh[1:5], uint32(len(r.payload)))
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(r.payload))
		for _, b := range [][]byte{rh[:], r.payload, crc[:]} {
			if _, err := tmp.Write(b); err != nil {
				tmp.Close()
				return fmt.Errorf("store: %w", err)
			}
			n += int64(len(b))
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	s.puts++
	s.bytesWritten += n
	s.mu.Unlock()
	return nil
}

// readFile reads and CRC-verifies every record of name. Corruption at this
// layer (bad magic, truncated record, checksum mismatch) quarantines the
// file and reports ErrCorrupt.
func (s *Store) readFile(name string) ([]record, error) {
	f, err := os.Open(filepath.Join(s.dir, name))
	if errors.Is(err, os.ErrNotExist) {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	var hdr [5]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, s.quarantine(name, fmt.Errorf("short header: %w", err))
	}
	if [4]byte(hdr[:4]) != magic {
		return nil, s.quarantine(name, errors.New("bad magic"))
	}
	if hdr[4] != Version {
		return nil, s.quarantine(name, fmt.Errorf("format version %d, speak %d", hdr[4], Version))
	}
	var recs []record
	var rh [5]byte
	var crc [4]byte
	for {
		if _, err := io.ReadFull(f, rh[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, nil
			}
			return nil, s.quarantine(name, fmt.Errorf("short record header: %w", err))
		}
		n := binary.LittleEndian.Uint32(rh[1:5])
		if n > MaxPayload {
			return nil, s.quarantine(name, fmt.Errorf("record claims %d-byte payload", n))
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, s.quarantine(name, fmt.Errorf("short payload: %w", err))
		}
		if _, err := io.ReadFull(f, crc[:]); err != nil {
			return nil, s.quarantine(name, fmt.Errorf("short checksum: %w", err))
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crc[:]); got != want {
			return nil, s.quarantine(name, fmt.Errorf("record checksum %08x, stored %08x", got, want))
		}
		recs = append(recs, record{typ: rh[0], payload: payload})
	}
}

// quarantine renames a bad snapshot aside and returns ErrCorrupt wrapping
// the cause. The quarantined copy keeps the evidence without ever being
// eligible to serve again (readers only open "*.snap").
func (s *Store) quarantine(name string, cause error) error {
	s.mu.Lock()
	s.corrupt++
	s.mu.Unlock()
	from := filepath.Join(s.dir, name)
	os.Rename(from, from+".quarantine")
	return fmt.Errorf("%w: %s: %v", ErrCorrupt, name, cause)
}

// ---- payload codec (wire-style little-endian, total decoders) ----

type enc struct{ b []byte }

func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// grow extends the buffer by n bytes and returns the fresh region. Bulk
// encoders write into it directly: a multi-megabyte factor snapshot is
// mostly float64 payload, and appending it element-by-element costs more
// CPU than the durable write itself.
func (e *enc) grow(n int) []byte {
	off := len(e.b)
	if cap(e.b)-off < n {
		nb := make([]byte, off, max(2*cap(e.b), off+n))
		copy(nb, e.b)
		e.b = nb
	}
	e.b = e.b[:off+n]
	return e.b[off:]
}

func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	buf := e.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(x))
	}
}
func (e *enc) ints(v []int) {
	e.u32(uint32(len(v)))
	buf := e.grow(8 * len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(x))
	}
}

// take returns the accumulated payload and resets the encoder.
func (e *enc) take() []byte {
	b := e.b
	e.b = nil
	return b
}

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = errors.New("store: truncated payload")
	}
}

func (d *dec) u32() uint32 {
	if len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

// count validates a u32 length prefix against the remaining bytes at
// elemSize bytes per element, so a corrupted length can never force an
// allocation larger than the payload carrying it.
func (d *dec) count(elemSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[8*i:]))
	}
	d.b = d.b[8*n:]
	return v
}

func (d *dec) ints() []int {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = int(binary.LittleEndian.Uint64(d.b[8*i:]))
	}
	d.b = d.b[8*n:]
	return v
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("store: %d trailing bytes after payload", len(d.b))
	}
	return nil
}
