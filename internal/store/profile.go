package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// recProfile is the record type of a measured cost-profile snapshot
// (internal/tune.CostProfile in sparse coordinate form).
const recProfile byte = 6

// ProfileSnapshot is the durable form of a measured block-cost profile:
// the sparse coordinate triples (I[k], J[k]) → Cost[k] nanoseconds of one
// traced factorization, keyed like factor snapshots by (pattern hash,
// static plan-configuration key). The tune package converts to and from
// its dense CostProfile.
type ProfileSnapshot struct {
	PatternHash uint64
	ConfigKey   uint64
	Procs       int
	N           int // block grid dimension
	I           []int
	J           []int
	Cost        []int64
}

func profileName(pattern, cfg uint64) string {
	return fmt.Sprintf("profile-%016x-%016x.snap", pattern, cfg)
}

// PutProfile atomically writes (or replaces) the cost profile for its key.
func (s *Store) PutProfile(ps *ProfileSnapshot) error {
	if len(ps.I) != len(ps.J) || len(ps.I) != len(ps.Cost) {
		return fmt.Errorf("store: profile has %d/%d/%d coordinate arrays", len(ps.I), len(ps.J), len(ps.Cost))
	}
	var e enc
	e.u64(ps.PatternHash)
	e.u64(ps.ConfigKey)
	e.u32(uint32(ps.Procs))
	e.u32(uint32(ps.N))
	e.ints(ps.I)
	e.ints(ps.J)
	costs := make([]int, len(ps.Cost))
	for k, c := range ps.Cost {
		costs[k] = int(c)
	}
	e.ints(costs)
	return s.writeFile(profileName(ps.PatternHash, ps.ConfigKey), []record{
		{recProfile, e.take()},
	})
}

// GetProfile loads the cost profile for the key. A missing profile returns
// ErrNotFound; a corrupt one is quarantined and returns ErrCorrupt.
func (s *Store) GetProfile(pattern, cfg uint64) (*ProfileSnapshot, error) {
	name := profileName(pattern, cfg)
	recs, err := s.readFile(name)
	if err != nil {
		return nil, err
	}
	ps := &ProfileSnapshot{}
	derr := func() error {
		if len(recs) != 1 || recs[0].typ != recProfile {
			return fmt.Errorf("store: profile snapshot has wrong record sequence")
		}
		d := dec{b: recs[0].payload}
		ps.PatternHash = d.u64()
		ps.ConfigKey = d.u64()
		ps.Procs = int(d.u32())
		ps.N = int(d.u32())
		ps.I = d.ints()
		ps.J = d.ints()
		costs := d.ints()
		if err := d.done(); err != nil {
			return err
		}
		if ps.PatternHash != pattern || ps.ConfigKey != cfg {
			return fmt.Errorf("store: profile keyed %016x/%016x holds %016x/%016x", pattern, cfg, ps.PatternHash, ps.ConfigKey)
		}
		ps.Cost = make([]int64, len(costs))
		for k, c := range costs {
			ps.Cost[k] = int64(c)
		}
		return nil
	}()
	if derr != nil {
		return nil, s.quarantine(name, derr)
	}
	s.mu.Lock()
	s.loads++
	s.mu.Unlock()
	return ps, nil
}

// ScanProfiles lists the keys of every cost profile on disk. Unparseable
// names are skipped; payload validation happens at GetProfile time.
func (s *Store) ScanProfiles() ([]FactorKey, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var keys []FactorKey
	for _, e := range entries {
		var k FactorKey
		if n, err := fmt.Sscanf(e.Name(), "profile-%016x-%016x.snap", &k.PatternHash, &k.ConfigKey); n == 2 && err == nil &&
			e.Name() == profileName(k.PatternHash, k.ConfigKey) {
			keys = append(keys, k)
		}
	}
	return keys, nil
}

// DeleteProfile removes a cost profile (a no-op if absent).
func (s *Store) DeleteProfile(pattern, cfg uint64) {
	os.Remove(filepath.Join(s.dir, profileName(pattern, cfg)))
}
