// Package symbolic performs the symbolic phase of sparse Cholesky
// factorization: fundamental supernode detection, relaxed supernode
// amalgamation (Ashcraft–Grimes style, which the paper applies to increase
// block regularity), and computation of the supernodal row structures that
// the block partitioning is built on.
//
// Input matrices must already be permuted by a fill-reducing ordering and
// postordered by their elimination tree (see core.NewPlan for the driver
// that arranges this), so that supernodes occupy contiguous column ranges.
package symbolic

import (
	"fmt"
	"sort"

	"blockfanout/internal/etree"
	"blockfanout/internal/sparse"
)

// Supernode is a contiguous range of factor columns sharing (after
// amalgamation: approximately sharing) one below-diagonal row structure.
type Supernode struct {
	First int // first column
	Width int // number of columns
}

// Last returns the last column of the supernode.
func (s Supernode) Last() int { return s.First + s.Width - 1 }

// AmalgamationConfig controls relaxed supernode merging. A child supernode
// immediately preceding its parent is merged when the CUMULATIVE number of
// explicit zeros stored by the merged supernode (relative to the exact
// fundamental supernodes it absorbs) is small in absolute terms or relative
// to the merged supernode's size. Bounding cumulative rather than
// incremental waste prevents chains of merges from compounding.
type AmalgamationConfig struct {
	// MaxZeros merges whenever the merged supernode stores at most this
	// many explicit zeros in total.
	MaxZeros int64
	// MaxZeroFrac merges whenever total zeros/(merged entries) stays
	// below it.
	MaxZeroFrac float64
}

// DefaultAmalgamation mirrors the mild relaxation used in the paper's
// experimental setup: merges that waste little storage but grow supernodes
// past the tiny sizes minimum-degree orderings otherwise produce.
func DefaultAmalgamation() AmalgamationConfig {
	return AmalgamationConfig{MaxZeros: 16, MaxZeroFrac: 0.10}
}

// NoAmalgamation disables merging entirely (exact fundamental supernodes).
func NoAmalgamation() AmalgamationConfig {
	return AmalgamationConfig{MaxZeros: 0, MaxZeroFrac: 0}
}

// RelativeAmalgamation builds the config the structure-aware irregular
// blocking strategy drives its merging with: a pure relative-fill threshold
// (explicit zeros may make up at most frac of the merged supernode's
// entries) plus the small absolute floor of DefaultAmalgamation, so tiny
// supernodes near the leaves still merge when the fraction alone would
// round to nothing. frac outside (0, 1) falls back to the default 0.10.
func RelativeAmalgamation(frac float64) AmalgamationConfig {
	if frac <= 0 || frac >= 1 {
		frac = DefaultAmalgamation().MaxZeroFrac
	}
	return AmalgamationConfig{MaxZeros: DefaultAmalgamation().MaxZeros, MaxZeroFrac: frac}
}

// Structure is the result of the symbolic phase.
type Structure struct {
	N       int
	Snodes  []Supernode
	SnodeOf []int   // column → supernode index
	Rows    [][]int // supernode → sorted below-diagonal row indices (rows > Last())
	Parent  []int   // supernode elimination forest (-1 for roots)
	Depth   []int   // supernode depth in that forest (roots at 0)

	Tree      *etree.Tree // column elimination tree
	ColCounts []int       // exact per-column counts of L (pre-amalgamation)
}

// NNZ returns the number of stored factor entries implied by the (possibly
// relaxed) supernodal structure, excluding the diagonal.
func (st *Structure) NNZ() int64 {
	var nz int64
	for s, sn := range st.Snodes {
		w, b := int64(sn.Width), int64(len(st.Rows[s]))
		nz += w*(w-1)/2 + w*b
	}
	return nz
}

// Flops returns the factorization operation count implied by the stored
// (relaxed) structure: Σ over columns of (entries at or below diagonal)².
func (st *Structure) Flops() int64 {
	var f int64
	for s, sn := range st.Snodes {
		w, b := int64(sn.Width), int64(len(st.Rows[s]))
		// column k of the supernode (0-based) holds (w-k)+b entries.
		for k := int64(0); k < w; k++ {
			c := w - k + b
			f += c * c
		}
	}
	return f
}

// Analyze runs the symbolic phase on a permuted, postordered matrix.
func Analyze(m *sparse.Matrix, cfg AmalgamationConfig) (*Structure, error) {
	t := etree.Build(m)
	counts := t.ColCounts()
	sn := fundamental(t.Parent, counts)
	sn = amalgamate(sn, t.Parent, counts, cfg)
	st := &Structure{
		N:         m.N,
		Snodes:    sn,
		SnodeOf:   make([]int, m.N),
		Tree:      t,
		ColCounts: counts,
	}
	for i, s := range sn {
		for j := s.First; j <= s.Last(); j++ {
			st.SnodeOf[j] = i
		}
	}
	if err := st.buildRows(m); err != nil {
		return nil, err
	}
	st.Depth = make([]int, len(sn))
	for s := len(sn) - 1; s >= 0; s-- {
		if p := st.Parent[s]; p >= 0 {
			st.Depth[s] = st.Depth[p] + 1
		}
	}
	return st, nil
}

// fundamental detects maximal supernodes: column j+1 extends the supernode
// of column j iff parent(j) = j+1 and count(j+1) = count(j) − 1 (nested
// structure).
func fundamental(parent, counts []int) []Supernode {
	n := len(parent)
	var sns []Supernode
	if n == 0 {
		return sns
	}
	first := 0
	for j := 1; j < n; j++ {
		if parent[j-1] == j && counts[j] == counts[j-1]-1 {
			continue
		}
		sns = append(sns, Supernode{First: first, Width: j - first})
		first = j
	}
	sns = append(sns, Supernode{First: first, Width: n - first})
	return sns
}

// amSn is a supernode candidate during amalgamation: its current column
// range, its estimated below-diagonal row count b (treated dense once
// merged), and the exact entry count of the fundamental supernodes it has
// absorbed (used to bound cumulative waste).
type amSn struct {
	first, width int
	b            int64
	exactNZ      int64
}

func trapNZ(w, r int64) int64 { return w*r - w*(w-1)/2 }

// amalgamate greedily merges each supernode with the immediately preceding
// one when that predecessor is its child in the supernode elimination
// forest and the merged supernode's cumulative zero padding stays within
// the config's bounds. A stack-based sweep lets merges cascade up chains of
// small supernodes without compounding waste (the bound always compares
// against the exact entry count of everything absorbed).
func amalgamate(sns []Supernode, parent, counts []int, cfg AmalgamationConfig) []Supernode {
	stack := make([]amSn, 0, len(sns))
	for _, s := range sns {
		w, b := int64(s.Width), int64(counts[s.First]-s.Width)
		cur := amSn{first: s.First, width: s.Width, b: b, exactNZ: trapNZ(w, w+b)}
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			// c is cur's child iff the parent column of c's last
			// column lies within cur's (current) column range.
			pcol := parent[c.first+c.width-1]
			if pcol < cur.first || pcol >= cur.first+cur.width {
				break
			}
			wm := int64(c.width + cur.width)
			rm := wm + cur.b
			exact := c.exactNZ + cur.exactNZ
			zeros := trapNZ(wm, rm) - exact
			ok := zeros <= cfg.MaxZeros ||
				(cfg.MaxZeroFrac > 0 && float64(zeros) <= cfg.MaxZeroFrac*float64(trapNZ(wm, rm)))
			if !ok {
				break
			}
			cur = amSn{first: c.first, width: c.width + cur.width, b: cur.b, exactNZ: exact}
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, cur)
	}
	out := make([]Supernode, len(stack))
	for i, s := range stack {
		out[i] = Supernode{First: s.first, Width: s.width}
	}
	return out
}

// buildRows computes each supernode's below-diagonal row set bottom-up: the
// union of its columns' A-structure with the (truncated) row sets of its
// children in the supernode forest. The forest parent of s is the supernode
// containing s's smallest below-diagonal row, which guarantees every block
// update's destination block exists (see DESIGN.md).
func (st *Structure) buildRows(m *sparse.Matrix) error {
	ns := len(st.Snodes)
	st.Rows = make([][]int, ns)
	st.Parent = make([]int, ns)
	children := make([][]int, ns)
	mark := make([]int, st.N)
	for i := range mark {
		mark[i] = -1
	}
	var buf []int
	for s := 0; s < ns; s++ {
		sn := st.Snodes[s]
		last := sn.Last()
		buf = buf[:0]
		for j := sn.First; j <= last; j++ {
			for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
				if r := m.RowInd[p]; r > last && mark[r] != s {
					mark[r] = s
					buf = append(buf, r)
				}
			}
		}
		for _, c := range children[s] {
			for _, r := range st.Rows[c] {
				if r > last && mark[r] != s {
					mark[r] = s
					buf = append(buf, r)
				}
			}
		}
		rows := append([]int(nil), buf...)
		sort.Ints(rows)
		st.Rows[s] = rows
		if len(rows) == 0 {
			st.Parent[s] = -1
			continue
		}
		p := st.SnodeOf[rows[0]]
		if p <= s {
			return fmt.Errorf("symbolic: supernode %d has non-ancestor parent %d", s, p)
		}
		st.Parent[s] = p
		children[p] = append(children[p], s)
	}
	return nil
}
