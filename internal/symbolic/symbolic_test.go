package symbolic

import (
	"sort"
	"testing"
	"testing/quick"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

// prep permutes m by an ordering and postorders it, the precondition of
// Analyze.
func prep(t *testing.T, m *sparse.Matrix, method order.Method, gridDim int) *sparse.Matrix {
	t.Helper()
	p, err := order.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

// exactStruct computes the exact below-diagonal structure of every factor
// column by dense boolean elimination (test reference).
func exactStruct(m *sparse.Matrix) [][]int {
	n := m.N
	p := make([][]bool, n)
	for i := range p {
		p[i] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for q := m.ColPtr[j]; q < m.ColPtr[j+1]; q++ {
			p[m.RowInd[q]][j] = true
		}
	}
	out := make([][]int, n)
	for j := 0; j < n; j++ {
		var s []int
		for i := j + 1; i < n; i++ {
			if p[i][j] {
				s = append(s, i)
			}
		}
		out[j] = s
		for a := 0; a < len(s); a++ {
			for b := a + 1; b < len(s); b++ {
				p[s[b]][s[a]] = true
			}
		}
	}
	return out
}

func testMatrices(t *testing.T) map[string]*sparse.Matrix {
	t.Helper()
	return map[string]*sparse.Matrix{
		"grid":  prep(t, gen.Grid2D(8), order.NDGrid2D, 8),
		"mesh":  prep(t, gen.IrregularMesh(120, 5, 3, 4), order.MinDegree, 0),
		"dense": prep(t, gen.Dense(20), order.Natural, 0),
		"lp":    prep(t, gen.NormalEq(90, 3, 2, 10, 6), order.MinDegree, 0),
	}
}

func TestSupernodesPartitionColumns(t *testing.T) {
	for name, m := range testMatrices(t) {
		for _, cfg := range []AmalgamationConfig{NoAmalgamation(), DefaultAmalgamation()} {
			st, err := Analyze(m, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			col := 0
			for s, sn := range st.Snodes {
				if sn.First != col {
					t.Fatalf("%s: supernode %d starts at %d, want %d", name, s, sn.First, col)
				}
				if sn.Width < 1 {
					t.Fatalf("%s: empty supernode %d", name, s)
				}
				for j := sn.First; j <= sn.Last(); j++ {
					if st.SnodeOf[j] != s {
						t.Fatalf("%s: SnodeOf[%d]=%d, want %d", name, j, st.SnodeOf[j], s)
					}
				}
				col += sn.Width
			}
			if col != m.N {
				t.Fatalf("%s: supernodes cover %d of %d columns", name, col, m.N)
			}
		}
	}
}

func TestStructureIsSupersetOfExactFill(t *testing.T) {
	for name, m := range testMatrices(t) {
		exact := exactStruct(m)
		for _, cfg := range []AmalgamationConfig{NoAmalgamation(), DefaultAmalgamation()} {
			st, err := Analyze(m, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for j := 0; j < m.N; j++ {
				s := st.SnodeOf[j]
				sn := st.Snodes[s]
				inSn := func(r int) bool { return r >= sn.First && r <= sn.Last() }
				for _, r := range exact[j] {
					if inSn(r) {
						continue // inside the dense diagonal trapezoid
					}
					k := sort.SearchInts(st.Rows[s], r)
					if k >= len(st.Rows[s]) || st.Rows[s][k] != r {
						t.Fatalf("%s: exact fill L(%d,%d) missing from supernodal structure", name, r, j)
					}
				}
			}
		}
	}
}

func TestNoAmalgamationIsExactForFirstColumn(t *testing.T) {
	// With exact (fundamental) supernodes, the supernode's row set equals
	// the exact structure of its first column minus its own columns.
	for name, m := range testMatrices(t) {
		exact := exactStruct(m)
		st, err := Analyze(m, NoAmalgamation())
		if err != nil {
			t.Fatal(err)
		}
		for s, sn := range st.Snodes {
			var want []int
			for _, r := range exact[sn.First] {
				if r > sn.Last() {
					want = append(want, r)
				}
			}
			if len(want) != len(st.Rows[s]) {
				t.Fatalf("%s: supernode %d rows %v, want %v", name, s, st.Rows[s], want)
			}
			for i := range want {
				if want[i] != st.Rows[s][i] {
					t.Fatalf("%s: supernode %d rows differ at %d", name, s, i)
				}
			}
		}
	}
}

func TestNNZMatchesExactWithoutAmalgamation(t *testing.T) {
	for name, m := range testMatrices(t) {
		st, err := Analyze(m, NoAmalgamation())
		if err != nil {
			t.Fatal(err)
		}
		exactNZ := etree.FactorStats(st.ColCounts).NZinL
		if st.NNZ() != exactNZ {
			t.Fatalf("%s: structure nnz %d != exact %d", name, st.NNZ(), exactNZ)
		}
		exactFlops := etree.FactorStats(st.ColCounts).Flops
		if st.Flops() != exactFlops {
			t.Fatalf("%s: structure flops %d != exact %d", name, st.Flops(), exactFlops)
		}
	}
}

func TestAmalgamationMergesAndBoundsWaste(t *testing.T) {
	m := testMatrices(t)["mesh"]
	exact, err := Analyze(m, NoAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Analyze(m, DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	if len(relaxed.Snodes) >= len(exact.Snodes) {
		t.Fatalf("amalgamation did not merge: %d vs %d supernodes",
			len(relaxed.Snodes), len(exact.Snodes))
	}
	if relaxed.NNZ() < exact.NNZ() {
		t.Fatal("relaxed structure lost nonzeros")
	}
	if float64(relaxed.NNZ()) > 1.5*float64(exact.NNZ()) {
		t.Fatalf("amalgamation wasted too much: %d vs %d", relaxed.NNZ(), exact.NNZ())
	}
}

func TestSupernodeForest(t *testing.T) {
	for name, m := range testMatrices(t) {
		st, err := Analyze(m, DefaultAmalgamation())
		if err != nil {
			t.Fatal(err)
		}
		for s := range st.Snodes {
			p := st.Parent[s]
			if len(st.Rows[s]) == 0 {
				if p != -1 {
					t.Fatalf("%s: rootless supernode %d has parent %d", name, s, p)
				}
				continue
			}
			if p <= s {
				t.Fatalf("%s: parent %d of supernode %d not later", name, p, s)
			}
			if st.SnodeOf[st.Rows[s][0]] != p {
				t.Fatalf("%s: parent mismatch for supernode %d", name, s)
			}
			if st.Depth[s] != st.Depth[p]+1 {
				t.Fatalf("%s: depth[%d]=%d, parent depth %d", name, s, st.Depth[s], st.Depth[p])
			}
		}
	}
}

// TestChainContainment verifies the containment property the block
// structure relies on (DESIGN.md): for supernode s and any row r ∈ Rows[s],
// the supernode q containing r also contains (in Rows[q] or its own column
// range) every row of Rows[s] beyond q's columns.
func TestChainContainment(t *testing.T) {
	for name, m := range testMatrices(t) {
		for _, cfg := range []AmalgamationConfig{NoAmalgamation(), DefaultAmalgamation()} {
			st, err := Analyze(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for s := range st.Snodes {
				for _, r := range st.Rows[s] {
					q := st.SnodeOf[r]
					qn := st.Snodes[q]
					for _, r2 := range st.Rows[s] {
						if r2 <= qn.Last() {
							continue
						}
						k := sort.SearchInts(st.Rows[q], r2)
						if k >= len(st.Rows[q]) || st.Rows[q][k] != r2 {
							t.Fatalf("%s: containment violated: row %d of snode %d missing from snode %d",
								name, r2, s, q)
						}
					}
				}
			}
		}
	}
}

func TestAnalyzeEmptyAndSingleton(t *testing.T) {
	m, err := sparse.FromTriplets(1, []sparse.Triplet{{Row: 0, Col: 0, Val: 2}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Analyze(m, DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Snodes) != 1 || st.Snodes[0].Width != 1 {
		t.Fatalf("singleton: %+v", st.Snodes)
	}
	if st.NNZ() != 0 {
		t.Fatalf("singleton nnz %d", st.NNZ())
	}
}

func TestDenseIsOneSupernode(t *testing.T) {
	m := prep(t, gen.Dense(16), order.Natural, 0)
	st, err := Analyze(m, NoAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Snodes) != 1 {
		t.Fatalf("dense matrix split into %d supernodes", len(st.Snodes))
	}
	if st.Snodes[0].Width != 16 || len(st.Rows[0]) != 0 {
		t.Fatalf("dense supernode malformed: %+v rows=%d", st.Snodes[0], len(st.Rows[0]))
	}
}

// Property: for random meshes and random amalgamation settings, the
// supernodal structure always covers the exact fill and partitions the
// columns.
func TestQuickStructureInvariants(t *testing.T) {
	f := func(seed uint16) bool {
		n := 40 + int(seed%80)
		m := prepQuick(t, seed, n)
		cfg := NoAmalgamation()
		if seed%2 == 1 {
			cfg = AmalgamationConfig{MaxZeros: int64(seed % 64), MaxZeroFrac: float64(seed%20) / 100}
		}
		st, err := Analyze(m, cfg)
		if err != nil {
			return false
		}
		// Columns partitioned.
		col := 0
		for _, sn := range st.Snodes {
			if sn.First != col || sn.Width < 1 {
				return false
			}
			col += sn.Width
		}
		if col != n {
			return false
		}
		// Superset of exact fill.
		exact := exactStruct(m)
		for j := 0; j < n; j++ {
			s := st.SnodeOf[j]
			sn := st.Snodes[s]
			for _, r := range exact[j] {
				if r <= sn.Last() {
					continue
				}
				k := sort.SearchInts(st.Rows[s], r)
				if k >= len(st.Rows[s]) || st.Rows[s][k] != r {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func prepQuick(t *testing.T, seed uint16, n int) *sparse.Matrix {
	t.Helper()
	m := gen.IrregularMesh(n, 3+int(seed%4), 3, uint64(seed)*13+1)
	return prep(t, m, order.MinDegree, 0)
}
