// Package stats summarizes an analyzed plan in human-readable form:
// ordering quality, supernode and panel distributions, block structure
// size, storage estimates, and the paper's headline per-problem numbers.
package stats

import (
	"fmt"
	"io"
	"sort"

	"blockfanout/internal/core"
)

// Memory estimates the storage the factorization needs.
type Memory struct {
	FactorBytes int64 // dense block storage of L
	IndexBytes  int64 // block row lists and partition arrays
	MatrixBytes int64 // the permuted input matrix
}

// Total returns the summed estimate.
func (m Memory) Total() int64 { return m.FactorBytes + m.IndexBytes + m.MatrixBytes }

// Estimate computes the memory footprint of a plan's factorization.
func Estimate(p *core.Plan) Memory {
	var mem Memory
	part := p.BS.Part
	for j := range p.BS.Cols {
		w := int64(part.Width(j))
		for _, b := range p.BS.Cols[j].Blocks {
			mem.FactorBytes += int64(len(b.Rows)) * w * 8
			mem.IndexBytes += int64(len(b.Rows)) * 8
		}
	}
	mem.IndexBytes += int64(len(part.Start)+len(part.PanelOf)+len(part.SnodeOf)) * 8
	mem.MatrixBytes = int64(p.PA.NNZ())*16 + int64(p.PA.N+1)*8
	return mem
}

// histogram buckets values into powers of two and renders counts.
func histogram(w io.Writer, label string, values []int) {
	if len(values) == 0 {
		return
	}
	sorted := append([]int(nil), values...)
	sort.Ints(sorted)
	buckets := map[int]int{} // bucket upper bound → count
	for _, v := range sorted {
		ub := 1
		for ub < v {
			ub *= 2
		}
		buckets[ub]++
	}
	var ubs []int
	for ub := range buckets {
		ubs = append(ubs, ub)
	}
	sort.Ints(ubs)
	fmt.Fprintf(w, "%s: n=%d min=%d median=%d max=%d\n", label,
		len(sorted), sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])
	for _, ub := range ubs {
		lo := ub/2 + 1
		if ub == 1 {
			lo = 1
		}
		fmt.Fprintf(w, "  %6d..%-6d %6d ", lo, ub, buckets[ub])
		stars := buckets[ub] * 40 / len(sorted)
		for s := 0; s < stars; s++ {
			fmt.Fprint(w, "*")
		}
		fmt.Fprintln(w)
	}
}

// Report writes the full plan summary.
func Report(w io.Writer, p *core.Plan) {
	fmt.Fprintf(w, "matrix: n=%d nnz(A,lower)=%d\n", p.A.N, p.A.NNZ())
	fmt.Fprintf(w, "factor: nnz(L)=%d ops=%.1fM fill=%.1fx\n",
		p.Exact.NZinL, float64(p.Exact.Flops)/1e6,
		float64(p.Exact.NZinL)/float64(p.A.NNZ()-p.A.N))
	fmt.Fprintf(w, "relaxed structure: nnz=%d (+%.1f%%) ops=%.1fM (+%.1f%%)\n",
		p.Sym.NNZ(), pct(p.Sym.NNZ(), p.Exact.NZinL),
		float64(p.BS.TotalFlops)/1e6, pct(p.BS.TotalFlops, p.Exact.Flops))

	widths := make([]int, len(p.Sym.Snodes))
	for i, sn := range p.Sym.Snodes {
		widths[i] = sn.Width
	}
	histogram(w, "supernode widths", widths)

	panels := make([]int, p.BS.N())
	blocksPerCol := make([]int, p.BS.N())
	for j := range p.BS.Cols {
		panels[j] = p.BS.Part.Width(j)
		blocksPerCol[j] = len(p.BS.Cols[j].Blocks)
	}
	histogram(w, "panel widths", panels)
	histogram(w, "blocks per block-column", blocksPerCol)

	mem := Estimate(p)
	fmt.Fprintf(w, "storage: factor %.1f MB, indices %.1f MB, matrix %.1f MB (total %.1f MB)\n",
		mb(mem.FactorBytes), mb(mem.IndexBytes), mb(mem.MatrixBytes), mb(mem.Total()))
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }

func pct(newV, oldV int64) float64 {
	if oldV == 0 {
		return 0
	}
	return (float64(newV)/float64(oldV) - 1) * 100
}
