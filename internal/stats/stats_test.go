package stats

import (
	"strings"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
)

func planFixture(t *testing.T) *core.Plan {
	t.Helper()
	p, err := core.NewPlan(gen.IrregularMesh(300, 5, 3, 4),
		core.Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEstimate(t *testing.T) {
	p := planFixture(t)
	mem := Estimate(p)
	if mem.FactorBytes <= 0 || mem.IndexBytes <= 0 || mem.MatrixBytes <= 0 {
		t.Fatalf("non-positive estimates: %+v", mem)
	}
	if mem.Total() != mem.FactorBytes+mem.IndexBytes+mem.MatrixBytes {
		t.Fatal("total mismatch")
	}
	// The factor bytes must be at least 8× the exact nnz (relaxed
	// structure only adds entries) plus the packed diagonal triangles.
	if mem.FactorBytes < p.Exact.NZinL*8 {
		t.Fatalf("factor bytes %d below exact nnz bound %d", mem.FactorBytes, p.Exact.NZinL*8)
	}
}

func TestReport(t *testing.T) {
	p := planFixture(t)
	var sb strings.Builder
	Report(&sb, p)
	out := sb.String()
	for _, want := range []string{
		"matrix:", "factor:", "relaxed structure:",
		"supernode widths", "panel widths", "blocks per block-column",
		"storage:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramDegenerate(t *testing.T) {
	var sb strings.Builder
	histogram(&sb, "empty", nil)
	if sb.Len() != 0 {
		t.Fatal("empty histogram produced output")
	}
	histogram(&sb, "ones", []int{1, 1, 1})
	if !strings.Contains(sb.String(), "1..1") {
		t.Fatalf("unexpected: %s", sb.String())
	}
}
