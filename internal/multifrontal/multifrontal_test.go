package multifrontal

import (
	"math"
	"testing"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func prep(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim int,
	amalg symbolic.AmalgamationConfig) (*sparse.Matrix, *symbolic.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, amalg)
	if err != nil {
		t.Fatal(err)
	}
	return m2, st
}

func TestMatchesReferenceExactStructure(t *testing.T) {
	for name, mtx := range map[string]*sparse.Matrix{
		"mesh": gen.IrregularMesh(200, 5, 3, 41),
		"grid": gen.Grid2D(12),
		"lp":   gen.NormalEq(90, 3, 2, 8, 3),
	} {
		method := ord.MinDegree
		gd := 0
		if name == "grid" {
			method, gd = ord.NDGrid2D, 12
		}
		m, st := prep(t, mtx, method, gd, symbolic.NoAmalgamation())
		mf, stats, err := Compute(m, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Fronts != len(st.Snodes) {
			t.Fatalf("%s: fronts %d, want %d", name, stats.Fronts, len(st.Snodes))
		}
		ref, err := refchol.Compute(m)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < m.N; j++ {
			if math.Abs(mf.Diag[j]-ref.Diag[j]) > 1e-9*(1+ref.Diag[j]) {
				t.Fatalf("%s: diag %d: %g vs %g", name, j, mf.Diag[j], ref.Diag[j])
			}
			// With exact structure, the stored row sets must coincide.
			if len(mf.Rows[j]) != len(ref.Rows[j]) {
				t.Fatalf("%s: column %d length %d vs %d", name, j, len(mf.Rows[j]), len(ref.Rows[j]))
			}
			for q := range mf.Rows[j] {
				if mf.Rows[j][q] != ref.Rows[j][q] {
					t.Fatalf("%s: column %d row mismatch", name, j)
				}
				if math.Abs(mf.Vals[j][q]-ref.Vals[j][q]) > 1e-9*(1+math.Abs(ref.Vals[j][q])) {
					t.Fatalf("%s: L(%d,%d): %g vs %g", name,
						mf.Rows[j][q], j, mf.Vals[j][q], ref.Vals[j][q])
				}
			}
		}
	}
}

func TestWithAmalgamationSolves(t *testing.T) {
	// Relaxed supernodes store explicit zeros; values of true entries must
	// still solve the system.
	m, st := prep(t, gen.IrregularMesh(250, 5, 3, 8), ord.MinDegree, 0, symbolic.DefaultAmalgamation())
	f, _, err := Compute(m, st)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.7)
	}
	x := f.Solve(b)
	if r := m.ResidualNorm(x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestStatsSensible(t *testing.T) {
	m, st := prep(t, gen.Grid2D(16), ord.NDGrid2D, 16, symbolic.DefaultAmalgamation())
	_, stats, err := Compute(m, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakFrontSize <= 0 || stats.PeakStackBytes <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	// The top separator of a 16×16 grid is 16 wide; the peak front is at
	// least that.
	if stats.PeakFrontSize < 16 {
		t.Fatalf("peak front %d implausibly small", stats.PeakFrontSize)
	}
}

func TestDense(t *testing.T) {
	m, st := prep(t, gen.Dense(24), ord.Natural, 0, symbolic.NoAmalgamation())
	f, stats, err := Compute(m, st)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fronts != 1 || stats.PeakFrontSize != 24 {
		t.Fatalf("dense stats %+v", stats)
	}
	b := make([]float64, 24)
	b[3] = 1
	x := f.Solve(b)
	if r := m.ResidualNorm(x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	m, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6, symbolic.NoAmalgamation())
	m.Val[m.ColPtr[10]] = -8
	if _, _, err := Compute(m, st); err == nil {
		t.Fatal("indefinite accepted")
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6, symbolic.NoAmalgamation())
	if _, _, err := Compute(gen.Grid2D(7), st); err == nil {
		t.Fatal("mismatch accepted")
	}
}
