// Package multifrontal implements a sequential supernodal multifrontal
// Cholesky factorization — the third classical organization of sparse
// Cholesky (alongside the left-looking and right-looking/fan-out methods
// the authors compare in their earlier work). Each supernode assembles a
// dense frontal matrix from the original entries and its children's update
// matrices (extend-add), factors its pivot columns densely, and passes the
// Schur complement up the supernode elimination forest.
//
// It provides a third independently-coded factorization for
// cross-validation, and its peak update-stack size is a classic space
// metric reported by Stats.
package multifrontal

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blockfanout/internal/kernels"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// ErrNotPositiveDefinite reports a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("multifrontal: matrix is not positive definite")

// Stats reports multifrontal-specific execution measures.
type Stats struct {
	// PeakFrontSize is the largest frontal matrix order encountered.
	PeakFrontSize int
	// PeakStackBytes is the high-water mark of update-matrix storage, the
	// multifrontal method's extra working space.
	PeakStackBytes int64
	// Fronts is the number of frontal matrices (supernodes) processed.
	Fronts int
}

// update is a child's Schur complement waiting for its parent: a dense
// lower-triangular matrix over the child's below-diagonal row set.
type update struct {
	rows []int
	data []float64 // len(rows)² row-major, lower triangle meaningful
}

// Compute factors the permuted, postordered matrix a whose supernodal
// analysis is st. The returned factor uses the shared column-compressed
// container from package refchol.
func Compute(a *sparse.Matrix, st *symbolic.Structure) (*refchol.Factor, Stats, error) {
	if a.N != st.N {
		return nil, Stats{}, fmt.Errorf("multifrontal: matrix n=%d vs analysis n=%d", a.N, st.N)
	}
	n := a.N
	f := &refchol.Factor{
		N:    n,
		Diag: make([]float64, n),
		Rows: make([][]int32, n),
		Vals: make([][]float64, n),
	}
	var stats Stats
	pend := make(map[int]*update, len(st.Snodes))
	children := make([][]int, len(st.Snodes))
	for s, p := range st.Parent {
		if p >= 0 {
			children[p] = append(children[p], s)
		}
	}
	var stackBytes int64

	for s, sn := range st.Snodes {
		stats.Fronts++
		w := sn.Width
		below := st.Rows[s]
		r := w + len(below)
		if r > stats.PeakFrontSize {
			stats.PeakFrontSize = r
		}
		// Frontal index list: the supernode's columns then its rows,
		// both ascending — globally ascending by construction.
		idx := make([]int, r)
		for t := 0; t < w; t++ {
			idx[t] = sn.First + t
		}
		copy(idx[w:], below)

		front := make([]float64, r*r)
		// Assemble original entries of the supernode's columns.
		for t := 0; t < w; t++ {
			j := sn.First + t
			for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
				g := a.RowInd[q]
				li := localIndex(idx, g)
				if li < 0 {
					return nil, stats, fmt.Errorf("multifrontal: A(%d,%d) outside front", g, j)
				}
				front[li*r+t] += a.Val[q]
			}
		}
		// Extend-add the children's update matrices.
		for _, c := range children[s] {
			u := pend[c]
			delete(pend, c)
			stackBytes -= int64(len(u.data)) * 8
			m := len(u.rows)
			loc := make([]int, m)
			for i, g := range u.rows {
				loc[i] = localIndex(idx, g)
				if loc[i] < 0 {
					return nil, stats, fmt.Errorf("multifrontal: update row %d of child %d missing from front %d", g, c, s)
				}
			}
			for i := 0; i < m; i++ {
				for j := 0; j <= i; j++ {
					front[loc[i]*r+loc[j]] += u.data[i*m+j]
				}
			}
		}

		// Partial dense factorization of the leading w columns.
		for k := 0; k < w; k++ {
			d := front[k*r+k]
			if !(d > 0) || math.IsInf(d, 1) {
				return nil, stats, fmt.Errorf("%w: %w", ErrNotPositiveDefinite,
					&kernels.PivotError{Block: s, Row: sn.First + k, Pivot: d})
			}
			d = math.Sqrt(d)
			front[k*r+k] = d
			inv := 1 / d
			for i := k + 1; i < r; i++ {
				front[i*r+k] *= inv
			}
			for i := k + 1; i < r; i++ {
				lik := front[i*r+k]
				if lik == 0 {
					continue
				}
				rowI := front[i*r:]
				for j := k + 1; j <= i; j++ {
					rowI[j] -= lik * front[j*r+k]
				}
			}
		}

		// Harvest the factored columns.
		for t := 0; t < w; t++ {
			j := sn.First + t
			f.Diag[j] = front[t*r+t]
			cnt := r - t - 1
			f.Rows[j] = make([]int32, cnt)
			f.Vals[j] = make([]float64, cnt)
			for u := t + 1; u < r; u++ {
				f.Rows[j][u-t-1] = int32(idx[u])
				f.Vals[j][u-t-1] = front[u*r+t]
			}
		}

		// Push the Schur complement for the parent.
		if len(below) > 0 {
			m := len(below)
			u := &update{rows: append([]int(nil), below...), data: make([]float64, m*m)}
			for i := 0; i < m; i++ {
				for j := 0; j <= i; j++ {
					u.data[i*m+j] = front[(w+i)*r+(w+j)]
				}
			}
			pend[s] = u
			stackBytes += int64(len(u.data)) * 8
			if stackBytes > stats.PeakStackBytes {
				stats.PeakStackBytes = stackBytes
			}
		}
	}
	if len(pend) != 0 {
		return nil, stats, fmt.Errorf("multifrontal: %d unconsumed update matrices", len(pend))
	}
	return f, stats, nil
}

// localIndex binary-searches g in the ascending index list.
func localIndex(idx []int, g int) int {
	k := sort.SearchInts(idx, g)
	if k < len(idx) && idx[k] == g {
		return k
	}
	return -1
}
