// Package dot exports the library's structural objects — elimination
// forests and block-column dependency graphs — as Graphviz DOT documents,
// for inspecting orderings and schedules visually.
package dot

import (
	"fmt"
	"io"

	"blockfanout/internal/blocks"
	"blockfanout/internal/symbolic"
)

// SupernodeForest writes the supernode elimination forest: one node per
// supernode (labelled with its column range and row count), edges child →
// parent.
func SupernodeForest(w io.Writer, st *symbolic.Structure) error {
	if _, err := fmt.Fprintln(w, "digraph etree {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=BT;")
	fmt.Fprintln(w, "  node [shape=box, fontsize=9];")
	for s, sn := range st.Snodes {
		fmt.Fprintf(w, "  s%d [label=\"S%d\\ncols %d..%d\\nrows %d\"];\n",
			s, s, sn.First, sn.Last(), len(st.Rows[s]))
	}
	for s, p := range st.Parent {
		if p >= 0 {
			fmt.Fprintf(w, "  s%d -> s%d;\n", s, p)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// BlockColumns writes the block-column dependency graph: one node per
// panel, an edge K → J whenever column K's blocks update blocks in column
// J (i.e. J appears as a block row of column K). This is the column-level
// condensation of the BMOD data-flow the fan-out method executes.
func BlockColumns(w io.Writer, bs *blocks.Structure) error {
	if _, err := fmt.Fprintln(w, "digraph blockcols {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [shape=circle, fontsize=8];")
	for k := range bs.Cols {
		fmt.Fprintf(w, "  c%d [label=\"%d\"];\n", k, k)
	}
	for k := range bs.Cols {
		seen := map[int]bool{}
		for bi := 1; bi < len(bs.Cols[k].Blocks); bi++ {
			j := bs.Cols[k].Blocks[bi].I
			if !seen[j] {
				seen[j] = true
				fmt.Fprintf(w, "  c%d -> c%d;\n", k, j)
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
