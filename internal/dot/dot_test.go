package dot

import (
	"fmt"
	"strings"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
)

func TestSupernodeForest(t *testing.T) {
	plan, err := core.NewPlan(gen.Grid2D(8), core.Options{Ordering: ord.NDGrid2D, GridDim: 8, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := SupernodeForest(&sb, plan.Sym); err != nil {
		t.Fatal(err)
	}
	forest := sb.String()
	if !strings.HasPrefix(forest, "digraph etree {") || !strings.HasSuffix(strings.TrimSpace(forest), "}") {
		t.Fatalf("malformed DOT:\n%s", forest)
	}
	if nodes := strings.Count(forest, "[label=\"S"); nodes != len(plan.Sym.Snodes) {
		t.Fatalf("nodes %d, want %d", nodes, len(plan.Sym.Snodes))
	}
	roots := 0
	for _, p := range plan.Sym.Parent {
		if p == -1 {
			roots++
		}
	}
	if edges := strings.Count(forest, " -> "); edges != len(plan.Sym.Snodes)-roots {
		t.Fatalf("edges %d, want %d", edges, len(plan.Sym.Snodes)-roots)
	}
}

func TestBlockColumnsEdgesForwardOnly(t *testing.T) {
	plan, err := core.NewPlan(gen.IrregularMesh(150, 5, 3, 9), core.Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := BlockColumns(&sb, plan.BS); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "[label=") != plan.BS.N() {
		t.Fatal("panel node count wrong")
	}
	edges := 0
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		var a, b int
		if _, err := fmt.Sscanf(line, "c%d -> c%d;", &a, &b); err == nil {
			edges++
			if b <= a {
				t.Fatalf("backward edge %d -> %d", a, b)
			}
		}
	}
	if edges == 0 {
		t.Fatal("no dependency edges emitted")
	}
}
