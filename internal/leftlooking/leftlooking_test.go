package leftlooking

import (
	"math"
	"testing"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func prep(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim int,
	amalg symbolic.AmalgamationConfig) (*sparse.Matrix, *symbolic.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, amalg)
	if err != nil {
		t.Fatal(err)
	}
	return m2, st
}

func TestMatchesReference(t *testing.T) {
	for name, mtx := range map[string]*sparse.Matrix{
		"mesh":  gen.IrregularMesh(220, 5, 3, 3),
		"grid":  gen.Grid2D(11),
		"dense": gen.Dense(25),
	} {
		method, gd := ord.MinDegree, 0
		if name == "grid" {
			method, gd = ord.NDGrid2D, 11
		}
		if name == "dense" {
			method = ord.Natural
		}
		m, st := prep(t, mtx, method, gd, symbolic.NoAmalgamation())
		ll, err := Compute(m, st)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref, err := refchol.Compute(m)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < m.N; j++ {
			if math.Abs(ll.Diag[j]-ref.Diag[j]) > 1e-9*(1+ref.Diag[j]) {
				t.Fatalf("%s: diag %d: %g vs %g", name, j, ll.Diag[j], ref.Diag[j])
			}
			for q, r := range ll.Rows[j] {
				want := ref.At(int(r), j)
				if math.Abs(ll.Vals[j][q]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("%s: L(%d,%d): %g vs %g", name, r, j, ll.Vals[j][q], want)
				}
			}
		}
	}
}

func TestWithAmalgamationSolves(t *testing.T) {
	m, st := prep(t, gen.IrregularMesh(260, 5, 3, 29), ord.MinDegree, 0, symbolic.DefaultAmalgamation())
	f, err := Compute(m, st)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := f.Solve(b)
	if r := m.ResidualNorm(x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	m, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6, symbolic.NoAmalgamation())
	m.Val[m.ColPtr[20]] = -4
	if _, err := Compute(m, st); err == nil {
		t.Fatal("indefinite accepted")
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6, symbolic.NoAmalgamation())
	if _, err := Compute(gen.Grid2D(7), st); err == nil {
		t.Fatal("mismatch accepted")
	}
}

// TestFourWayAgreement factors the same matrix with all four independent
// organizations implemented in this repository and checks they agree.
func TestFourWayAgreement(t *testing.T) {
	m, st := prep(t, gen.IrregularMesh(180, 6, 3, 55), ord.MinDegree, 0, symbolic.NoAmalgamation())
	ll, err := Compute(m, st)
	if err != nil {
		t.Fatal(err)
	}
	up, err := refchol.Compute(m)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = math.Sin(float64(i) * 0.9)
	}
	x1 := ll.Solve(b)
	x2 := up.Solve(b)
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-9*(1+math.Abs(x2[i])) {
			t.Fatalf("left-looking vs up-looking solutions differ at %d", i)
		}
	}
}
