// Package leftlooking implements a sequential left-looking supernodal
// Cholesky factorization: each supernode panel gathers (pulls) the updates
// of all earlier supernodes whose structure reaches into its columns, then
// factors its pivot block densely. Together with the right-looking block
// fan-out (packages numeric/fanout), the up-looking row algorithm
// (refchol), and the multifrontal method, this completes the set of
// classical organizations the authors compare in their earlier work
// [Rothberg & Gupta 1991] — and provides a fourth independent
// cross-validation of the factor values.
package leftlooking

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"blockfanout/internal/kernels"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// ErrNotPositiveDefinite reports a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("leftlooking: matrix is not positive definite")

// Compute factors the permuted, postordered matrix a (analysis st) and
// returns the factor in the shared column-compressed container.
func Compute(a *sparse.Matrix, st *symbolic.Structure) (*refchol.Factor, error) {
	if a.N != st.N {
		return nil, fmt.Errorf("leftlooking: matrix n=%d vs analysis n=%d", a.N, st.N)
	}
	ns := len(st.Snodes)

	// Panel storage per supernode: rows = cols(S) ++ Rows(S) (ascending),
	// width = |cols(S)|; row-major (rows × width).
	panels := make([][]float64, ns)
	rowsOf := make([][]int, ns) // full local row index list (global labels)
	for s, sn := range st.Snodes {
		r := sn.Width + len(st.Rows[s])
		panels[s] = make([]float64, r*sn.Width)
		idx := make([]int, r)
		for t := 0; t < sn.Width; t++ {
			idx[t] = sn.First + t
		}
		copy(idx[sn.Width:], st.Rows[s])
		rowsOf[s] = idx
	}

	// Scatter A.
	for s, sn := range st.Snodes {
		idx := rowsOf[s]
		w := sn.Width
		for t := 0; t < w; t++ {
			j := sn.First + t
			for q := a.ColPtr[j]; q < a.ColPtr[j+1]; q++ {
				g := a.RowInd[q]
				li := localIndex(idx, g)
				if li < 0 {
					return nil, fmt.Errorf("leftlooking: A(%d,%d) outside structure", g, j)
				}
				panels[s][li*w+t] += a.Val[q]
			}
		}
	}

	// updaters[S] lists the earlier supernodes whose row structure enters
	// S's column range, with the position where it enters.
	type upd struct {
		src int
		lo  int // first index in Rows(src) with row ≥ first(S)
	}
	updaters := make([][]upd, ns)
	for d := 0; d < ns; d++ {
		rows := st.Rows[d]
		for lo := 0; lo < len(rows); {
			s := st.SnodeOf[rows[lo]]
			updaters[s] = append(updaters[s], upd{src: d, lo: lo})
			last := st.Snodes[s].Last()
			hi := lo + 1
			for hi < len(rows) && rows[hi] <= last {
				hi++
			}
			lo = hi
		}
	}

	for s, sn := range st.Snodes {
		w := sn.Width
		idx := rowsOf[s]
		panel := panels[s]
		// Pull updates.
		for _, u := range updaters[s] {
			dn := st.Snodes[u.src]
			wD := dn.Width
			drows := st.Rows[u.src]
			dpanel := panels[u.src]
			// Split the source rows: [u.lo, mid) fall inside S's columns
			// (they index S's columns); [u.lo, end) are the target rows.
			mid := u.lo
			for mid < len(drows) && drows[mid] <= sn.Last() {
				mid++
			}
			// Local positions of the target rows within S's panel.
			for i := u.lo; i < len(drows); i++ {
				gi := drows[i]
				li := localIndex(idx, gi)
				if li < 0 {
					return nil, fmt.Errorf("leftlooking: update row %d of supernode %d missing from %d", gi, u.src, s)
				}
				// Row gi of the source panel (offset by the diagonal
				// block): position wD + i in the source panel rows.
				srcI := dpanel[(wD+i)*wD : (wD+i+1)*wD]
				for j := u.lo; j < mid && drows[j] <= gi; j++ {
					lc := drows[j] - sn.First
					srcJ := dpanel[(wD+j)*wD : (wD+j+1)*wD]
					var sum float64
					for k := 0; k < wD; k++ {
						sum += srcI[k] * srcJ[k]
					}
					panel[li*w+lc] -= sum
				}
			}
		}
		// Dense partial factorization of the panel: Cholesky of the w×w
		// leading block, then the triangular solve for the below rows.
		r := len(idx)
		for k := 0; k < w; k++ {
			d := panel[k*w+k]
			for t := 0; t < k; t++ {
				v := panel[k*w+t]
				d -= v * v
			}
			if !(d > 0) || math.IsInf(d, 1) {
				return nil, fmt.Errorf("%w: %w", ErrNotPositiveDefinite,
					&kernels.PivotError{Block: s, Row: sn.First + k, Pivot: d})
			}
			d = math.Sqrt(d)
			panel[k*w+k] = d
			inv := 1 / d
			for i := k + 1; i < r; i++ {
				v := panel[i*w+k]
				for t := 0; t < k; t++ {
					v -= panel[i*w+t] * panel[k*w+t]
				}
				panel[i*w+k] = v * inv
			}
		}
	}

	// Harvest into the column-compressed container.
	f := &refchol.Factor{
		N:    st.N,
		Diag: make([]float64, st.N),
		Rows: make([][]int32, st.N),
		Vals: make([][]float64, st.N),
	}
	for s, sn := range st.Snodes {
		w := sn.Width
		idx := rowsOf[s]
		panel := panels[s]
		for t := 0; t < w; t++ {
			j := sn.First + t
			f.Diag[j] = panel[t*w+t]
			cnt := len(idx) - t - 1
			f.Rows[j] = make([]int32, cnt)
			f.Vals[j] = make([]float64, cnt)
			for u := t + 1; u < len(idx); u++ {
				f.Rows[j][u-t-1] = int32(idx[u])
				f.Vals[j][u-t-1] = panel[u*w+t]
			}
		}
	}
	return f, nil
}

func localIndex(idx []int, g int) int {
	k := sort.SearchInts(idx, g)
	if k < len(idx) && idx[k] == g {
		return k
	}
	return -1
}
