//go:build amd64

#include "textflag.h"

// func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dot4x2fma(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64)
//
// Eight dot products in one sweep: out[2i+j] = Σₖ aᵢ[k]·bⱼ[k]. The main
// loop processes four k per iteration with eight YMM accumulators (Y0–Y7)
// and six operand loads (Y8–Y13) — the vector version of the 4×2 micro-tile
// the portable kernel uses. Remainder elements are accumulated with scalar
// FMAs after the horizontal reduction.
TEXT ·dot4x2fma(SB), NOSPLIT, $0-64
	MOVQ a0+0(FP), R8
	MOVQ a1+8(FP), R9
	MOVQ a2+16(FP), R10
	MOVQ a3+24(FP), R11
	MOVQ b0+32(FP), R12
	MOVQ b1+40(FP), R13
	MOVQ n+48(FP), CX
	MOVQ out+56(FP), DI

	VXORPD Y0, Y0, Y0 // Σ a0·b0
	VXORPD Y1, Y1, Y1 // Σ a0·b1
	VXORPD Y2, Y2, Y2 // Σ a1·b0
	VXORPD Y3, Y3, Y3 // Σ a1·b1
	VXORPD Y4, Y4, Y4 // Σ a2·b0
	VXORPD Y5, Y5, Y5 // Σ a2·b1
	VXORPD Y6, Y6, Y6 // Σ a3·b0
	VXORPD Y7, Y7, Y7 // Σ a3·b1

	MOVQ CX, BX
	SHRQ $2, BX
	JZ   reduce

vloop:
	VMOVUPD (R12), Y8  // b0[k:k+4]
	VMOVUPD (R13), Y9  // b1[k:k+4]
	VMOVUPD (R8), Y10  // a0[k:k+4]
	VMOVUPD (R9), Y11  // a1[k:k+4]
	VMOVUPD (R10), Y12 // a2[k:k+4]
	VMOVUPD (R11), Y13 // a3[k:k+4]
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7
	ADDQ $32, R8
	ADDQ $32, R9
	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	DECQ BX
	JNZ  vloop

reduce:
	// Fold each 4-lane accumulator into its low scalar lane.
	VEXTRACTF128 $1, Y0, X8
	VADDPD       X8, X0, X0
	VHADDPD      X0, X0, X0
	VEXTRACTF128 $1, Y1, X8
	VADDPD       X8, X1, X1
	VHADDPD      X1, X1, X1
	VEXTRACTF128 $1, Y2, X8
	VADDPD       X8, X2, X2
	VHADDPD      X2, X2, X2
	VEXTRACTF128 $1, Y3, X8
	VADDPD       X8, X3, X3
	VHADDPD      X3, X3, X3
	VEXTRACTF128 $1, Y4, X8
	VADDPD       X8, X4, X4
	VHADDPD      X4, X4, X4
	VEXTRACTF128 $1, Y5, X8
	VADDPD       X8, X5, X5
	VHADDPD      X5, X5, X5
	VEXTRACTF128 $1, Y6, X8
	VADDPD       X8, X6, X6
	VHADDPD      X6, X6, X6
	VEXTRACTF128 $1, Y7, X8
	VADDPD       X8, X7, X7
	VHADDPD      X7, X7, X7

	ANDQ $3, CX
	JZ   store

sloop:
	VMOVSD (R12), X8
	VMOVSD (R13), X9
	VMOVSD (R8), X10
	VMOVSD (R9), X11
	VMOVSD (R10), X12
	VMOVSD (R11), X13
	VFMADD231SD X8, X10, X0
	VFMADD231SD X9, X10, X1
	VFMADD231SD X8, X11, X2
	VFMADD231SD X9, X11, X3
	VFMADD231SD X8, X12, X4
	VFMADD231SD X9, X12, X5
	VFMADD231SD X8, X13, X6
	VFMADD231SD X9, X13, X7
	ADDQ $8, R8
	ADDQ $8, R9
	ADDQ $8, R10
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	DECQ CX
	JNZ  sloop

store:
	VMOVSD X0, (DI)
	VMOVSD X1, 8(DI)
	VMOVSD X2, 16(DI)
	VMOVSD X3, 24(DI)
	VMOVSD X4, 32(DI)
	VMOVSD X5, 40(DI)
	VMOVSD X6, 48(DI)
	VMOVSD X7, 56(DI)
	VZEROUPPER
	RET
