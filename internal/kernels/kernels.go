// Package kernels implements the three dense block primitives of the block
// fan-out method (§2.1) on the packed block formats used by the factor:
//
//	BFAC: Cholesky factorization of a dense diagonal block
//	BDIV: right triangular solve  L_IK ← L_IK · L_KK⁻ᵀ
//	BMOD: indexed outer-product update  L_IJ ← L_IJ − L_IK · L_JKᵀ
//
// The paper uses hand-optimized Level-3 BLAS for BDIV (triangular solve
// with multiple right-hand sides) and BMOD (matrix multiplication). These
// pure-Go kernels perform the identical arithmetic with register tiling in
// the same spirit: BMOD sweeps 4×2 register tiles over the panel (w)
// dimension so eight accumulators stay in registers and every loaded
// source element feeds multiple products, BDIV solves four
// right-hand-side rows per pass so every loaded L entry is used four
// times, and BFAC is a blocked right-looking factorization whose trailing
// update reuses the tiled multiply. The naive triple-loop
// variants are kept in-tree (CholeskyNaive, SolveRightNaive, MulSubNaive)
// as the reference implementations the property tests and benchmarks
// compare against.
//
// Storage conventions: a diagonal block of panel width w is a full w×w
// row-major matrix of which only the lower triangle is meaningful; an
// off-diagonal block with r dense rows is an r×w row-major matrix whose
// row s corresponds to global row Rows[s].
package kernels

import (
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// unsafeSlice adapts the pointer-based dot4x2fma calling convention (shared
// with the assembly kernel) back to a bounds-checked slice.
func unsafeSlice(p *float64, n int) []float64 { return unsafe.Slice(p, n) }

// ErrNotPositiveDefinite is returned by Cholesky when a pivot is not
// strictly positive.
var ErrNotPositiveDefinite = errors.New("kernels: matrix is not positive definite")

// PivotError is the structured form of a numerical breakdown: the
// factorization hit a pivot that is non-positive, NaN, or infinite, so the
// matrix is not (numerically) positive definite. The kernels fill Row with
// the local row index within the block being factored and leave Block at
// -1; the numeric layer rewrites both into panel/global coordinates so the
// error that reaches a caller (or an HTTP client) names the exact failure
// site. PivotError matches ErrNotPositiveDefinite under errors.Is, so
// pre-existing sentinel checks keep working.
type PivotError struct {
	Block int     // panel (block column) index, -1 until a caller fills it in
	Row   int     // row of the offending pivot (local in kernels, global above)
	Pivot float64 // the offending pivot value (NaN, ±Inf, zero, or negative)
}

func (e *PivotError) Error() string {
	if e.Block >= 0 {
		return fmt.Sprintf("kernels: pivot breakdown at block %d, row %d (pivot %g): matrix is not positive definite", e.Block, e.Row, e.Pivot)
	}
	return fmt.Sprintf("kernels: pivot breakdown at row %d (pivot %g): matrix is not positive definite", e.Row, e.Pivot)
}

// Is reports PivotError as a kind of ErrNotPositiveDefinite.
func (e *PivotError) Is(target error) bool { return target == ErrNotPositiveDefinite }

// badPivot reports whether d cannot serve as a Cholesky pivot: it must be
// strictly positive and finite. !(d > 0) also catches NaN.
func badPivot(d float64) bool { return !(d > 0) || math.IsInf(d, 1) }

// choleskyNB is the panel width of the blocked right-looking Cholesky:
// diagonal tiles up to this size are factored with the unblocked kernel,
// larger blocks are processed in choleskyNB-wide panels so the trailing
// update runs through the register-tiled rank-nb multiply.
const choleskyNB = 32

// Cholesky factors the lower triangle of the w×w row-major matrix a in
// place: on return the lower triangle holds L with a = L·Lᵀ. The strict
// upper triangle is ignored and left untouched.
//
// Blocks wider than choleskyNB are factored with a blocked right-looking
// sweep: factor an nb×nb diagonal tile, triangular-solve the panel below
// it, then rank-nb update the trailing submatrix with the register-tiled
// multiply.
func Cholesky(a []float64, w int) error {
	if len(a) < w*w {
		return fmt.Errorf("kernels: Cholesky buffer %d < %d", len(a), w*w)
	}
	if w <= choleskyNB {
		return choleskyUnblockedLD(a, w, w, 0)
	}
	for k := 0; k < w; k += choleskyNB {
		nb := choleskyNB
		if w-k < nb {
			nb = w - k
		}
		diag := a[k*w+k:]
		if err := choleskyUnblockedLD(diag, nb, w, k); err != nil {
			return err
		}
		rem := w - k - nb
		if rem == 0 {
			continue
		}
		panel := a[(k+nb)*w+k:]
		// The diagonal tile just factored cleanly, so its pivots are all
		// strictly positive and the triangular solve cannot break down.
		solveRightLD(panel, rem, w, diag, nb, w)
		syrkLowerLD(a[(k+nb)*w+(k+nb):], rem, w, panel, nb, w)
	}
	return nil
}

// CholeskyNaive is the unblocked reference factorization the tiled kernel
// is validated and benchmarked against.
func CholeskyNaive(a []float64, w int) error {
	if len(a) < w*w {
		return fmt.Errorf("kernels: Cholesky buffer %d < %d", len(a), w*w)
	}
	return choleskyUnblockedLD(a, w, w, 0)
}

// choleskyUnblockedLD factors the leading n×n lower triangle of a matrix
// with leading dimension lda. row0 is the caller's row offset of a's first
// row, used only to report breakdown locations in the caller's coordinates.
//
// On breakdown the sweep records the offending row and constructs the
// PivotError only after exiting: an escaping allocation inside the loop
// body — even on a branch that never executes — costs the hot loop double-
// digit percent by forcing spills around every iteration.
func choleskyUnblockedLD(a []float64, n, lda, row0 int) error {
	badRow := -1
	var badVal float64
	for k := 0; k < n; k++ {
		d := a[k*lda+k]
		ak := a[k*lda : k*lda+k]
		for _, v := range ak {
			d -= v * v
		}
		if badPivot(d) {
			badRow, badVal = k, d
			break
		}
		d = math.Sqrt(d)
		a[k*lda+k] = d
		inv := 1 / d
		for i := k + 1; i < n; i++ {
			s := a[i*lda+k]
			ai := a[i*lda : i*lda+k]
			for t, v := range ai {
				s -= v * ak[t]
			}
			a[i*lda+k] = s * inv
		}
	}
	if badRow >= 0 {
		return &PivotError{Block: -1, Row: row0 + badRow, Pivot: badVal}
	}
	return nil
}

// syrkLowerLD performs the symmetric rank-nb update C ← C − P·Pᵀ on the
// lower triangle of the n×n matrix c (leading dimension ldc), where P is
// n×nb with leading dimension ldp. Full 4×2 tiles at or below the
// diagonal go through the register-tiled dot kernel; the ragged fringe at
// the diagonal is finished element-wise.
func syrkLowerLD(c []float64, n, ldc int, p []float64, nb, ldp int) {
	i := 0
	for ; i+4 <= n; i += 4 {
		p0 := p[i*ldp : i*ldp+nb]
		p1 := p[(i+1)*ldp : (i+1)*ldp+nb]
		p2 := p[(i+2)*ldp : (i+2)*ldp+nb]
		p3 := p[(i+3)*ldp : (i+3)*ldp+nb]
		c0 := c[i*ldc:]
		c1 := c[(i+1)*ldc:]
		c2 := c[(i+2)*ldc:]
		c3 := c[(i+3)*ldc:]
		j := 0
		for ; j+1 <= i; j += 2 {
			q0 := p[j*ldp : j*ldp+nb]
			q1 := p[(j+1)*ldp : (j+1)*ldp+nb]
			s00, s01, s10, s11, s20, s21, s30, s31 := dot4x2(p0, p1, p2, p3, q0, q1)
			c0[j] -= s00
			c0[j+1] -= s01
			c1[j] -= s10
			c1[j+1] -= s11
			c2[j] -= s20
			c2[j+1] -= s21
			c3[j] -= s30
			c3[j+1] -= s31
		}
		for r := 0; r < 4; r++ {
			pr := p[(i+r)*ldp : (i+r)*ldp+nb]
			crow := c[(i+r)*ldc:]
			for jj := j; jj <= i+r; jj++ {
				crow[jj] -= dot(pr, p[jj*ldp:jj*ldp+nb])
			}
		}
	}
	for ; i < n; i++ {
		pi := p[i*ldp : i*ldp+nb]
		crow := c[i*ldc:]
		for j := 0; j <= i; j++ {
			crow[j] -= dot(pi, p[j*ldp:j*ldp+nb])
		}
	}
}

// checkSolvePivots validates the n diagonal entries of the triangular
// factor l (leading dimension ldl) before a BDIV-style solve divides by
// them: each must be strictly positive and finite. The O(n) pre-pass keeps
// the O(r·n²) substitution loops untouched while guaranteeing the solve can
// never emit NaN or Inf from a broken-down diagonal block.
func checkSolvePivots(l []float64, n, ldl int) error {
	badRow := -1
	for j := 0; j < n; j++ {
		if badPivot(l[j*ldl+j]) {
			badRow = j
			break
		}
	}
	if badRow >= 0 {
		return &PivotError{Block: -1, Row: badRow, Pivot: l[badRow*ldl+badRow]}
	}
	return nil
}

// SolveRight performs the BDIV operation: X ← X · L⁻ᵀ where X is r×w
// row-major and L is the w×w lower-triangular factor of the diagonal block.
// Each row x of X is replaced by the solution y of y·Lᵀ = x. Four rows are
// solved per pass so each L entry loaded from memory feeds four
// substitutions. A non-positive, NaN, or infinite diagonal in l — the
// signature of a diagonal block whose factorization broke down — yields a
// PivotError before any substitution runs.
func SolveRight(x []float64, r int, l []float64, w int) error {
	if err := checkSolvePivots(l, w, w); err != nil {
		return err
	}
	solveRightLD(x, r, w, l, w, w)
	return nil
}

// SolveRightNaive is the one-row-at-a-time reference implementation.
func SolveRightNaive(x []float64, r int, l []float64, w int) error {
	if err := checkSolvePivots(l, w, w); err != nil {
		return err
	}
	for s := 0; s < r; s++ {
		row := x[s*w : s*w+w]
		for j := 0; j < w; j++ {
			v := row[j]
			lj := l[j*w:]
			for t := 0; t < j; t++ {
				v -= row[t] * lj[t]
			}
			row[j] = v / lj[j]
		}
	}
	return nil
}

// solveRightLD solves X ← X·L⁻ᵀ for an r×n block X with leading dimension
// ldx against the leading n×n lower triangle of l (leading dimension ldl),
// processing four right-hand-side rows at a time.
func solveRightLD(x []float64, r, ldx int, l []float64, n, ldl int) {
	s := 0
	for ; s+4 <= r; s += 4 {
		x0 := x[s*ldx : s*ldx+n]
		x1 := x[(s+1)*ldx : (s+1)*ldx+n]
		x2 := x[(s+2)*ldx : (s+2)*ldx+n]
		x3 := x[(s+3)*ldx : (s+3)*ldx+n]
		for j := 0; j < n; j++ {
			lj := l[j*ldl : j*ldl+j+1]
			v0, v1, v2, v3 := x0[j], x1[j], x2[j], x3[j]
			for t := 0; t < j; t++ {
				lt := lj[t]
				v0 -= x0[t] * lt
				v1 -= x1[t] * lt
				v2 -= x2[t] * lt
				v3 -= x3[t] * lt
			}
			d := lj[j]
			x0[j] = v0 / d
			x1[j] = v1 / d
			x2[j] = v2 / d
			x3[j] = v3 / d
		}
	}
	for ; s < r; s++ {
		row := x[s*ldx : s*ldx+n]
		for j := 0; j < n; j++ {
			v := row[j]
			lj := l[j*ldl:]
			for t := 0; t < j; t++ {
				v -= row[t] * lj[t]
			}
			row[j] = v / lj[j]
		}
	}
}

// MulSub performs the BMOD update C ← C − A·Bᵀ with index indirection:
// A is ra×w, B is rb×w, C is the destination block with leading dimension
// ldc, and entry (s,t) of the product lands at C[relRow[s]*ldc + relCol[t]].
//
// When the destination is a diagonal block the caller must pass lower=true
// together with the global row/column index lists (ascending, as block row
// lists always are) so only the lower triangle is updated.
//
// The destination indirection is classified once per call, not per
// element: when relRow and relCol are both consecutive runs the update is
// dispatched to the dense contiguous kernel, otherwise to the scattered
// kernel. Callers that already know the classification (package numeric
// fuses it into index construction) can invoke MulSubContig or
// MulSubScattered directly.
func MulSub(c []float64, ldc int, a []float64, ra int, b []float64, rb int, w int,
	relRow, relCol []int, lower bool, rowsA, rowsB []int) {
	if ra == 0 || rb == 0 {
		return
	}
	if lower {
		MulSubLower(c, ldc, a, ra, b, rb, w, relRow, relCol, rowsA, rowsB)
		return
	}
	if consecutive(relRow, ra) && consecutive(relCol, rb) {
		MulSubContig(c[relRow[0]*ldc+relCol[0]:], ldc, a, ra, b, rb, w)
		return
	}
	MulSubScattered(c, ldc, a, ra, b, rb, w, relRow, relCol)
}

// consecutive reports whether rel[:n] is the run rel[0], rel[0]+1, … .
func consecutive(rel []int, n int) bool {
	r0 := rel[0]
	for s := 1; s < n; s++ {
		if rel[s] != r0+s {
			return false
		}
	}
	return true
}

// MulSubNaive is the reference triple-loop BMOD the tiled kernels are
// validated and benchmarked against. Unlike MulSub it accepts unsorted
// rowsA/rowsB in the lower case.
func MulSubNaive(c []float64, ldc int, a []float64, ra int, b []float64, rb int, w int,
	relRow, relCol []int, lower bool, rowsA, rowsB []int) {
	for s := 0; s < ra; s++ {
		as := a[s*w : s*w+w]
		crow := c[relRow[s]*ldc:]
		for t := 0; t < rb; t++ {
			if lower && rowsA[s] < rowsB[t] {
				continue
			}
			bt := b[t*w : t*w+w]
			var sum float64
			for k := 0; k < w; k++ {
				sum += as[k] * bt[k]
			}
			crow[relCol[t]] -= sum
		}
	}
}

// MulSubContig performs C ← C − A·Bᵀ for a dense consecutive destination:
// product entry (s,t) lands at c[s*ldc+t] (the caller applies the
// destination origin by slicing c). This is the no-indirection fast path
// of the BMOD kernel: 4×2 register tiles accumulate eight inner products
// per sweep over the panel dimension w.
func MulSubContig(c []float64, ldc int, a []float64, ra int, b []float64, rb, w int) {
	s := 0
	for ; s+4 <= ra; s += 4 {
		a0 := a[s*w : s*w+w]
		a1 := a[(s+1)*w : (s+1)*w+w]
		a2 := a[(s+2)*w : (s+2)*w+w]
		a3 := a[(s+3)*w : (s+3)*w+w]
		c0 := c[s*ldc:]
		c1 := c[(s+1)*ldc:]
		c2 := c[(s+2)*ldc:]
		c3 := c[(s+3)*ldc:]
		t := 0
		if useFMA {
			var acc [8]float64
			for ; t+2 <= rb; t += 2 {
				b0 := b[t*w : t*w+w]
				b1 := b[(t+1)*w : (t+1)*w+w]
				dot4x2fma(&a0[0], &a1[0], &a2[0], &a3[0], &b0[0], &b1[0], w, &acc)
				c0[t] -= acc[0]
				c0[t+1] -= acc[1]
				c1[t] -= acc[2]
				c1[t+1] -= acc[3]
				c2[t] -= acc[4]
				c2[t+1] -= acc[5]
				c3[t] -= acc[6]
				c3[t+1] -= acc[7]
			}
		}
		for ; t+2 <= rb; t += 2 {
			b0 := b[t*w : t*w+w]
			b1 := b[(t+1)*w : (t+1)*w+w]
			// The 4×2 micro-kernel is written out in place: the call to
			// dot4x2 costs ~8% here, and this loop is the single hottest
			// in the library.
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			for k := 0; k < w; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				bv0, bv1 := b0[k], b1[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
				s20 += av2 * bv0
				s21 += av2 * bv1
				s30 += av3 * bv0
				s31 += av3 * bv1
			}
			c0[t] -= s00
			c0[t+1] -= s01
			c1[t] -= s10
			c1[t+1] -= s11
			c2[t] -= s20
			c2[t+1] -= s21
			c3[t] -= s30
			c3[t+1] -= s31
		}
		if t < rb {
			s0, s1, s2, s3 := dot4x1(a0, a1, a2, a3, b[t*w:t*w+w])
			c0[t] -= s0
			c1[t] -= s1
			c2[t] -= s2
			c3[t] -= s3
		}
	}
	for ; s < ra; s++ {
		as := a[s*w : s*w+w]
		cs := c[s*ldc:]
		t := 0
		for ; t+4 <= rb; t += 4 {
			s0, s1, s2, s3 := dot1x4(as, b[t*w:t*w+w], b[(t+1)*w:(t+1)*w+w], b[(t+2)*w:(t+2)*w+w], b[(t+3)*w:(t+3)*w+w])
			cs[t] -= s0
			cs[t+1] -= s1
			cs[t+2] -= s2
			cs[t+3] -= s3
		}
		for ; t < rb; t++ {
			cs[t] -= dot(as, b[t*w:t*w+w])
		}
	}
}

// MulSubScattered performs the indexed BMOD update for destinations whose
// rows or columns are not consecutive: the same 4×2 register tiles as the
// contiguous path, with the results scattered through relRow/relCol.
func MulSubScattered(c []float64, ldc int, a []float64, ra int, b []float64, rb, w int,
	relRow, relCol []int) {
	s := 0
	for ; s+4 <= ra; s += 4 {
		a0 := a[s*w : s*w+w]
		a1 := a[(s+1)*w : (s+1)*w+w]
		a2 := a[(s+2)*w : (s+2)*w+w]
		a3 := a[(s+3)*w : (s+3)*w+w]
		c0 := c[relRow[s]*ldc:]
		c1 := c[relRow[s+1]*ldc:]
		c2 := c[relRow[s+2]*ldc:]
		c3 := c[relRow[s+3]*ldc:]
		t := 0
		if useFMA {
			var acc [8]float64
			for ; t+2 <= rb; t += 2 {
				b0 := b[t*w : t*w+w]
				b1 := b[(t+1)*w : (t+1)*w+w]
				dot4x2fma(&a0[0], &a1[0], &a2[0], &a3[0], &b0[0], &b1[0], w, &acc)
				j0, j1 := relCol[t], relCol[t+1]
				c0[j0] -= acc[0]
				c0[j1] -= acc[1]
				c1[j0] -= acc[2]
				c1[j1] -= acc[3]
				c2[j0] -= acc[4]
				c2[j1] -= acc[5]
				c3[j0] -= acc[6]
				c3[j1] -= acc[7]
			}
		}
		for ; t+2 <= rb; t += 2 {
			b0 := b[t*w : t*w+w]
			b1 := b[(t+1)*w : (t+1)*w+w]
			// Micro-kernel written out in place, as in MulSubContig.
			var s00, s01, s10, s11, s20, s21, s30, s31 float64
			for k := 0; k < w; k++ {
				av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
				bv0, bv1 := b0[k], b1[k]
				s00 += av0 * bv0
				s01 += av0 * bv1
				s10 += av1 * bv0
				s11 += av1 * bv1
				s20 += av2 * bv0
				s21 += av2 * bv1
				s30 += av3 * bv0
				s31 += av3 * bv1
			}
			j0, j1 := relCol[t], relCol[t+1]
			c0[j0] -= s00
			c0[j1] -= s01
			c1[j0] -= s10
			c1[j1] -= s11
			c2[j0] -= s20
			c2[j1] -= s21
			c3[j0] -= s30
			c3[j1] -= s31
		}
		if t < rb {
			s0, s1, s2, s3 := dot4x1(a0, a1, a2, a3, b[t*w:t*w+w])
			j := relCol[t]
			c0[j] -= s0
			c1[j] -= s1
			c2[j] -= s2
			c3[j] -= s3
		}
	}
	for ; s < ra; s++ {
		as := a[s*w : s*w+w]
		cs := c[relRow[s]*ldc:]
		t := 0
		for ; t+4 <= rb; t += 4 {
			s0, s1, s2, s3 := dot1x4(as, b[t*w:t*w+w], b[(t+1)*w:(t+1)*w+w], b[(t+2)*w:(t+2)*w+w], b[(t+3)*w:(t+3)*w+w])
			cs[relCol[t]] -= s0
			cs[relCol[t+1]] -= s1
			cs[relCol[t+2]] -= s2
			cs[relCol[t+3]] -= s3
		}
		for ; t < rb; t++ {
			cs[relCol[t]] -= dot(as, b[t*w:t*w+w])
		}
	}
}

// MulSubLower performs the BMOD update onto a diagonal destination block:
// only product entries with rowsA[s] ≥ rowsB[t] (the lower triangle in
// global coordinates) are applied. Both row lists must be ascending — true
// of every block row list — which turns the triangular mask into a
// monotone per-row cutoff so the inner loop runs unmasked and 4-wide.
func MulSubLower(c []float64, ldc int, a []float64, ra int, b []float64, rb, w int,
	relRow, relCol []int, rowsA, rowsB []int) {
	cut := 0
	for s := 0; s < ra; s++ {
		for cut < rb && rowsB[cut] <= rowsA[s] {
			cut++
		}
		as := a[s*w : s*w+w]
		crow := c[relRow[s]*ldc:]
		t := 0
		for ; t+4 <= cut; t += 4 {
			s0, s1, s2, s3 := dot1x4(as, b[t*w:t*w+w], b[(t+1)*w:(t+1)*w+w], b[(t+2)*w:(t+2)*w+w], b[(t+3)*w:(t+3)*w+w])
			crow[relCol[t]] -= s0
			crow[relCol[t+1]] -= s1
			crow[relCol[t+2]] -= s2
			crow[relCol[t+3]] -= s3
		}
		for ; t < cut; t++ {
			crow[relCol[t]] -= dot(as, b[t*w:t*w+w])
		}
	}
}

// dot4x2 accumulates the eight inner products of four A rows against two
// B rows in registers over a single sweep of the shared panel dimension.
// 4×2 is the largest micro-tile whose accumulators and operands (8 + 6
// values) stay resident in the sixteen amd64 vector registers; a 4×4 tile
// spills and runs markedly slower. All slices must have length ≥ len(a0);
// they are re-sliced so the compiler can elide bounds checks in the hot
// loop.
func dot4x2(a0, a1, a2, a3, b0, b1 []float64) (s00, s01, s10, s11, s20, s21, s30, s31 float64) {
	n := len(a0)
	a1 = a1[:n]
	a2 = a2[:n]
	a3 = a3[:n]
	b0 = b0[:n]
	b1 = b1[:n]
	for k := 0; k < n; k++ {
		av0, av1, av2, av3 := a0[k], a1[k], a2[k], a3[k]
		bv0, bv1 := b0[k], b1[k]
		s00 += av0 * bv0
		s01 += av0 * bv1
		s10 += av1 * bv0
		s11 += av1 * bv1
		s20 += av2 * bv0
		s21 += av2 * bv1
		s30 += av3 * bv0
		s31 += av3 * bv1
	}
	return
}

// dot4x1 accumulates four A rows against one B row.
func dot4x1(a0, a1, a2, a3, bt []float64) (s0, s1, s2, s3 float64) {
	n := len(bt)
	a0 = a0[:n]
	a1 = a1[:n]
	a2 = a2[:n]
	a3 = a3[:n]
	for k := 0; k < n; k++ {
		bv := bt[k]
		s0 += a0[k] * bv
		s1 += a1[k] * bv
		s2 += a2[k] * bv
		s3 += a3[k] * bv
	}
	return
}

// dot1x4 accumulates one A row against four B rows.
func dot1x4(as, b0, b1, b2, b3 []float64) (s0, s1, s2, s3 float64) {
	n := len(as)
	b0 = b0[:n]
	b1 = b1[:n]
	b2 = b2[:n]
	b3 = b3[:n]
	for k := 0; k < n; k++ {
		av := as[k]
		s0 += av * b0[k]
		s1 += av * b1[k]
		s2 += av * b2[k]
		s3 += av * b3[k]
	}
	return
}

// dot is the scalar inner product over len(as) entries.
func dot(as, bt []float64) float64 {
	bt = bt[:len(as)]
	var sum float64
	for k, av := range as {
		sum += av * bt[k]
	}
	return sum
}

// ForwardSolveDiag solves L·y = b in place for the lower-triangular w×w
// diagonal block (b overwritten by y).
func ForwardSolveDiag(l []float64, w int, b []float64) {
	for j := 0; j < w; j++ {
		lj := l[j*w:]
		v := b[j]
		for t := 0; t < j; t++ {
			v -= lj[t] * b[t]
		}
		b[j] = v / lj[j]
	}
}

// BackSolveDiag solves Lᵀ·y = b in place for the lower-triangular w×w
// diagonal block.
func BackSolveDiag(l []float64, w int, b []float64) {
	for j := w - 1; j >= 0; j-- {
		v := b[j]
		for t := j + 1; t < w; t++ {
			v -= l[t*w+j] * b[t]
		}
		b[j] = v / l[j*w+j]
	}
}

// CholeskyNoChecks is the pivot-check-free twin of Cholesky, kept solely as
// the baseline BENCH_robustness.json measures the breakdown-detection
// overhead against. On indefinite input it silently emits NaN — exactly the
// failure mode the checked kernels exist to prevent — so nothing outside
// benchmark tooling may call it.
func CholeskyNoChecks(a []float64, w int) {
	if w <= choleskyNB {
		choleskyUncheckedLD(a, w, w)
		return
	}
	for k := 0; k < w; k += choleskyNB {
		nb := choleskyNB
		if w-k < nb {
			nb = w - k
		}
		diag := a[k*w+k:]
		choleskyUncheckedLD(diag, nb, w)
		rem := w - k - nb
		if rem == 0 {
			continue
		}
		panel := a[(k+nb)*w+k:]
		solveRightLD(panel, rem, w, diag, nb, w)
		syrkLowerLD(a[(k+nb)*w+(k+nb):], rem, w, panel, nb, w)
	}
}

// choleskyUncheckedLD is choleskyUnblockedLD without the pivot guard.
func choleskyUncheckedLD(a []float64, n, lda int) {
	for k := 0; k < n; k++ {
		d := a[k*lda+k]
		ak := a[k*lda : k*lda+k]
		for _, v := range ak {
			d -= v * v
		}
		d = math.Sqrt(d)
		a[k*lda+k] = d
		inv := 1 / d
		for i := k + 1; i < n; i++ {
			s := a[i*lda+k]
			ai := a[i*lda : i*lda+k]
			for t, v := range ai {
				s -= v * ak[t]
			}
			a[i*lda+k] = s * inv
		}
	}
}

// dot4x2fmaGeneric is the portable implementation of the dot4x2fma
// contract: out[2i+j] = Σₖ aᵢ[k]·bⱼ[k] over n shared elements. It backs
// dot4x2fma on platforms without the assembly micro-kernel and is exercised
// directly by tests on every platform, so the non-amd64 dispatch path can
// never reach an unimplemented kernel.
func dot4x2fmaGeneric(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64) {
	s0 := unsafeSlice(a0, n)
	s1 := unsafeSlice(a1, n)
	s2 := unsafeSlice(a2, n)
	s3 := unsafeSlice(a3, n)
	t0 := unsafeSlice(b0, n)
	t1 := unsafeSlice(b1, n)
	v00, v01, v10, v11, v20, v21, v30, v31 := dot4x2(s0, s1, s2, s3, t0, t1)
	out[0], out[1], out[2], out[3] = v00, v01, v10, v11
	out[4], out[5], out[6], out[7] = v20, v21, v30, v31
}

// HasFMA reports whether the AVX2+FMA micro-kernel is active.
func HasFMA() bool { return useFMA }

// SetFMA enables or disables the FMA micro-kernel and reports the previous
// setting. It exists for benchmark tooling that measures the portable path.
// Dispatch is gated on the single hasFMA capability check performed at
// init: requesting FMA on hardware (or a build) without support is a no-op
// rather than a crash, so the pure-Go path is always safe to select.
func SetFMA(on bool) bool {
	prev := useFMA
	useFMA = on && hasFMA
	return prev
}
