// Package kernels implements the three dense block primitives of the block
// fan-out method (§2.1) on the packed block formats used by the factor:
//
//	BFAC: Cholesky factorization of a dense diagonal block
//	BDIV: right triangular solve  L_IK ← L_IK · L_KK⁻ᵀ
//	BMOD: indexed outer-product update  L_IJ ← L_IJ − L_IK · L_JKᵀ
//
// The paper uses hand-optimized Level-3 BLAS for BDIV (triangular solve
// with multiple right-hand sides) and BMOD (matrix multiplication); these
// pure-Go kernels perform the identical arithmetic.
//
// Storage conventions: a diagonal block of panel width w is a full w×w
// row-major matrix of which only the lower triangle is meaningful; an
// off-diagonal block with r dense rows is an r×w row-major matrix whose
// row s corresponds to global row Rows[s].
package kernels

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when a pivot is not
// strictly positive.
var ErrNotPositiveDefinite = errors.New("kernels: matrix is not positive definite")

// Cholesky factors the lower triangle of the w×w row-major matrix a in
// place: on return the lower triangle holds L with a = L·Lᵀ. The strict
// upper triangle is ignored and left untouched.
func Cholesky(a []float64, w int) error {
	if len(a) < w*w {
		return fmt.Errorf("kernels: Cholesky buffer %d < %d", len(a), w*w)
	}
	for k := 0; k < w; k++ {
		d := a[k*w+k]
		for t := 0; t < k; t++ {
			v := a[k*w+t]
			d -= v * v
		}
		if d <= 0 {
			return ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		a[k*w+k] = d
		inv := 1 / d
		for i := k + 1; i < w; i++ {
			s := a[i*w+k]
			ai := a[i*w:]
			ak := a[k*w:]
			for t := 0; t < k; t++ {
				s -= ai[t] * ak[t]
			}
			a[i*w+k] = s * inv
		}
	}
	return nil
}

// SolveRight performs the BDIV operation: X ← X · L⁻ᵀ where X is r×w
// row-major and L is the w×w lower-triangular factor of the diagonal block.
// Each row x of X is replaced by the solution y of y·Lᵀ = x.
func SolveRight(x []float64, r int, l []float64, w int) {
	for s := 0; s < r; s++ {
		row := x[s*w : s*w+w]
		for j := 0; j < w; j++ {
			v := row[j]
			lj := l[j*w:]
			for t := 0; t < j; t++ {
				v -= row[t] * lj[t]
			}
			row[j] = v / lj[j]
		}
	}
}

// MulSub performs the BMOD update C ← C − A·Bᵀ with index indirection:
// A is ra×w, B is rb×w, C is the destination block with leading dimension
// ldc, and entry (s,t) of the product lands at C[relRow[s]*ldc + relCol[t]].
//
// When the destination is a diagonal block the caller must pass lower=true
// together with the global row/column indices so only the lower triangle is
// updated.
func MulSub(c []float64, ldc int, a []float64, ra int, b []float64, rb int, w int,
	relRow, relCol []int, lower bool, rowsA, rowsB []int) {
	for s := 0; s < ra; s++ {
		as := a[s*w : s*w+w]
		crow := c[relRow[s]*ldc:]
		for t := 0; t < rb; t++ {
			if lower && rowsA[s] < rowsB[t] {
				continue
			}
			bt := b[t*w : t*w+w]
			var sum float64
			for k := 0; k < w; k++ {
				sum += as[k] * bt[k]
			}
			crow[relCol[t]] -= sum
		}
	}
}

// ForwardSolveDiag solves L·y = b in place for the lower-triangular w×w
// diagonal block (b overwritten by y).
func ForwardSolveDiag(l []float64, w int, b []float64) {
	for j := 0; j < w; j++ {
		lj := l[j*w:]
		v := b[j]
		for t := 0; t < j; t++ {
			v -= lj[t] * b[t]
		}
		b[j] = v / lj[j]
	}
}

// BackSolveDiag solves Lᵀ·y = b in place for the lower-triangular w×w
// diagonal block.
func BackSolveDiag(l []float64, w int, b []float64) {
	for j := w - 1; j >= 0; j-- {
		v := b[j]
		for t := j + 1; t < w; t++ {
			v -= l[t*w+j] * b[t]
		}
		b[j] = v / l[j*w+j]
	}
}
