//go:build !amd64

package kernels

import "testing"

// On non-amd64 builds the dispatch gate is constant-false and dot4x2fma is
// the pure-Go fallback; calling it must never panic.
func TestNoAsmFallbackNeverPanics(t *testing.T) {
	if hasFMA {
		t.Fatal("hasFMA must be false on non-amd64 builds")
	}
	if SetFMA(true) {
		t.Fatal("SetFMA(true) must stay off without assembly support")
	}
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{1, 1, 2, 2}
	var out [8]float64
	dot4x2fma(&a[0], &a[2], &a[4], &a[6], &b[0], &b[2], 2, &out)
	if out[0] != 3 { // a0·b0 = 1+2
		t.Fatalf("out[0] = %g, want 3", out[0])
	}
}
