package kernels

import (
	"fmt"
	"testing"
)

// Kernel micro-benchmarks across the block sizes the partitioner actually
// produces: these are the operations the paper implements with
// hand-optimized Level-3 BLAS, so their throughput sets the library's
// single-node "machine rate". Each benchmark reports GFlop/s; the *Naive
// variants time the retained reference kernels so the tiling win is
// measured in-tree. Run with:
//
//	go test -bench 'Kernel|Fanout' -benchmem ./...
const benchRows = 64

var benchWidths = []int{8, 16, 24, 32, 48, 64}

func reportGFlops(b *testing.B, flopsPerOp int64) {
	sec := b.Elapsed().Seconds()
	if sec > 0 {
		b.ReportMetric(float64(flopsPerOp)*float64(b.N)/sec/1e9, "GFlop/s")
	}
}

func benchMulSub(b *testing.B, w int, fn func(c []float64, ldc int, a []float64, ra int, bb []float64, rb, w int, relRow, relCol []int)) {
	r := benchRows
	_, _, a, bm, c, relRow, relCol := benchBlocks(w, r)
	b.SetBytes(int64(2*r*w+r*r) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(c, r, a, r, bm, r, w, relRow, relCol)
	}
	reportGFlops(b, int64(2*r*r*w))
}

func BenchmarkKernelMulSub(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchMulSub(b, w, func(c []float64, ldc int, a []float64, ra int, bb []float64, rb, w int, relRow, relCol []int) {
				MulSub(c, ldc, a, ra, bb, rb, w, relRow, relCol, false, nil, nil)
			})
		})
	}
}

func BenchmarkKernelMulSubScattered(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchMulSub(b, w, MulSubScattered)
		})
	}
}

func BenchmarkKernelMulSubNaive(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchMulSub(b, w, func(c []float64, ldc int, a []float64, ra int, bb []float64, rb, w int, relRow, relCol []int) {
				MulSubNaive(c, ldc, a, ra, bb, rb, w, relRow, relCol, false, nil, nil)
			})
		})
	}
}

func benchCholesky(b *testing.B, w int, fn func([]float64, int) error) {
	src := spd(w, 2)
	dst := make([]float64, w*w)
	b.SetBytes(int64(w * w * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(dst, src)
		if err := fn(dst, w); err != nil {
			b.Fatal(err)
		}
	}
	reportGFlops(b, int64(w)*int64(w)*int64(w)/3)
}

func BenchmarkKernelCholesky(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchCholesky(b, w, Cholesky) })
	}
}

func BenchmarkKernelCholeskyNaive(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchCholesky(b, w, CholeskyNaive) })
	}
}

// BenchmarkKernelCholeskyNoChecks is the pivot-check-free baseline for the
// BFAC overhead number in BENCH_robustness.json: the delta against
// BenchmarkKernelCholesky is the full cost of breakdown detection.
func BenchmarkKernelCholeskyNoChecks(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchCholesky(b, w, func(a []float64, w int) error {
				CholeskyNoChecks(a, w)
				return nil
			})
		})
	}
}

func benchSolveRight(b *testing.B, w int, fn func(x []float64, r int, l []float64, w int) error) {
	r := benchRows
	l, x, _, _, _, _, _ := benchBlocks(w, r)
	work := make([]float64, len(x))
	b.SetBytes(int64(r * w * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, x)
		fn(work, r, l, w)
	}
	reportGFlops(b, int64(r)*int64(w)*int64(w))
}

func BenchmarkKernelSolveRight(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchSolveRight(b, w, SolveRight) })
	}
}

func BenchmarkKernelSolveRightNaive(b *testing.B) {
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchSolveRight(b, w, SolveRightNaive) })
	}
}

func benchBlocks(w, r int) (l, x, a, b, c []float64, relRow, relCol []int) {
	l = spd(w, 1)
	if err := Cholesky(l, w); err != nil {
		panic(err)
	}
	x = make([]float64, r*w)
	a = make([]float64, r*w)
	b = make([]float64, r*w)
	c = make([]float64, r*r)
	for i := range x {
		x[i] = float64(i%13) - 6
		a[i] = float64(i%7) - 3
		b[i] = float64(i%11) - 5
	}
	relRow = make([]int, r)
	relCol = make([]int, r)
	for i := 0; i < r; i++ {
		relRow[i] = i
		relCol[i] = i
	}
	return
}

// BenchmarkKernelMulSubPortable times the register-tiled Go code with the
// FMA micro-kernel disabled — the throughput non-amd64 builds get.
func BenchmarkKernelMulSubPortable(b *testing.B) {
	if !useFMA {
		b.Skip("portable path already measured by BenchmarkKernelMulSub")
	}
	useFMA = false
	defer func() { useFMA = true }()
	for _, w := range benchWidths {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			benchMulSub(b, w, func(c []float64, ldc int, a []float64, ra int, bb []float64, rb, w int, relRow, relCol []int) {
				MulSub(c, ldc, a, ra, bb, rb, w, relRow, relCol, false, nil, nil)
			})
		})
	}
}
