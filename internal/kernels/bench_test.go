package kernels

import "testing"

// Kernel micro-benchmarks at the paper's block size (B=48): these are the
// operations the paper implements with hand-optimized Level-3 BLAS, so
// their throughput sets the library's single-node "machine rate".

func benchBlocks(w, r int) (l, x, a, b, c []float64, relRow, relCol []int) {
	l = spd(w, 1)
	if err := Cholesky(l, w); err != nil {
		panic(err)
	}
	x = make([]float64, r*w)
	a = make([]float64, r*w)
	b = make([]float64, r*w)
	c = make([]float64, r*r)
	for i := range x {
		x[i] = float64(i%13) - 6
		a[i] = float64(i%7) - 3
		b[i] = float64(i%11) - 5
	}
	relRow = make([]int, r)
	relCol = make([]int, r)
	for i := 0; i < r; i++ {
		relRow[i] = i
		relCol[i] = i
	}
	return
}

func BenchmarkCholesky48(bb *testing.B) {
	w := 48
	src := spd(w, 2)
	dst := make([]float64, w*w)
	bb.SetBytes(int64(w * w * 8))
	for i := 0; i < bb.N; i++ {
		copy(dst, src)
		if err := Cholesky(dst, w); err != nil {
			bb.Fatal(err)
		}
	}
}

func BenchmarkSolveRight48x48(bb *testing.B) {
	w, r := 48, 48
	l, x, _, _, _, _, _ := benchBlocks(w, r)
	work := make([]float64, len(x))
	bb.SetBytes(int64(r * w * 8))
	for i := 0; i < bb.N; i++ {
		copy(work, x)
		SolveRight(work, r, l, w)
	}
}

func BenchmarkMulSub48(bb *testing.B) {
	w, r := 48, 48
	_, _, a, b, c, relRow, relCol := benchBlocks(w, r)
	flops := int64(2 * r * r * w)
	bb.SetBytes(flops) // report "bytes" as flops for ns/flop reading
	for i := 0; i < bb.N; i++ {
		MulSub(c, r, a, r, b, r, w, relRow, relCol, false, nil, nil)
	}
}

func BenchmarkMulSubSmall8(bb *testing.B) {
	w, r := 8, 8
	_, _, a, b, c, relRow, relCol := benchBlocks(w, r)
	for i := 0; i < bb.N; i++ {
		MulSub(c, r, a, r, b, r, w, relRow, relCol, false, nil, nil)
	}
}
