//go:build amd64

package kernels

// The 4-row panels of MulSubContig and MulSubScattered dispatch to a
// hand-written AVX2+FMA micro-kernel when the CPU and OS support it,
// mirroring the paper's use of hand-optimized Level-3 BLAS for the block
// operations. Detection follows the standard sequence: CPUID leaf 1 must
// advertise FMA, AVX and OSXSAVE, and XGETBV must confirm the OS saves the
// XMM/YMM state. Everything else (remainders, the lower-triangular masked
// kernel, non-amd64 builds) runs the portable register-tiled Go code.

// cpuidex executes CPUID with the given leaf/subleaf.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register 0.
func xgetbv0() (eax, edx uint32)

// dot4x2fma computes the eight inner products of four A rows against two
// B rows over n shared elements: out[2i+j] = Σₖ aᵢ[k]·bⱼ[k].
//
//go:noescape
func dot4x2fma(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64)

// hasFMA is the single hardware-capability gate, computed once at init;
// SetFMA can never turn the micro-kernel on without it.
var hasFMA = detectFMA()

// useFMA gates the assembly micro-kernel. It is a variable, not a constant,
// so tests can force the portable path on hardware that has FMA.
var useFMA = hasFMA

func detectFMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const need = 1<<12 | 1<<27 | 1<<28 // FMA, OSXSAVE, AVX
	if ecx&need != need {
		return false
	}
	eax, _ := xgetbv0()
	return eax&6 == 6 // OS maintains XMM and YMM state
}
