package kernels

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Property tests: every tiled kernel must match its retained naive
// reference to 1e-12 (relative) on randomized shapes, including odd
// remainders, the lower-triangular masked diagonal case, and
// non-contiguous relRow/relCol indirection.

const tiledTol = 1e-12

func closeEnough(got, want float64) bool {
	return math.Abs(got-want) <= tiledTol*(1+math.Abs(want))
}

// randRel draws n strictly-increasing indices in [0, limit); contig forces
// the consecutive run the fast path detects.
func randRel(rng *rand.Rand, n, limit int, contig bool) []int {
	if contig {
		start := rng.Intn(limit - n + 1)
		rel := make([]int, n)
		for i := range rel {
			rel[i] = start + i
		}
		return rel
	}
	perm := rng.Perm(limit)[:n]
	sort.Ints(perm)
	return perm
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestMulSubMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	widths := []int{1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 23, 24, 31, 32, 33, 48, 63, 64}
	for trial := 0; trial < 400; trial++ {
		w := widths[rng.Intn(len(widths))]
		ra := 1 + rng.Intn(20)
		rb := 1 + rng.Intn(20)
		nrows := ra + rng.Intn(8)
		ldc := rb + rng.Intn(8)
		contigR := rng.Intn(2) == 0
		contigC := rng.Intn(2) == 0
		relRow := randRel(rng, ra, nrows, contigR)
		relCol := randRel(rng, rb, ldc, contigC)
		a := randSlice(rng, ra*w)
		b := randSlice(rng, rb*w)
		c := randSlice(rng, nrows*ldc)
		cNaive := append([]float64(nil), c...)
		MulSub(c, ldc, a, ra, b, rb, w, relRow, relCol, false, nil, nil)
		MulSubNaive(cNaive, ldc, a, ra, b, rb, w, relRow, relCol, false, nil, nil)
		for i := range c {
			if !closeEnough(c[i], cNaive[i]) {
				t.Fatalf("trial %d (w=%d ra=%d rb=%d contig=%v/%v): C[%d]=%g, naive %g",
					trial, w, ra, rb, contigR, contigC, i, c[i], cNaive[i])
			}
		}
	}
}

func TestMulSubLowerMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		w := 1 + rng.Intn(40)
		ra := 1 + rng.Intn(16)
		rb := 1 + rng.Intn(16)
		// Ascending global row lists drawn from a shared range so the
		// lower mask actually cuts (including ties, which must update).
		rowsA := randRel(rng, ra, ra+rb+6, false)
		rowsB := randRel(rng, rb, ra+rb+6, false)
		nrows := ra + rng.Intn(4)
		ldc := rb + rng.Intn(4)
		relRow := randRel(rng, ra, nrows, rng.Intn(2) == 0)
		relCol := randRel(rng, rb, ldc, rng.Intn(2) == 0)
		a := randSlice(rng, ra*w)
		b := randSlice(rng, rb*w)
		c := randSlice(rng, nrows*ldc)
		cNaive := append([]float64(nil), c...)
		MulSub(c, ldc, a, ra, b, rb, w, relRow, relCol, true, rowsA, rowsB)
		MulSubNaive(cNaive, ldc, a, ra, b, rb, w, relRow, relCol, true, rowsA, rowsB)
		for i := range c {
			if !closeEnough(c[i], cNaive[i]) {
				t.Fatalf("trial %d (w=%d ra=%d rb=%d): C[%d]=%g, naive %g",
					trial, w, ra, rb, i, c[i], cNaive[i])
			}
		}
	}
}

func TestCholeskyMatchesNaive(t *testing.T) {
	// Straddles the blocking threshold: unblocked path, exact multiples of
	// the panel width, and ragged final panels.
	for _, w := range []int{1, 2, 3, 5, 31, 32, 33, 47, 48, 63, 64, 65, 96, 100} {
		t.Run(fmt.Sprintf("w=%d", w), func(t *testing.T) {
			src := spd(w, w+3)
			tiled := append([]float64(nil), src...)
			naive := append([]float64(nil), src...)
			if err := Cholesky(tiled, w); err != nil {
				t.Fatal(err)
			}
			if err := CholeskyNaive(naive, w); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < w; i++ {
				for j := 0; j < w; j++ {
					got, want := tiled[i*w+j], naive[i*w+j]
					if j > i {
						want = src[i*w+j] // strict upper untouched
					}
					if !closeEnough(got, want) {
						t.Fatalf("L(%d,%d)=%g, naive %g", i, j, got, want)
					}
				}
			}
		})
	}
}

func TestCholeskyBlockedIndefinite(t *testing.T) {
	// A pivot failure inside a later panel must surface through the
	// blocked path too.
	w := choleskyNB + 8
	a := spd(w, 1)
	a[(w-1)*w+(w-1)] = -1
	err := Cholesky(a, w)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("got %v, want ErrNotPositiveDefinite", err)
	}
	var pe *PivotError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PivotError", err)
	}
	if pe.Row != w-1 || !(pe.Pivot < 0) {
		t.Fatalf("PivotError = %+v, want Row %d with negative pivot", pe, w-1)
	}
}

func TestSolveRightMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, w := range []int{1, 2, 3, 5, 8, 16, 17, 32, 48, 64} {
		for _, r := range []int{1, 2, 3, 4, 5, 7, 8, 13, 21} {
			l := spd(w, w+r)
			if err := Cholesky(l, w); err != nil {
				t.Fatal(err)
			}
			x := randSlice(rng, r*w)
			xNaive := append([]float64(nil), x...)
			if err := SolveRight(x, r, l, w); err != nil {
				t.Fatal(err)
			}
			if err := SolveRightNaive(xNaive, r, l, w); err != nil {
				t.Fatal(err)
			}
			for i := range x {
				if !closeEnough(x[i], xNaive[i]) {
					t.Fatalf("w=%d r=%d: X[%d]=%g, naive %g", w, r, i, x[i], xNaive[i])
				}
			}
		}
	}
}

// The dispatcher must agree with the explicitly-routed kernels, so callers
// that classify the destination themselves (package numeric) get the same
// arithmetic as callers going through MulSub.
func TestMulSubDispatchRoutes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	w, ra, rb, ldc := 16, 9, 7, 12
	a := randSlice(rng, ra*w)
	b := randSlice(rng, rb*w)

	contigRow := randRel(rng, ra, ra, true)
	contigCol := randRel(rng, rb, ldc, true)
	c1 := randSlice(rng, ra*ldc)
	c2 := append([]float64(nil), c1...)
	MulSub(c1, ldc, a, ra, b, rb, w, contigRow, contigCol, false, nil, nil)
	MulSubContig(c2[contigRow[0]*ldc+contigCol[0]:], ldc, a, ra, b, rb, w)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("contig route diverges at %d: %g vs %g", i, c1[i], c2[i])
		}
	}

	scatRow := []int{0, 2, 3, 5, 6, 8, 9, 10, 11}
	scatCol := []int{0, 1, 3, 4, 7, 8, 11}
	c1 = randSlice(rng, 12*ldc)
	c2 = append([]float64(nil), c1...)
	MulSub(c1, ldc, a, ra, b, rb, w, scatRow, scatCol, false, nil, nil)
	MulSubScattered(c2, ldc, a, ra, b, rb, w, scatRow, scatCol)
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("scattered route diverges at %d: %g vs %g", i, c1[i], c2[i])
		}
	}
}

// The portable register-tiled path must stay correct even on hardware where
// the FMA micro-kernel is selected: every build without AVX2+FMA (and every
// non-amd64 build) runs it.
func TestMulSubPortablePathMatchesNaive(t *testing.T) {
	if !useFMA {
		t.Log("FMA micro-kernel unavailable; main tests already cover the portable path")
		return
	}
	useFMA = false
	defer func() { useFMA = true }()
	TestMulSubMatchesNaiveRandom(t)
	TestMulSubDispatchRoutes(t)
}
