package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

// spd fills a w×w row-major matrix with a deterministic SPD matrix
// (diagonally dominant).
func spd(w int, seed int) []float64 {
	a := make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j <= i; j++ {
			if i == j {
				a[i*w+j] = float64(w) + 2
			} else {
				v := -0.3 - 0.5*float64((i*7+j*13+seed)%10)/10
				a[i*w+j] = v
				a[j*w+i] = v
			}
		}
	}
	return a
}

func matMulLLT(l []float64, w int) []float64 {
	out := make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += l[i*w+k] * l[j*w+k]
			}
			out[i*w+j] = s
		}
	}
	return out
}

func TestCholeskyReconstructs(t *testing.T) {
	for _, w := range []int{1, 2, 3, 5, 8, 17, 48} {
		a := spd(w, w)
		l := append([]float64(nil), a...)
		if err := Cholesky(l, w); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		llt := matMulLLT(l, w)
		for i := 0; i < w; i++ {
			for j := 0; j <= i; j++ {
				if math.Abs(llt[i*w+j]-a[i*w+j]) > 1e-10*float64(w) {
					t.Fatalf("w=%d: LLᵀ(%d,%d)=%g, want %g", w, i, j, llt[i*w+j], a[i*w+j])
				}
			}
		}
	}
}

func TestCholeskyPreservesUpper(t *testing.T) {
	w := 6
	a := spd(w, 1)
	a[0*w+5] = 123.456 // poison the strict upper triangle
	l := append([]float64(nil), a...)
	if err := Cholesky(l, w); err != nil {
		t.Fatal(err)
	}
	if l[0*w+5] != 123.456 {
		t.Fatal("upper triangle was modified")
	}
}

func TestCholeskyIndefinite(t *testing.T) {
	w := 3
	a := []float64{
		1, 0, 0,
		2, 1, 0, // (1,1) becomes 1-4 < 0 after elimination
		0, 0, 1,
	}
	if err := Cholesky(a, w); err == nil {
		t.Fatal("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyShortBuffer(t *testing.T) {
	if err := Cholesky(make([]float64, 3), 2); err == nil {
		t.Fatal("expected buffer error")
	}
}

func TestSolveRight(t *testing.T) {
	w, r := 5, 4
	a := spd(w, 3)
	l := append([]float64(nil), a...)
	if err := Cholesky(l, w); err != nil {
		t.Fatal(err)
	}
	// Build X, compute B = X·Lᵀ, then SolveRight(B) must return X.
	x := make([]float64, r*w)
	for i := range x {
		x[i] = float64((i*5)%7) - 3
	}
	b := make([]float64, r*w)
	for s := 0; s < r; s++ {
		for j := 0; j < w; j++ {
			var sum float64
			for k := 0; k <= j; k++ {
				sum += x[s*w+k] * l[j*w+k] // (Lᵀ)(k,j) = L(j,k)
			}
			b[s*w+j] = sum
		}
	}
	if err := SolveRight(b, r, l, w); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-10 {
			t.Fatalf("X[%d]=%g, want %g", i, b[i], x[i])
		}
	}
}

func TestMulSub(t *testing.T) {
	// C (4×3, ldc=3) -= A(2×2)·B(3×2)ᵀ with scattering.
	w := 2
	a := []float64{1, 2, 3, 4}       // rows → dest rows 1,3
	b := []float64{1, 0, 0, 1, 1, 1} // rows → dest cols 0,1,2
	c := make([]float64, 12)         // zero
	relRow := []int{1, 3}
	relCol := []int{0, 1, 2}
	MulSub(c, 3, a, 2, b, 3, w, relRow, relCol, false, nil, nil)
	// Row 1 of C gets -[1·(1,0)ᵀ... A row0=(1,2): dot with B rows: (1,0)→1, (0,1)→2, (1,1)→3.
	want := []float64{
		0, 0, 0,
		-1, -2, -3,
		0, 0, 0,
		-3, -4, -7, // A row1=(3,4): dots 3, 4, 7
	}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("C[%d]=%g, want %g", i, c[i], want[i])
		}
	}
}

func TestMulSubLowerOnly(t *testing.T) {
	// Diagonal destination: entries with global row < global col skipped.
	w := 1
	a := []float64{2, 3} // global rows 10, 20
	b := []float64{2, 3} // global rows 10, 20 (same block)
	c := make([]float64, 4)
	relRow := []int{0, 1}
	relCol := []int{0, 1}
	rows := []int{10, 20}
	MulSub(c, 2, a, 2, b, 2, w, relRow, relCol, true, rows, rows)
	want := []float64{-4, 0, -6, -9} // (0,1) skipped: row 10 < col 20
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("C[%d]=%g, want %g", i, c[i], want[i])
		}
	}
}

func TestForwardBackSolveDiag(t *testing.T) {
	w := 6
	a := spd(w, 9)
	l := append([]float64(nil), a...)
	if err := Cholesky(l, w); err != nil {
		t.Fatal(err)
	}
	x := []float64{1, -2, 3, -4, 5, -6}
	// b = L·(Lᵀ·x)
	lt := make([]float64, w)
	for j := 0; j < w; j++ {
		var s float64
		for i := j; i < w; i++ {
			s += l[i*w+j] * x[i]
		}
		lt[j] = s
	}
	b := make([]float64, w)
	for i := 0; i < w; i++ {
		var s float64
		for j := 0; j <= i; j++ {
			s += l[i*w+j] * lt[j]
		}
		b[i] = s
	}
	ForwardSolveDiag(l, w, b)
	BackSolveDiag(l, w, b)
	for i := range x {
		if math.Abs(b[i]-x[i]) > 1e-9 {
			t.Fatalf("x[%d]=%g, want %g", i, b[i], x[i])
		}
	}
}

// Property: Cholesky → SolveRight of the identity rows reproduces L⁻ᵀ rows,
// i.e. X·Lᵀ = I up to round-off.
func TestQuickSolveRightInverse(t *testing.T) {
	f := func(seed uint8) bool {
		w := 2 + int(seed%6)
		l := spd(w, int(seed))
		if err := Cholesky(l, w); err != nil {
			return false
		}
		x := make([]float64, w*w)
		for i := 0; i < w; i++ {
			x[i*w+i] = 1
		}
		if err := SolveRight(x, w, l, w); err != nil {
			return false
		}
		for i := 0; i < w; i++ {
			for j := 0; j < w; j++ {
				var s float64
				for k := 0; k <= j; k++ { // L is lower triangular
					s += x[i*w+k] * l[j*w+k]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
