//go:build !amd64

package kernels

// Non-amd64 builds have no assembly micro-kernel: the single capability
// gate hasFMA is constant-false, so dispatch can never select the FMA path
// (SetFMA(true) is a no-op). dot4x2fma nevertheless has a real pure-Go
// implementation — not a panic — so even a hypothetical dispatch bug
// degrades to correct, slower code instead of crashing the process.
const hasFMA = false

var useFMA = false

func dot4x2fma(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64) {
	dot4x2fmaGeneric(a0, a1, a2, a3, b0, b1, n, out)
}
