//go:build !amd64

package kernels

// Non-amd64 builds always run the portable register-tiled kernels.
var useFMA = false

func dot4x2fma(a0, a1, a2, a3, b0, b1 *float64, n int, out *[8]float64) {
	panic("kernels: dot4x2fma called without hardware support")
}
