package kernels

import (
	"errors"
	"math"
	"testing"
)

// Breakdown reporting: every bad-pivot shape (negative, zero, NaN, +Inf)
// must surface as a *PivotError naming the offending row, never as a NaN
// factor, on both the naive and blocked paths.

func TestPivotErrorShapes(t *testing.T) {
	cases := []struct {
		name  string
		poison float64
	}{
		{"negative", -4},
		{"zero", 0},
		{"nan", math.NaN()},
		{"posinf", math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := 5
			row := 3
			a := spd(w, 2)
			a[row*w+row] = tc.poison
			for _, fac := range []struct {
				name string
				f    func([]float64, int) error
			}{{"naive", CholeskyNaive}, {"blocked", Cholesky}} {
				b := append([]float64(nil), a...)
				err := fac.f(b, w)
				if err == nil {
					t.Fatalf("%s: factored a poisoned matrix", fac.name)
				}
				if !errors.Is(err, ErrNotPositiveDefinite) {
					t.Fatalf("%s: %v does not match ErrNotPositiveDefinite", fac.name, err)
				}
				var pe *PivotError
				if !errors.As(err, &pe) {
					t.Fatalf("%s: %v is not a *PivotError", fac.name, err)
				}
				// A poisoned diagonal at `row` may break at that row; NaN
				// could be detected there and never earlier.
				if pe.Row > row {
					t.Fatalf("%s: broke at row %d, poison at row %d", fac.name, pe.Row, row)
				}
			}
		})
	}
}

func TestSolveRightBrokenDiagonal(t *testing.T) {
	w, r := 4, 3
	l := spd(w, 1)
	if err := Cholesky(l, w); err != nil {
		t.Fatal(err)
	}
	l[2*w+2] = math.NaN()
	x := make([]float64, r*w)
	for i := range x {
		x[i] = 1
	}
	for _, sv := range []struct {
		name string
		f    func([]float64, int, []float64, int) error
	}{{"tiled", SolveRight}, {"naive", SolveRightNaive}} {
		xs := append([]float64(nil), x...)
		err := sv.f(xs, r, l, w)
		var pe *PivotError
		if !errors.As(err, &pe) {
			t.Fatalf("%s: got %v, want *PivotError", sv.name, err)
		}
		if pe.Row != 2 {
			t.Fatalf("%s: Row = %d, want 2", sv.name, pe.Row)
		}
		// The operand must be untouched: the pre-pass rejects before writing.
		for i := range xs {
			if xs[i] != 1 {
				t.Fatalf("%s: x[%d] modified to %g before error", sv.name, i, xs[i])
			}
		}
	}
}

func TestFactorNeverEmitsNaN(t *testing.T) {
	// Even when the error is returned, the portion of the matrix already
	// factored must be finite — breakdown is detected before the sqrt.
	w := 8
	a := spd(w, 7)
	a[5*w+5] = -1
	err := Cholesky(a, w)
	if err == nil {
		t.Fatal("expected breakdown")
	}
	var pe *PivotError
	if !errors.As(err, &pe) {
		t.Fatal("expected *PivotError")
	}
	for i := 0; i < pe.Row; i++ {
		for j := 0; j <= i; j++ {
			if v := a[i*w+j]; math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("L(%d,%d)=%g not finite before breakdown row %d", i, j, v, pe.Row)
			}
		}
	}
}

func TestCholeskyNoChecksMatches(t *testing.T) {
	for _, w := range []int{1, 3, 8, 17, 48} {
		a := spd(w, w)
		b := append([]float64(nil), a...)
		if err := Cholesky(a, w); err != nil {
			t.Fatal(err)
		}
		CholeskyNoChecks(b, w)
		for i := 0; i < w; i++ {
			for j := 0; j <= i; j++ {
				if got, want := b[i*w+j], a[i*w+j]; !closeEnough(got, want) {
					t.Fatalf("w=%d: unchecked L(%d,%d)=%g, checked %g", w, i, j, got, want)
				}
			}
		}
	}
}

// FMA dispatch hardening: the portable fallback must agree with the
// register-tiled reference, and SetFMA can never switch the micro-kernel on
// without hardware support.

func TestDot4x2FMAGenericMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 15, 64} {
		a := make([]float64, 4*n)
		b := make([]float64, 2*n)
		for i := range a {
			a[i] = float64(i%11) - 5
		}
		for i := range b {
			b[i] = float64(i%7) - 3
		}
		var want [8]float64
		for i := 0; i < 4; i++ {
			for j := 0; j < 2; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += a[i*n+k] * b[j*n+k]
				}
				want[2*i+j] = s
			}
		}
		var got [8]float64
		dot4x2fmaGeneric(&a[0], &a[n], &a[2*n], &a[3*n], &b[0], &b[n], n, &got)
		for i := range got {
			if !closeEnough(got[i], want[i]) {
				t.Fatalf("n=%d out[%d]=%g, want %g", n, i, got[i], want[i])
			}
		}
		// The dispatcher-level symbol must match too, on every platform.
		var via [8]float64
		dot4x2fma(&a[0], &a[n], &a[2*n], &a[3*n], &b[0], &b[n], n, &via)
		for i := range via {
			if math.Abs(via[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("dot4x2fma n=%d out[%d]=%g, want %g", n, i, via[i], want[i])
			}
		}
	}
}

func TestSetFMAGatedOnHardware(t *testing.T) {
	prev := useFMA
	defer SetFMA(prev)
	SetFMA(true)
	if useFMA && !hasFMA {
		t.Fatal("SetFMA(true) enabled the micro-kernel without hardware support")
	}
	SetFMA(false)
	if useFMA {
		t.Fatal("SetFMA(false) left the micro-kernel enabled")
	}
}
