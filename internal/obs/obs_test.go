package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"blockfanout/internal/machine"
)

// decodeTrace parses a trace-event document and applies the schema checks
// the acceptance criteria require: the file parses, and every event has a
// phase, a timestamp, and pid/tid fields.
func decodeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file does not parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		if ph := ev["ph"].(string); ph != "X" && ph != "M" {
			t.Fatalf("event %d has unexpected phase %q", i, ph)
		}
	}
	return doc.TraceEvents
}

func TestWriteMachineTrace(t *testing.T) {
	res := &machine.Result{
		Time:     1.0,
		CompTime: []float64{0.5, 0.8},
		CommTime: []float64{0.1, 0},
		Spans: []machine.Span{
			{Proc: 0, Start: 0, End: 0.5, Block: 3},
			{Proc: 0, Start: 0.5, End: 0.6, Comm: true, Block: 3},
			{Proc: 1, Start: 0.2, End: 1.0, Block: 7},
		},
	}
	var buf bytes.Buffer
	if err := WriteMachineTrace(&buf, res, "test run"); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	var xs, ms int
	for _, ev := range events {
		switch ev["ph"] {
		case "X":
			xs++
			if ev["args"].(map[string]any)["block"] == nil {
				t.Fatalf("duration event lost its block arg: %v", ev)
			}
		case "M":
			ms++
		}
	}
	if xs != 3 {
		t.Fatalf("want 3 duration events, got %d", xs)
	}
	if ms != 3 { // process_name + 2 thread_names
		t.Fatalf("want 3 metadata events, got %d", ms)
	}

	var empty bytes.Buffer
	if err := WriteMachineTrace(&empty, &machine.Result{CompTime: []float64{0}}, ""); err == nil {
		t.Fatal("expected error for a span-less result")
	}
}

func TestRecorderSpansAndEvents(t *testing.T) {
	r := NewRecorder(2, 4)
	if r.Enabled() {
		t.Fatal("recorder must start disabled")
	}
	if t0 := r.Start(); t0 != 0 {
		t.Fatalf("disabled Start = %d, want 0", t0)
	}
	r.Record(0, OpBFAC, 1, -1, 0) // disabled sentinel: must be dropped
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("disabled recorder buffered %d spans", got)
	}

	r.Enable()
	t0 := r.Start()
	if t0 == 0 {
		t.Fatal("enabled Start returned the disabled sentinel")
	}
	time.Sleep(time.Millisecond)
	r.Record(0, OpBFAC, 5, -1, t0)
	t1 := r.Start()
	r.Record(1, OpBMOD, 9, 4, t1)
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(spans))
	}
	if spans[0].Op != OpBFAC || spans[0].Block != 5 || spans[0].Proc != 0 {
		t.Fatalf("bad span %+v", spans[0])
	}
	if spans[0].End-spans[0].Start < int64(500*time.Microsecond) {
		t.Fatalf("span did not cover the sleep: %+v", spans[0])
	}

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf, ""); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, buf.Bytes())
	names := map[string]bool{}
	for _, ev := range events {
		names[ev["name"].(string)] = true
		if ev["ph"] == "X" && ev["name"] == "BMOD" {
			args := ev["args"].(map[string]any)
			if args["block"].(float64) != 9 || args["src"].(float64) != 4 {
				t.Fatalf("BMOD args wrong: %v", args)
			}
		}
	}
	if !names["BFAC"] || !names["BMOD"] {
		t.Fatalf("missing op events: %v", names)
	}

	r.Reset()
	if len(r.Spans()) != 0 {
		t.Fatal("Reset kept spans")
	}
}

func TestNilRecorderIsDisabled(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	if r.Start() != 0 {
		t.Fatal("nil recorder Start must return the disabled sentinel")
	}
	if r.Spans() != nil {
		t.Fatal("nil recorder has spans")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(2 * time.Second)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count %d", s.Count)
	}
	p50, p95, p99, p100 := s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99), s.Quantile(1)
	if !(p50 <= p95 && p95 <= p99 && p99 <= p100) {
		t.Fatalf("quantiles not monotone: %g %g %g %g", p50, p95, p99, p100)
	}
	// p50 must land in the 100µs bucket [64,128), p95 in 10ms's [8192,16384).
	if p50 < 64 || p50 >= 128 {
		t.Fatalf("p50 = %gµs, want within [64,128)", p50)
	}
	if p95 < 8192 || p95 >= 16384 {
		t.Fatalf("p95 = %gµs, want within [8192,16384)", p95)
	}
	if p100 != float64(s.Maxµ) {
		t.Fatalf("p100 = %g, want max %d", p100, s.Maxµ)
	}
	if m := s.Mean(); m <= 0 || m > float64(s.Maxµ) {
		t.Fatalf("mean %g out of (0, max]", m)
	}
	if got := s.Quantile(math.NaN()); got != 0 {
		t.Fatalf("NaN quantile = %g", got)
	}

	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty snapshot must report zeros")
	}
}

// TestHistogramSnapshotCoherent is the race-enabled regression test for the
// mean > max /metrics bug: under concurrent observers, every snapshot's
// derived statistics must stay internally consistent (mean ≤ max, monotone
// quantiles, quantiles ≤ max).
func TestHistogramSnapshotCoherent(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(1+w*997) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
					d += 13 * time.Microsecond
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		if m := s.Mean(); m > float64(s.Maxµ) {
			t.Fatalf("iteration %d: mean %g > max %d", i, m, s.Maxµ)
		}
		p50, p99 := s.Quantile(0.5), s.Quantile(0.99)
		if p50 > p99 || p99 > float64(s.Maxµ) {
			t.Fatalf("iteration %d: incoherent quantiles p50=%g p99=%g max=%d", i, p50, p99, s.Maxµ)
		}
	}
	close(stop)
	wg.Wait()
}
