// Package obs is the unified observability layer: one instrumentation
// vocabulary shared by the discrete-event multicomputer simulator
// (machine.Result timelines), the real parallel executor (a low-overhead
// span recorder inside fanout.Executor), and the serving path (lock-free
// latency histograms behind /metrics).
//
// Timelines from both worlds export to the Chrome trace-event JSON format
// (the "Trace Event Format" consumed by about:tracing and Perfetto), so a
// simulated Paragon run and a real goroutine-processor run are inspected
// with the same tooling: one process per run, one thread per (virtual)
// processor, one complete ("X") event per block operation or message
// overhead interval, block ids carried in args.
package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"blockfanout/internal/machine"
)

// Event is one record of the Chrome trace-event format. Only the fields
// the viewers require are modeled: every duration event carries ph, ts,
// pid and tid; metadata events (ph "M") name processes and threads.
type Event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int64          `json:"pid"`
	Tid  int64          `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON-object flavor of the format ({"traceEvents": [...]}),
// which viewers prefer over the bare-array flavor because it tolerates
// trailing metadata.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// WriteEvents writes events as a complete trace-event JSON document.
func WriteEvents(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// meta builds a ph "M" metadata event (process_name / thread_name).
func meta(name string, pid, tid int64, value string) Event {
	return Event{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// MachineEvents converts a simulated timeline (machine.Result.Spans,
// collected under Config.CollectTrace) into trace events: one thread per
// simulated processor, compute spans in the "compute" category, message
// overhead spans in "comm", block ids in args when the simulator recorded
// them. Simulated seconds become trace microseconds.
func MachineEvents(res *machine.Result, processName string) []Event {
	if processName == "" {
		processName = "machine simulation"
	}
	np := len(res.CompTime)
	events := make([]Event, 0, len(res.Spans)+np+1)
	events = append(events, meta("process_name", 0, 0, processName))
	for p := 0; p < np; p++ {
		events = append(events, meta("thread_name", 0, int64(p), fmt.Sprintf("P%d", p)))
	}
	for _, s := range res.Spans {
		name, cat := "compute", "compute"
		if s.Comm {
			name, cat = "message", "comm"
		}
		ev := Event{
			Name: name,
			Ph:   "X",
			Cat:  cat,
			Ts:   s.Start * 1e6,
			Dur:  (s.End - s.Start) * 1e6,
			Pid:  0,
			Tid:  int64(s.Proc),
		}
		if s.Block >= 0 {
			ev.Args = map[string]any{"block": s.Block}
		}
		events = append(events, ev)
	}
	return events
}

// WriteMachineTrace renders a simulated run as a complete trace-event JSON
// document, loadable in about:tracing or Perfetto.
func WriteMachineTrace(w io.Writer, res *machine.Result, processName string) error {
	if len(res.Spans) == 0 {
		return fmt.Errorf("obs: no spans recorded (set machine.Config.CollectTrace)")
	}
	return WriteEvents(w, MachineEvents(res, processName))
}
