package obs

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// Op labels the block operation a recorded span covers, matching the
// paper's BFAC/BDIV/BMOD vocabulary.
type Op uint8

const (
	OpBFAC Op = iota // factor a diagonal block
	OpBDIV           // divide an off-diagonal block by its diagonal
	OpBMOD           // modify a destination block by a source pair
	// OpSteal marks a successful steal by the work-stealing executor:
	// Block is the stolen task's destination block, Src the victim worker.
	OpSteal
	// OpIdle covers an interval a work-stealing worker spent parked with
	// no runnable task (Block and Src are -1).
	OpIdle
)

func (o Op) String() string {
	switch o {
	case OpBFAC:
		return "BFAC"
	case OpBDIV:
		return "BDIV"
	case OpBMOD:
		return "BMOD"
	case OpSteal:
		return "STEAL"
	case OpIdle:
		return "IDLE"
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Span is one recorded interval of a real (goroutine) processor: the block
// operation performed, the destination block, the off-diagonal source block
// for BMODs (-1 otherwise), and start/end nanoseconds since the recorder's
// base time.
type Span struct {
	Proc     int32
	Op       Op
	Block    int32
	Src      int32
	Start    int64 // ns since recorder base
	End      int64
}

// lane is one processor's private span buffer. Lanes are fixed-capacity:
// a span arriving when the buffer is full is counted in dropped instead of
// growing the buffer, so the recording hot path never allocates (an
// allocation mid-measurement would perturb the very spans being measured).
// The padding keeps adjacent lanes out of one cache line so concurrent
// appends do not false-share.
type lane struct {
	spans   []Span
	dropped atomic.Int64
	_       [32]byte
}

// Recorder collects per-block-operation spans from a parallel
// factorization with overhead low enough to leave compiled in: the
// disabled fast path is a nil check plus one atomic load and performs no
// allocation, no time syscall, and no write. Each (virtual) processor
// appends to its own lane, so enabled recording is contention-free too.
//
// A nil *Recorder is valid and permanently disabled, so call sites need no
// guards of their own.
type Recorder struct {
	enabled atomic.Bool
	base    time.Time
	lanes   []lane
}

// NewRecorder sizes a recorder for nprocs processors, reserving capHint
// spans per lane (0 picks a small default). The recorder starts disabled.
func NewRecorder(nprocs, capHint int) *Recorder {
	if capHint <= 0 {
		capHint = 256
	}
	r := &Recorder{base: time.Now(), lanes: make([]lane, nprocs)}
	for i := range r.lanes {
		r.lanes[i].spans = make([]Span, 0, capHint)
	}
	return r
}

// Procs returns the number of per-processor lanes the recorder was sized
// for.
func (r *Recorder) Procs() int { return len(r.lanes) }

// Enable turns recording on. Spans whose Start precedes the Enable are
// still recorded whole; flipping mid-run only ever loses, never corrupts,
// spans.
func (r *Recorder) Enable() { r.enabled.Store(true) }

// Disable turns recording off; buffered spans are kept.
func (r *Recorder) Disable() { r.enabled.Store(false) }

// Enabled reports whether spans are being recorded.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled.Load() }

// Start opens a span: it returns a non-zero timestamp when recording is
// enabled and 0 when disabled (or r is nil). The zero sentinel lets Record
// skip disabled spans without re-checking the flag. Start and Record are
// split into inline-able gates over out-of-line slow paths so the
// disabled path compiles down to a nil check plus one atomic load —
// no call, no time syscall, no write.
func (r *Recorder) Start() int64 {
	if r == nil || !r.enabled.Load() {
		return 0
	}
	return r.startSlow()
}

//go:noinline
func (r *Recorder) startSlow() int64 {
	// +1 keeps a span starting exactly at the base time distinguishable
	// from the disabled sentinel.
	return int64(time.Since(r.base)) + 1
}

// Record closes the span opened by Start. It is a no-op when start is 0
// (the disabled sentinel), so callers can pair every operation with an
// unconditional Start/Record without branching on the flag themselves.
func (r *Recorder) Record(proc int32, op Op, block, src int32, start int64) {
	if start == 0 {
		return
	}
	r.recordSlow(proc, op, block, src, start)
}

//go:noinline
func (r *Recorder) recordSlow(proc int32, op Op, block, src int32, start int64) {
	end := int64(time.Since(r.base)) + 1
	ln := &r.lanes[proc]
	if len(ln.spans) == cap(ln.spans) {
		// Full lane: count the loss instead of growing. Silently dropping
		// here used to bias any span-derived cost profile toward the blocks
		// that happened to run early; the counter lets consumers (tune,
		// /metrics) detect — and refuse — a truncated recording.
		ln.dropped.Add(1)
		return
	}
	ln.spans = append(ln.spans, Span{Proc: proc, Op: op, Block: block, Src: src, Start: start - 1, End: end - 1})
}

// Dropped reports how many spans were discarded across all lanes because
// their lane was full. A complete recording has Dropped() == 0; anything
// else means the span set under-represents late operations and must not be
// used as a cost signal.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for i := range r.lanes {
		n += r.lanes[i].dropped.Load()
	}
	return n
}

// Reset clears all buffered spans and drop counters (capacity is kept) and
// rebases the clock. Not safe concurrently with recording.
func (r *Recorder) Reset() {
	for i := range r.lanes {
		r.lanes[i].spans = r.lanes[i].spans[:0]
		r.lanes[i].dropped.Store(0)
	}
	r.base = time.Now()
}

// Spans returns all recorded spans, processor-major. The result aliases
// the recorder's buffers; callers must not retain it across a Reset.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	total := 0
	for i := range r.lanes {
		total += len(r.lanes[i].spans)
	}
	out := make([]Span, 0, total)
	for i := range r.lanes {
		out = append(out, r.lanes[i].spans...)
	}
	return out
}

// Events converts the recorded spans to trace events: one thread per
// goroutine-processor, the op name as the event name, block ids in args.
func (r *Recorder) Events(processName string) []Event {
	if processName == "" {
		processName = "fanout execution"
	}
	spans := r.Spans()
	events := make([]Event, 0, len(spans)+len(r.lanes)+2)
	events = append(events, meta("process_name", 1, 0, processName))
	if d := r.Dropped(); d > 0 {
		// Surface truncation in the trace itself: a snapshot missing spans
		// must say so, or its timeline reads as a complete recording.
		events = append(events, Event{
			Name: "dropped_spans", Ph: "C", Cat: "meta", Pid: 1,
			Args: map[string]any{"count": d},
		})
	}
	for p := range r.lanes {
		events = append(events, meta("thread_name", 1, int64(p), fmt.Sprintf("P%d", p)))
	}
	for _, s := range spans {
		args := map[string]any{"block": s.Block}
		if (s.Op == OpBMOD || s.Op == OpSteal) && s.Src >= 0 {
			args["src"] = s.Src
		}
		events = append(events, Event{
			Name: s.Op.String(),
			Ph:   "X",
			Cat:  "compute",
			Ts:   float64(s.Start) / 1e3,
			Dur:  float64(s.End-s.Start) / 1e3,
			Pid:  1,
			Tid:  int64(s.Proc),
			Args: args,
		})
	}
	return events
}

// WriteTrace renders the recorder's spans as a complete trace-event JSON
// document.
func (r *Recorder) WriteTrace(w io.Writer, processName string) error {
	return WriteEvents(w, r.Events(processName))
}
