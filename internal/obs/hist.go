package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// HistBuckets is the fixed bucket count of Histogram: power-of-two
// (log-spaced) microsecond buckets, bucket i covering [2^(i-1), 2^i) µs,
// bucket 0 holding sub-microsecond observations. 41 buckets span 0 to
// ~2^40 µs (≈12.7 days), far past any latency the service can produce.
const HistBuckets = 41

// Histogram is a fixed-bucket, log-spaced latency histogram built from
// atomic counters: Observe is lock-free (one shift, three atomic ops) and
// Snapshot never blocks writers. It replaces bare count/total/max
// tracking so /metrics can report quantiles, not just a mean that hides
// the tail.
type Histogram struct {
	counts [HistBuckets]atomic.Int64
	sumµ   atomic.Int64
	maxµ   atomic.Int64
}

// bucketOf maps a non-negative microsecond value to its bucket index:
// the value's bit length, clamped to the last bucket.
func bucketOf(µ int64) int {
	b := bits.Len64(uint64(µ))
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	µ := d.Microseconds()
	if µ < 0 {
		µ = 0
	}
	h.counts[bucketOf(µ)].Add(1)
	h.sumµ.Add(µ)
	for {
		cur := h.maxµ.Load()
		if µ <= cur || h.maxµ.CompareAndSwap(cur, µ) {
			return
		}
	}
}

// HistSnapshot is one read of a Histogram. The bucket counts are copied
// first and Count is their sum, so every quantile is computed over one
// self-consistent view; Sumµ and Maxµ are read afterwards and may include
// a few samples the buckets do not (or vice versa), which is why Mean
// clamps into [0, Maxµ] — under concurrent writers the derived statistics
// are each internally sane, never mean > max.
type HistSnapshot struct {
	Counts [HistBuckets]int64
	Count  int64
	Sumµ   int64
	Maxµ   int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sumµ = h.sumµ.Load()
	s.Maxµ = h.maxµ.Load()
	return s
}

// Mean returns the mean latency in microseconds, clamped to [0, Maxµ].
func (s *HistSnapshot) Mean() float64 {
	if s.Count <= 0 {
		return 0
	}
	m := float64(s.Sumµ) / float64(s.Count)
	if mx := float64(s.Maxµ); m > mx {
		m = mx
	}
	if m < 0 {
		m = 0
	}
	return m
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) in microseconds, linearly
// interpolated inside the containing power-of-two bucket and clamped to
// the observed maximum. Quantiles of an empty snapshot are 0.
func (s *HistSnapshot) Quantile(p float64) float64 {
	if s.Count <= 0 || math.IsNaN(p) {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(s.Count)
	cum := 0.0
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := 0.5
			if c > 0 {
				frac = (target - cum) / float64(c)
			}
			v := lo + frac*(hi-lo)
			if mx := float64(s.Maxµ); v > mx {
				v = mx
			}
			return v
		}
		cum = next
	}
	return float64(s.Maxµ)
}

// bucketBounds returns bucket i's [lo, hi) microsecond range.
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 1
	}
	return float64(int64(1) << (i - 1)), float64(int64(1) << i)
}
