package obs

import (
	"sync"
	"testing"
)

// fill records n enabled spans into one lane (Start returns a non-zero
// timestamp because the recorder is enabled).
func fill(r *Recorder, proc int32, n int) {
	for k := 0; k < n; k++ {
		r.Record(proc, OpBMOD, int32(k), -1, r.Start())
	}
}

// TestRecorderOverflowCountsDrops is the regression test for silent span
// truncation: a full lane used to discard spans without any trace, so a
// cost profile built from the recording was biased toward whatever ran
// early. Overflow must be counted, surfaced by Dropped(), and visible in
// the exported trace events.
func TestRecorderOverflowCountsDrops(t *testing.T) {
	const capHint, extra = 8, 5
	r := NewRecorder(2, capHint)
	r.Enable()
	fill(r, 0, capHint+extra)
	fill(r, 1, 3)

	if got := r.Dropped(); got != extra {
		t.Fatalf("Dropped() = %d, want %d", got, extra)
	}
	spans := r.Spans()
	if len(spans) != capHint+3 {
		t.Fatalf("Spans() kept %d spans, want %d (full lane 0 + 3 in lane 1)", len(spans), capHint+3)
	}
	// The retained spans are the earliest ones — the drop policy truncates
	// the tail, never corrupts the buffer.
	for k, s := range spans[:capHint] {
		if s.Proc != 0 || int(s.Block) != k {
			t.Fatalf("span %d = proc %d block %d, want proc 0 block %d", k, s.Proc, s.Block, k)
		}
	}

	// The trace export must announce the truncation.
	found := false
	for _, e := range r.Events("test") {
		if e.Name == "dropped_spans" {
			found = true
			if c, ok := e.Args["count"].(int64); !ok || c != extra {
				t.Fatalf("dropped_spans count = %v, want %d", e.Args["count"], extra)
			}
		}
	}
	if !found {
		t.Fatal("trace events omit the dropped_spans counter for a truncated recording")
	}

	// Reset clears the counter with the buffers.
	r.Reset()
	if got := r.Dropped(); got != 0 {
		t.Fatalf("Dropped() = %d after Reset, want 0", got)
	}
}

// TestRecorderOverflowConcurrent exercises the drop counter under the
// recorder's real concurrency model — one writer goroutine per lane —
// so the race detector can vouch for the atomic accounting.
func TestRecorderOverflowConcurrent(t *testing.T) {
	const procs, capHint, n = 4, 16, 100
	r := NewRecorder(procs, capHint)
	r.Enable()
	var wg sync.WaitGroup
	for p := int32(0); p < procs; p++ {
		wg.Add(1)
		go func(p int32) {
			defer wg.Done()
			fill(r, p, n)
		}(p)
	}
	wg.Wait()
	if got, want := r.Dropped(), int64(procs*(n-capHint)); got != want {
		t.Fatalf("Dropped() = %d, want %d", got, want)
	}
	if got, want := len(r.Spans()), procs*capHint; got != want {
		t.Fatalf("Spans() kept %d, want %d", got, want)
	}
}
