package mapping

import (
	"fmt"
	"math"
)

// SpeedFloorFrac is the relative floor GreedyWeightedChecked clamps speeds
// to: no bin may look more than 1/SpeedFloorFrac times faster than another.
// A wildly small (but positive) calibration reading would otherwise make
// every other bin appear effectively infinite-speed and starve the slow
// bin's neighbours of any meaningful share.
const SpeedFloorFrac = 1e-3

// GreedyWeighted is the heterogeneous generalization of Greedy: bins have
// relative speeds (flop rates), and each item — taken in the caller's
// order, conventionally decreasing weight as in §4 — goes to the bin whose
// completion time (load + w) / speed is smallest after receiving it. With
// all speeds equal it reduces to Greedy's least-loaded rule. The cluster
// gateway uses it to assign the schedule's virtual processors to nodes of
// unequal measured speed, so a half-speed node ends up with roughly half
// the flops (the Tzovas & Predari extension of the paper's heuristics).
//
// Non-positive and non-finite speeds mark bins that must receive nothing
// (a dead or uncalibrated node); at least one speed must be positive and
// finite. Callers that would rather fail than silently skip a bad bin —
// the cluster partitioner — should use GreedyWeightedChecked.
func GreedyWeighted(ord []int, weight []int64, speed []float64) []int {
	asg := make([]int, len(weight))
	load := make([]float64, len(speed))
	for _, it := range ord {
		best, bestT := -1, 0.0
		for b, sp := range speed {
			// !(sp > 0) rather than sp <= 0: NaN compares false both ways,
			// so the old guard let a NaN-speed bin through, its NaN
			// completion time won the first best<0 comparison, and every
			// item landed on that one bin. +Inf is equally degenerate (zero
			// completion time forever).
			if !(sp > 0) || math.IsInf(sp, 1) {
				continue
			}
			t := (load[b] + float64(weight[it])) / sp
			if best < 0 || t < bestT {
				best, bestT = b, t
			}
		}
		if best < 0 {
			panic("mapping: GreedyWeighted with no positive-speed bin")
		}
		asg[it] = best
		load[best] += float64(weight[it])
	}
	return asg
}

// GreedyWeightedChecked validates the speed vector before partitioning and
// returns an error — instead of a silently degenerate assignment — when it
// is unusable: empty, containing NaN/±Inf (a malformed -speeds flag), or
// containing a non-positive entry (a heartbeat reporting before
// calibration). Valid speeds are clamped to a relative floor
// (SpeedFloorFrac × max) so one tiny reading cannot make the rest of the
// fleet look infinitely fast.
func GreedyWeightedChecked(ord []int, weight []int64, speed []float64) ([]int, error) {
	if len(speed) == 0 {
		return nil, fmt.Errorf("mapping: no bins to partition over")
	}
	maxSp := 0.0
	for b, sp := range speed {
		if math.IsNaN(sp) || math.IsInf(sp, 0) {
			return nil, fmt.Errorf("mapping: speed[%d] = %v is not finite", b, sp)
		}
		if sp <= 0 {
			return nil, fmt.Errorf("mapping: speed[%d] = %v is not positive (uncalibrated bin)", b, sp)
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	clamped := make([]float64, len(speed))
	floor := maxSp * SpeedFloorFrac
	for b, sp := range speed {
		if sp < floor {
			sp = floor
		}
		clamped[b] = sp
	}
	return GreedyWeighted(ord, weight, clamped), nil
}
