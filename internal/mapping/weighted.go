package mapping

// GreedyWeighted is the heterogeneous generalization of Greedy: bins have
// relative speeds (flop rates), and each item — taken in the caller's
// order, conventionally decreasing weight as in §4 — goes to the bin whose
// completion time (load + w) / speed is smallest after receiving it. With
// all speeds equal it reduces to Greedy's least-loaded rule. The cluster
// gateway uses it to assign the schedule's virtual processors to nodes of
// unequal measured speed, so a half-speed node ends up with roughly half
// the flops (the Tzovas & Predari extension of the paper's heuristics).
//
// Non-positive speeds mark bins that must receive nothing (a dead node);
// at least one speed must be positive.
func GreedyWeighted(ord []int, weight []int64, speed []float64) []int {
	asg := make([]int, len(weight))
	load := make([]float64, len(speed))
	for _, it := range ord {
		best, bestT := -1, 0.0
		for b, sp := range speed {
			if sp <= 0 {
				continue
			}
			t := (load[b] + float64(weight[it])) / sp
			if best < 0 || t < bestT {
				best, bestT = b, t
			}
		}
		if best < 0 {
			panic("mapping: GreedyWeighted with no positive-speed bin")
		}
		asg[it] = best
		load[best] += float64(weight[it])
	}
	return asg
}
