package mapping

// This file builds Cartesian-product mappings from *measured* per-block
// costs (span nanoseconds from obs.Recorder, aggregated by internal/tune)
// instead of the modeled flop counts the §4 heuristics use. The shape
// follows the symmetric rectilinear partitioning idea: pick a column map
// from measured column totals, assign rows against it with the §4.2
// min-max rule, then alternate row/column reassignment a bounded number of
// rounds. Every step is deterministic — stable sorts with index tie-breaks
// and ascending scans — so two runs from the same cost matrix produce
// identical mappings.

// NewMeasured builds a mapping for an n×n block structure from measured
// block costs: cost[i][j] is the total measured nanoseconds attributable to
// block (i,j) (own BFAC/BDIV work plus BMOD updates it received), zero for
// blocks outside the structure. The initial column map greedily partitions
// measured column totals (decreasing weight, as DW does with flops); rows
// are then placed by the §4.2 per-processor rule — minimize the maximum
// single-processor load, then the aggregate — and the two sides are
// alternately refined until they stop changing or the round bound hits.
func NewMeasured(g Grid, cost [][]int64) *Mapping {
	n := len(cost)
	rowW := make([]int64, n)
	colW := make([]int64, n)
	for i := range cost {
		for j, c := range cost[i] {
			rowW[i] += c
			colW[j] += c
		}
	}

	mapJ := Greedy(order(DW, colW, nil), colW, g.Pc)
	mapI := assignMinMax(rowCellCosts(cost, mapJ, g.Pc), rowW, g.Pr)
	const refineRounds = 4
	for round := 0; round < refineRounds; round++ {
		mapJ2 := assignMinMax(colCellCosts(cost, mapI, g.Pr), colW, g.Pc)
		mapI2 := assignMinMax(rowCellCosts(cost, mapJ2, g.Pc), rowW, g.Pr)
		converged := equalInts(mapI2, mapI) && equalInts(mapJ2, mapJ)
		mapI, mapJ = mapI2, mapJ2
		if converged {
			break
		}
	}
	return &Mapping{Grid: g, MapI: mapI, MapJ: mapJ}
}

// rowCellCosts returns per-block-row cost split by mapped processor column:
// out[i][c] = Σ cost[i][j] over block columns j with mapJ[j] == c.
func rowCellCosts(cost [][]int64, mapJ []int, pc int) [][]int64 {
	out := make([][]int64, len(cost))
	for i := range cost {
		out[i] = make([]int64, pc)
		for j, c := range cost[i] {
			out[i][mapJ[j]] += c
		}
	}
	return out
}

// colCellCosts is the transpose: out[j][r] = Σ cost[i][j] with mapI[i] == r.
func colCellCosts(cost [][]int64, mapI []int, pr int) [][]int64 {
	n := len(cost)
	out := make([][]int64, n)
	for j := range out {
		out[j] = make([]int64, pr)
	}
	for i := range cost {
		r := mapI[i]
		for j, c := range cost[i] {
			out[j][r] += c
		}
	}
	return out
}

// assignMinMax places each panel (block row or column) into one of bins
// grid lines, processing panels in decreasing total-weight order (index
// ascending on ties) and choosing the line that minimizes the maximum
// per-cell load, then the aggregate, then the lowest line index — the
// deterministic generalization of NewPerProcessor's inner loop.
// cellCost[p][b] is panel p's cost landing in cell b of a candidate line.
func assignMinMax(cellCost [][]int64, weight []int64, bins int) []int {
	n := len(cellCost)
	cells := 0
	if n > 0 {
		cells = len(cellCost[0])
	}
	load := make([][]int64, bins)
	for r := range load {
		load[r] = make([]int64, cells)
	}
	out := make([]int, n)
	for _, p := range order(DW, weight, nil) {
		bestR, bestMax, bestSum := -1, int64(0), int64(0)
		for r := 0; r < bins; r++ {
			var mx, sum int64
			for c := 0; c < cells; c++ {
				l := load[r][c] + cellCost[p][c]
				sum += l
				if l > mx {
					mx = l
				}
			}
			if bestR < 0 || mx < bestMax || (mx == bestMax && sum < bestSum) {
				bestR, bestMax, bestSum = r, mx, sum
			}
		}
		out[p] = bestR
		for c := 0; c < cells; c++ {
			load[bestR][c] += cellCost[p][c]
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
