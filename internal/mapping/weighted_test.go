package mapping

import (
	"sort"
	"testing"
)

func weightedLoads(asg []int, weight []int64, bins int) []float64 {
	load := make([]float64, bins)
	for it, b := range asg {
		load[b] += float64(weight[it])
	}
	return load
}

// TestGreedyWeightedUniformMatchesGreedy: with equal speeds the rule is the
// least-loaded rule, so it must produce exactly Greedy's assignment.
func TestGreedyWeightedUniformMatchesGreedy(t *testing.T) {
	weight := []int64{90, 70, 65, 40, 40, 30, 20, 10, 5, 5, 1}
	ord := make([]int, len(weight))
	for i := range ord {
		ord[i] = i
	}
	g := Greedy(ord, weight, 3)
	w := GreedyWeighted(ord, weight, []float64{1, 1, 1})
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("item %d: Greedy bin %d, GreedyWeighted bin %d", i, g[i], w[i])
		}
	}
}

// TestGreedyWeightedProportional: a half-speed bin should end up with about
// half the load of a full-speed bin over many small items.
func TestGreedyWeightedProportional(t *testing.T) {
	const n = 400
	weight := make([]int64, n)
	ord := make([]int, n)
	for i := range weight {
		weight[i] = int64(1000 - i) // decreasing, as callers provide
		ord[i] = i
	}
	speed := []float64{1, 0.5}
	load := weightedLoads(GreedyWeighted(ord, weight, speed), weight, 2)
	ratio := load[1] / load[0]
	if ratio < 0.40 || ratio > 0.60 {
		t.Fatalf("half-speed bin got %.0f vs %.0f (ratio %.3f, want ~0.5)", load[1], load[0], ratio)
	}
	// Speed-aware makespan must beat the oblivious split on the same items.
	obl := weightedLoads(Greedy(ord, weight, 2), weight, 2)
	mkAware := 0.0
	for b := range load {
		if ft := load[b] / speed[b]; ft > mkAware {
			mkAware = ft
		}
	}
	mkObl := 0.0
	for b := range obl {
		if ft := obl[b] / speed[b]; ft > mkObl {
			mkObl = ft
		}
	}
	if mkAware >= mkObl {
		t.Fatalf("speed-aware makespan %.0f not better than oblivious %.0f", mkAware, mkObl)
	}
}

// TestGreedyWeightedDeadBin: non-positive speed bins receive nothing.
func TestGreedyWeightedDeadBin(t *testing.T) {
	weight := []int64{9, 8, 7, 6, 5}
	ord := []int{0, 1, 2, 3, 4}
	asg := GreedyWeighted(ord, weight, []float64{1, 0, 2})
	for it, b := range asg {
		if b == 1 {
			t.Fatalf("item %d assigned to dead bin", it)
		}
	}
	got := append([]int(nil), asg...)
	sort.Ints(got)
	if got[0] != 0 || got[len(got)-1] != 2 {
		t.Fatalf("expected both live bins used, got %v", asg)
	}
}
