package mapping_test

import (
	"fmt"

	"blockfanout/internal/mapping"
)

// ExampleBestGrid shows the §4.2 relatively-prime trick: dropping one
// processor from a square machine yields coprime grid dimensions, which
// scatter the block diagonal over the whole machine.
func ExampleBestGrid() {
	for _, p := range []int{64, 63, 100, 99} {
		g := mapping.BestGrid(p)
		fmt.Printf("P=%-3d → %d×%d coprime=%v\n", p, g.Pr, g.Pc, g.RelativelyPrime())
	}
	// Output:
	// P=64  → 8×8 coprime=false
	// P=63  → 9×7 coprime=true
	// P=100 → 10×10 coprime=false
	// P=99  → 11×9 coprime=true
}

// ExampleGreedy shows the paper's number-partitioning loop directly.
func ExampleGreedy() {
	weights := []int64{9, 7, 5, 3, 1, 1}
	order := []int{0, 1, 2, 3, 4, 5} // decreasing-work order
	bins := mapping.Greedy(order, weights, 2)
	loads := make([]int64, 2)
	for i, b := range bins {
		loads[b] += weights[i]
	}
	fmt.Println("bin loads:", loads)
	// Output:
	// bin loads: [13 13]
}
