// Package mapping implements the block-to-processor mappings studied in the
// paper: the traditional 2-D cyclic (torus-wrap) mapping, general Cartesian
// product mappings built from independent row and column maps, the four
// greedy number-partitioning heuristics of §4 (Decreasing Work, Increasing
// Number, Decreasing Number, Increasing Depth), the per-processor
// refinement heuristic of §4.2, relatively-prime cyclic grids, and the
// subtree-to-subcube column mapping of §5.
package mapping

import (
	"fmt"
	"sort"

	"blockfanout/internal/blocks"
)

// Grid is a logical Pr×Pc processor grid. Processor (r,c) has linear id
// r*Pc + c.
type Grid struct {
	Pr, Pc int
}

// P returns the number of processors.
func (g Grid) P() int { return g.Pr * g.Pc }

// ProcID returns the linear processor id of grid position (r,c).
func (g Grid) ProcID(r, c int) int { return r*g.Pc + c }

// RowCol returns the grid position of a linear processor id.
func (g Grid) RowCol(id int) (r, c int) { return id / g.Pc, id % g.Pc }

// SquareGrid returns the √P×√P grid the paper uses for its main
// experiments; P must be a perfect square.
func SquareGrid(p int) (Grid, error) {
	r := 1
	for r*r < p {
		r++
	}
	if r*r != p {
		return Grid{}, fmt.Errorf("mapping: P=%d is not a perfect square", p)
	}
	return Grid{Pr: r, Pc: r}, nil
}

// BestGrid factors P into the most nearly square Pr×Pc grid (Pr ≥ Pc).
// For P=63 it returns 9×7 and for P=99 it returns 11×9 — the
// relatively-prime grids of §4.2.
func BestGrid(p int) Grid {
	best := Grid{Pr: p, Pc: 1}
	for c := 1; c*c <= p; c++ {
		if p%c == 0 {
			best = Grid{Pr: p / c, Pc: c}
		}
	}
	return best
}

// gcd of two positive ints.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// RelativelyPrime reports whether the grid dimensions are coprime, the
// property that lets a plain cyclic mapping scatter the block diagonal over
// the whole machine (§4.2).
func (g Grid) RelativelyPrime() bool { return gcd(g.Pr, g.Pc) == 1 }

// Mapping is a Cartesian-product block mapping: block (I,J) lives on
// processor (MapI[I], MapJ[J]). Per §2.4 this structure is what bounds the
// number of processors any block must be sent to by Pr+Pc.
type Mapping struct {
	Grid Grid
	MapI []int // block row → processor row
	MapJ []int // block col → processor col
}

// Owner returns the linear processor id owning block (I,J).
func (m *Mapping) Owner(i, j int) int { return m.Grid.ProcID(m.MapI[i], m.MapJ[j]) }

// Heuristic selects how a row (or column) map is built.
type Heuristic int

const (
	// CY is the cyclic map: mapI[I] = I mod Pr (the paper's baseline).
	CY Heuristic = iota
	// DW greedily assigns block rows in order of decreasing work.
	DW
	// IN greedily assigns block rows in order of increasing row number.
	IN
	// DN greedily assigns block rows in order of decreasing row number.
	DN
	// ID greedily assigns block rows in order of increasing depth in the
	// elimination tree (ties broken by decreasing row number, since ID is
	// a refinement of DN).
	ID
)

var heuristicNames = [...]string{"CY", "DW", "IN", "DN", "ID"}

func (h Heuristic) String() string {
	if int(h) < len(heuristicNames) {
		return heuristicNames[h]
	}
	return fmt.Sprintf("Heuristic(%d)", int(h))
}

// AllHeuristics lists the five mappings in the order of the paper's tables.
func AllHeuristics() []Heuristic { return []Heuristic{CY, DW, IN, DN, ID} }

// ParseHeuristic converts a name ("CY", "DW", "IN", "DN", "ID") to a
// Heuristic.
func ParseHeuristic(s string) (Heuristic, error) {
	for i, n := range heuristicNames {
		if n == s {
			return Heuristic(i), nil
		}
	}
	return 0, fmt.Errorf("mapping: unknown heuristic %q", s)
}

// consideration order of the panels for a heuristic. weight is the panel
// aggregate work (workI or workJ) and depth the panel's supernode depth in
// the elimination forest (used by ID only).
func order(h Heuristic, weight []int64, depth []int) []int {
	n := len(weight)
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	switch h {
	case DW:
		sort.SliceStable(ord, func(a, b int) bool { return weight[ord[a]] > weight[ord[b]] })
	case IN:
		// already increasing
	case DN:
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			ord[i], ord[j] = ord[j], ord[i]
		}
	case ID:
		sort.SliceStable(ord, func(a, b int) bool {
			if depth[ord[a]] != depth[ord[b]] {
				return depth[ord[a]] < depth[ord[b]]
			}
			return ord[a] > ord[b]
		})
	}
	return ord
}

// Greedy runs the paper's number-partitioning loop: panels are considered
// in the given order and each is assigned to the bin that has received the
// least weight so far. Returns the panel → bin map.
func Greedy(ord []int, weight []int64, bins int) []int {
	loaded := make([]int64, bins)
	out := make([]int, len(ord))
	for _, i := range ord {
		minB := 0
		for b := 1; b < bins; b++ {
			if loaded[b] < loaded[minB] {
				minB = b
			}
		}
		out[i] = minB
		loaded[minB] += weight[i]
	}
	return out
}

// buildMap creates one side of a CP mapping.
func buildMap(h Heuristic, weight []int64, depth []int, bins int) []int {
	n := len(weight)
	if h == CY {
		m := make([]int, n)
		for i := range m {
			m[i] = i % bins
		}
		return m
	}
	return Greedy(order(h, weight, depth), weight, bins)
}

// New builds the Cartesian-product mapping for the block structure using
// the given row and column heuristics. panelDepth gives each panel's
// supernode depth in the elimination forest (needed only by ID; may be nil
// otherwise).
func New(g Grid, rowH, colH Heuristic, bs *blocks.Structure, panelDepth []int) *Mapping {
	if panelDepth == nil && (rowH == ID || colH == ID) {
		panic("mapping: ID heuristic requires panel depths")
	}
	return &Mapping{
		Grid: g,
		MapI: buildMap(rowH, bs.WorkI(), panelDepth, g.Pr),
		MapJ: buildMap(colH, bs.WorkJ(), panelDepth, g.Pc),
	}
}

// Cyclic returns the plain 2-D cyclic (torus-wrap) mapping.
func Cyclic(g Grid, n int) *Mapping {
	m := &Mapping{Grid: g, MapI: make([]int, n), MapJ: make([]int, n)}
	for i := 0; i < n; i++ {
		m.MapI[i] = i % g.Pr
		m.MapJ[i] = i % g.Pc
	}
	return m
}
