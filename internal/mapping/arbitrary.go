package mapping

import (
	"sort"

	"blockfanout/internal/blocks"
)

// Arbitrary is a fully general block-to-processor map (§2.4: "In its most
// general form, the mapping is arbitrary: a block can be mapped to any
// processor in the grid"). It achieves nearly perfect load balance by
// greedy number partitioning over individual blocks — but it forfeits the
// Cartesian-product property, so a block may need to be sent to far more
// than Pr+Pc processors. The library includes it to quantify that
// trade-off (see the experiments' "arbitrary" runner).
type Arbitrary struct {
	NProc  int
	owners map[[2]int32]int32
}

// Owner returns the processor owning block (i,j); blocks outside the
// structure the map was built from belong to processor 0.
func (a *Arbitrary) Owner(i, j int) int {
	if o, ok := a.owners[[2]int32{int32(i), int32(j)}]; ok {
		return int(o)
	}
	return 0
}

// P returns the processor count.
func (a *Arbitrary) P() int { return a.NProc }

// NewArbitraryGreedy assigns every block independently to the least-loaded
// processor, considering blocks in decreasing work order (longest
// processing time rule). The resulting overall balance approaches 1.
func NewArbitraryGreedy(p int, bs *blocks.Structure) *Arbitrary {
	type blk struct {
		i, j int32
		work int64
	}
	var all []blk
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			all = append(all, blk{int32(b.I), int32(j), b.Work})
		}
	}
	sort.Slice(all, func(a, b int) bool { return all[a].work > all[b].work })
	load := make([]int64, p)
	a := &Arbitrary{NProc: p, owners: make(map[[2]int32]int32, len(all))}
	for _, b := range all {
		best := 0
		for q := 1; q < p; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		a.owners[[2]int32{b.i, b.j}] = int32(best)
		load[best] += b.work
	}
	return a
}
