package mapping

import (
	"math"
	"sort"
	"testing"
)

// TestGreedyWeightedNaNSpeedSkipped is the regression test for the NaN
// capture bug: a NaN speed produced a NaN completion time, NaN compared
// false in the `t < bestT` improvement check but the initial `best < 0`
// branch accepted it, so the NaN bin won once and then every later item
// piled onto it. NaN bins must receive nothing.
func TestGreedyWeightedNaNSpeedSkipped(t *testing.T) {
	weight := []int64{9, 8, 7, 6, 5, 4}
	ord := []int{0, 1, 2, 3, 4, 5}
	for _, bad := range []float64{math.NaN(), math.Inf(1)} {
		asg := GreedyWeighted(ord, weight, []float64{bad, 1, 1})
		for it, b := range asg {
			if b == 0 {
				t.Fatalf("speed %v: item %d assigned to degenerate bin", bad, it)
			}
		}
		got := append([]int(nil), asg...)
		sort.Ints(got)
		if got[0] != 1 || got[len(got)-1] != 2 {
			t.Fatalf("speed %v: expected both live bins used, got %v", bad, asg)
		}
	}
}

// TestGreedyWeightedAllDegeneratePanics: with no usable bin at all the
// unchecked partitioner must fail loudly, not return a zeroed assignment.
func TestGreedyWeightedAllDegeneratePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GreedyWeighted returned with no positive-speed bin")
		}
	}()
	GreedyWeighted([]int{0}, []int64{1}, []float64{0, math.NaN(), math.Inf(1), -2})
}

// TestGreedyWeightedCheckedRejectsDegenerate: the checked variant (the
// cluster partitioner's entry point) must turn every malformed speed
// vector into an error instead of a silently degenerate partition.
func TestGreedyWeightedCheckedRejectsDegenerate(t *testing.T) {
	ord := []int{0, 1}
	weight := []int64{3, 2}
	cases := [][]float64{
		{},                  // no bins
		{math.NaN(), 1},     // malformed calibration
		{math.Inf(1), 1},    // malformed calibration
		{math.Inf(-1), 1},   // malformed calibration
		{0, 1},              // uncalibrated bin
		{-0.5, 1},           // uncalibrated bin
	}
	for _, speeds := range cases {
		if _, err := GreedyWeightedChecked(ord, weight, speeds); err == nil {
			t.Fatalf("speeds %v: expected error, got none", speeds)
		}
	}
}

// TestGreedyWeightedCheckedClampsFloor: one absurdly small (but positive)
// calibration reading is clamped to the relative floor, so the other bins
// do not absorb everything as if they were infinitely faster.
func TestGreedyWeightedCheckedClampsFloor(t *testing.T) {
	// Enough unit items that a 1/1000-speed bin must receive some: without
	// the clamp a 1e-12 reading would need ~1e12 items before its first.
	n := 5000
	ord := make([]int, n)
	weight := make([]int64, n)
	for i := range ord {
		ord[i] = i
		weight[i] = 1
	}
	asg, err := GreedyWeightedChecked(ord, weight, []float64{1e-12, 1})
	if err != nil {
		t.Fatal(err)
	}
	var tiny int
	for _, b := range asg {
		if b == 0 {
			tiny++
		}
	}
	// Floor is SpeedFloorFrac of max: the clamped bin gets roughly a
	// 1/1000 share of the uniform unit items — nonzero (the unclamped
	// 1e-12 share rounds to zero for any realistic n) but still small.
	if tiny == 0 {
		t.Fatalf("floor-clamped bin received nothing of %d items", n)
	}
	if tiny > n/100 {
		t.Fatalf("floor-clamped bin received %d of %d items (floor too high)", tiny, n)
	}
}
