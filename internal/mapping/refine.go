package mapping

import "blockfanout/internal/blocks"

// NewPerProcessor implements the first alternative heuristic of §4.2: it
// fixes a column mapping (the paper uses cyclic), then assigns each block
// row to the processor row that minimizes the maximum work assigned to any
// single processor — rather than minimizing the aggregate work of the
// processor row, as the primary heuristic does. The paper found this gives
// a further 10–15% balance improvement but no realized performance gain.
//
// rowH chooses the order in which block rows are considered (DW in the
// paper's spirit; CY degrades to IN order).
func NewPerProcessor(g Grid, rowH Heuristic, colH Heuristic, bs *blocks.Structure, panelDepth []int) *Mapping {
	n := bs.N()
	mapJ := buildMap(colH, bs.WorkJ(), panelDepth, g.Pc)

	// rowColWork[i][c] = total work of blocks in block row i whose block
	// column maps to processor column c.
	rowColWork := make([][]int64, n)
	for i := range rowColWork {
		rowColWork[i] = make([]int64, g.Pc)
	}
	for j := range bs.Cols {
		c := mapJ[j]
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			rowColWork[b.I][c] += b.Work
		}
	}
	workI := bs.WorkI()

	load := make([][]int64, g.Pr)
	for r := range load {
		load[r] = make([]int64, g.Pc)
	}
	ord := order(rowH, workI, panelDepth)
	mapI := make([]int, n)
	for _, i := range ord {
		bestR, bestMax, bestSum := -1, int64(0), int64(0)
		for r := 0; r < g.Pr; r++ {
			var mx, sum int64
			for c := 0; c < g.Pc; c++ {
				l := load[r][c] + rowColWork[i][c]
				sum += l
				if l > mx {
					mx = l
				}
			}
			if bestR < 0 || mx < bestMax || (mx == bestMax && sum < bestSum) {
				bestR, bestMax, bestSum = r, mx, sum
			}
		}
		mapI[i] = bestR
		for c := 0; c < g.Pc; c++ {
			load[bestR][c] += rowColWork[i][c]
		}
	}
	return &Mapping{Grid: g, MapI: mapI, MapJ: mapJ}
}
