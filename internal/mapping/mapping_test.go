package mapping

import (
	"testing"
	"testing/quick"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func structureFor(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*blocks.Structure, *symbolic.Structure, []int) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	part := blocks.NewPartition(st, b)
	bs, err := blocks.Build(st, part)
	if err != nil {
		t.Fatal(err)
	}
	depth := make([]int, part.N())
	for pn := range depth {
		depth[pn] = st.Depth[part.SnodeOf[pn]]
	}
	return bs, st, depth
}

func TestGridBasics(t *testing.T) {
	g := Grid{Pr: 3, Pc: 4}
	if g.P() != 12 {
		t.Fatal("P")
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 4; c++ {
			rr, cc := g.RowCol(g.ProcID(r, c))
			if rr != r || cc != c {
				t.Fatalf("RowCol round trip (%d,%d)", r, c)
			}
		}
	}
}

func TestSquareGrid(t *testing.T) {
	g, err := SquareGrid(64)
	if err != nil || g.Pr != 8 || g.Pc != 8 {
		t.Fatalf("%v %v", g, err)
	}
	if _, err := SquareGrid(60); err == nil {
		t.Fatal("non-square accepted")
	}
}

func TestBestGrid(t *testing.T) {
	cases := map[int]Grid{
		63: {Pr: 9, Pc: 7},
		99: {Pr: 11, Pc: 9},
		64: {Pr: 8, Pc: 8},
		13: {Pr: 13, Pc: 1},
		12: {Pr: 4, Pc: 3},
	}
	for p, want := range cases {
		if got := BestGrid(p); got != want {
			t.Fatalf("BestGrid(%d)=%v, want %v", p, got, want)
		}
	}
	if !BestGrid(63).RelativelyPrime() || BestGrid(64).RelativelyPrime() {
		t.Fatal("RelativelyPrime wrong")
	}
}

func TestCyclicMapping(t *testing.T) {
	g := Grid{Pr: 3, Pc: 3}
	m := Cyclic(g, 10)
	for i := 0; i < 10; i++ {
		if m.MapI[i] != i%3 || m.MapJ[i] != i%3 {
			t.Fatalf("cyclic wrong at %d", i)
		}
	}
	if m.Owner(4, 7) != g.ProcID(1, 1) {
		t.Fatal("Owner wrong")
	}
}

func TestHeuristicParse(t *testing.T) {
	for _, h := range AllHeuristics() {
		got, err := ParseHeuristic(h.String())
		if err != nil || got != h {
			t.Fatalf("%v round trip failed", h)
		}
	}
	if _, err := ParseHeuristic("XX"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestGreedyIsBalanced(t *testing.T) {
	// Greedy over decreasing weights gives max bin ≤ opt·(4/3-ish); for
	// identical weights it is perfectly balanced.
	w := make([]int64, 12)
	for i := range w {
		w[i] = 5
	}
	ord := make([]int, 12)
	for i := range ord {
		ord[i] = i
	}
	bins := Greedy(ord, w, 4)
	load := make([]int64, 4)
	for i, b := range bins {
		load[b] += w[i]
	}
	for _, l := range load {
		if l != 15 {
			t.Fatalf("loads %v", load)
		}
	}
}

func TestOrdersAreCorrectSequences(t *testing.T) {
	weight := []int64{5, 1, 9, 7, 3}
	depth := []int{2, 2, 0, 1, 1}
	check := func(h Heuristic, want []int) {
		got := order(h, weight, depth)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v order %v, want %v", h, got, want)
			}
		}
	}
	check(IN, []int{0, 1, 2, 3, 4})
	check(DN, []int{4, 3, 2, 1, 0})
	check(DW, []int{2, 3, 0, 4, 1})
	// ID: depth 0 first (panel 2), depth 1 by decreasing number (4, 3),
	// then depth 2 (1, 0).
	check(ID, []int{2, 4, 3, 1, 0})
}

func TestNewMappingStaysOnGrid(t *testing.T) {
	bs, _, depth := structureFor(t, gen.IrregularMesh(300, 5, 3, 12), ord.MinDegree, 0, 8)
	g := Grid{Pr: 4, Pc: 5}
	for _, rh := range AllHeuristics() {
		for _, ch := range AllHeuristics() {
			m := New(g, rh, ch, bs, depth)
			if len(m.MapI) != bs.N() || len(m.MapJ) != bs.N() {
				t.Fatal("map lengths")
			}
			for i := 0; i < bs.N(); i++ {
				if m.MapI[i] < 0 || m.MapI[i] >= g.Pr || m.MapJ[i] < 0 || m.MapJ[i] >= g.Pc {
					t.Fatalf("%v/%v: off-grid entry", rh, ch)
				}
			}
		}
	}
}

func TestIDNeedsDepths(t *testing.T) {
	bs, _, _ := structureFor(t, gen.Grid2D(8), ord.NDGrid2D, 8, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when ID lacks depths")
		}
	}()
	New(Grid{Pr: 2, Pc: 2}, ID, CY, bs, nil)
}

func TestHeuristicsImproveRowBalance(t *testing.T) {
	// Direct check of the number-partitioning objective: greedy DW must
	// beat cyclic's max row-bin load.
	bs, _, depth := structureFor(t, gen.IrregularMesh(400, 6, 3, 31), ord.MinDegree, 0, 8)
	g := Grid{Pr: 8, Pc: 8}
	workI := bs.WorkI()
	maxLoad := func(mapI []int) int64 {
		load := make([]int64, g.Pr)
		for i, r := range mapI {
			load[r] += workI[i]
		}
		var mx int64
		for _, l := range load {
			if l > mx {
				mx = l
			}
		}
		return mx
	}
	cyc := Cyclic(g, bs.N())
	for _, h := range []Heuristic{DW, DN, ID} {
		m := New(g, h, CY, bs, depth)
		if maxLoad(m.MapI) > maxLoad(cyc.MapI) {
			t.Fatalf("%v worse than cyclic: %d vs %d", h, maxLoad(m.MapI), maxLoad(cyc.MapI))
		}
	}
}

func TestPerProcessorMappingValid(t *testing.T) {
	bs, _, depth := structureFor(t, gen.IrregularMesh(300, 5, 3, 44), ord.MinDegree, 0, 8)
	g := Grid{Pr: 4, Pc: 4}
	m := NewPerProcessor(g, DW, CY, bs, depth)
	for i := 0; i < bs.N(); i++ {
		if m.MapI[i] < 0 || m.MapI[i] >= g.Pr {
			t.Fatal("off-grid row")
		}
		if m.MapJ[i] != i%g.Pc {
			t.Fatal("column mapping should be cyclic")
		}
	}
	// The refinement optimizes max processor load directly; it must not
	// be worse than the aggregate heuristic on that objective.
	procLoad := func(mp *Mapping) int64 {
		load := make([]int64, g.P())
		for j := range bs.Cols {
			for bi := range bs.Cols[j].Blocks {
				b := &bs.Cols[j].Blocks[bi]
				load[mp.Owner(b.I, j)] += b.Work
			}
		}
		var mx int64
		for _, l := range load {
			if l > mx {
				mx = l
			}
		}
		return mx
	}
	agg := New(g, DW, CY, bs, depth)
	if procLoad(m) > procLoad(agg) {
		t.Fatalf("refined mapping worse: %d vs %d", procLoad(m), procLoad(agg))
	}
}

func TestSubcubeColumnsValidAndDisjoint(t *testing.T) {
	bs, st, depth := structureFor(t, gen.Grid2D(16), ord.NDGrid2D, 16, 4)
	pc := 4
	mapJ := SubcubeColumns(st, bs, pc)
	if len(mapJ) != bs.N() {
		t.Fatal("length")
	}
	for _, c := range mapJ {
		if c < 0 || c >= pc {
			t.Fatalf("column %d off grid", c)
		}
	}
	m := Compose(Grid{Pr: 4, Pc: pc}, ID, mapJ, bs, depth)
	if len(m.MapI) != bs.N() {
		t.Fatal("compose")
	}
	// Sibling subtrees deep in the forest must use disjoint column sets:
	// verify at least two distinct processor columns are used.
	seen := map[int]bool{}
	for _, c := range mapJ {
		seen[c] = true
	}
	if len(seen) != pc {
		t.Fatalf("subcube used %d of %d columns", len(seen), pc)
	}
}

// Property: Greedy assignment never leaves a bin empty while another bin
// has two or more items (when there are at least as many items as bins).
func TestQuickGreedyNoEmptyBins(t *testing.T) {
	f := func(seed uint8) bool {
		n := 8 + int(seed%20)
		bins := 2 + int(seed%5)
		w := make([]int64, n)
		ord := make([]int, n)
		for i := range w {
			w[i] = int64(1 + (i*int(seed+3))%17)
			ord[i] = i
		}
		assign := Greedy(ord, w, bins)
		count := make([]int, bins)
		for _, b := range assign {
			if b < 0 || b >= bins {
				return false
			}
			count[b]++
		}
		for _, c := range count {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
