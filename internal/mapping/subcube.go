package mapping

import (
	"sort"

	"blockfanout/internal/blocks"
	"blockfanout/internal/symbolic"
)

// SubcubeColumns implements the communication-reducing column mapping the
// paper explored in §5: the processor-columns of the grid are divided
// recursively among the subtrees of the (supernode) elimination forest,
// à la subtree-to-subcube, so the blocks of independent subtrees never
// share processor columns. Panels of a subtree's root supernode are mapped
// cyclically over the subtree's processor-column range.
//
// The returned slice maps each panel to a processor column; combine it with
// any row heuristic via Compose. The paper found this cuts communication
// volume by up to ~30% but makes load balancing harder, so realized
// performance was below the pure heuristic remapping.
func SubcubeColumns(st *symbolic.Structure, bs *blocks.Structure, pc int) []int {
	ns := len(st.Snodes)
	part := bs.Part
	workJ := bs.WorkJ()

	// Per-supernode and per-subtree work, and children lists.
	snWork := make([]int64, ns)
	for p := 0; p < part.N(); p++ {
		snWork[part.SnodeOf[p]] += workJ[p]
	}
	subWork := append([]int64(nil), snWork...)
	children := make([][]int, ns)
	var roots []int
	for s := 0; s < ns; s++ {
		if p := st.Parent[s]; p >= 0 {
			subWork[p] += subWork[s] // children precede parents
			children[p] = append(children[p], s)
		} else {
			roots = append(roots, s)
		}
	}
	// Deferred accumulate: subWork above adds child-into-parent during the
	// same pass, which is correct because s < Parent[s] always holds.

	snPanels := make([][]int, ns)
	for p := 0; p < part.N(); p++ {
		s := part.SnodeOf[p]
		snPanels[s] = append(snPanels[s], p)
	}

	mapJ := make([]int, part.N())

	var assignAll func(forest []int, col int)
	assignAll = func(forest []int, col int) {
		for _, s := range forest {
			for _, p := range snPanels[s] {
				mapJ[p] = col
			}
			assignAll(children[s], col)
		}
	}

	var assign func(forest []int, lo, hi int)
	assign = func(forest []int, lo, hi int) {
		if len(forest) == 0 {
			return
		}
		if hi-lo == 1 {
			assignAll(forest, lo)
			return
		}
		if len(forest) == 1 {
			s := forest[0]
			for t, p := range snPanels[s] {
				mapJ[p] = lo + t%(hi-lo)
			}
			assign(children[s], lo, hi)
			return
		}
		// Split the forest into two groups of balanced subtree work and
		// split the column range proportionally.
		ord := append([]int(nil), forest...)
		sort.Slice(ord, func(a, b int) bool { return subWork[ord[a]] > subWork[ord[b]] })
		var g1, g2 []int
		var w1, w2 int64
		for _, s := range ord {
			if w1 <= w2 {
				g1 = append(g1, s)
				w1 += subWork[s]
			} else {
				g2 = append(g2, s)
				w2 += subWork[s]
			}
		}
		total := w1 + w2
		cols := hi - lo
		mid := lo + 1
		if total > 0 {
			mid = lo + int(float64(cols)*float64(w1)/float64(total)+0.5)
		}
		if mid <= lo {
			mid = lo + 1
		}
		if mid >= hi {
			mid = hi - 1
		}
		assign(g1, lo, mid)
		assign(g2, mid, hi)
	}

	assign(roots, 0, pc)
	return mapJ
}

// Compose builds a full Cartesian-product mapping from an explicit column
// map (e.g. from SubcubeColumns) and a row heuristic.
func Compose(g Grid, rowH Heuristic, mapJ []int, bs *blocks.Structure, panelDepth []int) *Mapping {
	return &Mapping{
		Grid: g,
		MapI: buildMap(rowH, bs.WorkI(), panelDepth, g.Pr),
		MapJ: mapJ,
	}
}
