// Package gen generates the benchmark matrices used throughout the
// reproduction.
//
// The regular model problems (dense matrices, 2-D grid and 3-D cube
// Laplacians) are exactly the ones the paper uses. The irregular
// Harwell-Boeing matrices (BCSSTK15/29/31/33), the COPTER2 helicopter-rotor
// model, and the 10FLEET linear-programming matrix are not distributable,
// so this package substitutes synthetic analogues of matching order: random
// geometric finite-element-style meshes for the structural matrices and a
// normal-equations (B·Bᵀ) pattern for the LP matrix. See DESIGN.md for the
// substitution rationale.
//
// All generators return symmetric positive definite matrices: off-diagonal
// entries are negative and each diagonal entry exceeds the sum of absolute
// off-diagonal entries in its row (strict diagonal dominance).
package gen

import (
	"fmt"
	"math"
	"sort"

	"blockfanout/internal/sparse"
)

// rng is a small deterministic PRNG (xorshift64*), so that generated
// benchmark matrices are reproducible across runs and platforms without
// depending on math/rand's global state.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &rng{s: seed}
}

func (r *rng) next() uint64 {
	r.s ^= r.s >> 12
	r.s ^= r.s << 25
	r.s ^= r.s >> 27
	return r.s * 0x2545f4914f6cdd1d
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0,n).
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Dense returns a dense n×n SPD matrix (every lower-triangle entry stored).
func Dense(n int) *sparse.Matrix {
	nnz := n * (n + 1) / 2
	m := &sparse.Matrix{
		N:      n,
		ColPtr: make([]int, n+1),
		RowInd: make([]int, 0, nnz),
		Val:    make([]float64, 0, nnz),
	}
	r := newRNG(uint64(n)*2654435761 + 1)
	for j := 0; j < n; j++ {
		m.ColPtr[j] = len(m.RowInd)
		m.RowInd = append(m.RowInd, j)
		m.Val = append(m.Val, float64(n)+1) // diagonal, strictly dominant
		for i := j + 1; i < n; i++ {
			m.RowInd = append(m.RowInd, i)
			m.Val = append(m.Val, -0.25-0.5*r.float64())
		}
	}
	m.ColPtr[n] = len(m.RowInd)
	return m
}

// laplacianFromEdges assembles the SPD graph-Laplacian-plus-identity of the
// given undirected edge set: A(i,i) = degree(i)+1, A(i,j) = -1 for edges.
func laplacianFromEdges(n int, edges [][2]int) *sparse.Matrix {
	// Count per-column lower-triangle entries (diag + edges with i>j).
	deg := make([]int, n)
	cnt := make([]int, n+1)
	for j := 0; j < n; j++ {
		cnt[j+1] = 1 // diagonal
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		deg[a]++
		deg[b]++
		if a < b {
			a, b = b, a
		}
		cnt[b+1]++ // entry (a,b) with a>b stored in column b
	}
	for j := 0; j < n; j++ {
		cnt[j+1] += cnt[j]
	}
	m := &sparse.Matrix{
		N:      n,
		ColPtr: cnt,
		RowInd: make([]int, cnt[n]),
		Val:    make([]float64, cnt[n]),
	}
	next := make([]int, n)
	for j := 0; j < n; j++ {
		p := m.ColPtr[j]
		m.RowInd[p] = j
		m.Val[p] = float64(deg[j]) + 1
		next[j] = p + 1
	}
	for _, e := range edges {
		a, b := e[0], e[1]
		if a < b {
			a, b = b, a
		}
		p := next[b]
		next[b]++
		m.RowInd[p] = a
		m.Val[p] = -1
	}
	for j := 0; j < n; j++ {
		lo, hi := m.ColPtr[j], m.ColPtr[j+1]
		sortRowVal(m.RowInd[lo:hi], m.Val[lo:hi])
	}
	return m
}

func sortRowVal(rows []int, vals []float64) {
	sort.Sort(&rowValPairs{rows, vals})
}

type rowValPairs struct {
	rows []int
	vals []float64
}

func (s *rowValPairs) Len() int           { return len(s.rows) }
func (s *rowValPairs) Less(i, j int) bool { return s.rows[i] < s.rows[j] }
func (s *rowValPairs) Swap(i, j int) {
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
	s.vals[i], s.vals[j] = s.vals[j], s.vals[i]
}

// Grid2D returns the 5-point Laplacian (plus identity) on a k×k grid.
// Vertex (x,y) has index x*k+y.
func Grid2D(k int) *sparse.Matrix {
	n := k * k
	edges := make([][2]int, 0, 2*k*(k-1))
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			v := x*k + y
			if y+1 < k {
				edges = append(edges, [2]int{v, v + 1})
			}
			if x+1 < k {
				edges = append(edges, [2]int{v, v + k})
			}
		}
	}
	return laplacianFromEdges(n, edges)
}

// Cube3D returns the 7-point Laplacian (plus identity) on a k×k×k grid.
// Vertex (x,y,z) has index (x*k+y)*k+z.
func Cube3D(k int) *sparse.Matrix {
	n := k * k * k
	edges := make([][2]int, 0, 3*k*k*(k-1))
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			for z := 0; z < k; z++ {
				v := (x*k+y)*k + z
				if z+1 < k {
					edges = append(edges, [2]int{v, v + 1})
				}
				if y+1 < k {
					edges = append(edges, [2]int{v, v + k})
				}
				if x+1 < k {
					edges = append(edges, [2]int{v, v + k*k})
				}
			}
		}
	}
	return laplacianFromEdges(n, edges)
}

// IrregularMesh returns an SPD matrix whose graph is a random geometric
// k-nearest-neighbour mesh on n points in the unit cube (dim 2 or 3). It is
// the stand-in for the Harwell-Boeing structural matrices: irregular,
// locally clustered sparsity with supernodes of widely varying size after a
// fill-reducing ordering.
func IrregularMesh(n, k, dim int, seed uint64) *sparse.Matrix {
	if dim != 2 && dim != 3 {
		panic(fmt.Sprintf("gen: IrregularMesh dim=%d (want 2 or 3)", dim))
	}
	r := newRNG(seed)
	pts := make([][3]float64, n)
	for i := range pts {
		pts[i][0] = r.float64()
		pts[i][1] = r.float64()
		if dim == 3 {
			pts[i][2] = r.float64()
		}
	}
	// Spatial hash grid: cell side chosen so a cell holds ~2k points.
	cells := int(math.Max(1, math.Floor(math.Pow(float64(n)/float64(2*k), 1.0/float64(dim)))))
	cellOf := func(p [3]float64) int {
		cx := int(p[0] * float64(cells))
		cy := int(p[1] * float64(cells))
		cz := 0
		if dim == 3 {
			cz = int(p[2] * float64(cells))
		}
		clamp := func(v int) int {
			if v < 0 {
				return 0
			}
			if v >= cells {
				return cells - 1
			}
			return v
		}
		return (clamp(cx)*cells+clamp(cy))*cells + clamp(cz)
	}
	ncell := cells * cells
	if dim == 3 {
		ncell *= cells
	} else {
		// 2-D uses z-cell 0 only but keep addressing uniform.
		ncell = cells * cells * cells
	}
	bucket := make([][]int, ncell)
	for i, p := range pts {
		c := cellOf(p)
		bucket[c] = append(bucket[c], i)
	}
	dist2 := func(a, b [3]float64) float64 {
		dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
		return dx*dx + dy*dy + dz*dz
	}
	type cand struct {
		idx int
		d2  float64
	}
	edgeSet := make(map[[2]int]struct{}, n*k)
	cand2 := make([]cand, 0, 8*k)
	for i, p := range pts {
		cand2 = cand2[:0]
		cx := int(p[0] * float64(cells))
		cy := int(p[1] * float64(cells))
		cz := 0
		if dim == 3 {
			cz = int(p[2] * float64(cells))
		}
		// Expand the search ring until enough candidates are found.
		for ring := 1; ; ring++ {
			cand2 = cand2[:0]
			zlo, zhi := 0, 0
			if dim == 3 {
				zlo, zhi = cz-ring, cz+ring
			}
			for x := cx - ring; x <= cx+ring; x++ {
				if x < 0 || x >= cells {
					continue
				}
				for y := cy - ring; y <= cy+ring; y++ {
					if y < 0 || y >= cells {
						continue
					}
					for z := zlo; z <= zhi; z++ {
						if z < 0 || z >= cells {
							continue
						}
						for _, j := range bucket[(x*cells+y)*cells+z] {
							if j != i {
								cand2 = append(cand2, cand{j, dist2(p, pts[j])})
							}
						}
					}
				}
			}
			if len(cand2) >= k || ring > cells {
				break
			}
		}
		sort.Slice(cand2, func(a, b int) bool { return cand2[a].d2 < cand2[b].d2 })
		kk := k
		if kk > len(cand2) {
			kk = len(cand2)
		}
		for _, c := range cand2[:kk] {
			a, b := i, c.idx
			if a > b {
				a, b = b, a
			}
			edgeSet[[2]int{a, b}] = struct{}{}
		}
	}
	edges := make([][2]int, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return laplacianFromEdges(n, edges)
}

// NormalEq returns an SPD matrix with the sparsity pattern of B·Bᵀ where B
// is a random m×(colsPerRow·m) sparse constraint matrix with nzPerCol
// entries per column plus a small number of denser columns. This mimics the
// normal-equations matrices arising in interior-point LP solvers (the
// paper's 10FLEET matrix).
func NormalEq(m, nzPerCol, denseCols, denseLen int, seed uint64) *sparse.Matrix {
	r := newRNG(seed)
	ncols := 3 * m
	edgeSet := make(map[[2]int]struct{}, m*nzPerCol*nzPerCol)
	rowsBuf := make([]int, 0, denseLen)
	addClique := func(rows []int) {
		for a := 0; a < len(rows); a++ {
			for b := a + 1; b < len(rows); b++ {
				x, y := rows[a], rows[b]
				if x == y {
					continue
				}
				if x > y {
					x, y = y, x
				}
				edgeSet[[2]int{x, y}] = struct{}{}
			}
		}
	}
	for c := 0; c < ncols; c++ {
		rowsBuf = rowsBuf[:0]
		// Cluster the column's rows: pick a base row, then nearby rows.
		// Locality keeps fill realistic (pure uniform random rows would
		// make the factor nearly dense).
		base := r.intn(m)
		span := 2 + r.intn(m/50+2)
		for t := 0; t < nzPerCol; t++ {
			row := base + r.intn(2*span+1) - span
			if row < 0 {
				row = 0
			}
			if row >= m {
				row = m - 1
			}
			rowsBuf = append(rowsBuf, row)
		}
		addClique(rowsBuf)
	}
	for c := 0; c < denseCols; c++ {
		rowsBuf = rowsBuf[:0]
		for t := 0; t < denseLen; t++ {
			rowsBuf = append(rowsBuf, r.intn(m))
		}
		addClique(rowsBuf)
	}
	edges := make([][2]int, 0, len(edgeSet))
	for e := range edgeSet {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a][0] != edges[b][0] {
			return edges[a][0] < edges[b][0]
		}
		return edges[a][1] < edges[b][1]
	})
	return laplacianFromEdges(m, edges)
}

// Grid2D9 returns the 9-point Laplacian (plus identity) on a k×k grid:
// the 5-point stencil plus diagonal neighbours, a denser model problem
// whose factors have larger supernodes for the same n.
func Grid2D9(k int) *sparse.Matrix {
	n := k * k
	edges := make([][2]int, 0, 4*k*(k-1))
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			v := x*k + y
			if y+1 < k {
				edges = append(edges, [2]int{v, v + 1})
			}
			if x+1 < k {
				edges = append(edges, [2]int{v, v + k})
				if y+1 < k {
					edges = append(edges, [2]int{v, v + k + 1})
				}
				if y > 0 {
					edges = append(edges, [2]int{v, v + k - 1})
				}
			}
		}
	}
	return laplacianFromEdges(n, edges)
}

// GridAniso returns an anisotropic 5-point operator on a k×k grid: x-edges
// carry weight −1 and y-edges −eps. Strong anisotropy (eps ≪ 1) produces
// the long, thin elimination structures that stress orderings.
func GridAniso(k int, eps float64) *sparse.Matrix {
	n := k * k
	var ts []sparse.Triplet
	diag := make([]float64, n)
	addEdge := func(a, b int, wgt float64) {
		ts = append(ts, sparse.Triplet{Row: b, Col: a, Val: -wgt})
		diag[a] += wgt
		diag[b] += wgt
	}
	for x := 0; x < k; x++ {
		for y := 0; y < k; y++ {
			v := x*k + y
			if y+1 < k {
				addEdge(v, v+1, eps)
			}
			if x+1 < k {
				addEdge(v, v+k, 1)
			}
		}
	}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: diag[i] + 1})
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		panic(err) // construction is internally consistent
	}
	return m
}
