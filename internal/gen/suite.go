package gen

import (
	"fmt"

	"blockfanout/internal/sparse"
)

// OrderingHint tells the planner which fill-reducing ordering the paper
// applied to a benchmark problem.
type OrderingHint int

const (
	// HintNone: the matrix is dense; no reordering is useful.
	HintNone OrderingHint = iota
	// HintNDGrid2D: geometric nested dissection on a k×k grid.
	HintNDGrid2D
	// HintNDCube3D: geometric nested dissection on a k×k×k grid.
	HintNDCube3D
	// HintMinDeg: multiple minimum degree (irregular problems).
	HintMinDeg
)

func (h OrderingHint) String() string {
	switch h {
	case HintNone:
		return "natural"
	case HintNDGrid2D:
		return "nested-dissection-2d"
	case HintNDCube3D:
		return "nested-dissection-3d"
	case HintMinDeg:
		return "minimum-degree"
	}
	return fmt.Sprintf("OrderingHint(%d)", int(h))
}

// Problem is one benchmark matrix: a name (the paper's name, with synthetic
// analogues keeping the original name for cross-referencing), a lazily
// built matrix, and the ordering the paper used for it.
type Problem struct {
	Name     string
	Hint     OrderingHint
	GridDim  int // k for grid/cube problems (0 otherwise)
	Build    func() *sparse.Matrix
	Analogue bool // true when the matrix is a synthetic stand-in
}

// Scale selects between the paper's matrix sizes and a reduced CI-friendly
// suite with identical structure.
type Scale int

const (
	// ScalePaper builds the paper's matrix sizes (minutes of CPU).
	ScalePaper Scale = iota
	// ScaleCI builds structurally identical but much smaller matrices
	// (seconds of CPU); the default for tests and benchmarks.
	ScaleCI
)

// Table1Suite returns the ten benchmark matrices of the paper's Table 1, in
// the paper's order:
//
//	DENSE1024, DENSE2048, GRID150, GRID300, CUBE30, CUBE35,
//	BCSSTK15, BCSSTK29, BCSSTK31, BCSSTK33
//
// The BCSSTK matrices are synthetic random-mesh analogues of the same
// order (see package comment).
func Table1Suite(s Scale) []Problem {
	if s == ScaleCI {
		return []Problem{
			{Name: "DENSE1024", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(192) }},
			{Name: "DENSE2048", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(256) }},
			{Name: "GRID150", Hint: HintNDGrid2D, GridDim: 40, Build: func() *sparse.Matrix { return Grid2D(40) }},
			{Name: "GRID300", Hint: HintNDGrid2D, GridDim: 56, Build: func() *sparse.Matrix { return Grid2D(56) }},
			{Name: "CUBE30", Hint: HintNDCube3D, GridDim: 11, Build: func() *sparse.Matrix { return Cube3D(11) }},
			{Name: "CUBE35", Hint: HintNDCube3D, GridDim: 13, Build: func() *sparse.Matrix { return Cube3D(13) }},
			{Name: "BCSSTK15", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(900, 9, 3, 15) }},
			{Name: "BCSSTK29", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(1400, 8, 3, 29) }},
			{Name: "BCSSTK31", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(2200, 9, 3, 31) }},
			{Name: "BCSSTK33", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(1100, 12, 3, 33) }},
		}
	}
	return []Problem{
		{Name: "DENSE1024", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(1024) }},
		{Name: "DENSE2048", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(2048) }},
		{Name: "GRID150", Hint: HintNDGrid2D, GridDim: 150, Build: func() *sparse.Matrix { return Grid2D(150) }},
		{Name: "GRID300", Hint: HintNDGrid2D, GridDim: 300, Build: func() *sparse.Matrix { return Grid2D(300) }},
		{Name: "CUBE30", Hint: HintNDCube3D, GridDim: 30, Build: func() *sparse.Matrix { return Cube3D(30) }},
		{Name: "CUBE35", Hint: HintNDCube3D, GridDim: 35, Build: func() *sparse.Matrix { return Cube3D(35) }},
		{Name: "BCSSTK15", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(3948, 16, 3, 15) }},
		{Name: "BCSSTK29", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(13992, 8, 3, 29) }},
		{Name: "BCSSTK31", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(35588, 7, 3, 31) }},
		{Name: "BCSSTK33", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(8738, 16, 3, 33) }},
	}
}

// Table6Suite returns the paper's larger benchmark set (Table 6):
// DENSE4096, CUBE40, COPTER2, 10FLEET. COPTER2 and 10FLEET are synthetic
// analogues (random mesh and LP normal equations respectively).
func Table6Suite(s Scale) []Problem {
	if s == ScaleCI {
		return []Problem{
			{Name: "DENSE4096", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(320) }},
			{Name: "CUBE40", Hint: HintNDCube3D, GridDim: 14, Build: func() *sparse.Matrix { return Cube3D(14) }},
			{Name: "COPTER2", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(2600, 8, 3, 57) }},
			{Name: "10FLEET", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return NormalEq(700, 5, 6, 24, 10) }},
		}
	}
	return []Problem{
		{Name: "DENSE4096", Hint: HintNone, Build: func() *sparse.Matrix { return Dense(4096) }},
		{Name: "CUBE40", Hint: HintNDCube3D, GridDim: 40, Build: func() *sparse.Matrix { return Cube3D(40) }},
		{Name: "COPTER2", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return IrregularMesh(55476, 8, 3, 57) }},
		{Name: "10FLEET", Hint: HintMinDeg, Analogue: true, Build: func() *sparse.Matrix { return NormalEq(11222, 5, 24, 48, 10) }},
	}
}

// Table7Suite returns the six matrices of the paper's Table 7: the Table 6
// set plus CUBE35 and BCSSTK31 from Table 1, in the paper's row order.
func Table7Suite(s Scale) []Problem {
	t1 := Table1Suite(s)
	t6 := Table6Suite(s)
	return []Problem{
		t1[5], // CUBE35
		t6[1], // CUBE40
		t6[0], // DENSE4096
		t1[8], // BCSSTK31
		t6[2], // COPTER2
		t6[3], // 10FLEET
	}
}

// ByName looks a problem up in the given suite; ok reports whether found.
func ByName(suite []Problem, name string) (Problem, bool) {
	for _, p := range suite {
		if p.Name == name {
			return p, true
		}
	}
	return Problem{}, false
}
