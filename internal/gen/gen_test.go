package gen

import (
	"testing"
	"testing/quick"
)

func TestDense(t *testing.T) {
	m := Dense(10)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 55 {
		t.Fatalf("nnz=%d, want 55", m.NNZ())
	}
	// Strict diagonal dominance → SPD.
	for j := 0; j < m.N; j++ {
		if m.Val[m.ColPtr[j]] <= float64(m.N) {
			t.Fatalf("diagonal %d not dominant", j)
		}
	}
}

func TestGrid2DStructure(t *testing.T) {
	k := 5
	m := Grid2D(k)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != k*k {
		t.Fatalf("n=%d", m.N)
	}
	// 5-point stencil: edges = 2k(k-1); nnz lower = n + edges.
	wantNNZ := k*k + 2*k*(k-1)
	if m.NNZ() != wantNNZ {
		t.Fatalf("nnz=%d, want %d", m.NNZ(), wantNNZ)
	}
	// Interior vertex degree 4, corner degree 2: check diagonal values
	// (degree+1).
	if got := m.At(0, 0); got != 3 {
		t.Fatalf("corner diag=%g, want 3", got)
	}
	center := (k/2)*k + k/2
	if got := m.At(center, center); got != 5 {
		t.Fatalf("center diag=%g, want 5", got)
	}
	// Neighbours are adjacent.
	if got := m.At(0, 1); got != -1 {
		t.Fatalf("edge (0,1)=%g", got)
	}
	if got := m.At(0, k); got != -1 {
		t.Fatalf("edge (0,k)=%g", got)
	}
	if got := m.At(0, 2); got != 0 {
		t.Fatalf("non-edge (0,2)=%g", got)
	}
}

func TestCube3DStructure(t *testing.T) {
	k := 4
	m := Cube3D(k)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != k*k*k {
		t.Fatalf("n=%d", m.N)
	}
	wantNNZ := k*k*k + 3*k*k*(k-1)
	if m.NNZ() != wantNNZ {
		t.Fatalf("nnz=%d, want %d", m.NNZ(), wantNNZ)
	}
	if got := m.At(0, 0); got != 4 {
		t.Fatalf("corner diag=%g, want 4 (degree 3 + 1)", got)
	}
}

func TestIrregularMesh(t *testing.T) {
	m := IrregularMesh(300, 6, 3, 42)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 300 {
		t.Fatalf("n=%d", m.N)
	}
	// kNN graph: each vertex has at least k neighbours (sym closure can
	// add more), so nnz lower ≥ n + n·k/2.
	if m.NNZ() < 300+300*6/2 {
		t.Fatalf("nnz=%d suspiciously low", m.NNZ())
	}
	// Deterministic for a fixed seed.
	m2 := IrregularMesh(300, 6, 3, 42)
	if m2.NNZ() != m.NNZ() {
		t.Fatal("generator is not deterministic")
	}
	// Different seeds give different graphs.
	m3 := IrregularMesh(300, 6, 3, 43)
	same := m3.NNZ() == m.NNZ()
	if same {
		for p := range m.RowInd {
			if m.RowInd[p] != m3.RowInd[p] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestIrregularMesh2D(t *testing.T) {
	m := IrregularMesh(200, 5, 2, 7)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIrregularMeshBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for dim=4")
		}
	}()
	IrregularMesh(10, 3, 4, 1)
}

func TestNormalEq(t *testing.T) {
	m := NormalEq(150, 4, 3, 12, 9)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.N != 150 {
		t.Fatalf("n=%d", m.N)
	}
	if m.NNZ() <= 150 {
		t.Fatal("no off-diagonal structure generated")
	}
}

func TestLaplaciansAreDiagonallyDominant(t *testing.T) {
	for name, m := range map[string]any{
		"grid": Grid2D(6), "cube": Cube3D(3),
		"mesh": IrregularMesh(120, 4, 3, 5), "lp": NormalEq(80, 3, 2, 8, 3),
	} {
		mm := m.(interface {
			Dense() [][]float64
		})
		d := mm.Dense()
		for i := range d {
			sum := 0.0
			for j := range d[i] {
				if i != j {
					if d[i][j] > 0 {
						t.Fatalf("%s: positive off-diagonal at (%d,%d)", name, i, j)
					}
					sum += -d[i][j]
				}
			}
			if d[i][i] <= sum {
				t.Fatalf("%s: row %d not strictly dominant (%g vs %g)", name, i, d[i][i], sum)
			}
		}
	}
}

func TestSuitesComplete(t *testing.T) {
	for _, scale := range []Scale{ScaleCI, ScalePaper} {
		t1 := Table1Suite(scale)
		if len(t1) != 10 {
			t.Fatalf("Table1Suite: %d problems, want 10", len(t1))
		}
		t6 := Table6Suite(scale)
		if len(t6) != 4 {
			t.Fatalf("Table6Suite: %d problems, want 4", len(t6))
		}
		t7 := Table7Suite(scale)
		if len(t7) != 6 {
			t.Fatalf("Table7Suite: %d problems, want 6", len(t7))
		}
		wantOrder := []string{"CUBE35", "CUBE40", "DENSE4096", "BCSSTK31", "COPTER2", "10FLEET"}
		for i, p := range t7 {
			if p.Name != wantOrder[i] {
				t.Fatalf("Table7Suite[%d]=%s, want %s", i, p.Name, wantOrder[i])
			}
		}
	}
	// CI suite builds quickly and validates.
	for _, p := range Table1Suite(ScaleCI) {
		m := p.Build()
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if p.Hint == HintNDGrid2D && p.GridDim*p.GridDim != m.N {
			t.Fatalf("%s: grid dim mismatch", p.Name)
		}
		if p.Hint == HintNDCube3D && p.GridDim*p.GridDim*p.GridDim != m.N {
			t.Fatalf("%s: cube dim mismatch", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	suite := Table1Suite(ScaleCI)
	if _, ok := ByName(suite, "GRID150"); !ok {
		t.Fatal("GRID150 not found")
	}
	if _, ok := ByName(suite, "NOPE"); ok {
		t.Fatal("found nonexistent problem")
	}
}

func TestOrderingHintString(t *testing.T) {
	for h, want := range map[OrderingHint]string{
		HintNone: "natural", HintNDGrid2D: "nested-dissection-2d",
		HintNDCube3D: "nested-dissection-3d", HintMinDeg: "minimum-degree",
	} {
		if h.String() != want {
			t.Fatalf("%d → %q, want %q", h, h.String(), want)
		}
	}
}

// Property: rng stream is deterministic and (crudely) uniform in [0,1).
func TestQuickRNG(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := newRNG(seed), newRNG(seed)
		for i := 0; i < 16; i++ {
			x, y := a.float64(), b.float64()
			if x != y || x < 0 || x >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGrid2D9(t *testing.T) {
	k := 6
	m := Grid2D9(k)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Interior vertex has degree 8 → diagonal 9.
	center := (k/2)*k + k/2
	if got := m.At(center, center); got != 9 {
		t.Fatalf("center diag %g, want 9", got)
	}
	// Diagonal neighbour connected.
	if got := m.At(0, k+1); got != -1 {
		t.Fatalf("diagonal edge (0,%d)=%g", k+1, got)
	}
	// 9-point has more edges than 5-point on the same grid.
	if m.NNZ() <= Grid2D(k).NNZ() {
		t.Fatal("9-point not denser than 5-point")
	}
}

func TestGridAniso(t *testing.T) {
	m := GridAniso(7, 0.01)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// x-edge weight -1, y-edge weight -eps.
	if got := m.At(0, 7); got != -1 {
		t.Fatalf("x edge %g", got)
	}
	if got := m.At(0, 1); got != -0.01 {
		t.Fatalf("y edge %g", got)
	}
	// Still SPD (diagonally dominant) — factor it.
	d := m.Dense()
	for i := range d {
		sum := 0.0
		for j := range d[i] {
			if i != j {
				sum += -d[i][j]
			}
		}
		if d[i][i] <= sum {
			t.Fatalf("row %d not dominant", i)
		}
	}
}
