package cluster

import (
	"context"
	"sync/atomic"
	"time"

	"blockfanout/internal/cluster/wire"
	"blockfanout/internal/store"
)

// This file is the node's durability and self-defense layer: write-behind
// held-block checkpoints, snapshot-seeded rejoin, and the stall watchdog
// that turns a silent wedge (dropped peer frames, a partitioned sender)
// into a transient epoch failure the gateway can retry.

// snapshotWriter is the single goroutine draining the node's write-behind
// checkpoint queue; epoch completion never waits on the filesystem.
func (n *Node) snapshotWriter() {
	defer n.wg.Done()
	put := func(bs *store.BlockSnapshot) {
		if err := n.st.PutBlocks(bs); err != nil {
			n.cfg.Logf("cluster node %s: job %s: block snapshot write: %v", n.cfg.ID, bs.JobID, err)
		}
	}
	for {
		select {
		case bs := <-n.snapCh:
			put(bs)
		case <-n.ctx.Done():
			for {
				select {
				case bs := <-n.snapCh:
					put(bs)
				default:
					return
				}
			}
		}
	}
}

// saveBlocks queues a checkpoint of the blocks this node computed under
// sj's mapping. Write-behind: a full queue drops the checkpoint (the next
// successful epoch re-cuts it) rather than stalling the Done report.
func (n *Node) saveBlocks(j *nodeJob, sj *wire.StartJob) {
	if n.st == nil {
		return
	}
	j.mu.Lock()
	if j.runID != sj.RunID || j.epoch != sj.Epoch {
		j.mu.Unlock()
		return // a newer epoch started; its own completion will checkpoint
	}
	bs := &store.BlockSnapshot{
		JobID: j.id, RunID: j.runID, Epoch: j.epoch,
		ValSum: store.ValChecksum(j.pav),
	}
	for id := int32(0); int(id) < j.pr.NBlocks; id++ {
		if !j.local[id] || !j.haveData[id] {
			continue
		}
		col, bi := j.pr.ColOf[id], j.pr.IdxOf[id]
		src := j.nf.Data[col][bi]
		bs.IDs = append(bs.IDs, uint32(id))
		bs.Blocks = append(bs.Blocks, append([]float64(nil), src...))
	}
	j.mu.Unlock()
	if len(bs.IDs) == 0 {
		return
	}
	select {
	case n.snapCh <- bs:
	default:
		n.cfg.Logf("cluster node %s: job %s: block snapshot dropped (queue full)", n.cfg.ID, j.id)
	}
}

// restoreBlocksLocked seeds a fresh run from this node's held-block
// snapshot when one exists and fingerprints the same numerics. The value
// checksum, not the run ID, is the correctness guard: a restarted node
// gets a fresh run ID for the same values, while a refactor with new
// values must never be seeded from old blocks. Caller holds j.mu and has
// just Reloaded j.pav.
func (j *nodeJob) restoreBlocksLocked(n *Node) {
	if n.st == nil {
		return
	}
	bs, err := n.st.GetBlocks(j.id)
	if err != nil || bs == nil {
		return // missing or quarantined: cold start
	}
	if bs.ValSum != store.ValChecksum(j.pav) || len(bs.IDs) != len(bs.Blocks) {
		return
	}
	restored := 0
	for k, id := range bs.IDs {
		if int(id) >= j.pr.NBlocks || j.haveData[id] {
			continue
		}
		col, bi := j.pr.ColOf[id], j.pr.IdxOf[id]
		dst := j.nf.Data[col][bi]
		if len(bs.Blocks[k]) != len(dst) {
			continue
		}
		copy(dst, bs.Blocks[k])
		j.haveData[id] = true
		j.nHave++
		restored++
	}
	if restored > 0 {
		n.restored.Add(uint64(restored))
		n.cfg.Logf("cluster node %s: job %s: restored %d held blocks from snapshot", n.cfg.ID, j.id, restored)
	}
}

// startStallWatch cancels the epoch when job progress (blocks held, from
// local completions and peer deliveries alike) freezes for StallTimeout,
// and returns the flag runEpoch checks to turn that cancellation into a
// transient Done instead of a silent abort. Nil when disabled.
func (n *Node) startStallWatch(ctx context.Context, cancel context.CancelFunc, j *nodeJob) *atomic.Bool {
	if n.cfg.StallTimeout <= 0 {
		return nil
	}
	flag := &atomic.Bool{}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		tick := n.cfg.StallTimeout / 4
		if tick <= 0 {
			tick = n.cfg.StallTimeout
		}
		t := time.NewTicker(tick)
		defer t.Stop()
		last, lastAt := -1, time.Now()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				j.mu.Lock()
				have, total := j.nHave, j.pr.NBlocks
				j.mu.Unlock()
				if have >= total {
					return // complete; nothing left to stall on
				}
				if have != last {
					last, lastAt = have, time.Now()
					continue
				}
				if time.Since(lastAt) >= n.cfg.StallTimeout {
					flag.Store(true)
					cancel()
					return
				}
			}
		}
	}()
	return flag
}
