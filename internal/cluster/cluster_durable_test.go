package cluster

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
)

// fetchHealth reads /healthz without asserting the status code.
func (tc *testCluster) fetchHealth(t *testing.T) (gwHealth, int) {
	t.Helper()
	resp, err := http.Get(tc.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h gwHealth
	json.NewDecoder(resp.Body).Decode(&h)
	return h, resp.StatusCode
}

func (tc *testCluster) fetchClusterMetrics(t *testing.T) gwMetricsDoc {
	t.Helper()
	resp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc gwMetricsDoc
	json.NewDecoder(resp.Body).Decode(&doc)
	return doc
}

// waitStatus polls /healthz until the fleet status matches.
func (tc *testCluster) waitStatus(t *testing.T, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	last := ""
	for time.Now().Before(deadline) {
		h, _ := tc.fetchHealth(t)
		last = h.Status
		if last == want {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("fleet status stuck at %q, want %q", last, want)
}

func scaleDiag(m *sparse.Matrix, by float64) *sparse.Matrix {
	m2 := &sparse.Matrix{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: append([]float64(nil), m.Val...)}
	for j := 0; j < m2.N; j++ {
		m2.Val[m2.ColPtr[j]] *= by
	}
	return m2
}

// TestClusterDegradedLocalFallbackAndRecovery is the all-nodes-down e2e:
// with the whole fleet gone the gateway keeps serving — factorizations run
// locally and are flagged degraded, /healthz answers 200 "degraded" (a
// degraded gateway must not be pulled from the load balancer: it is the
// only thing still serving) — and when fresh nodes join, the next factor
// runs distributed again with no operator intervention.
func TestClusterDegradedLocalFallbackAndRecovery(t *testing.T) {
	gcfg := GatewayConfig{Procs: 4, HeartbeatTimeout: 3 * time.Second}
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "n0", Workers: 2},
		{ID: "n1", Workers: 2},
	})
	m := gen.IrregularMesh(400, 7, 3, 9)
	fr := tc.factor(t, m)
	if fr.Degraded || fr.Nodes != 2 {
		t.Fatalf("healthy-fleet factor: degraded=%v nodes=%d", fr.Degraded, fr.Nodes)
	}

	// Fail-stop the whole fleet.
	tc.cancels[0]()
	tc.cancels[1]()
	tc.waitStatus(t, "degraded")
	if _, code := tc.fetchHealth(t); code != http.StatusOK {
		t.Fatalf("degraded /healthz returned %d, want 200", code)
	}

	// Same pattern, new values: the gateway must factor locally and say so.
	m2 := scaleDiag(m, 2)
	fr2 := tc.factor(t, m2)
	if !fr2.Degraded {
		t.Fatal("all-nodes-down factor not flagged degraded")
	}
	if fr2.Nodes != 0 || fr2.Primary != "local" {
		t.Fatalf("degraded factor reports nodes=%d primary=%q", fr2.Nodes, fr2.Primary)
	}
	if !fr2.CacheHit {
		t.Fatal("degraded refactor missed the plan cache")
	}
	b := make([]float64, m2.N)
	for i := range b {
		b[i] = float64(1 + i%4)
	}
	x := tc.solve(t, fr2.ID, b)
	if r := m2.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("degraded solve residual %g", r)
	}
	doc := tc.fetchClusterMetrics(t)
	if doc.Status != "degraded" || doc.LocalFactors != 1 || doc.LocalSolves != 1 {
		t.Fatalf("degraded metrics: status=%q local_factors=%d local_solves=%d",
			doc.Status, doc.LocalFactors, doc.LocalSolves)
	}

	// Recovery: two replacement nodes join; the next factor is distributed
	// again and the degraded local factor is retired.
	tc.addNode(t, NodeConfig{ID: "r0", Workers: 2, Logf: quietLog})
	tc.addNode(t, NodeConfig{ID: "r1", Workers: 2, Logf: quietLog})
	tc.waitNodes(t, 2)
	m3 := scaleDiag(m, 3)
	fr3 := tc.factor(t, m3)
	if fr3.Degraded || fr3.Nodes != 2 {
		t.Fatalf("post-recovery factor: degraded=%v nodes=%d", fr3.Degraded, fr3.Nodes)
	}
	tc.verifyAssembled(t, fr3.ID, fr3.Primary, m3, testOpts(gcfg), 1e-12)
	x = tc.solve(t, fr3.ID, b)
	if r := m3.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("post-recovery solve residual %g", r)
	}
}

// TestClusterNodeRejoinFromSnapshot kills a worker that checkpointed its
// held blocks, restarts it on the same store directory, and refactors the
// same values: the rejoined node must seed its slice from the snapshot
// (restored counter moves) and the assembled factor must still match the
// sequential one to 1e-12.
func TestClusterNodeRejoinFromSnapshot(t *testing.T) {
	dirA := t.TempDir()
	gcfg := GatewayConfig{Procs: 4, HeartbeatTimeout: 3 * time.Second}
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "a", Workers: 2, StoreDir: dirA},
		{ID: "b", Workers: 2},
	})
	m := gen.IrregularMesh(600, 8, 3, 11)
	fr := tc.factor(t, m)

	// The checkpoint is write-behind; wait for it to land on disk.
	st, err := store.Open(dirA)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := st.GetBlocks(fr.ID); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node a never checkpointed its held blocks")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Fail-stop node a and wait for the gateway to notice.
	tc.cancels[0]()
	waitDead := time.Now().Add(10 * time.Second)
	for {
		h, _ := tc.fetchHealth(t)
		aliveA := false
		for _, nd := range h.Nodes {
			if nd.ID == "a" && nd.Alive {
				aliveA = true
			}
		}
		if !aliveA {
			break
		}
		if time.Now().After(waitDead) {
			t.Fatal("gateway never marked node a dead")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Restart it on the same store directory and refactor the same values:
	// the fresh process must warm its slice from the held-block snapshot.
	reborn := tc.addNode(t, NodeConfig{ID: "a", Workers: 2, StoreDir: dirA, Logf: quietLog})
	tc.waitNodes(t, 2)
	fr2 := tc.factor(t, m)
	if fr2.ID != fr.ID {
		t.Fatalf("pattern id changed across restart: %s vs %s", fr.ID, fr2.ID)
	}
	if fr2.Nodes != 2 {
		t.Fatalf("rejoin factor ran on %d nodes, want 2", fr2.Nodes)
	}
	if reborn.restored.Load() == 0 {
		t.Fatal("restarted node restored no blocks from its snapshot")
	}
	tc.verifyAssembled(t, fr2.ID, fr2.Primary, m, testOpts(gcfg), 1e-12)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(1 + i%6)
	}
	x := tc.solve(t, fr2.ID, b)
	if r := m.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("post-rejoin solve residual %g", r)
	}
}
