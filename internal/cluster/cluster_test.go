package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

// testCluster is an in-process gateway + N real TCP nodes on localhost.
type testCluster struct {
	gw      *Gateway
	ts      *httptest.Server
	addr    string // gateway control-plane address
	ctx     context.Context
	nodes   []*Node
	cancels []context.CancelFunc
	cancel  context.CancelFunc
}

func quietLog(string, ...any) {}

func startCluster(t *testing.T, gcfg GatewayConfig, nodeCfgs []NodeConfig) *testCluster {
	t.Helper()
	if gcfg.Logf == nil {
		gcfg.Logf = quietLog
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(gcfg)
	ctx, cancel := context.WithCancel(context.Background())
	go gw.Serve(ctx, ln)

	tc := &testCluster{gw: gw, addr: ln.Addr().String(), ctx: ctx, cancel: cancel}
	for i := range nodeCfgs {
		tc.addNode(t, nodeCfgs[i])
	}
	tc.ts = httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		tc.ts.Close()
		cancel()
	})
	tc.waitNodes(t, len(nodeCfgs))
	return tc
}

// addNode starts one more worker against the cluster's gateway; used by
// the restart/rejoin tests. The returned node is also appended to
// tc.nodes and tc.cancels.
func (tc *testCluster) addNode(t *testing.T, cfg NodeConfig) *Node {
	t.Helper()
	cfg.Gateway = tc.addr
	if cfg.Logf == nil {
		cfg.Logf = quietLog
	}
	// CI points this at an artifact directory to collect per-epoch
	// trace-event timelines from every node.
	if dir := os.Getenv("CLUSTER_TRACE_DIR"); dir != "" {
		cfg.TraceDir = dir
	}
	n := NewNode(cfg)
	nctx, ncancel := context.WithCancel(tc.ctx)
	go n.Run(nctx)
	tc.nodes = append(tc.nodes, n)
	tc.cancels = append(tc.cancels, ncancel)
	return n
}

// waitNodes polls /healthz until n nodes report alive.
func (tc *testCluster) waitNodes(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var h gwHealth
		resp, err := http.Get(tc.ts.URL + "/healthz")
		if err == nil {
			json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			alive := 0
			for _, nd := range h.Nodes {
				if nd.Alive {
					alive++
				}
			}
			if alive >= n {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("cluster never reached %d alive nodes", n)
}

func matrixBody(m *sparse.Matrix) []byte {
	b, _ := json.Marshal(map[string]any{
		"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
	})
	return b
}

func (tc *testCluster) factor(t *testing.T, m *sparse.Matrix) gwFactorResponse {
	t.Helper()
	resp, err := http.Post(tc.ts.URL+"/v1/factor", "application/json", bytes.NewReader(matrixBody(m)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e gwError
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("factor returned %d: %s", resp.StatusCode, e.Error)
	}
	var fr gwFactorResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	return fr
}

func (tc *testCluster) solve(t *testing.T, id string, b []float64) []float64 {
	t.Helper()
	body, _ := json.Marshal(gwSolveRequest{ID: id, B: b})
	resp, err := http.Post(tc.ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e gwError
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("solve returned %d: %s", resp.StatusCode, e.Error)
	}
	var sr gwSolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr.X
}

// verifyAssembled compares an assembly node's factor against a sequential
// factorization of the same plan, entry by entry.
func (tc *testCluster) verifyAssembled(t *testing.T, jobID, primary string, m *sparse.Matrix, opts core.Options, tol float64) {
	t.Helper()
	plan, err := core.NewPlan(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqF, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	seq := seqF.Numeric()

	var node *Node
	for _, n := range tc.nodes {
		if n.cfg.ID == primary {
			node = n
		}
	}
	if node == nil {
		t.Fatalf("primary %q is not one of the test nodes", primary)
	}
	node.mu.Lock()
	job := node.jobs[jobID]
	node.mu.Unlock()
	if job == nil {
		t.Fatalf("primary %s holds no job %s", primary, jobID)
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.nHave != job.pr.NBlocks {
		t.Fatalf("primary holds %d/%d blocks", job.nHave, job.pr.NBlocks)
	}
	worst := 0.0
	for j := range seq.Data {
		for bi := range seq.Data[j] {
			sd, cd := seq.Data[j][bi], job.nf.Data[j][bi]
			for k := range sd {
				if d := math.Abs(sd[k]-cd[k]) / (1 + math.Abs(sd[k])); d > worst {
					worst = d
					if d > tol {
						t.Fatalf("block (%d,%d) entry %d: sequential %g cluster %g (rel %g > %g)",
							j, bi, k, sd[k], cd[k], d, tol)
					}
				}
			}
		}
	}
	t.Logf("assembled factor matches sequential; worst relative deviation %.3g", worst)
}

func testOpts(g GatewayConfig) core.Options {
	o := core.Options{
		BlockSize: g.BlockSize, Blocking: g.Blocking,
		AmalgThreshold: g.AmalgThreshold, Exec: g.Exec,
	}
	if o.BlockSize == 0 {
		o.BlockSize = core.DefaultBlockSize
	}
	o.Ordering = g.Ordering
	if o.Ordering == 0 {
		o.Ordering = order.MinDegree
	}
	return o
}

// TestClusterEndToEnd factors a BCSSTK31-class mesh on a gateway plus
// three localhost nodes, verifies the assembled factor against a
// sequential factorization to 1e-12, and solves through the gateway.
func TestClusterEndToEnd(t *testing.T) {
	gcfg := GatewayConfig{Procs: 6, HeartbeatTimeout: 3 * time.Second}
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "n0", Workers: 2},
		{ID: "n1", Workers: 2},
		{ID: "n2", Workers: 2},
	})
	m := gen.IrregularMesh(2200, 9, 3, 31)
	fr := tc.factor(t, m)
	if fr.Nodes != 3 {
		t.Fatalf("factored on %d nodes, want 3", fr.Nodes)
	}
	if fr.Epochs != 0 {
		t.Fatalf("clean run took %d failover epochs", fr.Epochs)
	}
	tc.verifyAssembled(t, fr.ID, fr.Primary, m, testOpts(gcfg), 1e-12)

	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1 + float64(i%7)
	}
	x := tc.solve(t, fr.ID, b)
	if r := m.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("cluster solve residual %g", r)
	}

	// Per-node stats surface in /metrics: every node owns a slice of the
	// blocks and at least one moved bytes across the data plane.
	resp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc gwMetricsDoc
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if len(doc.Nodes) != 3 {
		t.Fatalf("metrics list %d nodes", len(doc.Nodes))
	}
	var sent uint64
	for _, nd := range doc.Nodes {
		sent += nd.BytesSent
		if nd.BlocksOwned == 0 {
			t.Errorf("node %s owns no blocks", nd.ID)
		}
	}
	if sent == 0 {
		t.Fatal("no data-plane traffic recorded")
	}
	if doc.FactorRequests != 1 {
		t.Fatalf("metrics factor_requests=%d", doc.FactorRequests)
	}
}

// TestClusterKillNodeMidFlight is the failover e2e: four throttled nodes
// factor a BCSSTK31-class mesh, one is killed mid-factorization, the
// gateway reassigns its blocks to the buddy and restarts the epoch, and
// the final factor still matches the sequential one to 1e-12.
func TestClusterKillNodeMidFlight(t *testing.T) {
	gcfg := GatewayConfig{Procs: 8, HeartbeatTimeout: 3 * time.Second}
	m := gen.IrregularMesh(2200, 9, 3, 31)
	// Throttle so the clean run would take ~2.5s of cluster time: enough
	// room to kill a node while blocks are genuinely in flight.
	plan, err := core.NewPlan(m, testOpts(gcfg))
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(plan.Exact.Flops) / 4 / 2.5
	mk := func(id string) NodeConfig {
		return NodeConfig{ID: id, Workers: 2, FlopsPerSec: rate, HeartbeatEvery: 200 * time.Millisecond}
	}
	tc := startCluster(t, gcfg, []NodeConfig{mk("n0"), mk("n1"), mk("n2"), mk("n3")})

	killed := make(chan struct{})
	go func() {
		time.Sleep(700 * time.Millisecond)
		tc.cancels[3]() // fail-stop n3 mid-factorization
		close(killed)
	}()
	fr := tc.factor(t, m)
	<-killed
	if fr.Epochs == 0 {
		t.Fatal("node kill produced no failover epoch — the kill missed the factorization window")
	}
	if fr.Primary == "n3" {
		t.Fatalf("dead node %s still primary", fr.Primary)
	}
	tc.verifyAssembled(t, fr.ID, fr.Primary, m, testOpts(gcfg), 1e-12)

	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(1 + i%5)
	}
	x := tc.solve(t, fr.ID, b)
	if r := m.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("post-failover solve residual %g", r)
	}

	var doc gwMetricsDoc
	resp, err := http.Get(tc.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if doc.Failovers == 0 {
		t.Fatal("metrics report no failovers")
	}

	// /healthz degrades with the dead node.
	hresp, err := http.Get(tc.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h gwHealth
	json.NewDecoder(hresp.Body).Decode(&h)
	hresp.Body.Close()
	if h.Status != "degraded" {
		t.Fatalf("healthz status %q after node death, want degraded", h.Status)
	}
}

// TestClusterSpeedAwarePartition: a node advertising half speed must
// receive measurably fewer flops, and the speed-aware makespan must beat
// the speed-oblivious greedy split of the same loads.
func TestClusterSpeedAwarePartition(t *testing.T) {
	gcfg := GatewayConfig{Procs: 8, HeartbeatTimeout: 3 * time.Second}
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "fast", Workers: 2, Speed: 1.0},
		{ID: "slow", Workers: 2, Speed: 0.5},
	})
	m := gen.IrregularMesh(900, 9, 3, 15)
	fr := tc.factor(t, m)
	tc.verifyAssembled(t, fr.ID, fr.Primary, m, testOpts(gcfg), 1e-12)

	nodeOf, ids := tc.gw.NodeOfSnapshot(fr.ID)
	loads := tc.gw.Loads(fr.ID)
	if nodeOf == nil || loads == nil {
		t.Fatal("gateway kept no partition snapshot")
	}
	speed := map[string]float64{"fast": 1.0, "slow": 0.5}
	nodeLoad := make([]float64, len(ids))
	for p, nd := range nodeOf {
		nodeLoad[nd] += float64(loads[p])
	}
	var fastL, slowL float64
	for i, id := range ids {
		if id == "fast" {
			fastL = nodeLoad[i]
		} else {
			slowL = nodeLoad[i]
		}
	}
	if slowL >= fastL {
		t.Fatalf("half-speed node got %.3g flops, fast node %.3g — speed ignored", slowL, fastL)
	}

	// Speed-aware vs oblivious makespan on the same loads.
	ord := make([]int, len(loads))
	for i := range ord {
		ord[i] = i
	}
	for i := 1; i < len(ord); i++ {
		for k := i; k > 0 && loads[ord[k]] > loads[ord[k-1]]; k-- {
			ord[k], ord[k-1] = ord[k-1], ord[k]
		}
	}
	obl := mapping.Greedy(ord, loads, len(ids))
	oblLoad := make([]float64, len(ids))
	for p, nd := range obl {
		oblLoad[nd] += float64(loads[p])
	}
	mk := func(l []float64) float64 {
		worst := 0.0
		for i, id := range ids {
			if ft := l[i] / speed[id]; ft > worst {
				worst = ft
			}
		}
		return worst
	}
	if aware, oblivious := mk(nodeLoad), mk(oblLoad); aware >= oblivious {
		t.Fatalf("speed-aware makespan %.3g not better than oblivious %.3g", aware, oblivious)
	} else {
		t.Logf("makespan: speed-aware %.4g vs oblivious %.4g (%.1f%% better)",
			aware, oblivious, 100*(1-aware/oblivious))
	}
}

// TestClusterRefactorSamePattern: a second factor request with the same
// pattern but new values reuses the cached plan (cache_hit) and solves
// against the new values.
func TestClusterRefactorSamePattern(t *testing.T) {
	gcfg := GatewayConfig{Procs: 4, HeartbeatTimeout: 3 * time.Second}
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "a", Workers: 2},
		{ID: "b", Workers: 2},
	})
	m := gen.IrregularMesh(400, 7, 3, 9)
	fr1 := tc.factor(t, m)
	if fr1.CacheHit {
		t.Fatal("first factor reported a cache hit")
	}

	m2 := &sparse.Matrix{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: append([]float64(nil), m.Val...)}
	for j := 0; j < m2.N; j++ {
		m2.Val[m2.ColPtr[j]] *= 2 // same pattern, scaled diagonal
	}
	fr2 := tc.factor(t, m2)
	if !fr2.CacheHit {
		t.Fatal("same-pattern refactor missed the plan cache")
	}
	if fr2.ID != fr1.ID {
		t.Fatalf("pattern id changed: %s vs %s", fr1.ID, fr2.ID)
	}
	b := make([]float64, m2.N)
	for i := range b {
		b[i] = float64(i%3 + 1)
	}
	x := tc.solve(t, fr2.ID, b)
	if r := m2.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("refactor solve residual %g against new values", r)
	}
}

var _ = fmt.Sprintf // keep fmt for debug helpers
