package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/kernels"
	"blockfanout/internal/plancache"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
	"blockfanout/internal/tune"
)

// jitterBackoff is the attempt-th retry's wait: base·2^(attempt-1) with
// ±50% jitter, so a fleet of gateways (or epochs) retrying the same flaky
// moment does not reconverge in lockstep.
func jitterBackoff(base time.Duration, attempt int) time.Duration {
	d := base << (attempt - 1)
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// factorLocal is degraded mode: the gateway factors the matrix in-process
// with the plan it already holds, keeps the factor for local solves, and
// answers the request as a single-node cluster would. The fleet coming back
// is picked up automatically — the next factor request re-snapshots alive
// members and takes the distributed path.
func (g *Gateway) factorLocal(ctx context.Context, j *gwJob, entry *plancache.Entry, m *sparse.Matrix, hit bool) (*gwFactorResponse, int, error) {
	g.metLocalFactors.Add(1)
	f, err := entry.Plan.FactorValuesContext(ctx, entry.Assign, m.Val)
	if err != nil {
		var pe *kernels.PivotError
		if errors.As(err, &pe) {
			return nil, http.StatusUnprocessableEntity, err
		}
		if ctx.Err() != nil {
			return nil, http.StatusGatewayTimeout, ctx.Err()
		}
		return nil, http.StatusInternalServerError, err
	}
	j.mu.Lock()
	j.localF = f
	j.mu.Unlock()
	// Persist the full factor: a restarted gateway warm-starts straight
	// back into a solvable degraded mode.
	g.saveSnapshot(m, f)
	plan := entry.Plan
	return &gwFactorResponse{
		ID: j.id, N: m.N, NNZ: m.NNZ(),
		NNZL: plan.Exact.NZinL, Flops: plan.Exact.Flops,
		CacheHit: hit, Nodes: 0, Primary: "local", Degraded: true,
	}, 0, nil
}

// saveSnapshot persists a factor snapshot; with f == nil only the matrix
// and configuration are stored (a plan snapshot: enough for a restarted
// gateway to skip ordering + symbolic analysis, while the factor blocks
// themselves live on the nodes).
func (g *Gateway) saveSnapshot(m *sparse.Matrix, f *core.Factor) {
	if g.st == nil {
		return
	}
	fs := &store.FactorSnapshot{
		PatternHash: m.PatternHash(),
		ConfigKey:   g.planKey,
		N:           m.N,
		ColPtr:      m.ColPtr,
		RowInd:      m.RowInd,
		Val:         m.Val,
	}
	if f != nil {
		fs.Blocks = f.Numeric().ExportBlocks()
	}
	if err := g.st.PutFactor(fs); err != nil {
		g.cfg.Logf("cluster gateway: snapshot write for %016x failed: %v", fs.PatternHash, err)
	}
}

// WarmStart restores the gateway's working set from the snapshot store:
// every snapshot written under this gateway's configuration rebuilds its
// plan (and schedule) into the plan cache and job table, and snapshots that
// carry factor blocks — written by degraded-mode factorizations — also
// restore a local factor, so the restarted gateway can serve those solves
// before any node rejoins. Returns the number of plans restored.
func (g *Gateway) WarmStart() (int, error) {
	if g.st == nil {
		return 0, g.storeErr
	}
	// Load persisted cost profiles first so restored jobs (and all later
	// factor requests) schedule under their measured-cost mappings.
	g.loadTunedProfiles()
	warm, err := g.cache.WarmStart(g.st, g.planKey, func(m *sparse.Matrix) (*core.Plan, sched.Assignment, error) {
		plan, err := core.NewPlan(m, g.planOpts)
		if err != nil {
			return nil, sched.Assignment{}, err
		}
		a, _ := buildSchedule(plan, g.cfg.Procs)
		return plan, a, nil
	})
	if err != nil {
		return 0, err
	}
	restored := 0
	for _, we := range warm {
		id := fmt.Sprintf("%016x", we.Snap.PatternHash)
		j := &gwJob{id: id, notify: make(chan struct{}, 1)}
		j.plan = we.Entry.Plan
		a := we.Entry.Assign
		if tm := g.tunedFor(we.Snap.PatternHash, we.Entry.Plan); tm != nil {
			j.tuned = tm
			a = we.Entry.Plan.Assign(tm, 0)
		}
		j.pr = sched.Build(we.Entry.Plan.BS, a)
		j.loads = procLoads(j.pr)
		if len(we.Snap.Blocks) > 0 {
			// Local factors were snapshotted under the static assignment
			// (factorLocal always uses entry.Assign), so restore with it.
			if f, err := we.Entry.Plan.RestoreFactor(we.Entry.Assign, we.Snap.Val, we.Snap.Blocks); err == nil {
				j.localF = f
			} else {
				g.cfg.Logf("cluster gateway: local factor restore for %s failed: %v", id, err)
			}
		}
		g.mu.Lock()
		if _, ok := g.jobs[id]; !ok {
			g.jobs[id] = j
			restored++
		}
		g.mu.Unlock()
	}
	g.metWarmPlans.Store(uint64(restored))
	return restored, nil
}

// loadTunedProfiles rebuilds measured-cost mappings from every cost profile
// persisted under this gateway's plan configuration and registers them for
// StartJob propagation. Profiles measured at a different parallel width are
// still usable — per-block costs do not depend on the virtual processor
// count — because the remap search regrids for cfg.Procs. Returns how many
// mappings were registered.
func (g *Gateway) loadTunedProfiles() int {
	if !g.cfg.Tune || g.st == nil {
		return 0
	}
	keys, err := g.st.ScanProfiles()
	if err != nil {
		return 0
	}
	n := 0
	for _, k := range keys {
		if k.ConfigKey != g.planKey {
			continue // measured under a different plan configuration
		}
		ps, err := g.st.GetProfile(k.PatternHash, k.ConfigKey)
		if err != nil {
			continue // missing, or corrupt and already quarantined
		}
		prof, err := tune.FromSnapshot(ps)
		if err != nil {
			g.st.DeleteProfile(k.PatternHash, k.ConfigKey)
			continue
		}
		tm, _ := tune.Search(prof, g.cfg.Procs)
		if tm == nil {
			continue
		}
		if g.SetTunedMapping(k.PatternHash, tm) == nil {
			n++
		}
	}
	return n
}

// fleetStatus summarizes cluster health: "ok" with the full fleet alive,
// "down" when the gateway cannot serve at all (below MinNodes with local
// fallback disabled), "degraded" in between — some nodes dead, or running
// on local fallback.
func (g *Gateway) fleetStatus() (status string, alive, total int) {
	g.mu.Lock()
	members := append([]*member(nil), g.members...)
	g.mu.Unlock()
	total = len(members)
	for _, m := range members {
		if m.isAlive() {
			alive++
		}
	}
	switch {
	case alive >= g.cfg.MinNodes && alive == total:
		return "ok", alive, total
	case alive >= g.cfg.MinNodes:
		return "degraded", alive, total
	case !g.cfg.DisableLocalFallback:
		return "degraded", alive, total
	default:
		return "down", alive, total
	}
}
