//go:build faultinject

// Cluster chaos tests: run with `go test -tags faultinject ./internal/cluster/`.
// These subject the cluster's network planes to injected drop/corrupt/delay
// faults and assert the strongest property the system claims: the assembled
// factor still matches a sequential factorization to 1e-12. Dropped data
// frames starve a consumer until its stall watchdog fails the epoch;
// corrupted frames are caught by the wire CRC, which kills the connection
// and loses the frame the same way; both recover through the gateway's
// jittered epoch retries and the survivors' retransmits.
package cluster

import (
	"testing"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/faultinject"
	"blockfanout/internal/gen"
)

// chaosNode is a worker tuned for fast fault recovery: an aggressive stall
// watchdog and a short send backoff.
func chaosNode(id string) NodeConfig {
	return NodeConfig{
		ID: id, Workers: 2,
		HeartbeatEvery: 200 * time.Millisecond,
		StallTimeout:   800 * time.Millisecond,
		RetryBackoff:   5 * time.Millisecond,
	}
}

func chaosGateway() GatewayConfig {
	return GatewayConfig{
		Procs:            6,
		HeartbeatTimeout: 3 * time.Second,
		FactorRetries:    10,
		RetryBackoff:     10 * time.Millisecond,
		ReadyTimeout:     1500 * time.Millisecond,
	}
}

// TestChaosClusterDataPlaneFaults factors under a mix of dropped,
// corrupted, and delayed data-plane frames and requires exact agreement
// with the sequential factorization once the faults are exhausted.
func TestChaosClusterDataPlaneFaults(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	gcfg := chaosGateway()
	tc := startCluster(t, gcfg, []NodeConfig{chaosNode("n0"), chaosNode("n1"), chaosNode("n2")})

	faultinject.EnableNet(faultinject.NetRule{
		Site: "cluster.node.data",
		Drop: 0.05, Corrupt: 0.05, Delay: 0.2, DelayFor: 2 * time.Millisecond,
		After: 2, Count: 12,
	})
	m := gen.IrregularMesh(1200, 9, 3, 31)
	fr := tc.factor(t, m)
	faultinject.Disable()
	if faultinject.Fires("cluster.node.data") == 0 {
		t.Fatal("no network faults fired — the chaos run exercised nothing")
	}
	t.Logf("survived %d injected data-plane faults in %d epoch restarts",
		faultinject.Fires("cluster.node.data"), fr.Epochs)
	tc.verifyAssembled(t, fr.ID, fr.Primary, m, testOpts(gcfg), 1e-12)

	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(1 + i%7)
	}
	x := tc.solve(t, fr.ID, b)
	if r := m.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("post-chaos solve residual %g", r)
	}

	doc := tc.fetchClusterMetrics(t)
	if doc.Status != "ok" {
		t.Fatalf("fleet status %q after chaos with all nodes alive", doc.Status)
	}
}

// TestChaosClusterCtrlCorruptPartition corrupts a control-plane frame
// mid-factorization. The gateway's framing/CRC check kills that node's
// connection — indistinguishable from a network partition — and the run
// must complete correctly on the survivors via buddy failover.
func TestChaosClusterCtrlCorruptPartition(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	gcfg := chaosGateway()
	m := gen.IrregularMesh(1500, 9, 3, 31)
	// Throttle so the run takes ~2s: the corruption must land while blocks
	// are genuinely in flight.
	plan, err := core.NewPlan(m, testOpts(gcfg))
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(plan.Exact.Flops) / 3 / 2.0
	mk := func(id string) NodeConfig {
		c := chaosNode(id)
		c.FlopsPerSec = rate
		return c
	}
	tc := startCluster(t, gcfg, []NodeConfig{mk("n0"), mk("n1"), mk("n2")})

	// Let the Hellos and first heartbeats through, then flip one bit in a
	// heartbeat of whichever node writes next.
	faultinject.EnableNet(faultinject.NetRule{
		Site: "cluster.node.ctrl", Corrupt: 1, After: 8, Count: 1,
	})
	fr := tc.factor(t, m)
	faultinject.Disable()
	if faultinject.Fires("cluster.node.ctrl") == 0 {
		t.Fatal("the control-plane corruption never fired")
	}
	tc.verifyAssembled(t, fr.ID, fr.Primary, m, testOpts(gcfg), 1e-12)

	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(1 + i%5)
	}
	x := tc.solve(t, fr.ID, b)
	if r := m.ResidualNorm(x, b); r > 1e-6 {
		t.Fatalf("post-partition solve residual %g", r)
	}
}
