// Package cluster turns the block fan-out method into a real multi-node
// system: worker nodes each run the work-stealing engine over their slice
// of the block→processor mapping and exchange completed block columns over
// TCP (internal/cluster/wire), while a gateway shards factor ownership by
// sparsity pattern, tracks membership, and drives buddy failover when a
// node dies mid-factorization.
//
// The distribution model is the paper's §2.3 fan-out method lifted one
// level: the schedule's virtual processors are partitioned across nodes by
// the speed-aware greedy heuristic (mapping.GreedyWeighted over per-proc
// flop loads), each node executes exactly the blocks its processors own,
// and a completed block is shipped — once per consumer node, the
// aggregated analogue of the simulator's per-processor fan-out — to every
// node owning a processor that needs it, plus the assembly targets that
// collect the whole factor for solves.
//
// Failure handling realizes machine.FaultPlan's buddy protocol: when a
// node dies, machine.Buddy reassigns its processors to the next surviving
// node, the epoch counter bumps, and every survivor restarts from its
// completed-block frontier — blocks whose final data a node already holds
// are predone (fanout.Restriction), everything else reverts to matrix
// values (numeric.Factor.ReloadWhere) and is re-executed.
package cluster

import (
	"fmt"

	"blockfanout/internal/blocks"
	"blockfanout/internal/cluster/wire"
	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
)

// planOptions converts a StartJob's plan parameters to core.Options. Node
// and gateway must derive byte-identical plans, so everything that feeds
// core.NewPlan crosses the wire.
func planOptions(sj *wire.StartJob) core.Options {
	return core.Options{
		BlockSize:      int(sj.BlockSize),
		Ordering:       order.Method(sj.Ordering),
		Blocking:       blocks.Strategy(sj.Blocking),
		AmalgThreshold: sj.AmalgThr,
		Exec:           fanout.Mode(sj.Exec),
	}
}

// buildSchedule derives the cluster's canonical assignment for a plan:
// best-fit grid over the virtual processor count, Increasing Depth rows ×
// Column-intensive columns (the serving tier's configuration), domains
// enabled. Gateway and nodes call the same function so every party holds
// the identical sched.Program.
func buildSchedule(plan *core.Plan, procs int) (sched.Assignment, *sched.Program) {
	g := mapping.BestGrid(procs)
	mp := plan.Map(g, mapping.ID, mapping.CY)
	a := plan.Assign(mp, 2)
	return a, sched.Build(plan.BS, a)
}

// wireMapping rebuilds a tuned mapping shipped in a StartJob, validating
// dimensions and ranges so a corrupt or mismatched frame cannot index the
// schedule out of bounds. Returns nil when the job carries no tuned map.
func wireMapping(plan *core.Plan, sj *wire.StartJob) (*mapping.Mapping, error) {
	if len(sj.MapI) == 0 && len(sj.MapJ) == 0 {
		return nil, nil
	}
	n := plan.BS.N()
	if len(sj.MapI) != n || len(sj.MapJ) != n {
		return nil, fmt.Errorf("cluster: tuned map sized %d×%d for a %d-panel plan", len(sj.MapI), len(sj.MapJ), n)
	}
	g := mapping.Grid{Pr: int(sj.MapPr), Pc: int(sj.MapPc)}
	if g.P() != int(sj.Procs) {
		return nil, fmt.Errorf("cluster: tuned map grid %d×%d does not cover %d processors", g.Pr, g.Pc, sj.Procs)
	}
	mi := make([]int, n)
	mj := make([]int, n)
	for k := 0; k < n; k++ {
		if int(sj.MapI[k]) >= g.Pr || int(sj.MapJ[k]) >= g.Pc {
			return nil, fmt.Errorf("cluster: tuned map entry %d = (%d,%d) outside grid %d×%d", k, sj.MapI[k], sj.MapJ[k], g.Pr, g.Pc)
		}
		mi[k] = int(sj.MapI[k])
		mj[k] = int(sj.MapJ[k])
	}
	return &mapping.Mapping{Grid: g, MapI: mi, MapJ: mj}, nil
}

// scheduleFromJob derives one participant's schedule for a StartJob:
// the canonical static schedule, or — when the job carries a tuned map —
// the schedule under that measured-cost mapping with no domain override
// (the gateway's adoption decision compared loads under exactly this
// ownership; see internal/tune). Every participant and the gateway derive
// the same program from the same frame.
func scheduleFromJob(plan *core.Plan, sj *wire.StartJob) (*sched.Program, error) {
	tm, err := wireMapping(plan, sj)
	if err != nil {
		return nil, err
	}
	if tm == nil {
		_, pr := buildSchedule(plan, int(sj.Procs))
		return pr, nil
	}
	a := plan.Assign(tm, 0)
	return sched.Build(plan.BS, a), nil
}

// mapSignature digests a StartJob's tuned-map fields so a node can detect
// the mapping changing between runs of the same pattern (gateway adopted a
// remap) and rebuild its cached schedule. FNV-1a; 0 only for the static
// (empty-map) case by construction.
func mapSignature(sj *wire.StartJob) uint64 {
	if len(sj.MapI) == 0 && len(sj.MapJ) == 0 {
		return 0
	}
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(sj.MapPr)<<16 | uint64(sj.MapPc))
	for _, v := range sj.MapI {
		mix(uint64(v))
	}
	for _, v := range sj.MapJ {
		mix(uint64(v))
	}
	if h == 0 {
		h = 1 // keep 0 reserved for "static"
	}
	return h
}

// procLoads returns each virtual processor's flop load under the
// owner-computes model: a block's completing operation (BFAC/BDIV) plus
// every BMOD targeting a block it owns. This is the weight vector the
// gateway feeds mapping.GreedyWeighted to split processors across nodes of
// unequal speed.
func procLoads(pr *sched.Program) []int64 {
	load := make([]int64, pr.NProc)
	for id := 0; id < pr.NBlocks; id++ {
		load[pr.Owner[id]] += pr.OwnOpFlops[id]
	}
	pt := pr.Pairs()
	for p := range pt.Col {
		load[pr.Owner[pt.Dest[p]]] += pr.ModFlops(int(pt.Col[p]), int(pt.A[p]), int(pt.B[p]))
	}
	return load
}

// matrixToWire flattens a matrix's structure for a StartJob frame.
func matrixToWire(m *sparse.Matrix) (colptr, rowind []uint32) {
	colptr = make([]uint32, len(m.ColPtr))
	for i, v := range m.ColPtr {
		colptr[i] = uint32(v)
	}
	rowind = make([]uint32, len(m.RowInd))
	for i, v := range m.RowInd {
		rowind[i] = uint32(v)
	}
	return colptr, rowind
}

// wireToMatrix rebuilds and validates the matrix carried by a StartJob.
func wireToMatrix(sj *wire.StartJob) (*sparse.Matrix, error) {
	m := &sparse.Matrix{
		N:      int(sj.N),
		ColPtr: make([]int, len(sj.ColPtr)),
		RowInd: make([]int, len(sj.RowInd)),
		Val:    sj.Val,
	}
	for i, v := range sj.ColPtr {
		m.ColPtr[i] = int(v)
	}
	for i, v := range sj.RowInd {
		m.RowInd[i] = int(v)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: StartJob matrix invalid: %w", err)
	}
	return m, nil
}

// permuteVals routes A-order values onto the plan's permuted pattern, the
// layout numeric.Factor.Reload/ReloadWhere expect.
func permuteVals(plan *core.Plan, values []float64) []float64 {
	pv := make([]float64, len(values))
	for q, src := range plan.ValMap {
		pv[q] = values[src]
	}
	return pv
}
