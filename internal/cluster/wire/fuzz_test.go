package wire

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to every payload decoder. The codec's
// contract is totality: any input either decodes or errors — no panics, no
// allocations beyond the input's own size class.
func FuzzDecode(f *testing.F) {
	seedFrames := []Frame{
		{Type: THello, Hello: &Hello{ID: "n", DataAddr: "a:1", Speed: 1}},
		{Type: THeartbeat, Heartbeat: &Heartbeat{}},
		{Type: TStartJob, StartJob: &StartJob{
			JobID: "j", N: 2, ColPtr: []uint32{0, 1, 2}, RowInd: []uint32{0, 1},
			Val: []float64{1, 2}, NodeOf: []uint16{0, 1},
			Participants: []Participant{{ID: "n", DataAddr: "a:1", Alive: true}},
		}},
		{Type: TAbort, Abort: &Abort{JobID: "j", Reason: "r"}},
		{Type: TBlockData, BlockData: &BlockData{JobID: "j", Block: 3, Data: []float64{1}}},
		{Type: TDone, Done: &Done{JobID: "j", HasPivot: true, PivotBlock: 1}},
		{Type: TFactorReady, FactorReady: &FactorReady{JobID: "j"}},
		{Type: TSolveReq, SolveReq: &SolveReq{Seq: 1, JobID: "j", B: []float64{1}}},
		{Type: TSolveResp, SolveResp: &SolveResp{Seq: 1, OK: true, X: []float64{1}}},
	}
	for _, fr := range seedFrames {
		b, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(byte(fr.Type), b[7:])
	}
	f.Add(byte(0), []byte{})
	f.Add(byte(255), []byte{0xFF, 0xFF, 0xFF, 0x7F})

	f.Fuzz(func(t *testing.T, typ byte, body []byte) {
		fr, err := Decode(Type(typ), body)
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same frame
		// (canonical form: decoding is injective on valid payloads).
		b2, err := Encode(fr)
		if err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		fr2, err := Decode(Type(typ), b2[7:])
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		b3, err := Encode(fr2)
		if err != nil {
			t.Fatalf("third encode failed: %v", err)
		}
		if !bytes.Equal(b2, b3) {
			t.Fatalf("encode not stable:\n first %x\nsecond %x", b2, b3)
		}
	})
}

// FuzzReadFrame drives the stream layer (header parsing + payload
// dispatch) with arbitrary bytes.
func FuzzReadFrame(f *testing.F) {
	b, err := Encode(Frame{Type: THello, Hello: &Hello{ID: "n", DataAddr: "a", Speed: 1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte{Magic, Version, byte(TDone), 0, 0, 0, 0})
	f.Add([]byte{Magic, Version + 1, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = ReadFrame(bytes.NewReader(data))
	})
}
