// Package wire is the binary protocol of the distributed solve cluster:
// length-prefixed, version-tagged frames mirroring the message model of the
// multicomputer simulator (internal/machine). A frame is
//
//	magic (1 byte, 0xFC) | version (1) | type (1) | payload length (4, LE) | payload
//
// and the payload of each frame type is a fixed field sequence encoded
// little-endian (integers), IEEE-754 bits (floats), or u32-length-prefixed
// UTF-8 (strings). The same three frame families the simulator models cross
// the wire for real:
//
//   - block-column sends (BlockData: one completed block's dense payload,
//     the checkpoint unit of buddy recovery),
//   - BMOD aggregation traffic is implicit — the fan-out method ships
//     completed source blocks and the destination's owner performs the
//     BMODs locally, exactly as in §2.3 — so the aggregate frame is the
//     same BlockData frame addressed to each consumer node,
//   - completion and pivot-error control frames (Done carries either).
//
// Every decoder is total: arbitrary bytes produce an error, never a panic
// or an unbounded allocation (fuzzed in fuzz_test.go).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Magic is the first byte of every frame.
const Magic byte = 0xFC

// Version is the protocol version this package speaks. Decoding rejects
// frames of any other version, so mixed-version clusters fail loudly at the
// first frame instead of corrupting a factorization. Version 2 added the
// CRC32 trailer on BlockData payloads; version 3 added the tenant label and
// deadline to StartJob (so nodes abort work whose requester already gave
// up) and the deadline-abort counter to NodeStats; version 4 added the
// optional tuned block mapping to StartJob (measured-cost remap propagated
// gateway → nodes so every participant derives the identical schedule).
const Version byte = 4

// MaxPayload bounds a frame's payload; larger announced lengths are
// rejected before allocation. 1 GiB admits the block payloads of
// paper-scale problems with room to spare.
const MaxPayload = 1 << 30

// Type identifies a frame's payload layout.
type Type byte

const (
	// THello is a node's join announcement to the gateway.
	THello Type = iota + 1
	// THeartbeat is the periodic liveness + stats report, node → gateway.
	THeartbeat
	// TStartJob distributes one factorization epoch: matrix, plan options,
	// the proc→node ownership table, the participant directory, and the
	// primary/replica assembly targets. Gateway → every participant.
	TStartJob
	// TAbort cancels a running epoch ahead of a restart or failure.
	TAbort
	// TBlockData carries one completed block's dense column-major payload —
	// the block-column send of the fan-out method, and the checkpoint unit
	// the buddy failover replays from.
	TBlockData
	// TDone reports a node's slice finished (or failed, with structured
	// pivot coordinates), node → gateway.
	TDone
	// TFactorReady reports that an assembly target holds every block of L,
	// node → gateway.
	TFactorReady
	// TSolveReq routes one right-hand side to a node holding the assembled
	// factor, gateway → node.
	TSolveReq
	// TSolveResp answers a TSolveReq, node → gateway.
	TSolveResp
)

var typeNames = map[Type]string{
	THello: "hello", THeartbeat: "heartbeat", TStartJob: "start_job",
	TAbort: "abort", TBlockData: "block_data", TDone: "done",
	TFactorReady: "factor_ready", TSolveReq: "solve_req", TSolveResp: "solve_resp",
}

func (t Type) String() string {
	if n, ok := typeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("Type(%d)", byte(t))
}

// NodeStats is the per-node counter block carried by heartbeats and Done
// frames; the gateway aggregates it into /metrics.
type NodeStats struct {
	BlocksOwned uint64 // blocks this node executes under the current epoch
	BlocksDone  uint64 // blocks completed (including retained predone ones)
	Flops       uint64 // flops executed by the local engine
	Steals      uint64 // successful work-steals inside the local engine
	BytesSent   uint64 // data-plane bytes shipped to peers
	BytesRecv   uint64 // data-plane bytes received from peers
	Failovers   uint64 // epochs this node restarted due to a peer failure
	// DeadlineAborts counts epochs abandoned because the requester's
	// deadline expired before the work finished (v3).
	DeadlineAborts uint64
}

// Hello announces a node to the gateway.
type Hello struct {
	ID       string  // node name, unique in the cluster
	DataAddr string  // host:port of the node's data-plane listener
	Speed    float64 // relative flop rate (1 = nominal); feeds the mapping
}

// Heartbeat is the periodic liveness report.
type Heartbeat struct {
	Stats NodeStats
}

// Participant is one row of a job's node directory.
type Participant struct {
	ID       string
	DataAddr string
	Alive    bool
}

// StartJob starts (or, with Epoch > 0, restarts) a distributed
// factorization on one participant.
type StartJob struct {
	JobID string // pattern-hash hex id, same namespace as the serving tier
	RunID uint64 // one client factor request; values are fixed within a run
	Epoch uint32 // failover generation within the run

	// Matrix is the full symmetric-lower CSC input. Values ride along so a
	// refactor request reuses the node's cached plan but reloads numerics.
	N      uint32
	ColPtr []uint32
	RowInd []uint32
	Val    []float64

	// Plan options; every node must derive the identical plan and schedule.
	BlockSize uint32
	Blocking  uint8
	Ordering  uint8
	Exec      uint8
	AmalgThr  float64

	// Procs is the virtual processor count of the block mapping; NodeOf
	// maps each virtual processor to a participant index. Buddy failover
	// rewrites NodeOf and bumps Epoch.
	Procs  uint32
	NodeOf []uint16

	Participants []Participant
	Primary      uint16   // participant index holding the assembled factor
	Replicas     []uint16 // additional assembly targets for failover routing
	Frontier     uint32   // completed-column watermark at the last failover (observability)

	// Admission metadata (v3). Tenant labels the requester for per-tenant
	// accounting on nodes; DeadlineUnixMicro, when nonzero, is the absolute
	// request deadline (µs since the Unix epoch) — a node aborts the epoch
	// rather than burn flops for a requester that already gave up.
	Tenant            string
	DeadlineUnixMicro int64

	// Tuned mapping (v4). When MapI/MapJ are non-empty, participants build
	// the block→processor mapping directly from these row/column maps on
	// the MapPr×MapPc grid — a mapping rebuilt by the gateway from measured
	// block costs — instead of deriving the static heuristic mapping. Empty
	// means static. Like the plan options, all parties must agree exactly,
	// which is why the full mapping travels on the wire rather than being
	// re-derived from a profile each side might hold differently.
	MapPr, MapPc uint16
	MapI, MapJ   []uint16
}

// Abort cancels the named epoch.
type Abort struct {
	JobID  string
	RunID  uint64
	Epoch  uint32
	Reason string
}

// BlockData is one completed block's payload.
type BlockData struct {
	JobID string
	RunID uint64
	Epoch uint32
	Block uint32
	Data  []float64
}

// Done reports one node's slice finished or failed.
type Done struct {
	JobID string
	RunID uint64
	Epoch uint32
	OK    bool
	Err   string
	// Pivot coordinates when the failure is a numeric breakdown.
	HasPivot             bool
	PivotBlock, PivotRow int32
	Pivot                float64
	// Watermark is the node's completed-leading-column count, the
	// supernode frontier the next epoch restarts from.
	Watermark uint32
	Stats     NodeStats
}

// FactorReady reports that the sender holds every block of the factor.
type FactorReady struct {
	JobID string
	RunID uint64
}

// SolveReq routes one right-hand side to an assembly node.
type SolveReq struct {
	Seq   uint64
	JobID string
	B     []float64
}

// SolveResp answers a SolveReq.
type SolveResp struct {
	Seq uint64
	OK  bool
	Err string
	X   []float64
}

// ---- encoding ----

type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) u32s(v []uint32) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u32(x)
	}
}
func (e *enc) u16s(v []uint16) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.u16(x)
	}
}
func (e *enc) f64s(v []float64) {
	e.u32(uint32(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}
func (e *enc) stats(s NodeStats) {
	e.u64(s.BlocksOwned)
	e.u64(s.BlocksDone)
	e.u64(s.Flops)
	e.u64(s.Steals)
	e.u64(s.BytesSent)
	e.u64(s.BytesRecv)
	e.u64(s.Failovers)
	e.u64(s.DeadlineAborts)
}

// ---- decoding ----

var (
	// ErrTruncated reports a payload shorter than its fields claim.
	ErrTruncated = errors.New("wire: truncated payload")
	// ErrVersion reports a frame of a different protocol version.
	ErrVersion = errors.New("wire: protocol version mismatch")
	// ErrMagic reports a stream that is not speaking this protocol.
	ErrMagic = errors.New("wire: bad magic byte")
	// ErrChecksum reports a BlockData frame whose payload bytes do not
	// match their CRC32 trailer: the lengths lined up but the numeric
	// content was corrupted in flight.
	ErrChecksum = errors.New("wire: block data checksum mismatch")
)

type dec struct {
	b   []byte
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = ErrTruncated
	}
}

func (d *dec) failWith(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *dec) u8() uint8 {
	if len(d.b) < 1 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *dec) u16() uint16 {
	if len(d.b) < 2 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b)
	d.b = d.b[2:]
	return v
}

func (d *dec) u32() uint32 {
	if len(d.b) < 4 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *dec) u64() uint64 {
	if len(d.b) < 8 {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) boolean() bool { return d.u8() != 0 }

// count reads a u32 length prefix and validates it against the bytes that
// remain at elemSize bytes per element, so a hostile length can never force
// an allocation larger than the payload that carries it.
func (d *dec) count(elemSize int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if int64(n)*int64(elemSize) > int64(len(d.b)) {
		d.fail()
		return 0
	}
	return int(n)
}

func (d *dec) str() string {
	n := d.count(1)
	if d.err != nil {
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func (d *dec) u32s() []uint32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = d.u32()
	}
	return v
}

func (d *dec) u16s() []uint16 {
	n := d.count(2)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]uint16, n)
	for i := range v {
		v[i] = d.u16()
	}
	return v
}

func (d *dec) f64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func (d *dec) stats() NodeStats {
	s := NodeStats{
		BlocksOwned: d.u64(),
		BlocksDone:  d.u64(),
		Flops:       d.u64(),
		Steals:      d.u64(),
		BytesSent:   d.u64(),
		BytesRecv:   d.u64(),
		Failovers:   d.u64(),
	}
	s.DeadlineAborts = d.u64()
	return s
}

// done reports a fully-consumed, error-free payload. Trailing bytes are a
// framing bug (or corruption) and are rejected rather than ignored.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes after payload", len(d.b))
	}
	return nil
}

// ---- per-type payload codecs ----

func (h *Hello) encode(e *enc) {
	e.str(h.ID)
	e.str(h.DataAddr)
	e.f64(h.Speed)
}

func (h *Hello) decode(d *dec) {
	h.ID = d.str()
	h.DataAddr = d.str()
	h.Speed = d.f64()
}

func (h *Heartbeat) encode(e *enc) { e.stats(h.Stats) }
func (h *Heartbeat) decode(d *dec) { h.Stats = d.stats() }

func (s *StartJob) encode(e *enc) {
	e.str(s.JobID)
	e.u64(s.RunID)
	e.u32(s.Epoch)
	e.u32(s.N)
	e.u32s(s.ColPtr)
	e.u32s(s.RowInd)
	e.f64s(s.Val)
	e.u32(s.BlockSize)
	e.u8(s.Blocking)
	e.u8(s.Ordering)
	e.u8(s.Exec)
	e.f64(s.AmalgThr)
	e.u32(s.Procs)
	e.u16s(s.NodeOf)
	e.u32(uint32(len(s.Participants)))
	for _, p := range s.Participants {
		e.str(p.ID)
		e.str(p.DataAddr)
		e.boolean(p.Alive)
	}
	e.u16(s.Primary)
	e.u16s(s.Replicas)
	e.u32(s.Frontier)
	e.str(s.Tenant)
	e.u64(uint64(s.DeadlineUnixMicro))
	e.u16(s.MapPr)
	e.u16(s.MapPc)
	e.u16s(s.MapI)
	e.u16s(s.MapJ)
}

func (s *StartJob) decode(d *dec) {
	s.JobID = d.str()
	s.RunID = d.u64()
	s.Epoch = d.u32()
	s.N = d.u32()
	s.ColPtr = d.u32s()
	s.RowInd = d.u32s()
	s.Val = d.f64s()
	s.BlockSize = d.u32()
	s.Blocking = d.u8()
	s.Ordering = d.u8()
	s.Exec = d.u8()
	s.AmalgThr = d.f64()
	s.Procs = d.u32()
	s.NodeOf = d.u16s()
	n := d.count(9) // 2 length-prefixed strings + 1 bool ≥ 9 bytes each
	for i := 0; i < n && d.err == nil; i++ {
		s.Participants = append(s.Participants, Participant{
			ID: d.str(), DataAddr: d.str(), Alive: d.boolean(),
		})
	}
	s.Primary = d.u16()
	s.Replicas = d.u16s()
	s.Frontier = d.u32()
	s.Tenant = d.str()
	s.DeadlineUnixMicro = int64(d.u64())
	s.MapPr = d.u16()
	s.MapPc = d.u16()
	s.MapI = d.u16s()
	s.MapJ = d.u16s()
}

func (a *Abort) encode(e *enc) {
	e.str(a.JobID)
	e.u64(a.RunID)
	e.u32(a.Epoch)
	e.str(a.Reason)
}

func (a *Abort) decode(d *dec) {
	a.JobID = d.str()
	a.RunID = d.u64()
	a.Epoch = d.u32()
	a.Reason = d.str()
}

func (b *BlockData) encode(e *enc) {
	e.str(b.JobID)
	e.u64(b.RunID)
	e.u32(b.Epoch)
	e.u32(b.Block)
	start := len(e.b)
	e.f64s(b.Data)
	// CRC32-IEEE over the length-prefixed data bytes just written. Block
	// payloads are the one frame family whose corruption would silently
	// poison a factorization instead of failing a decode, so they alone
	// carry an end-to-end checksum on top of the framing length checks.
	e.u32(crc32.ChecksumIEEE(e.b[start:]))
}

func (b *BlockData) decode(d *dec) {
	b.JobID = d.str()
	b.RunID = d.u64()
	b.Epoch = d.u32()
	b.Block = d.u32()
	raw := d.b
	b.Data = d.f64s()
	if d.err != nil {
		return
	}
	sum := crc32.ChecksumIEEE(raw[:len(raw)-len(d.b)])
	if d.u32() != sum && d.err == nil {
		d.failWith(ErrChecksum)
	}
}

func (dn *Done) encode(e *enc) {
	e.str(dn.JobID)
	e.u64(dn.RunID)
	e.u32(dn.Epoch)
	e.boolean(dn.OK)
	e.str(dn.Err)
	e.boolean(dn.HasPivot)
	e.u32(uint32(dn.PivotBlock))
	e.u32(uint32(dn.PivotRow))
	e.f64(dn.Pivot)
	e.u32(dn.Watermark)
	e.stats(dn.Stats)
}

func (dn *Done) decode(d *dec) {
	dn.JobID = d.str()
	dn.RunID = d.u64()
	dn.Epoch = d.u32()
	dn.OK = d.boolean()
	dn.Err = d.str()
	dn.HasPivot = d.boolean()
	dn.PivotBlock = int32(d.u32())
	dn.PivotRow = int32(d.u32())
	dn.Pivot = d.f64()
	dn.Watermark = d.u32()
	dn.Stats = d.stats()
}

func (f *FactorReady) encode(e *enc) {
	e.str(f.JobID)
	e.u64(f.RunID)
}

func (f *FactorReady) decode(d *dec) {
	f.JobID = d.str()
	f.RunID = d.u64()
}

func (s *SolveReq) encode(e *enc) {
	e.u64(s.Seq)
	e.str(s.JobID)
	e.f64s(s.B)
}

func (s *SolveReq) decode(d *dec) {
	s.Seq = d.u64()
	s.JobID = d.str()
	s.B = d.f64s()
}

func (s *SolveResp) encode(e *enc) {
	e.u64(s.Seq)
	e.boolean(s.OK)
	e.str(s.Err)
	e.f64s(s.X)
}

func (s *SolveResp) decode(d *dec) {
	s.Seq = d.u64()
	s.OK = d.boolean()
	s.Err = d.str()
	s.X = d.f64s()
}

// ---- frame layer ----

// Frame is one decoded frame: exactly one of the payload pointers is
// non-nil, matched by Type.
type Frame struct {
	Type        Type
	Hello       *Hello
	Heartbeat   *Heartbeat
	StartJob    *StartJob
	Abort       *Abort
	BlockData   *BlockData
	Done        *Done
	FactorReady *FactorReady
	SolveReq    *SolveReq
	SolveResp   *SolveResp
}

type payload interface {
	encode(*enc)
	decode(*dec)
}

// payloadOf returns the frame's payload value, or nil for an unknown type
// or an unset payload pointer. Each case guards against a typed-nil
// pointer escaping into the interface.
func (f *Frame) payloadOf() payload {
	switch f.Type {
	case THello:
		if f.Hello != nil {
			return f.Hello
		}
	case THeartbeat:
		if f.Heartbeat != nil {
			return f.Heartbeat
		}
	case TStartJob:
		if f.StartJob != nil {
			return f.StartJob
		}
	case TAbort:
		if f.Abort != nil {
			return f.Abort
		}
	case TBlockData:
		if f.BlockData != nil {
			return f.BlockData
		}
	case TDone:
		if f.Done != nil {
			return f.Done
		}
	case TFactorReady:
		if f.FactorReady != nil {
			return f.FactorReady
		}
	case TSolveReq:
		if f.SolveReq != nil {
			return f.SolveReq
		}
	case TSolveResp:
		if f.SolveResp != nil {
			return f.SolveResp
		}
	}
	return nil
}

// newFrame allocates the payload struct for t; ok is false for unknown
// types.
func newFrame(t Type) (Frame, bool) {
	f := Frame{Type: t}
	switch t {
	case THello:
		f.Hello = &Hello{}
	case THeartbeat:
		f.Heartbeat = &Heartbeat{}
	case TStartJob:
		f.StartJob = &StartJob{}
	case TAbort:
		f.Abort = &Abort{}
	case TBlockData:
		f.BlockData = &BlockData{}
	case TDone:
		f.Done = &Done{}
	case TFactorReady:
		f.FactorReady = &FactorReady{}
	case TSolveReq:
		f.SolveReq = &SolveReq{}
	case TSolveResp:
		f.SolveResp = &SolveResp{}
	default:
		return f, false
	}
	return f, true
}

// Encode serializes one frame.
func Encode(f Frame) ([]byte, error) {
	p := f.payloadOf()
	if p == nil {
		return nil, fmt.Errorf("wire: cannot encode frame type %v (missing or unknown payload)", f.Type)
	}
	e := &enc{b: make([]byte, 7, 64)}
	p.encode(e)
	if len(e.b)-7 > MaxPayload {
		return nil, fmt.Errorf("wire: payload %d bytes exceeds MaxPayload", len(e.b)-7)
	}
	e.b[0] = Magic
	e.b[1] = Version
	e.b[2] = byte(f.Type)
	binary.LittleEndian.PutUint32(e.b[3:7], uint32(len(e.b)-7))
	return e.b, nil
}

// WriteFrame encodes f and writes it to w.
func WriteFrame(w io.Writer, f Frame) error {
	b, err := Encode(f)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads and decodes one frame from r. io.EOF at a frame boundary
// is returned verbatim so connection teardown is distinguishable from
// corruption.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [7]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: reading frame header: %w", err)
	}
	if hdr[0] != Magic {
		return Frame{}, ErrMagic
	}
	if hdr[1] != Version {
		return Frame{}, fmt.Errorf("%w: got %d, speak %d", ErrVersion, hdr[1], Version)
	}
	n := binary.LittleEndian.Uint32(hdr[3:7])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("wire: payload length %d exceeds MaxPayload", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Frame{}, fmt.Errorf("wire: reading %d-byte payload: %w", n, err)
	}
	return Decode(Type(hdr[2]), body)
}

// Decode decodes one payload of the given type.
func Decode(t Type, body []byte) (Frame, error) {
	f, ok := newFrame(t)
	if !ok {
		return Frame{}, fmt.Errorf("wire: unknown frame type %d", byte(t))
	}
	d := &dec{b: body}
	f.payloadOf().decode(d)
	if err := d.done(); err != nil {
		return Frame{}, fmt.Errorf("wire: decoding %v: %w", t, err)
	}
	return f, nil
}
