package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"
)

// roundTrip encodes f, re-reads it through the stream layer, and returns
// the decoded frame.
func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f); err != nil {
		t.Fatalf("WriteFrame(%v): %v", f.Type, err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame(%v): %v", f.Type, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("ReadFrame left %d bytes unread", buf.Len())
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	stats := NodeStats{
		BlocksOwned: 12, BlocksDone: 11, Flops: 1 << 40, Steals: 7,
		BytesSent: 123456, BytesRecv: 654321, Failovers: 2,
		DeadlineAborts: 3,
	}
	frames := []Frame{
		{Type: THello, Hello: &Hello{ID: "node-a", DataAddr: "127.0.0.1:9001", Speed: 0.5}},
		{Type: THeartbeat, Heartbeat: &Heartbeat{Stats: stats}},
		{Type: TStartJob, StartJob: &StartJob{
			JobID: "ab12cd", RunID: 3, Epoch: 1,
			N: 4, ColPtr: []uint32{0, 2, 3, 4, 5}, RowInd: []uint32{0, 2, 1, 2, 3},
			Val:       []float64{4, -1, 3, 2.5, 1},
			BlockSize: 32, Blocking: 1, Ordering: 2, Exec: 1, AmalgThr: 0.125,
			Procs: 8, NodeOf: []uint16{0, 1, 2, 3, 0, 1, 2, 3},
			Participants: []Participant{
				{ID: "a", DataAddr: "127.0.0.1:9001", Alive: true},
				{ID: "b", DataAddr: "127.0.0.1:9002", Alive: false},
			},
			Primary: 1, Replicas: []uint16{0}, Frontier: 17,
			Tenant: "team-solvers", DeadlineUnixMicro: 1_700_000_000_123_456,
			MapPr: 4, MapPc: 2,
			MapI: []uint16{0, 1, 2, 3}, MapJ: []uint16{0, 1, 0, 1},
		}},
		{Type: TAbort, Abort: &Abort{JobID: "ab12cd", RunID: 3, Epoch: 1, Reason: "peer died"}},
		{Type: TBlockData, BlockData: &BlockData{
			JobID: "ab12cd", RunID: 3, Epoch: 2, Block: 41,
			Data: []float64{1, -2.5, math.Pi, 0, math.Inf(1)},
		}},
		{Type: TDone, Done: &Done{
			JobID: "ab12cd", RunID: 3, Epoch: 2, OK: false,
			Err: "pivot failure", HasPivot: true, PivotBlock: 9, PivotRow: 4,
			Pivot: -1e-30, Watermark: 23, Stats: stats,
		}},
		{Type: TFactorReady, FactorReady: &FactorReady{JobID: "ab12cd", RunID: 3}},
		{Type: TSolveReq, SolveReq: &SolveReq{Seq: 99, JobID: "ab12cd", B: []float64{1, 2, 3, 4}}},
		{Type: TSolveResp, SolveResp: &SolveResp{Seq: 99, OK: true, X: []float64{0.25, 0.5, 1, 2}}},
	}
	for _, f := range frames {
		got := roundTrip(t, f)
		if !reflect.DeepEqual(got, f) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", f.Type, got, f)
		}
	}
}

func TestRoundTripEmptySlices(t *testing.T) {
	// nil and empty slices both decode to nil; encode a frame with nil
	// slices and confirm it survives.
	f := Frame{Type: TStartJob, StartJob: &StartJob{JobID: "x"}}
	got := roundTrip(t, f)
	if !reflect.DeepEqual(got, f) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.StartJob, f.StartJob)
	}
}

func TestReadFrameEOFAtBoundary(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader(nil))
	if !errors.Is(err, io.EOF) {
		t.Fatalf("empty stream: got %v, want io.EOF", err)
	}
}

func TestReadFrameBadMagic(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader([]byte{0x00, Version, byte(THello), 0, 0, 0, 0}))
	if !errors.Is(err, ErrMagic) {
		t.Fatalf("got %v, want ErrMagic", err)
	}
}

func TestReadFrameVersionMismatch(t *testing.T) {
	_, err := ReadFrame(bytes.NewReader([]byte{Magic, Version + 1, byte(THello), 0, 0, 0, 0}))
	if !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestReadFrameOversizedLength(t *testing.T) {
	hdr := []byte{Magic, Version, byte(TBlockData), 0xFF, 0xFF, 0xFF, 0xFF}
	_, err := ReadFrame(bytes.NewReader(hdr))
	if err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

func TestDecodeUnknownType(t *testing.T) {
	if _, err := Decode(Type(200), nil); err == nil {
		t.Fatal("unknown frame type accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	b, err := Encode(Frame{Type: TDone, Done: &Done{JobID: "job", Err: "boom"}})
	if err != nil {
		t.Fatal(err)
	}
	payload := b[7:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := Decode(TDone, payload[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d bytes accepted", cut, len(payload))
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b, err := Encode(Frame{Type: TFactorReady, FactorReady: &FactorReady{JobID: "j", RunID: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(TFactorReady, append(b[7:], 0xAA)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDecodeHostileLength(t *testing.T) {
	// A u32 count far larger than the remaining payload must be rejected
	// before any allocation of that size.
	body := []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3}
	if _, err := Decode(TSolveReq, body); err == nil {
		t.Fatal("hostile length prefix accepted")
	}
}

func TestEncodeUnknownOrMissingPayload(t *testing.T) {
	if _, err := Encode(Frame{Type: Type(250)}); err == nil {
		t.Fatal("unknown type encoded")
	}
	if _, err := Encode(Frame{Type: THello}); err == nil {
		t.Fatal("nil payload encoded")
	}
}

func TestStreamedSequence(t *testing.T) {
	// Several frames back to back over one buffer, as on a TCP conn.
	var buf bytes.Buffer
	want := []Frame{
		{Type: THello, Hello: &Hello{ID: "n0", DataAddr: "addr", Speed: 1}},
		{Type: TBlockData, BlockData: &BlockData{JobID: "j", Block: 1, Data: []float64{1}}},
		{Type: TDone, Done: &Done{JobID: "j", OK: true}},
	}
	for _, f := range want {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, w)
		}
	}
	if _, err := ReadFrame(&buf); !errors.Is(err, io.EOF) {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

// TestBlockDataChecksum flips one byte inside a BlockData payload's float
// region and asserts the decoder rejects the frame with ErrChecksum instead
// of silently accepting corrupted numerics.
func TestBlockDataChecksum(t *testing.T) {
	b, err := Encode(Frame{Type: TBlockData, BlockData: &BlockData{
		JobID: "job", RunID: 9, Epoch: 1, Block: 4,
		Data: []float64{1.5, -2.25, 3.75, 0, 11},
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Round-trips clean.
	if _, err := ReadFrame(bytes.NewReader(b)); err != nil {
		t.Fatalf("clean frame rejected: %v", err)
	}
	// Flip one bit inside the float payload (after the header, the string,
	// and the fixed fields; before the trailing CRC).
	bad := append([]byte(nil), b...)
	bad[len(bad)-12] ^= 0x01
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted payload: got %v, want ErrChecksum", err)
	}
	// A corrupted CRC trailer itself is also a rejection.
	bad2 := append([]byte(nil), b...)
	bad2[len(bad2)-1] ^= 0xFF
	if _, err := ReadFrame(bytes.NewReader(bad2)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted trailer: got %v, want ErrChecksum", err)
	}
}
