package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"blockfanout/internal/cluster/wire"
	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/faultinject"
	"blockfanout/internal/kernels"
	"blockfanout/internal/numeric"
	"blockfanout/internal/obs"
	"blockfanout/internal/sched"
	"blockfanout/internal/store"
)

// NodeConfig configures one worker node.
type NodeConfig struct {
	// ID is the node's cluster-unique name.
	ID string
	// Gateway is the gateway's control-plane address (host:port).
	Gateway string
	// DataAddr is the listen address of the node's data plane; default
	// "127.0.0.1:0". The resolved address is announced in the Hello.
	DataAddr string
	// Speed is the advertised relative flop rate (1 = nominal); the
	// gateway's speed-aware processor partition weights by it.
	Speed float64
	// FlopsPerSec throttles the local engine to a target rate (0 = run at
	// full speed); the heterogeneity benchmarks derate nodes with it.
	FlopsPerSec float64
	// Workers is the local worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// HeartbeatEvery is the liveness-report period (default 500ms).
	HeartbeatEvery time.Duration
	// SendTimeout bounds each control- and data-plane write (default 5s);
	// a hung peer read loop can therefore never wedge a sender goroutine.
	SendTimeout time.Duration
	// SendRetries is how many times a failed peer send is redialed and
	// retried with jittered exponential backoff before the frame is
	// dropped to the gateway's failover machinery (default 3; negative
	// disables retries).
	SendRetries int
	// RetryBackoff is the base delay of the send-retry backoff
	// (default 25ms).
	RetryBackoff time.Duration
	// StallTimeout, when positive, fails the running epoch with a
	// transient Done if no block completes or arrives for that long; the
	// gateway restarts the epoch and peers retransmit. Set it well above
	// the longest single-kernel time. Default 0 = disabled.
	StallTimeout time.Duration
	// StoreDir, when set, opens a durable snapshot store there: the
	// blocks this node computed are checkpointed write-behind at each
	// epoch end, and a restarted node seeds a fresh run from them when
	// the run's value checksum matches (rejoin without recomputation).
	StoreDir string
	// TraceDir, when set, writes one Chrome trace-event file per executed
	// epoch (obs recorder spans of every BFAC/BDIV/BMOD the node ran).
	TraceDir string
	// Logf receives progress lines; default log.Printf.
	Logf func(format string, args ...any)
}

// errRequesterDeadline marks epochs abandoned because the client that
// requested them already gave up. The gateway matches the message in Done
// frames to answer 504 instead of retrying.
var errRequesterDeadline = errors.New("requester deadline exceeded")

// Node is one cluster worker: it joins the gateway, listens for peer block
// traffic, and factors its slice of each job with a restricted
// work-stealing executor.
type Node struct {
	cfg NodeConfig

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	ctrlMu sync.Mutex // serializes control-plane writes
	ctrl   net.Conn

	dataLn   net.Listener
	dataAddr string

	mu    sync.Mutex
	jobs  map[string]*nodeJob
	peers map[string]*peer

	st       *store.Store
	storeErr error
	snapCh   chan *store.BlockSnapshot

	bytesSent      atomic.Uint64
	bytesRecv      atomic.Uint64
	flops          atomic.Uint64
	steals         atomic.Uint64
	failovers      atomic.Uint64
	done           atomic.Uint64 // locally completed blocks, cumulative
	restored       atomic.Uint64 // blocks seeded from a held-block snapshot
	resends        atomic.Uint64 // peer-send retries after a dial or write failure
	deadlineAborts atomic.Uint64 // epochs abandoned because the requester's deadline expired
}

// nodeJob is one pattern's factorization state on this node. mu guards
// every field; data-plane deliveries, control frames, and epoch
// transitions all serialize on it.
type nodeJob struct {
	id string
	mu sync.Mutex

	runID uint64
	epoch uint32
	sj    *wire.StartJob // current epoch's parameters; nil before the first

	plan *core.Plan
	pr   *sched.Program
	// mapSig identifies which tuned mapping (0 = static) j.pr was built
	// from, so a run arriving with a different map — the gateway adopted a
	// measured remap since this pattern's plan was cached — rebuilds the
	// schedule instead of executing under stale ownership.
	mapSig uint64
	nf     *numeric.Factor
	pav    []float64 // permuted values of the current run

	myIdx    int
	local    []bool // blocks this node executes under the current epoch
	haveData []bool // blocks whose final data this node holds
	nHave    int

	ex        *fanout.Executor
	cancel    context.CancelFunc
	running   bool
	pending   *wire.StartJob    // next epoch, applied when the current run stops
	buffered  []*wire.BlockData // frames for epochs not yet started
	readySent bool
}

// NewNode builds a node; call Run to join the cluster.
func NewNode(cfg NodeConfig) *Node {
	if cfg.DataAddr == "" {
		cfg.DataAddr = "127.0.0.1:0"
	}
	if cfg.Speed <= 0 {
		cfg.Speed = 1
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 500 * time.Millisecond
	}
	if cfg.SendTimeout <= 0 {
		cfg.SendTimeout = 5 * time.Second
	}
	if cfg.SendRetries == 0 {
		cfg.SendRetries = 3
	} else if cfg.SendRetries < 0 {
		cfg.SendRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 25 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	return &Node{
		cfg:   cfg,
		jobs:  make(map[string]*nodeJob),
		peers: make(map[string]*peer),
	}
}

// Run joins the gateway and serves until ctx is cancelled or the control
// connection drops.
func (n *Node) Run(ctx context.Context) error {
	n.ctx, n.cancel = context.WithCancel(ctx)
	defer n.cancel()

	if n.cfg.StoreDir != "" {
		st, err := store.Open(n.cfg.StoreDir)
		if err != nil {
			// A broken store disables durability, never the node.
			n.storeErr = err
			n.cfg.Logf("cluster node %s: snapshot store: %v", n.cfg.ID, err)
		} else {
			n.st = st
			n.snapCh = make(chan *store.BlockSnapshot, 8)
			n.wg.Add(1)
			go n.snapshotWriter()
		}
	}

	ln, err := net.Listen("tcp", n.cfg.DataAddr)
	if err != nil {
		return fmt.Errorf("cluster: node %s data listen: %w", n.cfg.ID, err)
	}
	n.dataLn = ln
	n.dataAddr = ln.Addr().String()
	defer ln.Close()
	n.wg.Add(1)
	go n.acceptData()

	rawCtrl, err := net.Dial("tcp", n.cfg.Gateway)
	if err != nil {
		return fmt.Errorf("cluster: node %s dial gateway: %w", n.cfg.ID, err)
	}
	ctrl := faultinject.WrapConn("cluster.node.ctrl", rawCtrl)
	n.ctrl = ctrl
	defer ctrl.Close()
	if err := n.sendCtrl(wire.Frame{Type: wire.THello, Hello: &wire.Hello{
		ID: n.cfg.ID, DataAddr: n.dataAddr, Speed: n.cfg.Speed,
	}}); err != nil {
		return err
	}

	n.wg.Add(1)
	go n.heartbeats()
	// Unblock the reads below when ctx ends.
	stop := context.AfterFunc(n.ctx, func() { ctrl.Close(); ln.Close() })
	defer stop()

	err = n.ctrlLoop(ctrl)
	n.cancel()
	n.wg.Wait()
	if n.ctx.Err() != nil || ctx.Err() != nil {
		return nil
	}
	return err
}

// DataAddr returns the resolved data-plane address (after Run started).
func (n *Node) DataAddr() string { return n.dataAddr }

func (n *Node) sendCtrl(f wire.Frame) error {
	n.ctrlMu.Lock()
	defer n.ctrlMu.Unlock()
	n.ctrl.SetWriteDeadline(time.Now().Add(n.cfg.SendTimeout))
	defer n.ctrl.SetWriteDeadline(time.Time{})
	return wire.WriteFrame(n.ctrl, f)
}

func (n *Node) ctrlLoop(ctrl net.Conn) error {
	for {
		f, err := wire.ReadFrame(ctrl)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		switch f.Type {
		case wire.TStartJob:
			n.startJob(f.StartJob)
		case wire.TAbort:
			n.abortJob(f.Abort)
		case wire.TSolveReq:
			req := f.SolveReq
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				resp := n.solve(req)
				if err := n.sendCtrl(wire.Frame{Type: wire.TSolveResp, SolveResp: &resp}); err != nil {
					n.cfg.Logf("cluster node %s: solve resp: %v", n.cfg.ID, err)
				}
			}()
		default:
			n.cfg.Logf("cluster node %s: unexpected control frame %v", n.cfg.ID, f.Type)
		}
	}
}

func (n *Node) heartbeats() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
			hb := wire.Heartbeat{Stats: n.statsSnapshot()}
			if err := n.sendCtrl(wire.Frame{Type: wire.THeartbeat, Heartbeat: &hb}); err != nil {
				return
			}
		}
	}
}

// statsSnapshot aggregates the node's counters for heartbeat and Done
// frames.
func (n *Node) statsSnapshot() wire.NodeStats {
	st := wire.NodeStats{
		Flops:          n.flops.Load(),
		Steals:         n.steals.Load(),
		BytesSent:      n.bytesSent.Load(),
		BytesRecv:      n.bytesRecv.Load(),
		Failovers:      n.failovers.Load(),
		BlocksDone:     n.done.Load(),
		DeadlineAborts: n.deadlineAborts.Load(),
	}
	n.mu.Lock()
	jobs := make([]*nodeJob, 0, len(n.jobs))
	for _, j := range n.jobs {
		jobs = append(jobs, j)
	}
	n.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		for _, l := range j.local {
			if l {
				st.BlocksOwned++
			}
		}
		j.mu.Unlock()
	}
	return st
}

// ---- data plane ----

// peer is one lazily-dialed outgoing data-plane connection with a sender
// goroutine, so block shipping never blocks a compute worker on the
// network.
type peer struct {
	addr string
	ch   chan []byte
}

func (n *Node) peerFor(addr string) *peer {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.peers[addr]; ok {
		return p
	}
	p := &peer{addr: addr, ch: make(chan []byte, 1024)}
	n.peers[addr] = p
	n.wg.Add(1)
	go n.peerSender(p)
	return p
}

func (n *Node) peerSender(p *peer) {
	defer n.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			conn.Close()
		}
	}()
	for {
		select {
		case <-n.ctx.Done():
			return
		case b := <-p.ch:
			for attempt := 0; ; attempt++ {
				if attempt > 0 {
					n.resends.Add(1)
					if !n.sleepBackoff(attempt) {
						return
					}
				}
				if conn == nil {
					c, err := net.Dial("tcp", p.addr)
					if err != nil {
						if attempt < n.cfg.SendRetries {
							continue
						}
						// The receiver is dead beyond the retry budget;
						// the gateway's failover re-owns its blocks and
						// survivors resend at the next epoch, so dropping
						// here is safe.
						break
					}
					conn = faultinject.WrapConn("cluster.node.data", c)
				}
				conn.SetWriteDeadline(time.Now().Add(n.cfg.SendTimeout))
				_, err := conn.Write(b)
				conn.SetWriteDeadline(time.Time{})
				if err == nil {
					n.bytesSent.Add(uint64(len(b)))
					break
				}
				conn.Close()
				conn = nil
				if attempt >= n.cfg.SendRetries {
					break
				}
			}
		}
	}
}

// sleepBackoff pauses a sender before retry attempt (1-based), honoring
// shutdown. Reports false when the node is stopping.
func (n *Node) sleepBackoff(attempt int) bool {
	t := time.NewTimer(jitterBackoff(n.cfg.RetryBackoff, attempt))
	defer t.Stop()
	select {
	case <-n.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (n *Node) acceptData() {
	defer n.wg.Done()
	for {
		conn, err := n.dataLn.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.dataLoop(conn)
	}
}

func (n *Node) dataLoop(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	stop := context.AfterFunc(n.ctx, func() { conn.Close() })
	defer stop()
	for {
		f, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if f.Type != wire.TBlockData {
			n.cfg.Logf("cluster node %s: unexpected data frame %v", n.cfg.ID, f.Type)
			return
		}
		n.bytesRecv.Add(uint64(8*len(f.BlockData.Data)) + 32)
		n.deliver(f.BlockData)
	}
}

// deliver applies one peer block under the epoch rules: frames for a
// newer run/epoch are buffered until that epoch starts here, frames for an
// older one are dropped, and current-epoch frames write the block's data
// and inject its completion into the running executor.
func (n *Node) deliver(bd *wire.BlockData) {
	job := n.jobFor(bd.JobID)
	job.mu.Lock()
	defer job.mu.Unlock()
	switch {
	case job.sj == nil, bd.RunID > job.runID,
		bd.RunID == job.runID && bd.Epoch > job.epoch:
		job.buffered = append(job.buffered, bd)
		return
	case bd.RunID < job.runID, bd.Epoch < job.epoch:
		return
	}
	job.applyLocked(n, bd)
}

// applyLocked writes a current-epoch block into the factor. Caller holds
// job.mu and has verified run and epoch.
func (j *nodeJob) applyLocked(n *Node, bd *wire.BlockData) {
	id := int32(bd.Block)
	if id < 0 || int(id) >= j.pr.NBlocks || j.haveData[id] {
		return
	}
	if j.local[id] {
		// Never overwrite a block the local engine is computing; a
		// survivor's stale resend after failover can race it.
		return
	}
	col, bi := j.pr.ColOf[id], j.pr.IdxOf[id]
	dst := j.nf.Data[col][bi]
	if len(bd.Data) != len(dst) {
		n.cfg.Logf("cluster node %s: block %d size mismatch (%d != %d)", n.cfg.ID, id, len(bd.Data), len(dst))
		return
	}
	copy(dst, bd.Data)
	j.haveData[id] = true
	j.nHave++
	j.ex.Inject(id)
	j.maybeReadyLocked(n)
}

// ---- job lifecycle ----

func (n *Node) jobFor(id string) *nodeJob {
	n.mu.Lock()
	defer n.mu.Unlock()
	if j, ok := n.jobs[id]; ok {
		return j
	}
	j := &nodeJob{id: id, myIdx: -1}
	n.jobs[id] = j
	return j
}

func (n *Node) startJob(sj *wire.StartJob) {
	job := n.jobFor(sj.JobID)
	job.mu.Lock()
	if sj.RunID < job.runID ||
		(sj.RunID == job.runID && job.sj != nil && sj.Epoch <= job.epoch) {
		job.mu.Unlock()
		return // stale or duplicate
	}
	if job.running {
		// Stop the current epoch; the runner applies the pending StartJob
		// when RunContext returns.
		job.pending = sj
		job.cancel()
		job.mu.Unlock()
		return
	}
	err := job.startLocked(n, sj)
	job.mu.Unlock()
	if err != nil {
		n.cfg.Logf("cluster node %s: start job %s: %v", n.cfg.ID, sj.JobID, err)
		n.sendDone(job, sj, err, fanout.Stats{})
	}
}

// startLocked (re)starts one epoch: builds or reuses the plan, restores
// matrix values outside the completed-block frontier, constructs the
// restricted executor, replays buffered frames, and launches the runner.
func (j *nodeJob) startLocked(n *Node, sj *wire.StartJob) error {
	// Refuse before any symbolic or numeric work when the requester's
	// deadline has already passed — the epoch's flops would be pure waste.
	if sj.DeadlineUnixMicro > 0 && !time.Now().Before(time.UnixMicro(sj.DeadlineUnixMicro)) {
		n.deadlineAborts.Add(1)
		return fmt.Errorf("cluster: node %s job %s run %d: %w", n.cfg.ID, sj.JobID, sj.RunID, errRequesterDeadline)
	}
	if j.plan == nil {
		m, err := wireToMatrix(sj)
		if err != nil {
			return err
		}
		plan, err := core.NewPlan(m, planOptions(sj))
		if err != nil {
			return err
		}
		nf, err := numeric.New(plan.BS, plan.PA)
		if err != nil {
			return err
		}
		j.plan, j.nf = plan, nf
	}
	if sig := mapSignature(sj); j.pr == nil || sig != j.mapSig {
		pr, err := scheduleFromJob(j.plan, sj)
		if err != nil {
			return err
		}
		j.pr, j.mapSig = pr, sig
	}
	if len(sj.NodeOf) != j.pr.NProc {
		return fmt.Errorf("cluster: NodeOf has %d entries for %d processors", len(sj.NodeOf), j.pr.NProc)
	}
	j.myIdx = -1
	for i, p := range sj.Participants {
		if p.ID == n.cfg.ID {
			j.myIdx = i
		}
	}
	if j.myIdx < 0 {
		return fmt.Errorf("cluster: node %s not in job %s participant list", n.cfg.ID, sj.JobID)
	}

	newRun := sj.RunID != j.runID || j.haveData == nil
	if newRun {
		j.pav = permuteVals(j.plan, sj.Val)
		if err := j.nf.Reload(j.pav); err != nil {
			return err
		}
		j.haveData = make([]bool, j.pr.NBlocks)
		j.nHave = 0
		j.readySent = false
		j.restoreBlocksLocked(n)
	} else {
		// Failover epoch: keep completed blocks, revert the rest.
		n.failovers.Add(1)
		keep := func(col, bi int) bool { return j.haveData[j.pr.BlockID(col, bi)] }
		if err := j.nf.ReloadWhere(j.pav, keep); err != nil {
			return err
		}
	}
	j.runID, j.epoch, j.sj = sj.RunID, sj.Epoch, sj

	local := make([]bool, j.pr.NBlocks)
	for id := range local {
		local[id] = int(sj.NodeOf[j.pr.Owner[id]]) == j.myIdx
	}
	j.local = local
	predone := make([]bool, j.pr.NBlocks)
	copy(predone, j.haveData)

	j.ex = fanout.NewExecutorRestricted(j.nf, j.pr, &fanout.Restriction{
		Local:       local,
		Predone:     predone,
		Workers:     n.cfg.Workers,
		FlopsPerSec: n.cfg.FlopsPerSec,
		OnComplete:  func(id int32) { n.onComplete(j, sj, id) },
	})

	// Frames that raced ahead of this StartJob: apply the current epoch's,
	// keep newer ones buffered, drop the rest. Injections land in the
	// executor's buffered external channel and survive until Run.
	buf := j.buffered
	j.buffered = nil
	for _, bd := range buf {
		if bd.RunID == sj.RunID && bd.Epoch == sj.Epoch {
			j.applyLocked(n, bd)
		} else if bd.RunID > sj.RunID || (bd.RunID == sj.RunID && bd.Epoch > sj.Epoch) {
			j.buffered = append(j.buffered, bd)
		}
	}

	// Blocks this node owns under the NEW mapping and already holds: the
	// consumer set may have changed (the buddy inherited the dead node's
	// processors), so resend them before computing anything new.
	var resend []int32
	for id := int32(0); int(id) < j.pr.NBlocks; id++ {
		if local[id] && j.haveData[id] {
			resend = append(resend, id)
		}
	}

	j.maybeReadyLocked(n) // a full snapshot restore can complete the job outright

	// Bound the epoch by the requester's deadline: when it expires mid-run
	// the executor aborts and the node reports a deadline-abandoned Done
	// instead of finishing work nobody is waiting for.
	var ctx context.Context
	var cancel context.CancelFunc
	if sj.DeadlineUnixMicro > 0 {
		ctx, cancel = context.WithDeadline(n.ctx, time.UnixMicro(sj.DeadlineUnixMicro))
	} else {
		ctx, cancel = context.WithCancel(n.ctx)
	}
	j.cancel = cancel
	j.running = true
	ex := j.ex
	n.wg.Add(1)
	go n.runEpoch(ctx, cancel, j, sj, ex, resend)
	return nil
}

func (n *Node) runEpoch(ctx context.Context, cancel context.CancelFunc, j *nodeJob, sj *wire.StartJob, ex *fanout.Executor, resend []int32) {
	defer n.wg.Done()
	for _, id := range resend {
		n.shipBlock(j, sj, id)
	}
	stalled := n.startStallWatch(ctx, cancel, j)
	var rec *obs.Recorder
	if n.cfg.TraceDir != "" {
		rec = ex.NewRecorder()
		rec.Enable()
		ex.SetRecorder(rec)
	}
	st, err := ex.RunContext(ctx)
	n.flops.Add(uint64(st.Flops))
	n.steals.Add(uint64(st.Steals))
	if rec != nil {
		n.writeTrace(sj, rec)
	}

	j.mu.Lock()
	j.running = false
	if p := j.pending; p != nil {
		j.pending = nil
		if serr := j.startLocked(n, p); serr != nil {
			j.mu.Unlock()
			n.cfg.Logf("cluster node %s: restart job %s epoch %d: %v", n.cfg.ID, p.JobID, p.Epoch, serr)
			n.sendDone(j, p, serr, fanout.Stats{})
			return
		}
		j.mu.Unlock()
		return
	}
	if err != nil && errors.Is(err, context.DeadlineExceeded) && n.ctx.Err() == nil {
		// The requester's deadline expired mid-epoch. Abandon the run and
		// say why in the Done, so the gateway answers 504 instead of
		// burning retries on work nobody is waiting for.
		n.deadlineAborts.Add(1)
		err = fmt.Errorf("cluster: node %s job %s epoch %d abandoned: %w",
			n.cfg.ID, sj.JobID, sj.Epoch, errRequesterDeadline)
	}
	aborted := err != nil && errors.Is(err, context.Canceled)
	if aborted && stalled != nil && stalled.Load() && n.ctx.Err() == nil {
		// The stall watchdog cancelled us: report a transient failure so
		// the gateway restarts the epoch, instead of a silent abort.
		aborted = false
		err = faultinject.Transient(fmt.Errorf(
			"cluster: node %s job %s epoch %d stalled: no progress for %v",
			n.cfg.ID, sj.JobID, sj.Epoch, n.cfg.StallTimeout))
	}
	j.mu.Unlock()
	if aborted {
		return // Abort or shutdown; the gateway does not expect a Done.
	}
	if err == nil {
		n.saveBlocks(j, sj)
	}
	n.sendDone(j, sj, err, st)
}

func (n *Node) onComplete(j *nodeJob, sj *wire.StartJob, id int32) {
	j.mu.Lock()
	if !j.haveData[id] {
		j.haveData[id] = true
		j.nHave++
	}
	n.done.Add(1)
	j.maybeReadyLocked(n)
	j.mu.Unlock()
	n.shipBlock(j, sj, id)
}

// shipBlock sends block id — final data — to every node that consumes it
// under sj's mapping plus the assembly targets, each exactly once.
func (n *Node) shipBlock(j *nodeJob, sj *wire.StartJob, id int32) {
	col, bi := j.pr.ColOf[id], j.pr.IdxOf[id]
	src := j.nf.Data[col][bi]
	bd := wire.BlockData{
		JobID: sj.JobID, RunID: sj.RunID, Epoch: sj.Epoch,
		Block: uint32(id), Data: src,
	}
	targets := make(map[int]bool)
	for _, p := range j.pr.Consumers[id] {
		targets[int(sj.NodeOf[p])] = true
	}
	targets[int(sj.Primary)] = true
	for _, r := range sj.Replicas {
		targets[int(r)] = true
	}
	delete(targets, j.myIdx)
	if len(targets) == 0 {
		return
	}
	b, err := wire.Encode(wire.Frame{Type: wire.TBlockData, BlockData: &bd})
	if err != nil {
		n.cfg.Logf("cluster node %s: encode block %d: %v", n.cfg.ID, id, err)
		return
	}
	for t := range targets {
		if t < 0 || t >= len(sj.Participants) || !sj.Participants[t].Alive {
			continue
		}
		n.peerFor(sj.Participants[t].DataAddr).send(n, b)
	}
}

func (p *peer) send(n *Node, b []byte) {
	select {
	case p.ch <- b:
	case <-n.ctx.Done():
	}
}

// maybeReadyLocked reports FactorReady once an assembly target holds every
// block. Caller holds j.mu.
func (j *nodeJob) maybeReadyLocked(n *Node) {
	if j.readySent || j.sj == nil || j.nHave < j.pr.NBlocks {
		return
	}
	target := j.myIdx == int(j.sj.Primary)
	for _, r := range j.sj.Replicas {
		target = target || j.myIdx == int(r)
	}
	if !target {
		return
	}
	j.readySent = true
	fr := wire.FactorReady{JobID: j.id, RunID: j.runID}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if err := n.sendCtrl(wire.Frame{Type: wire.TFactorReady, FactorReady: &fr}); err != nil {
			n.cfg.Logf("cluster node %s: factor ready: %v", n.cfg.ID, err)
		}
	}()
}

// sendDone reports the epoch's outcome, with structured pivot coordinates
// for numeric breakdowns and the completed-column watermark the next epoch
// could restart from.
func (n *Node) sendDone(j *nodeJob, sj *wire.StartJob, err error, st fanout.Stats) {
	dn := wire.Done{JobID: sj.JobID, RunID: sj.RunID, Epoch: sj.Epoch, OK: err == nil}
	if err != nil {
		dn.Err = err.Error()
		var pe *kernels.PivotError
		if errors.As(err, &pe) {
			dn.HasPivot = true
			dn.PivotBlock, dn.PivotRow = int32(pe.Block), int32(pe.Row)
			dn.Pivot = pe.Pivot
		}
	}
	j.mu.Lock()
	dn.Watermark = j.watermarkLocked()
	j.mu.Unlock()
	dn.Stats = n.statsSnapshot()
	if serr := n.sendCtrl(wire.Frame{Type: wire.TDone, Done: &dn}); serr != nil {
		n.cfg.Logf("cluster node %s: done: %v", n.cfg.ID, serr)
	}
}

// watermarkLocked counts the leading block columns every block of which is
// held — the supernode frontier of buddy recovery. Caller holds j.mu.
func (j *nodeJob) watermarkLocked() uint32 {
	if j.pr == nil {
		return 0
	}
	var w uint32
	for col := 0; col < j.pr.BS.N(); col++ {
		for bi := range j.pr.BS.Cols[col].Blocks {
			if !j.haveData[j.pr.BlockID(col, bi)] {
				return w
			}
		}
		w++
	}
	return w
}

func (n *Node) abortJob(ab *wire.Abort) {
	job := n.jobFor(ab.JobID)
	job.mu.Lock()
	defer job.mu.Unlock()
	if ab.RunID == job.runID && job.running && job.cancel != nil {
		job.cancel()
	}
}

// solve answers one routed right-hand side from the assembled factor.
func (n *Node) solve(req *wire.SolveReq) wire.SolveResp {
	resp := wire.SolveResp{Seq: req.Seq}
	n.mu.Lock()
	job, ok := n.jobs[req.JobID]
	n.mu.Unlock()
	if !ok {
		resp.Err = fmt.Sprintf("cluster: node %s holds no job %s", n.cfg.ID, req.JobID)
		return resp
	}
	job.mu.Lock()
	defer job.mu.Unlock()
	if job.plan == nil || job.nHave < job.pr.NBlocks {
		resp.Err = fmt.Sprintf("cluster: node %s holds %d/%d blocks of job %s", n.cfg.ID, job.nHave, job.pr.NBlocks, req.JobID)
		return resp
	}
	if len(req.B) != job.plan.A.N {
		resp.Err = fmt.Sprintf("cluster: rhs has %d entries, matrix is %d", len(req.B), job.plan.A.N)
		return resp
	}
	pb := job.plan.Perm.Apply(req.B)
	px := job.nf.Solve(pb)
	resp.X = job.plan.Perm.ApplyInverse(px)
	resp.OK = true
	return resp
}

func (n *Node) writeTrace(sj *wire.StartJob, rec *obs.Recorder) {
	name := fmt.Sprintf("%s-run%d-epoch%d-%s.trace.json", sj.JobID, sj.RunID, sj.Epoch, n.cfg.ID)
	f, err := os.Create(filepath.Join(n.cfg.TraceDir, name))
	if err != nil {
		n.cfg.Logf("cluster node %s: trace: %v", n.cfg.ID, err)
		return
	}
	defer f.Close()
	if err := rec.WriteTrace(f, "node "+n.cfg.ID); err != nil {
		n.cfg.Logf("cluster node %s: trace: %v", n.cfg.ID, err)
	}
}
