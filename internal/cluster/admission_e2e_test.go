package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/core"
	"blockfanout/internal/gen"
)

// TestClusterDeadlineAbort is the gateway-path half of deadline-aware
// scheduling: a factor request whose deadline cannot cover the throttled
// node's work answers 504, and the node itself abandons the epoch (the
// deadline rides the StartJob frame) instead of finishing work nobody is
// waiting for — visible as deadline_aborts in the gateway's /metrics.
func TestClusterDeadlineAbort(t *testing.T) {
	gcfg := GatewayConfig{
		Procs:                4,
		HeartbeatTimeout:     3 * time.Second,
		RequestTimeout:       800 * time.Millisecond,
		DisableLocalFallback: true,
		FactorRetries:        -1,
	}
	m := gen.IrregularMesh(1500, 9, 3, 7)
	plan, err := core.NewPlan(m, testOpts(gcfg))
	if err != nil {
		t.Fatal(err)
	}
	// ~10s of cluster time against an 800ms deadline: the run is doomed
	// from the start and must be cut short, not completed.
	rate := float64(plan.Exact.Flops) / 10
	tc := startCluster(t, gcfg, []NodeConfig{
		{ID: "n0", Workers: 1, FlopsPerSec: rate, HeartbeatEvery: 100 * time.Millisecond},
	})

	start := time.Now()
	resp, err := http.Post(tc.ts.URL+"/v1/factor", "application/json", bytes.NewReader(matrixBody(m)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline-doomed factor returned %d, want 504", resp.StatusCode)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("request held for %v past its 800ms deadline", took)
	}

	// The node's abort is asynchronous to the 504; its next heartbeat (or
	// Done) folds the counter into gateway metrics.
	deadline := time.Now().Add(5 * time.Second)
	for {
		r, err := http.Get(tc.ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var doc gwMetricsDoc
		json.NewDecoder(r.Body).Decode(&doc)
		r.Body.Close()
		var aborts uint64
		for _, nd := range doc.Nodes {
			aborts += nd.DeadlineAborts
		}
		if aborts > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("node never recorded a deadline abort")
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestGatewayTenantRateLimit exercises the gateway's own admission gate:
// a metered tenant's second solve inside the refill window gets a
// structured 429 with Retry-After, while the health endpoint keeps
// reporting the admission state.
func TestGatewayTenantRateLimit(t *testing.T) {
	gcfg := GatewayConfig{
		Procs:            2,
		HeartbeatTimeout: 3 * time.Second,
		Tenants: map[string]admission.TenantLimits{
			"metered": {Rate: 0.001, Burst: 1},
		},
	}
	tc := startCluster(t, gcfg, []NodeConfig{{ID: "n0", Workers: 2}})
	m := gen.IrregularMesh(300, 5, 2, 3)
	fr := tc.factor(t, m) // default tenant: unmetered

	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	solveAs := func(tenant string) *http.Response {
		body, _ := json.Marshal(gwSolveRequest{ID: fr.ID, B: b})
		req, err := http.NewRequest(http.MethodPost, tc.ts.URL+"/v1/solve", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	r1 := solveAs("metered")
	r1.Body.Close()
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first metered solve returned %d", r1.StatusCode)
	}
	r2 := solveAs("metered")
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second metered solve returned %d, want 429", r2.StatusCode)
	}
	if r2.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	var e gwError
	if err := json.NewDecoder(r2.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != "tenant_rate" {
		t.Fatalf("rejection code %q, want tenant_rate", e.Code)
	}
	if e.RetryAfterS <= 0 {
		t.Fatalf("rejection retry_after_s = %v", e.RetryAfterS)
	}

	// The quiet tenant is unaffected by the metered one's exhaustion.
	r3 := solveAs("quiet")
	r3.Body.Close()
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("quiet tenant's solve returned %d", r3.StatusCode)
	}

	var h gwHealth
	r4, err := http.Get(tc.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(r4.Body).Decode(&h)
	r4.Body.Close()
	if h.Admission != "ok" {
		t.Fatalf("healthz admission state %q, want ok", h.Admission)
	}
}
