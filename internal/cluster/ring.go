package cluster

import (
	"sort"
)

// ring is a consistent-hash ring over participant indices. The gateway
// keys it by a job's sparse.PatternHash to pick the primary and replica
// assembly targets: the nodes that collect every block of L and serve
// solves. Consistent hashing keeps the choice stable — the same pattern
// lands on the same nodes across refactor requests, so their warm factor
// state is reused, and a membership change moves only the patterns that
// hashed to the departed node.
type ring struct {
	hs  []uint64 // sorted virtual-point hashes
	idx []int    // hs[i] → participant index
}

// ringVnodes is the virtual-point count per participant. 40 points keeps
// the per-node share of the key space within a few percent of uniform for
// the cluster sizes this package targets (≤ dozens of nodes).
const ringVnodes = 40

// buildRing hashes every id onto the circle. ids are participant names in
// participant-index order; the returned ring resolves hashes back to those
// indices.
func buildRing(ids []string) *ring {
	r := &ring{}
	for i, id := range ids {
		h := fnv1a(id)
		for v := 0; v < ringVnodes; v++ {
			h = fnvMix(h, uint64(v)+1)
			r.hs = append(r.hs, h)
			r.idx = append(r.idx, i)
		}
	}
	type pt struct {
		h uint64
		i int
	}
	pts := make([]pt, len(r.hs))
	for i := range pts {
		pts[i] = pt{r.hs[i], r.idx[i]}
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].h != pts[b].h {
			return pts[a].h < pts[b].h
		}
		return pts[a].i < pts[b].i
	})
	for i := range pts {
		r.hs[i], r.idx[i] = pts[i].h, pts[i].i
	}
	return r
}

// pick walks the ring clockwise from key and returns up to n distinct
// participant indices for which alive reports true. Fewer than n are
// returned only when fewer than n participants are alive.
func (r *ring) pick(key uint64, n int, alive func(int) bool) []int {
	if len(r.hs) == 0 || n <= 0 {
		return nil
	}
	start := sort.Search(len(r.hs), func(i int) bool { return r.hs[i] >= key })
	var out []int
	seen := make(map[int]bool)
	for off := 0; off < len(r.hs) && len(out) < n; off++ {
		i := r.idx[(start+off)%len(r.hs)]
		if seen[i] || !alive(i) {
			continue
		}
		seen[i] = true
		out = append(out, i)
	}
	return out
}

// FNV-1a over a string, plus the integer fold shared with the sparse
// pattern hash (duplicated to avoid exporting it from internal/sparse).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv1a(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime64
		v >>= 8
	}
	return h
}
