package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAndDistinct(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r := buildRing(ids)
	all := func(int) bool { return true }
	p1 := r.pick(12345, 3, all)
	p2 := r.pick(12345, 3, all)
	if len(p1) != 3 {
		t.Fatalf("picked %d targets, want 3", len(p1))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("pick not deterministic: %v vs %v", p1, p2)
		}
	}
	seen := map[int]bool{}
	for _, i := range p1 {
		if seen[i] {
			t.Fatalf("duplicate target in %v", p1)
		}
		seen[i] = true
	}
}

// TestRingSurvivorStability: removing a node must not move picks that did
// not land on it — the consistent-hashing property buddy routing relies on.
func TestRingSurvivorStability(t *testing.T) {
	ids := []string{"n0", "n1", "n2", "n3", "n4"}
	r := buildRing(ids)
	all := func(int) bool { return true }
	for key := uint64(0); key < 200; key++ {
		before := r.pick(key*0x9e3779b97f4a7c15, 1, all)[0]
		dead := (before + 1) % len(ids) // kill someone else
		after := r.pick(key*0x9e3779b97f4a7c15, 1, func(i int) bool { return i != dead })[0]
		if after != before {
			t.Fatalf("key %d: pick moved %d → %d though %d stayed alive", key, before, after, dead)
		}
	}
}

func TestRingSkipsDead(t *testing.T) {
	ids := []string{"a", "b", "c"}
	r := buildRing(ids)
	got := r.pick(99, 3, func(i int) bool { return i != 1 })
	if len(got) != 2 {
		t.Fatalf("want 2 alive targets, got %v", got)
	}
	for _, i := range got {
		if i == 1 {
			t.Fatalf("dead node picked: %v", got)
		}
	}
}

func TestRingBalance(t *testing.T) {
	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, fmt.Sprintf("node-%d", i))
	}
	r := buildRing(ids)
	counts := make([]int, 8)
	for k := 0; k < 4000; k++ {
		counts[r.pick(fnvMix(fnvOffset64, uint64(k)), 1, func(int) bool { return true })[0]]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("node %d never picked: %v", i, counts)
		}
		if c > 4000/2 {
			t.Fatalf("node %d got %d of 4000 keys — ring badly skewed: %v", i, c, counts)
		}
	}
}
