package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/blocks"
	"blockfanout/internal/cluster/wire"
	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/faultinject"
	"blockfanout/internal/kernels"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/plancache"
	"blockfanout/internal/sched"
	"blockfanout/internal/server"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
)

// GatewayConfig configures the cluster gateway.
type GatewayConfig struct {
	// Procs is the virtual processor count of every job's block mapping
	// (default 8); the speed-aware partition spreads these over the nodes.
	Procs int
	// Plan-construction options, shared with every node (default: uniform
	// blocking, MinDegree ordering, work-stealing engine).
	BlockSize      int
	Blocking       blocks.Strategy
	Ordering       order.Method
	Exec           fanout.Mode
	AmalgThreshold float64
	// Replicas is how many assembly targets hold the factor beyond the
	// primary (default 1), for solve failover.
	Replicas int
	// MinNodes gates factor requests until this many nodes joined
	// (default 1).
	MinNodes int
	// HeartbeatInterval is the heartbeat cadence the fleet is expected to
	// keep (default 500ms), and HeartbeatMisses is how many consecutive
	// intervals of silence declare a node dead (default 4). Together they
	// derive HeartbeatTimeout when it is unset.
	HeartbeatInterval time.Duration
	HeartbeatMisses   int
	// HeartbeatTimeout declares a silent node dead. Unset, it is
	// HeartbeatInterval × HeartbeatMisses (default 2s); setting it directly
	// overrides the derivation.
	HeartbeatTimeout time.Duration
	// SendTimeout bounds every control-plane frame write to a node, so a
	// wedged peer connection fails the send instead of blocking the gateway
	// (default 5s).
	SendTimeout time.Duration
	// FactorRetries is how many times a run whose epoch failed on an
	// infrastructure (non-pivot) error is restarted with jittered
	// exponential backoff before the request fails (default 2; negative
	// disables). Pivot breakdowns are numeric facts and are never retried.
	FactorRetries int
	// RetryBackoff is the base backoff of the first epoch retry; it doubles
	// per retry with ±50% jitter (default 50ms).
	RetryBackoff time.Duration
	// ReadyTimeout bounds the gap between "every node reported Done" and
	// "an assembly target holds the full factor". When it expires the
	// epoch is restarted: the only way that state persists is a block
	// frame lost en route to every assembly target (default 5s).
	ReadyTimeout time.Duration
	// DisableLocalFallback turns off degraded mode: by default, when fewer
	// than MinNodes are alive the gateway factors locally (single-node,
	// in-process) and keeps serving solves, reporting "degraded" from
	// /healthz instead of erroring.
	DisableLocalFallback bool
	// StoreDir, when non-empty, enables the durable snapshot store: plans
	// (and degraded-mode local factors) persist across gateway restarts via
	// WarmStart.
	StoreDir string
	// Tune enables feedback-driven mapping on the cluster path: WarmStart
	// loads persisted cost profiles (internal/tune) from the store, rebuilds
	// each pattern's measured-cost mapping, and every StartJob for such a
	// pattern ships the tuned mapping so all participants derive the same
	// remapped schedule. Mappings can also be registered directly with
	// SetTunedMapping.
	Tune bool
	// RequestTimeout bounds each HTTP request's work (default 120s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 512 MiB).
	MaxBodyBytes int64
	// CacheEntries/CacheBytes budget the gateway's plan cache.
	CacheEntries int
	CacheBytes   int64
	// Admission-control knobs, mirroring the serving tier: requests carry a
	// tenant identity (X-Tenant header, "default" otherwise) metered by
	// per-tenant token buckets and in-flight quotas, and wait in a weighted
	// priority queue (solves > refactors > cold factorizations) in front of
	// AdmissionWorkers concurrent coordinations (default 16). ShedAt /
	// RejectAt and the memory watermarks drive the brownout state machine;
	// zero values take the admission package's defaults, and a zero
	// TenantDefault leaves unnamed tenants unmetered.
	AdmissionWorkers int
	QueueDepth       int
	TenantDefault    admission.TenantLimits
	Tenants          map[string]admission.TenantLimits
	ShedAt           float64
	RejectAt         float64
	MemSoftBytes     uint64
	MemHardBytes     uint64
	// Logf receives progress lines; default log.Printf.
	Logf func(format string, args ...any)
}

func (c *GatewayConfig) fillDefaults() {
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.BlockSize <= 0 {
		c.BlockSize = core.DefaultBlockSize
	}
	if c.Ordering == 0 {
		c.Ordering = order.MinDegree
	}
	if c.Replicas < 0 {
		c.Replicas = 0
	} else if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.MinNodes <= 0 {
		c.MinNodes = 1
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 500 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 4
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Duration(c.HeartbeatMisses) * c.HeartbeatInterval
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 5 * time.Second
	}
	switch {
	case c.FactorRetries == 0:
		c.FactorRetries = 2
	case c.FactorRetries < 0:
		c.FactorRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 512 << 20
	}
	if c.AdmissionWorkers <= 0 {
		c.AdmissionWorkers = 16
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// member is one joined node.
type member struct {
	idx      int
	id       string
	dataAddr string
	speed    float64

	sendMu      sync.Mutex
	conn        net.Conn
	sendTimeout time.Duration

	mu       sync.Mutex
	alive    bool
	lastBeat time.Time
	stats    wire.NodeStats
	pending  map[uint64]chan *wire.SolveResp // in-flight solves by seq
}

func (m *member) send(f wire.Frame) error {
	m.sendMu.Lock()
	defer m.sendMu.Unlock()
	if m.conn == nil {
		return fmt.Errorf("cluster: node %s disconnected", m.id)
	}
	// A per-message write deadline: a wedged or partitioned peer fails this
	// send (and gets declared dead by the caller's error handling or the
	// watchdog) instead of blocking the gateway behind a full TCP window.
	if m.sendTimeout > 0 {
		m.conn.SetWriteDeadline(time.Now().Add(m.sendTimeout))
		defer m.conn.SetWriteDeadline(time.Time{})
	}
	return wire.WriteFrame(m.conn, f)
}

func (m *member) isAlive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

// gwJob is one pattern's distributed factorization state on the gateway.
type gwJob struct {
	id string

	// reqMu serializes factor requests per pattern (a run must finish or
	// fail before the next re-shards the same job).
	reqMu sync.Mutex

	plan  *core.Plan
	pr    *sched.Program
	loads []int64 // per-virtual-processor flops
	// tuned is the measured-cost mapping this job's schedule was built from
	// (nil = static heuristics). Shipped in every StartJob so the nodes
	// derive the identical program.
	tuned *mapping.Mapping

	mu       sync.Mutex
	runID    uint64
	epoch    uint32
	members  []*member // participant index → member (fixed per run)
	nodeOf   []uint16
	primary  int
	replicas []int
	doneOK   map[int]bool
	failures []*wire.Done
	ready    map[int]bool
	frontier uint32
	notify   chan struct{}
	solvable bool
	// Admission metadata of the current run, stamped into every StartJob so
	// nodes can abort work whose requester already gave up.
	tenant        string
	deadlineMicro int64
	val      []float64 // current run's matrix values (for failover restarts)
	// localF is the degraded-mode factor: built in-process when the fleet
	// is below MinNodes (or restored by WarmStart), it serves solves when no
	// assembly node holds the distributed factor. Cleared at the start of
	// each factor request so it can never serve stale values.
	localF *core.Factor
}

func (j *gwJob) wake() {
	select {
	case j.notify <- struct{}{}:
	default:
	}
}

// Gateway shards factor ownership across worker nodes and fails running
// factorizations over to buddies when a node dies. Mount Handler behind
// HTTP; Serve accepts node control connections.
type Gateway struct {
	cfg   GatewayConfig
	cache *plancache.Cache
	adm   *admission.Controller

	planOpts core.Options
	planKey  uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	ln     net.Listener

	mu      sync.Mutex
	members []*member
	byID    map[string]int
	jobs    map[string]*gwJob
	// tuned holds measured-cost mappings by pattern hash (loaded from
	// persisted profiles at WarmStart or registered via SetTunedMapping);
	// factor requests for a pattern with an entry ship it in StartJob.
	tuned map[uint64]*mapping.Mapping

	runSeq   atomic.Uint64
	solveSeq atomic.Uint64

	// Durable snapshot store (nil when cfg.StoreDir is empty).
	st       *store.Store
	storeErr error

	metFactorReqs   atomic.Uint64
	metSolveReqs    atomic.Uint64
	metFailovers    atomic.Uint64
	metEpochs       atomic.Uint64
	metEpochRetries atomic.Uint64
	metLocalFactors atomic.Uint64
	metLocalSolves  atomic.Uint64
	metWarmPlans    atomic.Uint64
	metTunedMaps    atomic.Uint64
}

// NewGateway builds a gateway; call Serve with a listener for the node
// control plane.
func NewGateway(cfg GatewayConfig) *Gateway {
	cfg.fillDefaults()
	opts := core.Options{
		BlockSize:      cfg.BlockSize,
		Ordering:       cfg.Ordering,
		Blocking:       cfg.Blocking,
		AmalgThreshold: cfg.AmalgThreshold,
		Exec:           cfg.Exec,
	}
	g := &Gateway{
		cfg:   cfg,
		cache: plancache.New(plancache.Config{MaxEntries: cfg.CacheEntries, MaxBytes: cfg.CacheBytes}),
		adm: admission.New(admission.Config{
			Workers:      cfg.AdmissionWorkers,
			QueueDepth:   cfg.QueueDepth,
			Default:      cfg.TenantDefault,
			Tenants:      cfg.Tenants,
			ShedAt:       cfg.ShedAt,
			RejectAt:     cfg.RejectAt,
			MemSoftBytes: cfg.MemSoftBytes,
			MemHardBytes: cfg.MemHardBytes,
		}),
		planOpts: opts,
		planKey:  opts.ConfigKey(),
		byID:     make(map[string]int),
		jobs:     make(map[string]*gwJob),
		tuned:    make(map[uint64]*mapping.Mapping),
	}
	if cfg.StoreDir != "" {
		g.st, g.storeErr = store.Open(cfg.StoreDir)
		if g.storeErr != nil {
			cfg.Logf("cluster gateway: snapshot store disabled: %v", g.storeErr)
		}
	}
	return g
}

// SetTunedMapping registers (or, with m == nil, clears) a measured-cost
// mapping for a pattern: the next factor request for it ships the mapping
// in StartJob and every participant schedules under it. The mapping's grid
// must cover exactly cfg.Procs virtual processors.
func (g *Gateway) SetTunedMapping(patternHash uint64, m *mapping.Mapping) error {
	if m != nil && m.Grid.P() != g.cfg.Procs {
		return fmt.Errorf("cluster: tuned mapping covers %d processors, gateway runs %d", m.Grid.P(), g.cfg.Procs)
	}
	g.mu.Lock()
	if m == nil {
		delete(g.tuned, patternHash)
	} else {
		g.tuned[patternHash] = m
	}
	g.metTunedMaps.Store(uint64(len(g.tuned)))
	g.mu.Unlock()
	return nil
}

// tunedFor returns the registered tuned mapping for a pattern if it fits
// the plan (panel count must match — a profile measured under a different
// blocking is useless here), nil otherwise.
func (g *Gateway) tunedFor(patternHash uint64, plan *core.Plan) *mapping.Mapping {
	g.mu.Lock()
	tm := g.tuned[patternHash]
	g.mu.Unlock()
	if tm == nil || len(tm.MapJ) != plan.BS.N() {
		return nil
	}
	return tm
}

// Serve accepts node control connections on ln until ctx is cancelled.
func (g *Gateway) Serve(ctx context.Context, ln net.Listener) error {
	g.ctx, g.cancel = context.WithCancel(ctx)
	defer g.cancel()
	g.ln = ln
	stop := context.AfterFunc(g.ctx, func() { ln.Close() })
	defer stop()
	g.wg.Add(1)
	go g.watchdog()
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.cancel()
			g.wg.Wait()
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		g.wg.Add(1)
		go g.nodeConn(faultinject.WrapConn("cluster.gw.ctrl", conn))
	}
}

// nodeConn handles one node's control connection: Hello registers it, then
// heartbeats, Done, FactorReady, and SolveResp frames flow until the
// connection drops — which declares the node dead immediately.
func (g *Gateway) nodeConn(conn net.Conn) {
	defer g.wg.Done()
	defer conn.Close()
	stop := context.AfterFunc(g.ctx, func() { conn.Close() })
	defer stop()

	conn.SetReadDeadline(time.Now().Add(2 * g.cfg.HeartbeatTimeout))
	f, err := wire.ReadFrame(conn)
	if err != nil || f.Type != wire.THello {
		g.cfg.Logf("cluster gateway: connection from %v did not Hello", conn.RemoteAddr())
		return
	}
	m := g.register(f.Hello, conn)
	g.cfg.Logf("cluster gateway: node %s joined (data %s, speed %.2f)", m.id, m.dataAddr, m.speed)
	for {
		// A read deadline well past the heartbeat timeout: the watchdog is
		// what declares silence, but a fully wedged connection must also
		// unblock this goroutine eventually.
		conn.SetReadDeadline(time.Now().Add(2 * g.cfg.HeartbeatTimeout))
		f, err := wire.ReadFrame(conn)
		if err != nil {
			g.markDead(m, fmt.Sprintf("control connection lost: %v", err))
			return
		}
		switch f.Type {
		case wire.THeartbeat:
			m.mu.Lock()
			m.lastBeat = time.Now()
			m.stats = f.Heartbeat.Stats
			m.mu.Unlock()
		case wire.TDone:
			g.handleDone(m, f.Done)
		case wire.TFactorReady:
			g.handleReady(m, f.FactorReady)
		case wire.TSolveResp:
			m.mu.Lock()
			ch := m.pending[f.SolveResp.Seq]
			delete(m.pending, f.SolveResp.Seq)
			m.mu.Unlock()
			if ch != nil {
				ch <- f.SolveResp
			}
		default:
			g.cfg.Logf("cluster gateway: unexpected frame %v from node %s", f.Type, m.id)
		}
	}
}

func (g *Gateway) register(h *wire.Hello, conn net.Conn) *member {
	g.mu.Lock()
	defer g.mu.Unlock()
	if i, ok := g.byID[h.ID]; ok {
		// Rejoin: reuse the slot so participant indices stay stable.
		m := g.members[i]
		m.sendMu.Lock()
		m.conn = conn
		m.sendMu.Unlock()
		m.mu.Lock()
		m.dataAddr, m.speed = h.DataAddr, h.Speed
		m.alive, m.lastBeat = true, time.Now()
		m.mu.Unlock()
		return m
	}
	m := &member{
		idx: len(g.members), id: h.ID, dataAddr: h.DataAddr, speed: h.Speed,
		conn: conn, alive: true, lastBeat: time.Now(),
		sendTimeout: g.cfg.SendTimeout,
		pending:     make(map[uint64]chan *wire.SolveResp),
	}
	g.members = append(g.members, m)
	g.byID[h.ID] = m.idx
	return m
}

func (g *Gateway) watchdog() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.HeartbeatTimeout / 4)
	defer t.Stop()
	for {
		select {
		case <-g.ctx.Done():
			return
		case <-t.C:
			g.mu.Lock()
			members := append([]*member(nil), g.members...)
			g.mu.Unlock()
			for _, m := range members {
				m.mu.Lock()
				silent := m.alive && time.Since(m.lastBeat) > g.cfg.HeartbeatTimeout
				m.mu.Unlock()
				if silent {
					g.markDead(m, "heartbeat timeout")
				}
			}
		}
	}
}

// markDead declares a node dead and fails over every job it participates
// in: its virtual processors move to the buddy, assembly targets are
// re-picked if needed, and the epoch restarts on the survivors.
func (g *Gateway) markDead(m *member, reason string) {
	m.mu.Lock()
	was := m.alive
	m.alive = false
	m.mu.Unlock()
	if !was {
		return
	}
	g.cfg.Logf("cluster gateway: node %s dead (%s)", m.id, reason)
	g.mu.Lock()
	jobs := make([]*gwJob, 0, len(g.jobs))
	for _, j := range g.jobs {
		jobs = append(jobs, j)
	}
	g.mu.Unlock()
	for _, j := range jobs {
		g.failover(j, m)
	}
}

// failover restarts j's current run without dead, if dead participates.
func (g *Gateway) failover(j *gwJob, dead *member) {
	j.mu.Lock()
	defer j.mu.Unlock()
	deadIdx := -1
	alive := make([]bool, len(j.members))
	for i, m := range j.members {
		alive[i] = m.isAlive()
		if m == dead {
			deadIdx = i
		}
	}
	if deadIdx < 0 || j.runID == 0 || j.solvable || len(j.failures) > 0 {
		// Node not in this run, run already completed (solve routing
		// handles assembly-target death separately), or run already
		// failed — nothing to restart.
		j.wake()
		return
	}
	anyAlive := false
	for _, a := range alive {
		anyAlive = anyAlive || a
	}
	if !anyAlive {
		j.failures = append(j.failures, &wire.Done{
			JobID: j.id, RunID: j.runID, Epoch: j.epoch, Err: "all nodes dead",
		})
		j.wake()
		return
	}

	// Buddy recovery over participant indices, shared with the simulator's
	// fault plan: every processor of a dead node moves to the next
	// survivor. Cascading failures compose (buddy-of-a-buddy).
	for p, nd := range j.nodeOf {
		if !alive[nd] {
			j.nodeOf[p] = uint16(machine.Buddy(int32(nd), alive))
		}
	}
	// Re-pick assembly targets among survivors, keyed by the same ring so
	// surviving targets stay targets.
	ids := make([]string, len(j.members))
	for i, m := range j.members {
		ids[i] = m.id
	}
	asm := buildRing(ids).pick(fnv1a(j.id), 1+g.cfg.Replicas, func(i int) bool { return alive[i] })
	j.primary, j.replicas = asm[0], asm[1:]

	// Frontier: the minimum completed-column watermark reported by the
	// last epoch's Done frames (observability; restart granularity is the
	// per-block predone set each node keeps).
	j.epoch++
	g.metFailovers.Add(1)
	g.metEpochs.Add(1)
	j.doneOK = make(map[int]bool)
	for i := range j.ready {
		if !alive[i] {
			delete(j.ready, i)
		}
	}
	g.cfg.Logf("cluster gateway: job %s failing over to epoch %d (primary %s)", j.id, j.epoch, j.members[j.primary].id)
	g.broadcastStartLocked(j)
	j.wake()
}

func (j *gwJob) allDoneLocked() bool {
	for i, m := range j.members {
		if m.isAlive() && !j.doneOK[i] {
			return false
		}
	}
	return true
}

// broadcastStartLocked sends the current epoch's StartJob to every alive
// participant. Caller holds j.mu.
func (g *Gateway) broadcastStartLocked(j *gwJob) {
	colptr, rowind := matrixToWire(j.plan.A)
	parts := make([]wire.Participant, len(j.members))
	for i, m := range j.members {
		m.mu.Lock()
		parts[i] = wire.Participant{ID: m.id, DataAddr: m.dataAddr, Alive: m.alive}
		m.mu.Unlock()
	}
	reps := make([]uint16, len(j.replicas))
	for i, r := range j.replicas {
		reps[i] = uint16(r)
	}
	sj := &wire.StartJob{
		JobID: j.id, RunID: j.runID, Epoch: j.epoch,
		N: uint32(j.plan.A.N), ColPtr: colptr, RowInd: rowind, Val: j.val,
		BlockSize: uint32(g.cfg.BlockSize),
		Blocking:  uint8(g.cfg.Blocking), Ordering: uint8(g.cfg.Ordering),
		Exec: uint8(g.cfg.Exec), AmalgThr: g.cfg.AmalgThreshold,
		Procs: uint32(g.cfg.Procs), NodeOf: append([]uint16(nil), j.nodeOf...),
		Participants: parts, Primary: uint16(j.primary), Replicas: reps,
		Frontier: j.frontier,
		Tenant:   j.tenant, DeadlineUnixMicro: j.deadlineMicro,
	}
	if j.tuned != nil {
		sj.MapPr, sj.MapPc = uint16(j.tuned.Grid.Pr), uint16(j.tuned.Grid.Pc)
		sj.MapI = make([]uint16, len(j.tuned.MapI))
		for i, v := range j.tuned.MapI {
			sj.MapI[i] = uint16(v)
		}
		sj.MapJ = make([]uint16, len(j.tuned.MapJ))
		for i, v := range j.tuned.MapJ {
			sj.MapJ[i] = uint16(v)
		}
	}
	for i, m := range j.members {
		if !parts[i].Alive {
			continue
		}
		if err := m.send(wire.Frame{Type: wire.TStartJob, StartJob: sj}); err != nil {
			g.cfg.Logf("cluster gateway: start to %s: %v", m.id, err)
		}
	}
}

func (g *Gateway) jobByID(id string) *gwJob {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jobs[id]
}

func (g *Gateway) handleDone(m *member, dn *wire.Done) {
	// Done frames carry a stats snapshot fresher than the last heartbeat;
	// fold it in so /metrics reflects a job the moment it completes.
	m.mu.Lock()
	m.stats = dn.Stats
	m.mu.Unlock()
	j := g.jobByID(dn.JobID)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if dn.RunID != j.runID || dn.Epoch != j.epoch {
		return
	}
	pidx := -1
	for i, pm := range j.members {
		if pm == m {
			pidx = i
		}
	}
	if pidx < 0 {
		return
	}
	if dn.Watermark > j.frontier {
		j.frontier = dn.Watermark
	}
	if dn.OK {
		j.doneOK[pidx] = true
	} else {
		j.failures = append(j.failures, dn)
	}
	j.wake()
}

func (g *Gateway) handleReady(m *member, fr *wire.FactorReady) {
	j := g.jobByID(fr.JobID)
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if fr.RunID != j.runID {
		return
	}
	for i, pm := range j.members {
		if pm == m {
			j.ready[i] = true
		}
	}
	j.wake()
}

// ---- HTTP API ----

// Handler returns the gateway's HTTP mux: the serving tier's /v1 surface
// backed by the cluster instead of an in-process executor.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", g.handleFactor)
	mux.HandleFunc("/v1/solve", g.handleSolve)
	mux.HandleFunc("/healthz", g.handleHealthz)
	mux.HandleFunc("/metrics", g.handleMetrics)
	return mux
}

type gwError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"` // stable admission codes ("tenant_rate", "brownout", ...)
	// RetryAfterS mirrors the Retry-After header on 429/503 rejections.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (g *Gateway) writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, gwError{Error: err.Error()})
}

// gwTenantOf extracts the request's tenant identity.
func gwTenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return admission.DefaultTenant
}

// writeRejection renders an admission rejection: the Retry-After header
// (whole seconds, as HTTP requires) plus the envelope carrying the stable
// code and the same hint in-body.
func (g *Gateway) writeRejection(w http.ResponseWriter, rej *admission.Rejection) {
	ra := rej.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	secs := int64((ra + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, rej.Status, gwError{
		Error: rej.Message, Code: rej.Code, RetryAfterS: float64(secs),
	})
}

// admit runs the gateway's admission gate; it reports whether the caller
// may proceed, having already written the response when not.
func (g *Gateway) admit(ctx context.Context, w http.ResponseWriter, req admission.Request) (func(), bool) {
	release, rej, err := g.adm.Admit(ctx, req)
	if rej != nil {
		g.writeRejection(w, rej)
		return nil, false
	}
	if err != nil {
		// The requester gave up while queued.
		g.writeErr(w, http.StatusGatewayTimeout, err)
		return nil, false
	}
	return release, true
}

type gwFactorResponse struct {
	ID       string `json:"id"`
	N        int    `json:"n"`
	NNZ      int    `json:"nnz"`
	NNZL     int64  `json:"nnz_l"`
	Flops    int64  `json:"flops"`
	CacheHit bool   `json:"cache_hit"`
	Nodes    int    `json:"nodes"`
	Epochs   uint32 `json:"epochs"` // failover restarts this run survived
	Primary  string `json:"primary"`
	// Degraded is true when the fleet was unavailable and the factor was
	// computed locally on the gateway (Nodes 0, Primary "local").
	Degraded  bool    `json:"degraded,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func (g *Gateway) handleFactor(w http.ResponseWriter, r *http.Request) {
	g.metFactorReqs.Add(1)
	if r.Method != http.MethodPost {
		g.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	// Shed doomed requests before parsing the matrix body; the class is
	// unknowable until the pattern hash is, so precheck as Refactor (the
	// lenient choice — Admit below re-applies the gates with the real
	// class).
	if rej := g.adm.Precheck(gwTenantOf(r), admission.Refactor); rej != nil {
		g.writeRejection(w, rej)
		return
	}
	m, err := server.ReadMatrix(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes), r.Header.Get("Content-Type"))
	if err != nil {
		g.writeErr(w, http.StatusBadRequest, err)
		return
	}
	// A pattern the cluster already holds is a refactor (values reload on a
	// cached plan); an unknown one is a cold factorization and queues behind
	// everything else under load.
	tenant := gwTenantOf(r)
	pri := admission.Cold
	if j := g.jobByID(fmt.Sprintf("%016x", m.PatternHash())); j != nil {
		pri = admission.Refactor
	}
	deadline, _ := ctx.Deadline()
	release, ok := g.admit(ctx, w, admission.Request{
		Tenant: tenant, Priority: pri, Deadline: deadline,
	})
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	resp, code, err := g.factor(ctx, m, tenant)
	if err != nil {
		g.writeErr(w, code, err)
		return
	}
	resp.ElapsedMs = float64(time.Since(start).Microseconds()) / 1e3
	writeJSON(w, http.StatusOK, resp)
}

// factor runs one distributed factorization to completion (through any
// failovers) and returns the response.
func (g *Gateway) factor(ctx context.Context, m *sparse.Matrix, tenant string) (*gwFactorResponse, int, error) {
	id := fmt.Sprintf("%016x", m.PatternHash())
	entry, hit, err := g.cache.GetOrBuild(m, g.planKey, func() (*core.Plan, sched.Assignment, error) {
		plan, err := core.NewPlan(m, g.planOpts)
		if err != nil {
			return nil, sched.Assignment{}, err
		}
		a, _ := buildSchedule(plan, g.cfg.Procs)
		return plan, a, nil
	})
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}

	g.mu.Lock()
	j, ok := g.jobs[id]
	if !ok {
		j = &gwJob{id: id, notify: make(chan struct{}, 1)}
		g.jobs[id] = j
	}
	g.mu.Unlock()

	j.reqMu.Lock()
	defer j.reqMu.Unlock()

	if j.plan != nil && !j.plan.A.SamePattern(m) {
		return nil, http.StatusConflict, fmt.Errorf("factor id %s is held by a different sparsity pattern (hash collision)", id)
	}
	// (Re)build the schedule when the job is new or its tuned mapping
	// changed — a measured remap registered between runs must reshape this
	// run, not the next restart's.
	if tm := g.tunedFor(m.PatternHash(), entry.Plan); j.plan == nil || j.tuned != tm {
		j.plan, j.tuned = entry.Plan, tm
		a := entry.Assign
		if tm != nil {
			// No domain override under a tuned map: the remap balanced loads
			// under exactly this ownership (see internal/tune).
			a = entry.Plan.Assign(tm, 0)
		}
		j.pr = sched.Build(entry.Plan.BS, a)
		j.loads = procLoads(j.pr)
	}

	// Snapshot alive members as this run's fixed participant list.
	g.mu.Lock()
	var parts []*member
	for _, mm := range g.members {
		if mm.isAlive() {
			parts = append(parts, mm)
		}
	}
	g.mu.Unlock()
	if len(parts) < g.cfg.MinNodes {
		// Partitioned from (or never had) the fleet: degrade to a local
		// single-node factorization instead of erroring, unless disabled.
		if !g.cfg.DisableLocalFallback {
			return g.factorLocal(ctx, j, entry, m, hit)
		}
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("cluster has %d nodes, need %d", len(parts), g.cfg.MinNodes)
	}

	j.mu.Lock()
	j.localF = nil // never serve stale values if this run changes them
	j.tenant = tenant
	j.deadlineMicro = 0
	if dl, ok := ctx.Deadline(); ok {
		j.deadlineMicro = dl.UnixMicro()
	}
	j.members = parts
	j.runID = g.runSeq.Add(1)
	j.epoch = 0
	j.frontier = 0
	j.val = m.Val
	j.doneOK = make(map[int]bool)
	j.failures = nil
	j.ready = make(map[int]bool)
	j.solvable = false
	nodeOf, perr := g.partitionLocked(j)
	if perr != nil {
		// A participant advertised an unusable speed (zero, negative, or
		// non-finite): refuse loudly instead of silently piling every
		// processor onto whichever node the degenerate arithmetic favored.
		j.mu.Unlock()
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("cannot partition processors across nodes: %w", perr)
	}
	j.nodeOf = nodeOf
	ids := make([]string, len(parts))
	for i, mm := range parts {
		ids[i] = mm.id
	}
	asm := buildRing(ids).pick(fnv1a(id), 1+g.cfg.Replicas, func(i int) bool { return parts[i].isAlive() })
	j.primary, j.replicas = asm[0], asm[1:]
	g.metEpochs.Add(1)
	g.broadcastStartLocked(j)
	runID := j.runID
	j.mu.Unlock()

	// Wait for every (surviving) participant's Done plus at least one
	// assembly target holding the full factor. Failovers reset the done
	// set; failures surface ranked (lowest pivot coordinates win, matching
	// the deterministic contract of the in-process executor). Epochs felled
	// by infrastructure (non-pivot) errors restart with jittered
	// exponential backoff; when the whole fleet is gone the request
	// degrades to a local factorization.
	retries := 0
	for {
		j.mu.Lock()
		if j.runID != runID {
			j.mu.Unlock()
			return nil, http.StatusConflict, errors.New("superseded by a newer factor request")
		}
		if len(j.failures) > 0 {
			fail := bestFailure(j.failures)
			if fail.HasPivot {
				j.mu.Unlock()
				g.abort(j, runID, fail.Err)
				return nil, http.StatusUnprocessableEntity, &kernels.PivotError{
					Block: int(fail.PivotBlock), Row: int(fail.PivotRow), Pivot: fail.Pivot,
				}
			}
			if strings.Contains(fail.Err, errRequesterDeadline.Error()) {
				// A node abandoned the epoch because the stamped deadline
				// passed. Retrying cannot beat an expired clock: answer 504.
				j.mu.Unlock()
				g.abort(j, runID, fail.Err)
				return nil, http.StatusGatewayTimeout, errors.New(fail.Err)
			}
			anyAlive := false
			for _, mm := range j.members {
				anyAlive = anyAlive || mm.isAlive()
			}
			if !anyAlive && !g.cfg.DisableLocalFallback {
				j.mu.Unlock()
				g.cfg.Logf("cluster gateway: job %s lost every node; degrading to local factorization", j.id)
				return g.factorLocal(ctx, j, entry, m, hit)
			}
			if anyAlive && retries < g.cfg.FactorRetries {
				retries++
				j.failures = nil
				j.doneOK = make(map[int]bool)
				j.epoch++
				g.metEpochs.Add(1)
				g.metEpochRetries.Add(1)
				epoch := j.epoch
				j.mu.Unlock()
				delay := jitterBackoff(g.cfg.RetryBackoff, retries)
				g.cfg.Logf("cluster gateway: job %s epoch failed (%s); retry %d in %v as epoch %d",
					j.id, fail.Err, retries, delay, epoch)
				select {
				case <-ctx.Done():
					g.abort(j, runID, "request cancelled")
					return nil, http.StatusGatewayTimeout, ctx.Err()
				case <-time.After(delay):
				}
				j.mu.Lock()
				if j.runID == runID {
					g.broadcastStartLocked(j)
				}
				j.mu.Unlock()
				continue
			}
			j.mu.Unlock()
			g.abort(j, runID, fail.Err)
			return nil, http.StatusInternalServerError, errors.New(fail.Err)
		}
		if j.allDoneLocked() && len(j.ready) > 0 {
			j.solvable = true
			epochs := j.epoch
			primary := j.members[j.primary].id
			nodes := len(j.members)
			j.mu.Unlock()
			plan := j.plan
			// Persist a plan snapshot (matrix + config, no blocks): a
			// restarted gateway skips ordering and symbolic analysis for
			// this pattern; the factor itself lives on the nodes.
			g.saveSnapshot(m, nil)
			return &gwFactorResponse{
				ID: id, N: m.N, NNZ: m.NNZ(),
				NNZL: plan.Exact.NZinL, Flops: plan.Exact.Flops,
				CacheHit: hit, Nodes: nodes, Epochs: epochs, Primary: primary,
			}, 0, nil
		}
		j.mu.Unlock()
		select {
		case <-ctx.Done():
			g.abort(j, runID, "request cancelled")
			return nil, http.StatusGatewayTimeout, ctx.Err()
		case <-j.notify:
		case <-time.After(g.cfg.ReadyTimeout):
			// Every node finished its slice but no assembly target ever
			// held the full factor: frames to the targets were lost in
			// flight. Synthesize a transient failure so the retry branch
			// restarts the epoch and survivors retransmit.
			j.mu.Lock()
			if j.runID == runID && len(j.failures) == 0 &&
				j.allDoneLocked() && len(j.ready) == 0 {
				j.failures = append(j.failures, &wire.Done{
					Err: "all nodes done but no assembly target holds the full factor",
				})
			}
			j.mu.Unlock()
		}
	}
}

// partitionLocked assigns virtual processors to the run's participants:
// processors in decreasing flop load, each to the node finishing it
// soonest at its advertised speed. Degenerate advertised speeds (zero,
// negative, NaN, ±Inf) are an error — the checked partition refuses them
// rather than producing a silently lopsided assignment. Caller holds j.mu.
func (g *Gateway) partitionLocked(j *gwJob) ([]uint16, error) {
	speeds := make([]float64, len(j.members))
	for i, m := range j.members {
		speeds[i] = m.speed
	}
	ord := make([]int, len(j.loads))
	for i := range ord {
		ord[i] = i
	}
	// Decreasing load, mirroring mapping.Greedy's convention.
	for i := 1; i < len(ord); i++ {
		for k := i; k > 0 && j.loads[ord[k]] > j.loads[ord[k-1]]; k-- {
			ord[k], ord[k-1] = ord[k-1], ord[k]
		}
	}
	asg, err := mapping.GreedyWeightedChecked(ord, j.loads, speeds)
	if err != nil {
		return nil, err
	}
	nodeOf := make([]uint16, len(asg))
	for p, nd := range asg {
		nodeOf[p] = uint16(nd)
	}
	return nodeOf, nil
}

// bestFailure ranks failures like the in-process executor: any pivot error
// beats an infrastructure error, and among pivots the lowest (Block, Row)
// wins, so concurrent breakdowns surface deterministically.
func bestFailure(fs []*wire.Done) *wire.Done {
	best := fs[0]
	for _, f := range fs[1:] {
		switch {
		case f.HasPivot && !best.HasPivot:
			best = f
		case f.HasPivot && best.HasPivot:
			if f.PivotBlock < best.PivotBlock ||
				(f.PivotBlock == best.PivotBlock && f.PivotRow < best.PivotRow) {
				best = f
			}
		}
	}
	return best
}

func (g *Gateway) abort(j *gwJob, runID uint64, reason string) {
	j.mu.Lock()
	members := append([]*member(nil), j.members...)
	epoch := j.epoch
	j.mu.Unlock()
	ab := &wire.Abort{JobID: j.id, RunID: runID, Epoch: epoch, Reason: reason}
	for _, m := range members {
		if m.isAlive() {
			_ = m.send(wire.Frame{Type: wire.TAbort, Abort: ab})
		}
	}
}

type gwSolveRequest struct {
	ID string    `json:"id"`
	B  []float64 `json:"b"`
}

type gwSolveResponse struct {
	ID        string    `json:"id"`
	X         []float64 `json:"x"`
	Node      string    `json:"node"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

func (g *Gateway) handleSolve(w http.ResponseWriter, r *http.Request) {
	g.metSolveReqs.Add(1)
	if r.Method != http.MethodPost {
		g.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
	defer cancel()
	deadline, _ := ctx.Deadline()
	release, ok := g.admit(ctx, w, admission.Request{
		Tenant: gwTenantOf(r), Priority: admission.Interactive, Deadline: deadline,
	})
	if !ok {
		return
	}
	defer release()
	var req gwSolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes)).Decode(&req); err != nil {
		g.writeErr(w, http.StatusBadRequest, err)
		return
	}
	j := g.jobByID(req.ID)
	if j == nil {
		g.writeErr(w, http.StatusNotFound, fmt.Errorf("no factor %q", req.ID))
		return
	}
	// Route to the primary if it still holds the factor, else any ready
	// replica — the solve-side half of buddy failover. The degraded-mode
	// local factor is the target of last resort.
	j.mu.Lock()
	localF := j.localF
	var targets []*member
	if j.solvable {
		order := append([]int{j.primary}, j.replicas...)
		for _, i := range order {
			if j.ready[i] && j.members[i].isAlive() {
				targets = append(targets, j.members[i])
			}
		}
	}
	j.mu.Unlock()
	if len(targets) == 0 && localF == nil {
		g.writeErr(w, http.StatusConflict, fmt.Errorf("factor %q is not ready", req.ID))
		return
	}

	start := time.Now()
	var lastErr error
	for _, t := range targets {
		x, err := g.solveOn(ctx, t, req.ID, req.B)
		if err == nil {
			writeJSON(w, http.StatusOK, gwSolveResponse{
				ID: req.ID, X: x, Node: t.id,
				ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
			})
			return
		}
		lastErr = err
	}
	if localF != nil {
		g.metLocalSolves.Add(1)
		x, err := localF.Solve(req.B)
		if err == nil {
			writeJSON(w, http.StatusOK, gwSolveResponse{
				ID: req.ID, X: x, Node: "local",
				ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
			})
			return
		}
		lastErr = err
	}
	if lastErr == nil {
		lastErr = errors.New("no assembly node holds the factor")
	}
	g.writeErr(w, http.StatusServiceUnavailable, lastErr)
}

func (g *Gateway) solveOn(ctx context.Context, m *member, jobID string, b []float64) ([]float64, error) {
	seq := g.solveSeq.Add(1)
	ch := make(chan *wire.SolveResp, 1)
	m.mu.Lock()
	m.pending[seq] = ch
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		delete(m.pending, seq)
		m.mu.Unlock()
	}()
	if err := m.send(wire.Frame{Type: wire.TSolveReq, SolveReq: &wire.SolveReq{Seq: seq, JobID: jobID, B: b}}); err != nil {
		return nil, err
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case resp := <-ch:
		if !resp.OK {
			return nil, errors.New(resp.Err)
		}
		return resp.X, nil
	}
}

type gwNodeHealth struct {
	ID         string  `json:"id"`
	Alive      bool    `json:"alive"`
	DataAddr   string  `json:"data_addr"`
	LastBeatMs float64 `json:"last_heartbeat_ms"`
	Speed      float64 `json:"speed"`
}

type gwHealth struct {
	Status    string         `json:"status"`    // ok | degraded | down
	Admission string         `json:"admission"` // ok | shed-low-priority | reject-new-factors | drain
	Nodes     []gwNodeHealth `json:"nodes"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	members := append([]*member(nil), g.members...)
	g.mu.Unlock()
	status, _, _ := g.fleetStatus()
	h := gwHealth{Status: status, Admission: g.adm.State().String()}
	for _, m := range members {
		m.mu.Lock()
		nh := gwNodeHealth{
			ID: m.id, Alive: m.alive, DataAddr: m.dataAddr, Speed: m.speed,
			LastBeatMs: float64(time.Since(m.lastBeat).Microseconds()) / 1e3,
		}
		m.mu.Unlock()
		h.Nodes = append(h.Nodes, nh)
	}
	// "degraded" answers 200: the gateway still serves (local fallback or a
	// reduced fleet), and a load balancer should keep routing to it. Only
	// "down" — below MinNodes with fallback disabled — is a 503.
	code := http.StatusOK
	if status == "down" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

type gwNodeMetrics struct {
	ID          string  `json:"id"`
	Alive       bool    `json:"alive"`
	LastBeatMs  float64 `json:"last_heartbeat_ms"` // age of the newest heartbeat
	BlocksOwned uint64  `json:"blocks_owned"`
	BlocksDone  uint64  `json:"blocks_done"`
	Flops       uint64  `json:"flops"`
	Steals      uint64  `json:"steals"`
	BytesSent   uint64  `json:"bytes_sent"`
	BytesRecv   uint64  `json:"bytes_received"`
	Failovers   uint64  `json:"failovers"`
	// DeadlineAborts counts epochs the node abandoned because the
	// requester's deadline expired before the work finished.
	DeadlineAborts uint64 `json:"deadline_aborts"`
}

type gwMetricsDoc struct {
	Status         string          `json:"status"` // ok | degraded | down
	FactorRequests uint64          `json:"factor_requests"`
	SolveRequests  uint64          `json:"solve_requests"`
	Failovers      uint64          `json:"failovers"`
	Epochs         uint64          `json:"epochs_started"`
	EpochRetries   uint64          `json:"epoch_retries"` // backoff restarts after infra failures
	LocalFactors   uint64          `json:"local_factors"` // degraded-mode factorizations
	LocalSolves    uint64          `json:"local_solves"`  // solves served by the local fallback factor
	WarmPlans      uint64          `json:"warm_plans"`    // plans restored by the last WarmStart
	TunedMaps      uint64          `json:"tuned_maps"`    // measured-cost mappings registered for propagation
	Jobs           int             `json:"jobs"`
	Store          *store.Stats    `json:"store,omitempty"` // absent without -store-dir
	Admission      admission.Stats `json:"admission"`
	Nodes          []gwNodeMetrics `json:"nodes"`
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	members := append([]*member(nil), g.members...)
	jobs := len(g.jobs)
	g.mu.Unlock()
	status, _, _ := g.fleetStatus()
	doc := gwMetricsDoc{
		Status:         status,
		FactorRequests: g.metFactorReqs.Load(),
		SolveRequests:  g.metSolveReqs.Load(),
		Failovers:      g.metFailovers.Load(),
		Epochs:         g.metEpochs.Load(),
		EpochRetries:   g.metEpochRetries.Load(),
		LocalFactors:   g.metLocalFactors.Load(),
		LocalSolves:    g.metLocalSolves.Load(),
		WarmPlans:      g.metWarmPlans.Load(),
		TunedMaps:      g.metTunedMaps.Load(),
		Jobs:           jobs,
		Admission:      g.adm.Snapshot(),
	}
	if g.st != nil {
		st := g.st.Stats()
		doc.Store = &st
	}
	for _, m := range members {
		m.mu.Lock()
		doc.Nodes = append(doc.Nodes, gwNodeMetrics{
			ID: m.id, Alive: m.alive,
			LastBeatMs:  float64(time.Since(m.lastBeat).Microseconds()) / 1e3,
			BlocksOwned: m.stats.BlocksOwned, BlocksDone: m.stats.BlocksDone,
			Flops: m.stats.Flops, Steals: m.stats.Steals,
			BytesSent: m.stats.BytesSent, BytesRecv: m.stats.BytesRecv,
			Failovers: m.stats.Failovers, DeadlineAborts: m.stats.DeadlineAborts,
		})
		m.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, doc)
}

// NodeOfSnapshot returns the current processor→node partition of a job's
// run, for tests and benchmarks asserting on the speed-aware split.
func (g *Gateway) NodeOfSnapshot(jobID string) ([]uint16, []string) {
	j := g.jobByID(jobID)
	if j == nil {
		return nil, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ids := make([]string, len(j.members))
	for i, m := range j.members {
		ids[i] = m.id
	}
	return append([]uint16(nil), j.nodeOf...), ids
}

// Loads returns a job's per-processor flop loads (after a factor request
// built the schedule).
func (g *Gateway) Loads(jobID string) []int64 {
	j := g.jobByID(jobID)
	if j == nil {
		return nil
	}
	return append([]int64(nil), j.loads...)
}
