package blocks

import (
	"testing"

	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/symbolic"
)

func symFor(t *testing.T) *symbolic.Structure {
	t.Helper()
	st, _ := analyzed(t, gen.IrregularMesh(250, 5, 3, 7), ord.MinDegree, 0, symbolic.DefaultAmalgamation())
	return st
}

// checkPartition verifies the invariants any partition must satisfy.
func checkPartition(t *testing.T, st *symbolic.Structure, part *Partition, maxW int) {
	t.Helper()
	if part.Start[0] != 0 || part.Start[part.N()] != st.N {
		t.Fatal("partition does not cover the matrix")
	}
	for p := 0; p < part.N(); p++ {
		w := part.Width(p)
		if w < 1 || w > maxW {
			t.Fatalf("panel %d width %d outside [1,%d]", p, w, maxW)
		}
		s := part.SnodeOf[p]
		sn := st.Snodes[s]
		if part.Start[p] < sn.First || part.Start[p+1]-1 > sn.Last() {
			t.Fatalf("panel %d crosses supernode boundary", p)
		}
	}
	for j := 0; j < st.N; j++ {
		p := part.PanelOf[j]
		if j < part.Start[p] || j >= part.Start[p+1] {
			t.Fatalf("PanelOf[%d]=%d inconsistent", j, p)
		}
	}
}

func TestNewPartitionStaged(t *testing.T) {
	st := symFor(t)
	part, err := NewPartitionStaged(st, 16, 4, st.N/2)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, st, part, 16)
	// Early panels must be allowed to reach width 16; late panels must
	// not exceed 4 (when their supernodes allow it).
	lateMax := 0
	for p := 0; p < part.N(); p++ {
		if part.Start[p] >= st.N/2 && part.Width(p) > lateMax {
			lateMax = part.Width(p)
		}
	}
	if lateMax > 4 {
		t.Fatalf("late panel width %d exceeds 4", lateMax)
	}
	// Builds into a valid block structure.
	if _, err := Build(st, part); err != nil {
		t.Fatal(err)
	}
}

// Regression: degenerate staged parameters used to be silently clamped;
// they must be rejected instead.
func TestNewPartitionStagedRejectsDegenerate(t *testing.T) {
	st := symFor(t)
	cases := []struct {
		name                    string
		bEarly, bLate, boundary int
	}{
		{"zero early width", 0, 4, 10},
		{"negative late width", 16, -3, 10},
		{"boundary at 0", 16, 4, 0},
		{"negative boundary", 16, 4, -5},
		{"boundary at N", 16, 4, st.N},
		{"boundary past N", 16, 4, st.N + 7},
	}
	for _, tc := range cases {
		if _, err := NewPartitionStaged(st, tc.bEarly, tc.bLate, tc.boundary); err == nil {
			t.Errorf("%s: NewPartitionStaged(%d, %d, %d) succeeded, want error",
				tc.name, tc.bEarly, tc.bLate, tc.boundary)
		}
	}
	// Minimal valid parameters still work.
	part, err := NewPartitionStaged(st, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, st, part, 1)
}

func TestNewPartitionCycled(t *testing.T) {
	st := symFor(t)
	widths := []int{3, 5, 9}
	part, err := NewPartitionCycled(st, widths)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, st, part, 9)
	if _, err := Build(st, part); err != nil {
		t.Fatal(err)
	}
	// Panels whose supernode has room must follow the cycle.
	for p := 0; p < part.N(); p++ {
		want := widths[p%len(widths)]
		s := part.SnodeOf[p]
		room := st.Snodes[s].First + st.Snodes[s].Width - part.Start[p]
		if room >= want && part.Width(p) != want {
			t.Fatalf("panel %d width %d, cycle wants %d", p, part.Width(p), want)
		}
	}
}

// Regression: empty or zero-containing width lists used to be silently
// patched up (mutating the caller's slice); they must be rejected, and
// valid inputs must be left unmodified.
func TestNewPartitionCycledRejectsDegenerate(t *testing.T) {
	st := symFor(t)
	if _, err := NewPartitionCycled(st, nil); err == nil {
		t.Error("NewPartitionCycled(nil) succeeded, want error")
	}
	if _, err := NewPartitionCycled(st, []int{}); err == nil {
		t.Error("NewPartitionCycled(empty) succeeded, want error")
	}
	if _, err := NewPartitionCycled(st, []int{4, 0, 2}); err == nil {
		t.Error("NewPartitionCycled with zero width succeeded, want error")
	}
	if _, err := NewPartitionCycled(st, []int{4, -1}); err == nil {
		t.Error("NewPartitionCycled with negative width succeeded, want error")
	}
	widths := []int{4, 2}
	if _, err := NewPartitionCycled(st, widths); err != nil {
		t.Fatal(err)
	}
	if widths[0] != 4 || widths[1] != 2 {
		t.Errorf("NewPartitionCycled mutated caller's widths: %v", widths)
	}
}
