package blocks

import (
	"sort"
	"testing"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// analyzed prepares a symbolic structure for a matrix (permute, postorder,
// analyze).
func analyzed(t *testing.T, m *sparse.Matrix, method order.Method, gridDim int, amalg symbolic.AmalgamationConfig) (*symbolic.Structure, *sparse.Matrix) {
	t.Helper()
	p, err := order.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, amalg)
	if err != nil {
		t.Fatal(err)
	}
	return st, m2
}

func buildFor(t *testing.T, m *sparse.Matrix, method order.Method, gridDim, b int) *Structure {
	t.Helper()
	st, _ := analyzed(t, m, method, gridDim, symbolic.DefaultAmalgamation())
	part := NewPartition(st, b)
	bs, err := Build(st, part)
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

func TestPartitionInvariants(t *testing.T) {
	st, _ := analyzed(t, gen.IrregularMesh(200, 5, 3, 9), order.MinDegree, 0, symbolic.DefaultAmalgamation())
	for _, b := range []int{1, 3, 8, 48} {
		part := NewPartition(st, b)
		if part.Start[0] != 0 || part.Start[part.N()] != st.N {
			t.Fatalf("B=%d: partition does not cover matrix", b)
		}
		for p := 0; p < part.N(); p++ {
			w := part.Width(p)
			if w < 1 || w > b {
				t.Fatalf("B=%d: panel %d width %d", b, p, w)
			}
			s := part.SnodeOf[p]
			sn := st.Snodes[s]
			if part.Start[p] < sn.First || part.Start[p+1]-1 > sn.Last() {
				t.Fatalf("B=%d: panel %d crosses supernode boundary", b, p)
			}
			for j := part.Start[p]; j < part.Start[p+1]; j++ {
				if part.PanelOf[j] != p {
					t.Fatalf("B=%d: PanelOf[%d]=%d, want %d", b, j, part.PanelOf[j], p)
				}
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	// A 10-column supernode with B=4 must split 4/3/3, not 4/4/2.
	st := &symbolic.Structure{
		N:      10,
		Snodes: []symbolic.Supernode{{First: 0, Width: 10}},
		Rows:   [][]int{nil},
	}
	st.SnodeOf = make([]int, 10)
	part := NewPartition(st, 4)
	if part.N() != 3 {
		t.Fatalf("panels=%d, want 3", part.N())
	}
	widths := []int{part.Width(0), part.Width(1), part.Width(2)}
	want := []int{4, 3, 3}
	for i := range want {
		if widths[i] != want[i] {
			t.Fatalf("widths=%v, want %v", widths, want)
		}
	}
}

func TestBlockColumnsWellFormed(t *testing.T) {
	bs := buildFor(t, gen.Grid2D(12), order.NDGrid2D, 12, 6)
	part := bs.Part
	for j := range bs.Cols {
		col := &bs.Cols[j]
		if col.J != j || col.Blocks[0].I != j {
			t.Fatalf("column %d: diagonal block missing or misplaced", j)
		}
		if len(col.Blocks[0].Rows) != part.Width(j) {
			t.Fatalf("column %d: diagonal rows %d != width %d", j, len(col.Blocks[0].Rows), part.Width(j))
		}
		for bi := 1; bi < len(col.Blocks); bi++ {
			b := &col.Blocks[bi]
			if b.I <= col.Blocks[bi-1].I {
				t.Fatalf("column %d: blocks not strictly increasing", j)
			}
			if len(b.Rows) == 0 {
				t.Fatalf("column %d: empty block %d", j, bi)
			}
			for r := 0; r < len(b.Rows); r++ {
				if part.PanelOf[b.Rows[r]] != b.I {
					t.Fatalf("column %d block %d: row %d not in panel %d", j, bi, b.Rows[r], b.I)
				}
				if r > 0 && b.Rows[r] <= b.Rows[r-1] {
					t.Fatalf("column %d block %d: rows not sorted", j, bi)
				}
			}
		}
	}
}

func TestFind(t *testing.T) {
	bs := buildFor(t, gen.Grid2D(10), order.NDGrid2D, 10, 5)
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			if got := bs.Find(b.I, j); got != b {
				t.Fatalf("Find(%d,%d) wrong", b.I, j)
			}
		}
	}
	if bs.Find(bs.N()-1, bs.N()-1) == nil {
		t.Fatal("last diagonal missing")
	}
	// A block row below everything cannot exist.
	if bs.Find(bs.N()+5, 0) != nil {
		t.Fatal("found nonexistent block")
	}
}

func TestWorkModelTotals(t *testing.T) {
	bs := buildFor(t, gen.IrregularMesh(300, 5, 3, 17), order.MinDegree, 0, 8)
	// Totals are consistent with per-block tallies.
	var work, flops int64
	var ops int64
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			work += b.Work
			flops += b.Flops
			ops += int64(b.NOps)
		}
	}
	if work != bs.TotalWork || flops != bs.TotalFlops || ops != bs.TotalOps {
		t.Fatalf("totals inconsistent: %d/%d %d/%d %d/%d",
			work, bs.TotalWork, flops, bs.TotalFlops, ops, bs.TotalOps)
	}
	if work != flops+FixedOpCost*ops {
		t.Fatalf("work model identity violated: %d != %d + 1000·%d", work, flops, ops)
	}
	// Aggregates match.
	wi, wj := bs.WorkI(), bs.WorkJ()
	var si, sj int64
	for i := range wi {
		si += wi[i]
		sj += wj[i]
	}
	if si != bs.TotalWork || sj != bs.TotalWork {
		t.Fatalf("aggregate sums %d/%d != total %d", si, sj, bs.TotalWork)
	}
}

func TestOpEnumeration(t *testing.T) {
	bs := buildFor(t, gen.Grid2D(9), order.NDGrid2D, 9, 4)
	var nfac, ndiv, nmod int64
	seen := map[[4]int]bool{}
	bs.ForEachOp(func(op Op) {
		key := [4]int{int(op.Kind), op.I, op.J, op.K}
		if seen[key] {
			t.Fatalf("duplicate op %+v", op)
		}
		seen[key] = true
		if op.Flops <= 0 {
			t.Fatalf("non-positive flops in %+v", op)
		}
		switch op.Kind {
		case BFAC:
			nfac++
			if op.I != op.K || op.J != op.K {
				t.Fatalf("malformed BFAC %+v", op)
			}
		case BDIV:
			ndiv++
			if op.J != op.K || op.I <= op.K {
				t.Fatalf("malformed BDIV %+v", op)
			}
			if bs.Find(op.I, op.K) == nil {
				t.Fatalf("BDIV of nonexistent block %+v", op)
			}
		case BMOD:
			nmod++
			if op.I < op.J || op.J <= op.K {
				t.Fatalf("malformed BMOD %+v", op)
			}
			if bs.Find(op.I, op.J) == nil {
				t.Fatalf("BMOD dest missing %+v", op)
			}
		}
	})
	if nfac != int64(bs.N()) {
		t.Fatalf("BFAC count %d != %d panels", nfac, bs.N())
	}
	// BDIVs = total off-diagonal blocks; BMODs = Σ b(b+1)/2.
	var wantDiv, wantMod int64
	for j := range bs.Cols {
		b := int64(len(bs.Cols[j].Blocks) - 1)
		wantDiv += b
		wantMod += b * (b + 1) / 2
	}
	if ndiv != wantDiv || nmod != wantMod {
		t.Fatalf("op counts div=%d/%d mod=%d/%d", ndiv, wantDiv, nmod, wantMod)
	}
	if nfac+ndiv+nmod != bs.TotalOps {
		t.Fatalf("TotalOps=%d != %d", bs.TotalOps, nfac+ndiv+nmod)
	}
}

func TestDenseFlopsMatchFormula(t *testing.T) {
	// For a dense matrix in one supernode, the blocked op flops must sum
	// to the exact blocked dense Cholesky count regardless of B.
	n := 60
	for _, b := range []int{60, 20, 7} {
		na := symbolic.NoAmalgamation()
		st, _ := analyzed(t, gen.Dense(n), order.Natural, 0, na)
		part := NewPartition(st, b)
		bs, err := Build(st, part)
		if err != nil {
			t.Fatal(err)
		}
		// Blocked flops ≥ unblocked Σc² is not exact; just check that the
		// count is within a few percent of n³/3 for modest B.
		exact := int64(0)
		for c := 1; c <= n; c++ {
			exact += int64(c) * int64(c)
		}
		ratio := float64(bs.TotalFlops) / float64(exact)
		if ratio < 0.9 || ratio > 1.35 {
			t.Fatalf("B=%d: blocked flops %d vs exact %d (ratio %.2f)", b, bs.TotalFlops, exact, ratio)
		}
	}
}

func TestBMODDestinationRowsContainSourceRows(t *testing.T) {
	// The containment property the numeric scatter relies on.
	bs := buildFor(t, gen.IrregularMesh(250, 6, 3, 23), order.MinDegree, 0, 8)
	bs.ForEachOp(func(op Op) {
		if op.Kind != BMOD {
			return
		}
		src := bs.Find(op.I, op.K)
		dest := bs.Find(op.I, op.J)
		if src == nil || dest == nil {
			t.Fatalf("missing blocks for %+v", op)
		}
		for _, r := range src.Rows {
			k := sort.SearchInts(dest.Rows, r)
			if k >= len(dest.Rows) || dest.Rows[k] != r {
				t.Fatalf("row %d of L(%d,%d) missing from dest (%d,%d)", r, op.I, op.K, op.I, op.J)
			}
		}
		// Column-side rows must fall inside the destination panel.
		srcB := bs.Find(op.J, op.K)
		for _, r := range srcB.Rows {
			if bs.Part.PanelOf[r] != op.J {
				t.Fatalf("col-source row %d outside dest panel %d", r, op.J)
			}
		}
	})
}

func TestOpKindString(t *testing.T) {
	if BFAC.String() != "BFAC" || BDIV.String() != "BDIV" || BMOD.String() != "BMOD" {
		t.Fatal("OpKind strings wrong")
	}
}
