package blocks

import (
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func TestParseStrategy(t *testing.T) {
	cases := map[string]Strategy{
		"uniform": StrategyUniform, "": StrategyUniform, " Uniform ": StrategyUniform,
		"staged": StrategyStaged, "cycled": StrategyCycled,
		"irregular": StrategyIrregular, "IRREGULAR": StrategyIrregular,
	}
	for in, want := range cases {
		got, err := ParseStrategy(in)
		if err != nil || got != want {
			t.Errorf("ParseStrategy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy(bogus) succeeded, want error")
	}
	for _, s := range []Strategy{StrategyUniform, StrategyStaged, StrategyCycled, StrategyIrregular} {
		rt, err := ParseStrategy(s.String())
		if err != nil || rt != s {
			t.Errorf("round-trip of %v failed: %v, %v", s, rt, err)
		}
	}
}

// irregularProblems is the random-generator suite the property tests sweep.
func irregularProblems() []*sparse.Matrix {
	return []*sparse.Matrix{
		gen.IrregularMesh(300, 5, 3, 7),
		gen.IrregularMesh(450, 6, 2, 23),
		gen.IrregularMesh(200, 4, 3, 101),
		gen.Grid2D(15),
		gen.Cube3D(6),
		gen.Dense(40),
	}
}

// TestIrregularPartitionProperties checks, over random generators and
// several configs, that every column lands in exactly one panel, that no
// panel spans an amalgamated-supernode boundary, and that panel widths
// respect the cap.
func TestIrregularPartitionProperties(t *testing.T) {
	configs := []IrregularConfig{
		{},                           // defaults: MaxPanel 48, Quantum 8, root rule off
		{MaxPanel: 16, Quantum: 8},   // CI-scale cap
		{MaxPanel: 7, Quantum: 4},    // cap not a quantum multiple
		{MaxPanel: 3, Quantum: 8},    // quantum larger than cap
		{MaxPanel: 24, RootDepth: 2}, // root rule enabled
		{MaxPanel: 1, Quantum: 1},    // every panel a single column
	}
	for mi, m := range irregularProblems() {
		for _, frac := range []float64{0.05, 0.125, 0.4} {
			st, _ := analyzed(t, m, order.MinDegree, 0, symbolic.RelativeAmalgamation(frac))
			for ci, cfg := range configs {
				part, err := NewPartitionIrregular(st, cfg)
				if err != nil {
					t.Fatalf("matrix %d cfg %d: %v", mi, ci, err)
				}
				maxW := cfg.withDefaults().MaxPanel
				checkPartition(t, st, part, maxW)
				// Every column in exactly one panel: Start is strictly
				// increasing and covers [0, N) (checkPartition verifies
				// cover + PanelOf consistency; verify monotonicity here).
				for p := 0; p < part.N(); p++ {
					if part.Start[p+1] <= part.Start[p] {
						t.Fatalf("matrix %d cfg %d: empty panel %d", mi, ci, p)
					}
				}
				// A supernode at or under the cap must stay a single panel.
				panelsOf := make(map[int]int)
				for p := 0; p < part.N(); p++ {
					panelsOf[part.SnodeOf[p]]++
				}
				for s, sn := range st.Snodes {
					if sn.Width <= maxW && panelsOf[s] != 1 {
						t.Fatalf("matrix %d cfg %d: supernode %d (width %d ≤ %d) split into %d panels",
							mi, ci, s, sn.Width, maxW, panelsOf[s])
					}
				}
			}
		}
	}
}

// TestIrregularBuildInvariants builds the block structure over irregular
// partitions and checks Build's invariants plus conservation of the work
// model: the blocked flop formulas tile each supernode trapezoid exactly,
// so TotalFlops depends only on the (amalgamated) structure — it must agree
// exactly with a uniform partition of the same structure — while the
// WorkI/WorkJ aggregates must sum to TotalWork on both.
func TestIrregularBuildInvariants(t *testing.T) {
	for mi, m := range irregularProblems() {
		st, _ := analyzed(t, m, order.MinDegree, 0, symbolic.RelativeAmalgamation(0.125))
		part, err := NewPartitionIrregular(st, IrregularConfig{MaxPanel: 16, Quantum: 8})
		if err != nil {
			t.Fatal(err)
		}
		bs, err := Build(st, part)
		if err != nil {
			t.Fatalf("matrix %d: Build failed: %v", mi, err)
		}
		uni, err := Build(st, NewPartition(st, 16))
		if err != nil {
			t.Fatal(err)
		}

		// Work model identity and WorkI/WorkJ totals.
		checkWorkTotals(t, bs)
		checkWorkTotals(t, uni)

		if bs.TotalFlops != uni.TotalFlops {
			t.Fatalf("matrix %d: irregular flops %d != uniform flops %d on the same structure",
				mi, bs.TotalFlops, uni.TotalFlops)
		}
	}
}

// checkWorkTotals asserts Build's tallies are internally consistent and the
// WorkI/WorkJ aggregates both sum to TotalWork.
func checkWorkTotals(t *testing.T, bs *Structure) {
	t.Helper()
	var work, flops, ops int64
	for j := range bs.Cols {
		if bs.Cols[j].Blocks[0].I != j {
			t.Fatalf("column %d: diagonal block missing", j)
		}
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			if bi > 0 && b.I <= bs.Cols[j].Blocks[bi-1].I {
				t.Fatalf("column %d: block rows not increasing", j)
			}
			work += b.Work
			flops += b.Flops
			ops += int64(b.NOps)
		}
	}
	if work != bs.TotalWork || flops != bs.TotalFlops || ops != bs.TotalOps {
		t.Fatalf("totals inconsistent: %d/%d %d/%d %d/%d",
			work, bs.TotalWork, flops, bs.TotalFlops, ops, bs.TotalOps)
	}
	if work != flops+FixedOpCost*ops {
		t.Fatalf("work identity violated: %d != %d + 1000·%d", work, flops, ops)
	}
	wi, wj := bs.WorkI(), bs.WorkJ()
	var si, sj int64
	for i := range wi {
		si += wi[i]
		sj += wj[i]
	}
	if si != bs.TotalWork || sj != bs.TotalWork {
		t.Fatalf("WorkI/WorkJ sums %d/%d != TotalWork %d", si, sj, bs.TotalWork)
	}
}

// TestIrregularAmalgamationCoarsens checks the amalgamation half of the
// strategy: a stronger relative threshold can only reduce the supernode
// count, and the irregular partition of the amalgamated structure has no
// more panels than the uniform partition of the exact one.
func TestIrregularAmalgamationCoarsens(t *testing.T) {
	m := gen.IrregularMesh(400, 5, 3, 13)
	exact, _ := analyzed(t, m, order.MinDegree, 0, symbolic.NoAmalgamation())
	prev := len(exact.Snodes) + 1
	for _, frac := range []float64{0.02, 0.10, 0.30} {
		st, _ := analyzed(t, m, order.MinDegree, 0, symbolic.RelativeAmalgamation(frac))
		if len(st.Snodes) > len(exact.Snodes) {
			t.Fatalf("frac %.2f: amalgamation increased supernode count", frac)
		}
		if len(st.Snodes) > prev {
			t.Fatalf("frac %.2f: stronger threshold increased supernode count", frac)
		}
		prev = len(st.Snodes)
	}
	st, _ := analyzed(t, m, order.MinDegree, 0, symbolic.RelativeAmalgamation(0.125))
	part, err := NewPartitionIrregular(st, IrregularConfig{MaxPanel: 16})
	if err != nil {
		t.Fatal(err)
	}
	uniExact := NewPartition(exact, 16)
	if part.N() > uniExact.N() {
		t.Fatalf("irregular produced %d panels vs %d uniform-on-exact", part.N(), uniExact.N())
	}
}
