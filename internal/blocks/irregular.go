package blocks

import (
	"fmt"
	"strings"

	"blockfanout/internal/symbolic"
)

// Strategy identifies one of the package's partitioning policies. Plans
// record the strategy they were built with so that cached plans with
// different blocking never collide (see core/plancache).
type Strategy uint8

const (
	// StrategyUniform is the paper's fixed partition: every supernode is
	// split into balanced panels of width ≤ B (NewPartition).
	StrategyUniform Strategy = iota
	// StrategyStaged varies the block size between the early and late
	// stages of the factorization (§5, NewPartitionStaged).
	StrategyStaged
	// StrategyCycled cycles panel widths with the panel index (§5,
	// NewPartitionCycled).
	StrategyCycled
	// StrategyIrregular is the structure-aware policy: supernode
	// amalgamation followed by supernode-aligned variable-width panels
	// (NewPartitionIrregular).
	StrategyIrregular
)

func (s Strategy) String() string {
	switch s {
	case StrategyUniform:
		return "uniform"
	case StrategyStaged:
		return "staged"
	case StrategyCycled:
		return "cycled"
	case StrategyIrregular:
		return "irregular"
	}
	return fmt.Sprintf("Strategy(%d)", uint8(s))
}

// ParseStrategy parses a strategy name as accepted by the spchol
// -blocking flag.
func ParseStrategy(name string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "uniform":
		return StrategyUniform, nil
	case "staged":
		return StrategyStaged, nil
	case "cycled":
		return StrategyCycled, nil
	case "irregular":
		return StrategyIrregular, nil
	}
	return 0, fmt.Errorf("blocks: unknown blocking strategy %q (want uniform, staged, cycled or irregular)", name)
}

// IrregularConfig tunes NewPartitionIrregular.
type IrregularConfig struct {
	// MaxPanel caps panel width. Supernodes at or under the cap become a
	// single panel; only wider ones are split. 0 picks 48 (the paper's B).
	MaxPanel int
	// Quantum aligns the widths of split panels: interior split widths are
	// rounded to multiples of it, keeping panels sized to the register-
	// tiled kernels (which sweep 4×2 tiles, so multiples of 8 keep every
	// tile full in both dimensions). 0 picks 8.
	Quantum int
	// RootDepth marks the sequential tail of the elimination forest:
	// oversized supernodes at forest depth < RootDepth split at half
	// MaxPanel, multiplying the independent blocks where the critical path
	// is narrowest. The rule is off by default (≤0): the root supernodes'
	// rows appear in almost every column, so halving their panels roughly
	// doubles the row-block count of the whole factor — measured on the
	// BCSSTK31-class CI problems it costs ~20% end-to-end on
	// goroutine-processors, which pay per-block overhead but nothing for
	// the extra concurrency. Enable it only for machine-model simulations
	// of real distributed memories, where the added overlap can win.
	RootDepth int
}

func (cfg IrregularConfig) withDefaults() IrregularConfig {
	if cfg.MaxPanel == 0 {
		cfg.MaxPanel = 48
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = 8
	}
	return cfg
}

// NewPartitionIrregular places panel boundaries at supernode boundaries and
// splits only oversized supernodes, producing variable-width panels driven
// by the matrix structure rather than a fixed stride. The structure st is
// expected to come from an amalgamating Analyze (see
// symbolic.RelativeAmalgamation); amalgamation is what keeps the "whole
// supernode = one panel" rule from degenerating into width-1 panels on
// minimum-degree orderings.
//
// Split widths are chosen per supernode: the target is MaxPanel (halved for
// supernodes within RootDepth of a forest root when that rule is enabled),
// and split widths are balanced and snapped to Quantum multiples so the
// register-tiled kernels run full tiles.
func NewPartitionIrregular(st *symbolic.Structure, cfg IrregularConfig) (*Partition, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxPanel < 1 {
		return nil, fmt.Errorf("blocks: irregular MaxPanel %d < 1", cfg.MaxPanel)
	}
	if cfg.Quantum < 1 {
		return nil, fmt.Errorf("blocks: irregular Quantum %d < 1", cfg.Quantum)
	}
	part := &Partition{B: cfg.MaxPanel, PanelOf: make([]int, st.N)}
	part.Start = append(part.Start, 0)
	for s, sn := range st.Snodes {
		t := cfg.target(st, s)
		chunks := (sn.Width + t - 1) / t
		col := sn.First
		left := sn.Width
		for c := chunks; c >= 1; c-- {
			w := left
			if c > 1 {
				// Balanced width, snapped to the quantum, kept feasible:
				// every remaining chunk must stay within (0, t].
				w = roundQuantum(left/c, cfg.Quantum)
				if lo := left - (c-1)*t; w < lo {
					w = lo
				}
				if w < 1 {
					w = 1
				}
				if w > t {
					w = t
				}
				if hi := left - (c - 1); w > hi {
					w = hi
				}
			}
			col += w
			left -= w
			part.Start = append(part.Start, col)
			part.SnodeOf = append(part.SnodeOf, s)
		}
	}
	for p := 0; p < part.N(); p++ {
		for j := part.Start[p]; j < part.Start[p+1]; j++ {
			part.PanelOf[j] = p
		}
	}
	return part, nil
}

// target picks the split target width for supernode s.
func (cfg IrregularConfig) target(st *symbolic.Structure, s int) int {
	w := st.Snodes[s].Width
	if w <= cfg.MaxPanel {
		return w // whole supernode stays one panel
	}
	t := cfg.MaxPanel
	if cfg.RootDepth > 0 && st.Depth[s] < cfg.RootDepth {
		t = cfg.MaxPanel / 2
	}
	if t >= cfg.Quantum {
		t -= t % cfg.Quantum
	}
	if t < 1 {
		t = 1
	}
	return t
}

// roundQuantum rounds x to the nearest multiple of q (halves down).
func roundQuantum(x, q int) int {
	return (x + q/2) / q * q
}
