// Package blocks forms the 2-D block decomposition of the factor matrix
// that the block fan-out method operates on, exactly as the paper describes
// in §2.1–2.2: the columns are divided into N contiguous subsets of size at
// most B (48 in the paper), each subset lying within one supernode, and the
// identical partition is applied to the rows. Block L_IJ collects the
// factor entries falling simultaneously in row subset I and column subset
// J; because block columns respect supernodes, every block row is either
// completely zero or dense.
//
// The package also enumerates the block operations (BFAC, BDIV, BMOD) and
// evaluates the paper's work model: work[I,J] = flops performed on behalf
// of block L_IJ plus 1000 times the number of distinct block operations
// with L_IJ as destination (§3.2).
package blocks

import (
	"fmt"
	"sort"

	"blockfanout/internal/symbolic"
)

// FixedOpCost is the per-block-operation fixed cost of the paper's work
// measure, "measured from our factorization code" as one thousand flops.
const FixedOpCost = 1000

// Partition is the common row/column partition into panels.
type Partition struct {
	B       int   // requested block size
	Start   []int // panel p covers columns [Start[p], Start[p+1]); len = N+1
	SnodeOf []int // panel → supernode index
	PanelOf []int // column → panel index
}

// N returns the number of panels.
func (p *Partition) N() int { return len(p.Start) - 1 }

// Width returns the number of columns of panel i.
func (p *Partition) Width(i int) int { return p.Start[i+1] - p.Start[i] }

// NewPartition splits every supernode of st into panels of width ≤ b,
// balanced so subset sizes are as close to b as possible.
func NewPartition(st *symbolic.Structure, b int) *Partition {
	if b < 1 {
		b = 1
	}
	part := &Partition{B: b, PanelOf: make([]int, st.N)}
	part.Start = append(part.Start, 0)
	for s, sn := range st.Snodes {
		chunks := (sn.Width + b - 1) / b
		if chunks == 0 {
			continue
		}
		base := sn.Width / chunks
		rem := sn.Width % chunks
		col := sn.First
		for c := 0; c < chunks; c++ {
			w := base
			if c < rem {
				w++
			}
			col += w
			part.Start = append(part.Start, col)
			part.SnodeOf = append(part.SnodeOf, s)
		}
	}
	for p := 0; p < part.N(); p++ {
		for j := part.Start[p]; j < part.Start[p+1]; j++ {
			part.PanelOf[j] = p
		}
	}
	return part
}

// Block is one nonzero block L_IJ of the factor. For the diagonal block
// (I == J) Rows holds the panel's own columns and the stored shape is the
// dense lower triangle; off-diagonal blocks are |Rows| dense rows by the
// panel width of J.
type Block struct {
	I     int
	Rows  []int // global row indices, sorted ascending
	Work  int64 // paper work measure accumulated for this destination
	Flops int64 // flop portion of Work
	NOps  int32 // number of block operations with this block as destination
}

// BlockCol is the set of nonzero blocks in one block column (panel).
type BlockCol struct {
	J      int
	Snode  int
	Blocks []Block // ascending I; Blocks[0].I == J (the diagonal block)
}

// Structure is the full block decomposition plus the work model.
type Structure struct {
	Part *Partition
	Cols []BlockCol

	TotalWork  int64
	TotalFlops int64
	TotalOps   int64
}

// N returns the number of panels (block rows = block columns).
func (bs *Structure) N() int { return len(bs.Cols) }

// Find returns a pointer to block (I,J) or nil if that block is zero.
func (bs *Structure) Find(i, j int) *Block {
	col := &bs.Cols[j]
	k := sort.Search(len(col.Blocks), func(t int) bool { return col.Blocks[t].I >= i })
	if k < len(col.Blocks) && col.Blocks[k].I == i {
		return &col.Blocks[k]
	}
	return nil
}

// Build forms the block structure over the given partition and accumulates
// the work model. It verifies that every BMOD destination block exists in
// the structure (the containment property of §2.1).
func Build(st *symbolic.Structure, part *Partition) (*Structure, error) {
	n := part.N()
	bs := &Structure{Part: part, Cols: make([]BlockCol, n)}

	// Panels of each supernode, in order.
	snPanels := make([][]int, len(st.Snodes))
	for p := 0; p < n; p++ {
		s := part.SnodeOf[p]
		snPanels[s] = append(snPanels[s], p)
	}
	// Group each supernode's below-diagonal rows by panel once; the
	// resulting sub-slices are shared by every block column of the
	// supernode.
	type group struct {
		panel int
		rows  []int
	}
	snGroups := make([][]group, len(st.Snodes))
	for s, rows := range st.Rows {
		var gs []group
		for lo := 0; lo < len(rows); {
			p := part.PanelOf[rows[lo]]
			hi := lo + 1
			for hi < len(rows) && part.PanelOf[rows[hi]] == p {
				hi++
			}
			gs = append(gs, group{panel: p, rows: rows[lo:hi]})
			lo = hi
		}
		snGroups[s] = gs
	}

	for j := 0; j < n; j++ {
		s := part.SnodeOf[j]
		col := &bs.Cols[j]
		col.J = j
		col.Snode = s
		// Diagonal block: the panel's own columns.
		diagRows := make([]int, part.Width(j))
		for t := range diagRows {
			diagRows[t] = part.Start[j] + t
		}
		col.Blocks = append(col.Blocks, Block{I: j, Rows: diagRows})
		// Dense blocks from the supernode's remaining panels.
		panels := snPanels[s]
		idx := sort.SearchInts(panels, j)
		for _, p := range panels[idx+1:] {
			rows := make([]int, part.Width(p))
			for t := range rows {
				rows[t] = part.Start[p] + t
			}
			col.Blocks = append(col.Blocks, Block{I: p, Rows: rows})
		}
		// Blocks from the supernode's below-diagonal row structure.
		for _, g := range snGroups[s] {
			col.Blocks = append(col.Blocks, Block{I: g.panel, Rows: g.rows})
		}
	}

	if err := bs.accumulateWork(); err != nil {
		return nil, err
	}
	return bs, nil
}

// OpKind identifies a block operation.
type OpKind uint8

const (
	BFAC OpKind = iota // Cholesky factorization of a diagonal block
	BDIV               // triangular solve of an off-diagonal block
	BMOD               // L_IJ -= L_IK · L_JKᵀ
)

func (k OpKind) String() string {
	switch k {
	case BFAC:
		return "BFAC"
	case BDIV:
		return "BDIV"
	case BMOD:
		return "BMOD"
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Op is one block operation. For BFAC, I = J = K. For BDIV, J = K (the
// block solved is L_IK). For BMOD, the destination is (I,J) and the sources
// are L_IK and L_JK.
type Op struct {
	Kind    OpKind
	I, J, K int
	Flops   int64
}

// ForEachOp enumerates every block operation of the factorization in
// column-major (K) order, computing its flop count. The enumeration is
// deterministic: BFAC(K), then BDIVs by increasing I, then BMODs by (J,I).
func (bs *Structure) ForEachOp(fn func(Op)) {
	for k := range bs.Cols {
		col := &bs.Cols[k]
		wk := int64(bs.Part.Width(k))
		fn(Op{Kind: BFAC, I: k, J: k, K: k, Flops: wk * (wk + 1) * (2*wk + 1) / 6})
		off := col.Blocks[1:]
		for bi := range off {
			r := int64(len(off[bi].Rows))
			fn(Op{Kind: BDIV, I: off[bi].I, J: k, K: k, Flops: r * wk * wk})
		}
		for bj := range off {
			cj := int64(len(off[bj].Rows))
			for bi := bj; bi < len(off); bi++ {
				ri := int64(len(off[bi].Rows))
				flops := 2 * ri * cj * wk
				if bi == bj {
					// Destination is a diagonal block: only the lower
					// triangle of the symmetric update is computed.
					flops = ri * (ri + 1) * wk
				}
				fn(Op{Kind: BMOD, I: off[bi].I, J: off[bj].I, K: k, Flops: flops})
			}
		}
	}
}

// accumulateWork applies the paper's work measure to every destination
// block and fills the per-block and total tallies.
func (bs *Structure) accumulateWork() error {
	var missing error
	bs.ForEachOp(func(op Op) {
		var dst *Block
		switch op.Kind {
		case BFAC:
			dst = &bs.Cols[op.K].Blocks[0]
		case BDIV:
			dst = bs.Find(op.I, op.K)
		case BMOD:
			dst = bs.Find(op.I, op.J)
		}
		if dst == nil {
			if missing == nil {
				missing = fmt.Errorf("blocks: destination (%d,%d) of %v op missing", op.I, op.J, op.Kind)
			}
			return
		}
		dst.Flops += op.Flops
		dst.Work += op.Flops + FixedOpCost
		dst.NOps++
		bs.TotalFlops += op.Flops
		bs.TotalWork += op.Flops + FixedOpCost
		bs.TotalOps++
	})
	return missing
}

// WorkI returns the aggregate work of every block row: workI[I] = Σ_J
// work[I,J] (§3.2).
func (bs *Structure) WorkI() []int64 {
	w := make([]int64, bs.N())
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			w[b.I] += b.Work
		}
	}
	return w
}

// WorkJ returns the aggregate work of every block column.
func (bs *Structure) WorkJ() []int64 {
	w := make([]int64, bs.N())
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			w[j] += bs.Cols[j].Blocks[bi].Work
		}
	}
	return w
}
