package blocks

import (
	"fmt"

	"blockfanout/internal/symbolic"
)

// The paper's §5 explores two non-uniform block-size policies:
//
//   - varying the block size between the early and late stages of the
//     factorization — which it found has NO effect on load imbalance while
//     reducing available parallelism (a negative result this package lets
//     the benchmarks reproduce), and
//   - choosing the block size based on the processor row/column a block is
//     mapped to — which improved performance, though less than the
//     remapping heuristics.
//
// Both are expressed here as alternative partition constructors; everything
// downstream (block structure, mappings, executors) is unchanged.

// NewPartitionStaged splits supernodes into panels of width ≤ bEarly for
// columns before boundary and ≤ bLate for columns at or after it. The
// boundary must lie strictly inside (0, N): a boundary at 0 or ≥ N would
// silently degenerate to a uniform partition, so it is rejected instead.
func NewPartitionStaged(st *symbolic.Structure, bEarly, bLate, boundary int) (*Partition, error) {
	if bEarly < 1 || bLate < 1 {
		return nil, fmt.Errorf("blocks: staged block sizes %d/%d must be ≥ 1", bEarly, bLate)
	}
	if boundary <= 0 || boundary >= st.N {
		return nil, fmt.Errorf("blocks: staged boundary %d outside (0, %d)", boundary, st.N)
	}
	pick := func(col int) int {
		if col < boundary {
			return bEarly
		}
		return bLate
	}
	part := &Partition{B: max(bEarly, bLate), PanelOf: make([]int, st.N)}
	part.Start = append(part.Start, 0)
	for s, sn := range st.Snodes {
		col := sn.First
		end := sn.First + sn.Width
		for col < end {
			w := pick(col)
			if col+w > end {
				w = end - col
			}
			col += w
			part.Start = append(part.Start, col)
			part.SnodeOf = append(part.SnodeOf, s)
		}
	}
	for p := 0; p < part.N(); p++ {
		for j := part.Start[p]; j < part.Start[p+1]; j++ {
			part.PanelOf[j] = p
		}
	}
	return part, nil
}

// NewPartitionCycled splits supernodes into panels whose widths cycle
// through the given sequence as the global panel index advances — the §5
// "block size chosen by the processor row/column it is mapped to" policy
// for a cyclic mapping, where panel index mod Pc determines the processor
// column (pass len(widths) == Pc). The width list must be non-empty and
// all-positive; it is not modified.
func NewPartitionCycled(st *symbolic.Structure, widths []int) (*Partition, error) {
	if len(widths) == 0 {
		return nil, fmt.Errorf("blocks: cycled width list is empty")
	}
	maxW := 1
	for i, w := range widths {
		if w < 1 {
			return nil, fmt.Errorf("blocks: cycled width %d at index %d must be ≥ 1", w, i)
		}
		if w > maxW {
			maxW = w
		}
	}
	part := &Partition{B: maxW, PanelOf: make([]int, st.N)}
	part.Start = append(part.Start, 0)
	panel := 0
	for s, sn := range st.Snodes {
		col := sn.First
		end := sn.First + sn.Width
		for col < end {
			w := widths[panel%len(widths)]
			if col+w > end {
				w = end - col
			}
			col += w
			part.Start = append(part.Start, col)
			part.SnodeOf = append(part.SnodeOf, s)
			panel++
		}
	}
	for p := 0; p < part.N(); p++ {
		for j := part.Start[p]; j < part.Start[p+1]; j++ {
			part.PanelOf[j] = p
		}
	}
	return part, nil
}
