package critpath

import (
	"sort"

	"blockfanout/internal/blocks"
)

// Profile characterizes the concurrency available in the block-operation
// DAG under an ASAP (unlimited processors, free communication) schedule:
// how many block operations run simultaneously over time. The paper's §5
// uses this kind of analysis to argue that, while its problems "do not
// admit a large surplus of concurrency, there should be enough to keep the
// processors occupied".
type Profile struct {
	CriticalPath float64
	MaxWidth     int     // peak number of concurrent operations
	AvgWidth     float64 // time-averaged concurrency
	// Curve samples the concurrency over [0, CriticalPath] at uniform
	// steps (len(Curve) buckets, mean width per bucket).
	Curve []float64
}

// ComputeProfile runs the ASAP schedule and returns the concurrency
// profile with the given number of curve buckets.
func ComputeProfile(bs *blocks.Structure, flopRate, opOverhead float64, buckets int) Profile {
	if buckets < 1 {
		buckets = 1
	}
	cost := func(flops int64) float64 {
		return float64(flops)/flopRate + opOverhead
	}

	nb := 0
	colBase := make([]int, bs.N()+1)
	for j := 0; j < bs.N(); j++ {
		colBase[j] = nb
		nb += len(bs.Cols[j].Blocks)
	}
	colBase[bs.N()] = nb
	idOf := func(i, j int) int {
		col := &bs.Cols[j]
		lo, hi := 0, len(col.Blocks)
		for lo < hi {
			mid := (lo + hi) / 2
			if col.Blocks[mid].I < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return colBase[j] + lo
	}

	ready := make([]float64, nb)
	lastMod := make([]float64, nb)

	type interval struct{ start, end float64 }
	var ops []interval
	addOp := func(start, dur float64) float64 {
		ops = append(ops, interval{start, start + dur})
		return start + dur
	}

	var cp float64
	for k := 0; k < bs.N(); k++ {
		col := &bs.Cols[k]
		wk := int64(bs.Part.Width(k))
		diagID := colBase[k]
		facFlops := wk * (wk + 1) * (2*wk + 1) / 6
		ready[diagID] = addOp(lastMod[diagID], cost(facFlops))
		if ready[diagID] > cp {
			cp = ready[diagID]
		}
		for idx := 1; idx < len(col.Blocks); idx++ {
			id := colBase[k] + idx
			r := int64(len(col.Blocks[idx].Rows))
			start := lastMod[id]
			if ready[diagID] > start {
				start = ready[diagID]
			}
			ready[id] = addOp(start, cost(r*wk*wk))
			if ready[id] > cp {
				cp = ready[id]
			}
		}
		for jb := 1; jb < len(col.Blocks); jb++ {
			cj := int64(len(col.Blocks[jb].Rows))
			srcB := ready[colBase[k]+jb]
			for ia := jb; ia < len(col.Blocks); ia++ {
				ri := int64(len(col.Blocks[ia].Rows))
				flops := 2 * ri * cj * wk
				if ia == jb {
					flops = ri * (ri + 1) * wk
				}
				start := ready[colBase[k]+ia]
				if srcB > start {
					start = srcB
				}
				fin := addOp(start, cost(flops))
				dest := idOf(col.Blocks[ia].I, col.Blocks[jb].I)
				if fin > lastMod[dest] {
					lastMod[dest] = fin
				}
			}
		}
	}

	p := Profile{CriticalPath: cp, Curve: make([]float64, buckets)}
	if cp <= 0 {
		return p
	}
	// Sweep: +1 at starts, −1 at ends, integrating width over time.
	type event struct {
		t     float64
		delta int
	}
	evs := make([]event, 0, 2*len(ops))
	for _, iv := range ops {
		evs = append(evs, event{iv.start, 1}, event{iv.end, -1})
	}
	sort.Slice(evs, func(a, b int) bool {
		if evs[a].t != evs[b].t {
			return evs[a].t < evs[b].t
		}
		return evs[a].delta < evs[b].delta // ends before starts at ties
	})
	width := 0
	prev := 0.0
	var area float64
	bucket := cp / float64(buckets)
	for _, e := range evs {
		if e.t > prev && width > 0 {
			area += float64(width) * (e.t - prev)
			// Spread into curve buckets.
			b0 := int(prev / bucket)
			b1 := int(e.t / bucket)
			if b1 >= buckets {
				b1 = buckets - 1
			}
			for b := b0; b <= b1; b++ {
				lo := float64(b) * bucket
				hi := lo + bucket
				if prev > lo {
					lo = prev
				}
				if e.t < hi {
					hi = e.t
				}
				if hi > lo {
					p.Curve[b] += float64(width) * (hi - lo) / bucket
				}
			}
		}
		prev = e.t
		width += e.delta
		if width > p.MaxWidth {
			p.MaxWidth = width
		}
	}
	p.AvgWidth = area / cp
	return p
}
