// Package critpath computes the critical path of the block-operation DAG —
// the longest chain of dependent BFAC/BDIV/BMOD operations — under the
// machine's per-operation cost model but with unlimited processors and free
// communication. The paper (§5) uses this bound to argue that, after the
// mapping heuristics are applied, want of concurrency is not what limits
// performance: e.g. BCSSTK15 on 100 processors should admit ~50% higher
// performance than achieved.
package critpath

import "blockfanout/internal/blocks"

// Length returns the critical-path execution time in seconds, charging each
// block operation flops/flopRate + opOverhead.
func Length(bs *blocks.Structure, flopRate, opOverhead float64) float64 {
	cost := func(flops int64) float64 {
		return float64(flops)/flopRate + opOverhead
	}

	nb := 0
	colBase := make([]int, bs.N()+1)
	for j := 0; j < bs.N(); j++ {
		colBase[j] = nb
		nb += len(bs.Cols[j].Blocks)
	}
	colBase[bs.N()] = nb

	idOf := func(i, j int) int {
		col := &bs.Cols[j]
		lo, hi := 0, len(col.Blocks)
		for lo < hi {
			mid := (lo + hi) / 2
			if col.Blocks[mid].I < i {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return colBase[j] + lo
	}

	ready := make([]float64, nb)   // completion time of each block
	lastMod := make([]float64, nb) // latest finishing modification into it

	var cp float64
	for k := 0; k < bs.N(); k++ {
		col := &bs.Cols[k]
		wk := int64(bs.Part.Width(k))
		// Finalize column k: all of its modifications come from earlier
		// columns, already processed.
		diagID := colBase[k]
		facFlops := wk * (wk + 1) * (2*wk + 1) / 6
		ready[diagID] = lastMod[diagID] + cost(facFlops)
		if ready[diagID] > cp {
			cp = ready[diagID]
		}
		for idx := 1; idx < len(col.Blocks); idx++ {
			id := colBase[k] + idx
			r := int64(len(col.Blocks[idx].Rows))
			start := lastMod[id]
			if ready[diagID] > start {
				start = ready[diagID]
			}
			ready[id] = start + cost(r*wk*wk)
			if ready[id] > cp {
				cp = ready[id]
			}
		}
		// Propagate column k's modifications.
		for jb := 1; jb < len(col.Blocks); jb++ {
			cj := int64(len(col.Blocks[jb].Rows))
			srcB := ready[colBase[k]+jb]
			for ia := jb; ia < len(col.Blocks); ia++ {
				ri := int64(len(col.Blocks[ia].Rows))
				flops := 2 * ri * cj * wk
				if ia == jb {
					flops = ri * (ri + 1) * wk
				}
				start := ready[colBase[k]+ia]
				if srcB > start {
					start = srcB
				}
				fin := start + cost(flops)
				dest := idOf(col.Blocks[ia].I, col.Blocks[jb].I)
				if fin > lastMod[dest] {
					lastMod[dest] = fin
				}
			}
		}
	}
	return cp
}
