package critpath

import (
	"math"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func structureFor(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) *blocks.Structure {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return bs
}

const rate, ovh = 30e6, 1000 / 30e6

func TestSingleBlockMatrix(t *testing.T) {
	// One dense supernode, one panel: critical path = the one BFAC.
	bs := structureFor(t, gen.Dense(12), ord.Natural, 0, 12)
	if bs.N() != 1 {
		t.Fatalf("panels=%d", bs.N())
	}
	got := Length(bs, rate, ovh)
	w := int64(12)
	want := float64(w*(w+1)*(2*w+1)/6)/rate + ovh
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("cp=%g, want %g", got, want)
	}
}

func TestBoundedBySequentialAndAboveMaxColumn(t *testing.T) {
	bs := structureFor(t, gen.IrregularMesh(300, 5, 3, 41), ord.MinDegree, 0, 8)
	cp := Length(bs, rate, ovh)
	seq := float64(bs.TotalFlops)/rate + float64(bs.TotalOps)*ovh
	if cp <= 0 || cp > seq {
		t.Fatalf("cp=%g outside (0, %g]", cp, seq)
	}
	// The final column's own chain (BFAC of the last panel) is a trivial
	// lower bound.
	last := bs.N() - 1
	w := int64(bs.Part.Width(last))
	if cp < float64(w*(w+1)*(2*w+1)/6)/rate {
		t.Fatalf("cp=%g below last BFAC time", cp)
	}
}

func TestChainMatrixCriticalPathIsSequential(t *testing.T) {
	// A tridiagonal matrix with B=1 has a pure chain DAG: the critical
	// path equals the sequential time.
	n := 12
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	na := symbolic.NoAmalgamation()
	st, err := symbolic.Analyze(m, na)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, 1))
	if err != nil {
		t.Fatal(err)
	}
	cp := Length(bs, rate, ovh)
	seq := float64(bs.TotalFlops)/rate + float64(bs.TotalOps)*ovh
	if math.Abs(cp-seq) > 1e-12 {
		t.Fatalf("chain: cp=%g, seq=%g", cp, seq)
	}
}

func TestCriticalPathLowerBoundsSimulation(t *testing.T) {
	// No simulated schedule can beat the critical path.
	bs := structureFor(t, gen.Grid2D(16), ord.NDGrid2D, 16, 4)
	cfg := machine.Paragon()
	cp := Length(bs, cfg.FlopRate, cfg.OpOverhead)
	for _, g := range []mapping.Grid{{Pr: 2, Pc: 2}, {Pr: 8, Pc: 8}} {
		pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
		res := machine.MustSimulate(pr, cfg)
		if res.Time < cp-1e-12 {
			t.Fatalf("grid %v simulated %g below critical path %g", g, res.Time, cp)
		}
	}
}

func TestNestedDissectionShortensCriticalPath(t *testing.T) {
	// Nested dissection both reduces total work and exposes concurrency
	// on a grid: its absolute critical path must beat the natural
	// (banded) ordering's.
	m := gen.Grid2D(20)
	nd := structureFor(t, m, ord.NDGrid2D, 20, 4)
	nat := structureFor(t, m, ord.Natural, 0, 4)
	cpND := Length(nd, rate, ovh)
	cpNat := Length(nat, rate, ovh)
	if cpND >= cpNat {
		t.Fatalf("ND critical path %g not below natural %g", cpND, cpNat)
	}
}

func TestProfileBasics(t *testing.T) {
	bs := structureFor(t, gen.Grid2D(16), ord.NDGrid2D, 16, 4)
	p := ComputeProfile(bs, rate, ovh, 32)
	if math.Abs(p.CriticalPath-Length(bs, rate, ovh)) > 1e-12 {
		t.Fatalf("profile CP %g != Length %g", p.CriticalPath, Length(bs, rate, ovh))
	}
	if p.MaxWidth < 1 || p.AvgWidth <= 0 || p.AvgWidth > float64(p.MaxWidth) {
		t.Fatalf("widths: max=%d avg=%g", p.MaxWidth, p.AvgWidth)
	}
	// Area under the curve equals total serial time of all ops:
	// avg width · CP = Σ op durations = seq time.
	seq := float64(bs.TotalFlops)/rate + float64(bs.TotalOps)*ovh
	if math.Abs(p.AvgWidth*p.CriticalPath-seq) > 1e-6*seq {
		t.Fatalf("area %g != sequential time %g", p.AvgWidth*p.CriticalPath, seq)
	}
	if len(p.Curve) != 32 {
		t.Fatal("curve length")
	}
	var curveArea float64
	for _, c := range p.Curve {
		curveArea += c * p.CriticalPath / 32
	}
	if math.Abs(curveArea-seq) > 1e-6*seq {
		t.Fatalf("curve area %g != sequential time %g", curveArea, seq)
	}
}

func TestProfileChainHasWidthOne(t *testing.T) {
	n := 10
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	na := symbolic.NoAmalgamation()
	st, err := symbolic.Analyze(m, na)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, 1))
	if err != nil {
		t.Fatal(err)
	}
	p := ComputeProfile(bs, rate, ovh, 8)
	if p.MaxWidth != 1 {
		t.Fatalf("chain max width %d, want 1", p.MaxWidth)
	}
}

func TestProfileNDWiderThanNatural(t *testing.T) {
	m := gen.Grid2D(16)
	nd := structureFor(t, m, ord.NDGrid2D, 16, 4)
	nat := structureFor(t, m, ord.Natural, 0, 4)
	pd := ComputeProfile(nd, rate, ovh, 8)
	pn := ComputeProfile(nat, rate, ovh, 8)
	if pd.AvgWidth <= pn.AvgWidth {
		t.Fatalf("ND avg width %g not above natural %g", pd.AvgWidth, pn.AvgWidth)
	}
}
