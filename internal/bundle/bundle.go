// Package bundle serializes computed Cholesky factors so a system can be
// solved repeatedly — possibly by another process, later — without
// re-running the factorization. A bundle stores the permutation and the
// factor in column-compressed form in a versioned, checksummed binary
// format.
package bundle

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"blockfanout/internal/core"
	"blockfanout/internal/kernels"
)

// magic identifies the file format; version gates layout changes.
const (
	magic   = 0x62666f42756e646c // "bfoBundl"
	version = 1
)

// Bundle is a solver-ready factorization: the fill-reducing permutation
// (perm[new] = old) plus L in column-compressed form over the permuted
// index space.
type Bundle struct {
	N      int
	Perm   []int64
	Diag   []float64
	ColPtr []int64 // len N+1, prefix sums into Rows/Vals
	Rows   []int64
	Vals   []float64
}

// FromFactor extracts a bundle from a computed factor.
func FromFactor(f *core.Factor) *Bundle {
	plan := f.Plan()
	nf := f.Numeric()
	bs := nf.BS
	part := bs.Part
	n := plan.A.N

	b := &Bundle{
		N:      n,
		Perm:   make([]int64, n),
		Diag:   make([]float64, n),
		ColPtr: make([]int64, n+1),
	}
	for i, old := range plan.Perm {
		b.Perm[i] = int64(old)
	}
	// First pass: column lengths (entries strictly below the diagonal).
	for j := range bs.Cols {
		w := part.Width(j)
		for bi, blk := range bs.Cols[j].Blocks {
			for c := 0; c < w; c++ {
				gcol := part.Start[j] + c
				if bi == 0 {
					b.ColPtr[gcol+1] += int64(w - 1 - c)
				} else {
					b.ColPtr[gcol+1] += int64(len(blk.Rows))
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		b.ColPtr[j+1] += b.ColPtr[j]
	}
	total := b.ColPtr[n]
	b.Rows = make([]int64, total)
	b.Vals = make([]float64, total)
	next := append([]int64(nil), b.ColPtr[:n]...)
	for j := range bs.Cols {
		w := part.Width(j)
		for bi, blk := range bs.Cols[j].Blocks {
			data := nf.Data[j][bi]
			for s, grow := range blk.Rows {
				for c := 0; c < w; c++ {
					gcol := part.Start[j] + c
					if bi == 0 {
						if grow <= gcol {
							continue // diagonal handled separately; upper skipped
						}
					}
					p := next[gcol]
					next[gcol]++
					b.Rows[p] = int64(grow)
					b.Vals[p] = data[s*w+c]
				}
				if bi == 0 && grow == part.Start[j]+s {
					// diagonal entry of local column s
					b.Diag[grow] = data[s*w+s]
				}
			}
		}
	}
	return b
}

// Solve solves A·x = rhs in the original index space.
func (b *Bundle) Solve(rhs []float64) ([]float64, error) {
	if len(rhs) != b.N {
		return nil, fmt.Errorf("bundle: rhs length %d, want %d", len(rhs), b.N)
	}
	// Permute forward: x[new] = rhs[perm[new]].
	x := make([]float64, b.N)
	for i := range x {
		x[i] = rhs[b.Perm[i]]
	}
	for j := 0; j < b.N; j++ {
		x[j] /= b.Diag[j]
		xj := x[j]
		for p := b.ColPtr[j]; p < b.ColPtr[j+1]; p++ {
			x[b.Rows[p]] -= b.Vals[p] * xj
		}
	}
	for j := b.N - 1; j >= 0; j-- {
		s := x[j]
		for p := b.ColPtr[j]; p < b.ColPtr[j+1]; p++ {
			s -= b.Vals[p] * x[b.Rows[p]]
		}
		x[j] = s / b.Diag[j]
	}
	out := make([]float64, b.N)
	for i := range x {
		out[b.Perm[i]] = x[i]
	}
	return out, nil
}

// NNZ returns the number of stored below-diagonal entries.
func (b *Bundle) NNZ() int64 { return b.ColPtr[b.N] }

// WriteTo serializes the bundle (buffered; includes a trailing CRC64 of
// the payload). It returns the number of payload bytes written.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	mw := io.MultiWriter(bw, h)
	var written int64
	put := func(v any) error {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	for _, v := range []any{
		uint64(magic), uint32(version), uint32(0),
		int64(b.N), int64(len(b.Rows)),
	} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	for _, v := range []any{b.Perm, b.Diag, b.ColPtr, b.Rows, b.Vals} {
		if err := put(v); err != nil {
			return written, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, h.Sum64()); err != nil {
		return written, err
	}
	return written, bw.Flush()
}

// Read deserializes a bundle, verifying magic, version, and checksum.
func Read(r io.Reader) (*Bundle, error) {
	br := bufio.NewReader(r)
	h := crc64.New(crc64.MakeTable(crc64.ECMA))
	tr := io.TeeReader(br, h)
	get := func(v any) error { return binary.Read(tr, binary.LittleEndian, v) }

	var mg uint64
	var ver, pad uint32
	if err := get(&mg); err != nil {
		return nil, fmt.Errorf("bundle: reading header: %w", err)
	}
	if mg != magic {
		return nil, fmt.Errorf("bundle: bad magic %#x", mg)
	}
	if err := get(&ver); err != nil {
		return nil, err
	}
	if ver != version {
		return nil, fmt.Errorf("bundle: unsupported version %d", ver)
	}
	if err := get(&pad); err != nil {
		return nil, err
	}
	var n, nnz int64
	if err := get(&n); err != nil {
		return nil, err
	}
	if err := get(&nnz); err != nil {
		return nil, err
	}
	const maxEntries = 1 << 40
	if n < 0 || nnz < 0 || n > maxEntries || nnz > maxEntries {
		return nil, fmt.Errorf("bundle: implausible sizes n=%d nnz=%d", n, nnz)
	}
	b := &Bundle{
		N:      int(n),
		Perm:   make([]int64, n),
		Diag:   make([]float64, n),
		ColPtr: make([]int64, n+1),
		Rows:   make([]int64, nnz),
		Vals:   make([]float64, nnz),
	}
	for _, v := range []any{b.Perm, b.Diag, b.ColPtr, b.Rows, b.Vals} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("bundle: reading payload: %w", err)
		}
	}
	want := h.Sum64()
	var got uint64
	if err := binary.Read(br, binary.LittleEndian, &got); err != nil {
		return nil, fmt.Errorf("bundle: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("bundle: checksum mismatch")
	}
	// Structural validation before use.
	if b.ColPtr[0] != 0 || b.ColPtr[n] != nnz {
		return nil, fmt.Errorf("bundle: corrupt column pointers")
	}
	for j := int64(0); j < n; j++ {
		if b.ColPtr[j] > b.ColPtr[j+1] {
			return nil, fmt.Errorf("bundle: negative column length at %d", j)
		}
		if b.Diag[j] <= 0 {
			return nil, fmt.Errorf("%w: stored diagonal %d not positive", kernels.ErrNotPositiveDefinite, j)
		}
	}
	seen := make([]bool, n)
	for i, old := range b.Perm {
		if old < 0 || old >= n || seen[old] {
			return nil, fmt.Errorf("bundle: corrupt permutation at %d", i)
		}
		seen[old] = true
	}
	for _, r := range b.Rows {
		if r < 0 || r >= n {
			return nil, fmt.Errorf("bundle: row index %d out of range", r)
		}
	}
	return b, nil
}

// SaveFile and LoadFile are the file-path conveniences.
func SaveFile(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := b.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a bundle from disk.
func LoadFile(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
