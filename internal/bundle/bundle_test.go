package bundle

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
)

func factorFixture(t *testing.T, m *sparse.Matrix) *core.Factor {
	t.Helper()
	plan, err := core.NewPlan(m, core.Options{Ordering: ord.MinDegree, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFromFactorSolves(t *testing.T) {
	m := gen.IrregularMesh(240, 5, 3, 61)
	f := factorFixture(t, m)
	b := FromFactor(f)
	if b.NNZ() < f.Plan().Exact.NZinL {
		t.Fatalf("bundle nnz %d below exact %d", b.NNZ(), f.Plan().Exact.NZinL)
	}
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = math.Sin(float64(i) * 0.77)
	}
	want, err := f.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-11*(1+math.Abs(want[i])) {
			t.Fatalf("solution differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
	if _, err := b.Solve(rhs[:4]); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	m := gen.Grid2D(14)
	plan, err := core.NewPlan(m, core.Options{Ordering: ord.NDGrid2D, GridDim: 14, BlockSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	b := FromFactor(f)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, m.N)
	rhs[m.N/2] = 1
	x1, _ := b.Solve(rhs)
	x2, err := got.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("round trip changed solution at %d", i)
		}
	}
	if r := m.ResidualNorm(x2, rhs); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestCorruptionDetected(t *testing.T) {
	m := gen.Grid2D(8)
	plan, _ := core.NewPlan(m, core.Options{Ordering: ord.NDGrid2D, GridDim: 8, BlockSize: 4})
	f, err := plan.FactorSequential()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := FromFactor(f).WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Flip a payload byte: checksum must catch it.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
	// Truncate: must error, not panic.
	if _, err := Read(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Fatal("truncated bundle accepted")
	}
	// Wrong magic.
	bad2 := append([]byte(nil), data...)
	bad2[0] ^= 0xff
	if _, err := Read(bytes.NewReader(bad2)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Empty.
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	m := gen.IrregularMesh(120, 4, 3, 9)
	f := factorFixture(t, m)
	path := filepath.Join(t.TempDir(), "factor.bfb")
	if err := SaveFile(path, FromFactor(f)); err != nil {
		t.Fatal(err)
	}
	b, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	x, err := b.Solve(rhs)
	if err != nil {
		t.Fatal(err)
	}
	if r := m.ResidualNorm(x, rhs); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}
