// Package etree computes the elimination tree of a symmetric sparse matrix
// and the derived quantities used throughout the reproduction: postorder,
// per-column nonzero counts of the Cholesky factor (via row-subtree
// traversal), per-node depths (for the paper's Increasing Depth mapping
// heuristic), and per-subtree work (for domain selection).
package etree

import "blockfanout/internal/sparse"

// rowAdj returns, for each row i, the sorted columns j < i with A(i,j) ≠ 0.
// This is the strict upper triangle of the CSC lower-triangular input,
// i.e. the transpose access path needed by Liu's algorithms.
func rowAdj(m *sparse.Matrix) (ptr, ind []int) {
	n := m.N
	ptr = make([]int, n+1)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if i := m.RowInd[p]; i != j {
				ptr[i+1]++
			}
		}
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	ind = make([]int, ptr[n])
	next := append([]int(nil), ptr[:n]...)
	for j := 0; j < n; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if i := m.RowInd[p]; i != j {
				ind[next[i]] = j
				next[i]++
			}
		}
	}
	// Columns are appended in increasing j, so each row list is sorted.
	return ptr, ind
}

// Tree holds the elimination tree of a matrix along with the row-adjacency
// view used to build it (kept because column counting reuses it).
type Tree struct {
	Parent []int // Parent[j] = etree parent of column j, -1 for roots
	rowPtr []int
	rowInd []int
}

// Build computes the elimination tree of the lower-triangular CSC matrix m
// using Liu's algorithm with path compression.
func Build(m *sparse.Matrix) *Tree {
	n := m.N
	parent := make([]int, n)
	anc := make([]int, n)
	for i := range parent {
		parent[i] = -1
		anc[i] = -1
	}
	ptr, ind := rowAdj(m)
	for i := 0; i < n; i++ {
		for p := ptr[i]; p < ptr[i+1]; p++ {
			r := ind[p]
			for anc[r] != -1 && anc[r] != i {
				next := anc[r]
				anc[r] = i
				r = next
			}
			if anc[r] == -1 {
				anc[r] = i
				parent[r] = i
			}
		}
	}
	return &Tree{Parent: parent, rowPtr: ptr, rowInd: ind}
}

// N returns the number of columns.
func (t *Tree) N() int { return len(t.Parent) }

// Postorder returns a postorder permutation of the tree: po[k] is the k-th
// column in postorder (perm[new] = old semantics). Children are visited in
// increasing column order, so a matrix already ordered by a fill-reducing
// permutation keeps indistinguishable columns adjacent.
func (t *Tree) Postorder() []int {
	n := t.N()
	// Build child lists (sorted: iterate columns in decreasing order and
	// prepend via head/next links, yielding increasing order on traversal).
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	for j := n - 1; j >= 0; j-- {
		if p := t.Parent[j]; p >= 0 {
			next[j] = head[p]
			head[p] = j
		}
	}
	po := make([]int, 0, n)
	stack := make([]int, 0, 64)
	state := make([]int, n) // next unvisited child
	for i := range state {
		state[i] = head[i]
	}
	for root := 0; root < n; root++ {
		if t.Parent[root] != -1 {
			continue
		}
		stack = append(stack, root)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			if c := state[v]; c != -1 {
				state[v] = next[c]
				stack = append(stack, c)
			} else {
				po = append(po, v)
				stack = stack[:len(stack)-1]
			}
		}
	}
	return po
}

// ColCounts returns, for each column j, the number of nonzeros of L(:,j)
// including the diagonal. Computed by walking row subtrees (O(nnz(L))).
func (t *Tree) ColCounts() []int {
	n := t.N()
	count := make([]int, n)
	mark := make([]int, n)
	for j := range count {
		count[j] = 1
		mark[j] = -1
	}
	for i := 0; i < n; i++ {
		mark[i] = i
		for p := t.rowPtr[i]; p < t.rowPtr[i+1]; p++ {
			r := t.rowInd[p]
			for r != -1 && mark[r] != i {
				count[r]++
				mark[r] = i
				r = t.Parent[r]
			}
		}
	}
	return count
}

// Depths returns the depth of every column in the elimination forest; roots
// have depth 0. This is the key of the paper's Increasing Depth heuristic.
func (t *Tree) Depths() []int {
	n := t.N()
	depth := make([]int, n)
	// Parents always have larger indices than children in an elimination
	// tree, so a reverse sweep sees every parent before its children.
	for j := n - 1; j >= 0; j-- {
		if p := t.Parent[j]; p >= 0 {
			depth[j] = depth[p] + 1
		}
	}
	return depth
}

// Stats aggregates the factor statistics the paper's Tables 1 and 6 report.
type Stats struct {
	N     int
	NZinL int64 // off-diagonal nonzeros of L (the paper's "NZ in L")
	Flops int64 // multiply-add operations to factor (≈ Σⱼ c(j)², n³/3 dense)
}

// FactorStats computes nnz(L) and the sequential factorization operation
// count from the column counts (the "best known sequential algorithm"
// numbers used as the Mflops numerator throughout the paper).
func FactorStats(counts []int) Stats {
	var s Stats
	s.N = len(counts)
	for _, c := range counts {
		s.NZinL += int64(c - 1)
		s.Flops += int64(c) * int64(c)
	}
	return s
}

// SubtreeWork returns, for every column, the total work (Σ c(j)² over the
// subtree rooted there). Domain selection splits the elimination forest
// into subtrees of roughly equal subtree work.
func (t *Tree) SubtreeWork(counts []int) []int64 {
	n := t.N()
	work := make([]int64, n)
	for j := 0; j < n; j++ {
		work[j] += int64(counts[j]) * int64(counts[j])
		if p := t.Parent[j]; p >= 0 {
			work[p] += work[j]
		}
	}
	return work
}
