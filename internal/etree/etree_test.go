package etree

import (
	"testing"
	"testing/quick"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// bruteFill computes the exact factor structure of a lower-triangular
// pattern by right-looking elimination on a dense boolean matrix, returning
// per-column counts (incl. diagonal) and etree parents (-1 for roots).
func bruteFill(m *sparse.Matrix) (counts []int, parent []int) {
	n := m.N
	p := make([][]bool, n)
	for i := range p {
		p[i] = make([]bool, n)
	}
	for j := 0; j < n; j++ {
		for q := m.ColPtr[j]; q < m.ColPtr[j+1]; q++ {
			p[m.RowInd[q]][j] = true
		}
	}
	counts = make([]int, n)
	parent = make([]int, n)
	for j := 0; j < n; j++ {
		var s []int
		for i := j + 1; i < n; i++ {
			if p[i][j] {
				s = append(s, i)
			}
		}
		counts[j] = len(s) + 1
		if len(s) == 0 {
			parent[j] = -1
		} else {
			parent[j] = s[0]
		}
		for a := 0; a < len(s); a++ {
			for b := a + 1; b < len(s); b++ {
				p[s[b]][s[a]] = true
			}
		}
	}
	return counts, parent
}

func matrices(t *testing.T) map[string]*sparse.Matrix {
	t.Helper()
	return map[string]*sparse.Matrix{
		"grid":  gen.Grid2D(7),
		"cube":  gen.Cube3D(3),
		"mesh":  gen.IrregularMesh(80, 4, 3, 2),
		"dense": gen.Dense(15),
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	for name, m := range matrices(t) {
		wantCounts, wantParent := bruteFill(m)
		tr := Build(m)
		for j := 0; j < m.N; j++ {
			if tr.Parent[j] != wantParent[j] {
				t.Fatalf("%s: parent[%d]=%d, want %d", name, j, tr.Parent[j], wantParent[j])
			}
		}
		counts := tr.ColCounts()
		for j := 0; j < m.N; j++ {
			if counts[j] != wantCounts[j] {
				t.Fatalf("%s: count[%d]=%d, want %d", name, j, counts[j], wantCounts[j])
			}
		}
	}
}

func TestParentAlwaysLarger(t *testing.T) {
	for name, m := range matrices(t) {
		tr := Build(m)
		for j, p := range tr.Parent {
			if p != -1 && p <= j {
				t.Fatalf("%s: parent[%d]=%d not larger", name, j, p)
			}
		}
	}
}

func TestPostorderIsPermutationAndChildrenFirst(t *testing.T) {
	for name, m := range matrices(t) {
		tr := Build(m)
		po := tr.Postorder()
		seen := make([]bool, m.N)
		pos := make([]int, m.N)
		for k, v := range po {
			if v < 0 || v >= m.N || seen[v] {
				t.Fatalf("%s: invalid postorder", name)
			}
			seen[v] = true
			pos[v] = k
		}
		for j, p := range tr.Parent {
			if p != -1 && pos[p] <= pos[j] {
				t.Fatalf("%s: parent %d visited before child %d", name, p, j)
			}
		}
	}
}

func TestPostorderSubtreesContiguous(t *testing.T) {
	// In a postorder, every subtree occupies a contiguous range ending at
	// its root. Verify via subtree sizes.
	m := gen.Grid2D(8)
	tr := Build(m)
	po := tr.Postorder()
	size := make([]int, m.N)
	for j := 0; j < m.N; j++ {
		size[j] = 1
	}
	for j := 0; j < m.N; j++ {
		if p := tr.Parent[j]; p != -1 {
			size[p] += size[j]
		}
	}
	pos := make([]int, m.N)
	for k, v := range po {
		pos[v] = k
	}
	for j := 0; j < m.N; j++ {
		// All descendants of j must lie in (pos[j]-size[j], pos[j]].
		if p := tr.Parent[j]; p != -1 {
			if pos[j] >= pos[p] || pos[j] < pos[p]-size[p]+1 {
				t.Fatalf("child %d at %d outside parent %d range (%d,%d]",
					j, pos[j], p, pos[p]-size[p], pos[p])
			}
		}
	}
}

func TestDepths(t *testing.T) {
	// Chain matrix: tridiagonal → etree is a path, depth[j] = n-1-j.
	n := 9
	ts := []sparse.Triplet{}
	for i := 0; i < n; i++ {
		ts = append(ts, sparse.Triplet{Row: i, Col: i, Val: 4})
		if i > 0 {
			ts = append(ts, sparse.Triplet{Row: i, Col: i - 1, Val: -1})
		}
	}
	m, err := sparse.FromTriplets(n, ts)
	if err != nil {
		t.Fatal(err)
	}
	tr := Build(m)
	d := tr.Depths()
	for j := 0; j < n; j++ {
		if d[j] != n-1-j {
			t.Fatalf("depth[%d]=%d, want %d", j, d[j], n-1-j)
		}
	}
}

func TestDepthsRootZeroAndMonotone(t *testing.T) {
	m := gen.IrregularMesh(60, 4, 3, 8)
	tr := Build(m)
	d := tr.Depths()
	for j, p := range tr.Parent {
		if p == -1 {
			if d[j] != 0 {
				t.Fatalf("root %d depth %d", j, d[j])
			}
		} else if d[j] != d[p]+1 {
			t.Fatalf("depth[%d]=%d, parent depth %d", j, d[j], d[p])
		}
	}
}

func TestFactorStatsDense(t *testing.T) {
	n := 10
	counts := make([]int, n)
	for j := range counts {
		counts[j] = n - j
	}
	s := FactorStats(counts)
	if s.NZinL != int64(n*(n-1)/2) {
		t.Fatalf("NZinL=%d", s.NZinL)
	}
	want := int64(0)
	for j := 0; j < n; j++ {
		c := int64(n - j)
		want += c * c
	}
	if s.Flops != want {
		t.Fatalf("Flops=%d, want %d", s.Flops, want)
	}
}

func TestSubtreeWork(t *testing.T) {
	m := gen.Grid2D(6)
	tr := Build(m)
	counts := tr.ColCounts()
	work := tr.SubtreeWork(counts)
	// Roots' subtree work must sum to the total.
	var total, rootSum int64
	for j, c := range counts {
		total += int64(c) * int64(c)
		if tr.Parent[j] == -1 {
			rootSum += work[j]
		}
	}
	if total != rootSum {
		t.Fatalf("root subtree work %d != total %d", rootSum, total)
	}
	// Monotone: child subtree work < parent subtree work.
	for j, p := range tr.Parent {
		if p != -1 && work[j] >= work[p] {
			t.Fatalf("subtree work not monotone at %d", j)
		}
	}
}

// Property: ColCounts sums to nnz(L) computed by brute force on random
// small meshes, and every count is at least 1.
func TestQuickColCounts(t *testing.T) {
	f := func(seed uint16) bool {
		n := 20 + int(seed%40)
		m := gen.IrregularMesh(n, 3, 2, uint64(seed)*7+1)
		want, _ := bruteFill(m)
		got := Build(m).ColCounts()
		for j := range got {
			if got[j] != want[j] || got[j] < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
