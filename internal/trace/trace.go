// Package trace renders simulated execution timelines (machine.Span
// records) as ASCII charts: a per-processor Gantt strip showing
// computation, communication overhead, and idle time, plus a utilization
// summary. It visualizes the §5 observation that, after the mapping
// heuristics are applied, the dominant loss is processors sitting idle
// waiting for data.
package trace

import (
	"fmt"
	"io"
	"sort"

	"blockfanout/internal/machine"
)

// Gantt writes one row per processor, dividing [0, res.Time] into width
// buckets: '#' buckets are mostly computation, '~' mostly communication,
// '.' mostly idle.
func Gantt(w io.Writer, res *machine.Result, width int) error {
	if width < 10 {
		width = 10
	}
	np := len(res.CompTime)
	if res.Time <= 0 {
		return fmt.Errorf("trace: empty result")
	}
	if len(res.Spans) == 0 {
		return fmt.Errorf("trace: no spans recorded (set Config.CollectTrace)")
	}
	// Per-processor, per-bucket busy fractions.
	comp := make([][]float64, np)
	comm := make([][]float64, np)
	for p := 0; p < np; p++ {
		comp[p] = make([]float64, width)
		comm[p] = make([]float64, width)
	}
	bucket := res.Time / float64(width)
	for i, s := range res.Spans {
		if int(s.Proc) < 0 || int(s.Proc) >= np {
			return fmt.Errorf("trace: span %d has processor %d outside [0,%d)", i, s.Proc, np)
		}
		if s.End < s.Start {
			return fmt.Errorf("trace: span %d runs backwards (%g..%g)", i, s.Start, s.End)
		}
		dst := comp[s.Proc]
		if s.Comm {
			dst = comm[s.Proc]
		}
		// Spread the span over the buckets it overlaps. Both indices are
		// clamped: a span touching t == res.Time would otherwise compute
		// b0 == width and index past the row.
		b0 := int(s.Start / bucket)
		b1 := int(s.End / bucket)
		if b0 < 0 {
			b0 = 0
		}
		if b0 >= width {
			b0 = width - 1
		}
		if b1 >= width {
			b1 = width - 1
		}
		if b1 < b0 {
			b1 = b0
		}
		for b := b0; b <= b1; b++ {
			lo := float64(b) * bucket
			hi := lo + bucket
			if s.Start > lo {
				lo = s.Start
			}
			if s.End < hi {
				hi = s.End
			}
			if hi > lo {
				dst[b] += (hi - lo) / bucket
			}
		}
	}
	fmt.Fprintf(w, "timeline 0 .. %.4fs  ('#' compute, '~' comm, '.' idle)\n", res.Time)
	for p := 0; p < np; p++ {
		row := make([]byte, width)
		for b := 0; b < width; b++ {
			switch {
			case comp[p][b] >= 0.5:
				row[b] = '#'
			case comp[p][b]+comm[p][b] >= 0.5:
				row[b] = '~'
			default:
				row[b] = '.'
			}
		}
		fmt.Fprintf(w, "P%-4d |%s| busy %4.0f%%\n", p, row,
			(res.CompTime[p]+res.CommTime[p])/res.Time*100)
	}
	return nil
}

// Utilization writes a histogram of per-processor busy fractions and the
// machine-wide compute/communicate/idle breakdown. Like Gantt, it rejects
// an empty result: dividing by a zero makespan would render every busy
// fraction as NaN.
func Utilization(w io.Writer, res *machine.Result) error {
	if res.Time <= 0 {
		return fmt.Errorf("trace: empty result")
	}
	if len(res.CompTime) == 0 {
		return fmt.Errorf("trace: result has no processors")
	}
	comp, comm, idle := res.Breakdown()
	fmt.Fprintf(w, "machine-wide: compute %.0f%%  comm %.0f%%  idle %.0f%%\n",
		comp*100, comm*100, idle*100)
	busy := make([]float64, len(res.CompTime))
	for p := range busy {
		busy[p] = (res.CompTime[p] + res.CommTime[p]) / res.Time
	}
	sort.Float64s(busy)
	q := func(f float64) float64 {
		if len(busy) == 0 {
			return 0
		}
		i := int(f * float64(len(busy)-1))
		return busy[i]
	}
	fmt.Fprintf(w, "per-proc busy fraction: min %.0f%%  p25 %.0f%%  median %.0f%%  p75 %.0f%%  max %.0f%%\n",
		q(0)*100, q(0.25)*100, q(0.5)*100, q(0.75)*100, q(1)*100)
	return nil
}
