package trace

import (
	"strings"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/symbolic"
)

func simResult(t *testing.T, collect bool) *machine.Result {
	t.Helper()
	m := gen.Grid2D(14)
	p, err := ord.Compute(ord.NDGrid2D, m, 14)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := m.Permute(p)
	po := etree.Build(m1).Postorder()
	m2, _ := m1.Permute(po)
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, 6))
	if err != nil {
		t.Fatal(err)
	}
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	cfg := machine.Paragon()
	cfg.CollectTrace = collect
	res := machine.MustSimulate(pr, cfg)
	return &res
}

func TestGantt(t *testing.T) {
	res := simResult(t, true)
	if len(res.Spans) == 0 {
		t.Fatal("no spans collected")
	}
	var sb strings.Builder
	if err := Gantt(&sb, res, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 processors
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "|") || !strings.Contains(l, "busy") {
			t.Fatalf("malformed row %q", l)
		}
	}
	if !strings.ContainsAny(out, "#") {
		t.Fatal("no computation rendered")
	}
}

func TestGanttRequiresSpans(t *testing.T) {
	res := simResult(t, false)
	var sb strings.Builder
	if err := Gantt(&sb, res, 40); err == nil {
		t.Fatal("expected error without spans")
	}
}

func TestSpanAccountingMatchesTotals(t *testing.T) {
	res := simResult(t, true)
	sum := make([]float64, len(res.CompTime))
	for _, s := range res.Spans {
		if s.End < s.Start {
			t.Fatal("negative span")
		}
		if s.End > res.Time+1e-12 {
			t.Fatalf("span past makespan: %v vs %v", s.End, res.Time)
		}
		sum[s.Proc] += s.End - s.Start
	}
	for p := range sum {
		want := res.CompTime[p] + res.CommTime[p]
		if diff := sum[p] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("proc %d span total %g != busy %g", p, sum[p], want)
		}
	}
}

func TestUtilization(t *testing.T) {
	res := simResult(t, true)
	var sb strings.Builder
	Utilization(&sb, res)
	out := sb.String()
	if !strings.Contains(out, "idle") || !strings.Contains(out, "median") {
		t.Fatalf("unexpected output %q", out)
	}
}
