package trace

import (
	"strings"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/symbolic"
)

func simResult(t *testing.T, collect bool) *machine.Result {
	t.Helper()
	m := gen.Grid2D(14)
	p, err := ord.Compute(ord.NDGrid2D, m, 14)
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := m.Permute(p)
	po := etree.Build(m1).Postorder()
	m2, _ := m1.Permute(po)
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, 6))
	if err != nil {
		t.Fatal(err)
	}
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	cfg := machine.Paragon()
	cfg.CollectTrace = collect
	res := machine.MustSimulate(pr, cfg)
	return &res
}

func TestGantt(t *testing.T) {
	res := simResult(t, true)
	if len(res.Spans) == 0 {
		t.Fatal("no spans collected")
	}
	var sb strings.Builder
	if err := Gantt(&sb, res, 60); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 processors
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if !strings.Contains(l, "|") || !strings.Contains(l, "busy") {
			t.Fatalf("malformed row %q", l)
		}
	}
	if !strings.ContainsAny(out, "#") {
		t.Fatal("no computation rendered")
	}
}

func TestGanttRequiresSpans(t *testing.T) {
	res := simResult(t, false)
	var sb strings.Builder
	if err := Gantt(&sb, res, 40); err == nil {
		t.Fatal("expected error without spans")
	}
}

func TestSpanAccountingMatchesTotals(t *testing.T) {
	res := simResult(t, true)
	sum := make([]float64, len(res.CompTime))
	for _, s := range res.Spans {
		if s.End < s.Start {
			t.Fatal("negative span")
		}
		if s.End > res.Time+1e-12 {
			t.Fatalf("span past makespan: %v vs %v", s.End, res.Time)
		}
		sum[s.Proc] += s.End - s.Start
	}
	for p := range sum {
		want := res.CompTime[p] + res.CommTime[p]
		if diff := sum[p] - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("proc %d span total %g != busy %g", p, sum[p], want)
		}
	}
}

func TestUtilization(t *testing.T) {
	res := simResult(t, true)
	var sb strings.Builder
	if err := Utilization(&sb, res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "idle") || !strings.Contains(out, "median") {
		t.Fatalf("unexpected output %q", out)
	}
}

// goldenResult is a hand-built two-processor timeline with exactly known
// spans: P0 computes [0,0.5) then communicates [0.5,0.6); P1 computes
// [0.2,1.0). The trailing zero-length span starting exactly at res.Time
// exercises the b0 == width boundary that used to index past the row.
func goldenResult() *machine.Result {
	return &machine.Result{
		Time:     1.0,
		CompTime: []float64{0.5, 0.8},
		CommTime: []float64{0.1, 0.0},
		Spans: []machine.Span{
			{Proc: 0, Start: 0.0, End: 0.5, Block: 3},
			{Proc: 0, Start: 0.5, End: 0.6, Comm: true, Block: 3},
			{Proc: 1, Start: 0.2, End: 1.0, Block: 7},
			{Proc: 1, Start: 1.0, End: 1.0, Block: 8},
		},
	}
}

func TestGanttGolden(t *testing.T) {
	var sb strings.Builder
	if err := Gantt(&sb, goldenResult(), 10); err != nil {
		t.Fatal(err)
	}
	want := "timeline 0 .. 1.0000s  ('#' compute, '~' comm, '.' idle)\n" +
		"P0    |#####~....| busy   60%\n" +
		"P1    |..########| busy   80%\n"
	if got := sb.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestUtilizationGolden(t *testing.T) {
	var sb strings.Builder
	if err := Utilization(&sb, goldenResult()); err != nil {
		t.Fatal(err)
	}
	want := "machine-wide: compute 65%  comm 5%  idle 30%\n" +
		"per-proc busy fraction: min 60%  p25 60%  median 60%  p75 60%  max 80%\n"
	if got := sb.String(); got != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestUtilizationEmptyResult pins the NaN bugfix: a zero-time result must
// produce an error, not busy fractions of NaN%.
func TestUtilizationEmptyResult(t *testing.T) {
	var sb strings.Builder
	if err := Utilization(&sb, &machine.Result{CompTime: make([]float64, 2)}); err == nil {
		t.Fatalf("expected error for zero-time result, got output %q", sb.String())
	}
	if err := Utilization(&sb, &machine.Result{Time: 1}); err == nil {
		t.Fatal("expected error for processor-less result")
	}
}

func TestGanttRejectsMalformedSpans(t *testing.T) {
	base := goldenResult()
	backwards := *base
	backwards.Spans = []machine.Span{{Proc: 0, Start: 0.6, End: 0.5}}
	var sb strings.Builder
	if err := Gantt(&sb, &backwards, 10); err == nil {
		t.Fatal("expected error for a Start > End span")
	}
	badProc := *base
	badProc.Spans = []machine.Span{{Proc: 9, Start: 0.1, End: 0.2}}
	if err := Gantt(&sb, &badProc, 10); err == nil {
		t.Fatal("expected error for an out-of-range processor")
	}
	negStart := *base
	negStart.Spans = []machine.Span{{Proc: 0, Start: -0.3, End: 0.1}}
	if err := Gantt(&sb, &negStart, 10); err != nil {
		t.Fatalf("negative-start span should clamp, not fail: %v", err)
	}
}
