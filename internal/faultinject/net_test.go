package faultinject

import (
	"net"
	"testing"
	"time"
)

// pipePair returns the two ends of an in-memory conn plus a cleanup.
func pipePair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func readN(t *testing.T, c net.Conn, n int) []byte {
	t.Helper()
	buf := make([]byte, n)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := 0
	for got < n {
		k, err := c.Read(buf[got:])
		if err != nil {
			t.Fatalf("read: %v after %d/%d bytes", err, got, n)
		}
		got += k
	}
	return buf
}

func TestWrapConnPassthroughDisabled(t *testing.T) {
	Reset()
	a, b := pipePair(t)
	w := WrapConn("net.test", a)
	msg := []byte("hello frame")
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, len(msg)) }()
	if n, err := w.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("write: %d %v", n, err)
	}
	if got := <-done; string(got) != string(msg) {
		t.Fatalf("got %q", got)
	}
}

func TestWrapConnDrop(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableNet(NetRule{Site: "net.drop", Drop: 1})
	a, b := pipePair(t)
	w := WrapConn("net.drop", a)
	// The write reports success but nothing arrives.
	if n, err := w.Write([]byte("vanishes")); err != nil || n != 8 {
		t.Fatalf("dropped write: %d %v", n, err)
	}
	b.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 8)
	if n, err := b.Read(buf); err == nil {
		t.Fatalf("dropped frame arrived: %d bytes", n)
	}
	if Fires("net.drop") != 1 {
		t.Fatalf("fires = %d", Fires("net.drop"))
	}
}

func TestWrapConnCorrupt(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableNet(NetRule{Site: "net.corrupt", Corrupt: 1})
	a, b := pipePair(t)
	w := WrapConn("net.corrupt", a)
	msg := make([]byte, 32)
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, len(msg)) }()
	if _, err := w.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := <-done
	diff := 0
	for i := range got {
		if got[i] != msg[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
}

func TestWrapConnDelay(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableNet(NetRule{Site: "net.delay", Delay: 1, DelayFor: 30 * time.Millisecond})
	a, b := pipePair(t)
	w := WrapConn("net.delay", a)
	done := make(chan []byte, 1)
	go func() { done <- readN(t, b, 4) }()
	start := time.Now()
	if _, err := w.Write([]byte("slow")); err != nil {
		t.Fatal(err)
	}
	<-done
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write returned after %v, want ≥30ms delay", d)
	}
}

func TestWrapConnAfterCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	EnableNet(NetRule{Site: "net.window", Drop: 1, After: 1, Count: 2})
	a, b := pipePair(t)
	w := WrapConn("net.window", a)
	arrived := make(chan byte, 8)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			arrived <- buf[0]
		}
	}()
	for i := byte(0); i < 5; i++ {
		if _, err := w.Write([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}
	a.Close()
	var got []byte
	for v := range arrivedDrain(arrived, 100*time.Millisecond) {
		got = append(got, v)
	}
	// Writes 2 and 3 (0-indexed 1,2) are dropped: first passes (After),
	// next two fall in Count, remainder pass again.
	want := []byte{0, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// arrivedDrain drains ch until it stays empty for idle.
func arrivedDrain(ch chan byte, idle time.Duration) chan byte {
	out := make(chan byte, cap(ch))
	go func() {
		defer close(out)
		for {
			select {
			case v := <-ch:
				out <- v
			case <-time.After(idle):
				return
			}
		}
	}()
	return out
}
