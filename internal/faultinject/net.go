package faultinject

import (
	"net"
	"time"
)

// NetRule describes how one network injection site misbehaves. Each Write
// on a conn wrapped with that site name is one eligible event (the cluster
// writes one frame per Write, so these are per-frame faults). The three
// fault kinds are drawn independently, in drop → corrupt → delay order;
// drop wins if both drop and corrupt fire.
type NetRule struct {
	Site     string        // injection point name (exact match)
	Drop     float64       // chance the frame is silently discarded (sender sees success)
	Corrupt  float64       // chance one payload byte is bit-flipped in flight
	Delay    float64       // chance the frame is held for DelayFor before sending
	DelayFor time.Duration // hold time when a delay fires (default 10ms)
	After    int           // skip this many writes to the site first
	Count    int           // stop after this many faults (0: unlimited)
}

type netRuleState struct {
	NetRule
	writes int
	fired  int
}

var netRules []*netRuleState // guarded by mu

// EnableNet installs network rules (replacing any previous set) and turns
// injection on. It composes with Enable: call-site rules and network rules
// coexist; Reset clears both.
func EnableNet(rs ...NetRule) {
	mu.Lock()
	netRules = netRules[:0]
	for _, r := range rs {
		netRules = append(netRules, &netRuleState{NetRule: r})
	}
	if fires == nil {
		fires = make(map[string]int)
	}
	mu.Unlock()
	enabled.Store(true)
}

// netAction is the decision for one write.
type netAction struct {
	drop    bool
	corrupt bool
	delay   time.Duration
}

func netFire(site string) netAction {
	var act netAction
	mu.Lock()
	for _, r := range netRules {
		if r.Site != site {
			continue
		}
		r.writes++
		if r.writes <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Drop > 0 && coin() < r.Drop {
			act.drop = true
		} else if r.Corrupt > 0 && coin() < r.Corrupt {
			act.corrupt = true
		}
		if r.Delay > 0 && coin() < r.Delay {
			act.delay = r.DelayFor
			if act.delay == 0 {
				act.delay = 10 * time.Millisecond
			}
		}
		if act.drop || act.corrupt || act.delay > 0 {
			r.fired++
			fires[site]++
		}
		break
	}
	mu.Unlock()
	return act
}

// faultConn applies the site's network rules to every Write. Reads pass
// through untouched: faults are injected once, on the sending side.
type faultConn struct {
	net.Conn
	site string
}

// WrapConn wraps c so writes are subject to the site's network rules. With
// injection disabled (the default) each Write pays one atomic load.
func WrapConn(site string, c net.Conn) net.Conn {
	return &faultConn{Conn: c, site: site}
}

func (fc *faultConn) Write(b []byte) (int, error) {
	if !enabled.Load() {
		return fc.Conn.Write(b)
	}
	act := netFire(fc.site)
	if act.delay > 0 {
		time.Sleep(act.delay)
	}
	if act.drop {
		// The frame vanishes in flight; the sender believes it was sent.
		return len(b), nil
	}
	if act.corrupt {
		bb := append([]byte(nil), b...)
		// Flip a bit deep inside the payload — past the frame header, where
		// only a content checksum (not framing length checks) can catch it.
		i := len(bb) * 3 / 4
		if i >= len(bb) {
			i = len(bb) - 1
		}
		bb[i] ^= 0x10
		return fc.Conn.Write(bb)
	}
	return fc.Conn.Write(b)
}
