// Package faultinject is a deterministic, opt-in fault injector for
// exercising failure handling in the serving path. Call sites name
// injection points ("server.factor", "server.solve", ...) and call Fire at
// request boundaries; the injector is off by default and Fire is then a
// single atomic load, so instrumented code pays nothing in production.
// Tests (and the chaos job built with -tags faultinject) install rules
// with Enable to make specific sites fail, stall, or panic on a
// deterministic schedule.
//
// Injected errors are marked transient by default (IsTransient reports
// true), which is what lets the server's retry-with-backoff distinguish
// an injected infrastructure hiccup from a real numeric failure: numeric
// errors such as kernels.PivotError are never transient and are never
// retried.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the base error every injected failure wraps (unless the
// rule carries its own Err).
var ErrInjected = errors.New("faultinject: injected fault")

// Rule describes when one injection site misbehaves. The zero value of
// every knob is the permissive default: a Rule{Site: "x", Prob: 1} fails
// every call to x.
type Rule struct {
	Site  string        // injection point name (exact match)
	Prob  float64       // chance each eligible call fires (0 means never, 1 always)
	After int           // skip this many calls to the site first
	Every int           // of the eligible calls, fire every Every-th (≤1: all)
	Count int           // stop after firing this many times (0: unlimited)
	Err   error         // error to inject (default: a transient ErrInjected)
	Delay time.Duration // latency to add before returning
	Panic bool          // panic instead of returning an error
	Value float64       // value observed through FireValue sites (e.g. synthetic heap bytes)
}

// ruleState is a Rule plus its runtime counters.
type ruleState struct {
	Rule
	calls int // calls to the site seen by this rule
	fired int // times this rule actually fired
}

var (
	enabled atomic.Bool // fast-path gate; false in production

	mu    sync.Mutex
	rules []*ruleState
	rng   uint64 // splitmix64 state; fixed seed → deterministic schedule
	fires map[string]int
)

// Enable installs rules (replacing any previous set) and turns injection
// on. The coin-flip stream restarts from a fixed seed so a test's
// injection schedule is reproducible run to run; use Seed to vary it.
func Enable(rs ...Rule) {
	mu.Lock()
	rules = rules[:0]
	for _, r := range rs {
		rules = append(rules, &ruleState{Rule: r})
	}
	rng = 0x9e3779b97f4a7c15
	fires = make(map[string]int)
	mu.Unlock()
	enabled.Store(true)
}

// Seed reseeds the probabilistic coin stream.
func Seed(s uint64) {
	mu.Lock()
	rng = s ^ 0x9e3779b97f4a7c15
	mu.Unlock()
}

// Disable turns injection off without clearing the rule set.
func Disable() { enabled.Store(false) }

// Reset turns injection off and discards all rules (call-site and network)
// and counters.
func Reset() {
	enabled.Store(false)
	mu.Lock()
	rules = nil
	netRules = nil
	fires = nil
	mu.Unlock()
}

// Fires reports how many faults have been injected at site since Enable.
func Fires(site string) int {
	mu.Lock()
	defer mu.Unlock()
	return fires[site]
}

// Fire is the injection point: instrumented code calls it with its site
// name and propagates any returned error as if the guarded operation had
// failed. With injection disabled (the default) it is one atomic load.
func Fire(site string) error {
	if !enabled.Load() {
		return nil
	}
	return fire(site)
}

// FireValue is the injection point for sites that observe a measurement
// rather than an operation — e.g. the admission layer's heap sampling
// ("admission.mempressure"). When a matching rule fires, the returned
// value replaces the real measurement, letting tests force overload and
// brownout transitions deterministically without allocating gigabytes.
// With injection disabled it is one atomic load.
func FireValue(site string) (float64, bool) {
	if !enabled.Load() {
		return 0, false
	}
	hit := match(site)
	if hit == nil {
		return 0, false
	}
	if hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	return hit.Value, true
}

func fire(site string) error {
	hit := match(site)
	if hit == nil {
		return nil
	}
	if hit.Delay > 0 {
		time.Sleep(hit.Delay)
	}
	if hit.Panic {
		panic(fmt.Sprintf("faultinject: injected panic at %s", site))
	}
	if hit.Err != nil {
		return hit.Err
	}
	return Transient(fmt.Errorf("%w at %s", ErrInjected, site))
}

// match runs the rule schedule for one call to site and returns the rule
// that fires, if any.
func match(site string) *ruleState {
	mu.Lock()
	defer mu.Unlock()
	for _, r := range rules {
		if r.Site != site {
			continue
		}
		r.calls++
		if r.calls <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Every > 1 && (r.calls-r.After-1)%r.Every != 0 {
			continue
		}
		if r.Prob < 1 && coin() >= r.Prob {
			continue
		}
		r.fired++
		fires[site]++
		return r
	}
	return nil
}

// coin draws one uniform float64 in [0,1) from the splitmix64 stream.
// Caller holds mu.
func coin() float64 {
	rng += 0x9e3779b97f4a7c15
	z := rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// transientErr marks an error as a retryable infrastructure fault.
type transientErr struct{ err error }

func (t *transientErr) Error() string   { return t.err.Error() }
func (t *transientErr) Unwrap() error   { return t.err }
func (t *transientErr) Transient() bool { return true }

// Transient wraps err so IsTransient reports true for it.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) is marked as a
// retryable transient fault.
func IsTransient(err error) bool {
	var t interface{ Transient() bool }
	return errors.As(err, &t) && t.Transient()
}
