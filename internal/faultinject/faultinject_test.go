package faultinject

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestDisabledFiresNothing(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := Fire("anything"); err != nil {
			t.Fatalf("disabled injector fired: %v", err)
		}
	}
}

func TestRuleScheduleDeterministic(t *testing.T) {
	t.Cleanup(Reset)
	Enable(Rule{Site: "op", After: 2, Every: 3, Count: 2, Prob: 1})
	var got []int
	for i := 0; i < 12; i++ {
		if Fire("op") != nil {
			got = append(got, i)
		}
	}
	// Calls 0,1 skipped (After), then every 3rd eligible call fires, twice.
	want := []int{2, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fired at %v, want %v", got, want)
	}
	if Fires("op") != 2 {
		t.Fatalf("Fires = %d, want 2", Fires("op"))
	}
}

func TestProbabilisticStreamReproducible(t *testing.T) {
	t.Cleanup(Reset)
	run := func(seed uint64) []bool {
		Enable(Rule{Site: "op", Prob: 0.5})
		Seed(seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = Fire("op") != nil
		}
		return out
	}
	a, b := run(7), run(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different injection schedules")
	}
	c := run(8)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestTransientMarking(t *testing.T) {
	t.Cleanup(Reset)
	Enable(Rule{Site: "op", Prob: 1, Count: 1})
	err := Fire("op")
	if err == nil {
		t.Fatal("rule did not fire")
	}
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("%v does not wrap ErrInjected", err)
	}
	if !IsTransient(err) {
		t.Fatal("default injected error not transient")
	}
	if IsTransient(errors.New("numeric breakdown")) {
		t.Fatal("ordinary error reported transient")
	}
	if IsTransient(nil) || Transient(nil) != nil {
		t.Fatal("nil handling broken")
	}
	wrapped := fmt.Errorf("request failed: %w", Transient(errors.New("io")))
	if !IsTransient(wrapped) {
		t.Fatal("transience lost through wrapping")
	}
}

func TestCustomErrorAndDelay(t *testing.T) {
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	Enable(Rule{Site: "op", Prob: 1, Err: sentinel, Delay: 20 * time.Millisecond})
	start := time.Now()
	err := Fire("op")
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("delay not applied")
	}
	if IsTransient(err) {
		t.Fatal("custom error must not be transient unless wrapped")
	}
}

func TestPanicRule(t *testing.T) {
	t.Cleanup(Reset)
	Enable(Rule{Site: "op", Prob: 1, Panic: true})
	defer func() {
		if recover() == nil {
			t.Fatal("panic rule did not panic")
		}
	}()
	Fire("op")
}
