// Package plancache caches analyzed core.Plans (and their block-to-
// processor assignments) keyed by matrix sparsity pattern. In serving
// workloads — time-stepping FE simulations, interior-point LP iterations —
// the pattern of AᵀA or the stiffness matrix is fixed while values change
// every iteration, so ordering + symbolic analysis + partitioning + mapping
// (the expensive, value-independent front half of the pipeline) should run
// exactly once per pattern. The cache provides:
//
//   - pattern keying via sparse.Matrix.PatternHash (FNV-1a over n, colptr,
//     rowind; value-independent) mixed with the caller's configuration key
//     (core.Options.ConfigKey), so the same pattern analyzed under different
//     blocking strategies, block sizes, or orderings occupies distinct
//     entries; an exact SamePattern + config-key verification on hit means
//     a hash collision can never serve the wrong analysis;
//   - an LRU bounded by both entry count and an approximate byte budget;
//   - hit/miss/eviction/coalesce counters for the /metrics endpoint;
//   - singleflight-style deduplication: concurrent requests for the same
//     pattern run one analysis and share the result.
package plancache

import (
	"container/list"
	"sync"

	"blockfanout/internal/core"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
)

// Config bounds the cache.
type Config struct {
	// MaxEntries caps the number of cached plans; ≤0 means DefaultEntries.
	MaxEntries int
	// MaxBytes caps the approximate retained size; ≤0 means DefaultBytes.
	MaxBytes int64
}

// DefaultEntries and DefaultBytes are the zero-config budgets.
const (
	DefaultEntries = 64
	DefaultBytes   = 1 << 30 // 1 GiB
)

// Entry is one cached analysis.
type Entry struct {
	Key uint64 // combined pattern ∘ configuration cache key
	// ConfigKey is the plan-configuration digest the entry was built under
	// (core.Options.ConfigKey); hits verify it exactly so plans built with
	// different blocking strategies or block sizes never alias.
	ConfigKey uint64
	// Tenant is the identity whose request built this entry ("" when the
	// build was unattributed — warm starts, pre-tenancy callers). The
	// cache charges the entry's bytes against it for per-tenant quota
	// accounting; a shared hit does not re-attribute the entry.
	Tenant string
	Plan   *core.Plan
	Assign sched.Assignment
	Bytes  int64

	// tunedCfg, when non-zero, is the configuration key of this entry's
	// tuned sibling: a plan for the same pattern whose mapping was rebuilt
	// from a measured cost profile (core.MapTuned provenance folded into
	// the key). The serving layer follows it on a hit so the second
	// factorization of a pattern runs under the tuned mapping. Guarded by
	// the cache mutex — use Cache.SetTuned / Cache.TunedConfig.
	tunedCfg uint64
}

// combineKey folds the configuration digest into the pattern hash with an
// extra FNV-1a round so (pattern, config) pairs spread over the full key
// space instead of XOR-cancelling.
func combineKey(pattern, cfg uint64) uint64 {
	const prime64 = 1099511628211
	h := pattern
	for i := 0; i < 8; i++ {
		h ^= cfg & 0xff
		h *= prime64
		cfg >>= 8
	}
	return h
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"` // requests that waited on another's analysis
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	// TenantBytes breaks Bytes down by the tenant whose request built each
	// entry (key "" aggregates unattributed entries). Nil when every entry
	// is unattributed.
	TenantBytes map[string]int64 `json:"tenant_bytes,omitempty"`
}

// Cache is the pattern-keyed plan cache. Safe for concurrent use.
type Cache struct {
	cfg Config

	mu       sync.Mutex
	ll       *list.List // front = most recent; values are *Entry
	items    map[uint64]*list.Element
	bytes    int64
	tbytes   map[string]int64 // per-tenant share of bytes
	building map[uint64]*flight

	hits, misses, coalesced, evictions int64
}

// flight is one in-progress analysis awaited by deduplicated callers.
type flight struct {
	done chan struct{}
	e    *Entry
	err  error
}

// New returns an empty cache with the given budgets.
func New(cfg Config) *Cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultBytes
	}
	return &Cache{
		cfg:      cfg,
		ll:       list.New(),
		items:    make(map[uint64]*list.Element),
		tbytes:   make(map[string]int64),
		building: make(map[uint64]*flight),
	}
}

// GetOrBuild returns the cached analysis for a's pattern under the given
// plan-configuration key (core.Options.ConfigKey), building it with build
// on a miss. hit reports whether a cached (or coalesced-in-flight) analysis
// was reused — i.e. whether this call avoided symbolic work. Concurrent
// calls for the same (pattern, config) run build once; the rest wait and
// share the result. A failed build is not cached.
func (c *Cache) GetOrBuild(a *sparse.Matrix, cfgKey uint64, build func() (*core.Plan, sched.Assignment, error)) (e *Entry, hit bool, err error) {
	return c.GetOrBuildFor(a, cfgKey, "", build)
}

// GetOrBuildFor is GetOrBuild with the building tenant recorded on a miss:
// the new entry's bytes are charged to tenant in the per-tenant accounting
// (see Stats.TenantBytes and TenantBytes) so the serving layer can enforce
// per-tenant cache-byte quotas. Hits and coalesced waits are never
// re-attributed — the tenant that paid for the analysis keeps the bill.
func (c *Cache) GetOrBuildFor(a *sparse.Matrix, cfgKey uint64, tenant string, build func() (*core.Plan, sched.Assignment, error)) (e *Entry, hit bool, err error) {
	key := combineKey(a.PatternHash(), cfgKey)
retry:
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*Entry)
		if ent.ConfigKey == cfgKey && ent.Plan.A.SamePattern(a) {
			c.ll.MoveToFront(el)
			c.hits++
			c.mu.Unlock()
			return ent, true, nil
		}
		// True hash collision: evict the impostor and rebuild. (With a
		// 64-bit FNV this is effectively unreachable, but correctness must
		// not hinge on that.)
		c.removeLocked(el)
	}
	if fl, ok := c.building[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, false, fl.err
		}
		if fl.e.ConfigKey != cfgKey || !fl.e.Plan.A.SamePattern(a) {
			// The in-flight analysis was for a hash-colliding pattern, not
			// ours; start over — the next pass evicts the impostor from the
			// cache and builds the right plan.
			goto retry
		}
		return fl.e, true, nil
	}
	fl := &flight{done: make(chan struct{})}
	c.building[key] = fl
	c.misses++
	c.mu.Unlock()

	plan, assign, err := build()
	if err == nil {
		fl.e = &Entry{Key: key, ConfigKey: cfgKey, Tenant: tenant, Plan: plan, Assign: assign, Bytes: PlanBytes(plan)}
	} else {
		fl.err = err
	}

	c.mu.Lock()
	delete(c.building, key)
	if err == nil {
		c.insertLocked(fl.e)
	}
	c.mu.Unlock()
	close(fl.done)

	if err != nil {
		return nil, false, err
	}
	return fl.e, false, nil
}

// Get returns the cached entry for a's pattern and configuration key
// without building.
func (c *Cache) Get(a *sparse.Matrix, cfgKey uint64) (*Entry, bool) {
	key := combineKey(a.PatternHash(), cfgKey)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	if e := el.Value.(*Entry); e.ConfigKey != cfgKey || !e.Plan.A.SamePattern(a) {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*Entry), true
}

// insertLocked adds e and evicts from the cold end until within budget.
func (c *Cache) insertLocked(e *Entry) {
	if el, ok := c.items[e.Key]; ok {
		c.removeLocked(el)
	}
	c.items[e.Key] = c.ll.PushFront(e)
	c.bytes += e.Bytes
	c.tbytes[e.Tenant] += e.Bytes
	for c.ll.Len() > 1 && (c.ll.Len() > c.cfg.MaxEntries || c.bytes > c.cfg.MaxBytes) {
		back := c.ll.Back()
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.items, e.Key)
	c.bytes -= e.Bytes
	if c.tbytes[e.Tenant] -= e.Bytes; c.tbytes[e.Tenant] <= 0 {
		delete(c.tbytes, e.Tenant)
	}
}

// SetTuned records on e that a tuned sibling plan for the same pattern
// lives in the cache under tunedCfg (zero clears the link). The link is
// advisory: if the sibling is evicted, lookups under tunedCfg simply miss
// and the serving layer falls back to the static entry and re-tunes.
func (c *Cache) SetTuned(e *Entry, tunedCfg uint64) {
	c.mu.Lock()
	e.tunedCfg = tunedCfg
	c.mu.Unlock()
}

// TunedConfig returns the configuration key of e's tuned sibling, zero if
// none has been recorded.
func (c *Cache) TunedConfig(e *Entry) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return e.tunedCfg
}

// TenantBytes reports the cached bytes currently attributed to tenant.
func (c *Cache) TenantBytes(tenant string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tbytes[tenant]
}

// Peek returns the cached entry for a's pattern and configuration key
// without promoting it in the LRU or touching the hit/miss counters. The
// admission layer uses it to price a request (modeled flops, factor bytes)
// before deciding whether to admit it at all.
func (c *Cache) Peek(a *sparse.Matrix, cfgKey uint64) (*Entry, bool) {
	key := combineKey(a.PatternHash(), cfgKey)
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*Entry)
	if e.ConfigKey != cfgKey || !e.Plan.A.SamePattern(a) {
		return nil, false
	}
	return e, true
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
	if len(c.tbytes) > 0 {
		st.TenantBytes = make(map[string]int64, len(c.tbytes))
		for t, b := range c.tbytes {
			st.TenantBytes[t] = b
		}
	}
	return st
}

// PlanBytes estimates the retained size of a plan: the dominant slices of
// the matrices, symbolic structure, and block partition. It is a budget
// estimate, not an accounting — constant per-object overheads are ignored.
func PlanBytes(p *core.Plan) int64 {
	var b int64
	matrix := func(m *sparse.Matrix) {
		if m == nil {
			return
		}
		b += int64(len(m.ColPtr))*8 + int64(len(m.RowInd))*8 + int64(len(m.Val))*8
	}
	matrix(p.A)
	matrix(p.PA)
	b += int64(len(p.Perm))*8 + int64(len(p.ValMap))*8 + int64(len(p.PanelDepth))*8
	if p.Sym != nil {
		b += int64(len(p.Sym.ColCounts))*8 + int64(len(p.Sym.Depth))*8
	}
	if p.BS != nil {
		for j := range p.BS.Cols {
			for bi := range p.BS.Cols[j].Blocks {
				b += int64(len(p.BS.Cols[j].Blocks[bi].Rows)) * 8
			}
			b += int64(len(p.BS.Cols[j].Blocks)) * 48
		}
	}
	return b
}
