package plancache

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
)

// testKey is the configuration digest the test builds run under; the
// config-key separation itself is covered by TestConfigKeySeparatesEntries.
var testKey = core.Options{Ordering: order.MinDegree, BlockSize: 16}.ConfigKey()

func buildFor(m *sparse.Matrix) func() (*core.Plan, sched.Assignment, error) {
	return func() (*core.Plan, sched.Assignment, error) {
		plan, err := core.NewPlan(m, core.Options{Ordering: order.MinDegree, BlockSize: 16})
		if err != nil {
			return nil, sched.Assignment{}, err
		}
		mp := plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY)
		return plan, plan.Assign(mp, 2), nil
	}
}

func TestHitMissAndValueIndependence(t *testing.T) {
	c := New(Config{})
	a := gen.IrregularMesh(150, 5, 3, 7)

	e1, hit, err := c.GetOrBuild(a, testKey, buildFor(a))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported a hit")
	}

	// Same pattern, different values: must hit and return the same plan.
	a2 := a.Clone()
	for i := range a2.Val {
		a2.Val[i] *= 2.5
	}
	e2, hit, err := c.GetOrBuild(a2, testKey, buildFor(a2))
	if err != nil {
		t.Fatal(err)
	}
	if !hit || e2.Plan != e1.Plan {
		t.Fatalf("value change broke pattern reuse (hit=%v, same plan=%v)", hit, e2.Plan == e1.Plan)
	}

	// Different structure: miss.
	b := gen.IrregularMesh(150, 5, 3, 8)
	_, hit, err = c.GetOrBuild(b, testKey, buildFor(b))
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("different pattern reported a hit")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v; want 1 hit, 2 misses, 2 entries", st)
	}
	if st.Bytes <= 0 {
		t.Fatal("byte accounting did not move")
	}
}

func TestEntryBudgetEviction(t *testing.T) {
	c := New(Config{MaxEntries: 2})
	ms := []*sparse.Matrix{
		gen.IrregularMesh(100, 5, 3, 1),
		gen.IrregularMesh(100, 5, 3, 2),
		gen.IrregularMesh(100, 5, 3, 3),
	}
	for _, m := range ms {
		if _, _, err := c.GetOrBuild(m, testKey, buildFor(m)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v; want 2 entries, 1 eviction", st)
	}
	// The oldest (ms[0]) was evicted; ms[1] and ms[2] remain.
	if _, ok := c.Get(ms[0], testKey); ok {
		t.Fatal("LRU kept the oldest entry")
	}
	if _, ok := c.Get(ms[2], testKey); !ok {
		t.Fatal("LRU dropped the newest entry")
	}
}

func TestByteBudgetEviction(t *testing.T) {
	m1 := gen.IrregularMesh(120, 5, 3, 4)
	plan, _, err := buildFor(m1)()
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits one plan of this size but not two.
	c := New(Config{MaxBytes: PlanBytes(plan) + PlanBytes(plan)/2})
	if _, _, err := c.GetOrBuild(m1, testKey, buildFor(m1)); err != nil {
		t.Fatal(err)
	}
	m2 := gen.IrregularMesh(120, 5, 3, 5)
	if _, _, err := c.GetOrBuild(m2, testKey, buildFor(m2)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("byte budget produced no evictions: %+v", st)
	}
	if st.Bytes > c.cfg.MaxBytes {
		t.Fatalf("retained %d bytes over budget %d", st.Bytes, c.cfg.MaxBytes)
	}
	// The newest entry always stays, even if alone over budget.
	if _, ok := c.Get(m2, testKey); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(Config{})
	a := gen.IrregularMesh(200, 5, 3, 9)

	var builds int32
	release := make(chan struct{})
	build := func() (*core.Plan, sched.Assignment, error) {
		atomic.AddInt32(&builds, 1)
		<-release // hold every concurrent caller in the same flight
		return buildFor(a)()
	}

	const callers = 8
	var wg sync.WaitGroup
	plans := make([]*core.Plan, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.GetOrBuild(a, testKey, build)
			if err != nil {
				t.Error(err)
				return
			}
			plans[i], hits[i] = e.Plan, hit
		}(i)
	}
	// Let callers pile up against the in-flight build, then release it.
	for {
		c.mu.Lock()
		waiting := c.coalesced
		c.mu.Unlock()
		if waiting >= callers-1 {
			break
		}
	}
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&builds); got != 1 {
		t.Fatalf("analysis ran %d times for one pattern; want 1", got)
	}
	nhits := 0
	for i := range plans {
		if plans[i] != plans[0] {
			t.Fatal("coalesced callers got different plans")
		}
		if hits[i] {
			nhits++
		}
	}
	if nhits != callers-1 {
		t.Fatalf("%d callers reported reuse; want %d", nhits, callers-1)
	}
	if st := c.Stats(); st.Coalesced != callers-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v; want %d coalesced, 1 miss", st, callers-1)
	}
}

// TestConfigKeySeparatesEntries checks the blocking-aware keying: the same
// matrix pattern analyzed under different Options (blocking strategy, block
// size) must occupy distinct cache entries, and a Get with the wrong config
// key must miss even when the pattern matches.
func TestConfigKeySeparatesEntries(t *testing.T) {
	c := New(Config{})
	a := gen.IrregularMesh(150, 5, 3, 7)

	variants := []core.Options{
		{Ordering: order.MinDegree, BlockSize: 16},
		{Ordering: order.MinDegree, BlockSize: 16, Blocking: blocks.StrategyIrregular},
		{Ordering: order.MinDegree, BlockSize: 16, Blocking: blocks.StrategyIrregular, AmalgThreshold: 0.25},
		{Ordering: order.MinDegree, BlockSize: 32},
		{Ordering: order.MinDegree, BlockSize: 16, Exec: fanout.ModeSPMD},
	}
	plans := make([]*core.Plan, len(variants))
	for i, opt := range variants {
		opt := opt
		e, hit, err := c.GetOrBuild(a, opt.ConfigKey(), func() (*core.Plan, sched.Assignment, error) {
			plan, err := core.NewPlan(a, opt)
			if err != nil {
				return nil, sched.Assignment{}, err
			}
			mp := plan.Map(mapping.Grid{Pr: 2, Pc: 2}, mapping.ID, mapping.CY)
			return plan, plan.Assign(mp, 2), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("variant %d aliased an earlier configuration", i)
		}
		plans[i] = e.Plan
	}
	st := c.Stats()
	if st.Entries != len(variants) || st.Misses != int64(len(variants)) {
		t.Fatalf("stats = %+v; want %d separate entries", st, len(variants))
	}
	for i, opt := range variants {
		e, ok := c.Get(a, opt.ConfigKey())
		if !ok || e.Plan != plans[i] {
			t.Fatalf("variant %d did not round-trip through Get", i)
		}
	}
	if _, ok := c.Get(a, core.Options{Ordering: order.MinDegree, BlockSize: 48}.ConfigKey()); ok {
		t.Fatal("unbuilt configuration reported a hit")
	}
}

func TestBuildErrorNotCached(t *testing.T) {
	c := New(Config{})
	a := gen.IrregularMesh(80, 5, 3, 10)
	boom := errors.New("boom")
	fail := func() (*core.Plan, sched.Assignment, error) { return nil, sched.Assignment{}, boom }

	if _, _, err := c.GetOrBuild(a, testKey, fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatal("failed build was cached")
	}
	// A later successful build proceeds normally.
	if _, hit, err := c.GetOrBuild(a, testKey, buildFor(a)); err != nil || hit {
		t.Fatalf("rebuild after failure: hit=%v err=%v", hit, err)
	}
}
