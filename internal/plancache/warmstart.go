package plancache

import (
	"blockfanout/internal/core"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
)

// WarmEntry pairs a cache entry restored during WarmStart with the
// snapshot it came from, so the serving layer above can also restore the
// numeric factor (core.Plan.RestoreFactor) without re-reading the store.
type WarmEntry struct {
	Entry *Entry
	Snap  *store.FactorSnapshot
}

// WarmStart repopulates the cache from a snapshot store: every readable
// factor snapshot written under cfgKey has its plan rebuilt (ordering +
// symbolic analysis rerun deterministically from the snapshotted matrix —
// the plan itself is cheap to rebuild and hard to serialize) and inserted.
// Corrupt snapshots have already been quarantined by the store's reader and
// are skipped: a warm start is best-effort and never fails the boot for a
// bad snapshot, only for an unreadable store directory.
func (c *Cache) WarmStart(st *store.Store, cfgKey uint64, build func(*sparse.Matrix) (*core.Plan, sched.Assignment, error)) ([]WarmEntry, error) {
	keys, err := st.ScanFactors()
	if err != nil {
		return nil, err
	}
	var out []WarmEntry
	for _, k := range keys {
		if k.ConfigKey != cfgKey {
			continue
		}
		fs, err := st.GetFactor(k.PatternHash, k.ConfigKey)
		if err != nil {
			continue // corrupt → quarantined by the store; next factor builds cold
		}
		m, err := fs.Matrix()
		if err != nil {
			// The records decoded but the matrix is inconsistent (or its
			// pattern no longer hashes to the key): drop the lying snapshot.
			st.DeleteFactor(k.PatternHash, k.ConfigKey)
			continue
		}
		e, _, err := c.GetOrBuild(m, cfgKey, func() (*core.Plan, sched.Assignment, error) { return build(m) })
		if err != nil {
			continue
		}
		out = append(out, WarmEntry{Entry: e, Snap: fs})
	}
	return out, nil
}
