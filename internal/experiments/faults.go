package experiments

import (
	"fmt"
	"io"

	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
)

// Faults measures how the paper's mappings degrade under a fail-stop
// fault: one processor dies 30% of the way into the fault-free makespan
// and a buddy replays its lost fan-out state after a recovery delay. The
// table reports, per matrix, the fault-free simulated time and the
// percentage degradation for the cyclic mapping and for the paper's
// heuristic mapping. The interesting question is whether the heuristics'
// tighter load balance survives a recovery that dumps a dead processor's
// whole remaining load onto one buddy.
func Faults(w io.Writer, cfg Config) error {
	type mappingCase struct {
		name   string
		rh, ch mapping.Heuristic
	}
	cases := []mappingCase{
		{"cyclic", mapping.CY, mapping.CY},
		{"heuristic", mapping.ID, mapping.CY},
	}

	fmt.Fprintf(w, "single fail-stop at 0.3×makespan, buddy recovery, P=%d\n", cfg.P1)
	fmt.Fprintf(w, "%-12s", "Matrix")
	for _, c := range cases {
		fmt.Fprintf(w, " %12s %10s", c.name+" (s)", "+fail %")
	}
	fmt.Fprintln(w)

	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		g := grid(cfg.P1)
		fmt.Fprintf(w, "%-12s", p.Name)
		for _, c := range cases {
			a := plan.Assign(plan.Map(g, c.rh, c.ch), cfg.DomainBeta)
			base := plan.Simulate(a, cfg.Machine)

			mc := cfg.Machine
			mc.Faults = &machine.FaultPlan{
				Seed: 1,
				Failures: []machine.NodeFailure{
					{Proc: int32(cfg.P1 / 2), Time: base.Time * 0.3},
				},
				RecoveryDelay: 1e-3,
			}
			faulted, err := plan.SimulateChecked(a, mc)
			if err != nil {
				return fmt.Errorf("experiments: faults: %s/%s: %w", p.Name, c.name, err)
			}
			fmt.Fprintf(w, " %12.4f %10.1f", base.Time, pct(faulted.Time, base.Time))
		}
		fmt.Fprintln(w)
	}
	return nil
}
