package experiments

import (
	"fmt"
	"io"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/symbolic"
)

// Amalgamation ablates the supernode amalgamation step the paper applies
// (§2.2, citing Ashcraft & Grimes): without it, minimum-degree orderings
// produce many tiny supernodes, which inflates the per-operation fixed
// costs; with it, a bounded amount of explicit zero padding buys larger
// blocks and faster simulated factorization.
func Amalgamation(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s %10s\n",
		"Matrix", "snodes(off)", "snodes(on)", "flops+%", "ops(off)", "ops(on)", "Mf gain")
	for _, name := range []string{"BCSSTK15", "BCSSTK31", "CUBE30"} {
		p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
		if !ok {
			return fmt.Errorf("experiments: %s missing", name)
		}
		build := func(amalg symbolic.AmalgamationConfig) (*core.Plan, error) {
			opts := core.Options{BlockSize: cfg.B, GridDim: p.GridDim, Amalgamation: &amalg}
			switch p.Hint {
			case gen.HintNDGrid2D:
				opts.Ordering = order.NDGrid2D
			case gen.HintNDCube3D:
				opts.Ordering = order.NDCube3D
			default:
				opts.Ordering = order.MinDegree
			}
			return core.NewPlan(p.Build(), opts)
		}
		off, err := build(symbolic.NoAmalgamation())
		if err != nil {
			return err
		}
		on, err := build(symbolic.DefaultAmalgamation())
		if err != nil {
			return err
		}
		sim := func(plan *core.Plan) float64 {
			m := plan.Map(g, mapping.ID, mapping.CY)
			res := plan.Simulate(plan.Assign(m, cfg.DomainBeta), cfg.Machine)
			return res.Mflops(plan.Exact.Flops)
		}
		mfOff, mfOn := sim(off), sim(on)
		fmt.Fprintf(w, "%-12s %10d %10d %9.1f%% %10d %10d %9.0f%%\n",
			p.Name, len(off.Sym.Snodes), len(on.Sym.Snodes),
			pct(float64(on.BS.TotalFlops), float64(off.BS.TotalFlops)),
			off.BS.TotalOps, on.BS.TotalOps, pct(mfOn, mfOff))
	}
	return nil
}

// Domains ablates the domain/root split of §2.3 across the selection
// parameter β: domains trade 2-D balance for locality, cutting remote
// traffic (the paper's stated motivation) at little or no runtime cost.
func Domains(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	name := "GRID300"
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
	if !ok {
		return fmt.Errorf("experiments: %s missing", name)
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	m := plan.Map(g, mapping.ID, mapping.CY)
	fmt.Fprintf(w, "%s, P=%d, ID/CY mapping\n", name, g.P())
	fmt.Fprintf(w, "%8s %10s %12s %14s %10s\n", "beta", "domains", "messages", "bytes", "Mflops")
	for _, beta := range []float64{0, 1, 2, 4, 8} {
		a := plan.Assign(m, beta)
		pr := sched.Build(plan.BS, a)
		res := machine.MustSimulate(pr, cfg.Machine)
		nd := 0
		if a.Dom != nil {
			nd = a.Dom.NDomains
		}
		fmt.Fprintf(w, "%8.0f %10d %12d %14d %10.0f\n",
			beta, nd, pr.TotalMessages, pr.TotalBytes, res.Mflops(plan.Exact.Flops))
	}
	return nil
}
