package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"sync"

	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/obs"
	"blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/tune"
)

// RemapResult is one measured factorization of the remap experiment: a
// real parallel run of one problem under one block→processor mapping.
type RemapResult struct {
	Problem string
	N       int // matrix dimension
	Procs   int
	// Map labels the mapping: a static heuristic pair ("ID/CY"), or
	// "remap" for the feedback-driven mapping rebuilt from the measured
	// cost profile of the serve run.
	Map string
	// Remap marks the feedback-driven row.
	Remap bool
	// Balance is the measured execution balance of the run itself:
	// total busy time over P×max busy time, from the recorded spans.
	Balance float64
	// Predicted is the ownership balance this mapping achieves over the
	// serve run's measured block costs — the quantity the tuner optimizes
	// and the deterministic signal the CI gate checks.
	Predicted float64
	Seconds   float64
}

// remapProblems picks the irregular problems the feedback loop is aimed
// at: the suite's irregular-mesh analogues, where modeled flops diverge
// most from measured block cost.
func remapProblems(cfg Config) ([]gen.Problem, error) {
	var out []gen.Problem
	for _, name := range []string{"BCSSTK15", "BCSSTK31"} {
		p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
		if !ok {
			return nil, fmt.Errorf("experiments: suite problem %s missing", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// remapPlanCache memoizes the experiment's SPMD plans (keyed by problem
// and block size; the experiment re-runs per processor count).
var remapPlanCache sync.Map // "name/b" → *core.Plan

// remapPlan analyzes a problem under the paper-faithful SPMD engine: one
// goroutine per virtual processor executing exactly the blocks it owns.
// Ownership balance is the quantity the feedback loop optimizes, and only
// owner-computes execution makes it observable as per-processor busy time
// (the work-stealing engine deliberately decouples the two).
func remapPlan(p gen.Problem, cfg Config) (*core.Plan, error) {
	key := fmt.Sprintf("%s/%d", p.Name, cfg.B)
	if v, ok := remapPlanCache.Load(key); ok {
		return v.(*core.Plan), nil
	}
	opts := core.Options{
		BlockSize: cfg.B,
		Ordering:  order.MinDegree, // both problems are HintMinDeg analogues
		Exec:      fanout.ModeSPMD,
	}
	plan, err := core.NewPlan(p.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
	}
	remapPlanCache.Store(key, plan)
	return plan, nil
}

// verifyFactor checks a parallel factor entry-for-entry against the
// sequential reference to 1e-12 relative — the same acceptance tolerance
// the refactorization path uses. Timing and balance rows only mean
// something if the measured runs computed the right factor.
func verifyFactor(seq, par *core.Factor) error {
	sd, pd := seq.Numeric().Data, par.Numeric().Data
	for j := range sd {
		for bi := range sd[j] {
			for k, v := range sd[j][bi] {
				if w := pd[j][bi][k]; math.Abs(v-w) > 1e-12*(1+math.Abs(v)) {
					return fmt.Errorf("experiments: remap factor diverges from sequential reference at column %d block %d entry %d: %g vs %g", j, bi, k, w, v)
				}
			}
		}
	}
	return nil
}

// measuredBalance is the execution balance of a recorded run — per-worker
// busy nanoseconds (compute spans only) folded through the paper's
// total/(P·max) measure — together with the run's compute window in
// seconds: first span start to last span end, the factorization's actual
// parallel makespan with the identical per-run setup overheads (factor
// allocation, recorder arming) excluded from every row alike.
func measuredBalance(rec *obs.Recorder) (bal, window float64) {
	busy := make([]int64, rec.Procs())
	first, last := int64(math.MaxInt64), int64(0)
	for _, s := range rec.Spans() {
		switch s.Op {
		case obs.OpBFAC, obs.OpBDIV, obs.OpBMOD:
		default:
			continue
		}
		d := s.End - s.Start
		if d <= 0 {
			d = 1
		}
		busy[s.Proc] += d
		if s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	if last > first {
		window = float64(last-first) / 1e9
	}
	return tune.Balance(busy), window
}

// remapReps is how many measured factorizations each row runs; the row
// reports the fastest (and that run's balance and recording), damping
// scheduler noise at CI-scale run lengths.
const remapReps = 3

// remapRun times remapReps measured factorizations under an assignment,
// verifies each against the sequential reference, and returns the fastest
// run's compute window, execution balance, and recording (for profile
// building).
func remapRun(plan *core.Plan, a sched.Assignment, seq *core.Factor) (sec, bal float64, rec *obs.Recorder, pr *sched.Program, err error) {
	for rep := 0; rep < remapReps; rep++ {
		f, r, p, err := plan.FactorMeasuredValuesContext(context.Background(), a, plan.A.Val)
		if err != nil {
			return 0, 0, nil, nil, err
		}
		if err := verifyFactor(seq, f); err != nil {
			return 0, 0, nil, nil, err
		}
		b, w := measuredBalance(r)
		if rec == nil || w < sec {
			sec, bal, rec, pr = w, b, r, p
		}
	}
	return sec, bal, rec, pr, nil
}

// RemapRows runs the full remap-after-measure comparison for each problem
// at each processor count and returns every row. Per (problem, P):
// every static heuristic pair h/h plus the serving tier's ID/CY default
// is factored for real with the drop-free measurement recorder; the
// serve run's spans become the tune.CostProfile; tune.Search rebuilds
// the mapping from those measured costs; and the tuned mapping is
// factored under the same conditions. Every run is verified against the
// sequential reference to 1e-12.
func RemapRows(cfg Config, procs []int) ([]RemapResult, error) {
	problems, err := remapProblems(cfg)
	if err != nil {
		return nil, err
	}
	var rows []RemapResult
	for _, p := range problems {
		plan, err := remapPlan(p, cfg)
		if err != nil {
			return nil, err
		}
		seq, err := plan.FactorSequential()
		if err != nil {
			return nil, err
		}
		for _, np := range procs {
			g := mapping.BestGrid(np)

			// The serve run doubles as the measurement pass: the serving
			// tier's default mapping (Increasing Depth rows × Column-
			// intensive columns, domains enabled), exactly what a -tune
			// server measures on the first factorization of a pattern.
			serveA := plan.Assign(plan.Map(g, mapping.ID, mapping.CY), cfg.DomainBeta)
			sec, bal, rec, pr, err := remapRun(plan, serveA, seq)
			if err != nil {
				return nil, err
			}
			prof, err := tune.BuildProfile(rec, pr, 0, 0)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RemapResult{
				Problem: p.Name, N: plan.A.N, Procs: np, Map: "ID/CY",
				Balance:   bal,
				Predicted: tune.Balance(prof.PredictedLoads(serveA.Owner, np)),
				Seconds:   sec,
			})

			// The remaining static heuristics, h/h as in Tables 3–5.
			for _, h := range mapping.AllHeuristics() {
				if h == mapping.ID {
					continue // ID/CY above is the serving configuration
				}
				a := plan.Assign(plan.Map(g, h, h), cfg.DomainBeta)
				sec, bal, _, _, err := remapRun(plan, a, seq)
				if err != nil {
					return nil, err
				}
				rows = append(rows, RemapResult{
					Problem: p.Name, N: plan.A.N, Procs: np,
					Map:       h.String() + "/" + h.String(),
					Balance:   bal,
					Predicted: tune.Balance(prof.PredictedLoads(a.Owner, np)),
					Seconds:   sec,
				})
			}

			// Feedback-driven mapping: rebuild ownership from the measured
			// costs, no domain override — the adoption decision compares
			// loads under exactly this ownership (see internal/tune).
			tm, _ := tune.Search(prof, np)
			ta := plan.Assign(tm, 0)
			sec, bal, _, _, err = remapRun(plan, ta, seq)
			if err != nil {
				return nil, err
			}
			rows = append(rows, RemapResult{
				Problem: p.Name, N: plan.A.N, Procs: np, Map: "remap", Remap: true,
				Balance:   bal,
				Predicted: tune.Balance(prof.PredictedLoads(ta.Owner, np)),
				Seconds:   sec,
			})
		}
	}
	return rows, nil
}

// RemapProcs are the processor counts the remap experiment covers.
var RemapProcs = []int{8, 16}

// Remap prints the feedback-driven mapping comparison: for each irregular
// problem and processor count, the measured balance, profile-predicted
// ownership balance, and end-to-end time of every static heuristic
// against remap-after-measure.
func Remap(w io.Writer, cfg Config) error {
	rows, err := RemapRows(cfg, RemapProcs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Feedback-driven remapping vs static heuristics (measured runs, verified to 1e-12)\n")
	var key string
	var bestBal, bestPred, bestSec float64
	flush := func(r RemapResult) {
		fmt.Fprintf(w, "  best static: balance %.3f  predicted %.3f  %8.2f ms\n",
			bestBal, bestPred, bestSec*1e3)
		fmt.Fprintf(w, "  remap gain:  balance %+.1f%%  predicted %+.1f%%  time %+.1f%%\n",
			pct(r.Balance, bestBal), pct(r.Predicted, bestPred), pct(bestSec, r.Seconds))
	}
	for _, r := range rows {
		if k := fmt.Sprintf("%s P=%d", r.Problem, r.Procs); k != key {
			key = k
			bestBal, bestPred, bestSec = 0, 0, 0
			fmt.Fprintf(w, "\n%s (n=%d), P=%d:\n", r.Problem, r.N, r.Procs)
			fmt.Fprintf(w, "  %-8s %8s %10s %11s\n", "map", "balance", "predicted", "ms")
		}
		fmt.Fprintf(w, "  %-8s %8.3f %10.3f %11.2f\n", r.Map, r.Balance, r.Predicted, r.Seconds*1e3)
		if r.Remap {
			flush(r)
		} else {
			if r.Balance > bestBal {
				bestBal = r.Balance
			}
			if r.Predicted > bestPred {
				bestPred = r.Predicted
			}
			if bestSec == 0 || r.Seconds < bestSec {
				bestSec = r.Seconds
			}
		}
	}
	return nil
}
