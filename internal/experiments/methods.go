package experiments

import (
	"fmt"
	"io"
	"time"

	"blockfanout/internal/colfan"
	"blockfanout/internal/gen"
	"blockfanout/internal/leftlooking"
	"blockfanout/internal/mapping"
	"blockfanout/internal/multifrontal"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sched"
)

// Organizations compares the wall-clock time of the four sequential
// factorization organizations implemented in this repository — up-looking
// (row by row), left-looking supernodal, multifrontal, and the
// right-looking blocked method the paper parallelizes — on the same
// matrices. This reproduces, on today's hardware, the comparison of the
// authors' earlier report [Rothberg & Gupta 1991]: the supernodal methods
// (with their dense inner loops) dominate the column-wise method as
// supernodes grow.
func Organizations(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n",
		"Matrix", "up-looking", "left-looking", "multifrontal", "right-block")
	for _, name := range []string{"GRID300", "CUBE30", "BCSSTK31"} {
		p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
		if !ok {
			return fmt.Errorf("experiments: %s missing", name)
		}
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		timeIt := func(f func() error) (time.Duration, error) {
			start := time.Now()
			err := f()
			return time.Since(start), err
		}
		tUp, err := timeIt(func() error {
			_, err := refchol.Compute(plan.PA)
			return err
		})
		if err != nil {
			return err
		}
		tLL, err := timeIt(func() error {
			_, err := leftlooking.Compute(plan.PA, plan.Sym)
			return err
		})
		if err != nil {
			return err
		}
		tMF, err := timeIt(func() error {
			_, _, err := multifrontal.Compute(plan.PA, plan.Sym)
			return err
		})
		if err != nil {
			return err
		}
		tRB, err := timeIt(func() error {
			_, err := plan.FactorSequential()
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12v %12v %12v %12v\n",
			p.Name, tUp.Round(time.Microsecond), tLL.Round(time.Microsecond),
			tMF.Round(time.Microsecond), tRB.Round(time.Microsecond))
	}
	return nil
}

// ColfanMessages compares the real executed message counts of the
// traditional 1-D column fan-out method against the 2-D block fan-out on
// the same matrix across machine sizes — the intro's communication claim
// measured on actual executions rather than the analytic model.
func ColfanMessages(w io.Writer, cfg Config) error {
	name := "GRID150"
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
	if !ok {
		return fmt.Errorf("experiments: %s missing", name)
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	colSym := colfan.Expand(plan.Sym)
	fmt.Fprintf(w, "%s: executed remote messages/bytes by method\n", name)
	fmt.Fprintf(w, "%6s %12s %14s %12s %14s\n", "P", "1-D msgs", "1-D bytes", "2-D msgs", "2-D bytes")
	for _, procs := range []int{4, 16, 64} {
		_, cfStats, err := colfan.Run(plan.PA, colSym, procs)
		if err != nil {
			return err
		}
		g := mapping.BestGrid(procs)
		pr := sched.Build(plan.BS, sched.Assignment{Map: mapping.Cyclic(g, plan.BS.N())})
		fmt.Fprintf(w, "%6d %12d %14d %12d %14d\n",
			procs, cfStats.Messages, cfStats.Bytes, pr.TotalMessages, pr.TotalBytes)
	}
	return nil
}
