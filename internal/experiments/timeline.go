package experiments

import (
	"fmt"
	"io"

	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/obs"
)

// timelineProblem is the representative matrix the timeline experiment
// inspects: BCSSTK31, the paper's running example for the §5 where-does-
// the-time-go discussion.
const timelineProblem = "BCSSTK31"

// timelineRun simulates the representative problem at cfg.P2 processors
// under the given heuristics with trace collection on.
func timelineRun(cfg Config, rowH, colH mapping.Heuristic) (machine.Result, error) {
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), timelineProblem)
	if !ok {
		return machine.Result{}, fmt.Errorf("experiments: %s missing", timelineProblem)
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return machine.Result{}, err
	}
	g := grid(cfg.P2)
	mcfg := cfg.Machine
	mcfg.CollectTrace = true
	m := plan.Map(g, rowH, colH)
	return plan.Simulate(plan.Assign(m, cfg.DomainBeta), mcfg), nil
}

// Timeline reproduces the §5 instrumentation argument at per-processor
// resolution: for the cyclic and the ID/CY heuristic mappings of the
// representative problem it reports each run's makespan and machine-wide
// compute/comm/idle split, plus the busiest and idlest processor — the
// numbers that show idle-waiting-for-data dominating once the mapping
// heuristics land. The same simulated spans export to Chrome trace-event
// JSON via TimelineTrace.
func Timeline(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "%s, P=%d: per-processor time breakdown\n", timelineProblem, cfg.P2)
	fmt.Fprintf(w, "%-10s %10s %7s %7s %7s %12s %12s %8s\n",
		"mapping", "time (s)", "comp", "comm", "idle", "busiest", "idlest", "spans")
	for _, row := range []struct {
		name       string
		rowH, colH mapping.Heuristic
	}{
		{"CY/CY", mapping.CY, mapping.CY},
		{"ID/CY", mapping.ID, mapping.CY},
	} {
		res, err := timelineRun(cfg, row.rowH, row.colH)
		if err != nil {
			return err
		}
		comp, comm, idle := res.Breakdown()
		loBusy, hiBusy := 1.0, 0.0
		for p := range res.CompTime {
			busy := (res.CompTime[p] + res.CommTime[p]) / res.Time
			if busy > hiBusy {
				hiBusy = busy
			}
			if busy < loBusy {
				loBusy = busy
			}
		}
		fmt.Fprintf(w, "%-10s %10.4f %6.0f%% %6.0f%% %6.0f%% %11.0f%% %11.0f%% %8d\n",
			row.name, res.Time, comp*100, comm*100, idle*100, hiBusy*100, loBusy*100, len(res.Spans))
	}
	return nil
}

// TimelineTrace runs the heuristic-mapped timeline simulation and writes
// its spans as a Chrome trace-event JSON document to traceW. cmd/spchol's
// -trace flag and the CI trace artifact are built on it.
func TimelineTrace(traceW io.Writer, cfg Config) error {
	res, err := timelineRun(cfg, mapping.ID, mapping.CY)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s ID/CY P=%d (simulated)", timelineProblem, cfg.P2)
	return obs.WriteMachineTrace(traceW, &res, name)
}
