package experiments

import (
	"fmt"
	"io"

	"blockfanout/internal/blocks"
	"blockfanout/internal/commvol"
	"blockfanout/internal/critpath"
	"blockfanout/internal/gen"
	"blockfanout/internal/loadbal"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/sched"
)

// AltHeuristic reproduces the first §4.2 experiment: the per-processor
// refinement heuristic (row map chosen to minimize the single most loaded
// processor, columns cyclic) against the primary aggregate-row heuristic.
// Expected shape: balance improves further (typically 10–15%), realized
// performance does not.
func AltHeuristic(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %10s %10s %10s %10s %10s\n",
		"Matrix", "bal(DW/CY)", "bal(PP)", "Δbal", "Mf(DW/CY)", "Mf(PP)")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		primary := plan.Map(g, mapping.DW, mapping.CY)
		refined := mapping.NewPerProcessor(g, mapping.DW, mapping.CY, plan.BS, plan.PanelDepth)
		balP := loadbal.Compute(plan.BS, primary).Overall
		balR := loadbal.Compute(plan.BS, refined).Overall
		mfP := mflops(plan, plan.Simulate(plan.Assign(primary, cfg.DomainBeta), cfg.Machine))
		mfR := mflops(plan, plan.Simulate(plan.Assign(refined, cfg.DomainBeta), cfg.Machine))
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %9.0f%% %10.0f %10.0f\n",
			p.Name, balP, balR, pct(balR, balP), mfP, mfR)
	}
	return nil
}

// RelPrime reproduces the second §4.2 experiment: running the plain cyclic
// mapping on one fewer processor, making the grid dimensions relatively
// prime (63 = 9×7, 99 = 11×9), eliminates the diagonal imbalance and
// recovers most — but not all — of the heuristics' gain.
func RelPrime(w io.Writer, cfg Config) error {
	for _, procs := range []int{cfg.P1, cfg.P2} {
		gs := grid(procs)
		gr := mapping.BestGrid(procs - 1)
		fmt.Fprintf(w, "\nP=%d (grid %dx%d) vs P=%d (grid %dx%d, coprime=%v)\n",
			procs, gs.Pr, gs.Pc, procs-1, gr.Pr, gr.Pc, gr.RelativelyPrime())
		fmt.Fprintf(w, "%-12s %10s %10s %12s %12s %12s\n",
			"Matrix", "bal(P)", "bal(P-1)", "Mf cyclic", "Mf relprime", "Mf heuristic")
		for _, p := range gen.Table1Suite(cfg.Scale) {
			plan, err := PlanFor(p, cfg.Scale, cfg.B)
			if err != nil {
				return err
			}
			cyS := mapping.Cyclic(gs, plan.BS.N())
			cyR := mapping.Cyclic(gr, plan.BS.N())
			balS := loadbal.Compute(plan.BS, cyS).Overall
			balR := loadbal.Compute(plan.BS, cyR).Overall
			mfS := mflops(plan, plan.Simulate(plan.Assign(cyS, cfg.DomainBeta), cfg.Machine))
			mfR := mflops(plan, plan.Simulate(plan.Assign(cyR, cfg.DomainBeta), cfg.Machine))
			mfH := mflops(plan, simulate(plan, gs, mapping.ID, mapping.CY, cfg))
			fmt.Fprintf(w, "%-12s %10.2f %10.2f %12.0f %12.0f %12.0f\n",
				p.Name, balS, balR, mfS, mfR, mfH)
		}
	}
	return nil
}

// CommFraction reproduces the §5 instrumentation: on the Paragon model,
// communication costs stay below ~20% of total runtime even at P=196, and
// most of the remaining non-compute time is idle waiting for data.
func CommFraction(w io.Writer, cfg Config) error {
	g := grid(cfg.PL2)
	fmt.Fprintf(w, "%-12s %12s %10s %8s %8s %8s\n",
		"Matrix", "time (s)", "comm max", "comp", "comm", "idle")
	for _, p := range gen.Table7Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		res := simulate(plan, g, mapping.ID, mapping.CY, cfg)
		comp, comm, idle := res.Breakdown()
		fmt.Fprintf(w, "%-12s %12.4f %9.1f%% %7.0f%% %7.0f%% %7.0f%%\n",
			p.Name, res.Time, res.CommFraction()*100, comp*100, comm*100, idle*100)
	}
	return nil
}

// OneDim compares the runtime scaling of a 1-D block-column mapping (a 1×P
// grid) against the 2-D √P×√P cyclic mapping — the introduction's argument
// for 2-D mappings: the 1-D method stops scaling early because its
// communication volume grows linearly in P and its critical path is long.
func OneDim(w io.Writer, cfg Config) error {
	name := "CUBE30"
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
	if !ok {
		return fmt.Errorf("experiments: %s missing", name)
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: simulated Mflops by machine size and mapping\n", name)
	fmt.Fprintf(w, "%6s %12s %12s %12s\n", "P", "1-D cyclic", "2-D cyclic", "2-D ID/CY")
	for _, procs := range []int{4, 16, 64, 144} {
		g2 := grid(procs)
		g1 := mapping.Grid{Pr: 1, Pc: procs}
		m1 := mapping.Cyclic(g1, plan.BS.N())
		m2 := mapping.Cyclic(g2, plan.BS.N())
		mh := plan.Map(g2, mapping.ID, mapping.CY)
		f1 := mflops(plan, plan.Simulate(plan.Assign(m1, cfg.DomainBeta), cfg.Machine))
		f2 := mflops(plan, plan.Simulate(plan.Assign(m2, cfg.DomainBeta), cfg.Machine))
		fh := mflops(plan, plan.Simulate(plan.Assign(mh, cfg.DomainBeta), cfg.Machine))
		fmt.Fprintf(w, "%6d %12.0f %12.0f %12.0f\n", procs, f1, f2, fh)
	}
	return nil
}

// CritPath reproduces the §5 critical-path analysis: the ratio between the
// performance admitted by the critical path and the achieved performance —
// the paper reports ~50% headroom for BCSSTK15 and ~30% for BCSSTK31 on 100
// processors.
func CritPath(w io.Writer, cfg Config) error {
	g := grid(cfg.P2)
	fmt.Fprintf(w, "%-12s %14s %14s %10s\n", "Matrix", "achieved (Mf)", "CP bound (Mf)", "headroom")
	for _, name := range []string{"BCSSTK15", "BCSSTK31"} {
		p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
		if !ok {
			return fmt.Errorf("experiments: %s missing", name)
		}
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		res := simulate(plan, g, mapping.ID, mapping.CY, cfg)
		ach := mflops(plan, res)
		cp := plan.CriticalPath(cfg.Machine)
		bound := float64(plan.Exact.Flops) / cp / 1e6
		// Performance cannot exceed P processors' aggregate rate either.
		if lim := float64(cfg.P2) * cfg.Machine.FlopRate / 1e6; bound > lim {
			bound = lim
		}
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %9.0f%%\n", p.Name, ach, bound, pct(bound, ach))
	}
	return nil
}

// Subcube reproduces the §5 subtree-to-subcube experiment: the
// communication-reducing column mapping cuts volume (up to ~30%) but loses
// the load balance the heuristics achieve, so realized performance drops.
func Subcube(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %11s %11s %8s %10s %10s %11s %11s\n",
		"Matrix", "bytes(heur)", "bytes(sub)", "Δvol", "bal(heur)", "bal(sub)", "Mf(heur)", "Mf(sub)")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		heur := plan.Map(g, mapping.ID, mapping.CY)
		sub := mapping.Compose(g, mapping.ID, mapping.SubcubeColumns(plan.Sym, plan.BS, g.Pc), plan.BS, plan.PanelDepth)
		volH := commvol.Of(plan.BS, sched.Assignment{Map: heur})
		volS := commvol.Of(plan.BS, sched.Assignment{Map: sub})
		balH := loadbal.Compute(plan.BS, heur).Overall
		balS := loadbal.Compute(plan.BS, sub).Overall
		mfH := mflops(plan, plan.Simulate(plan.Assign(heur, cfg.DomainBeta), cfg.Machine))
		mfS := mflops(plan, plan.Simulate(plan.Assign(sub, cfg.DomainBeta), cfg.Machine))
		fmt.Fprintf(w, "%-12s %11d %11d %7.0f%% %10.2f %10.2f %11.0f %11.0f\n",
			p.Name, volH.Bytes, volS.Bytes, pct(float64(volS.Bytes), float64(volH.Bytes)),
			balH, balS, mfH, mfS)
	}
	return nil
}

// BlockSize is the §5 block-size ablation, in three parts:
//
//  1. a uniform-B sweep (overall balance and simulated performance of the
//     cyclic and heuristic mappings — the paper's B=48 operating point),
//  2. the stage-varying policy (large blocks early, small late), which the
//     paper found does NOT improve load balance while cutting parallelism,
//  3. the processor-position-cycled policy (block size chosen by the
//     processor column a panel maps to), which helped modestly.
func BlockSize(w io.Writer, cfg Config) error {
	sizes := []int{8, 16, 24, 32, 48, 64, 96}
	if cfg.Scale == gen.ScaleCI {
		sizes = []int{4, 8, 12, 16, 24, 32}
	}
	g := grid(cfg.P1)
	for _, name := range []string{"GRID300", "BCSSTK31"} {
		p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
		if !ok {
			return fmt.Errorf("experiments: %s missing", name)
		}
		fmt.Fprintf(w, "\n%s: uniform block-size sweep\n%6s %10s %10s %12s %12s\n",
			p.Name, "B", "bal(CY)", "bal(ID/CY)", "Mf(CY)", "Mf(ID/CY)")
		for _, b := range sizes {
			plan, err := PlanFor(p, cfg.Scale, b)
			if err != nil {
				return err
			}
			cy := mapping.Cyclic(g, plan.BS.N())
			he := plan.Map(g, mapping.ID, mapping.CY)
			balC := loadbal.Compute(plan.BS, cy).Overall
			balH := loadbal.Compute(plan.BS, he).Overall
			mfC := mflops(plan, plan.Simulate(plan.Assign(cy, cfg.DomainBeta), cfg.Machine))
			mfH := mflops(plan, plan.Simulate(plan.Assign(he, cfg.DomainBeta), cfg.Machine))
			fmt.Fprintf(w, "%6d %10.2f %10.2f %12.0f %12.0f\n", b, balC, balH, mfC, mfH)
		}
		if err := blockSizeVariants(w, cfg, p, g); err != nil {
			return err
		}
	}
	return nil
}

// blockSizeVariants runs the stage-varying and processor-cycled partitions
// against the uniform baseline under a cyclic mapping.
func blockSizeVariants(w io.Writer, cfg Config, p gen.Problem, g mapping.Grid) error {
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	n := plan.Sym.N
	small, big := cfg.B/2, cfg.B
	if small < 1 {
		small = 1
	}
	cycled := make([]int, g.Pc)
	for c := range cycled {
		// Widths ramp across the processor columns around the target B.
		cycled[c] = small + (big-small)*c/maxInt(1, g.Pc-1) + small/2
	}
	stagedDown, err := blocks.NewPartitionStaged(plan.Sym, big, small, n/2)
	if err != nil {
		return err
	}
	stagedUp, err := blocks.NewPartitionStaged(plan.Sym, small, big, n/2)
	if err != nil {
		return err
	}
	cycledPart, err := blocks.NewPartitionCycled(plan.Sym, cycled)
	if err != nil {
		return err
	}
	variants := []struct {
		label string
		part  *blocks.Partition
	}{
		{fmt.Sprintf("uniform B=%d", cfg.B), blocks.NewPartition(plan.Sym, cfg.B)},
		{fmt.Sprintf("staged %d→%d", big, small), stagedDown},
		{fmt.Sprintf("staged %d→%d", small, big), stagedUp},
		{"cycled by proc col", cycledPart},
	}
	fmt.Fprintf(w, "%s: non-uniform block-size policies (cyclic mapping, P=%d)\n", p.Name, g.P())
	fmt.Fprintf(w, "%-22s %8s %10s %12s\n", "policy", "panels", "bal(CY)", "Mf(CY)")
	for _, v := range variants {
		bs, err := blocks.Build(plan.Sym, v.part)
		if err != nil {
			return err
		}
		cy := mapping.Cyclic(g, bs.N())
		bal := loadbal.Compute(bs, cy).Overall
		pr := sched.Build(bs, sched.Assignment{Map: cy})
		res := machine.MustSimulate(pr, cfg.Machine)
		fmt.Fprintf(w, "%-22s %8d %10.2f %12.0f\n",
			v.label, bs.N(), bal, res.Mflops(plan.Exact.Flops))
	}
	return nil
}

// IrregularBlocking re-runs the paper's mapping comparison on the
// structure-aware irregular partition (supernode amalgamation + supernode-
// aligned variable-width panels). The paper's §5 negative result was that
// varying block sizes against a structure-blind stride gains little; the
// question here is whether the load-balance story — heuristic mappings
// beating cyclic — survives when the matrix structure drives the panel
// widths instead. Balances are computed on each strategy's own block
// structure; simulated Mflops use the shared exact operation count, so the
// columns are directly comparable.
func IrregularBlocking(w io.Writer, cfg Config) error {
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), "BCSSTK31")
	if !ok {
		return fmt.Errorf("experiments: BCSSTK31 missing from suite")
	}
	uni, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	irr, err := PlanForBlocking(p, cfg.Scale, cfg.B, blocks.StrategyIrregular, 0.125)
	if err != nil {
		return err
	}
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%s, P=%d: uniform %d panels (%d supernodes) vs irregular %d panels (%d supernodes)\n",
		p.Name, g.P(), uni.BS.N(), len(uni.Sym.Snodes), irr.BS.N(), len(irr.Sym.Snodes))
	fmt.Fprintf(w, "%-12s %12s %12s %12s %12s\n",
		"Heuristic", "bal(unif)", "bal(irreg)", "Mf(unif)", "Mf(irreg)")
	for _, h := range mapping.AllHeuristics() {
		mu := heuristicMap(uni, g, h, h)
		mi := heuristicMap(irr, g, h, h)
		balU := loadbal.Compute(uni.BS, mu).Overall
		balI := loadbal.Compute(irr.BS, mi).Overall
		mfU := mflops(uni, uni.Simulate(uni.Assign(mu, cfg.DomainBeta), cfg.Machine))
		mfI := mflops(irr, irr.Simulate(irr.Assign(mi, cfg.DomainBeta), cfg.Machine))
		name := h.String()
		if h == mapping.CY {
			name = "Cyclic"
		}
		fmt.Fprintf(w, "%-12s %12.2f %12.2f %12.0f %12.0f\n", name, balU, balI, mfU, mfI)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// PrioSched evaluates the paper's §5 conjecture that dynamic scheduling
// sensitive to task priority could reclaim the idle time left after the
// mapping heuristics are applied: it compares the data-driven FIFO receive
// queue against a critical-path-priority queue on the benchmark suite.
func PrioSched(w io.Writer, cfg Config) error {
	g := grid(cfg.P2)
	fifo := cfg.Machine
	fifo.Policy = machine.FIFO
	prio := cfg.Machine
	prio.Policy = machine.CritPath
	fmt.Fprintf(w, "%-12s %12s %12s %8s\n", "Matrix", "Mf (FIFO)", "Mf (prio)", "gain")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		m := plan.Map(g, mapping.ID, mapping.CY)
		a := plan.Assign(m, cfg.DomainBeta)
		mfF := mflops(plan, plan.Simulate(a, fifo))
		mfP := mflops(plan, plan.Simulate(a, prio))
		fmt.Fprintf(w, "%-12s %12.0f %12.0f %7.0f%%\n", p.Name, mfF, mfP, pct(mfP, mfF))
	}
	return nil
}

// CommScaling reproduces the introduction's scalability claim: the
// communication volume of a 1-D column mapping grows linearly with P while
// the 2-D block mapping grows like √P.
func CommScaling(w io.Writer, cfg Config) error {
	name := "GRID300"
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), name)
	if !ok {
		return fmt.Errorf("experiments: %s missing", name)
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s: remote bytes by mapping\n%6s %14s %14s %10s\n", name, "P", "1-D column", "2-D cyclic", "ratio")
	for _, procs := range []int{4, 16, 64, 256} {
		v1 := commvol.Column1D(plan.Sym, procs)
		v2 := commvol.Cyclic2D(plan.BS, procs)
		ratio := 0.0
		if v2.Bytes > 0 {
			ratio = float64(v1.Bytes) / float64(v2.Bytes)
		}
		fmt.Fprintf(w, "%6d %14d %14d %9.1fx\n", procs, v1.Bytes, v2.Bytes, ratio)
	}
	return nil
}

// Concurrency supports the §5 claim that the benchmark problems "should
// [have] enough [parallelism] to keep the processors occupied": it reports
// the critical path and the average/peak width of the block-operation DAG
// under an ASAP schedule, to compare with the machine sizes used.
func Concurrency(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "%-12s %12s %10s %10s %16s\n",
		"Matrix", "crit path", "avg width", "max width", "enough for P=100?")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		prof := critpath.ComputeProfile(plan.BS, cfg.Machine.FlopRate, cfg.Machine.OpOverhead, 16)
		fmt.Fprintf(w, "%-12s %11.4fs %10.1f %10d %16v\n",
			p.Name, prof.CriticalPath, prof.AvgWidth, prof.MaxWidth, prof.AvgWidth >= float64(cfg.P2))
	}
	return nil
}

// Arbitrary quantifies the §2.4 trade-off the paper's CP mappings make: a
// fully general per-block greedy mapping achieves near-perfect overall
// balance but — lacking the Cartesian-product property that confines a
// block's consumers to one processor row and column — carries a much
// larger communication volume (up to ~70% more at paper scale). On the
// bandwidth-rich Paragon model the volume penalty stays affordable, which
// is consistent with the paper's own observation that communication was
// not its binding constraint; on bandwidth-poor machines the CP property
// is what keeps the method scalable.
func Arbitrary(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %10s %10s %12s %12s %10s %10s\n",
		"Matrix", "bal(CP)", "bal(arb)", "bytes(CP)", "bytes(arb)", "Mf(CP)", "Mf(arb)")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		cp := plan.Map(g, mapping.ID, mapping.CY)
		arb := mapping.NewArbitraryGreedy(g.P(), plan.BS)
		balCP := loadbal.Compute(plan.BS, cp).Overall
		balAR := loadbal.OverallOf(plan.BS, g.P(), arb.Owner)
		aCP := sched.Assignment{Map: cp}
		aAR := sched.Assignment{Map: cp, Override: arb}
		volCP := commvol.Of(plan.BS, aCP)
		volAR := commvol.Of(plan.BS, aAR)
		mfCP := mflops(plan, machine.MustSimulate(sched.Build(plan.BS, aCP), cfg.Machine))
		mfAR := mflops(plan, machine.MustSimulate(sched.Build(plan.BS, aAR), cfg.Machine))
		fmt.Fprintf(w, "%-12s %10.2f %10.2f %12d %12d %10.0f %10.0f\n",
			p.Name, balCP, balAR, volCP.Bytes, volAR.Bytes, mfCP, mfAR)
	}
	return nil
}
