package experiments

import (
	"strings"
	"testing"

	"blockfanout/internal/gen"
)

func TestAllRunnersProduceOutput(t *testing.T) {
	cfg := Default(gen.ScaleCI)
	for _, r := range All() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			var sb strings.Builder
			if err := r.Run(&sb, cfg); err != nil {
				t.Fatalf("%s: %v", r.Name, err)
			}
			out := sb.String()
			if len(out) < 40 {
				t.Fatalf("%s produced almost no output: %q", r.Name, out)
			}
			// Every experiment reports on at least one benchmark matrix
			// or a processor count.
			if !strings.Contains(out, "DENSE") && !strings.Contains(out, "GRID") &&
				!strings.Contains(out, "CUBE") && !strings.Contains(out, "BCSSTK") &&
				!strings.Contains(out, "P=") && !strings.Contains(out, "P ") &&
				!strings.Contains(out, "Cyclic") {
				t.Fatalf("%s output lacks benchmark rows:\n%s", r.Name, out)
			}
		})
	}
}

func TestByNameLookup(t *testing.T) {
	if _, ok := ByName("table4"); !ok {
		t.Fatal("table4 missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus runner found")
	}
	if len(All()) != 27 {
		t.Fatalf("runner count %d, want 27", len(All()))
	}
}

func TestDefaultConfigs(t *testing.T) {
	ci := Default(gen.ScaleCI)
	paper := Default(gen.ScalePaper)
	if paper.B != 48 {
		t.Fatalf("paper block size %d, want the paper's 48", paper.B)
	}
	if ci.B >= paper.B {
		t.Fatal("CI block size should shrink with the matrices")
	}
	for _, c := range []Config{ci, paper} {
		if c.P1 != 64 || c.P2 != 100 || c.PL1 != 144 || c.PL2 != 196 {
			t.Fatalf("processor counts %+v differ from the paper's", c)
		}
	}
}

func TestPlanCacheReuses(t *testing.T) {
	p, _ := gen.ByName(gen.Table1Suite(gen.ScaleCI), "GRID150")
	a, err := PlanFor(p, gen.ScaleCI, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PlanFor(p, gen.ScaleCI, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("plan cache missed")
	}
	c, err := PlanFor(p, gen.ScaleCI, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different block size shared a plan")
	}
}

// TestHeadlineShapes asserts the paper's headline claims hold at CI scale:
// the heuristics improve mean overall balance a lot and mean simulated
// performance by a smaller but clearly positive margin.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Default(gen.ScaleCI)
	suite := gen.Table1Suite(cfg.Scale)
	g := grid(cfg.P1)

	var balGain, perfGain float64
	for _, p := range suite {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			t.Fatal(err)
		}
		cy := plan.Map(g, 0, 0) // CY/CY
		he := plan.Map(g, 4, 0) // ID/CY
		balGain += pct(plan.Balances(he).Overall, plan.Balances(cy).Overall)
		mfCY := mflops(plan, plan.Simulate(plan.Assign(cy, cfg.DomainBeta), cfg.Machine))
		mfHE := mflops(plan, plan.Simulate(plan.Assign(he, cfg.DomainBeta), cfg.Machine))
		perfGain += pct(mfHE, mfCY)
	}
	balGain /= float64(len(suite))
	perfGain /= float64(len(suite))
	if balGain < 20 {
		t.Fatalf("mean balance gain %.0f%% below the paper's regime", balGain)
	}
	if perfGain < 8 {
		t.Fatalf("mean performance gain %.0f%% too small", perfGain)
	}
	if perfGain > balGain {
		t.Fatalf("performance gain %.0f%% exceeds balance gain %.0f%% — §4.1 shape violated", perfGain, balGain)
	}
}
