// Package experiments regenerates every table and figure of the paper's
// evaluation (and the quantitative claims of its discussion sections). Each
// experiment writes the same rows the paper reports; EXPERIMENTS.md records
// paper-vs-measured values. The same runners back cmd/tables and the
// benchmark harness at the repository root.
package experiments

import (
	"fmt"
	"io"
	"sync"

	"blockfanout/internal/blocks"
	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/machine"
	"blockfanout/internal/mapping"
	"blockfanout/internal/order"
	"blockfanout/internal/symbolic"
)

// Config fixes the experimental setup shared by all experiments.
type Config struct {
	Scale gen.Scale
	// B is the block size: the paper's 48 at paper scale; smaller at CI
	// scale so the reduced matrices still decompose into enough panels.
	B int
	// P1, P2 are the main processor counts (64 and 100 in the paper).
	P1, P2 int
	// PL1, PL2 are the large-machine counts (144 and 196).
	PL1, PL2 int
	// Machine is the simulated machine model.
	Machine machine.Config
	// DomainBeta enables the domain/root split used by the performance
	// experiments (the paper's code always uses domains); ≤0 disables.
	DomainBeta float64
}

// Default returns the configuration for a scale.
func Default(s gen.Scale) Config {
	cfg := Config{
		Scale:      s,
		B:          48,
		P1:         64,
		P2:         100,
		PL1:        144,
		PL2:        196,
		Machine:    machine.Paragon(),
		DomainBeta: 2,
	}
	if s == gen.ScaleCI {
		cfg.B = 16
	}
	return cfg
}

// planCache memoizes analyzed plans per (problem, scale, blocksize,
// blocking): the tables reuse the same matrices many times and plans are
// immutable.
var planCache sync.Map // key planKey → *core.Plan

type planKey struct {
	name  string
	scale gen.Scale
	b     int
	strat blocks.Strategy
	amalg float64
}

// PlanFor analyzes a benchmark problem with the ordering the paper used
// for it, under the paper's uniform fixed-width blocking.
func PlanFor(p gen.Problem, scale gen.Scale, b int) (*core.Plan, error) {
	return PlanForBlocking(p, scale, b, blocks.StrategyUniform, 0)
}

// PlanForBlocking is PlanFor with an explicit partitioning strategy and
// (for the irregular strategy) relative-fill amalgamation threshold.
func PlanForBlocking(p gen.Problem, scale gen.Scale, b int, strat blocks.Strategy, amalg float64) (*core.Plan, error) {
	key := planKey{p.Name, scale, b, strat, amalg}
	if v, ok := planCache.Load(key); ok {
		return v.(*core.Plan), nil
	}
	opts := core.Options{BlockSize: b, GridDim: p.GridDim, Blocking: strat, AmalgThreshold: amalg}
	switch p.Hint {
	case gen.HintNone:
		opts.Ordering = order.Natural
		// Dense problems gain nothing from amalgamation (one supernode).
		na := symbolic.NoAmalgamation()
		opts.Amalgamation = &na
	case gen.HintNDGrid2D:
		opts.Ordering = order.NDGrid2D
	case gen.HintNDCube3D:
		opts.Ordering = order.NDCube3D
	default:
		opts.Ordering = order.MinDegree
	}
	plan, err := core.NewPlan(p.Build(), opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", p.Name, err)
	}
	planCache.Store(key, plan)
	return plan, nil
}

// grid returns the square processor grid for p (which must be square).
func grid(p int) mapping.Grid {
	g, err := mapping.SquareGrid(p)
	if err != nil {
		panic(err)
	}
	return g
}

// simulate runs the fan-out simulation for a mapping built from the given
// heuristics, with the config's domain setting.
func simulate(plan *core.Plan, g mapping.Grid, rowH, colH mapping.Heuristic, cfg Config) machine.Result {
	m := plan.Map(g, rowH, colH)
	return plan.Simulate(plan.Assign(m, cfg.DomainBeta), cfg.Machine)
}

// mflops computes achieved performance against the exact sequential
// operation count, the paper's reporting convention.
func mflops(plan *core.Plan, res machine.Result) float64 {
	return res.Mflops(plan.Exact.Flops)
}

// pct formats an improvement ratio (new/old − 1) as a percentage.
func pct(newV, oldV float64) float64 {
	if oldV == 0 {
		return 0
	}
	return (newV/oldV - 1) * 100
}

// Runner is a named experiment writing its rows to w.
type Runner struct {
	Name string
	Desc string
	Run  func(w io.Writer, cfg Config) error
}

// All lists every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"table1", "Table 1: benchmark matrices (n, nnz(L), ops)", Table1},
		{"figure1", "Figure 1: efficiency and overall balance, cyclic mapping", Figure1},
		{"table2", "Table 2: row/col/diag balance bounds, cyclic, P=64", Table2},
		{"table3", "Table 3: balances for BCSSTK31 under the five heuristics", Table3},
		{"table4", "Table 4: mean improvement in overall balance, 5×5 heuristics", Table4},
		{"table5", "Table 5: mean improvement in parallel performance, 5×5 heuristics", Table5},
		{"table6", "Table 6: large benchmark matrices", Table6},
		{"table7", "Table 7: performance on 144/196 nodes, cyclic vs heuristic", Table7},
		{"alt-heuristic", "§4.2: per-processor refinement heuristic", AltHeuristic},
		{"relprime", "§4.2: relatively-prime grids (63 vs 64, 99 vs 100)", RelPrime},
		{"commfrac", "§5: communication share of runtime", CommFraction},
		{"critpath", "§5: critical-path headroom analysis", CritPath},
		{"concurrency", "§5: available-parallelism (DAG width) profile", Concurrency},
		{"subcube", "§5: subtree-to-subcube column mapping", Subcube},
		{"blocksize", "§5: block-size ablation", BlockSize},
		{"irrblocking", "§5 revisited: structure-aware irregular blocking under the mapping heuristics", IrregularBlocking},
		{"priosched", "§5: priority-driven scheduling vs data-driven FIFO", PrioSched},
		{"commscaling", "intro: 1-D vs 2-D communication volume scaling", CommScaling},
		{"onedim", "intro: 1-D vs 2-D mapping runtime scaling", OneDim},
		{"arbitrary", "§2.4: general (non-Cartesian) mappings trade balance for volume", Arbitrary},
		{"organizations", "ref [13]: up/left/multifrontal/right-blocked sequential comparison", Organizations},
		{"colfan", "intro: executed 1-D column fan-out vs 2-D block fan-out messages", ColfanMessages},
		{"amalgamation", "§2.2: supernode amalgamation ablation", Amalgamation},
		{"domains", "§2.3: domain/root split ablation (beta sweep)", Domains},
		{"faults", "resilience: per-mapping degradation under a fail-stop + buddy recovery", Faults},
		{"timeline", "§5: per-processor compute/comm/idle breakdown (trace-event exportable)", Timeline},
		{"remap", "feedback: remap from measured span costs vs the static heuristics", Remap},
	}
}

// ByName finds a runner.
func ByName(name string) (Runner, bool) {
	for _, r := range All() {
		if r.Name == name {
			return r, true
		}
	}
	return Runner{}, false
}
