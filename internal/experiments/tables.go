package experiments

import (
	"fmt"
	"io"

	"blockfanout/internal/core"
	"blockfanout/internal/gen"
	"blockfanout/internal/loadbal"
	"blockfanout/internal/mapping"
)

// Table1 prints the benchmark matrix statistics (paper Table 1): equations,
// off-diagonal nonzeros in L, and millions of operations to factor.
func Table1(w io.Writer, cfg Config) error {
	return statsTable(w, cfg, gen.Table1Suite(cfg.Scale))
}

// Table6 prints the large benchmark matrix statistics (paper Table 6).
func Table6(w io.Writer, cfg Config) error {
	return statsTable(w, cfg, gen.Table6Suite(cfg.Scale))
}

func statsTable(w io.Writer, cfg Config, suite []gen.Problem) error {
	fmt.Fprintf(w, "%-12s %10s %14s %14s\n", "Name", "Equations", "NZ in L", "Ops (Million)")
	for _, p := range suite {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		note := ""
		if p.Analogue {
			note = " (synthetic analogue)"
		}
		fmt.Fprintf(w, "%-12s %10d %14d %14.1f%s\n",
			p.Name, plan.Exact.N, plan.Exact.NZinL, float64(plan.Exact.Flops)/1e6, note)
	}
	return nil
}

// Figure1 prints, per matrix and processor count, the overall balance and
// the achieved (simulated) efficiency under the cyclic mapping — the two
// series of the paper's Figure 1 (B=48, P=64 and 100).
func Figure1(w io.Writer, cfg Config) error {
	fmt.Fprintf(w, "%-12s %6s %10s %12s\n", "Matrix", "P", "balance", "efficiency")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		for _, procs := range []int{cfg.P1, cfg.P2} {
			g := grid(procs)
			m := mapping.Cyclic(g, plan.BS.N())
			bal := loadbal.Compute(plan.BS, m).Overall
			res := plan.Simulate(plan.Assign(m, cfg.DomainBeta), cfg.Machine)
			fmt.Fprintf(w, "%-12s %6d %10.2f %12.2f\n", p.Name, procs, bal, res.Efficiency())
		}
	}
	return nil
}

// Table2 prints the efficiency bounds due to row, column, and diagonal
// imbalance for the 2-D cyclic mapping at P=64 (paper Table 2).
func Table2(w io.Writer, cfg Config) error {
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s\n", "Matrix", "Row bal.", "Col bal.", "Diag bal.", "Overall")
	for _, p := range gen.Table1Suite(cfg.Scale) {
		plan, err := PlanFor(p, cfg.Scale, cfg.B)
		if err != nil {
			return err
		}
		b := loadbal.Compute(plan.BS, mapping.Cyclic(g, plan.BS.N()))
		fmt.Fprintf(w, "%-12s %9.2f %9.2f %9.2f %9.2f\n", p.Name, b.Row, b.Col, b.Diag, b.Overall)
	}
	return nil
}

// heuristicMap builds the CP mapping for a heuristic pair, treating CY
// specially so it matches the paper's plain cyclic baseline.
func heuristicMap(plan *core.Plan, g mapping.Grid, rowH, colH mapping.Heuristic) *mapping.Mapping {
	return plan.Map(g, rowH, colH)
}

// Table3 prints the four balance measures for the BCSSTK31 analogue when
// each heuristic is applied to both the rows and the columns (paper
// Table 3, P=64, B=48).
func Table3(w io.Writer, cfg Config) error {
	p, ok := gen.ByName(gen.Table1Suite(cfg.Scale), "BCSSTK31")
	if !ok {
		return fmt.Errorf("experiments: BCSSTK31 missing from suite")
	}
	plan, err := PlanFor(p, cfg.Scale, cfg.B)
	if err != nil {
		return err
	}
	g := grid(cfg.P1)
	fmt.Fprintf(w, "%-12s %9s %9s %9s %9s\n", "Heuristic", "Row bal.", "Col bal.", "Diag bal.", "Overall")
	for _, h := range mapping.AllHeuristics() {
		b := loadbal.Compute(plan.BS, heuristicMap(plan, g, h, h))
		name := h.String()
		if h == mapping.CY {
			name = "Cyclic"
		}
		fmt.Fprintf(w, "%-12s %9.2f %9.2f %9.2f %9.2f\n", name, b.Row, b.Col, b.Diag, b.Overall)
	}
	return nil
}

// heuristic5x5 runs fn for every (row, col) heuristic pair and prints the
// two P-value grids of mean percentage improvements over the pure cyclic
// mapping, the layout of the paper's Tables 4 and 5.
func heuristic5x5(w io.Writer, cfg Config, what string,
	fn func(plan *core.Plan, g mapping.Grid, rowH, colH mapping.Heuristic) (float64, error)) error {

	suite := gen.Table1Suite(cfg.Scale)
	hs := mapping.AllHeuristics()
	for _, procs := range []int{cfg.P1, cfg.P2} {
		g := grid(procs)
		fmt.Fprintf(w, "\nMean improvement in %s, P=%d (over %d matrices)\n", what, procs, len(suite))
		fmt.Fprintf(w, "%-12s", "Row\\Col")
		for _, ch := range hs {
			fmt.Fprintf(w, "%8s", ch)
		}
		fmt.Fprintln(w)
		// Baseline values per matrix.
		base := make([]float64, len(suite))
		plans := make([]*core.Plan, len(suite))
		for i, p := range suite {
			plan, err := PlanFor(p, cfg.Scale, cfg.B)
			if err != nil {
				return err
			}
			plans[i] = plan
			v, err := fn(plan, g, mapping.CY, mapping.CY)
			if err != nil {
				return err
			}
			base[i] = v
		}
		for _, rh := range hs {
			fmt.Fprintf(w, "%-12s", rh)
			for _, ch := range hs {
				if rh == mapping.CY && ch == mapping.CY {
					fmt.Fprintf(w, "%7.0f%%", 0.0)
					continue
				}
				mean := 0.0
				for i := range suite {
					v, err := fn(plans[i], g, rh, ch)
					if err != nil {
						return err
					}
					mean += pct(v, base[i])
				}
				fmt.Fprintf(w, "%7.0f%%", mean/float64(len(suite)))
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

// Table4 prints the mean improvement in overall balance for all 25
// row/column heuristic combinations (paper Table 4).
func Table4(w io.Writer, cfg Config) error {
	return heuristic5x5(w, cfg, "overall balance",
		func(plan *core.Plan, g mapping.Grid, rh, ch mapping.Heuristic) (float64, error) {
			return loadbal.Compute(plan.BS, heuristicMap(plan, g, rh, ch)).Overall, nil
		})
}

// Table5 prints the mean improvement in simulated parallel performance for
// all 25 heuristic combinations (paper Table 5).
func Table5(w io.Writer, cfg Config) error {
	return heuristic5x5(w, cfg, "parallel performance",
		func(plan *core.Plan, g mapping.Grid, rh, ch mapping.Heuristic) (float64, error) {
			res := simulate(plan, g, rh, ch, cfg)
			return mflops(plan, res), nil
		})
}

// Table7 prints performance in Mflops for the large benchmark problems on
// 144 and 196 processors using a cyclic mapping and using the paper's
// chosen heuristic (Increasing Depth rows, cyclic columns), with the
// percentage improvement (paper Table 7).
func Table7(w io.Writer, cfg Config) error {
	suite := gen.Table7Suite(cfg.Scale)
	for _, procs := range []int{cfg.PL1, cfg.PL2} {
		g := grid(procs)
		fmt.Fprintf(w, "\nP = %d\n%-12s %12s %12s %12s\n", procs, "Matrix", "cyclic", "heuristic", "improvement")
		for _, p := range suite {
			plan, err := PlanFor(p, cfg.Scale, cfg.B)
			if err != nil {
				return err
			}
			cy := mflops(plan, simulate(plan, g, mapping.CY, mapping.CY, cfg))
			he := mflops(plan, simulate(plan, g, mapping.ID, mapping.CY, cfg))
			fmt.Fprintf(w, "%-12s %9.0f Mf %9.0f Mf %11.0f%%\n", p.Name, cy, he, pct(he, cy))
		}
	}
	return nil
}
