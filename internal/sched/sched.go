// Package sched precomputes the data-driven execution structure of the
// block fan-out method for a given block structure and block-to-processor
// assignment: block ownership, per-block modification counts, message
// sizes, and consumer (fan-out destination) lists. Both the real parallel
// executor (package fanout) and the multicomputer simulator (package
// machine) run the identical protocol over this program, which is what
// makes the simulated timings faithful to the executed algorithm.
package sched

import (
	"sync"

	"blockfanout/internal/blocks"
	"blockfanout/internal/domains"
	"blockfanout/internal/mapping"
)

// BlockOwner is any full block-to-processor map (e.g. mapping.Arbitrary,
// the §2.4 "most general form").
type BlockOwner interface {
	Owner(i, j int) int
	P() int
}

// Assignment combines the 2-D mapping of the root portion with an optional
// 1-D domain assignment (§2.3): blocks in a domain-owned panel column all
// live on the domain's processor; every other block follows the 2-D map.
// A non-nil Override replaces the Cartesian-product map entirely (domains
// still win for their panels).
type Assignment struct {
	Map      *mapping.Mapping
	Dom      *domains.Domains // optional; nil disables domains
	Override BlockOwner       // optional; replaces Map when set
}

// Owner returns the processor owning block (i,j).
func (a Assignment) Owner(i, j int) int {
	if a.Dom != nil && a.Dom.PanelOwner[j] >= 0 {
		return a.Dom.PanelOwner[j]
	}
	if a.Override != nil {
		return a.Override.Owner(i, j)
	}
	return a.Map.Owner(i, j)
}

// P returns the processor count.
func (a Assignment) P() int {
	if a.Override != nil {
		return a.Override.P()
	}
	return a.Map.Grid.P()
}

// MsgHeaderBytes models the per-message header the fan-out method attaches
// to a block (block coordinates, row list) when it is sent.
const MsgHeaderBytes = 64

// Program is the precomputed fan-out schedule.
type Program struct {
	BS    *blocks.Structure
	NProc int

	NBlocks int
	ColBase []int32 // block id of Cols[j].Blocks[0]
	ColOf   []int32 // block id → column (panel J)
	IdxOf   []int32 // block id → index within the column
	Owner   []int32 // block id → owning processor
	NMods   []int32 // block id → number of BMOD operations targeting it
	// OwnOpFlops is the flop count of the block's completing operation:
	// BFAC for diagonal blocks, BDIV otherwise.
	OwnOpFlops []int64
	Bytes      []int64   // message size when the block is sent
	Consumers  [][]int32 // deduped processors needing the block as a source

	// ModBase/ModDest form the precomputed BMOD destination table: the
	// pairing of source block indices ia ≥ jb ≥ 1 in column k has its
	// destination block id at ModDest[ModBase[k] + (ia−1)·ia/2 + (jb−1)].
	// Executors read it through ModDestID so their inner loops never
	// binary-search the block structure.
	ModBase []int
	ModDest []int32

	// IncomingRemote[p] counts deliveries to p from other processors
	// (used to size channels so sends can never block).
	IncomingRemote []int
	// OwnedCount[p] counts blocks owned by p.
	OwnedCount []int
	// TotalMessages is the total remote block transfer count.
	TotalMessages int64
	// TotalBytes is the total remote communication volume.
	TotalBytes int64

	pairsOnce sync.Once
	pairs     *PairTable
}

// PairTable is the inverse view of the BMOD destination table: one entry
// per source pairing, flat-indexed in the same order as ModDest, plus a
// grouping of pairings by destination block. The work-stealing executor
// drives its ready counters and per-destination operation queues with it;
// the SPMD executor never needs it, so it is built lazily and memoized.
type PairTable struct {
	Col  []int32 // pairing → column k of the sources
	A    []int32 // pairing → source block index ia (≥ jb) within column k
	B    []int32 // pairing → source block index jb ≥ 1
	Dest []int32 // pairing → destination block id (== ModDest)

	// DestBase[id] .. DestBase[id+1] delimits block id's segment in a
	// shared per-destination slot array of length len(ModDest); segment
	// sizes equal NMods.
	DestBase []int32
}

// Pairs returns the program's pairing table, building it on first use.
func (pr *Program) Pairs() *PairTable {
	pr.pairsOnce.Do(func() {
		total := len(pr.ModDest)
		pt := &PairTable{
			Col:      make([]int32, total),
			A:        make([]int32, total),
			B:        make([]int32, total),
			Dest:     pr.ModDest,
			DestBase: make([]int32, pr.NBlocks+1),
		}
		for k := 0; k < pr.BS.N(); k++ {
			base := pr.ModBase[k]
			m := len(pr.BS.Cols[k].Blocks) - 1
			for ia := 1; ia <= m; ia++ {
				for jb := 1; jb <= ia; jb++ {
					p := base + (ia-1)*ia/2 + jb - 1
					pt.Col[p] = int32(k)
					pt.A[p] = int32(ia)
					pt.B[p] = int32(jb)
				}
			}
		}
		for id := 0; id < pr.NBlocks; id++ {
			pt.DestBase[id+1] = pt.DestBase[id] + pr.NMods[id]
		}
		pr.pairs = pt
	})
	return pr.pairs
}

// BlockID returns the block id of column j, index idx.
func (pr *Program) BlockID(j, idx int) int32 { return pr.ColBase[j] + int32(idx) }

// Build precomputes the program for a block structure under an assignment.
func Build(bs *blocks.Structure, a Assignment) *Program {
	nb := 0
	ncols := bs.N()
	pr := &Program{
		BS:      bs,
		NProc:   a.P(),
		ColBase: make([]int32, ncols+1),
	}
	for j := 0; j < ncols; j++ {
		pr.ColBase[j] = int32(nb)
		nb += len(bs.Cols[j].Blocks)
	}
	pr.ColBase[ncols] = int32(nb)
	pr.NBlocks = nb
	pr.ColOf = make([]int32, nb)
	pr.IdxOf = make([]int32, nb)
	pr.Owner = make([]int32, nb)
	pr.NMods = make([]int32, nb)
	pr.OwnOpFlops = make([]int64, nb)
	pr.Bytes = make([]int64, nb)
	pr.Consumers = make([][]int32, nb)
	pr.IncomingRemote = make([]int, pr.NProc)
	pr.OwnedCount = make([]int, pr.NProc)

	for j := 0; j < ncols; j++ {
		w := bs.Part.Width(j)
		for idx := range bs.Cols[j].Blocks {
			id := pr.BlockID(j, idx)
			b := &bs.Cols[j].Blocks[idx]
			pr.ColOf[id] = int32(j)
			pr.IdxOf[id] = int32(idx)
			pr.Owner[id] = int32(a.Owner(b.I, j))
			pr.OwnedCount[pr.Owner[id]]++
			pr.Bytes[id] = int64(len(b.Rows))*int64(w)*8 + MsgHeaderBytes
		}
	}

	// Dependency counts and own-op flop costs.
	bs.ForEachOp(func(op blocks.Op) {
		switch op.Kind {
		case blocks.BFAC:
			pr.OwnOpFlops[pr.BlockID(op.K, 0)] = op.Flops
		case blocks.BDIV:
			id := pr.findID(op.I, op.K)
			pr.OwnOpFlops[id] = op.Flops
		case blocks.BMOD:
			pr.NMods[pr.findID(op.I, op.J)]++
		}
	})

	// Consumer lists. procMark/gen implement an O(1)-reset membership set.
	procMark := make([]int, pr.NProc)
	for i := range procMark {
		procMark[i] = -1
	}
	gen := 0
	addConsumer := func(id int32, p int32) {
		if procMark[p] != gen {
			procMark[p] = gen
			pr.Consumers[id] = append(pr.Consumers[id], p)
		}
	}
	for k := 0; k < ncols; k++ {
		col := &bs.Cols[k]
		diagID := pr.BlockID(k, 0)
		// The factored diagonal block is needed by the owner of every
		// off-diagonal block in its column (for their BDIVs).
		gen++
		for idx := 1; idx < len(col.Blocks); idx++ {
			addConsumer(diagID, pr.Owner[pr.BlockID(k, idx)])
		}
		// Completed off-diagonal blocks pair up within the column: the
		// pair (ia ≥ jb) is consumed by the owner of dest (I_a, I_b).
		for ia := 1; ia < len(col.Blocks); ia++ {
			idA := pr.BlockID(k, ia)
			gen++
			for jb := 1; jb < len(col.Blocks); jb++ {
				var destI, destJ int
				if col.Blocks[ia].I >= col.Blocks[jb].I {
					destI, destJ = col.Blocks[ia].I, col.Blocks[jb].I
				} else {
					destI, destJ = col.Blocks[jb].I, col.Blocks[ia].I
				}
				addConsumer(idA, int32(a.Owner(destI, destJ)))
			}
		}
	}

	// BMOD destination table: one binary search per pairing here at build
	// time removes every FindID call from the executors' inner loops.
	pr.ModBase = make([]int, ncols+1)
	total := 0
	for k := 0; k < ncols; k++ {
		pr.ModBase[k] = total
		m := len(bs.Cols[k].Blocks) - 1 // off-diagonal blocks
		total += m * (m + 1) / 2
	}
	pr.ModBase[ncols] = total
	pr.ModDest = make([]int32, total)
	for k := 0; k < ncols; k++ {
		col := &bs.Cols[k]
		base := pr.ModBase[k]
		for ia := 1; ia < len(col.Blocks); ia++ {
			for jb := 1; jb <= ia; jb++ {
				pr.ModDest[base+(ia-1)*ia/2+jb-1] = pr.findID(col.Blocks[ia].I, col.Blocks[jb].I)
			}
		}
	}

	for id := 0; id < nb; id++ {
		for _, p := range pr.Consumers[id] {
			if p != pr.Owner[id] {
				pr.IncomingRemote[p]++
				pr.TotalMessages++
				pr.TotalBytes += pr.Bytes[id]
			}
		}
	}
	return pr
}

// findID returns the block id of block (i,j), panicking if absent (the
// block structure guarantees presence of all op destinations).
func (pr *Program) findID(i, j int) int32 {
	col := &pr.BS.Cols[j]
	lo, hi := 0, len(col.Blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if col.Blocks[mid].I < i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(col.Blocks) || col.Blocks[lo].I != i {
		panic("sched: block not found")
	}
	return pr.BlockID(j, lo)
}

// FindID is the exported lookup of a block id by block coordinates. The
// executors' hot paths use the precomputed ModDest table instead; this
// binary search remains for callers that start from coordinates.
func (pr *Program) FindID(i, j int) int32 { return pr.findID(i, j) }

// ModDestID returns the destination block id of the BMOD pairing of
// source block indices ia and jb (either order, both ≥ 1) of column k,
// served from the table precomputed at Build time.
func (pr *Program) ModDestID(k, ia, jb int) int32 {
	if ia < jb {
		ia, jb = jb, ia
	}
	return pr.ModDest[pr.ModBase[k]+(ia-1)*ia/2+jb-1]
}

// ModFlops returns the flop cost of the BMOD with sources (ia, jb) of
// column k (block indices within the column, ia pairs the larger block row
// when destI != destJ — callers pass any order; cost is symmetric except
// for the diagonal destination).
func (pr *Program) ModFlops(k, ia, jb int) int64 {
	col := &pr.BS.Cols[k]
	wk := int64(pr.BS.Part.Width(k))
	ri := int64(len(col.Blocks[ia].Rows))
	cj := int64(len(col.Blocks[jb].Rows))
	if col.Blocks[ia].I == col.Blocks[jb].I {
		return ri * (ri + 1) * wk
	}
	return 2 * ri * cj * wk
}
