package sched

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/domains"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func setup(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*symbolic.Structure, *blocks.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return st, bs
}

func TestProgramIdentities(t *testing.T) {
	_, bs := setup(t, gen.IrregularMesh(250, 5, 3, 13), ord.MinDegree, 0, 8)
	g := mapping.Grid{Pr: 3, Pc: 4}
	a := Assignment{Map: mapping.Cyclic(g, bs.N())}
	pr := Build(bs, a)

	// Block count and id round trips.
	want := 0
	for j := range bs.Cols {
		want += len(bs.Cols[j].Blocks)
	}
	if pr.NBlocks != want {
		t.Fatalf("NBlocks=%d, want %d", pr.NBlocks, want)
	}
	for j := range bs.Cols {
		for idx := range bs.Cols[j].Blocks {
			id := pr.BlockID(j, idx)
			if int(pr.ColOf[id]) != j || int(pr.IdxOf[id]) != idx {
				t.Fatalf("id round trip broken at (%d,%d)", j, idx)
			}
			b := &bs.Cols[j].Blocks[idx]
			if pr.FindID(b.I, j) != id {
				t.Fatalf("FindID(%d,%d) wrong", b.I, j)
			}
			if int(pr.Owner[id]) != a.Owner(b.I, j) {
				t.Fatalf("owner mismatch at (%d,%d)", b.I, j)
			}
		}
	}

	// NMods must sum to the number of BMOD ops; OwnOpFlops set everywhere.
	var modSum int64
	var bmods int64
	for id := 0; id < pr.NBlocks; id++ {
		modSum += int64(pr.NMods[id])
		if pr.OwnOpFlops[id] <= 0 {
			t.Fatalf("block %d has no completing op cost", id)
		}
	}
	bs.ForEachOp(func(op blocks.Op) {
		if op.Kind == blocks.BMOD {
			bmods++
		}
	})
	if modSum != bmods {
		t.Fatalf("NMods sum %d != BMOD count %d", modSum, bmods)
	}

	// OwnedCount sums to NBlocks.
	sum := 0
	for _, c := range pr.OwnedCount {
		sum += c
	}
	if sum != pr.NBlocks {
		t.Fatalf("owned counts sum %d", sum)
	}

	// Message totals consistent with consumer lists.
	var msgs, bytes int64
	for id := 0; id < pr.NBlocks; id++ {
		seen := map[int32]bool{}
		for _, c := range pr.Consumers[id] {
			if seen[c] {
				t.Fatalf("duplicate consumer %d of block %d", c, id)
			}
			seen[c] = true
			if c != pr.Owner[id] {
				msgs++
				bytes += pr.Bytes[id]
			}
		}
	}
	if msgs != pr.TotalMessages || bytes != pr.TotalBytes {
		t.Fatalf("message totals %d/%d, want %d/%d", pr.TotalMessages, pr.TotalBytes, msgs, bytes)
	}
}

func TestConsumersCoverAllModsAndDivs(t *testing.T) {
	_, bs := setup(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	g := mapping.Grid{Pr: 2, Pc: 3}
	a := Assignment{Map: mapping.Cyclic(g, bs.N())}
	pr := Build(bs, a)

	has := func(id int32, p int32) bool {
		for _, c := range pr.Consumers[id] {
			if c == p {
				return true
			}
		}
		return false
	}
	bs.ForEachOp(func(op blocks.Op) {
		switch op.Kind {
		case blocks.BDIV:
			// The owner of L(I,K) must receive the diagonal of K.
			diag := pr.BlockID(op.K, 0)
			owner := pr.Owner[pr.FindID(op.I, op.K)]
			if !has(diag, owner) {
				t.Fatalf("diag %d not sent to BDIV owner %d", op.K, owner)
			}
		case blocks.BMOD:
			destOwner := pr.Owner[pr.FindID(op.I, op.J)]
			for _, src := range [][2]int{{op.I, op.K}, {op.J, op.K}} {
				if !has(pr.FindID(src[0], src[1]), destOwner) {
					t.Fatalf("source (%d,%d) not sent to dest owner %d", src[0], src[1], destOwner)
				}
			}
		}
	})
}

func TestAssignmentDomainOverride(t *testing.T) {
	st, bs := setup(t, gen.Grid2D(16), ord.NDGrid2D, 16, 4)
	g := mapping.Grid{Pr: 3, Pc: 3}
	m := mapping.Cyclic(g, bs.N())
	dom := domains.Select(st, bs, g.P(), 2)
	a := Assignment{Map: m, Dom: dom}
	for j := 0; j < bs.N(); j++ {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			got := a.Owner(b.I, j)
			if dom.PanelOwner[j] >= 0 {
				if got != dom.PanelOwner[j] {
					t.Fatalf("domain panel %d not owned by domain proc", j)
				}
			} else if got != m.Owner(b.I, j) {
				t.Fatalf("root panel %d not 2-D mapped", j)
			}
		}
	}
}

func TestDomainsReduceCommunication(t *testing.T) {
	st, bs := setup(t, gen.Grid2D(20), ord.NDGrid2D, 20, 4)
	g := mapping.Grid{Pr: 4, Pc: 4}
	m := mapping.Cyclic(g, bs.N())
	plain := Build(bs, Assignment{Map: m})
	dom := Build(bs, Assignment{Map: m, Dom: domains.Select(st, bs, g.P(), 2)})
	if dom.TotalBytes >= plain.TotalBytes {
		t.Fatalf("domains did not reduce traffic: %d vs %d", dom.TotalBytes, plain.TotalBytes)
	}
}

func TestModFlops(t *testing.T) {
	_, bs := setup(t, gen.Grid2D(10), ord.NDGrid2D, 10, 5)
	pr := Build(bs, Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	// Spot-check against the enumerated ops.
	bs.ForEachOp(func(op blocks.Op) {
		if op.Kind != blocks.BMOD {
			return
		}
		col := &bs.Cols[op.K]
		var ia, jb int
		for idx := 1; idx < len(col.Blocks); idx++ {
			if col.Blocks[idx].I == op.I {
				ia = idx
			}
			if col.Blocks[idx].I == op.J {
				jb = idx
			}
		}
		if got := pr.ModFlops(op.K, ia, jb); got != op.Flops {
			t.Fatalf("ModFlops(%d,%d,%d)=%d, want %d", op.K, ia, jb, got, op.Flops)
		}
	})
}

func TestAssignmentOverride(t *testing.T) {
	_, bs := setup(t, gen.Grid2D(10), ord.NDGrid2D, 10, 4)
	g := mapping.Grid{Pr: 2, Pc: 2}
	base := mapping.Cyclic(g, bs.N())
	arb := mapping.NewArbitraryGreedy(g.P(), bs)
	a := Assignment{Map: base, Override: arb}
	if a.P() != g.P() {
		t.Fatalf("P=%d", a.P())
	}
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			b := &bs.Cols[j].Blocks[bi]
			if a.Owner(b.I, j) != arb.Owner(b.I, j) {
				t.Fatalf("override ignored at (%d,%d)", b.I, j)
			}
		}
	}
	// Build + simulate-able: total owned blocks conserved.
	pr := Build(bs, a)
	sum := 0
	for _, c := range pr.OwnedCount {
		sum += c
	}
	if sum != pr.NBlocks {
		t.Fatal("owned count broken under override")
	}
}

func TestModDestTableMatchesFindID(t *testing.T) {
	_, bs := setup(t, gen.IrregularMesh(250, 5, 3, 29), ord.MinDegree, 0, 8)
	pr := Build(bs, Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 3}, bs.N())})

	// Every (k, ia, jb) pairing, in both argument orders, must resolve to
	// the same id the binary search finds from coordinates.
	pairs := 0
	for k := range bs.Cols {
		col := &bs.Cols[k]
		for ia := 1; ia < len(col.Blocks); ia++ {
			for jb := 1; jb <= ia; jb++ {
				destI := col.Blocks[ia].I
				destJ := col.Blocks[jb].I
				want := pr.FindID(destI, destJ)
				if want < 0 {
					t.Fatalf("pairing (%d,%d,%d): destination (%d,%d) not in structure",
						k, ia, jb, destI, destJ)
				}
				if got := pr.ModDestID(k, ia, jb); got != want {
					t.Fatalf("ModDestID(%d,%d,%d)=%d, FindID(%d,%d)=%d",
						k, ia, jb, got, destI, destJ, want)
				}
				if got := pr.ModDestID(k, jb, ia); got != want {
					t.Fatalf("ModDestID(%d,%d,%d) (swapped)=%d, want %d", k, jb, ia, got, want)
				}
				pairs++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no pairings exercised")
	}
	// Table sized exactly: sum over columns of m(m+1)/2 entries.
	want := 0
	for k := range bs.Cols {
		m := len(bs.Cols[k].Blocks) - 1
		want += m * (m + 1) / 2
	}
	if len(pr.ModDest) != want {
		t.Fatalf("ModDest has %d entries, want %d", len(pr.ModDest), want)
	}
}
