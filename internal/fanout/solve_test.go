package fanout

import (
	"math"
	"testing"

	"blockfanout/internal/domains"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

func TestParallelSolveMatchesSequential(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(260, 5, 3, 91), ord.MinDegree, 0, 8)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 3}, {Pr: 4, Pc: 4}} {
		pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
		f, err := numeric.New(bs, pm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(f, pr); err != nil {
			t.Fatal(err)
		}
		b := make([]float64, pm.N)
		for i := range b {
			b[i] = math.Sin(float64(i) * 1.3)
		}
		want := f.Solve(b)
		got, err := Solve(f, pr, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(want[i]-got[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("grid %v: x[%d] = %g, want %g", g, i, got[i], want[i])
			}
		}
		// And the residual against the permuted matrix must be tiny.
		if r := pm.ResidualNorm(got, b); r > 1e-8 {
			t.Fatalf("grid %v: residual %g", g, r)
		}
	}
}

func TestParallelSolveWithDomains(t *testing.T) {
	st, bs, pm := setup(t, gen.Grid2D(16), ord.NDGrid2D, 16, 4)
	g := mapping.Grid{Pr: 3, Pc: 3}
	a := sched.Assignment{
		Map: mapping.Cyclic(g, bs.N()),
		Dom: domains.Select(st, bs, g.P(), 2),
	}
	pr := sched.Build(bs, a)
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f, pr); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pm.N)
	for i := range b {
		b[i] = 1
	}
	x, err := Solve(f, pr, b)
	if err != nil {
		t.Fatal(err)
	}
	if r := pm.ResidualNorm(x, b); r > 1e-8 {
		t.Fatalf("residual %g", r)
	}
}

func TestParallelSolveRejectsBadRHS(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(8), ord.NDGrid2D, 8, 4)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f, pr); err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(f, pr, make([]float64, 3)); err == nil {
		t.Fatal("short rhs accepted")
	}
}

func TestParallelSolveRepeatable(t *testing.T) {
	_, bs, pm := setup(t, gen.Cube3D(5), ord.NDCube3D, 5, 6)
	g := mapping.Grid{Pr: 2, Pc: 2}
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(f, pr); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pm.N)
	for i := range b {
		b[i] = float64(i % 3)
	}
	x1, err := Solve(f, pr, b)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		x2, err := Solve(f, pr, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-11*(1+math.Abs(x1[i])) {
				t.Fatalf("trial %d: drift at %d", trial, i)
			}
		}
	}
}
