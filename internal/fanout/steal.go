package fanout

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"blockfanout/internal/numeric"
	"blockfanout/internal/obs"
)

// The work-stealing engine replaces ownership-pinned execution with a pool
// of workers draining ready block operations from per-worker LIFO deques
// (Chase–Lev), stealing from a random victim's tail when their own deque
// runs dry.
//
// Readiness is tracked with atomic countdown counters instead of the SPMD
// engine's per-processor arrival bitsets — counters are the multi-consumer
// form of the same information (an arrival flips a bit there, decrements a
// counter here), and decrement-to-zero gives an exactly-once handoff:
//
//   - srcLeft[p], one per BMOD pairing, starts at the pairing's source
//     count (2, or 1 when both sources are the same block). The completion
//     of each source block decrements it; whoever reaches zero publishes
//     the pairing to its destination's ready queue.
//   - finLeft[id], one per block, starts at NMods (+1 for off-diagonal
//     blocks, whose BDIV also awaits the column's factored diagonal).
//     Each executed BMOD into the block — and, for off-diagonal blocks,
//     the diagonal's completion — decrements it; whoever reaches zero runs
//     the block's own completing operation (BFAC or BDIV) inline.
//
// BMODs into one destination must be serialized (they read-modify-write
// the same block), so the unit of scheduling in the deques is a block
// *activation*, not a single op: ready pairings are appended to a
// per-destination queue (slots/slotHead/slotDone), and a CAS on active[id]
// elects at most one live activation per destination, which drains the
// queue and re-checks after release. At most one activation per block also
// bounds total deque occupancy by NBlocks, letting the fixed-capacity
// deques never overflow.
//
// Memory ordering: every block's data is written before the atomic
// decrement that announces it and read only after observing the resulting
// count, so the sync/atomic happens-before edges make the numeric payload
// race-free without any additional locking.
//
// The deterministic first-error contract is preserved exactly as in SPMD
// mode: every worker always attempts all of its seed BFACs (stopping at
// its own first failure) before entering the scheduling loop, and fail()
// ranks errors so the lowest (Block, Row) breakdown wins.

// wsWorker is one worker of the stealing pool.
type wsWorker struct {
	ex     *Executor
	me     int32
	failed bool
	rng    uint64
	dq     deque
	ws     numeric.Workspace

	flops  int64 // flops of block ops this worker executed
	steals int64 // successful thefts
	// Pacing state for Restriction.FlopsPerSec (rate is this worker's
	// share; zero disables pacing).
	rate  float64
	start time.Time
}

// pace accounts fl executed flops and, under a rate restriction, sleeps
// this worker until its cumulative flop count is back under rate·elapsed.
func (w *wsWorker) pace(fl int64) {
	w.flops += fl
	if w.rate <= 0 {
		return
	}
	target := time.Duration(float64(w.flops) / w.rate * 1e9)
	if el := time.Since(w.start); el < target {
		time.Sleep(target - el)
	}
}

// initSteal builds the work-stealing state: countdown templates, the
// per-destination ready-queue storage, seed lists, and one deque-equipped
// worker per virtual processor.
func (ex *Executor) initSteal() {
	pr := ex.pr
	np := pr.NProc
	ex.pairs = pr.Pairs()
	total := len(pr.ModDest)
	ex.srcInit = make([]int32, total)
	ex.srcLeft = make([]int32, total)
	ex.slots = make([]int32, total)
	pt := ex.pairs
	for p := 0; p < total; p++ {
		if pt.A[p] == pt.B[p] {
			ex.srcInit[p] = 1
		} else {
			ex.srcInit[p] = 2
		}
	}
	ex.finInit = make([]int32, pr.NBlocks)
	ex.finLeft = make([]int32, pr.NBlocks)
	ex.slotHead = make([]int32, pr.NBlocks)
	ex.slotDone = make([]int32, pr.NBlocks)
	ex.active = make([]int32, pr.NBlocks)
	for id := 0; id < pr.NBlocks; id++ {
		ex.finInit[id] = pr.NMods[id]
		if pr.IdxOf[id] != 0 {
			ex.finInit[id]++ // the column's factored diagonal block
		}
	}
	// A restriction shrinks the worker pool (a node runs one pool per
	// machine, not one per virtual processor), confines execution to the
	// mask, and opens the external-arrival channel.
	if r := ex.restrict; r != nil {
		np = r.Workers
		if np <= 0 {
			np = runtime.GOMAXPROCS(0)
		}
		ex.execMask = make([]bool, pr.NBlocks)
		for id := int32(0); id < int32(pr.NBlocks); id++ {
			if r.executes(id) {
				ex.execMask[id] = true
				ex.execCount++
			}
		}
		ex.extCh = make(chan int32, pr.NBlocks)
	}

	// Seeds: diagonal blocks with no pending modifications, grouped by
	// owner so the deterministic-error contract matches SPMD mode. A
	// restricted executor seeds only the blocks it executes, spread
	// round-robin (its workers have no ownership identity).
	ex.seeds = make([][]int32, np)
	rr := 0
	for j := range pr.BS.Cols {
		id := pr.BlockID(j, 0)
		if pr.NMods[id] != 0 {
			continue
		}
		if ex.restrict != nil {
			if ex.execMask[id] {
				ex.seeds[rr%np] = append(ex.seeds[rr%np], id)
				rr++
			}
		} else {
			ex.seeds[pr.Owner[id]] = append(ex.seeds[pr.Owner[id]], id)
		}
	}
	capPow2 := 1
	for capPow2 < pr.NBlocks {
		capPow2 <<= 1
	}
	ex.workers = make([]wsWorker, np)
	maxRows := ex.f.MaxBlockRows()
	for p := 0; p < np; p++ {
		w := &ex.workers[p]
		w.ex = ex
		w.me = int32(p)
		w.rng = splitmix64(uint64(p))
		w.dq.buf = make([]int32, capPow2)
		w.dq.mask = int64(capPow2 - 1)
		w.ws.Reserve(maxRows)
		if ex.restrict != nil && ex.restrict.FlopsPerSec > 0 {
			w.rate = ex.restrict.FlopsPerSec / float64(np)
		}
	}
	ex.parkCh = make(chan struct{}, np)
}

// resetSteal restores the pre-run state from the templates.
func (ex *Executor) resetSteal() {
	copy(ex.srcLeft, ex.srcInit)
	copy(ex.finLeft, ex.finInit)
	for i := range ex.slotHead {
		ex.slotHead[i] = 0
		ex.slotDone[i] = 0
		ex.active[i] = 0
	}
	for i := range ex.slots {
		ex.slots[i] = -1
	}
	left := int32(ex.pr.NBlocks)
	if ex.restrict != nil {
		left = ex.execCount
	}
	ex.blocksLeft.Store(left)
	ex.doneCh = make(chan struct{})
	ex.doneOnce = sync.Once{}
	if left == 0 {
		ex.doneOnce.Do(func() { close(ex.doneCh) })
	}
	ex.sleepers.Store(0)
	for {
		select {
		case <-ex.parkCh:
			continue
		default:
		}
		break
	}
	// ex.extCh is deliberately NOT drained: a restricted executor is
	// single-run, and arrivals injected between construction and Run (a
	// fast peer can complete blocks before a slow node starts its run)
	// must be delivered, not discarded.
	for p := range ex.workers {
		w := &ex.workers[p]
		w.failed = false
		w.flops = 0
		w.steals = 0
		w.start = time.Now()
		w.dq.top.Store(0)
		w.dq.bottom.Store(0)
	}
}

// run is the body of one worker goroutine.
func (w *wsWorker) run() {
	ex := w.ex
	// Seeds first, unconditionally — no abort poll, stopping only at this
	// worker's own first failure — so a breakdown in an unmodified
	// diagonal block is detected on every run regardless of interleaving
	// and the ranked fail() reports the lowest (Block, Row)
	// deterministically (same contract as the SPMD engine).
	for _, id := range ex.seeds[w.me] {
		w.finish(id)
		if w.failed {
			return
		}
	}
	for {
		if w.failed || ex.blocksLeft.Load() == 0 || w.aborted() {
			return
		}
		if ex.extCh != nil {
			select {
			case id := <-ex.extCh:
				w.propagate(id)
				continue
			default:
			}
		}
		if d, ok := w.dq.pop(); ok {
			w.processBlock(d)
			continue
		}
		if d, ok := w.steal(); ok {
			w.processBlock(d)
			continue
		}
		if !w.park() {
			return
		}
	}
}

func (w *wsWorker) aborted() bool {
	select {
	case <-w.ex.abort:
		return true
	default:
		return false
	}
}

// processBlock drains the destination's ready-pairing queue while holding
// its activation claim, releasing and re-claiming if more pairings were
// published during the release window.
func (w *wsWorker) processBlock(d int32) {
	ex := w.ex
	base := ex.pairs.DestBase[d]
	for {
		head := atomic.LoadInt32(&ex.slotHead[d])
		for done := atomic.LoadInt32(&ex.slotDone[d]); done < head; done++ {
			if w.aborted() {
				return
			}
			p := w.slotAt(base + done)
			// Only the claim holder advances slotDone, but the post-release
			// recheck below reads it concurrently, so the store is atomic.
			atomic.StoreInt32(&ex.slotDone[d], done+1)
			w.execPair(p)
			if w.failed {
				return
			}
		}
		atomic.StoreInt32(&ex.active[d], 0)
		if atomic.LoadInt32(&ex.slotHead[d]) == atomic.LoadInt32(&ex.slotDone[d]) {
			return
		}
		// Pairings raced the release; whoever wins the re-claim (us or the
		// publisher) continues the drain.
		if !atomic.CompareAndSwapInt32(&ex.active[d], 0, 1) {
			return
		}
	}
}

// slotAt spins out the tiny window between a publisher's slot reservation
// (the slotHead increment) and its slot store.
func (w *wsWorker) slotAt(i int32) int32 {
	for spins := 0; ; spins++ {
		if p := atomic.LoadInt32(&w.ex.slots[i]); p >= 0 {
			return p
		}
		if spins > 64 {
			runtime.Gosched()
		}
	}
}

// execPair performs one BMOD and hands the destination off if this was its
// last prerequisite.
func (w *wsWorker) execPair(p int32) {
	ex := w.ex
	pt := ex.pairs
	k, ia, jb := int(pt.Col[p]), int(pt.A[p]), int(pt.B[p])
	t0 := ex.rec.Start()
	if err := ex.f.BMOD(k, ia, jb, &w.ws); err != nil {
		ex.fail(err)
		w.failed = true
		return
	}
	dest := pt.Dest[p]
	ex.rec.Record(w.me, obs.OpBMOD, dest, ex.pr.BlockID(k, ia), t0)
	w.pace(ex.pr.ModFlops(k, ia, jb))
	if atomic.AddInt32(&ex.finLeft[dest], -1) == 0 {
		w.finish(dest)
	}
}

// finish runs a block's completing operation (BFAC or BDIV). The caller
// guarantees exclusivity: either the block is a seed, or the caller just
// took finLeft to zero.
func (w *wsWorker) finish(id int32) {
	ex := w.ex
	k, idx := int(ex.pr.ColOf[id]), int(ex.pr.IdxOf[id])
	t0 := ex.rec.Start()
	if idx == 0 {
		if err := ex.f.BFAC(k); err != nil {
			ex.fail(err)
			w.failed = true
			return
		}
		ex.rec.Record(w.me, obs.OpBFAC, id, -1, t0)
	} else {
		if err := ex.f.BDIV(k, idx); err != nil {
			ex.fail(err)
			w.failed = true
			return
		}
		ex.rec.Record(w.me, obs.OpBDIV, id, -1, t0)
	}
	w.pace(ex.pr.OwnOpFlops[id])
	w.completed(id)
}

// completed handles a locally executed block's completion: hand it to the
// restriction's fan-out hook, propagate it into the dependence counters,
// and retire it from the local block count.
func (w *wsWorker) completed(id int32) {
	ex := w.ex
	if ex.restrict != nil && ex.restrict.OnComplete != nil {
		ex.restrict.OnComplete(id)
	}
	w.propagate(id)
	if ex.blocksLeft.Add(-1) == 0 {
		ex.doneOnce.Do(func() { close(ex.doneCh) })
	}
}

// propagate fans a completed block's availability into the counters,
// whether it was computed here, retained from a previous epoch, or
// injected from the network: a diagonal block releases the BDIV
// prerequisite of its column's off-diagonal blocks (recursing at most once
// — their completions only publish pairings); an off-diagonal block
// decrements the source counters of every pairing it participates in.
func (w *wsWorker) propagate(id int32) {
	ex := w.ex
	pr := ex.pr
	k, idx := int(pr.ColOf[id]), int(pr.IdxOf[id])
	nb := len(pr.BS.Cols[k].Blocks)
	if idx == 0 {
		for j := 1; j < nb; j++ {
			bid := pr.BlockID(k, j)
			if atomic.AddInt32(&ex.finLeft[bid], -1) == 0 {
				// Under a restriction, non-local (or predone) blocks reach
				// zero too — their arrival is someone else's business.
				if ex.execMask != nil && !ex.execMask[bid] {
					continue
				}
				w.finish(bid)
				if w.failed {
					return
				}
			}
		}
	} else {
		base := pr.ModBase[k]
		for jb := 1; jb < nb; jb++ {
			hi, lo := idx, jb
			if hi < lo {
				hi, lo = lo, hi
			}
			p := int32(base + (hi-1)*hi/2 + lo - 1)
			if atomic.AddInt32(&ex.srcLeft[p], -1) == 0 {
				w.ready(p)
			}
		}
	}
}

// ready publishes a pairing whose sources are all complete to its
// destination's queue and elects an activation if none is live. Pairings
// into blocks a restriction excludes are dropped: their BMODs run on the
// destination's owner.
func (w *wsWorker) ready(p int32) {
	ex := w.ex
	d := ex.pairs.Dest[p]
	if ex.execMask != nil && !ex.execMask[d] {
		return
	}
	slot := ex.pairs.DestBase[d] + atomic.AddInt32(&ex.slotHead[d], 1) - 1
	atomic.StoreInt32(&ex.slots[slot], p)
	if atomic.CompareAndSwapInt32(&ex.active[d], 0, 1) {
		w.dq.push(d)
		if ex.sleepers.Load() > 0 {
			select {
			case ex.parkCh <- struct{}{}:
			default:
			}
		}
	}
}

// steal scans the other workers' deques from a random start, recording a
// span for a successful theft.
func (w *wsWorker) steal() (int32, bool) {
	ex := w.ex
	n := len(ex.workers)
	if n == 1 {
		return 0, false
	}
	t0 := ex.rec.Start()
	off := int(w.next() % uint64(n-1))
	for i := 0; i < n-1; i++ {
		v := int(w.me) + 1 + (off+i)%(n-1)
		if v >= n {
			v -= n
		}
		if d, ok := ex.workers[v].dq.steal(); ok {
			ex.rec.Record(w.me, obs.OpSteal, d, int32(v), t0)
			w.steals++
			return d, true
		}
	}
	return 0, false
}

// park blocks until new work may exist. It returns false when the worker
// should exit (done, aborted, or a detected stall). The sleeper counter
// plus post-announce re-sweep closes the lost-wakeup window: a publisher
// either sees our sleeper registration (and sends a token) or published
// before our sweep (and the sweep finds the task).
func (w *wsWorker) park() bool {
	ex := w.ex
	ns := ex.sleepers.Add(1)
	for v := range ex.workers {
		if d, ok := ex.workers[v].dq.steal(); ok {
			ex.sleepers.Add(-1)
			w.processBlock(d)
			return true
		}
	}
	// "Everyone idle, blocks unfinished" is a bug for a whole-schedule run,
	// but the steady state of a restricted run between network arrivals —
	// so only the unrestricted engine confirms a stall.
	if ex.restrict == nil && int(ns) == len(ex.workers) && ex.blocksLeft.Load() > 0 {
		switch w.confirmStall() {
		case stallExit:
			ex.sleepers.Add(-1)
			return false
		case stallResume:
			ex.sleepers.Add(-1)
			return true
		}
	}
	t0 := ex.rec.Start()
	select {
	case id := <-w.extChOrNil():
		ex.sleepers.Add(-1)
		ex.rec.Record(w.me, obs.OpIdle, -1, -1, t0)
		w.propagate(id)
		return true
	case <-ex.parkCh:
	case <-ex.abort:
	case <-ex.doneCh:
	}
	ex.sleepers.Add(-1)
	ex.rec.Record(w.me, obs.OpIdle, -1, -1, t0)
	return true
}

// extChOrNil exposes the external-arrival channel to park's select; the
// nil channel of an unrestricted executor simply never fires.
func (w *wsWorker) extChOrNil() chan int32 { return w.ex.extCh }

const (
	stallPark   = iota // state resolved; park normally
	stallResume        // return to the scheduling loop (work was found/done)
	stallExit          // done, aborted, or stall reported
)

// confirmStall handles the suspicious state "every worker idle, blocks
// unfinished": usually a transient (another worker between its wake-up and
// sleeper decrement, holding the last task), but if it persists with all
// deques empty the schedule has stalled — a bug, reported rather than
// deadlocked on.
func (w *wsWorker) confirmStall() int {
	ex := w.ex
	for i := 0; i < 60; i++ {
		time.Sleep(time.Millisecond)
		if ex.blocksLeft.Load() == 0 || w.aborted() {
			return stallExit
		}
		if int(ex.sleepers.Load()) < len(ex.workers) {
			return stallPark // someone is running again; park normally
		}
		for v := range ex.workers {
			if d, ok := ex.workers[v].dq.steal(); ok {
				// Still registered as a sleeper while processing — that
				// only makes publishers err toward sending wake tokens;
				// park's stallResume case deregisters afterwards.
				w.processBlock(d)
				return stallResume
			}
		}
	}
	ex.fail(fmt.Errorf("fanout: work-stealing executor stalled with %d blocks unfinished", ex.blocksLeft.Load()))
	return stallExit
}

// next is a xorshift64 step, giving each worker an allocation-free private
// stream of victim offsets.
func (w *wsWorker) next() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// splitmix64 seeds the per-worker generators deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// deque is a fixed-capacity Chase–Lev work-stealing deque of block ids.
// The owner pushes and pops at the bottom (LIFO); thieves steal from the
// top with a CAS. Capacity is a power of two ≥ NBlocks, which can never
// overflow: at most one live activation exists per block, so total
// occupancy across all deques is bounded by NBlocks. Buffer slots are
// accessed atomically — a steal may read a slot concurrently with the
// owner recycling it after wraparound, and the CAS on top then rejects the
// stale read.
type deque struct {
	top    atomic.Int64
	_      [56]byte // keep thief- and owner-side indices off one cache line
	bottom atomic.Int64
	buf    []int32
	mask   int64
}

func (d *deque) push(v int32) {
	b := d.bottom.Load()
	atomic.StoreInt32(&d.buf[b&d.mask], v)
	d.bottom.Store(b + 1)
}

func (d *deque) pop() (int32, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t < b {
		return atomic.LoadInt32(&d.buf[b&d.mask]), true
	}
	if t == b {
		// Last element: race the thieves for it via top.
		if d.top.CompareAndSwap(t, t+1) {
			d.bottom.Store(b + 1)
			return atomic.LoadInt32(&d.buf[b&d.mask]), true
		}
	}
	d.bottom.Store(b + 1)
	return 0, false
}

func (d *deque) steal() (int32, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return 0, false
	}
	v := atomic.LoadInt32(&d.buf[t&d.mask])
	if d.top.CompareAndSwap(t, t+1) {
		return v, true
	}
	return 0, false
}
