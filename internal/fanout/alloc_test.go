package fanout

import (
	"fmt"
	"math"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

// TestExecutorSteadyStateAllocs pins down the allocation-free refactor hot
// path: once an Executor exists, a full reload-and-refactor cycle —
// hundreds of BFAC/BDIV/BMOD block operations plus all arrival bookkeeping
// — may only allocate its per-run control state (the abort channel,
// goroutine startup, and the handful of words Run itself needs). All bulk
// state (arrival bitsets, work stacks, BMOD workspaces, channels, counters)
// is preallocated by NewExecutor and reset in place. If any per-block or
// per-modification allocation sneaks back into the loop, the per-run
// average scales with the block count and blows well past the budget.
func TestExecutorSteadyStateAllocs(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 1, Pc: 1}, bs.N())})
	if pr.NBlocks < 100 {
		t.Fatalf("problem too small to distinguish per-block allocation: %d blocks", pr.NBlocks)
	}

	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)

	const runs = 5
	avg := testing.AllocsPerRun(runs, func() {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	})

	// Per-run control state only: the abort channel, the goroutine, and
	// Run's few bookkeeping words. The exact count is compiler-dependent;
	// what matters is that it stays a small constant while the run handles
	// pr.NBlocks ≫ budget blocks.
	const budget = 24
	if avg > budget {
		t.Fatalf("Executor.Run averaged %.1f allocations over %d blocks; want ≤ %d (steady state must not allocate)",
			avg, pr.NBlocks, budget)
	}
}

// TestExecutorSteadyStateAllocsModes extends the zero-steady-state-
// allocation guarantee to the interesting multi-worker configurations: the
// work-stealing engine with 16 workers stealing from each other's deques
// (every steal, park, and wake must reuse the preallocated deques, counters,
// and park channel) and the SPMD engine that serves as the benchmark
// baseline. The budget scales only with the worker count — goroutine
// startup and the per-run channels — never with the block count.
func TestExecutorSteadyStateAllocsModes(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	for _, tc := range []struct {
		name string
		mode Mode
		grid mapping.Grid
	}{
		{"steal-16", ModeWorkStealing, mapping.Grid{Pr: 4, Pc: 4}},
		{"spmd-4", ModeSPMD, mapping.Grid{Pr: 2, Pc: 2}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(tc.grid, bs.N())})
			f, err := numeric.New(bs, pm)
			if err != nil {
				t.Fatal(err)
			}
			ex := NewExecutorMode(f, pr, tc.mode)
			avg := testing.AllocsPerRun(5, func() {
				if err := f.Reload(pm.Val); err != nil {
					t.Fatal(err)
				}
				if _, err := ex.Run(); err != nil {
					t.Fatal(err)
				}
			})
			// Per-run control state: abort/done channels plus ~2 allocations
			// per worker goroutine (stack + closure).
			budget := float64(16 + 3*pr.NProc)
			if avg > budget {
				t.Fatalf("%s averaged %.1f allocations over %d blocks; want ≤ %.0f",
					tc.name, avg, pr.NBlocks, budget)
			}
		})
	}
}

// TestExecutorReuse checks that one Executor run repeatedly over reloaded
// values produces the same factors as one-shot Run calls on fresh state.
func TestExecutorReuse(t *testing.T) {
	m, bs, pm := setup(t, gen.IrregularMesh(220, 5, 3, 17), ord.MinDegree, 0, 8)
	_ = m
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})

	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)

	for round := 0; round < 3; round++ {
		vals := append([]float64(nil), pm.Val...)
		for i := range vals {
			// Perturb off-diagonals differently each round; pm's diagonal
			// dominance keeps every variant positive definite.
			vals[i] *= 1 + 0.1*float64(round)
		}
		if err := f.Reload(vals); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}

		pm2 := pm.Clone()
		copy(pm2.Val, vals)
		ref, err := numeric.New(bs, pm2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(ref, pr); err != nil {
			t.Fatal(err)
		}
		// BMOD arrival order is nondeterministic across goroutines, so two
		// runs may round differently in the last bit; 1e-12 relative is the
		// refactorization acceptance tolerance.
		for j := range f.Data {
			for bi := range f.Data[j] {
				for i, v := range f.Data[j][bi] {
					if w := ref.Data[j][bi][i]; math.Abs(v-w) > 1e-12*(1+math.Abs(w)) {
						t.Fatalf("round %d: block (%d,%d)[%d]: reused executor %g vs fresh %g",
							round, j, bi, i, v, w)
					}
				}
			}
		}
	}
}

// BenchmarkFanoutRun times complete parallel factorizations — scheduling
// overhead, channel traffic, and the tiled kernels together — at the
// CI-scale problem size.
func BenchmarkFanoutRun(b *testing.B) {
	_, bs, pm := setup(b, gen.IrregularMesh(600, 7, 3, 57), ord.MinDegree, 0, 16)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}, {Pr: 4, Pc: 4}} {
		b.Run(fmt.Sprintf("p=%d", g.P()), func(b *testing.B) {
			pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
			flops := bs.TotalFlops
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := numeric.New(bs, pm)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := Run(f, pr); err != nil {
					b.Fatal(err)
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "GFlop/s")
			}
		})
	}
}

// BenchmarkExecutorRefactor times the refactorization path — Reload plus a
// reused Executor — against the from-scratch path benchmarked above.
func BenchmarkExecutorRefactor(b *testing.B) {
	_, bs, pm := setup(b, gen.IrregularMesh(600, 7, 3, 57), ord.MinDegree, 0, 16)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 4, Pc: 4}} {
		b.Run(fmt.Sprintf("p=%d", g.P()), func(b *testing.B) {
			pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
			f, err := numeric.New(bs, pm)
			if err != nil {
				b.Fatal(err)
			}
			ex := NewExecutor(f, pr)
			flops := bs.TotalFlops
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Reload(pm.Val); err != nil {
					b.Fatal(err)
				}
				if _, err := ex.Run(); err != nil {
					b.Fatal(err)
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "GFlop/s")
			}
		})
	}
}
