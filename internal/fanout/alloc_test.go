package fanout

import (
	"fmt"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

// TestFanoutSteadyStateAllocs pins down the allocation-free hot path: a
// processor's entire run — hundreds of BFAC/BDIV/BMOD block operations plus
// all arrival bookkeeping — may only allocate its fixed startup state (the
// arrival bitset, the local work stack, the BMOD workspace, and the handful
// of closures runProc builds). If any per-block or per-modification
// allocation sneaks back into the loop, the per-run average scales with the
// block count and blows well past the budget.
func TestFanoutSteadyStateAllocs(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 1, Pc: 1}, bs.N())})
	if pr.NBlocks < 100 {
		t.Fatalf("problem too small to distinguish per-block allocation: %d blocks", pr.NBlocks)
	}

	// AllocsPerRun calls the body runs+1 times (one warmup); every call
	// needs a fresh unfactored copy, built outside the measurement.
	const runs = 5
	factors := make([]*numeric.Factor, runs+1)
	for i := range factors {
		f, err := numeric.New(bs, pm)
		if err != nil {
			t.Fatal(err)
		}
		factors[i] = f
	}

	modsLeft := make([]int32, pr.NBlocks)
	diagReady := make([]bool, pr.NBlocks)
	done := make([]bool, pr.NBlocks)
	inboxes := []chan int32{make(chan int32, 1)}
	abort := make(chan struct{})
	fail := func(err error) { t.Error(err) }

	next := 0
	avg := testing.AllocsPerRun(runs, func() {
		f := factors[next]
		next++
		copy(modsLeft, pr.NMods)
		for i := range diagReady {
			diagReady[i] = false
			done[i] = false
		}
		runProc(0, f, pr, modsLeft, diagReady, done, inboxes, abort, fail)
	})

	// Startup state only: bitset + stack + workspace + closures. The exact
	// count is compiler-dependent; what matters is that it stays a small
	// constant while the run handles pr.NBlocks ≫ budget blocks.
	const budget = 24
	if avg > budget {
		t.Fatalf("runProc averaged %.1f allocations over %d blocks; want ≤ %d (steady state must not allocate)",
			avg, pr.NBlocks, budget)
	}
}

// BenchmarkFanoutRun times complete parallel factorizations — scheduling
// overhead, channel traffic, and the tiled kernels together — at the
// CI-scale problem size.
func BenchmarkFanoutRun(b *testing.B) {
	_, bs, pm := setup(b, gen.IrregularMesh(600, 7, 3, 57), ord.MinDegree, 0, 16)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}, {Pr: 4, Pc: 4}} {
		b.Run(fmt.Sprintf("p=%d", g.P()), func(b *testing.B) {
			pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
			flops := bs.TotalFlops
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				f, err := numeric.New(bs, pm)
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := Run(f, pr); err != nil {
					b.Fatal(err)
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "GFlop/s")
			}
		})
	}
}
