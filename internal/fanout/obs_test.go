package fanout

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"testing"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/obs"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

// TestRecorderTrace runs an instrumented parallel factorization (race-
// tested under the CI fanout race step) and checks both the span
// accounting — exactly one completing op per block, exactly one BMOD per
// scheduled modification — and that the exported file is valid Chrome
// trace-event JSON. Exact accounting needs the drop-free measure
// recorder: NewRecorder's lanes are fixed-capacity and may legitimately
// shed spans when stealing piles work onto one lane.
func TestRecorderTrace(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	rec := ex.NewMeasureRecorder()
	rec.Enable()
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("measure recorder dropped %d spans", rec.Dropped())
	}

	var mods int32
	for _, nm := range pr.NMods {
		mods += nm
	}
	var bfacdiv, bmod int32
	for _, s := range rec.Spans() {
		if s.End < s.Start {
			t.Fatalf("backwards span %+v", s)
		}
		switch s.Op {
		case obs.OpBFAC, obs.OpBDIV:
			if s.Block < 0 || int(s.Block) >= pr.NBlocks {
				t.Fatalf("span block %d out of range", s.Block)
			}
			bfacdiv++
		case obs.OpBMOD:
			if s.Block < 0 || int(s.Block) >= pr.NBlocks {
				t.Fatalf("span block %d out of range", s.Block)
			}
			bmod++
		case obs.OpSteal:
			// Block is the stolen destination, Src the victim worker.
			if s.Block < 0 || int(s.Block) >= pr.NBlocks {
				t.Fatalf("steal span block %d out of range", s.Block)
			}
			if s.Src < 0 || int(s.Src) >= pr.NProc || s.Src == s.Proc {
				t.Fatalf("steal span victim %d invalid (thief %d)", s.Src, s.Proc)
			}
		case obs.OpIdle:
			if s.Block != -1 || s.Src != -1 {
				t.Fatalf("idle span carries block/src %d/%d", s.Block, s.Src)
			}
		default:
			t.Fatalf("unknown span op %v", s.Op)
		}
	}
	if int(bfacdiv) != pr.NBlocks {
		t.Fatalf("recorded %d BFAC/BDIV spans for %d blocks", bfacdiv, pr.NBlocks)
	}
	if bmod != mods {
		t.Fatalf("recorded %d BMOD spans for %d scheduled modifications", bmod, mods)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf, "fanout test"); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace does not parse: %v", err)
	}
	if len(doc.TraceEvents) < int(bfacdiv+bmod) {
		t.Fatalf("trace has %d events for %d spans", len(doc.TraceEvents), bfacdiv+bmod)
	}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
	}

	// A second run on the reset recorder must reproduce the same per-kind
	// op counts (steal/idle spans depend on scheduling and may differ):
	// the instrumented executor stays reusable.
	rec.Reset()
	if err := f.Reload(pm.Val); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	var bfacdiv2, bmod2 int32
	for _, s := range rec.Spans() {
		switch s.Op {
		case obs.OpBFAC, obs.OpBDIV:
			bfacdiv2++
		case obs.OpBMOD:
			bmod2++
		}
	}
	if bfacdiv2 != bfacdiv || bmod2 != bmod {
		t.Fatalf("second run recorded %d/%d op spans, want %d/%d", bfacdiv2, bmod2, bfacdiv, bmod)
	}
}

// TestRecorderDisabledAllocs extends the steady-state allocation guarantee
// to the instrumented executor: with a recorder attached but disabled, a
// full reload-and-refactor cycle stays within the same per-run control-
// state budget as the uninstrumented path — the gate adds zero
// allocations.
func TestRecorderDisabledAllocs(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 1, Pc: 1}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	ex.NewRecorder() // attached, never enabled

	const runs = 5
	avg := testing.AllocsPerRun(runs, func() {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	})
	const budget = 24 // same as TestExecutorSteadyStateAllocs
	if avg > budget {
		t.Fatalf("disabled-recorder run averaged %.1f allocations; want ≤ %d", avg, budget)
	}
}

// TestRecorderDisabledOverhead is the CI overhead gate: it measures the
// refactorization benchmark with no recorder and with an attached-but-
// disabled recorder and fails if the gated path costs more than 2%.
// Timing comparisons are noisy on shared runners, so the check only runs
// when OBS_OVERHEAD_CHECK=1 (the dedicated CI step sets it); the
// allocation half of the guarantee is covered unconditionally above.
func TestRecorderDisabledOverhead(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_CHECK") != "1" {
		t.Skip("set OBS_OVERHEAD_CHECK=1 to run the timing comparison")
	}
	// A 1×1 grid runs every block operation on one goroutine: the gate's
	// per-operation cost is measured directly, without goroutine-scheduling
	// variance swamping the 2% budget.
	_, bs, pm := setup(t, gen.IrregularMesh(600, 7, 3, 57), ord.MinDegree, 0, 16)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 1, Pc: 1}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)

	cycle := func() {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Calibrate a ~50ms measurement slice, then time many short slices
	// alternating between the two variants and keep each variant's
	// fastest. Short interleaved slices with min-tracking cancel the slow
	// clock-frequency drift that back-to-back one-second benchmark blocks
	// cannot.
	cycle()
	t0 := time.Now()
	cycle()
	per := time.Since(t0)
	n := int(50*time.Millisecond/per) + 1
	slice := func(attach bool) float64 {
		if attach {
			ex.NewRecorder()
		} else {
			ex.SetRecorder(nil)
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			cycle()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(n)
	}
	base, gated := math.Inf(1), math.Inf(1)
	for rep := 0; rep < 24; rep++ {
		attachFirst := rep%2 == 0
		if v := slice(attachFirst); attachFirst && v < gated {
			gated = v
		} else if !attachFirst && v < base {
			base = v
		}
		if v := slice(!attachFirst); attachFirst && v < base {
			base = v
		} else if !attachFirst && v < gated {
			gated = v
		}
	}
	ratio := gated / base
	t.Logf("baseline %.0f ns/op, disabled recorder %.0f ns/op, ratio %.4f", base, gated, ratio)
	if ratio > 1.02 {
		t.Fatalf("disabled recorder costs %.2f%% (> 2%%)", (ratio-1)*100)
	}
}

// BenchmarkFanoutRecorder quantifies the instrumentation cost next to
// BenchmarkExecutorRefactor: none (no recorder), gated (attached,
// disabled), recording (enabled, reset between runs).
func BenchmarkFanoutRecorder(b *testing.B) {
	_, bs, pm := setup(b, gen.IrregularMesh(600, 7, 3, 57), ord.MinDegree, 0, 16)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		b.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	flops := bs.TotalFlops
	for _, mode := range []string{"none", "gated", "recording"} {
		b.Run(mode, func(b *testing.B) {
			var rec *obs.Recorder
			switch mode {
			case "none":
				ex.SetRecorder(nil)
			case "gated":
				ex.NewRecorder()
			case "recording":
				rec = ex.NewRecorder()
				rec.Enable()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rec != nil {
					rec.Reset()
				}
				if err := f.Reload(pm.Val); err != nil {
					b.Fatal(err)
				}
				if _, err := ex.Run(); err != nil {
					b.Fatal(err)
				}
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(flops)*float64(b.N)/sec/1e9, "GFlop/s")
			}
		})
	}
}
