package fanout

import (
	"context"
	"errors"
	"math"
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/domains"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func setup(t testing.TB, m *sparse.Matrix, method ord.Method, gridDim, b int) (*symbolic.Structure, *blocks.Structure, *sparse.Matrix) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return st, bs, m2
}

// factorBoth runs sequential and parallel factorizations and compares every
// stored entry.
func factorBoth(t *testing.T, bs *blocks.Structure, pm *sparse.Matrix, a sched.Assignment) {
	t.Helper()
	seq, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	par, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	pr := sched.Build(bs, a)
	stats, err := Run(par, pr)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Procs != a.P() {
		t.Fatalf("stats procs %d", stats.Procs)
	}
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			sd, pd := seq.Data[j][bi], par.Data[j][bi]
			for k := range sd {
				if math.Abs(sd[k]-pd[k]) > 1e-9*(1+math.Abs(sd[k])) {
					t.Fatalf("block (%d,%d) entry %d: seq %g par %g",
						bs.Cols[j].Blocks[bi].I, j, k, sd[k], pd[k])
				}
			}
		}
	}
}

func TestParallelEqualsSequentialAcrossGrids(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 1, Pc: 5}, {Pr: 5, Pc: 1}, {Pr: 2, Pc: 3}, {Pr: 4, Pc: 4}} {
		factorBoth(t, bs, pm, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
	}
}

func TestParallelWithDomains(t *testing.T) {
	st, bs, pm := setup(t, gen.Grid2D(18), ord.NDGrid2D, 18, 4)
	g := mapping.Grid{Pr: 3, Pc: 3}
	a := sched.Assignment{
		Map: mapping.Cyclic(g, bs.N()),
		Dom: domains.Select(st, bs, g.P(), 2),
	}
	factorBoth(t, bs, pm, a)
}

func TestParallelWithHeuristicMappings(t *testing.T) {
	st, bs, pm := setup(t, gen.IrregularMesh(200, 6, 3, 8), ord.MinDegree, 0, 6)
	depth := make([]int, bs.N())
	for p := range depth {
		depth[p] = st.Depth[bs.Part.SnodeOf[p]]
	}
	g := mapping.Grid{Pr: 3, Pc: 3}
	for _, h := range mapping.AllHeuristics() {
		m := mapping.New(g, h, mapping.CY, bs, depth)
		factorBoth(t, bs, pm, sched.Assignment{Map: m})
	}
}

func TestNotPositiveDefiniteAborts(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(10), ord.NDGrid2D, 10, 4)
	bad := pm.Clone()
	bad.Val[bad.ColPtr[pm.N-1]] = -5 // last diagonal — poisons the root
	f, err := numeric.New(bs, bad)
	if err != nil {
		t.Fatal(err)
	}
	g := mapping.Grid{Pr: 2, Pc: 2}
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
	if _, err := Run(f, pr); err == nil {
		t.Fatal("expected not-positive-definite error to propagate")
	}
}

// TestRunContextCancelCompletionRace hammers the window where cancellation
// lands exactly as the run completes: RunContext must join its context
// watcher before reading the error slot, so a straggling fail() can never
// race the read (this runs under -race in CI) and every outcome is either
// clean success or a context error.
func TestRunContextCancelCompletionRace(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(120, 5, 3, 9), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	for i := 0; i < 50; i++ {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		go cancel() // races run completion
		if _, err := ex.RunContext(ctx); err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: unexpected error %v", i, err)
		}
	}
}

func TestRepeatedRunsDeterministicResidual(t *testing.T) {
	// Arrival order varies between runs; the factor must stay numerically
	// equivalent (within round-off) run to run.
	_, bs, pm := setup(t, gen.Cube3D(6), ord.NDCube3D, 6, 6)
	g := mapping.Grid{Pr: 2, Pc: 2}
	a := sched.Assignment{Map: mapping.Cyclic(g, bs.N())}
	b := make([]float64, pm.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	for trial := 0; trial < 3; trial++ {
		f, err := numeric.New(bs, pm)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(f, sched.Build(bs, a)); err != nil {
			t.Fatal(err)
		}
		x := f.Solve(b)
		if r := pm.ResidualNorm(x, b); r > 1e-8 {
			t.Fatalf("trial %d residual %g", trial, r)
		}
	}
}

func TestTinyMatrices(t *testing.T) {
	// n=1 and single-supernode matrices must run through the parallel
	// machinery without deadlock on any grid.
	one, err := sparse.FromTriplets(1, []sparse.Triplet{{Row: 0, Col: 0, Val: 4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*sparse.Matrix{one, gen.Dense(3), gen.Grid2D(2)} {
		st, err := symbolic.Analyze(m, symbolic.NoAmalgamation())
		if err != nil {
			t.Fatal(err)
		}
		bs, err := blocks.Build(st, blocks.NewPartition(st, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}} {
			pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})
			f, err := numeric.New(bs, m)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Run(f, pr); err != nil {
				t.Fatalf("n=%d grid %v: %v", m.N, g, err)
			}
			b := make([]float64, m.N)
			for i := range b {
				b[i] = 1
			}
			x, err := Solve(f, pr, b)
			if err != nil {
				t.Fatal(err)
			}
			if r := m.ResidualNorm(x, b); r > 1e-10 {
				t.Fatalf("n=%d residual %g", m.N, r)
			}
		}
	}
}
