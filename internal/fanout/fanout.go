// Package fanout executes the parallel block fan-out method (§2.3) for
// real: one goroutine per (virtual) processor, SPMD style, with buffered
// channels as the message fabric. The method is entirely data-driven, as in
// the paper: a processor acts on received blocks in arrival order, performs
// every block operation whose destination it owns as soon as the operands
// are available, and fans a completed block out to the processors that need
// it.
//
// Within this shared-memory emulation a "message" carries only the block
// id; the numeric payload lives in the shared numeric.Factor, which is safe
// because a block's data is written exclusively by its owner before the
// completion message is sent (the channel send/receive provides the
// happens-before edge), and is read-only afterwards.
package fanout

import (
	"fmt"
	"sync"

	"blockfanout/internal/numeric"
	"blockfanout/internal/sched"
)

// Stats reports what the parallel run did.
type Stats struct {
	Messages int64 // remote block transfers
	Bytes    int64 // remote bytes moved
	Procs    int
}

// Run factors f in parallel according to the program's assignment. It
// returns factorization statistics, or the first error encountered (e.g. a
// non-positive-definite pivot).
func Run(f *numeric.Factor, pr *sched.Program) (Stats, error) {
	np := pr.NProc
	// Owner-indexed shared state: each entry is touched only by the
	// owning processor's goroutine, so no locking is needed.
	modsLeft := append([]int32(nil), pr.NMods...)
	diagReady := make([]bool, pr.NBlocks)
	done := make([]bool, pr.NBlocks)

	inboxes := make([]chan int32, np)
	for p := 0; p < np; p++ {
		inboxes[p] = make(chan int32, pr.IncomingRemote[p]+1)
	}

	abort := make(chan struct{})
	var abortOnce sync.Once
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	wg.Add(np)
	for p := 0; p < np; p++ {
		go func(me int32) {
			defer wg.Done()
			runProc(me, f, pr, modsLeft, diagReady, done, inboxes, abort, fail)
		}(int32(p))
	}
	wg.Wait()

	if firstErr != nil {
		return Stats{}, firstErr
	}
	return Stats{Messages: pr.TotalMessages, Bytes: pr.TotalBytes, Procs: np}, nil
}

// runProc is the SPMD body executed by every processor.
func runProc(me int32, f *numeric.Factor, pr *sched.Program,
	modsLeft []int32, diagReady, done []bool,
	inboxes []chan int32, abort chan struct{}, fail func(error)) {

	remaining := pr.OwnedCount[me]
	if remaining == 0 {
		return
	}
	// All per-processor state is sized up front so the steady-state loop
	// below never allocates: arrival tracking is a bitset over block ids,
	// the local work stack can hold every owned block (each is pushed at
	// most once — Consumers lists are deduped), and the BMOD workspace is
	// reserved for the widest block in the factor.
	arrived := make([]uint64, (pr.NBlocks+63)/64)
	local := make([]int32, 0, pr.OwnedCount[me])
	var ws numeric.Workspace
	ws.Reserve(f.MaxBlockRows())

	failed := false

	// complete marks an owned block finished and fans it out.
	complete := func(id int32) {
		done[id] = true
		remaining--
		for _, c := range pr.Consumers[id] {
			if c == me {
				local = append(local, id)
			} else {
				inboxes[c] <- id
			}
		}
	}

	// finish runs a block's own completing operation (BFAC or BDIV) once
	// its modifications are done (and, for off-diagonal blocks, its
	// diagonal block has arrived).
	finish := func(id int32) {
		k := int(pr.ColOf[id])
		idx := int(pr.IdxOf[id])
		if idx == 0 {
			if err := f.BFAC(k); err != nil {
				fail(err)
				failed = true
				return
			}
		} else {
			f.BDIV(k, idx)
		}
		complete(id)
	}

	// execMod performs BMOD with column-k sources at block indices a and b
	// (unordered) and decrements the destination's counter. Blocks within
	// a column are sorted by block row, so the larger index is the I side,
	// and the destination id comes from the precomputed pairing table.
	execMod := func(k, a, b int) {
		if a < b {
			a, b = b, a
		}
		if err := f.BMOD(k, a, b, &ws); err != nil {
			fail(err)
			failed = true
			return
		}
		dest := pr.ModDestID(k, a, b)
		modsLeft[dest]--
		if modsLeft[dest] == 0 && !done[dest] {
			if pr.IdxOf[dest] == 0 || diagReady[dest] {
				finish(dest)
			}
		}
	}

	handle := func(id int32) {
		if arrived[id>>6]&(1<<(uint(id)&63)) != 0 {
			return
		}
		arrived[id>>6] |= 1 << (uint(id) & 63)
		k := int(pr.ColOf[id])
		idx := int(pr.IdxOf[id])
		colK := &pr.BS.Cols[k]
		if idx == 0 {
			// Factored diagonal block: enables BDIV of owned
			// off-diagonal blocks in column k whose mods are done.
			for j := 1; j < len(colK.Blocks); j++ {
				bid := pr.BlockID(k, j)
				if pr.Owner[bid] != me {
					continue
				}
				diagReady[bid] = true
				if modsLeft[bid] == 0 && !done[bid] {
					finish(bid)
					if failed {
						return
					}
				}
			}
			return
		}
		// Completed off-diagonal block: pair with every available block
		// of its column whose pairing destination this processor owns.
		for j := 1; j < len(colK.Blocks); j++ {
			other := pr.BlockID(k, j)
			if me != pr.Owner[pr.ModDestID(k, idx, j)] {
				continue
			}
			if other == id || arrived[other>>6]&(1<<(uint(other)&63)) != 0 {
				execMod(k, idx, j)
				if failed {
					return
				}
			}
		}
	}

	// Seed: owned diagonal blocks with no pending modifications can be
	// factored immediately.
	for j := range pr.BS.Cols {
		id := pr.BlockID(j, 0)
		if pr.Owner[id] == me && pr.NMods[id] == 0 {
			finish(id)
			if failed {
				return
			}
		}
	}

	for remaining > 0 && !failed {
		var id int32
		if len(local) > 0 {
			id = local[len(local)-1]
			local = local[:len(local)-1]
		} else {
			select {
			case id = <-inboxes[me]:
			case <-abort:
				return
			}
		}
		handle(id)
	}
	if failed {
		return
	}
	if remaining != 0 {
		fail(fmt.Errorf("fanout: processor %d stalled with %d blocks unfinished", me, remaining))
	}
}
