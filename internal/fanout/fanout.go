// Package fanout executes the parallel block fan-out method (§2.3) for
// real, with two engines sharing one precomputed schedule:
//
//   - ModeWorkStealing (default): per-worker LIFO deques of ready block
//     operations with randomized stealing, driven by atomic ready counters
//     derived from the same dependence structure. Ownership stops pinning
//     work to goroutines, so an oversized block (irregular partitions
//     produce them on purpose) never starves a worker. See steal.go.
//   - ModeSPMD: the paper-faithful engine — one goroutine per (virtual)
//     processor with buffered channels as the message fabric. The method is
//     entirely data-driven, as in the paper: a processor acts on received
//     blocks in arrival order, performs every block operation whose
//     destination it owns as soon as the operands are available, and fans a
//     completed block out to the processors that need it.
//
// Within this shared-memory emulation a "message" carries only the block
// id; the numeric payload lives in the shared numeric.Factor, which is safe
// because a block's data is written exclusively by its owner before the
// completion message is sent (the channel send/receive provides the
// happens-before edge), and is read-only afterwards.
//
// An Executor owns every piece of mutable run state — modification
// counters, arrival bitsets, work stacks, BMOD workspaces, and the message
// channels — preallocated once and reset between runs, so repeated
// factorizations over the same schedule (the refactorization serving
// pattern: reload values, factor again) perform no per-run setup
// allocation beyond goroutine startup.
package fanout

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"blockfanout/internal/kernels"
	"blockfanout/internal/numeric"
	"blockfanout/internal/obs"
	"blockfanout/internal/sched"
)

// Stats reports what the parallel run did.
type Stats struct {
	Messages int64 // remote block transfers
	Bytes    int64 // remote bytes moved
	Procs    int
	// Flops and Steals are tracked by the work-stealing engine only
	// (zero in SPMD mode): flops of the block operations this executor
	// ran, and successful deque thefts.
	Flops  int64
	Steals int64
}

// Run factors f in parallel according to the program's assignment. It
// returns factorization statistics, or the first error encountered (e.g. a
// non-positive-definite pivot). One-shot convenience over NewExecutor.
func Run(f *numeric.Factor, pr *sched.Program) (Stats, error) {
	return NewExecutor(f, pr).Run()
}

// Mode selects the execution engine.
type Mode uint8

const (
	// ModeWorkStealing (the default) runs the schedule on per-worker LIFO
	// deques with randomized stealing: any worker may execute any ready
	// block op, so an oversized block never starves a processor. See
	// steal.go.
	ModeWorkStealing Mode = iota
	// ModeSPMD is the paper-faithful engine: one goroutine per virtual
	// processor, each executing exactly the ops of the blocks it owns,
	// with channels as the message fabric. It remains selectable as the
	// baseline the benchmarks compare work stealing against (and as the
	// engine whose message counts the simulator mirrors exactly).
	ModeSPMD
)

func (m Mode) String() string {
	switch m {
	case ModeWorkStealing:
		return "steal"
	case ModeSPMD:
		return "spmd"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode converts a flag value ("steal" or "spmd") to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "steal", "":
		return ModeWorkStealing, nil
	case "spmd":
		return ModeSPMD, nil
	}
	return 0, fmt.Errorf("fanout: unknown executor mode %q (want steal or spmd)", s)
}

// Executor is a reusable parallel factorization engine bound to one factor
// and one schedule. It is not safe for concurrent use; a Run must finish
// before the next begins.
type Executor struct {
	f    *numeric.Factor
	pr   *sched.Program
	mode Mode

	// SPMD state (nil in work-stealing mode).
	modsLeft  []int32
	diagReady []bool
	done      []bool
	inboxes   []chan int32
	procs     []procState

	// Work-stealing state (nil in SPMD mode); see steal.go.
	pairs      *sched.PairTable
	srcInit    []int32 // pairing → initial source count (2, or 1 when A==B)
	srcLeft    []int32 // pairing → remaining sources (atomic)
	finInit    []int32 // block → initial NMods (+1 diag arrival if off-diag)
	finLeft    []int32 // block → remaining prerequisites (atomic)
	slots      []int32 // ready-pairing queue slots, segmented by DestBase
	slotHead   []int32 // block → published ready pairings (atomic)
	slotDone   []int32 // block → executed pairings (claim-holder private)
	active     []int32 // block → activation claim flag (atomic CAS)
	seeds      [][]int32
	workers    []wsWorker
	blocksLeft atomic.Int32
	doneCh     chan struct{}
	doneOnce   sync.Once
	sleepers   atomic.Int32
	parkCh     chan struct{}

	// Restricted-mode state (nil/unused otherwise); see steal.go.
	restrict  *Restriction
	execMask  []bool     // block id → this executor runs the block's ops
	execCount int32      // number of true entries in execMask
	extCh     chan int32 // externally completed block arrivals (Inject)

	// rec, when non-nil and enabled, records one obs.Span per block
	// operation. A nil or disabled recorder costs one pointer check plus
	// one atomic load per operation and never allocates.
	rec *obs.Recorder

	// Per-run control state, reset by Run.
	abort     chan struct{}
	abortOnce sync.Once
	errMu     sync.Mutex
	firstErr  error
}

// procState is the preallocated per-processor working set.
type procState struct {
	ex        *Executor
	me        int32
	arrived   []uint64 // bitset over block ids
	local     []int32  // owned-work stack
	ws        numeric.Workspace
	remaining int
	failed    bool
}

// NewExecutor preallocates all run state for factoring f under pr in the
// default work-stealing mode. The factor may be reloaded with new values
// (numeric.Factor.Reload) between runs; the schedule is fixed.
func NewExecutor(f *numeric.Factor, pr *sched.Program) *Executor {
	return NewExecutorMode(f, pr, ModeWorkStealing)
}

// NewExecutorMode preallocates all run state for the chosen engine.
func NewExecutorMode(f *numeric.Factor, pr *sched.Program, mode Mode) *Executor {
	ex := &Executor{f: f, pr: pr, mode: mode}
	if mode == ModeSPMD {
		ex.initSPMD()
	} else {
		ex.initSteal()
	}
	return ex
}

// Restriction confines a work-stealing executor to a subset of the
// schedule's blocks — the execution model of one cluster node, which owns a
// slice of the block-to-processor mapping and learns of remote completions
// over the network (Inject) instead of from sibling workers.
type Restriction struct {
	// Local marks the blocks whose operations this executor performs. A nil
	// slice means all blocks (useful for throttled single-node runs).
	Local []bool
	// Predone marks blocks whose final data is already present in the
	// factor at run start (retained from a previous failover epoch, or
	// received before the restart). They are not executed; their completion
	// is propagated into the dependence counters when the run begins.
	Predone []bool
	// OnComplete, when non-nil, is called from a worker goroutine after
	// each locally executed block's data is final — the node's fan-out
	// hook. It must not block for long; ship through buffered channels.
	OnComplete func(id int32)
	// Workers is the goroutine pool size; 0 means GOMAXPROCS.
	Workers int
	// FlopsPerSec, when positive, paces each worker to the given aggregate
	// flop rate divided evenly across workers — the knob heterogeneity
	// benchmarks use to make a node measurably slow.
	FlopsPerSec float64
}

// executes reports whether this executor performs block id's operations.
func (r *Restriction) executes(id int32) bool {
	if r.Predone != nil && r.Predone[id] {
		return false
	}
	return r.Local == nil || r.Local[id]
}

// NewExecutorRestricted preallocates a work-stealing executor confined to
// the restriction. A restricted executor is single-run: build a fresh one
// per failover epoch (the restriction is fixed, and arrivals injected
// before the run starts are queued, not discarded — so a stale executor
// must never be rerun).
func NewExecutorRestricted(f *numeric.Factor, pr *sched.Program, r *Restriction) *Executor {
	ex := &Executor{f: f, pr: pr, mode: ModeWorkStealing, restrict: r}
	ex.initSteal()
	return ex
}

// Inject delivers an externally completed block (its data already written
// into the factor) to a running restricted executor. Each block must be
// injected at most once per run, and never a block the restriction marks
// local or predone. Inject never blocks: the arrival channel holds one slot
// per block.
func (ex *Executor) Inject(id int32) {
	ex.extCh <- id
	if ex.sleepers.Load() > 0 {
		select {
		case ex.parkCh <- struct{}{}:
		default:
		}
	}
}

func (ex *Executor) initSPMD() {
	pr := ex.pr
	np := pr.NProc
	ex.modsLeft = make([]int32, pr.NBlocks)
	ex.diagReady = make([]bool, pr.NBlocks)
	ex.done = make([]bool, pr.NBlocks)
	ex.inboxes = make([]chan int32, np)
	ex.procs = make([]procState, np)
	maxRows := ex.f.MaxBlockRows()
	for p := 0; p < np; p++ {
		ex.inboxes[p] = make(chan int32, pr.IncomingRemote[p]+1)
		ps := &ex.procs[p]
		ps.ex = ex
		ps.me = int32(p)
		ps.arrived = make([]uint64, (pr.NBlocks+63)/64)
		ps.local = make([]int32, 0, pr.OwnedCount[p])
		ps.ws.Reserve(maxRows)
	}
}

// SetRecorder attaches (or, with nil, detaches) a span recorder. The
// recorder needs one lane per processor; attach between runs, not during
// one. Enabling/disabling the attached recorder is safe at any time — the
// gate is a single atomic flag read on the hot path.
func (ex *Executor) SetRecorder(rec *obs.Recorder) {
	if rec != nil && rec.Procs() < ex.lanes() {
		panic(fmt.Sprintf("fanout: recorder has %d lanes for %d processors", rec.Procs(), ex.lanes()))
	}
	ex.rec = rec
}

// lanes is the recorder lane count: one per executing goroutine, which in
// work-stealing mode is the worker pool (restricted executors may run fewer
// workers than the schedule has virtual processors).
func (ex *Executor) lanes() int {
	if ex.mode == ModeSPMD {
		return ex.pr.NProc
	}
	return len(ex.workers)
}

// NewRecorder creates, attaches, and returns a recorder sized for this
// executor: one lane per executing goroutine, capacity hinted by the
// per-lane block-operation count. The recorder starts disabled.
func (ex *Executor) NewRecorder() *obs.Recorder {
	n := ex.lanes()
	per := 3 * ex.pr.NBlocks / n
	rec := obs.NewRecorder(n, per)
	ex.SetRecorder(rec)
	return rec
}

// NewMeasureRecorder creates, attaches, and returns a recorder sized so a
// complete factorization cannot overflow any lane: per-lane capacity covers
// every block operation in the schedule (one BFAC/BDIV per block plus one
// BMOD per modification), because under work stealing any single worker
// may end up executing an arbitrary share of them. Recorder.Dropped() == 0
// is therefore guaranteed for the compute spans a cost profile is built
// from — the measurement mode internal/tune requires. The per-span cost is
// the same two clock reads and one in-place array write as NewRecorder
// (no allocation once sized), so it is cheap enough to leave on for a
// whole production factorization; the price is memory, O(lanes × ops)
// spans instead of NewRecorder's O(ops).
func (ex *Executor) NewMeasureRecorder() *obs.Recorder {
	n := ex.lanes()
	per := ex.pr.NBlocks + len(ex.pr.ModDest)
	if ex.mode != ModeSPMD {
		// Work stealing also records one OpSteal per stolen task (at most
		// one per block activation) and OpIdle spans for parks; pad for
		// both so bookkeeping spans cannot evict compute spans either.
		per += ex.pr.NBlocks + 1024
	}
	rec := obs.NewRecorder(n, per)
	ex.SetRecorder(rec)
	return rec
}

// fail records a failure and broadcasts cancellation to the remaining
// processors. Errors are ranked, not first-come: a numerical breakdown
// (*kernels.PivotError) beats any infrastructure or cancellation error, and
// among breakdowns the lowest (Block, Row) wins, so the reported pivot is
// independent of which goroutine lost the race to report it.
func (ex *Executor) fail(err error) {
	ex.errMu.Lock()
	if betterErr(err, ex.firstErr) {
		ex.firstErr = err
	}
	ex.errMu.Unlock()
	ex.abortOnce.Do(func() { close(ex.abort) })
}

func betterErr(candidate, incumbent error) bool {
	if incumbent == nil {
		return true
	}
	var cp, ip *kernels.PivotError
	cPiv := errors.As(candidate, &cp)
	iPiv := errors.As(incumbent, &ip)
	switch {
	case cPiv && !iPiv:
		return true
	case !cPiv:
		return false
	case cp.Block != ip.Block:
		return cp.Block < ip.Block
	default:
		return cp.Row < ip.Row
	}
}

// aborted is the non-blocking abort poll inserted between block operations,
// bounding both cancellation latency and wasted work after a breakdown to a
// single block operation.
func (ps *procState) aborted() bool {
	select {
	case <-ps.ex.abort:
		return true
	default:
		return false
	}
}

// reset restores the executor to its pre-run state: counters reloaded from
// the schedule, bitsets and stacks cleared, channels drained of any
// messages stranded by an aborted previous run.
func (ex *Executor) reset() {
	if ex.mode == ModeSPMD {
		copy(ex.modsLeft, ex.pr.NMods)
		for i := range ex.done {
			ex.done[i] = false
			ex.diagReady[i] = false
		}
		for p := range ex.procs {
			ps := &ex.procs[p]
			for i := range ps.arrived {
				ps.arrived[i] = 0
			}
			ps.local = ps.local[:0]
			ps.remaining = ex.pr.OwnedCount[p]
			ps.failed = false
		}
		ex.drainInboxes()
	} else {
		ex.resetSteal()
	}
	ex.abort = make(chan struct{})
	ex.abortOnce = sync.Once{}
	ex.firstErr = nil
}

// drainInboxes discards messages stranded by an aborted run. Sends never
// block (each inbox is sized for its total remote traffic), so draining is
// a hygiene step, not a deadlock-avoidance one: it keeps a failed run from
// leaking stale block ids into the executor's next use.
func (ex *Executor) drainInboxes() {
	for p := range ex.inboxes {
	drain:
		for {
			select {
			case <-ex.inboxes[p]:
			default:
				break drain
			}
		}
	}
}

// Run executes one parallel factorization.
func (ex *Executor) Run() (Stats, error) {
	return ex.RunContext(context.Background())
}

// RunContext executes one parallel factorization, aborting early (with
// ctx.Err()) if the context is cancelled. A cancelled run leaves the factor
// numerically incomplete; Reload before the next Run restores it.
func (ex *Executor) RunContext(ctx context.Context) (Stats, error) {
	ex.reset()
	stopWatcher := func() {}
	if done := ctx.Done(); done != nil {
		stop := make(chan struct{})
		watcherExit := make(chan struct{})
		go func() {
			defer close(watcherExit)
			select {
			case <-done:
				ex.fail(ctx.Err())
			case <-stop:
			case <-ex.abort:
			}
		}()
		stopWatcher = func() {
			close(stop)
			<-watcherExit
		}
	}
	// Propagate retained completions through the normal arrival path before
	// any worker starts: predone blocks behave exactly like injected remote
	// completions, so the failover restart needs no special counter surgery.
	if ex.restrict != nil && ex.restrict.Predone != nil {
		for id, pd := range ex.restrict.Predone {
			if pd {
				ex.extCh <- int32(id)
			}
		}
	}
	var wg sync.WaitGroup
	if ex.mode == ModeSPMD {
		wg.Add(len(ex.procs))
		for p := range ex.procs {
			ps := &ex.procs[p]
			go func() {
				defer wg.Done()
				ps.run()
			}()
		}
	} else {
		wg.Add(len(ex.workers))
		for p := range ex.workers {
			w := &ex.workers[p]
			go func() {
				defer wg.Done()
				w.run()
			}()
		}
	}
	wg.Wait()
	// Join the watcher before reading firstErr: a straggling fail() from a
	// cancellation landing right at completion would otherwise race this
	// read (and a later reset()'s reinstall of abortOnce).
	stopWatcher()
	st := Stats{Messages: ex.pr.TotalMessages, Bytes: ex.pr.TotalBytes, Procs: ex.pr.NProc}
	for p := range ex.workers {
		st.Flops += ex.workers[p].flops
		st.Steals += ex.workers[p].steals
	}
	if ex.firstErr != nil {
		ex.drainInboxes()
		return Stats{}, ex.firstErr
	}
	return st, nil
}

// run is the SPMD body executed by every processor.
func (ps *procState) run() {
	if ps.remaining == 0 {
		return
	}
	ex := ps.ex
	pr := ex.pr

	// Seed: owned diagonal blocks with no pending modifications can be
	// factored immediately. Deliberately no abort poll here: every
	// processor always attempts all of its seed BFACs (stopping only at its
	// own first failure), so a breakdown in an unmodified diagonal block is
	// detected on every run regardless of interleaving, and the ranked
	// fail() then reports the lowest such (Block, Row) deterministically.
	for j := range pr.BS.Cols {
		id := pr.BlockID(j, 0)
		if pr.Owner[id] == ps.me && pr.NMods[id] == 0 {
			ps.finish(id)
			if ps.failed {
				return
			}
		}
	}

	for ps.remaining > 0 && !ps.failed {
		if ps.aborted() {
			return
		}
		var id int32
		if n := len(ps.local); n > 0 {
			id = ps.local[n-1]
			ps.local = ps.local[:n-1]
		} else {
			select {
			case id = <-ex.inboxes[ps.me]:
			case <-ex.abort:
				return
			}
		}
		ps.handle(id)
	}
	if ps.failed {
		return
	}
	if ps.remaining != 0 {
		ex.fail(fmt.Errorf("fanout: processor %d stalled with %d blocks unfinished", ps.me, ps.remaining))
	}
}

// complete marks an owned block finished and fans it out.
func (ps *procState) complete(id int32) {
	ex := ps.ex
	ex.done[id] = true
	ps.remaining--
	for _, c := range ex.pr.Consumers[id] {
		if c == ps.me {
			ps.local = append(ps.local, id)
		} else {
			ex.inboxes[c] <- id
		}
	}
}

// finish runs a block's own completing operation (BFAC or BDIV) once its
// modifications are done (and, for off-diagonal blocks, its diagonal block
// has arrived).
func (ps *procState) finish(id int32) {
	ex := ps.ex
	k := int(ex.pr.ColOf[id])
	idx := int(ex.pr.IdxOf[id])
	t0 := ex.rec.Start()
	if idx == 0 {
		if err := ex.f.BFAC(k); err != nil {
			ex.fail(err)
			ps.failed = true
			return
		}
		ex.rec.Record(ps.me, obs.OpBFAC, id, -1, t0)
	} else {
		if err := ex.f.BDIV(k, idx); err != nil {
			ex.fail(err)
			ps.failed = true
			return
		}
		ex.rec.Record(ps.me, obs.OpBDIV, id, -1, t0)
	}
	ps.complete(id)
}

// execMod performs BMOD with column-k sources at block indices a and b
// (unordered) and decrements the destination's counter. Blocks within a
// column are sorted by block row, so the larger index is the I side, and
// the destination id comes from the precomputed pairing table.
func (ps *procState) execMod(k, a, b int) {
	ex := ps.ex
	if a < b {
		a, b = b, a
	}
	t0 := ex.rec.Start()
	if err := ex.f.BMOD(k, a, b, &ps.ws); err != nil {
		ex.fail(err)
		ps.failed = true
		return
	}
	dest := ex.pr.ModDestID(k, a, b)
	ex.rec.Record(ps.me, obs.OpBMOD, dest, ex.pr.BlockID(k, a), t0)
	ex.modsLeft[dest]--
	if ex.modsLeft[dest] == 0 && !ex.done[dest] {
		if ex.pr.IdxOf[dest] == 0 || ex.diagReady[dest] {
			ps.finish(dest)
		}
	}
}

// handle processes one arriving completed block.
func (ps *procState) handle(id int32) {
	if ps.arrived[id>>6]&(1<<(uint(id)&63)) != 0 {
		return
	}
	ps.arrived[id>>6] |= 1 << (uint(id) & 63)
	ex := ps.ex
	pr := ex.pr
	k := int(pr.ColOf[id])
	idx := int(pr.IdxOf[id])
	colK := &pr.BS.Cols[k]
	if idx == 0 {
		// Factored diagonal block: enables BDIV of owned off-diagonal
		// blocks in column k whose mods are done.
		for j := 1; j < len(colK.Blocks); j++ {
			bid := pr.BlockID(k, j)
			if pr.Owner[bid] != ps.me {
				continue
			}
			ex.diagReady[bid] = true
			if ex.modsLeft[bid] == 0 && !ex.done[bid] {
				ps.finish(bid)
				if ps.failed || ps.aborted() {
					return
				}
			}
		}
		return
	}
	// Completed off-diagonal block: pair with every available block of its
	// column whose pairing destination this processor owns.
	for j := 1; j < len(colK.Blocks); j++ {
		other := pr.BlockID(k, j)
		if ps.me != pr.Owner[pr.ModDestID(k, idx, j)] {
			continue
		}
		if other == id || ps.arrived[other>>6]&(1<<(uint(other)&63)) != 0 {
			ps.execMod(k, idx, j)
			if ps.failed || ps.aborted() {
				return
			}
		}
	}
}
