package fanout

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// setupIrregular prepares a block structure over the structure-aware
// irregular partition (amalgamation + supernode-aligned panels), the
// blocking the work-stealing executor exists to serve.
func setupIrregular(t testing.TB, m *sparse.Matrix, method ord.Method, gridDim, maxPanel int) (*blocks.Structure, *sparse.Matrix) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.RelativeAmalgamation(0.125))
	if err != nil {
		t.Fatal(err)
	}
	part, err := blocks.NewPartitionIrregular(st, blocks.IrregularConfig{MaxPanel: maxPanel})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, part)
	if err != nil {
		t.Fatal(err)
	}
	return bs, m2
}

// compareToSequential factors in parallel with the given executor mode and
// checks every stored entry against the sequential reference.
func compareToSequential(t *testing.T, bs *blocks.Structure, pm *sparse.Matrix, a sched.Assignment, mode Mode, tol float64) {
	t.Helper()
	seq, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	par, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	pr := sched.Build(bs, a)
	if _, err := NewExecutorMode(par, pr, mode).Run(); err != nil {
		t.Fatal(err)
	}
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			sd, pd := seq.Data[j][bi], par.Data[j][bi]
			for k := range sd {
				if math.Abs(sd[k]-pd[k]) > tol*(1+math.Abs(sd[k])) {
					t.Fatalf("block (%d,%d) entry %d: seq %g par %g",
						bs.Cols[j].Blocks[bi].I, j, k, sd[k], pd[k])
				}
			}
		}
	}
}

// TestWorkStealingRandomizedBlockSizes stresses the stealing executor over
// randomized uniform block sizes, randomized irregular partitions, and
// varying grids, always comparing against the sequential factorization.
// Runs under -race in CI.
func TestWorkStealingRandomizedBlockSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	grids := []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}, {Pr: 2, Pc: 4}, {Pr: 4, Pc: 4}, {Pr: 3, Pc: 5}}
	iters := 8
	if testing.Short() {
		iters = 3
	}
	for i := 0; i < iters; i++ {
		m := gen.IrregularMesh(150+rng.Intn(150), 4+rng.Intn(3), 3, uint64(rng.Int63()))
		g := grids[rng.Intn(len(grids))]
		if i%2 == 0 {
			b := 2 + rng.Intn(15) // randomized uniform block size
			_, bs, pm := setup(t, m, ord.MinDegree, 0, b)
			compareToSequential(t, bs, pm, sched.Assignment{Map: mapping.Cyclic(g, bs.N())}, ModeWorkStealing, 1e-9)
		} else {
			maxPanel := 4 + rng.Intn(28) // randomized irregular panel cap
			bs, pm := setupIrregular(t, m, ord.MinDegree, 0, maxPanel)
			compareToSequential(t, bs, pm, sched.Assignment{Map: mapping.Cyclic(g, bs.N())}, ModeWorkStealing, 1e-9)
		}
	}
}

// TestWorkStealingCancelMidRun cancels at randomized points — including
// while workers are actively stealing from each other's deques — and
// requires every outcome to be either clean success or a context error,
// with the executor fully reusable afterwards. Runs under -race in CI.
func TestWorkStealingCancelMidRun(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(300, 6, 3, 77), ord.MinDegree, 0, 6)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 4, Pc: 4}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 30; i++ {
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(2_000_000)) // 0–2ms: lands anywhere in the run
		timer := time.AfterFunc(delay, cancel)
		_, err := ex.RunContext(ctx)
		timer.Stop()
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("iteration %d: unexpected error %v", i, err)
		}
	}
	// The executor must still produce a correct factor after all that.
	if err := f.Reload(pm.Val); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	b := make([]float64, pm.N)
	for i := range b {
		b[i] = 1
	}
	x := f.Solve(b)
	if r := pm.ResidualNorm(x, b); r > 1e-8 {
		t.Fatalf("residual %g after cancellation stress", r)
	}
}

// TestWorkStealingPivotInjection poisons randomized subsets of seed
// diagonal blocks and asserts the deterministic first-error contract under
// work stealing: every run of a given poison set reports the PivotError
// with the lowest (Block, Row). Runs under -race in CI.
func TestWorkStealingPivotInjection(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 3, Pc: 3}, bs.N())})
	var seeds []int
	for k := range bs.Cols {
		if pr.NMods[pr.BlockID(k, 0)] == 0 {
			seeds = append(seeds, k)
		}
	}
	if len(seeds) < 3 {
		t.Fatalf("want ≥3 seed panels, got %d", len(seeds))
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(seeds))
		poison := perm[:2+rng.Intn(2)]
		lowest := seeds[poison[0]]
		bad := pm.Clone()
		for _, pi := range poison {
			k := seeds[pi]
			if k < lowest {
				lowest = k
			}
			j := bs.Part.Start[k]
			bad.Val[bad.ColPtr[j]] = -3
		}
		f, err := numeric.New(bs, bad)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(f, pr)
		for run := 0; run < 10; run++ {
			if err := f.Reload(bad.Val); err != nil {
				t.Fatal(err)
			}
			_, err := ex.Run()
			var pe *kernels.PivotError
			if !errors.As(err, &pe) {
				t.Fatalf("trial %d run %d: got %v, want *PivotError", trial, run, err)
			}
			if pe.Block != lowest || pe.Row != bs.Part.Start[lowest] {
				t.Fatalf("trial %d run %d: PivotError{Block:%d Row:%d}, want {Block:%d Row:%d}",
					trial, run, pe.Block, pe.Row, lowest, bs.Part.Start[lowest])
			}
		}
	}
}

// TestSPMDModeEquivalence keeps the paper-faithful SPMD engine covered now
// that work stealing is the default: it must still match the sequential
// factorization across grids, block sizes, and the irregular partition.
func TestSPMDModeEquivalence(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 3}, {Pr: 4, Pc: 4}} {
		compareToSequential(t, bs, pm, sched.Assignment{Map: mapping.Cyclic(g, bs.N())}, ModeSPMD, 1e-9)
	}
	ibs, ipm := setupIrregular(t, gen.IrregularMesh(220, 5, 3, 5), ord.MinDegree, 0, 12)
	compareToSequential(t, ibs, ipm, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, ibs.N())}, ModeSPMD, 1e-9)
}

// TestSPMDPivotDeterminism mirrors TestPivotErrorDeterministic for the
// explicitly-selected SPMD engine.
func TestSPMDPivotDeterminism(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	var seeds []int
	for k := range bs.Cols {
		if pr.NMods[pr.BlockID(k, 0)] == 0 {
			seeds = append(seeds, k)
		}
	}
	lo, hi := seeds[0], seeds[len(seeds)-1]
	bad := pm.Clone()
	for _, k := range []int{lo, hi} {
		bad.Val[bad.ColPtr[bs.Part.Start[k]]] = -7
	}
	f, err := numeric.New(bs, bad)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutorMode(f, pr, ModeSPMD)
	for run := 0; run < 10; run++ {
		if err := f.Reload(bad.Val); err != nil {
			t.Fatal(err)
		}
		_, err := ex.Run()
		var pe *kernels.PivotError
		if !errors.As(err, &pe) {
			t.Fatalf("run %d: got %v, want *PivotError", run, err)
		}
		if pe.Block != lo {
			t.Fatalf("run %d: block %d, want %d", run, pe.Block, lo)
		}
	}
}
