package fanout

import (
	"math"
	"sync"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

// TestRestrictedExecutorsReassemble emulates a cluster in-process: the
// schedule's virtual processors are split across three "nodes", each with
// its own factor copy and a restricted executor; completed blocks cross
// between them via OnComplete → Inject, exactly as the TCP data plane
// does. The union of the three runs must equal the sequential
// factorization on every node's local slice.
func TestRestrictedExecutorsReassemble(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(250, 5, 3, 31), ord.MinDegree, 0, 8)
	a := sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 3}, bs.N())}
	pr := sched.Build(bs, a)
	const nodes = 3
	nodeOf := func(p int32) int { return int(p) % nodes }

	seq, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FactorSequential(); err != nil {
		t.Fatal(err)
	}

	fs := make([]*numeric.Factor, nodes)
	exs := make([]*Executor, nodes)
	var mus [nodes]sync.Mutex // serializes cross-node block copies per receiver
	for n := 0; n < nodes; n++ {
		if fs[n], err = numeric.New(bs, pm); err != nil {
			t.Fatal(err)
		}
	}
	for n := 0; n < nodes; n++ {
		n := n
		local := make([]bool, pr.NBlocks)
		for id := int32(0); id < int32(pr.NBlocks); id++ {
			local[id] = nodeOf(pr.Owner[id]) == n
		}
		exs[n] = NewExecutorRestricted(fs[n], pr, &Restriction{
			Local:   local,
			Workers: 2,
			OnComplete: func(id int32) {
				j, bi := pr.ColOf[id], pr.IdxOf[id]
				src := fs[n].Data[j][bi]
				for m := 0; m < nodes; m++ {
					if m == n {
						continue
					}
					mus[m].Lock()
					copy(fs[m].Data[j][bi], src)
					mus[m].Unlock()
					exs[m].Inject(id)
				}
			},
		})
	}

	var wg sync.WaitGroup
	errs := make([]error, nodes)
	stats := make([]Stats, nodes)
	for n := 0; n < nodes; n++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			stats[n], errs[n] = exs[n].Run()
		}(n)
	}
	wg.Wait()
	for n, err := range errs {
		if err != nil {
			t.Fatalf("node %d: %v", n, err)
		}
	}
	var flops int64
	for n := 0; n < nodes; n++ {
		flops += stats[n].Flops
	}
	if flops == 0 {
		t.Fatal("no flops recorded across nodes")
	}

	// Every node's local slice must match the sequential factor.
	for id := int32(0); id < int32(pr.NBlocks); id++ {
		n := nodeOf(pr.Owner[id])
		j, bi := pr.ColOf[id], pr.IdxOf[id]
		sd, pd := seq.Data[j][bi], fs[n].Data[j][bi]
		for k := range sd {
			if math.Abs(sd[k]-pd[k]) > 1e-9*(1+math.Abs(sd[k])) {
				t.Fatalf("node %d block %d entry %d: seq %g got %g", n, id, k, sd[k], pd[k])
			}
		}
	}
}

// TestRestrictedPredoneRestart emulates a failover epoch: factor fully
// once, then rebuild a factor where a prefix of blocks keeps its final
// data (predone) and the rest reverts to matrix values via ReloadWhere,
// and run a restricted executor over only the remaining blocks. The result
// must match the uninterrupted factorization.
func TestRestrictedPredoneRestart(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(200, 6, 3, 8), ord.MinDegree, 0, 6)
	a := sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())}
	pr := sched.Build(bs, a)

	full, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := full.FactorSequential(); err != nil {
		t.Fatal(err)
	}

	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	// "First epoch": full factorization, then pretend everything past 40%
	// of the blocks was lost with the dead node.
	if _, err := Run(f, pr); err != nil {
		t.Fatal(err)
	}
	predone := make([]bool, pr.NBlocks)
	for id := 0; id < pr.NBlocks*2/5; id++ {
		predone[id] = true
	}
	keep := func(j, bi int) bool { return predone[pr.BlockID(j, bi)] }
	if err := f.ReloadWhere(pm.Val, keep); err != nil {
		t.Fatal(err)
	}

	ex := NewExecutorRestricted(f, pr, &Restriction{Predone: predone, Workers: 3})
	if _, err := ex.Run(); err != nil {
		t.Fatal(err)
	}
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			sd, pd := full.Data[j][bi], f.Data[j][bi]
			for k := range sd {
				if math.Abs(sd[k]-pd[k]) > 1e-9*(1+math.Abs(sd[k])) {
					t.Fatalf("block (%d,%d) entry %d: full %g restart %g", j, bi, k, sd[k], pd[k])
				}
			}
		}
	}
}

// TestRestrictedThrottleStillCorrect checks the pacing hook changes only
// timing, never results, and that all-predone runs terminate immediately.
func TestRestrictedThrottleStillCorrect(t *testing.T) {
	_, bs, pm := setup(t, gen.IrregularMesh(120, 5, 3, 9), ord.MinDegree, 0, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	seq, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.FactorSequential(); err != nil {
		t.Fatal(err)
	}
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutorRestricted(f, pr, &Restriction{Workers: 2, FlopsPerSec: 5e8})
	st, err := ex.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Flops == 0 {
		t.Fatal("throttled run recorded no flops")
	}
	for j := range bs.Cols {
		for bi := range bs.Cols[j].Blocks {
			sd, pd := seq.Data[j][bi], f.Data[j][bi]
			for k := range sd {
				if math.Abs(sd[k]-pd[k]) > 1e-9*(1+math.Abs(sd[k])) {
					t.Fatalf("block (%d,%d) entry %d: seq %g throttled %g", j, bi, k, sd[k], pd[k])
				}
			}
		}
	}

	// All-predone: nothing to execute; Run must return promptly.
	pre := make([]bool, pr.NBlocks)
	for i := range pre {
		pre[i] = true
	}
	ex2 := NewExecutorRestricted(f, pr, &Restriction{Predone: pre})
	if _, err := ex2.Run(); err != nil {
		t.Fatal(err)
	}
}
