package fanout

import (
	"context"
	"errors"
	"testing"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sched"
)

// TestPivotErrorDeterministic poisons two seed diagonal blocks owned (in
// general) by different processors and runs the parallel factorization many
// times: every run must report the same structured PivotError — the lowest
// (Block, Row) — no matter how the goroutines interleave. Runs under -race
// in CI.
func TestPivotErrorDeterministic(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	for _, g := range []mapping.Grid{{Pr: 2, Pc: 2}, {Pr: 3, Pc: 3}} {
		pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(g, bs.N())})

		// Seed panels: diagonal blocks with no pending modifications. These
		// always execute on every run, so breakdowns there are fully
		// deterministic.
		var seeds []int
		for k := range bs.Cols {
			if pr.NMods[pr.BlockID(k, 0)] == 0 {
				seeds = append(seeds, k)
			}
		}
		if len(seeds) < 2 {
			t.Fatalf("grid %v: want ≥2 seed panels, got %d", g, len(seeds))
		}
		lo, hi := seeds[0], seeds[len(seeds)-1]

		bad := pm.Clone()
		for _, k := range []int{lo, hi} {
			j := bs.Part.Start[k]
			bad.Val[bad.ColPtr[j]] = -7
		}
		f, err := numeric.New(bs, bad)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExecutor(f, pr)
		for run := 0; run < 25; run++ {
			if err := f.Reload(bad.Val); err != nil {
				t.Fatal(err)
			}
			_, err := ex.Run()
			var pe *kernels.PivotError
			if !errors.As(err, &pe) {
				t.Fatalf("grid %v run %d: got %v, want *PivotError", g, run, err)
			}
			if !errors.Is(err, kernels.ErrNotPositiveDefinite) {
				t.Fatalf("grid %v run %d: %v does not match sentinel", g, run, err)
			}
			if pe.Block != lo || pe.Row != bs.Part.Start[lo] {
				t.Fatalf("grid %v run %d: PivotError{Block:%d Row:%d}, want {Block:%d Row:%d}",
					g, run, pe.Block, pe.Row, lo, bs.Part.Start[lo])
			}
		}
	}
}

// TestRefactorAfterBreakdown checks the executor is reusable after a failed
// run: reset must clear the abort machinery and drain stranded messages so
// a Reload + Run on good values succeeds.
func TestRefactorAfterBreakdown(t *testing.T) {
	_, bs, pm := setup(t, gen.Grid2D(10), ord.NDGrid2D, 10, 4)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	bad := pm.Clone()
	bad.Val[bad.ColPtr[0]] = -5
	f, err := numeric.New(bs, bad)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)
	for cycle := 0; cycle < 3; cycle++ {
		if err := f.Reload(bad.Val); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); !errors.Is(err, kernels.ErrNotPositiveDefinite) {
			t.Fatalf("cycle %d: bad values: got %v", cycle, err)
		}
		if err := f.Reload(pm.Val); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Run(); err != nil {
			t.Fatalf("cycle %d: good values after breakdown: %v", cycle, err)
		}
		b := make([]float64, pm.N)
		for i := range b {
			b[i] = 1
		}
		x := f.Solve(b)
		if r := pm.ResidualNorm(x, b); r > 1e-8 {
			t.Fatalf("cycle %d: residual %g after recovery", cycle, r)
		}
	}
}

// TestCancellationLatency asserts the cancellation-observation bound: every
// worker polls the abort channel between block operations, so RunContext
// must return within a generous wall-clock budget of the cancel — far less
// than a full factorization. Runs under -race in CI.
func TestCancellationLatency(t *testing.T) {
	_, bs, pm := setup(t, gen.Cube3D(10), ord.NDCube3D, 10, 8)
	pr := sched.Build(bs, sched.Assignment{Map: mapping.Cyclic(mapping.Grid{Pr: 2, Pc: 2}, bs.N())})
	f, err := numeric.New(bs, pm)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExecutor(f, pr)

	// Pre-cancelled context: the run must abort after at most the seed
	// operations plus one block operation per worker.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = ex.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: got %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("pre-cancelled run took %v to abort", d)
	}

	// Mid-run cancel: the extra time after cancel() fires is bounded by one
	// block operation per worker (generous 2s budget; a full factorization
	// of this problem is orders of magnitude more block operations).
	if err := f.Reload(pm.Val); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	var cancelled time.Time
	timer := time.AfterFunc(5*time.Millisecond, func() {
		cancelled = time.Now()
		cancel2()
	})
	defer timer.Stop()
	_, err = ex.RunContext(ctx2)
	if err == nil {
		t.Skip("factorization finished before the cancel fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v", err)
	}
	if d := time.Since(cancelled); d > 2*time.Second {
		t.Fatalf("run kept going %v after cancellation", d)
	}
}
