package fanout

import (
	"fmt"
	"sync"

	"blockfanout/internal/kernels"
	"blockfanout/internal/numeric"
	"blockfanout/internal/sched"
)

// Solve performs the triangular solves L·(Lᵀ·x) = b in parallel under the
// same block ownership as the factorization: the owner of each diagonal
// block holds (and solves) that panel's segment of the solution, and the
// owner of each off-diagonal block L_IK computes that block's contribution
// — L_IK·x_K during the forward sweep, L_IKᵀ·x_I during the backward sweep
// — shipping partial sums to the segment owners. The two sweeps run as
// separate SPMD phases over goroutine-processors connected by channels,
// mirroring how a distributed solver reuses the factor's data distribution.
//
// f must hold a completed factorization over pr's block structure; b is
// indexed in the factored (permuted) space and is not modified.
func Solve(f *numeric.Factor, pr *sched.Program, b []float64) ([]float64, error) {
	bs := f.BS
	part := bs.Part
	n := len(part.PanelOf)
	if len(b) != n {
		return nil, fmt.Errorf("fanout: rhs length %d, want %d", len(b), n)
	}
	x := append([]float64(nil), b...)

	if err := solveSweep(f, pr, x, false); err != nil {
		return nil, err
	}
	if err := solveSweep(f, pr, x, true); err != nil {
		return nil, err
	}
	return x, nil
}

// solveMsg carries either a solved panel segment (vec indexed by panel
// column) or a partial contribution (vec indexed parallel to rows).
type solveMsg struct {
	panel   int
	contrib bool
	rows    []int
	vec     []float64
}

// solveSweep runs one triangular sweep. backward=false computes y with
// L·y = x in place; backward=true computes z with Lᵀ·z = x in place.
//
// Dependency counting:
//
//	forward : panel K's segment is solvable once the contributions of all
//	          blocks in block ROW K (columns < K) have been applied; a
//	          solved segment is broadcast down its COLUMN.
//	backward: panel K's segment is solvable once the contributions of all
//	          blocks in block COLUMN K (rows > K) have been applied; a
//	          solved segment is broadcast along its ROW (to columns < K).
func solveSweep(f *numeric.Factor, pr *sched.Program, x []float64, backward bool) error {
	bs := f.BS
	np := pr.NProc

	// diagOwner[J]: processor holding panel J's segment.
	nPanels := bs.N()
	diagOwner := make([]int32, nPanels)
	for j := 0; j < nPanels; j++ {
		diagOwner[j] = pr.Owner[pr.BlockID(j, 0)]
	}

	// Pending contribution counts per panel, and per-processor incoming
	// message counts (to size channels so sends never block).
	pending := make([]int32, nPanels)
	incoming := make([]int, np)
	for k := 0; k < nPanels; k++ {
		col := &bs.Cols[k]
		for bi := 1; bi < len(col.Blocks); bi++ {
			blkOwner := pr.Owner[pr.BlockID(k, bi)]
			var destPanel int
			if backward {
				destPanel = k // contribution flows to the column's panel
			} else {
				destPanel = col.Blocks[bi].I // to the row's panel
			}
			pending[destPanel]++
			if blkOwner != diagOwner[destPanel] {
				incoming[diagOwner[destPanel]]++
			}
			// The solved segment this block needs:
			var srcPanel int
			if backward {
				srcPanel = col.Blocks[bi].I
			} else {
				srcPanel = k
			}
			if diagOwner[srcPanel] != blkOwner {
				incoming[blkOwner]++ // it will receive that broadcast
			}
		}
	}
	// Broadcast dedup: a processor owning several blocks needing the same
	// segment receives it once per block above; dedup to exact counts.
	// (Overcounting only wastes buffer space, which is harmless, so the
	// simple per-block count is kept.)

	inboxes := make([]chan solveMsg, np)
	for p := 0; p < np; p++ {
		inboxes[p] = make(chan solveMsg, incoming[p]+1)
	}

	// remainingSolves[p]: panels whose segment p must still solve.
	// remainingBlocks[p]: off-diagonal contributions p must still compute.
	remainingSolves := make([]int, np)
	remainingBlocks := make([]int, np)
	for j := 0; j < nPanels; j++ {
		remainingSolves[diagOwner[j]]++
	}
	for k := 0; k < nPanels; k++ {
		for bi := 1; bi < len(bs.Cols[k].Blocks); bi++ {
			remainingBlocks[pr.Owner[pr.BlockID(k, bi)]]++
		}
	}

	// rowBlocks[j] lists the off-diagonal blocks in block row j, needed by
	// the backward sweep (whose broadcasts travel along rows).
	rowBlocks := make([][]blockRef, nPanels)
	if backward {
		for k := 0; k < nPanels; k++ {
			for bi := 1; bi < len(bs.Cols[k].Blocks); bi++ {
				i := bs.Cols[k].Blocks[bi].I
				rowBlocks[i] = append(rowBlocks[i], blockRef{k: int32(k), bi: int32(bi)})
			}
		}
	}

	var wg sync.WaitGroup
	wg.Add(np)
	for p := 0; p < np; p++ {
		go func(me int32) {
			defer wg.Done()
			solveProc(me, f, pr, x, backward, diagOwner, pending, rowBlocks,
				inboxes, remainingSolves[me], remainingBlocks[me])
		}(int32(p))
	}
	wg.Wait()
	return nil
}

// blockRef addresses one off-diagonal block by column and index.
type blockRef struct{ k, bi int32 }

// solveProc is the per-processor body of one sweep. Shared state access is
// partitioned: x segments and pending counters of a panel are touched only
// by its diagonal owner; factor data is read-only.
func solveProc(me int32, f *numeric.Factor, pr *sched.Program, x []float64,
	backward bool, diagOwner []int32, pending []int32, rowBlocks [][]blockRef,
	inboxes []chan solveMsg, remainingSolves, remainingBlocks int) {

	bs := f.BS
	part := bs.Part

	// segment solve + broadcast for panel j (diag owner only).
	var local []solveMsg
	send := func(p int32, m solveMsg) {
		if p == me {
			local = append(local, m)
		} else {
			inboxes[p] <- m
		}
	}

	// blocksNeeding returns the processors that need panel j's solved
	// segment, and the per-owner block work is triggered on receipt.
	broadcast := func(j int) {
		seg := x[part.Start[j]:part.Start[j+1]]
		msg := solveMsg{panel: j, vec: append([]float64(nil), seg...)}
		sent := map[int32]bool{}
		if backward {
			for _, ref := range rowBlocks[j] {
				o := pr.Owner[pr.BlockID(int(ref.k), int(ref.bi))]
				if !sent[o] {
					sent[o] = true
					send(o, msg)
				}
			}
		} else {
			for bi := 1; bi < len(bs.Cols[j].Blocks); bi++ {
				o := pr.Owner[pr.BlockID(j, bi)]
				if !sent[o] {
					sent[o] = true
					send(o, msg)
				}
			}
		}
	}

	solveSegment := func(j int) {
		w := part.Width(j)
		seg := x[part.Start[j] : part.Start[j]+w]
		if backward {
			kernels.BackSolveDiag(f.Data[j][0], w, seg)
		} else {
			kernels.ForwardSolveDiag(f.Data[j][0], w, seg)
		}
		remainingSolves--
		broadcast(j)
	}

	// applyContrib folds a contribution into panel destPanel (diag owner
	// only) and solves the segment when the last one lands.
	applyContrib := func(destPanel int, rows []int, vec []float64) {
		for t, r := range rows {
			x[r] -= vec[t]
		}
		pending[destPanel]--
		if pending[destPanel] == 0 {
			solveSegment(destPanel)
		}
	}

	// blockContrib computes one off-diagonal block's contribution given
	// the solved source segment.
	blockContrib := func(k, bi int, seg []float64) {
		blk := &bs.Cols[k].Blocks[bi]
		w := part.Width(k)
		data := f.Data[k][bi]
		if backward {
			// Contribution to panel k: (L_IKᵀ · x_I) indexed by k's cols.
			// seg holds panel I = blk.I's segment; block rows are global.
			base := part.Start[blk.I]
			out := make([]float64, w)
			for s, g := range blk.Rows {
				xi := seg[g-base]
				row := data[s*w : s*w+w]
				for t := 0; t < w; t++ {
					out[t] += row[t] * xi
				}
			}
			rows := make([]int, w)
			for t := 0; t < w; t++ {
				rows[t] = part.Start[k] + t
			}
			dest := diagOwner[k]
			send(dest, solveMsg{panel: k, contrib: true, rows: rows, vec: out})
		} else {
			// Contribution to panel I: (L_IK · x_K) indexed by blk.Rows.
			out := make([]float64, len(blk.Rows))
			for s := range blk.Rows {
				row := data[s*w : s*w+w]
				var sum float64
				for t := 0; t < w; t++ {
					sum += row[t] * seg[t]
				}
				out[s] = sum
			}
			dest := diagOwner[blk.I]
			send(dest, solveMsg{panel: blk.I, contrib: true, rows: blk.Rows, vec: out})
		}
		remainingBlocks--
	}

	// handleSegment runs every owned block that consumes segment j.
	handleSegment := func(j int, seg []float64) {
		if backward {
			// Owned blocks in row j (the broadcast targeted us because we
			// own at least one; we may own several).
			for _, ref := range rowBlocks[j] {
				if pr.Owner[pr.BlockID(int(ref.k), int(ref.bi))] == me {
					blockContrib(int(ref.k), int(ref.bi), seg)
				}
			}
		} else {
			for bi := 1; bi < len(bs.Cols[j].Blocks); bi++ {
				if pr.Owner[pr.BlockID(j, bi)] == me {
					blockContrib(j, bi, seg)
				}
			}
		}
	}

	// Seed: owned panels with no pending contributions solve immediately.
	for j := 0; j < bs.N(); j++ {
		if diagOwner[j] == me && pending[j] == 0 {
			// Guard: pending may be zero for panels with contributions
			// already counted; zero means genuinely independent.
			solveSegment(j)
		}
	}

	for remainingSolves > 0 || remainingBlocks > 0 {
		var m solveMsg
		if len(local) > 0 {
			m = local[len(local)-1]
			local = local[:len(local)-1]
		} else {
			m = <-inboxes[me]
		}
		if m.contrib {
			applyContrib(m.panel, m.rows, m.vec)
		} else {
			handleSegment(m.panel, m.vec)
		}
	}
}
