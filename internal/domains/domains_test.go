package domains

import (
	"testing"

	"blockfanout/internal/blocks"
	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

func structureFor(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim, b int) (*symbolic.Structure, *blocks.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.DefaultAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	bs, err := blocks.Build(st, blocks.NewPartition(st, b))
	if err != nil {
		t.Fatal(err)
	}
	return st, bs
}

func TestSelectBasics(t *testing.T) {
	st, bs := structureFor(t, gen.Grid2D(20), ord.NDGrid2D, 20, 4)
	p := 9
	d := Select(st, bs, p, 2)
	if len(d.PanelOwner) != bs.N() || len(d.BaseLoad) != p {
		t.Fatal("sizes wrong")
	}
	if d.NDomains == 0 {
		t.Fatal("no domains selected on a grid problem")
	}
	// Base loads + root work must equal total work.
	var base int64
	for _, l := range d.BaseLoad {
		base += l
	}
	if base+d.RootWork != bs.TotalWork {
		t.Fatalf("base %d + root %d != total %d", base, d.RootWork, bs.TotalWork)
	}
	// Owners in range; root panels marked -1.
	roots := 0
	for _, o := range d.PanelOwner {
		if o < -1 || o >= p {
			t.Fatalf("owner %d out of range", o)
		}
		if o == -1 {
			roots++
		}
	}
	if roots == 0 {
		t.Fatal("no root portion left")
	}
}

func TestDomainsAreSubtreeClosed(t *testing.T) {
	// If a panel is in a domain, every panel of every descendant
	// supernode is in the same domain.
	st, bs := structureFor(t, gen.IrregularMesh(400, 5, 3, 66), ord.MinDegree, 0, 8)
	d := Select(st, bs, 8, 2)
	part := bs.Part
	// supernode → owner (or -1); all panels of a supernode share owners.
	snOwner := make([]int, len(st.Snodes))
	for s := range snOwner {
		snOwner[s] = -2
	}
	for pn := 0; pn < part.N(); pn++ {
		s := part.SnodeOf[pn]
		if snOwner[s] == -2 {
			snOwner[s] = d.PanelOwner[pn]
		} else if snOwner[s] != d.PanelOwner[pn] {
			t.Fatalf("supernode %d split across owners", s)
		}
	}
	for s, par := range st.Parent {
		if par < 0 {
			continue
		}
		// A domain child's parent is either the same domain or any other
		// region; but a non-domain (root) supernode must never have a
		// domain ancestor... equivalently: if parent is in a domain, the
		// child must be in the same domain.
		if snOwner[par] >= 0 && snOwner[s] != snOwner[par] {
			t.Fatalf("supernode %d (owner %d) under domain parent %d (owner %d)",
				s, snOwner[s], par, snOwner[par])
		}
	}
}

func TestDomainLoadBalanced(t *testing.T) {
	st, bs := structureFor(t, gen.Cube3D(9), ord.NDCube3D, 9, 6)
	p := 16
	d := Select(st, bs, p, 2)
	var mx, mn int64
	mn = 1 << 62
	for _, l := range d.BaseLoad {
		if l > mx {
			mx = l
		}
		if l < mn {
			mn = l
		}
	}
	if mx == 0 {
		t.Skip("no domain work on this problem")
	}
	// Greedy LPT over many small domains should stay within ~2.5× between
	// lightest and heaviest bins.
	if mn == 0 || float64(mx)/float64(mn) > 2.5 {
		t.Fatalf("domain packing skewed: min %d max %d (ndomains=%d)", mn, mx, d.NDomains)
	}
}

func TestBetaDefaulting(t *testing.T) {
	st, bs := structureFor(t, gen.Grid2D(12), ord.NDGrid2D, 12, 4)
	d := Select(st, bs, 4, 0) // beta ≤ 0 → default 2
	if d.NDomains == 0 {
		t.Fatal("default beta selected no domains")
	}
}

func TestLargerBetaMakesSmallerDomains(t *testing.T) {
	st, bs := structureFor(t, gen.Grid2D(24), ord.NDGrid2D, 24, 4)
	d2 := Select(st, bs, 8, 2)
	d8 := Select(st, bs, 8, 8)
	if d8.NDomains < d2.NDomains {
		t.Fatalf("beta=8 gave fewer domains (%d) than beta=2 (%d)", d8.NDomains, d2.NDomains)
	}
	if d8.RootWork < d2.RootWork {
		t.Fatalf("beta=8 left less root work (%d) than beta=2 (%d)", d8.RootWork, d2.RootWork)
	}
}
