// Package domains implements the domain/root split of the block fan-out
// method (§2.3): the matrix columns corresponding to disjoint subtrees of
// the elimination tree form the domain portion, each subtree being assigned
// wholly to one processor (a 1-D block-column mapping), while the remaining
// root portion is mapped 2-D. Domains drastically reduce interprocessor
// communication because all block operations whose destination lies in a
// domain column are local to its owner.
package domains

import (
	"sort"

	"blockfanout/internal/blocks"
	"blockfanout/internal/symbolic"
)

// Domains records a domain selection and its processor assignment.
type Domains struct {
	// PanelOwner maps each panel to its domain owner processor, or -1 if
	// the panel belongs to the 2-D mapped root portion.
	PanelOwner []int
	// BaseLoad is the total block work of the domain panels owned by each
	// processor (the per-processor base load on top of the 2-D portion).
	BaseLoad []int64
	// NDomains is the number of disjoint subtree domains selected.
	NDomains int
	// RootWork is the block work remaining in the 2-D mapped portion.
	RootWork int64
}

// Select chooses domains by descending the supernode elimination forest:
// starting from the forest roots, the heaviest candidate subtree is
// repeatedly replaced by its children (its root moving to the 2-D mapped
// root portion) until no domain exceeds totalWork/(beta·P) and there are at
// least ceil(beta·P) domains (or nothing is left to split). The resulting
// subtree domains are greedy bin-packed (LPT) onto the P processors.
// beta ≈ 2 reproduces the paper's configuration; larger beta makes more,
// smaller domains — better balance, less communication locality.
func Select(st *symbolic.Structure, bs *blocks.Structure, p int, beta float64) *Domains {
	ns := len(st.Snodes)
	part := bs.Part
	workJ := bs.WorkJ()

	snWork := make([]int64, ns)
	snPanels := make([][]int, ns)
	for pn := 0; pn < part.N(); pn++ {
		s := part.SnodeOf[pn]
		snWork[s] += workJ[pn]
		snPanels[s] = append(snPanels[s], pn)
	}
	subWork := append([]int64(nil), snWork...)
	children := make([][]int, ns)
	var roots []int
	for s := 0; s < ns; s++ {
		if par := st.Parent[s]; par >= 0 {
			subWork[par] += subWork[s] // children precede parents
			children[par] = append(children[par], s)
		} else {
			roots = append(roots, s)
		}
	}
	var total int64
	for _, r := range roots {
		total += subWork[r]
	}
	if beta <= 0 {
		beta = 2
	}
	threshold := int64(float64(total) / (beta * float64(p)))
	minDomains := int(beta*float64(p) + 0.999)

	d := &Domains{
		PanelOwner: make([]int, part.N()),
		BaseLoad:   make([]int64, p),
	}
	for i := range d.PanelOwner {
		d.PanelOwner[i] = -1
	}

	type domain struct {
		root int
		work int64
	}
	// Max-heap of candidate domains ordered by subtree work, seeded with
	// the forest roots; pop-and-split until the stopping rule holds.
	doms := make([]domain, 0, minDomains*2)
	push := func(s int) {
		doms = append(doms, domain{root: s, work: subWork[s]})
		for i := len(doms) - 1; i > 0; {
			up := (i - 1) / 2
			if doms[up].work >= doms[i].work {
				break
			}
			doms[up], doms[i] = doms[i], doms[up]
			i = up
		}
	}
	pop := func() domain {
		top := doms[0]
		last := len(doms) - 1
		doms[0] = doms[last]
		doms = doms[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			big := i
			if l < len(doms) && doms[l].work > doms[big].work {
				big = l
			}
			if r < len(doms) && doms[r].work > doms[big].work {
				big = r
			}
			if big == i {
				break
			}
			doms[i], doms[big] = doms[big], doms[i]
			i = big
		}
		return top
	}
	for _, r := range roots {
		push(r)
	}
	var final []domain
	for len(doms) > 0 {
		top := pop()
		needSplit := top.work > threshold || len(doms)+len(final)+1 < minDomains
		if needSplit && len(children[top.root]) > 0 {
			for _, c := range children[top.root] {
				push(c)
			}
			continue // top.root's own panels join the 2-D root portion
		}
		if top.work > threshold {
			// Unsplittable but too large to live on one processor (e.g.
			// a dense matrix's single supernode): leave it 2-D mapped.
			continue
		}
		final = append(final, top)
	}
	doms = final
	d.NDomains = len(doms)

	// Greedy longest-processing-time packing.
	sort.Slice(doms, func(a, b int) bool { return doms[a].work > doms[b].work })
	var markPanels func(s, owner int)
	markPanels = func(s, owner int) {
		for _, pn := range snPanels[s] {
			d.PanelOwner[pn] = owner
		}
		for _, c := range children[s] {
			markPanels(c, owner)
		}
	}
	for _, dom := range doms {
		best := 0
		for q := 1; q < p; q++ {
			if d.BaseLoad[q] < d.BaseLoad[best] {
				best = q
			}
		}
		d.BaseLoad[best] += dom.work
		markPanels(dom.root, best)
	}
	d.RootWork = bs.TotalWork
	for _, l := range d.BaseLoad {
		d.RootWork -= l
	}
	return d
}
