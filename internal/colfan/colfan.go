// Package colfan implements the traditional 1-D column fan-out sparse
// Cholesky method the paper's introduction argues against: columns are
// distributed cyclically over the processors, a completed factor column is
// fanned out to every processor owning a column it updates, and receiving
// processors apply the cmod(j,k) updates in data-driven order. It is the
// "first and more traditional approach" baseline — communication volume
// grows linearly in P and the column-level task graph has a long critical
// path — implemented for real with one goroutine per processor, so its
// message counts and results can be compared against the 2-D block method.
package colfan

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// ErrNotPositiveDefinite reports a non-positive pivot.
var ErrNotPositiveDefinite = errors.New("colfan: matrix is not positive definite")

// Symbolic holds explicit per-column factor structures, expanded from the
// supernodal analysis (column j's below-diagonal rows, ascending).
type Symbolic struct {
	N    int
	Ptr  []int64
	Rows []int32
}

// Expand converts a supernodal structure into per-column structures:
// column j of supernode S has rows {j+1..last(S)} ∪ Rows(S).
func Expand(st *symbolic.Structure) *Symbolic {
	n := st.N
	sym := &Symbolic{N: n, Ptr: make([]int64, n+1)}
	var total int64
	for s, sn := range st.Snodes {
		below := int64(len(st.Rows[s]))
		for t := 0; t < sn.Width; t++ {
			j := sn.First + t
			sym.Ptr[j+1] = int64(sn.Width-1-t) + below
			total += sym.Ptr[j+1]
		}
	}
	for j := 0; j < n; j++ {
		sym.Ptr[j+1] += sym.Ptr[j]
	}
	sym.Rows = make([]int32, total)
	for s, sn := range st.Snodes {
		for t := 0; t < sn.Width; t++ {
			j := sn.First + t
			p := sym.Ptr[j]
			for u := t + 1; u < sn.Width; u++ {
				sym.Rows[p] = int32(sn.First + u)
				p++
			}
			for _, r := range st.Rows[s] {
				sym.Rows[p] = int32(r)
				p++
			}
		}
	}
	return sym
}

// Struct returns column j's below-diagonal rows.
func (s *Symbolic) Struct(j int) []int32 { return s.Rows[s.Ptr[j]:s.Ptr[j+1]] }

// NNZ returns the below-diagonal entry count.
func (s *Symbolic) NNZ() int64 { return int64(len(s.Rows)) }

// Factor is the computed column-compressed factor (values parallel to the
// symbolic structure).
type Factor struct {
	Sym  *Symbolic
	Diag []float64
	Val  []float64
}

// Solve solves L·Lᵀ·x = b with the computed factor (sequentially; the
// method's interest is the factorization's communication pattern).
func (f *Factor) Solve(b []float64) []float64 {
	x := append([]float64(nil), b...)
	n := f.Sym.N
	for j := 0; j < n; j++ {
		x[j] /= f.Diag[j]
		xj := x[j]
		st := f.Sym.Struct(j)
		vals := f.Val[f.Sym.Ptr[j]:f.Sym.Ptr[j+1]]
		for t, r := range st {
			x[r] -= vals[t] * xj
		}
	}
	for j := n - 1; j >= 0; j-- {
		st := f.Sym.Struct(j)
		vals := f.Val[f.Sym.Ptr[j]:f.Sym.Ptr[j+1]]
		s := x[j]
		for t, r := range st {
			s -= vals[t] * x[r]
		}
		x[j] = s / f.Diag[j]
	}
	return x
}

// Stats reports the parallel run's communication.
type Stats struct {
	Procs    int
	Messages int64
	Bytes    int64
}

// Run factors a (already permuted/postordered) with the column fan-out
// method on p goroutine-processors under the cyclic column mapping
// owner(j) = j mod p.
func Run(a *sparse.Matrix, sym *Symbolic, p int) (*Factor, Stats, error) {
	if a.N != sym.N {
		return nil, Stats{}, fmt.Errorf("colfan: matrix n=%d vs symbolic n=%d", a.N, sym.N)
	}
	n := a.N
	f := &Factor{
		Sym:  sym,
		Diag: make([]float64, n),
		Val:  make([]float64, len(sym.Rows)),
	}
	// Scatter A into the factor skeleton.
	for j := 0; j < n; j++ {
		f.Diag[j] = a.Val[a.ColPtr[j]]
		st := sym.Struct(j)
		base := sym.Ptr[j]
		for q := a.ColPtr[j] + 1; q < a.ColPtr[j+1]; q++ {
			r := int32(a.RowInd[q])
			k := sort.Search(len(st), func(t int) bool { return st[t] >= r })
			if k >= len(st) || st[k] != r {
				return nil, Stats{}, fmt.Errorf("colfan: A(%d,%d) outside structure", r, j)
			}
			f.Val[base+int64(k)] = a.Val[q]
		}
	}

	// nmods[j]: number of columns k<j updating j. consumers[k]: distinct
	// processors owning a column in struct(k). Per-proc incoming counts
	// size the channels so sends never block.
	nmods := make([]int32, n)
	consumers := make([][]int32, n)
	incoming := make([]int, p)
	procMark := make([]int, p)
	for i := range procMark {
		procMark[i] = -1
	}
	var stats Stats
	for k := 0; k < n; k++ {
		st := sym.Struct(k)
		for _, r := range st {
			nmods[r]++
		}
		for _, r := range st {
			o := int(r) % p
			if procMark[o] != k {
				procMark[o] = k
				consumers[k] = append(consumers[k], int32(o))
				if o != k%p {
					incoming[o]++
					stats.Messages++
					stats.Bytes += int64(len(st)+1)*8 + 16
				}
			}
		}
	}
	stats.Procs = p

	inboxes := make([]chan int32, p)
	for q := 0; q < p; q++ {
		inboxes[q] = make(chan int32, incoming[q]+1)
	}

	abort := make(chan struct{})
	var abortOnce sync.Once
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		abortOnce.Do(func() { close(abort) })
	}

	var wg sync.WaitGroup
	wg.Add(p)
	for q := 0; q < p; q++ {
		go func(me int32) {
			defer wg.Done()
			runProc(me, int32(p), f, nmods, consumers, inboxes, abort, fail)
		}(int32(q))
	}
	wg.Wait()
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return f, stats, nil
}

// runProc executes one processor of the column fan-out method. Column
// values of owned columns are touched only by their owner; completed
// columns are read-only (happens-before via channel delivery).
func runProc(me, p int32, f *Factor, nmods []int32, consumers [][]int32,
	inboxes []chan int32, abort chan struct{}, fail func(error)) {

	sym := f.Sym
	n := int32(sym.N)
	remaining := 0
	for j := me; j < n; j += p {
		remaining++
	}
	if remaining == 0 {
		return
	}
	var local []int32

	// complete performs cdiv(j) and fans column j out.
	complete := func(j int32) {
		d := f.Diag[j]
		if d <= 0 {
			fail(fmt.Errorf("%w (column %d)", ErrNotPositiveDefinite, j))
			return
		}
		d = math.Sqrt(d)
		f.Diag[j] = d
		vals := f.Val[sym.Ptr[j]:sym.Ptr[j+1]]
		for t := range vals {
			vals[t] /= d
		}
		remaining--
		for _, c := range consumers[j] {
			if c == me {
				local = append(local, j)
			} else {
				inboxes[c] <- j
			}
		}
	}

	// handle applies cmod(j,k) for every owned column j updated by k: the
	// rows of struct(k) beyond j are located in struct(j) by a single
	// merge scan (fill containment guarantees they are all present).
	handle := func(k int32) bool {
		st := sym.Struct(int(k))
		vals := f.Val[sym.Ptr[k]:sym.Ptr[k+1]]
		for s, j := range st {
			if j%p != me {
				continue
			}
			ljk := vals[s]
			f.Diag[j] -= ljk * ljk
			tj := sym.Struct(int(j))
			vj := f.Val[sym.Ptr[j]:sym.Ptr[j+1]]
			ti := 0
			for u := s + 1; u < len(st); u++ {
				r := st[u]
				for ti < len(tj) && tj[ti] < r {
					ti++
				}
				if ti >= len(tj) || tj[ti] != r {
					fail(fmt.Errorf("colfan: row %d of column %d missing from column %d", r, k, j))
					return false
				}
				vj[ti] -= ljk * vals[u]
				ti++
			}
			nmods[j]--
			if nmods[j] == 0 {
				complete(j)
			}
		}
		return true
	}

	// Seed: owned columns with no incoming updates.
	for j := me; j < n; j += p {
		if nmods[j] == 0 {
			complete(j)
		}
	}

	for remaining > 0 {
		var k int32
		if len(local) > 0 {
			k = local[len(local)-1]
			local = local[:len(local)-1]
		} else {
			select {
			case k = <-inboxes[me]:
			case <-abort:
				return
			}
		}
		if !handle(k) {
			return
		}
	}
}
