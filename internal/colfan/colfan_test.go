package colfan

import (
	"math"
	"testing"

	"blockfanout/internal/etree"
	"blockfanout/internal/gen"
	ord "blockfanout/internal/order"
	"blockfanout/internal/refchol"
	"blockfanout/internal/sparse"
	"blockfanout/internal/symbolic"
)

// prep returns the postordered matrix and its supernodal analysis (exact
// structure so column structures match refchol's fill exactly).
func prep(t *testing.T, m *sparse.Matrix, method ord.Method, gridDim int) (*sparse.Matrix, *symbolic.Structure) {
	t.Helper()
	p, err := ord.Compute(method, m, gridDim)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := m.Permute(p)
	if err != nil {
		t.Fatal(err)
	}
	po := etree.Build(m1).Postorder()
	m2, err := m1.Permute(po)
	if err != nil {
		t.Fatal(err)
	}
	st, err := symbolic.Analyze(m2, symbolic.NoAmalgamation())
	if err != nil {
		t.Fatal(err)
	}
	return m2, st
}

func TestExpandMatchesColCounts(t *testing.T) {
	m, st := prep(t, gen.Grid2D(10), ord.NDGrid2D, 10)
	sym := Expand(st)
	counts := etree.Build(m).ColCounts()
	for j := 0; j < m.N; j++ {
		if len(sym.Struct(j)) != counts[j]-1 {
			t.Fatalf("column %d struct %d, want %d", j, len(sym.Struct(j)), counts[j]-1)
		}
		st := sym.Struct(j)
		for t2 := 1; t2 < len(st); t2++ {
			if st[t2] <= st[t2-1] {
				t.Fatalf("column %d rows unsorted", j)
			}
		}
	}
	if sym.NNZ() != etree.FactorStats(counts).NZinL {
		t.Fatal("total nnz mismatch")
	}
}

func TestRunMatchesReference(t *testing.T) {
	m, st := prep(t, gen.IrregularMesh(220, 5, 3, 33), ord.MinDegree, 0)
	sym := Expand(st)
	ref, err := refchol.Compute(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 8} {
		f, stats, err := Run(m, sym, p)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if stats.Procs != p {
			t.Fatal("stats procs")
		}
		for j := 0; j < m.N; j++ {
			if math.Abs(f.Diag[j]-ref.Diag[j]) > 1e-9*(1+ref.Diag[j]) {
				t.Fatalf("P=%d: diag %d: %g vs %g", p, j, f.Diag[j], ref.Diag[j])
			}
			stj := sym.Struct(j)
			vals := f.Val[sym.Ptr[j]:sym.Ptr[j+1]]
			for q, r := range stj {
				want := ref.At(int(r), j)
				if math.Abs(vals[q]-want) > 1e-9*(1+math.Abs(want)) {
					t.Fatalf("P=%d: L(%d,%d)=%g, want %g", p, r, j, vals[q], want)
				}
			}
		}
	}
}

func TestSolve(t *testing.T) {
	m, st := prep(t, gen.Cube3D(5), ord.NDCube3D, 5)
	f, _, err := Run(m, Expand(st), 4)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x := f.Solve(b)
	if r := m.ResidualNorm(x, b); r > 1e-9 {
		t.Fatalf("residual %g", r)
	}
}

func TestMessagesGrowWithP(t *testing.T) {
	m, st := prep(t, gen.Grid2D(20), ord.NDGrid2D, 20)
	sym := Expand(st)
	prev := int64(-1)
	for _, p := range []int{1, 2, 4, 8, 16} {
		_, stats, err := Run(m, sym, p)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 && stats.Messages != 0 {
			t.Fatalf("P=1 sent %d messages", stats.Messages)
		}
		if stats.Bytes < prev {
			t.Fatalf("volume not monotone at P=%d", p)
		}
		prev = stats.Bytes
	}
}

func TestNotPositiveDefinite(t *testing.T) {
	m, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6)
	bad := m.Clone()
	bad.Val[bad.ColPtr[m.N-1]] = -3
	if _, _, err := Run(bad, Expand(st), 4); err == nil {
		t.Fatal("indefinite accepted")
	}
}

func TestDimensionMismatch(t *testing.T) {
	_, st := prep(t, gen.Grid2D(6), ord.NDGrid2D, 6)
	other := gen.Grid2D(7)
	if _, _, err := Run(other, Expand(st), 2); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
}
