package server

import (
	"encoding/json"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// solveVec posts one RHS and returns x.
func solveVec(t *testing.T, url, id string, b []float64) []float64 {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/solve", solveRequest{ID: id, B: b})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr.X
}

func residualNorm(m *sparse.Matrix, x, b []float64) float64 {
	r := make([]float64, m.N)
	copy(r, b)
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			i, v := m.RowInd[p], m.Val[p]
			r[i] -= v * x[j]
			if i != j {
				r[j] -= v * x[i]
			}
		}
	}
	var n float64
	for _, v := range r {
		n += v * v
	}
	return math.Sqrt(n)
}

// TestWarmStartKillRestart is the kill-and-restart e2e: a factor built by
// one server process is served by its successor from disk — same id, no
// refactorization — after a WarmStart.
func TestWarmStartKillRestart(t *testing.T) {
	dir := t.TempDir()
	m := gen.IrregularMesh(300, 6, 2, 5)

	// First life: factor, then shut down (flushing the write-behind queue).
	s1, ts1 := testService(t, Config{StoreDir: dir, BatchWindow: -1})
	fr := factorMatrix(t, ts1.URL, m)
	s1.Close()
	ts1.Close()

	// Second life on the same directory.
	s2, ts2 := testService(t, Config{StoreDir: dir, BatchWindow: -1})
	t.Cleanup(s2.Close)
	restored, err := s2.WarmStart()
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if restored != 1 {
		t.Fatalf("restored %d factors, want 1", restored)
	}

	// The old id solves immediately — no /v1/factor, no refactorization.
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := solveVec(t, ts2.URL, fr.ID, b)
	if res := residualNorm(m, x, b); res > 1e-8 {
		t.Fatalf("restored factor residual %g", res)
	}
	if got := s2.met.factors.Load() + s2.met.refactors.Load(); got != 0 {
		t.Fatalf("restart ran %d factorizations, want 0", got)
	}

	// A /v1/factor for the same matrix is a plan-cache hit (no symbolic
	// rebuild) and a numeric-only refactor of the restored factor.
	fr2 := factorMatrix(t, ts2.URL, m)
	if !fr2.CacheHit || !fr2.Refactored {
		t.Fatalf("post-restart factor: hit=%v refactored=%v, want true/true", fr2.CacheHit, fr2.Refactored)
	}

	// /metrics reports the store section.
	doc := fetchMetrics(t, ts2.URL)
	if doc.Store == nil || doc.Store.WarmRestored != 1 {
		t.Fatalf("metrics store section: %+v", doc.Store)
	}
}

// TestWarmStartCorruptSnapshot: a corrupted snapshot must not stop the boot
// or be served; the pattern simply builds cold on its next factor request.
func TestWarmStartCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	m := gen.IrregularMesh(200, 5, 2, 3)

	s1, ts1 := testService(t, Config{StoreDir: dir, BatchWindow: -1})
	factorMatrix(t, ts1.URL, m)
	s1.Close()
	ts1.Close()

	// Truncate the snapshot.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := false
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			p := filepath.Join(dir, e.Name())
			b, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, b[:len(b)/3], 0o644); err != nil {
				t.Fatal(err)
			}
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("no snapshot written by first life")
	}

	s2, ts2 := testService(t, Config{StoreDir: dir, BatchWindow: -1})
	t.Cleanup(s2.Close)
	restored, err := s2.WarmStart()
	if err != nil || restored != 0 {
		t.Fatalf("warm start over corrupt snapshot: restored=%d err=%v", restored, err)
	}
	// Cold build still works, and re-persists a good snapshot.
	fr := factorMatrix(t, ts2.URL, m)
	if fr.CacheHit {
		t.Fatal("corrupt snapshot produced a cache hit")
	}
	b := make([]float64, m.N)
	for i := range b {
		b[i] = 1
	}
	x := solveVec(t, ts2.URL, fr.ID, b)
	if res := residualNorm(m, x, b); res > 1e-8 {
		t.Fatalf("cold rebuild residual %g", res)
	}
}

// TestSnapshotWriteBehindFlush: Close drains queued snapshots to disk.
func TestSnapshotWriteBehindFlush(t *testing.T) {
	dir := t.TempDir()
	s, ts := testService(t, Config{StoreDir: dir, BatchWindow: -1})
	for _, n := range []int{150, 220} {
		factorMatrix(t, ts.URL, gen.IrregularMesh(n, 5, 2, 3))
	}
	s.Close()
	ts.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			snaps++
		}
	}
	if snaps != 2 {
		t.Fatalf("found %d snapshots after Close, want 2", snaps)
	}
}
