package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLatencySnapshotCoherent is the regression test for the /metrics
// mean > max bug: the old tracker read count, total, and max as three
// independent atomics, so a concurrent observe could produce a document
// whose mean exceeded its max. Run under -race in the service race step.
func TestLatencySnapshotCoherent(t *testing.T) {
	var m metrics
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			d := time.Duration(1+997*w) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					m.solveLat.Observe(d)
					d += 29 * time.Microsecond
				}
			}
		}(w)
	}
	for i := 0; i < 300; i++ {
		snap := latencySnapshot(&m.solveLat)
		if snap.Count == 0 {
			continue
		}
		if snap.MeanMs > snap.MaxMs {
			t.Fatalf("iteration %d: mean %.6fms > max %.6fms", i, snap.MeanMs, snap.MaxMs)
		}
		if snap.P50Ms > snap.P95Ms || snap.P95Ms > snap.P99Ms || snap.P99Ms > snap.MaxMs {
			t.Fatalf("iteration %d: quantiles not monotone: %+v", i, snap)
		}
	}
	close(stop)
	wg.Wait()
}

// TestMetricsLatencyHistogram drives real factor/solve traffic and checks
// the /metrics document carries the histogram fields.
func TestMetricsLatencyHistogram(t *testing.T) {
	s := New(Config{Procs: 2, Workers: 2, BatchWindow: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := postTestMatrix(t, ts)
	for i := 0; i < 3; i++ {
		postSolve(t, ts, id)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Latency struct {
			Factor latencyJSON `json:"factor"`
			Solve  latencyJSON `json:"solve"`
		} `json:"latency"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	f, sv := doc.Latency.Factor, doc.Latency.Solve
	if f.Count != 1 || sv.Count != 3 {
		t.Fatalf("counts: factor %d solve %d", f.Count, sv.Count)
	}
	for name, l := range map[string]latencyJSON{"factor": f, "solve": sv} {
		if l.P50Ms <= 0 || l.P95Ms < l.P50Ms || l.P99Ms < l.P95Ms {
			t.Fatalf("%s latency quantiles malformed: %+v", name, l)
		}
		if l.MeanMs > l.MaxMs {
			t.Fatalf("%s latency mean %.6f > max %.6f", name, l.MeanMs, l.MaxMs)
		}
	}
}

// TestDebugHandlerPprof checks the opt-in debug mux serves the pprof index
// and profiles, and that the main handler does NOT (profiling stays off
// the production surface unless explicitly mounted).
func TestDebugHandlerPprof(t *testing.T) {
	s := New(Config{Procs: 1, Workers: 1})
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/heap", "/metrics"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s on debug mux: %d", path, resp.StatusCode)
		}
	}

	main := httptest.NewServer(s.Handler())
	defer main.Close()
	resp, err := http.Get(main.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("production handler must not expose pprof")
	}
}

// postTestMatrix posts a small SPD MatrixMarket matrix and returns its id.
func postTestMatrix(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	mm := `%%MatrixMarket matrix coordinate real symmetric
3 3 5
1 1 4.0
2 2 4.0
3 3 4.0
2 1 1.0
3 2 1.0
`
	resp, err := http.Post(ts.URL+"/v1/factor", "text/matrix-market", strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: %d", resp.StatusCode)
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	return fr.ID
}

func postSolve(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	body := `{"id":"` + id + `","b":[1,2,3]}`
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d", resp.StatusCode)
	}
}
