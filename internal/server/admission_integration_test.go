package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/gen"
)

// postJSONTenant is postJSON with an X-Tenant header.
func postJSONTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// getJSON GETs url and returns the response plus body.
func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestTenantRateLimitIsolation: a rate-limited tenant's burst exhausts its
// own bucket with structured 429s while an unlimited tenant on the same
// server keeps solving.
func TestTenantRateLimitIsolation(t *testing.T) {
	s, ts := testService(t, Config{
		Procs: 1, Workers: 2, BlockSize: 16, BatchWindow: -1,
		Tenants: map[string]admission.TenantLimits{
			"metered": {Rate: 0.001, Burst: 1},
		},
	})
	_ = s
	a := gen.Grid2D(8)
	fr := factorMatrix(t, ts.URL, a)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}

	// Burst of 1: first metered solve passes, second hits the bucket.
	resp, body := postJSONTenant(t, ts.URL+"/v1/solve", "metered", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first metered solve: %d (%s)", resp.StatusCode, body)
	}
	resp, body = postJSONTenant(t, ts.URL+"/v1/solve", "metered", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second metered solve: %d (%s), want 429", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "tenant_rate" {
		t.Fatalf("code = %q, want tenant_rate", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("tenant_rate 429 without Retry-After header")
	}

	// The unmetered tenant is untouched by the metered tenant's bucket.
	for i := 0; i < 3; i++ {
		resp, body = postJSONTenant(t, ts.URL+"/v1/solve", "quiet", solveRequest{ID: fr.ID, B: rhs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("quiet tenant solve %d: %d (%s)", i, resp.StatusCode, body)
		}
	}

	doc := fetchMetrics(t, ts.URL)
	mt, ok := doc.Admission.Tenants["metered"]
	if !ok {
		t.Fatal("metered tenant missing from /metrics admission section")
	}
	if mt.RejectedRate == 0 {
		t.Fatal("metered tenant rejected_rate did not move")
	}
	if qt := doc.Admission.Tenants["quiet"]; qt.RejectedRate != 0 {
		t.Fatalf("quiet tenant was rate-rejected %d times", qt.RejectedRate)
	}
}

// TestBatcherExpiredContextNotCoalesced (ISSUE 9 satellite): a solve whose
// context is already dead must fail 504 up front — never entering a
// coalesced SolveMany sweep, never taking a worker slot.
func TestBatcherExpiredContextNotCoalesced(t *testing.T) {
	s, ts := testService(t, Config{Procs: 1, Workers: 1, BlockSize: 16, BatchWindow: 50 * time.Millisecond})
	a := gen.Grid2D(8)
	fr := factorMatrix(t, ts.URL, a)
	fe, ok := s.lookup(fr.ID)
	if !ok {
		t.Fatal("factor entry missing")
	}

	before := fetchMetrics(t, ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before submission
	out := fe.bt.submit(ctx, make([]float64, a.N))
	if out.err == nil {
		t.Fatal("expired-context solve returned a result")
	}
	if st := errStatus(out.err); st != http.StatusGatewayTimeout {
		t.Fatalf("expired-context solve maps to %d, want 504", st)
	}
	// Nothing may have been queued for a sweep: wait past the batch window
	// and confirm no batch ran and no RHS was solved on its behalf.
	time.Sleep(3 * s.cfg.BatchWindow)
	after := fetchMetrics(t, ts.URL)
	if after.Batches != before.Batches || after.SolvedRHS != before.SolvedRHS {
		t.Fatalf("expired request consumed a sweep: batches %d→%d, solved %d→%d",
			before.Batches, after.Batches, before.SolvedRHS, after.SolvedRHS)
	}
	if busy := s.adm.Snapshot().Busy; busy != 0 {
		t.Fatalf("worker slot leaked: busy=%d", busy)
	}
}

// TestFactorBytesGate: a matrix whose factor lower bound alone exceeds the
// budget is rejected 413 before any analysis (plan-cache misses stay 0).
func TestFactorBytesGate(t *testing.T) {
	_, ts := testService(t, Config{
		Procs: 1, Workers: 2, BlockSize: 16, BatchWindow: -1,
		MaxFactorBytes: 64, // 8 bytes/nz: anything over 8 lower-triangle nonzeros
	})
	a := gen.Grid2D(8)
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(a))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized factor: %d (%s), want 413", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "factor_too_large" {
		t.Fatalf("code = %q, want factor_too_large", eb.Code)
	}
	doc := fetchMetrics(t, ts.URL)
	if doc.Cache.Misses != 0 {
		t.Fatalf("byte gate ran after symbolic work: %d cache misses", doc.Cache.Misses)
	}
}

// TestTenantCacheByteQuota: once a tenant's cached plans reach its
// MaxCacheBytes, a factor request needing a *new* analysis is rejected
// tenant_quota, while re-factoring the pattern it already paid for still
// works.
func TestTenantCacheByteQuota(t *testing.T) {
	_, ts := testService(t, Config{
		Procs: 1, Workers: 2, BlockSize: 16, BatchWindow: -1,
		Tenants: map[string]admission.TenantLimits{
			"hoarder": {MaxCacheBytes: 1}, // any one plan exceeds this
		},
	})
	a := gen.Grid2D(8)
	// First build passes (usage 0 < quota) and charges the tenant.
	resp, body := postJSONTenant(t, ts.URL+"/v1/factor", "hoarder", toCSC(a))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first factor: %d (%s)", resp.StatusCode, body)
	}
	// Same pattern again: reuses the cached analysis, always allowed.
	resp, body = postJSONTenant(t, ts.URL+"/v1/factor", "hoarder", toCSC(a))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refactor of owned pattern: %d (%s)", resp.StatusCode, body)
	}
	// A new pattern would build a second plan: over quota.
	b := gen.Grid2D(9)
	resp, body = postJSONTenant(t, ts.URL+"/v1/factor", "hoarder", toCSC(b))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota factor: %d (%s), want 429", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "tenant_quota" {
		t.Fatalf("code = %q, want tenant_quota", eb.Code)
	}
	// Another tenant is not bound by the hoarder's quota.
	resp, body = postJSONTenant(t, ts.URL+"/v1/factor", "other", toCSC(b))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant factor: %d (%s)", resp.StatusCode, body)
	}
	doc := fetchMetrics(t, ts.URL)
	if doc.Cache.TenantBytes["hoarder"] == 0 {
		t.Fatal("per-tenant cache bytes not accounted")
	}
}

// TestHealthzAndMetricsShowBrownout: saturating the queue must flip the
// brownout state machine, and both /healthz and /metrics must show it.
func TestHealthzAndMetricsShowBrownout(t *testing.T) {
	s, ts := testService(t, Config{
		Procs: 1, Workers: 1, QueueDepth: 4, BlockSize: 16, BatchWindow: -1,
		ShedAt: 0.25, RejectAt: 0.5,
	})

	// Occupy the worker and fill the queue past RejectAt (2/4).
	rel, rej, err := s.adm.Admit(context.Background(), admission.Request{Priority: admission.Interactive})
	if rej != nil || err != nil {
		t.Fatalf("occupy worker: rej=%v err=%v", rej, err)
	}
	defer rel()
	done := make(chan struct{}, 3)
	for i := 1; i <= 3; i++ {
		go func() {
			r2, _, _ := s.adm.Admit(context.Background(), admission.Request{Priority: admission.Interactive})
			if r2 != nil {
				r2()
			}
			done <- struct{}{}
		}()
		deadline := time.Now().Add(2 * time.Second)
		for s.adm.Snapshot().QueuedByPri["interactive"] < i {
			if time.Now().After(deadline) {
				t.Fatalf("queue never reached %d", i)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// A cold factor request now sees the brownout.
	a := gen.Grid2D(8)
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(a))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cold factor under brownout: %d (%s), want 503", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "brownout" {
		t.Fatalf("code = %q, want brownout", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("brownout 503 without Retry-After header")
	}

	// /healthz stays 200 (the node still serves solves) but reports the
	// degraded admission state.
	hresp, hbody := getJSON(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz under brownout: %d", hresp.StatusCode)
	}
	var hz map[string]string
	if err := json.Unmarshal(hbody, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["admission"] != "reject-new-factors" && hz["admission"] != "shed-low-priority" {
		t.Fatalf("healthz admission = %q, want a brownout state", hz["admission"])
	}

	doc := fetchMetrics(t, ts.URL)
	if doc.Admission.State == "ok" {
		t.Fatalf("metrics admission state = ok under brownout")
	}
	if doc.Admission.Transitions == 0 {
		t.Fatal("brownout transition counter did not move")
	}

	rel()
	for i := 0; i < 3; i++ {
		<-done
	}
}

// TestDrainShowsInHealthz: draining must surface both the 503 and the
// admission drain state.
func TestDrainShowsInHealthz(t *testing.T) {
	s, ts := testService(t, Config{Procs: 1, Workers: 1, BlockSize: 16})
	s.Drain()
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	var hz map[string]string
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz["status"] != "draining" || hz["admission"] != "drain" {
		t.Fatalf("healthz = %v, want draining/drain", hz)
	}
}
