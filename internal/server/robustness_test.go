package server

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// indefinite clones m and negates one diagonal entry so the factorization
// must break down on a pivot.
func indefinite(m *sparse.Matrix, col int) *sparse.Matrix {
	bad := m.Clone()
	bad.Val[bad.ColPtr[col]] = -bad.Val[bad.ColPtr[col]]
	return bad
}

func decodeErr(t *testing.T, body []byte) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body %q: %v", body, err)
	}
	return eb
}

// checkPivotBody asserts the 422 envelope carries the breakdown location.
func checkPivotBody(t *testing.T, eb errorBody, n int) {
	t.Helper()
	if eb.Block == nil || eb.Row == nil || eb.Pivot == nil {
		t.Fatalf("pivot error body missing coordinates: %+v", eb)
	}
	if *eb.Row < 0 || *eb.Row >= n {
		t.Fatalf("pivot row %d out of [0,%d)", *eb.Row, n)
	}
	if *eb.Pivot > 0 {
		t.Fatalf("reported pivot %g is positive", *eb.Pivot)
	}
}

// TestFactorPivotErrorAllPaths drives an indefinite matrix through every
// factorization path — first factor, fresh factor through a warm plan
// cache, and numeric refactor of a live factor — and requires a structured
// 422 with the breakdown location each time.
func TestFactorPivotErrorAllPaths(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, BreakerThreshold: -1})
	a := gen.IrregularMesh(150, 5, 3, 23)
	bad := indefinite(a, 40)

	// Path 1: first factor of an unseen pattern.
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("first factor: status %d (%s); want 422", resp.StatusCode, body)
	}
	eb := decodeErr(t, body)
	if eb.Code != "pivot_breakdown" {
		t.Fatalf("first factor: code %q, want pivot_breakdown", eb.Code)
	}
	checkPivotBody(t, eb, a.N)

	// Path 2: same pattern again — plan cache hit, but the failed entry was
	// unregistered, so this is a fresh numeric factorization.
	resp, body = postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("cache-hit factor: status %d (%s); want 422", resp.StatusCode, body)
	}
	checkPivotBody(t, decodeErr(t, body), a.N)

	// Path 3: refactor of a live factor built from good values.
	fr := factorMatrix(t, ts.URL, a)
	resp, body = postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("refactor: status %d (%s); want 422", resp.StatusCode, body)
	}
	eb = decodeErr(t, body)
	if eb.Code != "pivot_breakdown" {
		t.Fatalf("refactor: code %q, want pivot_breakdown", eb.Code)
	}
	checkPivotBody(t, eb, a.N)

	// The failed refactor invalidated the factor; its id must be gone.
	rhs := make([]float64, a.N)
	resp, _ = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve on invalidated factor: status %d; want 404", resp.StatusCode)
	}
}

// TestConcurrentPivotFailures: many clients posting the same indefinite
// pattern at once must each get a well-formed failure (422, or 503 when a
// waiter exhausts its re-claim attempts) with no data race — this test is
// the -race half of the acceptance criterion.
func TestConcurrentPivotFailures(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, BreakerThreshold: -1})
	a := gen.IrregularMesh(150, 5, 3, 24)
	bad := indefinite(a, 10)

	const clients = 8
	var wg sync.WaitGroup
	type result struct {
		code int
		eb   errorBody
	}
	results := make([]result, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
			results[i] = result{resp.StatusCode, decodeErr(t, body)}
		}(i)
	}
	wg.Wait()
	got422 := false
	for i, r := range results {
		switch r.code {
		case http.StatusUnprocessableEntity:
			got422 = true
			checkPivotBody(t, r.eb, a.N)
		case http.StatusServiceUnavailable:
		default:
			t.Fatalf("client %d: status %d; want 422 or 503", i, r.code)
		}
	}
	if !got422 {
		t.Fatal("no client saw the structured 422")
	}
}

// TestBreakerTripsAndRecovers: repeated pivot failures for one pattern
// trip the breaker (fail-fast 422 that still carries the last breakdown's
// coordinates, without burning a worker on a doomed factorization), and
// the pattern is allowed through again after the cooldown.
func TestBreakerTripsAndRecovers(t *testing.T) {
	s, ts := testService(t, Config{
		Procs: 2, BlockSize: 16, BatchWindow: -1,
		BreakerThreshold: 2, BreakerCooldown: 300 * time.Millisecond,
	})
	a := gen.IrregularMesh(150, 5, 3, 25)
	bad := indefinite(a, 77)

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("failure %d: status %d (%s)", i, resp.StatusCode, body)
		}
		if eb := decodeErr(t, body); eb.Code != "pivot_breakdown" {
			t.Fatalf("failure %d: code %q; the breaker must not trip early", i, eb.Code)
		}
	}

	// Third request: breaker is open, fail fast with the pivot location.
	factorsBefore := s.met.factors.Load()
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("tripped breaker: status %d (%s); want 422", resp.StatusCode, body)
	}
	eb := decodeErr(t, body)
	if eb.Code != "breaker_open" {
		t.Fatalf("tripped breaker: code %q, want breaker_open", eb.Code)
	}
	checkPivotBody(t, eb, a.N)
	if s.met.factors.Load() != factorsBefore {
		t.Fatal("fail-fast request still ran a factorization")
	}
	if s.met.breakerTrips.Load() != 1 || s.met.breakerFastFails.Load() == 0 {
		t.Fatalf("breaker metrics: trips=%d fastFails=%d",
			s.met.breakerTrips.Load(), s.met.breakerFastFails.Load())
	}

	// A different pattern is unaffected.
	b := gen.IrregularMesh(120, 4, 3, 26)
	factorMatrix(t, ts.URL, b)

	// After the cooldown the pattern gets a real attempt again; good values
	// factor and clear the breaker state.
	time.Sleep(350 * time.Millisecond)
	fr := factorMatrix(t, ts.URL, a)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after breaker recovery: status %d (%s)", resp.StatusCode, body)
	}
}

// TestPerturbFactorsIndefinite: ?perturb=1 turns a pivot breakdown into a
// successful factorization of A+αI, reporting the shift; the factor must
// then actually solve the shifted system.
func TestPerturbFactorsIndefinite(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})
	a := gen.IrregularMesh(150, 5, 3, 27)
	bad := indefinite(a, 40)

	resp, body := postJSON(t, ts.URL+"/v1/factor?perturb=1", toCSC(bad))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perturbed factor: status %d (%s)", resp.StatusCode, body)
	}
	var fr factorResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Shift <= 0 {
		t.Fatalf("indefinite matrix factored with shift %g; want > 0", fr.Shift)
	}

	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve on perturbed factor: status %d (%s)", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	shifted := bad.Clone()
	for j := 0; j < shifted.N; j++ {
		shifted.Val[shifted.ColPtr[j]] += fr.Shift
	}
	if r := shifted.ResidualNorm(sr.X, rhs); r > 1e-6 {
		t.Fatalf("residual %g against the shifted matrix", r)
	}

	// SPD values through the same query parameter: no shift. (Fresh struct:
	// shift has omitempty, so unmarshalling into fr would keep the old one.)
	resp, body = postJSON(t, ts.URL+"/v1/factor?perturb=1", toCSC(a))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("perturbed SPD refactor: status %d (%s)", resp.StatusCode, body)
	}
	var fr2 factorResponse
	if err := json.Unmarshal(body, &fr2); err != nil {
		t.Fatal(err)
	}
	if fr2.Shift != 0 {
		t.Fatalf("SPD values reported shift %g", fr2.Shift)
	}
	if !fr2.Refactored {
		t.Fatal("second POST of the pattern did not refactor in place")
	}
}

// TestJSONCSCShapeRejection pins the cheap shape checks that run before
// anything allocates from a claimed dimension.
func TestJSONCSCShapeRejection(t *testing.T) {
	_, ts := testService(t, Config{Procs: 1, BlockSize: 8})
	cases := []jsonCSC{
		{N: -1, ColPtr: []int{0}},
		{N: 1 << 30, ColPtr: []int{0, 1}, RowInd: []int{0}, Val: []float64{1}},
		{N: 2, ColPtr: []int{0, 1}, RowInd: []int{0, 1}, Val: []float64{1, 1}},
		{N: 2, ColPtr: []int{0, 1, 2}, RowInd: []int{0, 1}, Val: []float64{1}},
		{N: 2, ColPtr: []int{0, 5, 3}, RowInd: []int{0, 1, 1}, Val: []float64{4, 1, 4}},
	}
	for i, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/factor", c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d (%s); want 400", i, resp.StatusCode, body)
		}
	}
}
