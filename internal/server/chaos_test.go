//go:build faultinject

// Chaos tests: run with `go test -tags faultinject ./internal/server/`.
// These exercise the serving path with faults injected at its request
// boundaries — transient errors the retry loop must absorb, persistent
// errors it must surface as 500 (not 422: an infrastructure fault is not
// the client's matrix's fault), injected latency, and handler panics the
// recovery middleware must contain.
package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"

	"blockfanout/internal/faultinject"
	"blockfanout/internal/gen"
)

func TestChaosTransientFactorRetried(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, RetryBackoff: time.Millisecond})
	a := gen.IrregularMesh(150, 5, 3, 31)

	// One injected failure, then clean: the retry must hide it.
	faultinject.Enable(faultinject.Rule{Site: "server.factor", Prob: 1, Count: 1})
	fr := factorMatrix(t, ts.URL, a)
	if fr.ID == "" {
		t.Fatal("empty factor id")
	}
	if faultinject.Fires("server.factor") != 1 {
		t.Fatalf("injected %d faults, want 1", faultinject.Fires("server.factor"))
	}
	if s.met.retries.Load() == 0 {
		t.Fatal("retry counter did not move")
	}
}

func TestChaosPersistentTransientIs500(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, RetryAttempts: 2, RetryBackoff: time.Millisecond})
	a := gen.IrregularMesh(120, 4, 3, 32)

	faultinject.Enable(faultinject.Rule{Site: "server.factor", Prob: 1})
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(a))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("persistent transient fault: status %d (%s); want 500", resp.StatusCode, body)
	}
	// 1 initial + 2 retries.
	if n := faultinject.Fires("server.factor"); n != 3 {
		t.Fatalf("injector fired %d times, want 3", n)
	}

	// With injection off the same pattern must factor cleanly (the failed
	// entry was unregistered, not wedged).
	faultinject.Disable()
	factorMatrix(t, ts.URL, a)
}

func TestChaosSolveFaultsRetriedThenSurfaced(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, RetryAttempts: 1, RetryBackoff: time.Millisecond})
	a := gen.IrregularMesh(120, 4, 3, 33)
	fr := factorMatrix(t, ts.URL, a)
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}

	// One fault: retried, solve succeeds.
	faultinject.Enable(faultinject.Rule{Site: "server.solve", Prob: 1, Count: 1})
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with one transient fault: status %d (%s)", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if r := a.ResidualNorm(sr.X, rhs); r > 1e-8 {
		t.Fatalf("residual %g after retried solve", r)
	}

	// Persistent faults: surfaced as 500, factor stays live.
	faultinject.Enable(faultinject.Rule{Site: "server.solve", Prob: 1})
	resp, _ = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("persistent solve fault: status %d; want 500", resp.StatusCode)
	}
	faultinject.Disable()
	resp, _ = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after chaos: status %d", resp.StatusCode)
	}
}

func TestChaosInjectedLatencyHitsDeadline(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	_, ts := testService(t, Config{
		Procs: 2, BlockSize: 16, BatchWindow: -1,
		RequestTimeout: 50 * time.Millisecond, RetryAttempts: -1,
	})
	a := gen.IrregularMesh(120, 4, 3, 34)
	fr := factorMatrix(t, ts.URL, a)
	rhs := make([]float64, a.N)

	// The injected stall exceeds the request budget; the deadline must win
	// and map to 504, not hang the worker slot indefinitely.
	faultinject.Enable(faultinject.Rule{
		Site: "server.solve", Prob: 1,
		Err: errors.New("slow io"), Delay: 200 * time.Millisecond,
	})
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("stalled solve: status %d (%s); want 504 or 500", resp.StatusCode, body)
	}
}

func TestChaosPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Reset)
	s, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})
	a := gen.IrregularMesh(120, 4, 3, 35)

	faultinject.Enable(faultinject.Rule{Site: "server.factor", Prob: 1, Count: 1, Panic: true})
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(a))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d (%s); want 500", resp.StatusCode, body)
	}
	eb := decodeErr(t, body)
	if eb.Code != "panic" {
		t.Fatalf("panic response code %q", eb.Code)
	}
	if s.met.panics.Load() != 1 {
		t.Fatalf("panics metric = %d", s.met.panics.Load())
	}

	// The process survived; the very next request must work.
	factorMatrix(t, ts.URL, a)
}
