package server

import (
	"context"
	"sync"
	"time"

	"blockfanout/internal/admission"
)

// solveOutcome is what one solve (batched single-RHS or direct multi-RHS)
// gets back.
type solveOutcome struct {
	x     []float64   // single-RHS solution
	xs    [][]float64 // multi-RHS solutions (direct path only)
	batch int         // how many right-hand sides shared the sweep
	err   error
}

// pendingSolve is one request parked in the batch window.
type pendingSolve struct {
	b   []float64
	res chan solveOutcome // buffered(1); flush never blocks on a dead client
}

// batcher coalesces concurrent single-RHS solves against one factor into
// one SolveMany sweep. The first request to land in an empty window arms a
// timer; everything arriving within the window joins its batch. A batch is
// flushed early when it reaches the configured size limit. Each coalesced
// sweep loads every factor block once for the whole batch — the serving
// win SolveN was built for.
type batcher struct {
	s  *Server
	fe *factorEntry

	mu      sync.Mutex
	pending []pendingSolve
	timer   *time.Timer
}

// submit enqueues b and waits for its solution (or ctx expiry; the batch
// keeps running and discards the abandoned result).
func (bt *batcher) submit(ctx context.Context, b []float64) solveOutcome {
	// A request whose deadline already passed must not be coalesced into a
	// sweep: its result would be discarded anyway, but the sweep would
	// still spend a worker pool slot solving for it. Fail it before it
	// touches the pending list.
	if err := ctx.Err(); err != nil {
		return solveOutcome{err: err}
	}
	req := pendingSolve{b: b, res: make(chan solveOutcome, 1)}
	bt.mu.Lock()
	bt.pending = append(bt.pending, req)
	switch {
	case len(bt.pending) >= bt.s.cfg.BatchLimit:
		if bt.timer != nil {
			bt.timer.Stop()
			bt.timer = nil
		}
		batch := bt.pending
		bt.pending = nil
		bt.mu.Unlock()
		go bt.run(batch)
	case len(bt.pending) == 1:
		bt.timer = time.AfterFunc(bt.s.cfg.BatchWindow, bt.flush)
		bt.mu.Unlock()
	default:
		bt.mu.Unlock()
	}

	select {
	case out := <-req.res:
		return out
	case <-ctx.Done():
		return solveOutcome{err: ctx.Err()}
	}
}

// flush is the timer callback: take whatever accumulated and solve it.
func (bt *batcher) flush() {
	bt.mu.Lock()
	batch := bt.pending
	bt.pending = nil
	bt.timer = nil
	bt.mu.Unlock()
	if len(batch) > 0 {
		bt.run(batch)
	}
}

// run executes one coalesced batch on the worker pool and distributes the
// results. The batch admits as an internal interactive request: each
// constituent solve was already charged against its tenant's bucket at
// arrival, so the sweep itself only competes for a worker slot.
func (bt *batcher) run(batch []pendingSolve) {
	s := bt.s
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.RequestTimeout)
	defer cancel()
	rel, rej, err := s.adm.Admit(ctx, admission.Request{
		Priority: admission.Interactive,
		Cost:     s.solveCost(bt.fe, len(batch)),
		Deadline: admissionDeadline(ctx),
		Internal: true,
	})
	if rej != nil {
		err = rej
	}
	if err != nil {
		for _, req := range batch {
			req.res <- solveOutcome{err: err}
		}
		return
	}
	defer rel()

	bs := make([][]float64, len(batch))
	for i, req := range batch {
		bs[i] = req.b
	}
	start := time.Now()
	bt.fe.mu.RLock()
	if bt.fe.f == nil {
		// The factor was invalidated (failed refactor) after these requests
		// looked it up; fail them instead of dereferencing nil — a panic
		// here would take down the whole process.
		bt.fe.mu.RUnlock()
		for _, req := range batch {
			req.res <- solveOutcome{err: errFactorInvalid}
		}
		return
	}
	xs, err := bt.fe.f.SolveMany(bs)
	bt.fe.mu.RUnlock()
	s.met.solveLat.Observe(time.Since(start))
	if err != nil {
		for _, req := range batch {
			req.res <- solveOutcome{err: err}
		}
		return
	}
	s.met.batches.Add(1)
	s.met.batched.Add(int64(len(batch)))
	s.met.solvedRHS.Add(int64(len(batch)))
	for i, req := range batch {
		req.res <- solveOutcome{x: xs[i], batch: len(batch)}
	}
}
