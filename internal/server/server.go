// Package server turns the block fan-out Cholesky library into a
// long-running solve service. It is the serving layer the ROADMAP's
// analyze-once/factor-many workloads need: a pattern-keyed plan cache so
// repeated factor requests for the same sparsity structure skip ordering
// and symbolic analysis, in-place numeric refactorization of live factors,
// and an RHS batcher that coalesces concurrent solve requests against the
// same factor into one cache-friendly multi-RHS sweep.
//
// Endpoints (all JSON responses):
//
//	POST /v1/factor   MatrixMarket or JSON-CSC body → factor id
//	POST /v1/solve    {"id", "b": [...]} or {"id", "bs": [[...], ...]}
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     expvar-style counter document
//
// Heavy work (analysis, factorization, solves) runs through the
// multi-tenant admission controller (internal/admission): requests carry a
// tenant identity (X-Tenant header) subject to token-bucket rates and
// concurrency quotas, wait in a weighted priority queue (interactive
// solves > refactors > cold factorizations) for a bounded worker pool, and
// are shed with structured 429/503 + Retry-After when their deadline can
// no longer cover their modeled cost or when the brownout state machine
// (queue depth + memory watermarks) degrades the service. Request
// deadlines propagate as context cancellation into the parallel
// factorization executor. Drain flips the service into a mode where health
// checks fail (so load balancers stop routing) while in-flight work
// completes.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/blocks"
	"blockfanout/internal/core"
	"blockfanout/internal/fanout"
	"blockfanout/internal/faultinject"
	"blockfanout/internal/kernels"
	"blockfanout/internal/obs"
	"blockfanout/internal/plancache"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// Procs is the goroutine-processor count of each parallel
	// factorization (default: GOMAXPROCS capped at 16).
	Procs int
	// Workers bounds concurrently executing heavy operations
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth is how many heavy operations may wait for a worker before
	// new ones are rejected with 429 (default 64).
	QueueDepth int
	// ReserveInteractive holds this many worker slots for interactive
	// solves alone: factorizations and refactorizations together occupy
	// at most Workers−ReserveInteractive slots, so admitted heavy work
	// cannot head-of-line block every lane (0 = no reservation).
	ReserveInteractive int
	// CacheEntries / CacheBytes budget the pattern-keyed plan cache
	// (defaults: plancache defaults). MaxFactors bounds the live factor
	// registry (default: CacheEntries).
	CacheEntries int
	CacheBytes   int64
	MaxFactors   int
	// BatchWindow is how long the first single-RHS solve of a batch waits
	// for company (default 2ms; negative disables batching). BatchLimit
	// flushes a batch early once it holds this many vectors (default 64).
	BatchWindow time.Duration
	BatchLimit  int
	// RequestTimeout bounds each request's heavy work (default 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 512 MiB).
	MaxBodyBytes int64
	// BlockSize is the panel width B of new plans (default
	// core.DefaultBlockSize).
	BlockSize int
	// Blocking selects the partitioning strategy for new plans (default
	// blocks.StrategyUniform); AmalgThreshold is the relative-fill
	// amalgamation threshold for the irregular strategy (0 = default).
	// Both are part of the plan-cache key, so servers configured
	// differently never share cached analyses even across restarts of the
	// same process.
	Blocking       blocks.Strategy
	AmalgThreshold float64
	// Exec selects the parallel execution engine for factorizations
	// (default fanout.ModeWorkStealing, "steal"); like Blocking it is part
	// of the plan-cache key, since each cached plan's factors embed an
	// executor of the configured mode.
	Exec fanout.Mode
	// Tune enables feedback-driven mapping: the first factorization of each
	// pattern runs under a measuring recorder, its per-block span costs are
	// aggregated into a cost profile (internal/tune), and a bounded search
	// over grid shapes rebuilds the block→processor mapping from the
	// measured costs. When the remap's predicted makespan beats the static
	// mapping's, the live factor is re-registered under the tuned mapping —
	// no second numeric factorization — and every later refactorization of
	// the pattern runs tuned. With a store, profiles persist and WarmStart
	// restores tuned mappings before the static pass.
	Tune bool
	// RetryAttempts is how many times a transient infrastructure failure
	// (see internal/faultinject) is retried with exponential backoff before
	// the request fails (default 2; negative disables). Numeric failures —
	// pivot breakdowns — are never transient and never retried.
	RetryAttempts int
	// RetryBackoff is the first retry's backoff; it doubles per attempt
	// (default 5ms).
	RetryBackoff time.Duration
	// BreakerThreshold trips a per-pattern circuit breaker after this many
	// consecutive pivot failures, after which factor requests for that
	// pattern fail fast with 422 until BreakerCooldown elapses (default 3;
	// negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped pattern fails fast (default 30s).
	BreakerCooldown time.Duration
	// StoreDir, when non-empty, enables the durable snapshot store: every
	// completed factorization is written behind (asynchronously) to this
	// directory, and WarmStart restores the working set from it on boot. An
	// empty StoreDir keeps the server fully in-memory (the pre-durability
	// behavior).
	StoreDir string
	// SnapshotInterval is the minimum spacing between write-behind
	// snapshots of the same factor (default 1s; negative = snapshot every
	// completed factorization). A factor's first snapshot is never
	// throttled; under a refactor storm the interval bounds the writer's
	// bandwidth and CPU instead of rewriting the same key back-to-back,
	// at the cost of a restart restoring values up to one interval stale —
	// the same last-written-snapshot semantics a full queue already gives.
	SnapshotInterval time.Duration
	// Tenants maps tenant name (the X-Tenant request header) to its
	// admission limits; TenantDefault applies to every unlisted tenant
	// (zero value: unlimited). See internal/admission.
	Tenants       map[string]admission.TenantLimits
	TenantDefault admission.TenantLimits
	// MaxFactorBytes rejects factor requests whose estimated factor size
	// exceeds this budget with 413 *before* any symbolic work (0 =
	// unlimited). On a plan-cache hit the estimate is the exact nnz(L)×8;
	// on a miss it is the 8×nnz(tril(A)) lower bound — Cholesky fill only
	// adds nonzeros, so a matrix over budget on the lower bound can only
	// be further over after analysis.
	MaxFactorBytes int64
	// MemSoftBytes / MemHardBytes are heap watermarks driving the brownout
	// state machine to shed-low-priority / reject-new-factors (0 = queue
	// depth alone drives brownout). ShedAt / RejectAt override the
	// queue-occupancy brownout thresholds (0 = admission defaults).
	MemSoftBytes uint64
	MemHardBytes uint64
	ShedAt       float64
	RejectAt     float64
}

func (c *Config) fillDefaults() {
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
		if c.Procs > 16 {
			c.Procs = 16
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 512 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = core.DefaultBlockSize
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = plancache.DefaultEntries
	}
	if c.MaxFactors <= 0 {
		c.MaxFactors = c.CacheEntries
	}
	switch {
	case c.RetryAttempts == 0:
		c.RetryAttempts = 2
	case c.RetryAttempts < 0:
		c.RetryAttempts = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 3
	case c.BreakerThreshold < 0:
		c.BreakerThreshold = 0
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	switch {
	case c.SnapshotInterval == 0:
		c.SnapshotInterval = time.Second
	case c.SnapshotInterval < 0:
		c.SnapshotInterval = 0
	}
}

// factorEntry is one live factor. mu serializes refactorization (writer)
// against solves (readers). f is nil while the initial factorization is
// still running under the write lock, and again — permanently — after a
// failed factorization or refactorization invalidates the entry; every
// reader must check f under the lock before dereferencing.
type factorEntry struct {
	id   string
	n    int
	plan *core.Plan // the analysis this factor was built from (pattern guard)
	mu   sync.RWMutex
	f    *core.Factor
	bt   *batcher
	el   *list.Element // position in the server's factor LRU
	// building is true while the creator still holds mu for the initial
	// factorization. Guarded by the server's mu; eviction skips building
	// entries so a freshly issued id cannot vanish before its factor lands.
	building bool
	// lastSnap is when this factor last enqueued a write-behind snapshot
	// (zero: never). Guarded by mu (held for writing at both snapshot
	// sites); Config.SnapshotInterval throttles against it.
	lastSnap time.Time
}

// Server is the solve service. Create with New, mount via Handler.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	adm   *admission.Controller // multi-tenant worker-pool gate
	cost  admission.CostModel   // observed ns/flop for deadline feasibility

	// planOpts/planKey are the fixed plan-construction options and their
	// cache-key digest, computed once from cfg.
	planOpts core.Options
	planKey  uint64

	mu       sync.Mutex // guards factors, lru, breakers
	factors  map[string]*factorEntry
	lru      *list.List // front = most recently used factorEntry
	draining bool
	breakers map[string]*breakerState

	// Durable snapshot store (nil when Config.StoreDir is empty or the
	// directory failed to open; storeErr keeps the failure for /metrics).
	st         *store.Store
	storeErr   error
	snapCh     chan *store.FactorSnapshot
	writerQuit chan struct{}
	writerDone chan struct{}
	closeOnce  sync.Once

	met metrics
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	opts := core.Options{BlockSize: cfg.BlockSize, Blocking: cfg.Blocking, AmalgThreshold: cfg.AmalgThreshold, Exec: cfg.Exec}
	s := &Server{
		cfg:      cfg,
		planOpts: opts,
		planKey:  opts.ConfigKey(),
		cache:    plancache.New(plancache.Config{MaxEntries: cfg.CacheEntries, MaxBytes: cfg.CacheBytes}),
		adm: admission.New(admission.Config{
			Workers:            cfg.Workers,
			QueueDepth:         cfg.QueueDepth,
			ReserveInteractive: cfg.ReserveInteractive,
			Default:            cfg.TenantDefault,
			Tenants:            cfg.Tenants,
			ShedAt:             cfg.ShedAt,
			RejectAt:           cfg.RejectAt,
			MemSoftBytes:       cfg.MemSoftBytes,
			MemHardBytes:       cfg.MemHardBytes,
		}),
		factors:  make(map[string]*factorEntry),
		lru:      list.New(),
		breakers: make(map[string]*breakerState),
	}
	if cfg.StoreDir != "" {
		s.st, s.storeErr = store.Open(cfg.StoreDir)
		if s.storeErr == nil {
			s.snapCh = make(chan *store.FactorSnapshot, 8)
			s.writerQuit = make(chan struct{})
			s.writerDone = make(chan struct{})
			go s.snapshotWriter()
		}
	}
	return s
}

// Handler returns the service's HTTP mux, wrapped in the panic-recovery
// middleware: one request hitting a bug (or an injected panic) produces a
// 500, not a dead process with every cached factor lost.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", s.handleFactor)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return s.recoverPanics(mux)
}

// recoverPanics converts a handler panic into a 500 response. If the
// handler already wrote a response the WriteHeader call is a no-op logged
// by net/http; the connection still closes cleanly either way.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Add(1)
				s.met.errors.Add(1)
				writeJSON(w, http.StatusInternalServerError,
					errorBody{Error: fmt.Sprintf("internal panic: %v", rec), Code: "panic"})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// Drain flips the server into shutdown mode: /healthz reports 503 so load
// balancers stop routing, new factor/solve requests are refused and queued
// waiters are shed while in-flight ones finish (http.Server.Shutdown
// provides the actual wait).
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.adm.SetDraining(true)
}

var errFactorInvalid = errors.New("factor is no longer valid: its factorization or refactorization failed; re-POST the matrix to /v1/factor")

// tenantOf extracts the request's tenant identity.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return admission.DefaultTenant
}

// admissionDeadline converts ctx's deadline for the admission request
// (zero when the context has none).
func admissionDeadline(ctx context.Context) time.Time {
	d, _ := ctx.Deadline()
	return d
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---- response plumbing ----

// errorBody is the JSON error envelope. Pivot breakdowns carry their
// location so a client can see *where* its matrix lost positive
// definiteness, not just that it did; admission rejections carry the
// Retry-After hint in-body as well as in the header.
type errorBody struct {
	Error string   `json:"error"`
	Code  string   `json:"code,omitempty"`  // "pivot_breakdown", "breaker_open", "panic", admission codes, ...
	Block *int     `json:"block,omitempty"` // failing panel (pivot breakdowns only)
	Row   *int     `json:"row,omitempty"`   // failing global row
	Pivot *float64 `json:"pivot,omitempty"` // offending pivot value
	// RetryAfterS mirrors the Retry-After header on 429/503 rejections.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}

// errBody builds the error envelope, extracting pivot coordinates when the
// chain contains a kernels.PivotError.
func errBody(err error) errorBody {
	body := errorBody{Error: err.Error()}
	var pe *kernels.PivotError
	if errors.As(err, &pe) {
		if errors.Is(err, errBreakerOpen) {
			body.Code = "breaker_open"
		} else {
			body.Code = "pivot_breakdown"
		}
		block, row, pivot := pe.Block, pe.Row, pe.Pivot
		body.Block, body.Row, body.Pivot = &block, &row, &pivot
	} else if errors.Is(err, errBreakerOpen) {
		body.Code = "breaker_open"
	}
	return body
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	var rej *admission.Rejection
	if errors.As(err, &rej) {
		s.writeRejection(w, rej)
		return
	}
	if code != http.StatusTooManyRequests {
		s.met.errors.Add(1)
	}
	writeJSON(w, code, errBody(err))
}

// writeRejection renders a structured admission rejection: the Retry-After
// header (whole seconds, as HTTP requires) plus the error envelope with
// the stable code and the same hint in-body.
func (s *Server) writeRejection(w http.ResponseWriter, rej *admission.Rejection) {
	s.met.rejected.Add(1)
	if rej.Status != http.StatusTooManyRequests {
		s.met.errors.Add(1)
	}
	writeRejection(w, rej)
}

func writeRejection(w http.ResponseWriter, rej *admission.Rejection) {
	ra := rej.RetryAfter
	if ra <= 0 {
		ra = time.Second
	}
	secs := int64((ra + time.Second - 1) / time.Second)
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, rej.Status, errorBody{
		Error:       rej.Message,
		Code:        rej.Code,
		RetryAfterS: float64(secs),
	})
}

// withRetry runs op, retrying transient failures (injected infrastructure
// faults, never numeric errors) with exponential backoff. The backoff wait
// respects the request's deadline.
func (s *Server) withRetry(ctx context.Context, op func() error) error {
	backoff := s.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		err := op()
		if err == nil || attempt >= s.cfg.RetryAttempts || !faultinject.IsTransient(err) {
			return err
		}
		s.met.retries.Add(1)
		timer := time.NewTimer(backoff)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		}
		backoff *= 2
	}
}

// ---- per-pattern circuit breaker ----

var errBreakerOpen = errors.New("circuit breaker open: this pattern's factorizations keep failing on a pivot; retry after the cooldown or fix the matrix")

// breakerState tracks consecutive pivot failures for one pattern id.
type breakerState struct {
	fails     int
	until     time.Time // while now < until, factor requests fail fast
	lastPivot error     // most recent pivot failure, echoed by fail-fast responses
}

// breakerOpen reports whether id is tripped; the returned error wraps the
// pattern's last pivot failure so the fail-fast 422 still carries the
// breakdown location. A breaker whose cooldown has elapsed resets fully:
// the next real factorization decides its fate.
func (s *Server) breakerOpen(id string) (error, bool) {
	if s.cfg.BreakerThreshold <= 0 {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	bs, ok := s.breakers[id]
	if !ok || bs.until.IsZero() {
		return nil, false
	}
	if time.Now().After(bs.until) {
		delete(s.breakers, id)
		return nil, false
	}
	return fmt.Errorf("%w: %w", errBreakerOpen, bs.lastPivot), true
}

// breakerNote records a factor/refactor outcome for id. Only pivot
// breakdowns count against the pattern; transient faults, cancellations,
// and successes clear it.
func (s *Server) breakerNote(id string, err error) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil || !errors.Is(err, kernels.ErrNotPositiveDefinite) {
		delete(s.breakers, id)
		return
	}
	bs, ok := s.breakers[id]
	if !ok {
		bs = &breakerState{}
		s.breakers[id] = bs
	}
	bs.fails++
	bs.lastPivot = err
	if bs.fails >= s.cfg.BreakerThreshold && bs.until.IsZero() {
		bs.until = time.Now().Add(s.cfg.BreakerCooldown)
		s.met.breakerTrips.Add(1)
	}
}

// errStatus maps an operational error to its HTTP status. Admission
// rejections carry their own status.
func errStatus(err error) int {
	var rej *admission.Rejection
	switch {
	case errors.As(err, &rej):
		return rej.Status
	case errors.Is(err, errFactorInvalid):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// ---- /v1/factor ----

type factorResponse struct {
	ID         string `json:"id"`
	N          int    `json:"n"`
	NNZ        int    `json:"nnz"`
	NNZL       int64  `json:"nnz_l"`
	Flops      int64  `json:"flops"`
	CacheHit   bool   `json:"cache_hit"`
	Refactored bool   `json:"refactored"`
	// Shift is the diagonal perturbation α applied under ?perturb=1; zero
	// when the matrix factored unmodified. The factor then solves A+αI.
	Shift     float64 `json:"shift,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms"`
}

func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request) {
	s.met.factorRequests.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.isDraining() {
		s.writeErr(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Shed doomed requests before parsing the matrix — the largest body
	// the server accepts. The class is not knowable until the pattern
	// hash is, so precheck as Refactor (the lenient choice: a cold
	// factorization slipping past here is still rejected by Admit).
	if rej := s.adm.Precheck(tenantOf(r), admission.Refactor); rej != nil {
		s.writeRejection(w, rej)
		return
	}

	m, err := ReadMatrix(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), r.Header.Get("Content-Type"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	perturb := r.URL.Query().Get("perturb") == "1" || r.URL.Query().Get("perturb") == "true"

	// Fail fast on a tripped breaker before analysis or queueing: the id is
	// the pattern hash, so it is known before any heavy work.
	id := fmt.Sprintf("%016x", m.PatternHash())
	if berr, open := s.breakerOpen(id); open {
		s.met.breakerFastFails.Add(1)
		s.writeErr(w, http.StatusUnprocessableEntity, berr)
		return
	}

	// Price the request before admission. A live factor makes this a
	// numeric-only refactorization (middle priority class); a cached plan
	// gives the exact modeled flops (deadline feasibility) and factor
	// size. Neither peek promotes LRU positions or counts as a hit.
	tenant := tenantOf(r)
	pri := admission.Cold
	if s.factorLive(id) {
		pri = admission.Refactor
	}
	var costEst time.Duration
	var exactBytes int64
	if pe, ok := s.cache.Peek(m, s.planKey); ok {
		costEst = s.cost.Estimate(pe.Plan.Exact.Flops)
		exactBytes = pe.Plan.Exact.NZinL * 8
	}
	if body, reject := s.factorBytesGate(m, exactBytes); reject {
		s.met.rejected.Add(1)
		s.met.errors.Add(1)
		writeJSON(w, http.StatusRequestEntityTooLarge, body)
		return
	}
	if rej := s.tenantCacheGate(tenant, m); rej != nil {
		s.writeRejection(w, rej)
		return
	}

	rel, rej, err := s.adm.Admit(ctx, admission.Request{
		Tenant:   tenant,
		Priority: pri,
		Cost:     costEst,
		Deadline: admissionDeadline(ctx),
	})
	if rej != nil {
		s.writeRejection(w, rej)
		return
	}
	if err != nil {
		s.writeErr(w, errStatus(err), err)
		return
	}
	defer rel()

	start := time.Now()
	entry, hit, err := s.cache.GetOrBuildFor(m, s.planKey, tenant, func() (*core.Plan, sched.Assignment, error) {
		return s.buildPlan(m)
	})
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	// Feedback-driven mapping: if a tuned sibling of the static entry is
	// cached, factor under it instead — the second (and every later)
	// factorization of a pattern runs the mapping rebuilt from the first
	// run's measured span costs.
	sentry := entry // static entry: the tuned link lives on it
	tunedPlan := false
	if s.cfg.Tune {
		if tcfg := s.cache.TunedConfig(sentry); tcfg != 0 {
			if te, ok := s.cache.Get(m, tcfg); ok {
				entry, tunedPlan = te, true
			}
		}
	}

	refactored := false
	var shift float64
	for attempt := 0; ; attempt++ {
		fe, created := s.claimEntry(id, m.N, entry.Plan)
		if created {
			// fe.mu is held for writing; publish the factor, or unregister
			// (before unlocking, so waiters that see f==nil know the entry
			// is already gone and can safely re-claim) on failure. The
			// factorization must use the posted values, not the plan's: on a
			// cache hit the plan carries whichever values built it.
			measure := s.cfg.Tune && !tunedPlan && !perturb
			var f *core.Factor
			var rec *obs.Recorder
			var pr *sched.Program
			ferr := s.guardEntry(fe, func() error {
				return s.withRetry(ctx, func() error {
					if err := faultinject.Fire("server.factor"); err != nil {
						return err
					}
					var err error
					switch {
					case perturb:
						f, shift, err = entry.Plan.FactorValuesPerturbedContext(ctx, entry.Assign, m.Val, core.Perturbation{})
					case measure:
						f, rec, pr, err = entry.Plan.FactorMeasuredValuesContext(ctx, entry.Assign, m.Val)
					default:
						f, err = entry.Plan.FactorValuesContext(ctx, entry.Assign, m.Val)
					}
					return err
				})
			})
			s.breakerNote(id, ferr)
			if ferr != nil {
				s.dropEntry(fe)
				fe.mu.Unlock()
				s.writeErr(w, factorErrStatus(ferr), ferr)
				return
			}
			fe.f = f
			if measure && rec != nil {
				if tf, tp := s.tuneFromMeasurement(sentry, m, f, rec, pr); tf != nil {
					// Same numeric blocks, tuned ownership: swap the live
					// factor without a second factorization.
					fe.f, fe.plan = tf, tp
				}
			}
			s.saveSnapshot(fe, m, fe.f, fe.plan.Opts.ConfigKey())
			s.markReady(fe)
			fe.mu.Unlock()
			s.met.factors.Add(1)
			s.met.factorLat.Observe(time.Since(start))
			s.cost.Observe(entry.Plan.Exact.Flops, time.Since(start))
			break
		}
		// Live factor for this pattern: numeric-only refactorization. The
		// write lock serializes against in-flight solves, so a solve
		// observes either the old values' factor or the new one, never a
		// half-updated state.
		fe.mu.Lock()
		if fe.f == nil {
			// The entry's creator failed and dropped it between our claim
			// and this lock; retry — we will most likely become the creator.
			fe.mu.Unlock()
			if attempt < 4 {
				continue
			}
			s.writeErr(w, http.StatusServiceUnavailable, errors.New("factorization repeatedly failing for this pattern"))
			return
		}
		if !fe.plan.A.SamePattern(m) {
			// 64-bit pattern-hash collision with a live factor: refuse
			// rather than refactor the wrong structure.
			fe.mu.Unlock()
			s.writeErr(w, http.StatusConflict, fmt.Errorf("factor id %s is held by a different sparsity pattern (hash collision)", id))
			return
		}
		rerr := s.guardEntry(fe, func() error {
			return s.withRetry(ctx, func() error {
				if err := faultinject.Fire("server.refactor"); err != nil {
					return err
				}
				var err error
				if perturb {
					shift, err = fe.f.RefactorPerturbedContext(ctx, m.Val, core.Perturbation{})
				} else {
					err = fe.f.RefactorContext(ctx, m.Val)
				}
				return err
			})
		})
		s.breakerNote(id, rerr)
		if rerr != nil {
			// A failed (or cancelled) refactor leaves the factor numerically
			// invalid: invalidate and unregister it so it can never serve a
			// solve again. In-flight solves holding this entry see f==nil.
			fe.f = nil
			s.dropEntry(fe)
			fe.mu.Unlock()
			s.writeErr(w, factorErrStatus(rerr), rerr)
			return
		}
		s.saveSnapshot(fe, m, fe.f, fe.plan.Opts.ConfigKey())
		fe.mu.Unlock()
		refactored = true
		s.met.refactors.Add(1)
		s.met.refactorLat.Observe(time.Since(start))
		s.cost.Observe(entry.Plan.Exact.Flops, time.Since(start))
		break
	}

	plan := entry.Plan
	writeJSON(w, http.StatusOK, factorResponse{
		ID:         id,
		N:          m.N,
		NNZ:        m.NNZ(),
		NNZL:       plan.Exact.NZinL,
		Flops:      plan.Exact.Flops,
		CacheHit:   hit,
		Refactored: refactored,
		Shift:      shift,
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// factorErrStatus: numeric failures (non-SPD input) are the client's
// fault; transient infrastructure faults that survived the retries are the
// server's.
func factorErrStatus(err error) int {
	if st := errStatus(err); st != http.StatusInternalServerError {
		return st
	}
	if faultinject.IsTransient(err) {
		return http.StatusInternalServerError
	}
	return http.StatusUnprocessableEntity
}

// guardEntry runs op while the caller holds fe.mu for writing. If op
// panics, the entry is invalidated, unregistered, and unlocked before the
// panic continues to the recovery middleware — otherwise the wedged write
// lock would deadlock every later request for this pattern (the panic test
// in chaos_test.go found exactly that).
func (s *Server) guardEntry(fe *factorEntry, op func() error) error {
	defer func() {
		if rec := recover(); rec != nil {
			fe.f = nil
			s.dropEntry(fe)
			fe.mu.Unlock()
			panic(rec)
		}
	}()
	return op()
}

// claimEntry returns the factor entry for id, creating it if absent. When
// created is true the entry's write lock is held and fe.f is nil — the
// caller must set fe.f and unlock (or dropEntry on failure). This is the
// per-factor singleflight: a concurrent request for the same new pattern
// blocks on fe.mu instead of factoring twice.
func (s *Server) claimEntry(id string, n int, plan *core.Plan) (fe *factorEntry, created bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fe, ok := s.factors[id]; ok {
		s.lru.MoveToFront(fe.el)
		return fe, false
	}
	fe = &factorEntry{id: id, n: n, plan: plan, building: true}
	fe.bt = &batcher{s: s, fe: fe}
	fe.mu.Lock()
	s.factors[id] = fe
	fe.el = s.lru.PushFront(fe)
	// Evict from the cold end, skipping entries whose initial factorization
	// is still in flight — evicting those would 404 an id the server is
	// about to return.
	for el := s.lru.Back(); el != nil && len(s.factors) > s.cfg.MaxFactors; {
		victim := el.Value.(*factorEntry)
		el = el.Prev()
		if victim.building {
			continue
		}
		s.lru.Remove(victim.el)
		delete(s.factors, victim.id)
	}
	return fe, true
}

// markReady clears the eviction guard once the creator has published fe.f.
func (s *Server) markReady(fe *factorEntry) {
	s.mu.Lock()
	fe.building = false
	s.mu.Unlock()
}

// dropEntry unregisters exactly fe: the pointer comparison keeps a stale
// drop (after a failed build) from deleting a newer entry that a concurrent
// request re-created under the same id.
func (s *Server) dropEntry(fe *factorEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.factors[fe.id]; ok && cur == fe {
		s.lru.Remove(fe.el)
		delete(s.factors, fe.id)
	}
}

func (s *Server) lookup(id string) (*factorEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe, ok := s.factors[id]
	if ok {
		s.lru.MoveToFront(fe.el)
	}
	return fe, ok
}

// factorLive reports whether id already has a registered factor entry,
// without promoting it in the LRU — used only to classify an incoming
// factor request as a refactor vs a cold factorization for admission.
func (s *Server) factorLive(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.factors[id]
	return ok
}

// factorBytesGate enforces Config.MaxFactorBytes before any symbolic work.
// exactBytes is the plan's exact nnz(L)×8 when the analysis is cached, 0
// otherwise — then the gate falls back to 8×nnz(tril(A)), a true lower
// bound since Cholesky fill only adds nonzeros to A's lower triangle.
func (s *Server) factorBytesGate(m *sparse.Matrix, exactBytes int64) (errorBody, bool) {
	if s.cfg.MaxFactorBytes <= 0 {
		return errorBody{}, false
	}
	est, kind := exactBytes, "exact"
	if est == 0 {
		est, kind = 8*trilNNZ(m), "lower bound"
	}
	if est <= s.cfg.MaxFactorBytes {
		return errorBody{}, false
	}
	return errorBody{
		Error: fmt.Sprintf("estimated factor size %d bytes (%s) exceeds the %d-byte budget", est, kind, s.cfg.MaxFactorBytes),
		Code:  "factor_too_large",
	}, true
}

// trilNNZ counts stored entries on or below the diagonal — the part of A
// that L must at least contain.
func trilNNZ(m *sparse.Matrix) int64 {
	var nnz int64
	for j := 0; j < m.N; j++ {
		for p := m.ColPtr[j]; p < m.ColPtr[j+1]; p++ {
			if m.RowInd[p] >= j {
				nnz++
			}
		}
	}
	return nnz
}

// tenantCacheGate rejects a factor request that would build a *new* plan
// while its tenant is already at its cached-bytes quota (requests reusing
// a cached analysis always pass — they add no bytes).
func (s *Server) tenantCacheGate(tenant string, m *sparse.Matrix) *admission.Rejection {
	lim := s.adm.Limits(tenant)
	if lim.MaxCacheBytes <= 0 {
		return nil
	}
	if _, ok := s.cache.Peek(m, s.planKey); ok {
		return nil
	}
	if used := s.cache.TenantBytes(tenant); used >= lim.MaxCacheBytes {
		return &admission.Rejection{
			Status: http.StatusTooManyRequests, Code: "tenant_quota",
			RetryAfter: 30 * time.Second,
			Message:    fmt.Sprintf("tenant %q holds %d cached plan bytes, at or over its %d-byte quota; evict by factoring fewer distinct patterns or raise the quota", tenant, used, lim.MaxCacheBytes),
		}
	}
	return nil
}

// ---- /v1/solve ----

type solveRequest struct {
	ID string      `json:"id"`
	B  []float64   `json:"b,omitempty"`
	BS [][]float64 `json:"bs,omitempty"`
}

type solveResponse struct {
	ID        string      `json:"id"`
	X         []float64   `json:"x,omitempty"`
	XS        [][]float64 `json:"xs,omitempty"`
	Batch     int         `json:"batch,omitempty"` // RHS count of the coalesced sweep
	ElapsedMs float64     `json:"elapsed_ms"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.solveRequests.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.isDraining() {
		s.writeErr(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Shed doomed requests on headers alone, before reading the body: a
	// flooding tenant's overflow must be rejected for microseconds of
	// CPU, not a full JSON parse, or the rejection path itself becomes
	// the overload. Admit re-applies the same gates authoritatively.
	if rej := s.adm.Precheck(tenantOf(r), admission.Interactive); rej != nil {
		s.writeRejection(w, rej)
		return
	}

	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad solve body: %w", err))
		return
	}
	if (req.B == nil) == (req.BS == nil) {
		s.writeErr(w, http.StatusBadRequest, errors.New(`exactly one of "b" and "bs" must be set`))
		return
	}
	fe, ok := s.lookup(req.ID)
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown factor id %q", req.ID))
		return
	}
	tenant := tenantOf(r)

	start := time.Now()
	if req.B != nil {
		if err := validRHS(fe.n, req.B); err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		var out solveOutcome
		if s.cfg.BatchWindow > 0 {
			// Batched path: the tenant is charged (token bucket + brownout
			// gate) per request here; the coalesced sweep itself takes one
			// internal worker slot on behalf of the whole batch.
			if rej := s.adm.Charge(tenant, admission.Interactive); rej != nil {
				s.writeRejection(w, rej)
				return
			}
			out = fe.bt.submit(ctx, req.B)
		} else {
			out = s.solveDirect(ctx, fe, tenant, [][]float64{req.B})
		}
		if out.err != nil {
			s.writeErr(w, errStatus(out.err), out.err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse{
			ID: req.ID, X: out.x, Batch: out.batch,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
		})
		return
	}

	for i, b := range req.BS {
		if err := validRHS(fe.n, b); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("rhs %d: %w", i, err))
			return
		}
	}
	out := s.solveDirect(ctx, fe, tenant, req.BS)
	if out.err != nil {
		s.writeErr(w, errStatus(out.err), out.err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		ID: req.ID, XS: out.xs,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// solveDirect runs one SolveMany on the worker pool, bypassing the batcher
// (multi-RHS requests are already batches). The solve's cost estimate is
// ~4 flops per nonzero of L per right-hand side (forward + back
// substitution), priced through the same observed-throughput model as
// factorizations so deadline-infeasible solves shed instead of queueing.
func (s *Server) solveDirect(ctx context.Context, fe *factorEntry, tenant string, bs [][]float64) solveOutcome {
	rel, rej, err := s.adm.Admit(ctx, admission.Request{
		Tenant:   tenant,
		Priority: admission.Interactive,
		Cost:     s.solveCost(fe, len(bs)),
		Deadline: admissionDeadline(ctx),
	})
	if rej != nil {
		return solveOutcome{err: rej}
	}
	if err != nil {
		return solveOutcome{err: err}
	}
	defer rel()
	start := time.Now()
	var xs [][]float64
	err = s.withRetry(ctx, func() error {
		if err := faultinject.Fire("server.solve"); err != nil {
			return err
		}
		fe.mu.RLock()
		defer fe.mu.RUnlock() // deferred so a solve panic cannot wedge the read lock
		if fe.f == nil {
			return errFactorInvalid
		}
		var serr error
		xs, serr = fe.f.SolveMany(bs)
		return serr
	})
	s.met.solveLat.Observe(time.Since(start))
	if err != nil {
		return solveOutcome{err: err}
	}
	s.met.solvedRHS.Add(int64(len(bs)))
	if len(bs) == 1 {
		return solveOutcome{x: xs[0], batch: 1}
	}
	return solveOutcome{xs: xs}
}

// solveCost estimates a SolveMany's execution time: triangular solves do
// roughly 4·nnz(L) flops per right-hand side, converted through the
// observed throughput model. A deliberately rough figure — it only has to
// be the right order of magnitude for deadline shedding to beat silently
// burning the deadline in the queue.
func (s *Server) solveCost(fe *factorEntry, nrhs int) time.Duration {
	if fe.plan == nil {
		return 0
	}
	return s.cost.Estimate(4 * fe.plan.Exact.NZinL * int64(nrhs))
}

// ---- /healthz and /metrics ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.healthzRequests.Add(1)
	state := s.adm.State()
	body := map[string]string{"status": "ok", "admission": state.String()}
	if s.isDraining() {
		body["status"] = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	// Brownout keeps /healthz at 200 — the server is degraded, not dead,
	// and a 503 here would make load balancers yank a node that is still
	// serving interactive traffic. The state string is the signal.
	writeJSON(w, http.StatusOK, body)
}

// metricsDoc is the /metrics JSON document.
type metricsDoc struct {
	Requests struct {
		Factor  int64 `json:"factor"`
		Solve   int64 `json:"solve"`
		Healthz int64 `json:"healthz"`
		Metrics int64 `json:"metrics"`
	} `json:"requests"`
	InFlight int64 `json:"in_flight"`
	Rejected int64 `json:"rejected"`
	Errors   int64 `json:"errors"`
	Panics   int64 `json:"panics"`
	Retries  int64 `json:"retries"`
	Breaker  struct {
		Trips     int64 `json:"trips"`
		FastFails int64 `json:"fast_fails"`
		Open      int   `json:"open"` // patterns currently failing fast
	} `json:"breaker"`
	Factors   int64           `json:"factors"`
	Refactors int64           `json:"refactors"`
	SolvedRHS int64           `json:"solved_rhs"`
	Batches   int64           `json:"batches"`
	BatchedR  int64           `json:"batched_rhs"`
	Cache     plancache.Stats `json:"plan_cache"`
	LiveFac   int             `json:"live_factors"`
	Tune      *tuneDoc        `json:"tune,omitempty"`  // absent without -tune
	Store     *storeDoc       `json:"store,omitempty"` // absent without -store-dir
	Admission admission.Stats `json:"admission"`       // brownout state, queues, per-tenant counters

	Latency struct {
		Factor   latencyJSON `json:"factor"`
		Refactor latencyJSON `json:"refactor"`
		Solve    latencyJSON `json:"solve"`
	} `json:"latency"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsRequests.Add(1)
	var doc metricsDoc
	doc.Requests.Factor = s.met.factorRequests.Load()
	doc.Requests.Solve = s.met.solveRequests.Load()
	doc.Requests.Healthz = s.met.healthzRequests.Load()
	doc.Requests.Metrics = s.met.metricsRequests.Load()
	doc.InFlight = s.met.inFlight.Load()
	doc.Rejected = s.met.rejected.Load()
	doc.Errors = s.met.errors.Load()
	doc.Factors = s.met.factors.Load()
	doc.Refactors = s.met.refactors.Load()
	doc.SolvedRHS = s.met.solvedRHS.Load()
	doc.Batches = s.met.batches.Load()
	doc.BatchedR = s.met.batched.Load()
	doc.Panics = s.met.panics.Load()
	doc.Retries = s.met.retries.Load()
	doc.Breaker.Trips = s.met.breakerTrips.Load()
	doc.Breaker.FastFails = s.met.breakerFastFails.Load()
	doc.Cache = s.cache.Stats()
	s.mu.Lock()
	doc.LiveFac = len(s.factors)
	now := time.Now()
	for _, bs := range s.breakers {
		if !bs.until.IsZero() && now.Before(bs.until) {
			doc.Breaker.Open++
		}
	}
	s.mu.Unlock()
	doc.Admission = s.adm.Snapshot()
	if s.cfg.Tune {
		doc.Tune = &tuneDoc{
			Adopted:      s.met.tuneAdopted.Load(),
			Declined:     s.met.tuneDeclined.Load(),
			Skipped:      s.met.tuneSkipped.Load(),
			DroppedSpans: s.met.tuneDropped.Load(),
			WarmRestored: s.met.tuneRestored.Load(),
		}
	}
	doc.Latency.Factor = latencySnapshot(&s.met.factorLat)
	doc.Latency.Refactor = latencySnapshot(&s.met.refactorLat)
	doc.Latency.Solve = latencySnapshot(&s.met.solveLat)
	if s.st != nil || s.storeErr != nil {
		sd := &storeDoc{
			Writes:       s.met.snapWrites.Load(),
			WriteErrors:  s.met.snapErrors.Load(),
			Dropped:      s.met.snapDropped.Load(),
			Skipped:      s.met.snapSkipped.Load(),
			WarmRestored: s.met.warmRestored.Load(),
		}
		if s.storeErr != nil {
			sd.OpenError = s.storeErr.Error()
		}
		if s.st != nil {
			sd.Stats = s.st.Stats()
		}
		doc.Store = sd
	}
	writeJSON(w, http.StatusOK, doc)
}

// tuneDoc is the /metrics section for feedback-driven mapping.
type tuneDoc struct {
	Adopted      int64 `json:"adopted"`       // tuned mappings adopted over static
	Declined     int64 `json:"declined"`      // measured remaps that did not beat static
	Skipped      int64 `json:"skipped"`       // unusable measurements (truncation, restore failure)
	DroppedSpans int64 `json:"dropped_spans"` // recorder drops seen on measurement runs (0 = healthy)
	WarmRestored int64 `json:"warm_restored"` // tuned mappings restored by the last WarmStart
}

// storeDoc is the /metrics section for the durable snapshot store.
type storeDoc struct {
	Writes       int64       `json:"writes"`        // write-behind snapshots committed
	WriteErrors  int64       `json:"write_errors"`  // snapshot writes that failed
	Dropped      int64       `json:"dropped"`       // snapshots dropped (queue full)
	Skipped      int64       `json:"skipped"`       // snapshots skipped by the interval throttle
	WarmRestored int64       `json:"warm_restored"` // factors restored by the last WarmStart
	OpenError    string      `json:"open_error,omitempty"`
	Stats        store.Stats `json:"stats"`
}

// CacheStats exposes the plan-cache counters (used by tests and the
// service benchmark; HTTP clients read them from /metrics).
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }
