// Package server turns the block fan-out Cholesky library into a
// long-running solve service. It is the serving layer the ROADMAP's
// analyze-once/factor-many workloads need: a pattern-keyed plan cache so
// repeated factor requests for the same sparsity structure skip ordering
// and symbolic analysis, in-place numeric refactorization of live factors,
// and an RHS batcher that coalesces concurrent solve requests against the
// same factor into one cache-friendly multi-RHS sweep.
//
// Endpoints (all JSON responses):
//
//	POST /v1/factor   MatrixMarket or JSON-CSC body → factor id
//	POST /v1/solve    {"id", "b": [...]} or {"id", "bs": [[...], ...]}
//	GET  /healthz     liveness (503 while draining)
//	GET  /metrics     expvar-style counter document
//
// Heavy work (analysis, factorization, solves) runs on a bounded worker
// pool; requests beyond the pool plus a configurable queue depth are
// rejected with 429 so overload degrades predictably instead of piling up
// goroutines. Request deadlines propagate as context cancellation into the
// parallel factorization executor. Drain flips the service into a mode
// where health checks fail (so load balancers stop routing) while in-flight
// work completes.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/mapping"
	"blockfanout/internal/plancache"
	"blockfanout/internal/sched"
)

// Config tunes the service. Zero values select the documented defaults.
type Config struct {
	// Procs is the goroutine-processor count of each parallel
	// factorization (default: GOMAXPROCS capped at 16).
	Procs int
	// Workers bounds concurrently executing heavy operations
	// (default: GOMAXPROCS).
	Workers int
	// QueueDepth is how many heavy operations may wait for a worker before
	// new ones are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries / CacheBytes budget the pattern-keyed plan cache
	// (defaults: plancache defaults). MaxFactors bounds the live factor
	// registry (default: CacheEntries).
	CacheEntries int
	CacheBytes   int64
	MaxFactors   int
	// BatchWindow is how long the first single-RHS solve of a batch waits
	// for company (default 2ms; negative disables batching). BatchLimit
	// flushes a batch early once it holds this many vectors (default 64).
	BatchWindow time.Duration
	BatchLimit  int
	// RequestTimeout bounds each request's heavy work (default 60s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 512 MiB).
	MaxBodyBytes int64
	// BlockSize is the panel width B of new plans (default
	// core.DefaultBlockSize).
	BlockSize int
}

func (c *Config) fillDefaults() {
	if c.Procs <= 0 {
		c.Procs = runtime.GOMAXPROCS(0)
		if c.Procs > 16 {
			c.Procs = 16
		}
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 512 << 20
	}
	if c.BlockSize <= 0 {
		c.BlockSize = core.DefaultBlockSize
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = plancache.DefaultEntries
	}
	if c.MaxFactors <= 0 {
		c.MaxFactors = c.CacheEntries
	}
}

// factorEntry is one live factor. mu serializes refactorization (writer)
// against solves (readers). f is nil while the initial factorization is
// still running under the write lock, and again — permanently — after a
// failed factorization or refactorization invalidates the entry; every
// reader must check f under the lock before dereferencing.
type factorEntry struct {
	id   string
	n    int
	plan *core.Plan // the analysis this factor was built from (pattern guard)
	mu   sync.RWMutex
	f    *core.Factor
	bt   *batcher
	el   *list.Element // position in the server's factor LRU
	// building is true while the creator still holds mu for the initial
	// factorization. Guarded by the server's mu; eviction skips building
	// entries so a freshly issued id cannot vanish before its factor lands.
	building bool
}

// Server is the solve service. Create with New, mount via Handler.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	sem   chan struct{} // worker pool slots

	mu       sync.Mutex // guards factors, lru, queued
	factors  map[string]*factorEntry
	lru      *list.List // front = most recently used factorEntry
	queued   int
	draining bool

	met metrics
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	return &Server{
		cfg:     cfg,
		cache:   plancache.New(plancache.Config{MaxEntries: cfg.CacheEntries, MaxBytes: cfg.CacheBytes}),
		sem:     make(chan struct{}, cfg.Workers),
		factors: make(map[string]*factorEntry),
		lru:     list.New(),
	}
}

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/factor", s.handleFactor)
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Drain flips the server into shutdown mode: /healthz reports 503 so load
// balancers stop routing, and new factor/solve requests are refused while
// in-flight ones finish (http.Server.Shutdown provides the actual wait).
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

var (
	errBusy          = errors.New("server overloaded: worker queue full")
	errFactorInvalid = errors.New("factor is no longer valid: its factorization or refactorization failed; re-POST the matrix to /v1/factor")
)

// acquire takes a worker slot, respecting the queue bound and the caller's
// deadline.
func (s *Server) acquire(ctx context.Context) error {
	s.mu.Lock()
	if s.queued >= s.cfg.Workers+s.cfg.QueueDepth {
		s.mu.Unlock()
		s.met.rejected.Add(1)
		return errBusy
	}
	s.queued++
	s.mu.Unlock()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		s.queued--
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *Server) release() {
	<-s.sem
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ---- response plumbing ----

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	if code != http.StatusTooManyRequests {
		s.met.errors.Add(1)
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// errStatus maps an operational error to its HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, errBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, errFactorInvalid):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// ---- /v1/factor ----

type factorResponse struct {
	ID         string  `json:"id"`
	N          int     `json:"n"`
	NNZ        int     `json:"nnz"`
	NNZL       int64   `json:"nnz_l"`
	Flops      int64   `json:"flops"`
	CacheHit   bool    `json:"cache_hit"`
	Refactored bool    `json:"refactored"`
	ElapsedMs  float64 `json:"elapsed_ms"`
}

func (s *Server) handleFactor(w http.ResponseWriter, r *http.Request) {
	s.met.factorRequests.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.isDraining() {
		s.writeErr(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	m, err := readMatrix(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), r.Header.Get("Content-Type"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}

	if err := s.acquire(ctx); err != nil {
		s.writeErr(w, errStatus(err), err)
		return
	}
	defer s.release()

	start := time.Now()
	entry, hit, err := s.cache.GetOrBuild(m, func() (*core.Plan, sched.Assignment, error) {
		plan, err := core.NewPlan(m, core.Options{BlockSize: s.cfg.BlockSize})
		if err != nil {
			return nil, sched.Assignment{}, err
		}
		g := mapping.BestGrid(s.cfg.Procs)
		mp := plan.Map(g, mapping.ID, mapping.CY)
		return plan, plan.Assign(mp, 2), nil
	})
	if err != nil {
		s.writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}

	id := fmt.Sprintf("%016x", entry.Key)
	refactored := false
	for attempt := 0; ; attempt++ {
		fe, created := s.claimEntry(id, m.N, entry.Plan)
		if created {
			// fe.mu is held for writing; publish the factor, or unregister
			// (before unlocking, so waiters that see f==nil know the entry
			// is already gone and can safely re-claim) on failure. The
			// factorization must use the posted values, not the plan's: on a
			// cache hit the plan carries whichever values built it.
			f, ferr := entry.Plan.FactorValuesContext(ctx, entry.Assign, m.Val)
			if ferr != nil {
				s.dropEntry(fe)
				fe.mu.Unlock()
				s.writeErr(w, factorErrStatus(ferr), ferr)
				return
			}
			fe.f = f
			s.markReady(fe)
			fe.mu.Unlock()
			s.met.factors.Add(1)
			s.met.factorLat.observe(time.Since(start))
			break
		}
		// Live factor for this pattern: numeric-only refactorization. The
		// write lock serializes against in-flight solves, so a solve
		// observes either the old values' factor or the new one, never a
		// half-updated state.
		fe.mu.Lock()
		if fe.f == nil {
			// The entry's creator failed and dropped it between our claim
			// and this lock; retry — we will most likely become the creator.
			fe.mu.Unlock()
			if attempt < 4 {
				continue
			}
			s.writeErr(w, http.StatusServiceUnavailable, errors.New("factorization repeatedly failing for this pattern"))
			return
		}
		if !fe.plan.A.SamePattern(m) {
			// 64-bit pattern-hash collision with a live factor: refuse
			// rather than refactor the wrong structure.
			fe.mu.Unlock()
			s.writeErr(w, http.StatusConflict, fmt.Errorf("factor id %s is held by a different sparsity pattern (hash collision)", id))
			return
		}
		rerr := fe.f.RefactorContext(ctx, m.Val)
		if rerr != nil {
			// A failed (or cancelled) refactor leaves the factor numerically
			// invalid: invalidate and unregister it so it can never serve a
			// solve again. In-flight solves holding this entry see f==nil.
			fe.f = nil
			s.dropEntry(fe)
			fe.mu.Unlock()
			s.writeErr(w, factorErrStatus(rerr), rerr)
			return
		}
		fe.mu.Unlock()
		refactored = true
		s.met.refactors.Add(1)
		s.met.refactorLat.observe(time.Since(start))
		break
	}

	plan := entry.Plan
	writeJSON(w, http.StatusOK, factorResponse{
		ID:         id,
		N:          m.N,
		NNZ:        m.NNZ(),
		NNZL:       plan.Exact.NZinL,
		Flops:      plan.Exact.Flops,
		CacheHit:   hit,
		Refactored: refactored,
		ElapsedMs:  float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// factorErrStatus: numeric failures (non-SPD input) are the client's fault.
func factorErrStatus(err error) int {
	if st := errStatus(err); st != http.StatusInternalServerError {
		return st
	}
	return http.StatusUnprocessableEntity
}

// claimEntry returns the factor entry for id, creating it if absent. When
// created is true the entry's write lock is held and fe.f is nil — the
// caller must set fe.f and unlock (or dropEntry on failure). This is the
// per-factor singleflight: a concurrent request for the same new pattern
// blocks on fe.mu instead of factoring twice.
func (s *Server) claimEntry(id string, n int, plan *core.Plan) (fe *factorEntry, created bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if fe, ok := s.factors[id]; ok {
		s.lru.MoveToFront(fe.el)
		return fe, false
	}
	fe = &factorEntry{id: id, n: n, plan: plan, building: true}
	fe.bt = &batcher{s: s, fe: fe}
	fe.mu.Lock()
	s.factors[id] = fe
	fe.el = s.lru.PushFront(fe)
	// Evict from the cold end, skipping entries whose initial factorization
	// is still in flight — evicting those would 404 an id the server is
	// about to return.
	for el := s.lru.Back(); el != nil && len(s.factors) > s.cfg.MaxFactors; {
		victim := el.Value.(*factorEntry)
		el = el.Prev()
		if victim.building {
			continue
		}
		s.lru.Remove(victim.el)
		delete(s.factors, victim.id)
	}
	return fe, true
}

// markReady clears the eviction guard once the creator has published fe.f.
func (s *Server) markReady(fe *factorEntry) {
	s.mu.Lock()
	fe.building = false
	s.mu.Unlock()
}

// dropEntry unregisters exactly fe: the pointer comparison keeps a stale
// drop (after a failed build) from deleting a newer entry that a concurrent
// request re-created under the same id.
func (s *Server) dropEntry(fe *factorEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.factors[fe.id]; ok && cur == fe {
		s.lru.Remove(fe.el)
		delete(s.factors, fe.id)
	}
}

func (s *Server) lookup(id string) (*factorEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fe, ok := s.factors[id]
	if ok {
		s.lru.MoveToFront(fe.el)
	}
	return fe, ok
}

// ---- /v1/solve ----

type solveRequest struct {
	ID string      `json:"id"`
	B  []float64   `json:"b,omitempty"`
	BS [][]float64 `json:"bs,omitempty"`
}

type solveResponse struct {
	ID        string      `json:"id"`
	X         []float64   `json:"x,omitempty"`
	XS        [][]float64 `json:"xs,omitempty"`
	Batch     int         `json:"batch,omitempty"` // RHS count of the coalesced sweep
	ElapsedMs float64     `json:"elapsed_ms"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.met.solveRequests.Add(1)
	s.met.inFlight.Add(1)
	defer s.met.inFlight.Add(-1)
	if r.Method != http.MethodPost {
		s.writeErr(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.isDraining() {
		s.writeErr(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	var req solveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad solve body: %w", err))
		return
	}
	if (req.B == nil) == (req.BS == nil) {
		s.writeErr(w, http.StatusBadRequest, errors.New(`exactly one of "b" and "bs" must be set`))
		return
	}
	fe, ok := s.lookup(req.ID)
	if !ok {
		s.writeErr(w, http.StatusNotFound, fmt.Errorf("unknown factor id %q", req.ID))
		return
	}

	start := time.Now()
	if req.B != nil {
		if err := validRHS(fe.n, req.B); err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
		var out solveOutcome
		if s.cfg.BatchWindow > 0 {
			out = fe.bt.submit(ctx, req.B)
		} else {
			out = s.solveDirect(ctx, fe, [][]float64{req.B})
		}
		if out.err != nil {
			s.writeErr(w, errStatus(out.err), out.err)
			return
		}
		writeJSON(w, http.StatusOK, solveResponse{
			ID: req.ID, X: out.x, Batch: out.batch,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
		})
		return
	}

	for i, b := range req.BS {
		if err := validRHS(fe.n, b); err != nil {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("rhs %d: %w", i, err))
			return
		}
	}
	out := s.solveDirect(ctx, fe, req.BS)
	if out.err != nil {
		s.writeErr(w, errStatus(out.err), out.err)
		return
	}
	writeJSON(w, http.StatusOK, solveResponse{
		ID: req.ID, XS: out.xs,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// solveDirect runs one SolveMany on the worker pool, bypassing the batcher
// (multi-RHS requests are already batches).
func (s *Server) solveDirect(ctx context.Context, fe *factorEntry, bs [][]float64) solveOutcome {
	if err := s.acquire(ctx); err != nil {
		return solveOutcome{err: err}
	}
	defer s.release()
	start := time.Now()
	fe.mu.RLock()
	if fe.f == nil {
		fe.mu.RUnlock()
		return solveOutcome{err: errFactorInvalid}
	}
	xs, err := fe.f.SolveMany(bs)
	fe.mu.RUnlock()
	s.met.solveLat.observe(time.Since(start))
	if err != nil {
		return solveOutcome{err: err}
	}
	s.met.solvedRHS.Add(int64(len(bs)))
	if len(bs) == 1 {
		return solveOutcome{x: xs[0], batch: 1}
	}
	return solveOutcome{xs: xs}
}

// ---- /healthz and /metrics ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.healthzRequests.Add(1)
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// metricsDoc is the /metrics JSON document.
type metricsDoc struct {
	Requests struct {
		Factor  int64 `json:"factor"`
		Solve   int64 `json:"solve"`
		Healthz int64 `json:"healthz"`
		Metrics int64 `json:"metrics"`
	} `json:"requests"`
	InFlight  int64           `json:"in_flight"`
	Rejected  int64           `json:"rejected"`
	Errors    int64           `json:"errors"`
	Factors   int64           `json:"factors"`
	Refactors int64           `json:"refactors"`
	SolvedRHS int64           `json:"solved_rhs"`
	Batches   int64           `json:"batches"`
	BatchedR  int64           `json:"batched_rhs"`
	Cache     plancache.Stats `json:"plan_cache"`
	LiveFac   int             `json:"live_factors"`
	Latency   struct {
		Factor   latencyJSON `json:"factor"`
		Refactor latencyJSON `json:"refactor"`
		Solve    latencyJSON `json:"solve"`
	} `json:"latency"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsRequests.Add(1)
	var doc metricsDoc
	doc.Requests.Factor = s.met.factorRequests.Load()
	doc.Requests.Solve = s.met.solveRequests.Load()
	doc.Requests.Healthz = s.met.healthzRequests.Load()
	doc.Requests.Metrics = s.met.metricsRequests.Load()
	doc.InFlight = s.met.inFlight.Load()
	doc.Rejected = s.met.rejected.Load()
	doc.Errors = s.met.errors.Load()
	doc.Factors = s.met.factors.Load()
	doc.Refactors = s.met.refactors.Load()
	doc.SolvedRHS = s.met.solvedRHS.Load()
	doc.Batches = s.met.batches.Load()
	doc.BatchedR = s.met.batched.Load()
	doc.Cache = s.cache.Stats()
	s.mu.Lock()
	doc.LiveFac = len(s.factors)
	s.mu.Unlock()
	doc.Latency.Factor = s.met.factorLat.snapshot()
	doc.Latency.Refactor = s.met.refactorLat.snapshot()
	doc.Latency.Solve = s.met.solveLat.snapshot()
	writeJSON(w, http.StatusOK, doc)
}

// CacheStats exposes the plan-cache counters (used by tests and the
// service benchmark; HTTP clients read them from /metrics).
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }
