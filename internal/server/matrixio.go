// Request body parsing for the solve service: symmetric SPD matrices
// arrive either as MatrixMarket text (the exchange format of the paper's
// benchmark suite) or as JSON-CSC (the wire-friendly form of
// sparse.Matrix), selected by Content-Type.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"mime"
	"strings"

	"blockfanout/internal/mmio"
	"blockfanout/internal/sparse"
)

// jsonCSC is the JSON wire form of a symmetric matrix: the lower triangle
// (diagonal included) in compressed sparse column order, exactly mirroring
// sparse.Matrix.
type jsonCSC struct {
	N      int       `json:"n"`
	ColPtr []int     `json:"colptr"`
	RowInd []int     `json:"rowind"`
	Val    []float64 `json:"val"`
}

// ReadMatrix parses a factor-request body. contentType selects the codec:
// anything containing "json" is decoded as JSON-CSC; everything else is
// treated as MatrixMarket coordinate text. Exported so the cluster gateway
// accepts the same request bodies as the single-node service.
func ReadMatrix(body io.Reader, contentType string) (*sparse.Matrix, error) {
	mt := contentType
	if parsed, _, err := mime.ParseMediaType(contentType); err == nil {
		mt = parsed
	}
	var m *sparse.Matrix
	if strings.Contains(mt, "json") {
		var c jsonCSC
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&c); err != nil {
			return nil, fmt.Errorf("bad JSON-CSC body: %w", err)
		}
		// Cheap shape checks before anything downstream sizes buffers from
		// the claimed dimension: n is attacker-controlled, the arrays are
		// backed by actual body bytes.
		if c.N < 0 || c.N > mmio.MaxDim {
			return nil, fmt.Errorf("JSON-CSC dimension %d out of range [0, %d]", c.N, mmio.MaxDim)
		}
		if len(c.ColPtr) != c.N+1 {
			return nil, fmt.Errorf("JSON-CSC colptr has %d entries, want n+1 = %d", len(c.ColPtr), c.N+1)
		}
		if len(c.RowInd) != len(c.Val) {
			return nil, fmt.Errorf("JSON-CSC rowind/val lengths differ: %d vs %d", len(c.RowInd), len(c.Val))
		}
		m = &sparse.Matrix{N: c.N, ColPtr: c.ColPtr, RowInd: c.RowInd, Val: c.Val}
		if err := m.Validate(); err != nil {
			return nil, err
		}
	} else {
		var err error
		if m, err = mmio.Read(body); err != nil {
			return nil, err
		}
	}
	for i, v := range m.Val {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("matrix value %d is not finite (%g)", i, v)
		}
	}
	return m, nil
}

// validRHS checks one right-hand side before it is allowed into a batch,
// so one malformed vector can never fail the coalesced SolveMany call it
// would otherwise share with innocent requests.
func validRHS(n int, b []float64) error {
	if len(b) != n {
		return fmt.Errorf("rhs length %d, want %d", len(b), n)
	}
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rhs entry %d is not finite (%g)", i, v)
		}
	}
	return nil
}
