package server

import (
	"math/rand"
	"testing"

	"blockfanout/internal/gen"
)

// TestTuneMeasureAdoptServe drives the feedback loop end-to-end over real
// HTTP: the first factorization of a pattern on a -tune server is
// measured, the remap decision runs, and — whether adopted or declined —
// the served factor stays numerically correct. A same-pattern re-post
// then factors under whatever mapping won and must solve correctly too.
func TestTuneMeasureAdoptServe(t *testing.T) {
	dir := t.TempDir()
	s, ts := testService(t, Config{
		Procs: 8, BlockSize: 12, Tune: true,
		StoreDir: dir, BatchWindow: -1,
	})

	m := gen.IrregularMesh(400, 8, 3, 7)
	fr := factorMatrix(t, ts.URL, m)

	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%5) - 2
	}
	x := solveVec(t, ts.URL, fr.ID, b)
	if res := residualNorm(m, x, b); res > 1e-8 {
		t.Fatalf("first (measured) factor residual %g", res)
	}

	doc := fetchMetrics(t, ts.URL)
	if doc.Tune == nil {
		t.Fatal("metrics omit the tune section with Tune enabled")
	}
	if got := doc.Tune.Adopted + doc.Tune.Declined + doc.Tune.Skipped; got != 1 {
		t.Fatalf("tune outcomes adopted+declined+skipped = %d, want exactly 1 after one measured run", got)
	}
	if doc.Tune.DroppedSpans != 0 {
		t.Fatalf("measurement dropped %d spans; NewMeasureRecorder must be drop-free", doc.Tune.DroppedSpans)
	}

	// Same pattern, new values: factors under the cached (tuned or static)
	// plan without re-measuring, and still solves right.
	m2 := m.Clone()
	rng := rand.New(rand.NewSource(3))
	for i := range m2.Val {
		m2.Val[i] *= 1 + 0.1*rng.Float64()
	}
	for j := 0; j < m2.N; j++ {
		m2.Val[m2.ColPtr[j]] *= 1.5
	}
	fr2 := factorMatrix(t, ts.URL, m2)
	if fr2.ID != fr.ID {
		t.Fatalf("same pattern produced a different id: %s vs %s", fr2.ID, fr.ID)
	}
	x2 := solveVec(t, ts.URL, fr2.ID, b)
	if res := residualNorm(m2, x2, b); res > 1e-8 {
		t.Fatalf("second factor residual %g", res)
	}
	after := fetchMetrics(t, ts.URL)
	if got := after.Tune.Adopted + after.Tune.Declined + after.Tune.Skipped; got != 1 {
		t.Fatalf("re-factor re-ran the measurement: outcomes went to %d", got)
	}
	s.Close()
}

// TestTuneWarmStartRestoresTunedMapping: when the first life adopted a
// tuned mapping, a restarted -tune server must rebuild it from the
// persisted cost profile and serve the old id from the tuned snapshot
// without refactorizing.
func TestTuneWarmStartRestoresTunedMapping(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := testService(t, Config{
		Procs: 8, BlockSize: 12, Tune: true,
		StoreDir: dir, BatchWindow: -1,
	})
	m := gen.IrregularMesh(400, 8, 3, 7)
	fr := factorMatrix(t, ts1.URL, m)
	adopted := fetchMetrics(t, ts1.URL).Tune.Adopted == 1
	s1.Close()
	ts1.Close()

	s2, ts2 := testService(t, Config{
		Procs: 8, BlockSize: 12, Tune: true,
		StoreDir: dir, BatchWindow: -1,
	})
	t.Cleanup(s2.Close)
	restored, err := s2.WarmStart()
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if restored < 1 {
		t.Fatalf("restored %d factors, want ≥1", restored)
	}

	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := solveVec(t, ts2.URL, fr.ID, b)
	if res := residualNorm(m, x, b); res > 1e-8 {
		t.Fatalf("restored factor residual %g", res)
	}
	if got := s2.met.factors.Load() + s2.met.refactors.Load(); got != 0 {
		t.Fatalf("restart ran %d factorizations, want 0", got)
	}
	doc := fetchMetrics(t, ts2.URL)
	if doc.Tune == nil {
		t.Fatal("metrics omit the tune section after restart")
	}
	if adopted && doc.Tune.WarmRestored < 1 {
		t.Fatalf("first life adopted a tuned mapping but warm start restored %d", doc.Tune.WarmRestored)
	}
}
