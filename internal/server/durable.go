package server

import (
	"fmt"
	"time"

	"blockfanout/internal/core"
	"blockfanout/internal/mapping"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/store"
)

// buildPlan is the one place the server turns a matrix into an analysis:
// ordering + symbolic + partitioning + mapping under the configured options.
// Both the cold /v1/factor path and WarmStart build through it, so a
// restored plan is bit-identical to a freshly built one.
func (s *Server) buildPlan(m *sparse.Matrix) (*core.Plan, sched.Assignment, error) {
	plan, err := core.NewPlan(m, s.planOpts)
	if err != nil {
		return nil, sched.Assignment{}, err
	}
	g := mapping.BestGrid(s.cfg.Procs)
	mp := plan.Map(g, mapping.ID, mapping.CY)
	return plan, plan.Assign(mp, 2), nil
}

// saveSnapshot enqueues a write-behind snapshot of a freshly completed
// factor. Called with the entry's write lock held, so the block export is a
// coherent copy; the durable write itself happens on the single writer
// goroutine, off the request path. A full queue drops the snapshot (counted
// in /metrics) rather than stalling factorization: durability here is an
// optimization for restart time, never a source of tail latency.
//
// Two throttles keep the request path honest before any bytes are copied:
// SnapshotInterval spaces snapshots of the same factor (a refactor storm
// must not rewrite one key back-to-back, burning writer CPU and disk
// bandwidth for snapshots that supersede each other within milliseconds),
// and a full queue skips the snapshot outright — in both cases the request
// pays nothing at all, and the entry's next eligible completion re-arms.
// cfgKey is the configuration key of the plan the factor was built under —
// s.planKey for static mappings, the provenance-bearing tuned key for
// factors running a measured remap — so tuned and static snapshots of the
// same pattern never alias on disk.
func (s *Server) saveSnapshot(fe *factorEntry, m *sparse.Matrix, f *core.Factor, cfgKey uint64) {
	if s.st == nil {
		return
	}
	if iv := s.cfg.SnapshotInterval; iv > 0 && !fe.lastSnap.IsZero() && time.Since(fe.lastSnap) < iv {
		s.met.snapSkipped.Add(1)
		return
	}
	// The length read is racy, but only against sends from other factor
	// completions; the worst case is one extra export or one extra drop,
	// never a stall or a lost factor.
	if len(s.snapCh) == cap(s.snapCh) {
		s.met.snapDropped.Add(1)
		return
	}
	fs := &store.FactorSnapshot{
		PatternHash: m.PatternHash(),
		ConfigKey:   cfgKey,
		N:           m.N,
		ColPtr:      m.ColPtr,
		RowInd:      m.RowInd,
		Val:         m.Val,
		Blocks:      f.Numeric().ExportBlocks(),
	}
	select {
	case s.snapCh <- fs:
		fe.lastSnap = time.Now()
	default:
		s.met.snapDropped.Add(1)
	}
}

// snapshotWriter is the single write-behind goroutine: it serializes store
// writes so concurrent factorizations never interleave writes to the same
// key, and drains the queue on Close.
func (s *Server) snapshotWriter() {
	defer close(s.writerDone)
	put := func(fs *store.FactorSnapshot) {
		if err := s.st.PutFactor(fs); err != nil {
			s.met.snapErrors.Add(1)
		} else {
			s.met.snapWrites.Add(1)
		}
	}
	for {
		select {
		case fs := <-s.snapCh:
			put(fs)
		case <-s.writerQuit:
			for {
				select {
				case fs := <-s.snapCh:
					put(fs)
				default:
					return
				}
			}
		}
	}
}

// Close flushes and stops the write-behind writer. Safe to call multiple
// times; a no-op for servers without a store.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.st == nil || s.storeErr != nil {
			return
		}
		close(s.writerQuit)
		<-s.writerDone
	})
}

// WarmStart restores the server's working set from the snapshot store:
// every snapshot written under this server's configuration key has its plan
// rebuilt into the plan cache and its numeric factor restored from the
// snapshotted blocks — no refactorization — and registered under the same
// factor id the original process served, so a client's previously issued id
// keeps working across the restart. Returns the number of factors restored.
// Corrupt snapshots are quarantined by the store and simply rebuilt cold on
// their next /v1/factor.
func (s *Server) WarmStart() (int, error) {
	if s.st == nil {
		return 0, s.storeErr
	}
	// Tuned factors first: a pattern with a persisted cost profile and a
	// tuned-key snapshot claims its id under the measured mapping before
	// the static pass below can (claimEntry is first-wins), so a restart
	// keeps serving the tuned mapping instead of regressing to static.
	restored := s.restoreTuned()
	warm, err := s.cache.WarmStart(s.st, s.planKey, s.buildPlan)
	if err != nil {
		return restored, err
	}
	for _, we := range warm {
		f, err := we.Entry.Plan.RestoreFactor(we.Entry.Assign, we.Snap.Val, we.Snap.Blocks)
		if err != nil {
			// Blocks inconsistent with the rebuilt plan (e.g. snapshot from a
			// different build): drop it and let the next request build cold.
			s.st.DeleteFactor(we.Snap.PatternHash, we.Snap.ConfigKey)
			continue
		}
		id := fmt.Sprintf("%016x", we.Snap.PatternHash)
		fe, created := s.claimEntry(id, we.Snap.N, we.Entry.Plan)
		if !created {
			continue // already live (duplicate snapshot key); keep the first
		}
		fe.f = f
		s.markReady(fe)
		fe.mu.Unlock()
		restored++
	}
	s.met.warmRestored.Store(int64(restored))
	return restored, nil
}

// StoreStats exposes the snapshot-store counters (nil without a store).
func (s *Server) StoreStats() *store.Stats {
	if s.st == nil {
		return nil
	}
	st := s.st.Stats()
	return &st
}
