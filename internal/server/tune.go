package server

import (
	"fmt"

	"blockfanout/internal/core"
	"blockfanout/internal/mapping"
	"blockfanout/internal/obs"
	"blockfanout/internal/plancache"
	"blockfanout/internal/sched"
	"blockfanout/internal/sparse"
	"blockfanout/internal/tune"
)

// tuneFromMeasurement closes the feedback loop after a measured first
// factorization: it aggregates the recorder's spans into a cost profile,
// searches grid shapes for the remap with the smallest predicted makespan,
// and — only when that strictly beats the static mapping's predicted
// makespan on the same measured costs — builds the tuned plan (provenance
// folded into its configuration key), caches it, links it to the static
// entry, persists the profile, and re-registers the just-computed numeric
// blocks under the tuned ownership via RestoreFactor. No second numeric
// factorization happens; only the owners change.
//
// Called with the factor entry's write lock held. Returns (nil, nil) when
// the measurement is unusable or the remap does not win; the static factor
// then stands.
func (s *Server) tuneFromMeasurement(sentry *plancache.Entry, m *sparse.Matrix, f *core.Factor, rec *obs.Recorder, pr *sched.Program) (*core.Factor, *core.Plan) {
	s.met.tuneDropped.Add(rec.Dropped())
	prof, err := tune.BuildProfile(rec, pr, m.PatternHash(), s.planKey)
	if err != nil {
		// Truncated or empty recording: a biased profile must not steer the
		// mapping. The next cold factorization of the pattern re-measures.
		s.met.tuneSkipped.Add(1)
		return nil, nil
	}
	tm, tunedMax := tune.Search(prof, s.cfg.Procs)
	if tm == nil {
		s.met.tuneSkipped.Add(1)
		return nil, nil
	}
	var staticMax int64
	for _, l := range prof.PredictedLoads(sentry.Assign.Owner, s.cfg.Procs) {
		if l > staticMax {
			staticMax = l
		}
	}
	if tunedMax >= staticMax {
		s.met.tuneDeclined.Add(1)
		return nil, nil
	}

	te, tunedKey, err := s.insertTuned(sentry.Plan, prof, tm, m)
	if err != nil {
		s.met.tuneSkipped.Add(1)
		return nil, nil
	}
	tf, err := te.Plan.RestoreFactor(te.Assign, m.Val, f.Numeric().ExportBlocks())
	if err != nil {
		s.met.tuneSkipped.Add(1)
		return nil, nil
	}
	s.cache.SetTuned(sentry, tunedKey)
	s.met.tuneAdopted.Add(1)
	if s.st != nil {
		// Synchronous, once per pattern per process lifetime: the profile is
		// tiny (sparse triples) and losing it would cost a re-measure after
		// restart, not correctness.
		if err := s.st.PutProfile(prof.Snapshot()); err != nil {
			s.met.snapErrors.Add(1)
		}
	}
	return tf, te.Plan
}

// insertTuned builds the tuned sibling of a static plan — the same
// analysis with MapTuned provenance and the profile fingerprint folded into
// its configuration key — and caches it under that key. The tuned
// assignment uses the measured mapping's ownership directly (no domain
// override: the adoption decision compared predicted loads under exactly
// this ownership, and a domain layer would silently re-route panels away
// from the mapping that won).
func (s *Server) insertTuned(static *core.Plan, prof *tune.CostProfile, tm *mapping.Mapping, m *sparse.Matrix) (*plancache.Entry, uint64, error) {
	tp := *static // Plan is plain data; the analysis (A, Sym, BS) is shared read-only
	tp.Opts.MapSource = core.MapTuned
	tp.Opts.MapFingerprint = prof.Fingerprint()
	tunedKey := tp.Opts.ConfigKey()
	te, _, err := s.cache.GetOrBuild(m, tunedKey, func() (*core.Plan, sched.Assignment, error) {
		return &tp, tp.Assign(tm, 0), nil
	})
	if err != nil {
		return nil, 0, err
	}
	return te, tunedKey, nil
}

// restoreTuned rebuilds tuned mappings from persisted cost profiles before
// the static warm-start pass runs. For every profile measured under this
// server's configuration it re-runs the deterministic remap search, caches
// static and tuned plan entries, re-links them, and — when a factor
// snapshot written under the tuned key exists — restores the live factor
// under the tuned ownership so the pattern's id claims first (the static
// pass skips already-claimed ids). Returns the number of live factors
// restored tuned.
func (s *Server) restoreTuned() int {
	if !s.cfg.Tune || s.st == nil {
		return 0
	}
	keys, err := s.st.ScanProfiles()
	if err != nil {
		return 0
	}
	restored := 0
	for _, k := range keys {
		if k.ConfigKey != s.planKey {
			continue // measured under a different plan configuration
		}
		ps, err := s.st.GetProfile(k.PatternHash, k.ConfigKey)
		if err != nil {
			continue // missing, or corrupt and already quarantined
		}
		prof, err := tune.FromSnapshot(ps)
		if err != nil || prof.Procs != s.cfg.Procs {
			// Invalid, or measured at a different parallel width than this
			// process serves: re-measure rather than trust it.
			s.st.DeleteProfile(k.PatternHash, k.ConfigKey)
			continue
		}
		tm, _ := tune.Search(prof, s.cfg.Procs)
		if tm == nil {
			continue
		}
		tunedOpts := s.planOpts
		tunedOpts.MapSource = core.MapTuned
		tunedOpts.MapFingerprint = prof.Fingerprint()
		tunedKey := tunedOpts.ConfigKey() // must match insertTuned's key: se.Plan.Opts == s.planOpts

		// The matrix comes from a factor snapshot: prefer the tuned-key one
		// (it also restores the live factor); fall back to the static one
		// (then only the plan link is restored — the next factorization of
		// the pattern runs tuned without re-measuring).
		fs, ferr := s.st.GetFactor(k.PatternHash, tunedKey)
		liveTuned := ferr == nil
		if !liveTuned {
			if fs, ferr = s.st.GetFactor(k.PatternHash, s.planKey); ferr != nil {
				continue // no snapshot holds the pattern; profile waits for a re-POST
			}
		}
		mtx, err := fs.Matrix()
		if err != nil {
			continue
		}
		se, _, err := s.cache.GetOrBuild(mtx, s.planKey, func() (*core.Plan, sched.Assignment, error) {
			return s.buildPlan(mtx)
		})
		if err != nil {
			continue
		}
		if se.Plan.BS.N() != prof.N {
			// The profile's block grid no longer matches what this build
			// produces for the pattern: stale measurement.
			s.st.DeleteProfile(k.PatternHash, k.ConfigKey)
			continue
		}
		te, tkey, err := s.insertTuned(se.Plan, prof, tm, mtx)
		if err != nil {
			continue
		}
		s.cache.SetTuned(se, tkey)
		if !liveTuned {
			continue
		}
		f, err := te.Plan.RestoreFactor(te.Assign, fs.Val, fs.Blocks)
		if err != nil {
			s.st.DeleteFactor(k.PatternHash, tunedKey)
			continue
		}
		id := fmt.Sprintf("%016x", k.PatternHash)
		fe, created := s.claimEntry(id, fs.N, te.Plan)
		if !created {
			continue
		}
		fe.f = f
		s.markReady(fe)
		fe.mu.Unlock()
		restored++
	}
	s.met.tuneRestored.Store(int64(restored))
	return restored
}
