package server

import (
	"bytes"
	"testing"
)

// FuzzReadMatrix hammers the request-body parser through both codecs.
// Whatever a client posts, readMatrix must return a fully validated matrix
// or an error — no panics, no NaN/Inf values admitted, no allocation sized
// from an unchecked header field.
func FuzzReadMatrix(f *testing.F) {
	jsonSeeds := []string{
		`{"n":2,"colptr":[0,2,3],"rowind":[0,1,1],"val":[4,1,4]}`,
		`{"n":1,"colptr":[0,1],"rowind":[0],"val":[2]}`,
		`{}`,
		`{"n":-1,"colptr":[0],"rowind":[],"val":[]}`,
		`{"n":1000000000,"colptr":[0,1],"rowind":[0],"val":[1]}`,
		`{"n":2,"colptr":[0,5,3],"rowind":[0,1,1],"val":[4,1,4]}`,
		`{"n":2,"colptr":[0,-2,3],"rowind":[0,1,1],"val":[4,1,4]}`,
		`{"n":2,"colptr":[0,2,3],"rowind":[0,1],"val":[4,1,4]}`,
		`{"n":2,"colptr":[0,2,3],"rowind":[0,1,1],"val":[4,1,1e999]}`,
		`{"n":2,"colptr":[0,2,3],"rowind":[0,9,1],"val":[4,1,4]}`,
		`[1,2,3]`,
		`{"n":2,"unknown":true}`,
		`{"n":2,"colptr":`,
	}
	mmSeeds := []string{
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 4.0\n2 1 1.0\n2 2 4.0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 1 inf\n",
		"garbage",
	}
	for _, s := range jsonSeeds {
		f.Add([]byte(s), true)
	}
	for _, s := range mmSeeds {
		f.Add([]byte(s), false)
	}
	f.Fuzz(func(t *testing.T, data []byte, asJSON bool) {
		if len(data) > 1<<20 {
			return
		}
		ct := "text/plain"
		if asJSON {
			ct = "application/json"
		}
		m, err := ReadMatrix(bytes.NewReader(data), ct)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("readMatrix accepted a matrix that fails Validate: %v", err)
		}
	})
}
