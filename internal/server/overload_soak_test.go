package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/gen"
)

// TestOverloadSoak hammers an admission-controlled server with
// mixed-priority two-tenant traffic well past capacity, under the race
// detector in CI, and holds it to the degradation contract: the quiet
// tenant's admitted interactive solves keep a bounded p99 and a zero
// error rate, every rejection carries Retry-After, and after the flood
// stops and the server drains, no request goroutine is left behind.
// Opt-in (several seconds of deliberate saturation):
//
//	OVERLOAD_SOAK=1 go test -race -run TestOverloadSoak -count=1 ./internal/server/
func TestOverloadSoak(t *testing.T) {
	if os.Getenv("OVERLOAD_SOAK") == "" {
		t.Skip("set OVERLOAD_SOAK=1 to run the overload soak")
	}

	// Two workers with one reserved for the interactive class, so
	// admitted refactorizations can never head-of-line block every
	// execution lane, and early brownout thresholds so the factor classes
	// are shed while the queue is still hot.
	srv := New(Config{
		Procs:              2,
		Workers:            2,
		ReserveInteractive: 1,
		QueueDepth:         4,
		BatchWindow:        -1,
		Tenants: map[string]admission.TenantLimits{
			"quiet": {MaxInFlight: 2},
			// A tight quota: the flood's pressure shows up as rejections,
			// not as admitted work that saturates the CPU the race
			// detector has already slowed.
			"aggressive": {MaxInFlight: 2},
		},
		ShedAt:   0.25,
		RejectAt: 0.75,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 60 * time.Second}

	post := func(path, tenant string, raw []byte) (int, string, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Retry-After"), body
	}

	// One factor per tenant. Kept modest: the race detector multiplies
	// every op's cost, which is exactly what makes the ops long enough to
	// pile up at the admission gate.
	factorBody := func(seed uint64) []byte {
		m := gen.IrregularMesh(1200, 7, 3, seed)
		raw, err := json.Marshal(map[string]any{
			"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
		})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	solveBodyFor := func(tenant string, factorRaw []byte) []byte {
		code, _, body := post("/v1/factor", tenant, factorRaw)
		if code != http.StatusOK {
			t.Fatalf("%s factor returned %d: %s", tenant, code, body)
		}
		var fr struct {
			ID string `json:"id"`
			N  int    `json:"n"`
		}
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		rhs := make([]float64, fr.N)
		for i := range rhs {
			rhs[i] = 1
		}
		raw, err := json.Marshal(map[string]any{"id": fr.ID, "b": rhs})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	quietFactor, aggFactor := factorBody(42), factorBody(11)
	quietSolve := solveBodyFor("quiet", quietFactor)
	aggSolve := solveBodyFor("aggressive", aggFactor)

	// Reference cost of one heavy op on this machine at this -race
	// slowdown: a solo refactorization. The loaded p99 bound is phrased
	// in these units — a non-preemptive scheduler cannot do better than
	// "behind at most a couple of heavy ops", and without admission
	// control a 12-client closed loop would queue a dozen of them.
	refStart := time.Now()
	if code, _, body := post("/v1/factor", "aggressive", aggFactor); code != http.StatusOK {
		t.Fatalf("reference refactor returned %d: %s", code, body)
	}
	refactorMs := time.Since(refStart).Seconds() * 1e3

	// Unloaded baseline for the quiet tenant, and the steady-state
	// goroutine census the post-drain count must return to.
	var unloaded []float64
	for i := 0; i < 25; i++ {
		start := time.Now()
		code, _, body := post("/v1/solve", "quiet", quietSolve)
		if code != http.StatusOK {
			t.Fatalf("unloaded solve returned %d: %s", code, body)
		}
		unloaded = append(unloaded, time.Since(start).Seconds()*1e3)
	}
	baselineGoroutines := runtime.NumGoroutine()

	// The flood: closed-loop aggressive clients alternating interactive
	// solves with refactorizations, so every priority class crosses the
	// gate while the brownout machine is shedding.
	var (
		stop            atomic.Bool
		rejections      atomic.Int64
		missingRetry    atomic.Int64
		unexpectedCodes atomic.Int64
		wg              sync.WaitGroup
	)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				path, body := "/v1/solve", aggSolve
				if (g+i)%4 == 0 {
					path, body = "/v1/factor", aggFactor
				}
				code, retry, _ := post(path, "aggressive", body)
				switch {
				case code == http.StatusOK:
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					rejections.Add(1)
					if retry == "" {
						missingRetry.Add(1)
					}
					time.Sleep(50 * time.Millisecond)
				default:
					unexpectedCodes.Add(1)
				}
			}
		}(g)
	}

	var loaded []float64
	quietErrors := 0
	for deadline := time.Now().Add(3 * time.Second); time.Now().Before(deadline); {
		start := time.Now()
		code, _, _ := post("/v1/solve", "quiet", quietSolve)
		if code != http.StatusOK {
			quietErrors++
		} else {
			loaded = append(loaded, time.Since(start).Seconds()*1e3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()

	p99 := func(ms []float64) float64 {
		if len(ms) == 0 {
			return 0
		}
		s := append([]float64(nil), ms...)
		sort.Float64s(s)
		return s[int(float64(len(s))*0.99)]
	}
	if quietErrors > 0 {
		t.Errorf("quiet tenant saw %d errors under the flood; its quota was never exceeded, so it must see none", quietErrors)
	}
	if n := rejections.Load(); n == 0 {
		t.Error("flood produced no rejections; the soak never exceeded capacity")
	} else {
		t.Logf("soak: %d rejections, quiet p99 %.1f→%.1fms over %d solves (solo refactor %.1fms)",
			n, p99(unloaded), p99(loaded), len(loaded), refactorMs)
	}
	if n := missingRetry.Load(); n > 0 {
		t.Errorf("%d rejections arrived without a Retry-After header", n)
	}
	if n := unexpectedCodes.Load(); n > 0 {
		t.Errorf("flood saw %d responses outside {200, 429, 503}", n)
	}
	// Bounded, not unchanged: an admitted interactive solve may wait out
	// the heavy ops already holding slots — at most a couple, because the
	// quota and the reserved lane cap them — but never the flood's full
	// backlog. The bound is phrased in heavy-op service times so it holds
	// at any -race slowdown; the full-precision ratio gate lives in the
	// BENCH_JSON overload experiment.
	u, l := p99(unloaded), p99(loaded)
	bound := 10 * u
	if b := 3 * refactorMs; b > bound {
		bound = b
	}
	if l > bound {
		t.Errorf("admitted interactive p99 %.1fms exceeds the bound %.1fms (unloaded %.1fms, solo refactor %.1fms); degradation is not bounded",
			l, bound, u, refactorMs)
	}

	// Drain and verify the server sheds new work, then settles back to
	// its steady-state goroutine census: any queued waiter, batcher, or
	// handler goroutine still alive after drain is a leak.
	srv.Drain()
	if code, retry, _ := post("/v1/solve", "quiet", quietSolve); code != http.StatusServiceUnavailable {
		t.Errorf("post-drain solve returned %d, want 503", code)
	} else {
		_ = retry
	}
	settled := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		runtime.GC()
		if runtime.NumGoroutine() <= baselineGoroutines+3 {
			settled = true
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if !settled {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutines never settled: %d now vs %d baseline\n%s",
			runtime.NumGoroutine(), baselineGoroutines, buf[:n])
	}
}
