package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/gen"
	"blockfanout/internal/sparse"
)

// testService spins up the full HTTP stack around a small server config.
func testService(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func toCSC(m *sparse.Matrix) jsonCSC {
	return jsonCSC{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: m.Val}
}

func factorMatrix(t *testing.T, url string, m *sparse.Matrix) factorResponse {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/factor", toCSC(m))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("factor: status %d: %s", resp.StatusCode, body)
	}
	var fr factorResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatalf("factor response: %v", err)
	}
	return fr
}

func fetchMetrics(t *testing.T, url string) metricsDoc {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc metricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestServiceEndToEnd drives the whole serving story over real HTTP: factor
// a matrix, re-factor the same pattern with new values through the plan
// cache (asserting the cache hit means no second analysis), then fire
// concurrent single-RHS solves that the batcher must coalesce, and check
// every answer against the matrix it was solved for.
func TestServiceEndToEnd(t *testing.T) {
	const batchLimit = 8
	s, ts := testService(t, Config{
		Procs:       4,
		BlockSize:   16,
		BatchWindow: 200 * time.Millisecond,
		BatchLimit:  batchLimit,
	})

	a := gen.IrregularMesh(250, 6, 3, 11)
	fr := factorMatrix(t, ts.URL, a)
	if fr.CacheHit || fr.Refactored {
		t.Fatalf("first factor: cache_hit=%v refactored=%v; want fresh analysis", fr.CacheHit, fr.Refactored)
	}
	if fr.N != a.N || fr.NNZ != a.NNZ() || fr.NNZL <= 0 || fr.Flops <= 0 {
		t.Fatalf("factor response stats look wrong: %+v", fr)
	}

	// Same pattern, new values: the plan cache must hit (no symbolic work)
	// and the live factor must be numerically refactored in place.
	a2 := a.Clone()
	rng := rand.New(rand.NewSource(7))
	for i := range a2.Val {
		a2.Val[i] *= 1 + 0.2*rng.Float64()
	}
	for j := 0; j < a2.N; j++ { // keep it safely SPD
		a2.Val[a2.ColPtr[j]] *= 1.5
	}
	fr2 := factorMatrix(t, ts.URL, a2)
	if !fr2.CacheHit || !fr2.Refactored {
		t.Fatalf("second factor: cache_hit=%v refactored=%v; want warm-path refactorization", fr2.CacheHit, fr2.Refactored)
	}
	if fr2.ID != fr.ID {
		t.Fatalf("same pattern produced different ids: %s vs %s", fr.ID, fr2.ID)
	}
	if st := s.CacheStats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("plan cache stats = %+v; want exactly 1 hit, 1 miss", st)
	}

	// Concurrent single-RHS solves: exactly batchLimit requests released
	// together must coalesce into few SolveMany sweeps (the limit flush
	// guarantees at least one multi-RHS batch). Answers are checked against
	// a2 — the values the factor currently holds.
	bs := make([][]float64, batchLimit)
	for i := range bs {
		b := make([]float64, a2.N)
		for k := range b {
			b[k] = rng.NormFloat64()
		}
		bs[i] = b
	}
	var wg sync.WaitGroup
	results := make([]solveResponse, batchLimit)
	errs := make([]error, batchLimit)
	for i := 0; i < batchLimit; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: bs[i]})
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("solve %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			errs[i] = json.Unmarshal(body, &results[i])
		}(i)
	}
	wg.Wait()
	maxBatch := 0
	for i := range results {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if r := a2.ResidualNorm(results[i].X, bs[i]); r > 1e-8 {
			t.Fatalf("solve %d residual %g", i, r)
		}
		if results[i].Batch > maxBatch {
			maxBatch = results[i].Batch
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no solve was coalesced (max batch %d); batcher is not batching", maxBatch)
	}

	// Multi-RHS request goes through the direct path.
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, BS: bs[:3]})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi solve: status %d: %s", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.XS) != 3 {
		t.Fatalf("multi solve returned %d solutions; want 3", len(sr.XS))
	}
	for i, x := range sr.XS {
		if r := a2.ResidualNorm(x, bs[i]); r > 1e-8 {
			t.Fatalf("multi solve %d residual %g", i, r)
		}
	}

	doc := fetchMetrics(t, ts.URL)
	if doc.Factors != 1 || doc.Refactors != 1 {
		t.Fatalf("metrics: factors=%d refactors=%d; want 1 and 1", doc.Factors, doc.Refactors)
	}
	if doc.Cache.Hits != 1 || doc.Cache.Misses != 1 {
		t.Fatalf("metrics cache stats = %+v; want 1 hit, 1 miss", doc.Cache)
	}
	if doc.Batches == 0 || doc.BatchedR < 2 {
		t.Fatalf("metrics: batches=%d batched_rhs=%d; batcher left no trace", doc.Batches, doc.BatchedR)
	}
	if want := int64(batchLimit + 3); doc.SolvedRHS != want {
		t.Fatalf("metrics: solved_rhs=%d; want %d", doc.SolvedRHS, want)
	}
}

// TestServiceDistinctPatterns: two different structures get two ids, and
// each id solves against its own matrix.
func TestServiceDistinctPatterns(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})

	a := gen.IrregularMesh(120, 5, 3, 1)
	b := gen.IrregularMesh(120, 5, 3, 2)
	fa := factorMatrix(t, ts.URL, a)
	fb := factorMatrix(t, ts.URL, b)
	if fa.ID == fb.ID {
		t.Fatal("different patterns share an id")
	}
	if fb.CacheHit {
		t.Fatal("different pattern hit the plan cache")
	}

	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	for _, tc := range []struct {
		id string
		m  *sparse.Matrix
	}{{fa.ID, a}, {fb.ID, b}} {
		resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: tc.id, B: rhs})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve: status %d: %s", resp.StatusCode, body)
		}
		var sr solveResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatal(err)
		}
		if r := tc.m.ResidualNorm(sr.X, rhs); r > 1e-8 {
			t.Fatalf("id %s residual %g", tc.id, r)
		}
	}
}

// TestServiceRequestValidation covers the client-error surface: malformed
// bodies, unknown ids, bad right-hand sides.
func TestServiceRequestValidation(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})
	a := gen.IrregularMesh(100, 5, 3, 3)
	fr := factorMatrix(t, ts.URL, a)

	check := func(name string, resp *http.Response, body []byte, wantStatus int, wantSub string) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: status %d, want %d (%s)", name, resp.StatusCode, wantStatus, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Fatalf("%s: non-JSON error body %q", name, body)
		}
		if wantSub != "" && !strings.Contains(eb.Error, wantSub) {
			t.Fatalf("%s: error %q does not mention %q", name, eb.Error, wantSub)
		}
	}

	resp, body := postJSON(t, ts.URL+"/v1/factor", map[string]any{"n": 2, "bogus": true})
	check("unknown field", resp, body, http.StatusBadRequest, "bogus")

	// JSON cannot carry Inf, but MatrixMarket text can.
	mm := "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 4\n2 1 inf\n2 2 4\n"
	infResp, err := http.Post(ts.URL+"/v1/factor", "text/plain", strings.NewReader(mm))
	if err != nil {
		t.Fatal(err)
	}
	infBody, _ := io.ReadAll(infResp.Body)
	infResp.Body.Close()
	check("inf matrix value", infResp, infBody, http.StatusBadRequest, "not finite")

	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: "deadbeef", B: make([]float64, a.N)})
	check("unknown id", resp, body, http.StatusNotFound, "unknown factor id")

	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: make([]float64, 3)})
	check("short rhs", resp, body, http.StatusBadRequest, "length")

	// JSON cannot carry NaN, so exercise the RHS finiteness guard directly
	// (it protects the batcher from poisoned coalesced sweeps).
	nan := make([]float64, a.N)
	nan[4] = math.NaN()
	if err := validRHS(a.N, nan); err == nil || !strings.Contains(err.Error(), "not finite") {
		t.Fatalf("validRHS(NaN) = %v; want not-finite error", err)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID})
	check("no rhs", resp, body, http.StatusBadRequest, `"b"`)

	resp, body = postJSON(t, ts.URL+"/v1/solve",
		solveRequest{ID: fr.ID, B: make([]float64, a.N), BS: [][]float64{make([]float64, a.N)}})
	check("both rhs forms", resp, body, http.StatusBadRequest, `"b"`)

	// One bad vector inside a multi-RHS request names the offender.
	bad := [][]float64{make([]float64, a.N), make([]float64, 2)}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, BS: bad})
	check("bad rhs in batch", resp, body, http.StatusBadRequest, "rhs 1")

	get, err := http.Get(ts.URL + "/v1/factor")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(get.Body)
	get.Body.Close()
	check("wrong method", get, b, http.StatusMethodNotAllowed, "POST")
}

// TestServiceFailedFactorConcurrent: when the initial factorization fails
// (indefinite matrix), concurrent requests for the same new pattern must
// all get a clean client error — never a nil-factor panic — and the dead
// entry must not linger: a follow-up request with good values gets a fresh
// factorization that actually solves.
func TestServiceFailedFactorConcurrent(t *testing.T) {
	// The breaker is disabled: six concurrent pivot failures would trip it
	// and fail the recovery POST fast; this test pins the entry lifecycle,
	// the breaker has its own tests.
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1, BreakerThreshold: -1})
	a := gen.IrregularMesh(150, 5, 3, 21)
	bad := a.Clone()
	bad.Val[bad.ColPtr[a.N-1]] = -5 // indefinite: BFAC must fail

	const clients = 6
	var wg sync.WaitGroup
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusUnprocessableEntity && c != http.StatusServiceUnavailable {
			t.Fatalf("client %d: status %d; want 422 (or 503 after exhausted retries)", i, c)
		}
	}

	// Same pattern, good values: must be a fresh factorization (the failed
	// entries were all unregistered), and it must serve solves.
	fr := factorMatrix(t, ts.URL, a)
	if fr.Refactored {
		t.Fatal("factor after failures reported refactored=true; a dead entry survived")
	}
	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after recovery: status %d (%s)", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if r := a.ResidualNorm(sr.X, rhs); r > 1e-8 {
		t.Fatalf("recovered factor residual %g", r)
	}
}

// TestServiceFailedRefactorInvalidatesFactor: a refactorization that fails
// partway leaves the underlying numeric factor corrupted, so the server
// must unregister it — solves on the old id get 404, never a 200 carrying
// garbage — and a re-POST with good values must rebuild from scratch.
func TestServiceFailedRefactorInvalidatesFactor(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})
	a := gen.IrregularMesh(150, 5, 3, 22)
	fr := factorMatrix(t, ts.URL, a)

	bad := a.Clone()
	bad.Val[bad.ColPtr[0]] = -3 // indefinite: the refactor must fail
	resp, body := postJSON(t, ts.URL+"/v1/factor", toCSC(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("indefinite refactor: status %d (%s); want 422", resp.StatusCode, body)
	}

	rhs := make([]float64, a.N)
	for i := range rhs {
		rhs[i] = 1
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: rhs})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("solve on invalidated factor: status %d (%s); want 404", resp.StatusCode, body)
	}

	// Recovery: same id (pattern hash), warm plan cache, fresh factor.
	fr2 := factorMatrix(t, ts.URL, a)
	if fr2.ID != fr.ID {
		t.Fatalf("rebuild changed id: %s vs %s", fr2.ID, fr.ID)
	}
	if fr2.Refactored {
		t.Fatal("rebuild after invalidation reported refactored=true")
	}
	if !fr2.CacheHit {
		t.Fatal("rebuild after invalidation missed the plan cache")
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr2.ID, B: rhs})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve after rebuild: status %d (%s)", resp.StatusCode, body)
	}
	var sr solveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if r := a.ResidualNorm(sr.X, rhs); r > 1e-8 {
		t.Fatalf("rebuilt factor residual %g", r)
	}
}

// TestSolvePathsRejectInvalidatedFactor: both solve paths (direct and
// batched) must refuse an entry whose factor is nil — the state an
// invalidated or still-failing entry is left in — with errFactorInvalid
// (409), not a nil dereference.
func TestSolvePathsRejectInvalidatedFactor(t *testing.T) {
	s := New(Config{})
	fe := &factorEntry{id: "dead", n: 4}
	fe.bt = &batcher{s: s, fe: fe}

	out := s.solveDirect(context.Background(), fe, "default", [][]float64{make([]float64, 4)})
	if !errors.Is(out.err, errFactorInvalid) {
		t.Fatalf("solveDirect on nil factor: err=%v; want errFactorInvalid", out.err)
	}
	if st := errStatus(out.err); st != http.StatusConflict {
		t.Fatalf("errFactorInvalid maps to status %d; want 409", st)
	}
	out = fe.bt.submit(context.Background(), make([]float64, 4))
	if !errors.Is(out.err, errFactorInvalid) {
		t.Fatalf("batched solve on nil factor: err=%v; want errFactorInvalid", out.err)
	}
}

// TestFactorRegistryEvictionAndDrop pins the registry lifecycle rules:
// LRU eviction never removes an entry whose initial factorization is still
// in flight, and dropEntry only removes the exact entry it was given (a
// stale drop must not delete a re-created successor under the same id).
func TestFactorRegistryEvictionAndDrop(t *testing.T) {
	s := New(Config{MaxFactors: 1})
	feA, created := s.claimEntry("a", 4, nil)
	if !created {
		t.Fatal("claim a: want created")
	}
	feB, created := s.claimEntry("b", 4, nil)
	if !created {
		t.Fatal("claim b: want created")
	}
	s.mu.Lock()
	live := len(s.factors)
	s.mu.Unlock()
	if live != 2 {
		t.Fatalf("%d live entries after two in-flight claims; eviction removed a building entry", live)
	}

	// Publish a; the next claim may evict it (cold end) but never the
	// still-building b.
	s.markReady(feA)
	feA.mu.Unlock()
	feC, created := s.claimEntry("c", 4, nil)
	if !created {
		t.Fatal("claim c: want created")
	}
	s.mu.Lock()
	_, hasA := s.factors["a"]
	_, hasB := s.factors["b"]
	s.mu.Unlock()
	if hasA {
		t.Fatal("ready entry a survived eviction while over budget")
	}
	if !hasB {
		t.Fatal("building entry b was evicted")
	}
	s.markReady(feB)
	feB.mu.Unlock()
	s.markReady(feC)
	feC.mu.Unlock()

	// Stale drop: re-create c, then drop via the old pointer — the new
	// entry must survive.
	s.dropEntry(feC)
	feC2, created := s.claimEntry("c", 4, nil)
	if !created {
		t.Fatal("re-claim c: want created")
	}
	s.markReady(feC2)
	feC2.mu.Unlock()
	s.dropEntry(feC)
	if _, ok := s.lookup("c"); !ok {
		t.Fatal("stale dropEntry removed the re-created entry")
	}
}

// TestServiceMatrixMarketBody: the factor endpoint accepts MatrixMarket
// text when the content type is not JSON.
func TestServiceMatrixMarketBody(t *testing.T) {
	_, ts := testService(t, Config{Procs: 2, BlockSize: 8, BatchWindow: -1})

	var mm bytes.Buffer
	mm.WriteString("%%MatrixMarket matrix coordinate real symmetric\n")
	a := gen.Grid2D(8)
	fmt.Fprintf(&mm, "%d %d %d\n", a.N, a.N, a.NNZ())
	for j := 0; j < a.N; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			fmt.Fprintf(&mm, "%d %d %.17g\n", a.RowInd[p]+1, j+1, a.Val[p])
		}
	}
	resp, err := http.Post(ts.URL+"/v1/factor", "text/plain", &mm)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrixmarket factor: status %d: %s", resp.StatusCode, body)
	}
	var fr factorResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.N != a.N || fr.NNZ != a.NNZ() {
		t.Fatalf("parsed n=%d nnz=%d; want n=%d nnz=%d", fr.N, fr.NNZ, a.N, a.NNZ())
	}
}

// TestServiceDrain: draining fails health checks and refuses new work.
func TestServiceDrain(t *testing.T) {
	s, ts := testService(t, Config{Procs: 2, BlockSize: 16, BatchWindow: -1})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	a := gen.Grid2D(6)
	r2, body := postJSON(t, ts.URL+"/v1/factor", toCSC(a))
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("factor while draining: %d (%s), want 503", r2.StatusCode, body)
	}
}

// TestServiceBackpressure: with a one-worker pool and a one-slot queue,
// a request arriving while both are held must get a structured 429 —
// queue_full code, Retry-After header and in-body hint — and bump the
// rejected counter.
func TestServiceBackpressure(t *testing.T) {
	s, ts := testService(t, Config{Procs: 1, Workers: 1, QueueDepth: 1, BlockSize: 16, BatchWindow: -1})
	a := gen.IrregularMesh(100, 5, 3, 5)
	fr := factorMatrix(t, ts.URL, a)

	// Occupy the only worker slot and the single queue slot through the
	// admission controller, the way real requests would.
	relWorker, rej, err := s.adm.Admit(context.Background(), admission.Request{Priority: admission.Interactive})
	if rej != nil || err != nil {
		t.Fatalf("occupying worker: rej=%v err=%v", rej, err)
	}
	released := false
	defer func() {
		if !released {
			relWorker()
		}
	}()
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		rel2, rej2, err2 := s.adm.Admit(context.Background(), admission.Request{Priority: admission.Interactive})
		if rej2 == nil && err2 == nil {
			rel2()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s.adm.Snapshot().QueuedByPri["interactive"] == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue slot never filled")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/solve", solveRequest{ID: fr.ID, B: make([]float64, a.N)})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded solve: status %d (%s), want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatal(err)
	}
	if eb.Code != "queue_full" {
		t.Fatalf("rejection code = %q, want queue_full (%s)", eb.Code, body)
	}
	if eb.RetryAfterS <= 0 {
		t.Fatalf("rejection body retry_after_s = %v, want > 0", eb.RetryAfterS)
	}
	if doc := fetchMetrics(t, ts.URL); doc.Rejected == 0 {
		t.Fatal("rejected counter did not move")
	}
	released = true
	relWorker()
	<-queuedDone
}
