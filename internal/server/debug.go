package server

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler returns the opt-in debug mux: the full net/http/pprof
// surface (CPU/heap/goroutine/block profiles, execution traces) plus this
// server's /metrics document, so one scrape target has both. It is
// deliberately not part of Handler(): profiling endpoints can stall the
// process (CPU profiles run for seconds) and leak implementation detail,
// so cmd/spchol-serve only serves them on a separate, explicitly
// requested listener (-debug-addr), typically bound to localhost.
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}
