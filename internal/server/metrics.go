package server

import (
	"sync/atomic"

	"blockfanout/internal/obs"
)

// latencyJSON is the /metrics rendering of one tracked operation's latency
// histogram: count, mean, max, and the tail quantiles the old
// count/total/max tracker could not report.
type latencyJSON struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

// latencySnapshot renders one histogram. All statistics derive from a
// single obs.HistSnapshot, whose bucket counts are copied before the
// sum/max reads and whose mean is clamped to the observed max — under
// concurrent observers the document can lag a few samples but can never
// report mean > max (the incoherent-read bug the old three-independent-
// atomics tracker had).
func latencySnapshot(h *obs.Histogram) latencyJSON {
	s := h.Snapshot()
	return latencyJSON{
		Count:  s.Count,
		MeanMs: s.Mean() / 1e3,
		MaxMs:  float64(s.Maxµ) / 1e3,
		P50Ms:  s.Quantile(0.50) / 1e3,
		P95Ms:  s.Quantile(0.95) / 1e3,
		P99Ms:  s.Quantile(0.99) / 1e3,
	}
}

// metrics is the server's expvar-style counter set.
type metrics struct {
	factorRequests  atomic.Int64
	solveRequests   atomic.Int64
	healthzRequests atomic.Int64
	metricsRequests atomic.Int64

	inFlight atomic.Int64 // gauge: requests currently being handled
	rejected atomic.Int64 // 429s from a full queue
	errors   atomic.Int64 // 4xx/5xx other than 429

	panics           atomic.Int64 // handler panics converted to 500 by the middleware
	retries          atomic.Int64 // transient-failure retries issued
	breakerTrips     atomic.Int64 // circuit breakers tripped
	breakerFastFails atomic.Int64 // requests failed fast by an open breaker

	factors   atomic.Int64 // full factorizations (analysis or numeric-only)
	refactors atomic.Int64 // value-only refactorizations of a live factor
	solvedRHS atomic.Int64 // right-hand sides solved
	batches   atomic.Int64 // coalesced SolveMany calls issued by the batcher
	batched   atomic.Int64 // right-hand sides that travelled in those batches

	tuneAdopted  atomic.Int64 // tuned mappings adopted (measured remap beat the static mapping)
	tuneDeclined atomic.Int64 // measured profiles whose best remap did not beat static
	tuneSkipped  atomic.Int64 // measurements unusable for tuning (truncated recording, restore failure)
	tuneDropped  atomic.Int64 // spans dropped across all measurement recordings (should stay 0)
	tuneRestored atomic.Int64 // gauge: tuned mappings restored by the last WarmStart

	snapWrites   atomic.Int64 // write-behind snapshots committed to the store
	snapErrors   atomic.Int64 // snapshot writes that failed
	snapDropped  atomic.Int64 // snapshots dropped because the write-behind queue was full
	snapSkipped  atomic.Int64 // snapshots skipped by the SnapshotInterval throttle
	warmRestored atomic.Int64 // gauge: factors restored by the last WarmStart

	factorLat   obs.Histogram
	refactorLat obs.Histogram
	solveLat    obs.Histogram
}
