package server

import (
	"sync/atomic"
	"time"
)

// latencyTrack accumulates a latency distribution's cheap sufficient
// statistics (count, total, max) without locks; /metrics derives the mean.
type latencyTrack struct {
	count  atomic.Int64
	totalµ atomic.Int64
	maxµ   atomic.Int64
}

func (l *latencyTrack) observe(d time.Duration) {
	µ := d.Microseconds()
	l.count.Add(1)
	l.totalµ.Add(µ)
	for {
		cur := l.maxµ.Load()
		if µ <= cur || l.maxµ.CompareAndSwap(cur, µ) {
			return
		}
	}
}

// latencyJSON is the /metrics rendering of one tracked operation.
type latencyJSON struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	MaxMs  float64 `json:"max_ms"`
}

func (l *latencyTrack) snapshot() latencyJSON {
	n := l.count.Load()
	out := latencyJSON{Count: n, MaxMs: float64(l.maxµ.Load()) / 1e3}
	if n > 0 {
		out.MeanMs = float64(l.totalµ.Load()) / float64(n) / 1e3
	}
	return out
}

// metrics is the server's expvar-style counter set.
type metrics struct {
	factorRequests  atomic.Int64
	solveRequests   atomic.Int64
	healthzRequests atomic.Int64
	metricsRequests atomic.Int64

	inFlight atomic.Int64 // gauge: requests currently being handled
	rejected atomic.Int64 // 429s from a full queue
	errors   atomic.Int64 // 4xx/5xx other than 429

	panics           atomic.Int64 // handler panics converted to 500 by the middleware
	retries          atomic.Int64 // transient-failure retries issued
	breakerTrips     atomic.Int64 // circuit breakers tripped
	breakerFastFails atomic.Int64 // requests failed fast by an open breaker

	factors   atomic.Int64 // full factorizations (analysis or numeric-only)
	refactors atomic.Int64 // value-only refactorizations of a live factor
	solvedRHS atomic.Int64 // right-hand sides solved
	batches   atomic.Int64 // coalesced SolveMany calls issued by the batcher
	batched   atomic.Int64 // right-hand sides that travelled in those batches

	factorLat   latencyTrack
	refactorLat latencyTrack
	solveLat    latencyTrack
}
