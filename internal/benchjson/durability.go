// Durability benchmark: quantifies what the snapshot store buys and costs.
// Warm restart must beat cold time-to-first-solve (that is its reason to
// exist), and the write-behind checkpoint on the refactor path must stay
// under ~3% — durability may not tax the requests it protects.
package benchjson

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/server"
	"blockfanout/internal/sparse"
)

// DurabilityReport is the warm-restart section of BENCH_robustness.json.
type DurabilityReport struct {
	// Time-to-first-solve from a fresh process: cold analyzes, factors,
	// and solves; warm restores the factor snapshot and solves.
	ColdFirstSolveMs float64 `json:"cold_first_solve_ms"`
	WarmFirstSolveMs float64 `json:"warm_first_solve_ms"`
	WarmSpeedupX     float64 `json:"warm_speedup_x"`

	// Refactor latency with and without write-behind snapshotting; the
	// overhead is the <3% criterion.
	RefactorMs         float64 `json:"refactor_ms"`
	RefactorStoreMs    float64 `json:"refactor_store_ms"`
	WriteBehindOvhdPct float64 `json:"write_behind_overhead_pct"`
}

// durabilityMesh is the benchmark problem; sized so a factorization is
// tens of milliseconds — large enough for the snapshot copy to show up if
// it ever lands on the critical path.
func durabilityMesh() *sparse.Matrix { return gen.IrregularMesh(2000, 7, 3, 7) }

// firstSolve boots a service (warm-starting when dir is set), factors if
// cold, and issues one solve, returning the boot→answer latency in ms.
func firstSolve(m *sparse.Matrix, dir string, rhs []float64) (float64, error) {
	start := time.Now()
	srv := server.New(server.Config{Procs: serviceProcs, BatchWindow: -1, StoreDir: dir})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := ""
	if dir != "" {
		if _, err := srv.WarmStart(); err != nil {
			return 0, err
		}
		id = fmt.Sprintf("%016x", m.PatternHash())
	} else {
		body, err := postService(ts.URL, "/v1/factor", factorBody(m))
		if err != nil {
			return 0, err
		}
		var fr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &fr); err != nil {
			return 0, err
		}
		id = fr.ID
	}
	if _, err := postService(ts.URL, "/v1/solve", map[string]any{"id": id, "b": rhs}); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds() * 1e3, nil
}

// refactorBest factors m once cold, then measures same-pattern refactor
// requests and returns the best of rounds, in ms. The store side runs the
// default SnapshotInterval throttle, so this measures the steady-state
// refactor path the way production sees it: most rounds skip the snapshot
// outright, the occasional round pays the in-memory block export.
func refactorBest(m *sparse.Matrix, dir string, rounds int) (float64, error) {
	srv := server.New(server.Config{Procs: serviceProcs, BatchWindow: -1, StoreDir: dir})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := postService(ts.URL, "/v1/factor", factorBody(m)); err != nil {
		return 0, err
	}
	m2 := &sparse.Matrix{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: append([]float64(nil), m.Val...)}
	best := 0.0
	for r := 0; r < rounds; r++ {
		for j := 0; j < m2.N; j++ {
			m2.Val[m2.ColPtr[j]] *= 1.0001 // new values, same pattern
		}
		start := time.Now()
		if _, err := postService(ts.URL, "/v1/factor", factorBody(m2)); err != nil {
			return 0, err
		}
		ms := time.Since(start).Seconds() * 1e3
		if best == 0 || ms < best {
			best = ms
		}
		// Let the write-behind writer finish before the next timed round.
		// The claim under test is that the request pays only the in-memory
		// block export; measuring rounds back-to-back would instead measure
		// CPU contention with the background writer (the durable write takes
		// longer than the refactor itself on a 1-core runner), which
		// saturates and inflates every round.
		time.Sleep(150 * time.Millisecond)
	}
	return best, nil
}

// CollectDurability measures warm vs cold time-to-first-solve and the
// write-behind overhead on the refactor path.
func CollectDurability(rounds int) (*DurabilityReport, error) {
	m := durabilityMesh()
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	dir, err := os.MkdirTemp("", "spchol-bench-store")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// Seed the store once so the warm rounds have a snapshot to restore.
	seed := server.New(server.Config{Procs: serviceProcs, BatchWindow: -1, StoreDir: dir})
	sts := httptest.NewServer(seed.Handler())
	if _, err := postService(sts.URL, "/v1/factor", factorBody(m)); err != nil {
		return nil, err
	}
	sts.Close()
	seed.Close() // flushes the write-behind queue

	rep := &DurabilityReport{}
	for r := 0; r < rounds; r++ {
		cold, err := firstSolve(m, "", rhs)
		if err != nil {
			return nil, err
		}
		warm, err := firstSolve(m, dir, rhs)
		if err != nil {
			return nil, err
		}
		if rep.ColdFirstSolveMs == 0 || cold < rep.ColdFirstSolveMs {
			rep.ColdFirstSolveMs = cold
		}
		if rep.WarmFirstSolveMs == 0 || warm < rep.WarmFirstSolveMs {
			rep.WarmFirstSolveMs = warm
		}
	}
	if rep.WarmFirstSolveMs > 0 {
		rep.WarmSpeedupX = rep.ColdFirstSolveMs / rep.WarmFirstSolveMs
	}

	// Interleaving (like the pivot-check table) would require rebuilding
	// the service per pass; best-of-rounds on each side is steady enough
	// for a single-digit-percent comparison.
	plain, err := refactorBest(m, "", 2*rounds)
	if err != nil {
		return nil, err
	}
	stored, err := refactorBest(m, dir, 2*rounds)
	if err != nil {
		return nil, err
	}
	rep.RefactorMs, rep.RefactorStoreMs = plain, stored
	if plain > 0 {
		rep.WriteBehindOvhdPct = (stored/plain - 1) * 100
	}
	return rep, nil
}
