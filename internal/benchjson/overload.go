// Overload experiment: drives the admission-controlled service past
// capacity with two tenants — one quiet and paced, one aggressively
// flooding — and measures what graceful degradation actually delivers.
// The contract (BENCH_robustness.json, overload section): the quiet
// tenant's admitted interactive p99 stays within ~2× its unloaded p99
// (plus timesharing slack on starved CI machines), the aggressive tenant's
// flood cannot push the quiet tenant's error rate above its own quota
// share (≈0 when it stays inside its limits), every rejection carries
// Retry-After, and the brownout state machine visibly transitions.
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"blockfanout/internal/admission"
	"blockfanout/internal/gen"
	"blockfanout/internal/server"
)

// OverloadReport is the overload section of BENCH_robustness.json.
type OverloadReport struct {
	Workers    int     `json:"workers"`
	QueueDepth int     `json:"queue_depth"`
	DurationMs float64 `json:"duration_ms"`
	// OfferedMultiple is offered requests over served requests during the
	// loaded phase — how far past capacity the flood actually pushed.
	OfferedMultiple float64 `json:"offered_multiple"`

	// Quiet tenant's interactive solve p99, alone vs under the flood. The
	// ratio is the headline: priority scheduling and tenant round-robin
	// protected the interactive class when it stays near 1.
	UnloadedP99Ms float64 `json:"unloaded_interactive_p99_ms"`
	LoadedP99Ms   float64 `json:"loaded_interactive_p99_ms"`
	P99RatioX     float64 `json:"p99_ratio_x"`

	// Tenant isolation: the quiet tenant stays inside its quota, so its
	// error rate must stay ≈0 no matter how hard the aggressor pushes.
	QuietSolves        int     `json:"quiet_solves"`
	QuietErrors        int     `json:"quiet_errors"`
	QuietErrorRate     float64 `json:"quiet_error_rate"`
	AggressiveAdmitted int     `json:"aggressive_admitted"`
	AggressiveRejected int     `json:"aggressive_rejected"`

	// Every 429/503 must tell the client when to come back.
	Rejections           int `json:"rejections"`
	RejectionsRetryAfter int `json:"rejections_with_retry_after"`

	// Brownout observability: transitions counted by /metrics and the
	// worst admission state /healthz reported mid-flood.
	BrownoutTransitions uint64 `json:"brownout_transitions"`
	PeakState           string `json:"peak_admission_state"`
}

// overloadWorkers/overloadQueue size the deliberately small service under
// test: one worker so capacity is cheap to exceed and admitted interactive
// latency is not inflated by slot timesharing on a one-core CI box.
const (
	overloadWorkers = 1
	overloadQueue   = 8
)

// postRaw posts a pre-marshaled body as tenant and returns status and the
// Retry-After header. Marshaling outside the loop keeps the flood's
// client-side CPU cost from throttling the offered load.
func postRaw(client *http.Client, url, path, tenant string, raw []byte) (int, string, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url+path, bytes.NewReader(raw))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), body, nil
}

func p99(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	i := int(float64(len(sorted)) * 0.99)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// overloadFactor factors m as tenant and returns the solve body for it.
func overloadFactor(client *http.Client, url, tenant string, n, deg, extra int, seed uint64) ([]byte, error) {
	m := gen.IrregularMesh(n, deg, extra, seed)
	raw, err := json.Marshal(map[string]any{
		"n": m.N, "colptr": m.ColPtr, "rowind": m.RowInd, "val": m.Val,
	})
	if err != nil {
		return nil, err
	}
	code, _, body, err := postRaw(client, url, "/v1/factor", tenant, raw)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("overload: factor returned %d: %s", code, body)
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, err
	}
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	return json.Marshal(map[string]any{"id": fr.ID, "b": rhs})
}

// CollectOverload runs the two-tenant overload experiment for roughly d of
// loaded time.
func CollectOverload(d time.Duration) (*OverloadReport, error) {
	rep := &OverloadReport{Workers: overloadWorkers, QueueDepth: overloadQueue}

	srv := server.New(server.Config{
		Procs:       serviceProcs,
		Workers:     overloadWorkers,
		QueueDepth:  overloadQueue,
		BatchWindow: -1, // measure the admission path, not batching's throughput win
		Tenants: map[string]admission.TenantLimits{
			// The quiet tenant's pace fits comfortably inside these.
			"quiet": {MaxInFlight: 2},
			// The aggressor's quota bounds how much of the shared queue it
			// can hold; its overflow is its own problem (tenant_quota 429),
			// never the quiet tenant's.
			"aggressive": {MaxInFlight: overloadWorkers + 4},
		},
		ShedAt:   0.3,
		RejectAt: 0.8,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 30 * time.Second}

	// Both tenants work a paper-scale factor of their own, with per-op
	// solve times well past the Go scheduler's preemption quantum: on a
	// one-core CI box, shorter ops run to completion back-to-back and
	// queueing never materializes at the admission gate at all.
	quietSolve, err := overloadFactor(client, ts.URL, "quiet", 9000, 7, 3, 42)
	if err != nil {
		return nil, err
	}
	aggSolve, err := overloadFactor(client, ts.URL, "aggressive", 9000, 7, 3, 11)
	if err != nil {
		return nil, err
	}
	solveOnce := func(tenant string, raw []byte) (float64, int, string, error) {
		start := time.Now()
		code, retry, _, err := postRaw(client, ts.URL, "/v1/solve", tenant, raw)
		return time.Since(start).Seconds() * 1e3, code, retry, err
	}

	// Phase 1 — unloaded: the quiet tenant alone, sequentially.
	var unloaded []float64
	for i := 0; i < 60; i++ {
		ms, code, _, err := solveOnce("quiet", quietSolve)
		if err != nil {
			return nil, err
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("overload: unloaded solve returned %d", code)
		}
		unloaded = append(unloaded, ms)
	}
	rep.UnloadedP99Ms = p99(unloaded)

	// Phase 2 — loaded: an aggressive closed-loop flood with enough
	// concurrency to keep its quota saturated and its overflow rejected,
	// while the quiet tenant keeps its gentle pace.
	var (
		stop      atomic.Bool
		attempts  atomic.Int64
		aggAdmit  atomic.Int64
		aggReject atomic.Int64
		rejRetry  atomic.Int64
		floodWG   sync.WaitGroup
	)
	for g := 0; g < 2*(overloadWorkers+overloadQueue); g++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for !stop.Load() {
				attempts.Add(1)
				_, code, retry, err := solveOnce("aggressive", aggSolve)
				if err != nil {
					continue
				}
				switch {
				case code == http.StatusOK:
					aggAdmit.Add(1)
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					aggReject.Add(1)
					if retry != "" {
						rejRetry.Add(1)
					}
					// An impatient client: it backs off, but only a fraction
					// of the advertised Retry-After, so rejections keep
					// coming without the rejection path itself saturating
					// the machine.
					time.Sleep(100 * time.Millisecond)
				}
			}
		}()
	}

	start := time.Now()
	var loaded []float64
	quietErrors := 0
	peak := "ok"
	for time.Since(start) < d {
		ms, code, _, err := solveOnce("quiet", quietSolve)
		if err != nil || code != http.StatusOK {
			quietErrors++
		} else {
			loaded = append(loaded, ms)
		}
		// Sample the admission state mid-flood through the public surface.
		if len(loaded)%8 == 3 {
			if resp, err := client.Get(ts.URL + "/healthz"); err == nil {
				var h struct {
					Admission string `json:"admission"`
				}
				json.NewDecoder(resp.Body).Decode(&h)
				resp.Body.Close()
				if h.Admission != "ok" && h.Admission != "" {
					peak = h.Admission
				}
			}
		}
		time.Sleep(15 * time.Millisecond)
	}
	stop.Store(true)
	floodWG.Wait()
	elapsed := time.Since(start)

	rep.DurationMs = elapsed.Seconds() * 1e3
	rep.LoadedP99Ms = p99(loaded)
	if rep.UnloadedP99Ms > 0 {
		rep.P99RatioX = rep.LoadedP99Ms / rep.UnloadedP99Ms
	}
	rep.QuietSolves = len(loaded) + quietErrors
	rep.QuietErrors = quietErrors
	if rep.QuietSolves > 0 {
		rep.QuietErrorRate = float64(quietErrors) / float64(rep.QuietSolves)
	}
	rep.AggressiveAdmitted = int(aggAdmit.Load())
	rep.AggressiveRejected = int(aggReject.Load())
	rep.Rejections = int(aggReject.Load())
	rep.RejectionsRetryAfter = int(rejRetry.Load())
	served := aggAdmit.Load() + int64(len(loaded))
	if served > 0 {
		rep.OfferedMultiple = float64(attempts.Load()+int64(rep.QuietSolves)) / float64(served)
	}
	rep.PeakState = peak

	// Transitions come from the metrics surface, like an operator would see.
	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		return nil, err
	}
	var doc struct {
		Admission admission.Stats `json:"admission"`
	}
	json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	rep.BrownoutTransitions = doc.Admission.Transitions
	return rep, nil
}
