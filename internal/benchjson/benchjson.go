// Package benchjson measures the library's kernel and end-to-end
// performance and serializes the result as a machine-readable report
// (BENCH_kernels.json at the repo root). The numbers answer the paper's
// recurring question — what fraction of the machine rate does the
// factorization achieve? — for this implementation: the per-kernel GFlop/s
// rows are the "machine rate" of the tiled block operations, and the fan-out
// row is the achieved end-to-end rate at CI scale.
package benchjson

import (
	"encoding/json"
	"os"
	"time"

	"blockfanout/internal/experiments"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/sched"
)

// KernelRow is one (kernel, block width) throughput measurement.
type KernelRow struct {
	Kernel string  `json:"kernel"`
	Width  int     `json:"w"`
	GFlops float64 `json:"gflops"`
	// SpeedupVsNaive is tiled/naive throughput at the same width; zero for
	// the naive reference rows themselves.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// FanoutRow is one end-to-end parallel factorization measurement.
type FanoutRow struct {
	Problem string  `json:"problem"`
	Procs   int     `json:"procs"`
	Seconds float64 `json:"seconds"`
	GFlops  float64 `json:"gflops"`
}

// Report is the full BENCH_kernels.json document.
type Report struct {
	Host string `json:"host"`
	// FMA records whether the AVX2+FMA micro-kernel was active; the
	// MulSubPortable rows measure the register-tiled Go fallback either way.
	FMA     bool        `json:"fma"`
	Scale   string      `json:"scale"`
	Kernels []KernelRow `json:"kernels"`
	Fanout  []FanoutRow `json:"fanout"`
}

// Widths are the block sizes the partitioner actually produces; they match
// the kernel micro-benchmarks in internal/kernels.
var Widths = []int{8, 16, 24, 32, 48, 64}

const benchRows = 64

// timeLoop runs fn until minTime has elapsed (after one warmup call) and
// returns throughput in GFlop/s.
func timeLoop(minTime time.Duration, flopsPerIter int64, fn func()) float64 {
	fn()
	var iters int64
	start := time.Now()
	for time.Since(start) < minTime {
		fn()
		iters++
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(flopsPerIter) * float64(iters) / sec / 1e9
}

func blockOperands(w, r int) (a, b, c []float64, rel []int) {
	a = make([]float64, r*w)
	b = make([]float64, r*w)
	c = make([]float64, r*r)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%11) - 5
	}
	rel = make([]int, r)
	for i := range rel {
		rel[i] = i
	}
	return
}

func spd(w int, shift float64) []float64 {
	a := make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j <= i; j++ {
			v := 1 / (1 + float64(i-j))
			a[i*w+j] = v
			a[j*w+i] = v
		}
		a[i*w+i] += float64(w) + shift
	}
	return a
}

// collectKernels measures every tiled kernel and its retained naive
// reference across Widths.
func collectKernels(minTime time.Duration) []KernelRow {
	var rows []KernelRow
	r := benchRows
	for _, w := range Widths {
		a, b, c, rel := blockOperands(w, r)
		mulFlops := int64(2 * r * r * w)
		tiled := timeLoop(minTime, mulFlops, func() {
			kernels.MulSub(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
		})
		naive := timeLoop(minTime, mulFlops, func() {
			kernels.MulSubNaive(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
		})
		scattered := timeLoop(minTime, mulFlops, func() {
			kernels.MulSubScattered(c, r, a, r, b, r, w, rel, rel)
		})
		rows = append(rows,
			KernelRow{Kernel: "MulSub", Width: w, GFlops: tiled, SpeedupVsNaive: tiled / naive},
			KernelRow{Kernel: "MulSubScattered", Width: w, GFlops: scattered, SpeedupVsNaive: scattered / naive},
			KernelRow{Kernel: "MulSubNaive", Width: w, GFlops: naive},
		)
		if kernels.HasFMA() {
			kernels.SetFMA(false)
			portable := timeLoop(minTime, mulFlops, func() {
				kernels.MulSub(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
			})
			kernels.SetFMA(true)
			rows = append(rows, KernelRow{Kernel: "MulSubPortable", Width: w, GFlops: portable, SpeedupVsNaive: portable / naive})
		}

		src := spd(w, 2)
		dst := make([]float64, w*w)
		cholFlops := int64(w) * int64(w) * int64(w) / 3
		chol := timeLoop(minTime, cholFlops, func() {
			copy(dst, src)
			if err := kernels.Cholesky(dst, w); err != nil {
				panic(err)
			}
		})
		cholNaive := timeLoop(minTime, cholFlops, func() {
			copy(dst, src)
			if err := kernels.CholeskyNaive(dst, w); err != nil {
				panic(err)
			}
		})
		rows = append(rows,
			KernelRow{Kernel: "Cholesky", Width: w, GFlops: chol, SpeedupVsNaive: chol / cholNaive},
			KernelRow{Kernel: "CholeskyNaive", Width: w, GFlops: cholNaive},
		)

		l := spd(w, 1)
		if err := kernels.Cholesky(l, w); err != nil {
			panic(err)
		}
		x := make([]float64, r*w)
		work := make([]float64, r*w)
		for i := range x {
			x[i] = float64(i%13) - 6
		}
		slvFlops := int64(r) * int64(w) * int64(w)
		slv := timeLoop(minTime, slvFlops, func() {
			copy(work, x)
			if err := kernels.SolveRight(work, r, l, w); err != nil {
				panic(err)
			}
		})
		slvNaive := timeLoop(minTime, slvFlops, func() {
			copy(work, x)
			if err := kernels.SolveRightNaive(work, r, l, w); err != nil {
				panic(err)
			}
		})
		rows = append(rows,
			KernelRow{Kernel: "SolveRight", Width: w, GFlops: slv, SpeedupVsNaive: slv / slvNaive},
			KernelRow{Kernel: "SolveRightNaive", Width: w, GFlops: slvNaive},
		)
	}
	return rows
}

// collectFanout times complete parallel factorizations of the CI-scale
// BCSSTK31 stand-in across processor grids.
func collectFanout(minRuns int) ([]FanoutRow, error) {
	const problem = "BCSSTK31"
	p, ok := gen.ByName(gen.Table1Suite(gen.ScaleCI), problem)
	if !ok {
		panic("suite problem missing: " + problem)
	}
	plan, err := experiments.PlanFor(p, gen.ScaleCI, 16)
	if err != nil {
		return nil, err
	}
	var rows []FanoutRow
	for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}, {Pr: 4, Pc: 4}} {
		pr := sched.Build(plan.BS, plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
		best := 0.0
		for run := 0; run < minRuns; run++ {
			f, err := numeric.New(plan.BS, plan.PA)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := fanout.Run(f, pr); err != nil {
				return nil, err
			}
			sec := time.Since(start).Seconds()
			if best == 0 || sec < best {
				best = sec
			}
		}
		rows = append(rows, FanoutRow{
			Problem: problem,
			Procs:   g.P(),
			Seconds: best,
			GFlops:  float64(plan.BS.TotalFlops) / best / 1e9,
		})
	}
	return rows, nil
}

// Collect measures everything and assembles the report. minTime bounds the
// per-kernel measurement window.
func Collect(minTime time.Duration) (*Report, error) {
	host, _ := os.Hostname()
	fan, err := collectFanout(5)
	if err != nil {
		return nil, err
	}
	return &Report{
		Host:    host,
		FMA:     kernels.HasFMA(),
		Scale:   "ci",
		Kernels: collectKernels(minTime),
		Fanout:  fan,
	}, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
