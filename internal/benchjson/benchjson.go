// Package benchjson measures the library's kernel and end-to-end
// performance and serializes the result as a machine-readable report
// (BENCH_kernels.json at the repo root). The numbers answer the paper's
// recurring question — what fraction of the machine rate does the
// factorization achieve? — for this implementation: the per-kernel GFlop/s
// rows are the "machine rate" of the tiled block operations, and the fan-out
// row is the achieved end-to-end rate at CI scale.
package benchjson

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"blockfanout/internal/blocks"
	"blockfanout/internal/core"
	"blockfanout/internal/experiments"
	"blockfanout/internal/fanout"
	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/mapping"
	"blockfanout/internal/numeric"
	"blockfanout/internal/sched"
)

// KernelRow is one (kernel, block width) throughput measurement.
type KernelRow struct {
	Kernel string  `json:"kernel"`
	Width  int     `json:"w"`
	GFlops float64 `json:"gflops"`
	// SpeedupVsNaive is tiled/naive throughput at the same width; zero for
	// the naive reference rows themselves.
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// FanoutRow is one end-to-end parallel factorization measurement.
type FanoutRow struct {
	Problem string `json:"problem"`
	Procs   int    `json:"procs"`
	// Exec is the parallel engine: "spmd" (the paper's one-goroutine-per-
	// virtual-processor loop) or "steal" (the work-stealing executor).
	Exec string `json:"exec"`
	// Blocking is the partitioning strategy the plan was built with.
	Blocking string  `json:"blocking"`
	Seconds  float64 `json:"seconds"`
	GFlops   float64 `json:"gflops"`
}

// RemapRow is one row of the feedback-driven remapping comparison: a real
// measured factorization of an irregular problem under one mapping (every
// static heuristic plus remap-after-measure), verified against the
// sequential reference. See internal/experiments.RemapRows.
type RemapRow struct {
	Problem string `json:"problem"`
	Procs   int    `json:"procs"`
	// Map is the mapping label: "ID/CY", "CY/CY", …, or "remap" for the
	// mapping rebuilt from the serve run's measured span costs.
	Map string `json:"map"`
	// Balance is the run's measured execution balance (per-processor busy
	// time, total/(P·max)); Predicted is the ownership balance this
	// mapping achieves over the measured cost profile — the tuner's
	// objective.
	Balance   float64 `json:"balance"`
	Predicted float64 `json:"predicted"`
	// Seconds is the factorization's measured compute window (first span
	// start to last span end of the fastest rep).
	Seconds float64 `json:"seconds"`
}

// Report is the full BENCH_kernels.json document.
type Report struct {
	Host string `json:"host"`
	// FMA records whether the AVX2+FMA micro-kernel was active; the
	// MulSubPortable rows measure the register-tiled Go fallback either way.
	FMA     bool        `json:"fma"`
	Scale   string      `json:"scale"`
	Kernels []KernelRow `json:"kernels"`
	Fanout  []FanoutRow `json:"fanout"`
	Remap   []RemapRow  `json:"remap"`
}

// Widths are the block sizes the partitioner actually produces; they match
// the kernel micro-benchmarks in internal/kernels.
var Widths = []int{8, 16, 24, 32, 48, 64}

const benchRows = 64

// timeLoop runs fn until minTime has elapsed (after one warmup call) and
// returns throughput in GFlop/s.
func timeLoop(minTime time.Duration, flopsPerIter int64, fn func()) float64 {
	fn()
	var iters int64
	start := time.Now()
	for time.Since(start) < minTime {
		fn()
		iters++
	}
	sec := time.Since(start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(flopsPerIter) * float64(iters) / sec / 1e9
}

func blockOperands(w, r int) (a, b, c []float64, rel []int) {
	a = make([]float64, r*w)
	b = make([]float64, r*w)
	c = make([]float64, r*r)
	for i := range a {
		a[i] = float64(i%7) - 3
		b[i] = float64(i%11) - 5
	}
	rel = make([]int, r)
	for i := range rel {
		rel[i] = i
	}
	return
}

func spd(w int, shift float64) []float64 {
	a := make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j <= i; j++ {
			v := 1 / (1 + float64(i-j))
			a[i*w+j] = v
			a[j*w+i] = v
		}
		a[i*w+i] += float64(w) + shift
	}
	return a
}

// collectKernels measures every tiled kernel and its retained naive
// reference across Widths.
func collectKernels(minTime time.Duration) []KernelRow {
	var rows []KernelRow
	r := benchRows
	for _, w := range Widths {
		a, b, c, rel := blockOperands(w, r)
		mulFlops := int64(2 * r * r * w)
		tiled := timeLoop(minTime, mulFlops, func() {
			kernels.MulSub(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
		})
		naive := timeLoop(minTime, mulFlops, func() {
			kernels.MulSubNaive(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
		})
		scattered := timeLoop(minTime, mulFlops, func() {
			kernels.MulSubScattered(c, r, a, r, b, r, w, rel, rel)
		})
		rows = append(rows,
			KernelRow{Kernel: "MulSub", Width: w, GFlops: tiled, SpeedupVsNaive: tiled / naive},
			KernelRow{Kernel: "MulSubScattered", Width: w, GFlops: scattered, SpeedupVsNaive: scattered / naive},
			KernelRow{Kernel: "MulSubNaive", Width: w, GFlops: naive},
		)
		if kernels.HasFMA() {
			kernels.SetFMA(false)
			portable := timeLoop(minTime, mulFlops, func() {
				kernels.MulSub(c, r, a, r, b, r, w, rel, rel, false, nil, nil)
			})
			kernels.SetFMA(true)
			rows = append(rows, KernelRow{Kernel: "MulSubPortable", Width: w, GFlops: portable, SpeedupVsNaive: portable / naive})
		}

		src := spd(w, 2)
		dst := make([]float64, w*w)
		cholFlops := int64(w) * int64(w) * int64(w) / 3
		chol := timeLoop(minTime, cholFlops, func() {
			copy(dst, src)
			if err := kernels.Cholesky(dst, w); err != nil {
				panic(err)
			}
		})
		cholNaive := timeLoop(minTime, cholFlops, func() {
			copy(dst, src)
			if err := kernels.CholeskyNaive(dst, w); err != nil {
				panic(err)
			}
		})
		rows = append(rows,
			KernelRow{Kernel: "Cholesky", Width: w, GFlops: chol, SpeedupVsNaive: chol / cholNaive},
			KernelRow{Kernel: "CholeskyNaive", Width: w, GFlops: cholNaive},
		)

		l := spd(w, 1)
		if err := kernels.Cholesky(l, w); err != nil {
			panic(err)
		}
		x := make([]float64, r*w)
		work := make([]float64, r*w)
		for i := range x {
			x[i] = float64(i%13) - 6
		}
		slvFlops := int64(r) * int64(w) * int64(w)
		slv := timeLoop(minTime, slvFlops, func() {
			copy(work, x)
			if err := kernels.SolveRight(work, r, l, w); err != nil {
				panic(err)
			}
		})
		slvNaive := timeLoop(minTime, slvFlops, func() {
			copy(work, x)
			if err := kernels.SolveRightNaive(work, r, l, w); err != nil {
				panic(err)
			}
		})
		rows = append(rows,
			KernelRow{Kernel: "SolveRight", Width: w, GFlops: slv, SpeedupVsNaive: slv / slvNaive},
			KernelRow{Kernel: "SolveRightNaive", Width: w, GFlops: slvNaive},
		)
	}
	return rows
}

// verifyAgainstSequential factors the plan once with the given engine and
// checks every stored entry against the sequential reference to 1e-12
// relative — the refactorization acceptance tolerance. The benchmark rows
// only mean something if the measured runs compute the right factor.
func verifyAgainstSequential(plan *core.Plan, pr *sched.Program, mode fanout.Mode) error {
	seq, err := numeric.New(plan.BS, plan.PA)
	if err != nil {
		return err
	}
	if err := seq.FactorSequential(); err != nil {
		return err
	}
	par, err := numeric.New(plan.BS, plan.PA)
	if err != nil {
		return err
	}
	if _, err := fanout.NewExecutorMode(par, pr, mode).Run(); err != nil {
		return err
	}
	for j := range seq.Data {
		for bi := range seq.Data[j] {
			for k, v := range seq.Data[j][bi] {
				if w := par.Data[j][bi][k]; math.Abs(v-w) > 1e-12*(1+math.Abs(v)) {
					return fmt.Errorf("benchjson: parallel factor diverges from reference at column %d block %d entry %d: %g vs %g", j, bi, k, w, v)
				}
			}
		}
	}
	return nil
}

// FanoutVariants are the engine × blocking configurations the end-to-end
// rows cover: the paper's baseline (uniform panels, SPMD loop), the
// work-stealing executor on the same blocks, and the structure-aware
// irregular blocking it was built for.
var FanoutVariants = []struct {
	Exec     string
	Mode     fanout.Mode
	Blocking blocks.Strategy
	Amalg    float64
}{
	{Exec: "spmd", Mode: fanout.ModeSPMD, Blocking: blocks.StrategyUniform},
	{Exec: "steal", Mode: fanout.ModeWorkStealing, Blocking: blocks.StrategyUniform},
	{Exec: "steal", Mode: fanout.ModeWorkStealing, Blocking: blocks.StrategyIrregular, Amalg: 0.125},
}

// collectFanout times complete parallel factorizations of the CI-scale
// BCSSTK31 stand-in across processor grids for every executor × blocking
// variant, verifying each variant's factor against the sequential
// reference before timing it.
func collectFanout(minRuns int) ([]FanoutRow, error) {
	const problem = "BCSSTK31"
	p, ok := gen.ByName(gen.Table1Suite(gen.ScaleCI), problem)
	if !ok {
		panic("suite problem missing: " + problem)
	}
	var rows []FanoutRow
	for _, v := range FanoutVariants {
		plan, err := experiments.PlanForBlocking(p, gen.ScaleCI, 16, v.Blocking, v.Amalg)
		if err != nil {
			return nil, err
		}
		for _, g := range []mapping.Grid{{Pr: 1, Pc: 1}, {Pr: 2, Pc: 2}, {Pr: 2, Pc: 4}, {Pr: 4, Pc: 4}} {
			pr := sched.Build(plan.BS, plan.Assign(plan.Map(g, mapping.ID, mapping.CY), 2))
			if err := verifyAgainstSequential(plan, pr, v.Mode); err != nil {
				return nil, err
			}
			f, err := numeric.New(plan.BS, plan.PA)
			if err != nil {
				return nil, err
			}
			ex := fanout.NewExecutorMode(f, pr, v.Mode)
			best := 0.0
			for run := 0; run < minRuns; run++ {
				if err := f.Reload(plan.PA.Val); err != nil {
					return nil, err
				}
				start := time.Now()
				if _, err := ex.Run(); err != nil {
					return nil, err
				}
				sec := time.Since(start).Seconds()
				if best == 0 || sec < best {
					best = sec
				}
			}
			rows = append(rows, FanoutRow{
				Problem:  problem,
				Procs:    g.P(),
				Exec:     v.Exec,
				Blocking: v.Blocking.String(),
				Seconds:  best,
				GFlops:   float64(plan.BS.TotalFlops) / best / 1e9,
			})
		}
	}
	return rows, nil
}

// collectRemap runs the feedback-driven remapping comparison at CI scale
// and converts its rows for the report.
func collectRemap() ([]RemapRow, error) {
	res, err := experiments.RemapRows(experiments.Default(gen.ScaleCI), experiments.RemapProcs)
	if err != nil {
		return nil, err
	}
	rows := make([]RemapRow, 0, len(res))
	for _, r := range res {
		rows = append(rows, RemapRow{
			Problem:   r.Problem,
			Procs:     r.Procs,
			Map:       r.Map,
			Balance:   r.Balance,
			Predicted: r.Predicted,
			Seconds:   r.Seconds,
		})
	}
	return rows, nil
}

// Collect measures everything and assembles the report. minTime bounds the
// per-kernel measurement window.
func Collect(minTime time.Duration) (*Report, error) {
	host, _ := os.Hostname()
	fan, err := collectFanout(5)
	if err != nil {
		return nil, err
	}
	remap, err := collectRemap()
	if err != nil {
		return nil, err
	}
	return &Report{
		Host:    host,
		FMA:     kernels.HasFMA(),
		Scale:   "ci",
		Kernels: collectKernels(minTime),
		Fanout:  fan,
		Remap:   remap,
	}, nil
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
