// Robustness benchmark: quantifies what this PR's fault tolerance costs on
// the hot paths, and serializes BENCH_robustness.json. The contract is that
// pivot-breakdown detection in BFAC (kernels.Cholesky vs CholeskyNoChecks)
// and the hardened serving path (injection gate, retry wrapper, breaker
// bookkeeping around each solve) stay within ~2% of the unchecked
// baselines — failure detection must be effectively free when nothing
// fails.
package benchjson

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/kernels"
	"blockfanout/internal/server"
)

// PivotCheckRow compares checked and check-free BFAC at one block width.
type PivotCheckRow struct {
	Width           int     `json:"w"`
	CheckedGFlops   float64 `json:"checked_gflops"`
	NoChecksGFlops  float64 `json:"nochecks_gflops"`
	OverheadPercent float64 `json:"overhead_pct"` // (nochecks/checked − 1) · 100
}

// RobustnessReport is the BENCH_robustness.json document.
type RobustnessReport struct {
	Host string `json:"host"`
	FMA  bool   `json:"fma"`

	// PivotChecks is the BFAC overhead table. MaxOverheadPercent is its
	// worst row — the headline number the <2% criterion applies to.
	PivotChecks        []PivotCheckRow `json:"pivot_checks"`
	MaxOverheadPercent float64         `json:"max_overhead_pct"`

	// ServerSolveMs is a single-RHS solve through the hardened HTTP path
	// (injection gate, retry wrapper, breaker bookkeeping all in line,
	// injection disabled), best of several rounds; N and Procs give its
	// scale. This is the absolute number regressions are judged against.
	N             int     `json:"n"`
	Procs         int     `json:"procs"`
	ServerSolveMs float64 `json:"server_solve_ms"`

	// Durability measures warm vs cold time-to-first-solve and the
	// write-behind snapshot overhead (see durability.go).
	Durability *DurabilityReport `json:"durability,omitempty"`

	// Overload is the two-tenant past-capacity experiment: interactive p99
	// under flood, tenant isolation, Retry-After coverage, and brownout
	// transitions (see overload.go).
	Overload *OverloadReport `json:"overload,omitempty"`
}

// cholGFlops measures one Cholesky variant at width w.
func cholGFlops(minTime time.Duration, w int, fn func([]float64, int)) float64 {
	src := make([]float64, w*w)
	for i := 0; i < w; i++ {
		for j := 0; j <= i; j++ {
			v := 1.0 / float64(1+i-j)
			if i == j {
				v = float64(w) + 2
			}
			src[i*w+j] = v
		}
	}
	dst := make([]float64, len(src))
	flops := int64(w) * int64(w) * int64(w) / 3
	return timeLoop(minTime, flops, func() {
		copy(dst, src)
		fn(dst, w)
	})
}

// CollectRobustness measures the overhead table and the hardened serving
// path. minTime is the per-measurement budget; rounds is how many warm
// solve measurements the server number is the best of.
func CollectRobustness(minTime time.Duration, rounds int) (*RobustnessReport, error) {
	host, _ := os.Hostname()
	rep := &RobustnessReport{Host: host, FMA: kernels.HasFMA()}

	for _, w := range Widths {
		// Interleave the two variants and keep each one's best pass: on a
		// shared machine a single pass each can swing several percent
		// either way, which would drown the sub-2% effect being measured.
		var checked, nochecks float64
		for pass := 0; pass < 5; pass++ {
			c := cholGFlops(minTime, w, func(a []float64, n int) {
				if err := kernels.Cholesky(a, n); err != nil {
					panic(err) // SPD by construction; a failure is a benchmark bug
				}
			})
			nc := cholGFlops(minTime, w, kernels.CholeskyNoChecks)
			if c > checked {
				checked = c
			}
			if nc > nochecks {
				nochecks = nc
			}
		}
		row := PivotCheckRow{Width: w, CheckedGFlops: checked, NoChecksGFlops: nochecks}
		if checked > 0 {
			row.OverheadPercent = (nochecks/checked - 1) * 100
		}
		rep.PivotChecks = append(rep.PivotChecks, row)
		if row.OverheadPercent > rep.MaxOverheadPercent {
			rep.MaxOverheadPercent = row.OverheadPercent
		}
	}

	m := gen.IrregularMesh(3000, 7, 3, 42)
	rep.N = m.N
	rep.Procs = serviceProcs
	srv := server.New(server.Config{Procs: serviceProcs, BatchWindow: -1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := postService(ts.URL, "/v1/factor", factorBody(m))
	if err != nil {
		return nil, err
	}
	var fr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, err
	}
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = 1
	}
	best := 0.0
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, err := postService(ts.URL, "/v1/solve", map[string]any{"id": fr.ID, "b": rhs}); err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1e3
		if best == 0 || ms < best {
			best = ms
		}
	}
	rep.ServerSolveMs = best

	dur, err := CollectDurability(rounds)
	if err != nil {
		return nil, err
	}
	rep.Durability = dur

	ovl, err := CollectOverload(2500 * time.Millisecond)
	if err != nil {
		return nil, err
	}
	rep.Overload = ovl
	return rep, nil
}

// WriteFile serializes the report.
func (r *RobustnessReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
