// Service benchmark: measures the long-running solve service end to end —
// over real HTTP, through the plan cache, refactorization, and the RHS
// batcher — and serializes BENCH_service.json. The headline numbers are the
// analyze-once/factor-many ratio (cold factor vs warm refactor of the same
// pattern) and the batching win (per-RHS cost of a coalesced multi-RHS
// sweep vs one-at-a-time solves).
package benchjson

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"blockfanout/internal/gen"
	"blockfanout/internal/server"
	"blockfanout/internal/sparse"
)

// ServiceReport is the BENCH_service.json document.
type ServiceReport struct {
	Host  string `json:"host"`
	Procs int    `json:"procs"`
	N     int    `json:"n"`
	NNZ   int    `json:"nnz"`

	// ColdFactorMs is the first POST /v1/factor for a pattern: ordering +
	// symbolic analysis + partition + mapping + numeric factorization.
	ColdFactorMs float64 `json:"cold_factor_ms"`
	// RefactorMs is a warm POST /v1/factor for the same pattern: plan-cache
	// hit + numeric-only refactorization (best of several).
	RefactorMs float64 `json:"refactor_ms"`
	// RefactorSpeedup = ColdFactorMs / RefactorMs — what the pattern-keyed
	// cache buys per iteration of a values-change-pattern-stays workload.
	RefactorSpeedup float64 `json:"refactor_speedup"`

	// SoloSolveMs is one single-RHS POST /v1/solve with batching disabled.
	SoloSolveMs float64 `json:"solo_solve_ms"`
	// BatchedPerRHSMs is the per-RHS wall time of BatchRHS concurrent
	// solves coalesced by the batcher into shared sweeps.
	BatchRHS        int     `json:"batch_rhs"`
	BatchedPerRHSMs float64 `json:"batched_per_rhs_ms"`
	// BatchSpeedup = SoloSolveMs / BatchedPerRHSMs.
	BatchSpeedup float64 `json:"batch_speedup"`
}

// serviceProcs is the parallel width of the benchmark service.
const serviceProcs = 4

func postService(url, path string, v any) ([]byte, error) {
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, body)
	}
	return body, nil
}

type cscBody struct {
	N      int       `json:"n"`
	ColPtr []int     `json:"colptr"`
	RowInd []int     `json:"rowind"`
	Val    []float64 `json:"val"`
}

func factorBody(m *sparse.Matrix) cscBody {
	return cscBody{N: m.N, ColPtr: m.ColPtr, RowInd: m.RowInd, Val: m.Val}
}

// CollectService stands up an in-process service and measures the serving
// hot paths. rounds controls how many warm measurements each number is the
// best of.
func CollectService(rounds int) (*ServiceReport, error) {
	host, _ := os.Hostname()
	m := gen.IrregularMesh(3000, 7, 3, 42)
	const batchRHS = 16

	srv := server.New(server.Config{
		Procs:       serviceProcs,
		BatchWindow: 2 * time.Millisecond,
		BatchLimit:  batchRHS,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rep := &ServiceReport{Host: host, Procs: serviceProcs, N: m.N, NNZ: m.NNZ(), BatchRHS: batchRHS}

	var fr struct {
		ID string `json:"id"`
	}
	start := time.Now()
	body, err := postService(ts.URL, "/v1/factor", factorBody(m))
	if err != nil {
		return nil, err
	}
	rep.ColdFactorMs = time.Since(start).Seconds() * 1e3
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, err
	}

	// Warm path: same pattern, perturbed values, best of rounds.
	warm := factorBody(m)
	warm.Val = append([]float64(nil), m.Val...)
	for r := 0; r < rounds; r++ {
		for i := range warm.Val {
			warm.Val[i] *= 1 + 1e-3*float64(r+1)
		}
		start = time.Now()
		if _, err := postService(ts.URL, "/v1/factor", warm); err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1e3
		if rep.RefactorMs == 0 || ms < rep.RefactorMs {
			rep.RefactorMs = ms
		}
	}
	if rep.RefactorMs > 0 {
		rep.RefactorSpeedup = rep.ColdFactorMs / rep.RefactorMs
	}

	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = float64(i%17) - 8
	}
	solveReq := map[string]any{"id": fr.ID, "b": rhs}

	// Solo baseline: sequential single-RHS solves. The 2ms batch window
	// never sees a second request, so each travels alone.
	for r := 0; r < rounds; r++ {
		start = time.Now()
		if _, err := postService(ts.URL, "/v1/solve", solveReq); err != nil {
			return nil, err
		}
		ms := time.Since(start).Seconds() * 1e3
		if rep.SoloSolveMs == 0 || ms < rep.SoloSolveMs {
			rep.SoloSolveMs = ms
		}
	}

	// Batched: batchRHS concurrent requests; the limit flush coalesces them
	// into shared SolveMany sweeps.
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		errs := make([]error, batchRHS)
		start = time.Now()
		for i := 0; i < batchRHS; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = postService(ts.URL, "/v1/solve", solveReq)
			}(i)
		}
		wg.Wait()
		ms := time.Since(start).Seconds() * 1e3 / batchRHS
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
		if rep.BatchedPerRHSMs == 0 || ms < rep.BatchedPerRHSMs {
			rep.BatchedPerRHSMs = ms
		}
	}
	if rep.BatchedPerRHSMs > 0 {
		rep.BatchSpeedup = rep.SoloSolveMs / rep.BatchedPerRHSMs
	}
	return rep, nil
}

// WriteFile writes the service report as indented JSON.
func (r *ServiceReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
